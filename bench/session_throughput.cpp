// E9 — multi-instance amortization (§3: "setup has to occur once and may
// be used for any number of BA instances").
//
// Runs K agreement slots *concurrently* over one network and one trusted
// setup (core::Session) and reports per-slot words and decision quality
// as K grows. Expected shape: per-slot cost flat in K (instances are
// independent — committees are re-sampled per slot from the same keys),
// so total cost is linear in K with zero marginal setup.
#include <algorithm>
#include <chrono>
#include <iostream>
#include <vector>

#include "ba/broadcast.h"
#include "bench_json.h"
#include "common/args.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/session.h"
#include "session/log_driver.h"

using namespace coincidence;

namespace {

/// Row-name suffixless backend label: Bracha rows keep the historical
/// "log/N" names (the CI gate's frozen vocabulary); EC rows add "-ec".
std::string log_row_name(ba::RbcBackend backend, std::size_t slots) {
  return std::string(backend == ba::RbcBackend::kEc ? "log-ec/" : "log/") +
         std::to_string(slots);
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  const auto n = static_cast<std::size_t>(args.get_int("n", 48));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 15));
  const std::string json_path = args.get("json", "");
  // --rbc bracha|ec restricts the multivalued sections to one
  // dissemination backend; the default measures both.
  std::vector<ba::RbcBackend> backends = {ba::RbcBackend::kBracha,
                                          ba::RbcBackend::kEc};
  if (const std::string rbc = args.get("rbc", ""); !rbc.empty()) {
    auto parsed = ba::parse_rbc_backend(rbc);
    if (!parsed) {
      std::cerr << "unknown --rbc backend: " << rbc << "\n";
      return 2;
    }
    backends = {*parsed};
  }
  bench::BenchJson json;
  json.context("bench", "session_throughput");
  json.context("n", static_cast<double>(n));
  json.context("seed", static_cast<double>(seed));

  std::cout << "== E9: concurrent multi-slot sessions over one setup, n="
            << n << " ==\n\n";

  Table t({"slots", "decided", "agreed", "total words",
           "words/decided slot", "rounds max", "rounds skipped",
           "causal duration"});

  for (std::size_t slots : {1, 2, 4, 8, 16}) {
    core::Session session(core::Env::make_relaxed(n, seed));
    // Arm the round-skip liveness fallback (ba_whp.h): at seed 15 the
    // 8- and 16-slot runs draw one committee below W live members and
    // historically wedged a slot forever (BENCH_session.json recorded
    // 7/8 and 14/16 decided with rounds_max 0.0 — the dead telemetry).
    core::SessionOptions sopts;
    sopts.skip_timeout = session::auto_skip_timeout(n, slots);
    session.set_options(sopts);
    std::vector<std::vector<ba::Value>> inputs(slots,
                                               std::vector<ba::Value>(n, 0));
    // Alternate unanimity and splits across slots.
    for (std::size_t s = 0; s < slots; ++s)
      for (std::size_t i = 0; i < n; ++i)
        inputs[s][i] = static_cast<ba::Value>((s % 2) ? (i % 2) : (s % 3 == 0));

    core::SessionReport r =
        session.run_concurrent_slots(inputs, seed + slots, /*silent=*/2);

    std::size_t decided = 0, agreed = 0;
    std::uint64_t rounds_max = 0, rounds_skipped = 0;
    std::uint64_t decided_words = 0, stalled_words = 0;
    for (const auto& slot : r.slots) {
      decided += slot.all_correct_decided;
      agreed += slot.agreement;
      // max_round_reached is honest for stalled slots too; the old
      // max_decided_round-only report showed 0.0 even while a slot sat
      // wedged in round 0.
      rounds_max = std::max(rounds_max, slot.max_round_reached);
      rounds_skipped += slot.rounds_skipped;
      (slot.all_correct_decided ? decided_words : stalled_words) +=
          slot.correct_words;
    }
    bench::BenchJson::Row& row =
        json.row("slots/" + std::to_string(slots));
    bench::BenchJson::field(row, "slots", static_cast<double>(slots));
    bench::BenchJson::field(row, "decided", static_cast<double>(decided));
    bench::BenchJson::field(row, "agreed", static_cast<double>(agreed));
    bench::BenchJson::field(row, "total_words",
                            static_cast<double>(r.correct_words));
    bench::BenchJson::field(
        row, "words_per_decided_slot",
        static_cast<double>(decided ? decided_words / decided : 0));
    bench::BenchJson::field(row, "rounds_max",
                            static_cast<double>(rounds_max));
    bench::BenchJson::field(row, "rounds_skipped",
                            static_cast<double>(rounds_skipped));
    bench::BenchJson::field(row, "causal_duration",
                            static_cast<double>(r.duration));
    t.add_row({std::to_string(slots),
               std::to_string(decided) + "/" + std::to_string(slots),
               std::to_string(agreed) + "/" + std::to_string(slots),
               Table::count(r.correct_words),
               Table::count(decided ? decided_words / decided : 0),
               std::to_string(rounds_max), std::to_string(rounds_skipped),
               std::to_string(r.duration)});
  }

  t.print(std::cout);
  std::cout << "\npaper-shape checks: one PKI serves every slot (no per-"
               "instance setup), and slots neither\nshare nor contend "
               "(fresh committees per slot from the same keys). Slots that "
               "draw a\ncommittee below W live members no longer wedge: "
               "the skip fallback re-draws committees\nin round >= 1 "
               "(rounds max / rounds skipped above), so every slot "
               "decides. Decided slots\npay their full post-decision "
               "grace window; that is the cost of the grace rounds, not\n"
               "of concurrency.\n";

  // --- E16: multivalued replicated log (src/session). ------------------
  // Pipelined MvBa slots batching simulated client requests, run once
  // per dissemination backend (ba/broadcast.h). Under Bracha each slot
  // pays a full n-source RBC (echo/ready are n^2 broadcasts of the
  // payload), so words/slot is dissemination-dominated; the erasure-
  // coded backend ships ⌈|v|/k⌉-word fragments plus λ·log n Merkle
  // branches instead, which is where the O(n²·|v|) → O(n·|v| + n²·λ)
  // headline comes from. The 64-request default batch (~2KB proposals)
  // sits past the coded path's break-even (see E17 below for the sweep).
  const auto log_slots_max =
      static_cast<std::size_t>(args.get_int("log-slots", 8));
  const auto log_batch =
      static_cast<std::size_t>(args.get_int("log-batch", 64));
  std::cout << "\n== E16: replicated log over pipelined multivalued slots, "
               "n=" << n << " depth=4 batch=" << log_batch
            << " silent=2 ==\n\n";
  Table lt({"rbc", "slots", "committed", "agreed", "requests",
            "req/100k deliv", "decide p50", "decide p90", "words/slot",
            "rounds skipped"});
  for (std::size_t slots = 4; slots <= log_slots_max; slots *= 2) {
    for (ba::RbcBackend backend : backends) {
      core::Env env = core::Env::make_relaxed(n, seed);
      session::LogRunOptions lopts;
      lopts.slots = slots;
      lopts.pipeline_depth = 4;
      lopts.batch_size = log_batch;
      lopts.silent_faults = 2;
      lopts.sim_seed = seed + slots;
      lopts.rbc = backend;
      session::LogReport lr = session::run_replicated_log(env, lopts);
      bench::BenchJson::Row& row = json.row(log_row_name(backend, slots));
      bench::BenchJson::field(row, "slots", static_cast<double>(slots));
      bench::BenchJson::field(row, "all_committed",
                              lr.all_committed ? 1.0 : 0.0);
      bench::BenchJson::field(row, "agreement", lr.agreement ? 1.0 : 0.0);
      bench::BenchJson::field(row, "requests_committed",
                              static_cast<double>(lr.requests_committed));
      bench::BenchJson::field(row, "requests_per_100k_deliveries",
                              lr.requests_per_100k_deliveries);
      bench::BenchJson::field(row, "decide_latency_p50",
                              static_cast<double>(lr.decide_latency_p50));
      bench::BenchJson::field(row, "decide_latency_p90",
                              static_cast<double>(lr.decide_latency_p90));
      bench::BenchJson::field(row, "decide_latency_max",
                              static_cast<double>(lr.decide_latency_max));
      bench::BenchJson::field(row, "words_per_slot",
                              static_cast<double>(lr.words_per_slot));
      bench::BenchJson::field(row, "rounds_skipped",
                              static_cast<double>(lr.rounds_skipped));
      lt.add_row({ba::to_string(backend), std::to_string(slots),
                  lr.all_committed ? "yes" : "NO",
                  lr.agreement ? "yes" : "NO",
                  std::to_string(lr.requests_committed),
                  std::to_string(lr.requests_per_100k_deliveries).substr(0, 5),
                  Table::count(lr.decide_latency_p50),
                  Table::count(lr.decide_latency_p90),
                  Table::count(lr.words_per_slot),
                  std::to_string(lr.rounds_skipped)});
    }
  }
  lt.print(std::cout);
  std::cout << "\nE16 words/slot: the coded backend wins only past its "
               "break-even payload size\n(per-echo Merkle branches cost "
               "λ·log2(n) words regardless of |v|); the E17 sweep\nbelow "
               "shows the crossover explicitly.\n";

  // --- E17: bracha-vs-ec words/slot over n and |v|. ---------------------
  // Two pipelined slots per cell, batch sizes {4, 16, 64} (~120B/~500B/
  // ~2KB proposals). The honest finding this sweep exists to keep
  // honest: below ~230-byte proposals at n=48 the EC branch overhead
  // exceeds the fragment saving and Bracha is cheaper — coding pays off
  // k-fold only once fragments dominate branches.
  std::cout << "\n== E17: dissemination backends across n and proposal "
               "size, slots=2 depth=2 silent=min(2,f) ==\n\n";
  Table et({"n", "batch", "rbc", "committed", "agreed", "words/slot"});
  for (std::size_t en : {24, 48}) {
    for (std::size_t batch : {4, 16, 64}) {
      std::uint64_t words_by_backend[2] = {0, 0};
      for (ba::RbcBackend backend : backends) {
        core::Env env = core::Env::make_relaxed(en, seed);
        session::LogRunOptions lopts;
        lopts.slots = 2;
        lopts.pipeline_depth = 2;
        lopts.batch_size = batch;
        // Small-n relaxed params tolerate fewer silent processes.
        lopts.silent_faults = std::min<std::size_t>(2, env.f());
        lopts.sim_seed = seed + batch;
        lopts.rbc = backend;
        session::LogReport lr = session::run_replicated_log(env, lopts);
        words_by_backend[backend == ba::RbcBackend::kEc] =
            lr.words_per_slot;
        bench::BenchJson::Row& row = json.row(
            "e17/n" + std::to_string(en) + "/b" + std::to_string(batch) +
            "/" + ba::to_string(backend));
        bench::BenchJson::field(row, "n", static_cast<double>(en));
        bench::BenchJson::field(row, "batch", static_cast<double>(batch));
        bench::BenchJson::field(row, "all_committed",
                                lr.all_committed ? 1.0 : 0.0);
        bench::BenchJson::field(row, "agreement", lr.agreement ? 1.0 : 0.0);
        bench::BenchJson::field(row, "words_per_slot",
                                static_cast<double>(lr.words_per_slot));
        et.add_row({std::to_string(en), std::to_string(batch),
                    ba::to_string(backend),
                    lr.all_committed ? "yes" : "NO",
                    lr.agreement ? "yes" : "NO",
                    Table::count(lr.words_per_slot)});
      }
      if (backends.size() == 2 && words_by_backend[1] > 0) {
        bench::BenchJson::Row& row = json.row(
            "e17/n" + std::to_string(en) + "/b" + std::to_string(batch) +
            "/ratio");
        bench::BenchJson::field(
            row, "bracha_over_ec",
            static_cast<double>(words_by_backend[0]) /
                static_cast<double>(words_by_backend[1]));
      }
    }
  }
  et.print(std::cout);
  // --- Deferred batch verification: wall-clock on the real VRF. -------
  // The simulator's causal metrics are bit-identical with deferral on or
  // off (the protocol sends the same words either way); the win is CPU
  // time spent in DDH proof verification. Measured on the real backend,
  // where a share costs two Straus ladders inline but amortizes into a
  // folded multi-exp — and shares of retired rounds are discarded
  // unverified — when routed through the Env's BatchVerifier.
  const auto n_ddh = static_cast<std::size_t>(args.get_int("n-ddh", 32));
  const auto ddh_bits =
      static_cast<std::size_t>(args.get_int("ddh-bits", 256));
  const std::size_t ddh_slots = 4;
  std::cout << "\n== deferred verification wall-clock, ddh-vrf n=" << n_ddh
            << " bits=" << ddh_bits << " slots=" << ddh_slots << " ==\n\n";
  Table dt({"defer", "wall ms", "decided", "total words"});
  std::uint64_t words_by_mode[2] = {0, 0};
  for (int defer = 0; defer < 2; ++defer) {
    core::Session session(core::Env::make_relaxed_ddh(n_ddh, seed, ddh_bits));
    session.set_defer_verify(defer != 0);
    core::SessionOptions ddh_opts;
    ddh_opts.skip_timeout = session::auto_skip_timeout(n_ddh, ddh_slots);
    session.set_options(ddh_opts);
    std::vector<std::vector<ba::Value>> dinputs(
        ddh_slots, std::vector<ba::Value>(n_ddh, 0));
    for (std::size_t s = 0; s < ddh_slots; ++s)
      for (std::size_t i = 0; i < n_ddh; ++i)
        dinputs[s][i] = static_cast<ba::Value>((s + i) % 2);
    const auto t0 = std::chrono::steady_clock::now();
    core::SessionReport r =
        session.run_concurrent_slots(dinputs, seed + 1, /*silent=*/2);
    const auto t1 = std::chrono::steady_clock::now();
    const double wall_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    std::size_t decided = 0;
    for (const auto& slot : r.slots) decided += slot.all_correct_decided;
    words_by_mode[defer] = r.correct_words;
    bench::BenchJson::Row& row =
        json.row(std::string("defer/") + (defer ? "on" : "off"));
    bench::BenchJson::field(row, "wall_ms", wall_ms);
    bench::BenchJson::field(row, "decided", static_cast<double>(decided));
    bench::BenchJson::field(row, "total_words",
                            static_cast<double>(r.correct_words));
    dt.add_row({defer ? "on" : "off", Table::count(
                    static_cast<std::uint64_t>(wall_ms)),
                std::to_string(decided) + "/" + std::to_string(ddh_slots),
                Table::count(r.correct_words)});
  }
  dt.print(std::cout);
  std::cout << (words_by_mode[0] == words_by_mode[1]
                    ? "\nword counts identical across modes — deferral "
                      "changed CPU time only, not the protocol\n"
                    : "\nWARNING: word counts diverged across modes — "
                      "deferral must be bit-neutral\n");

  if (!json_path.empty()) {
    if (!json.write(json_path)) {
      std::cerr << "failed to write " << json_path << "\n";
      return 1;
    }
    std::cout << "\nwrote " << json_path << "\n";
  }
  return 0;
}
