// E7 — crypto substrate microbenchmarks (google-benchmark).
//
// Quantifies the per-word costs behind §2's accounting and the DESIGN.md
// substitution table: SHA-256 / HMAC throughput, bignum modular
// exponentiation at several group sizes, the real DDH-VRF (eval+verify)
// vs the simulation-grade FastVrf, committee sampling, and Shamir
// share/reconstruct for the dealer-coin baseline.
#include <benchmark/benchmark.h>

#include <string>
#include <utility>
#include <vector>

#include "committee/sampler.h"
#include "common/rng.h"
#include "crypto/ddh_vrf.h"
#include "crypto/fast_vrf.h"
#include "crypto/hmac.h"
#include "crypto/prime_group.h"
#include "crypto/shamir.h"
#include "crypto/sha256.h"
#include "crypto/signer.h"

using namespace coincidence;
using namespace coincidence::crypto;

namespace {

void BM_Sha256(benchmark::State& state) {
  Rng rng(1);
  Bytes data = rng.next_bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sha256(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(16384);

void BM_HmacSha256(benchmark::State& state) {
  Rng rng(2);
  Bytes key = rng.next_bytes(32);
  Bytes data = rng.next_bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hmac_sha256(key, data));
  }
}
BENCHMARK(BM_HmacSha256)->Arg(64)->Arg(1024);

void BM_BignumModExp(benchmark::State& state) {
  auto bits = static_cast<std::size_t>(state.range(0));
  PrimeGroup group = bits <= 256 ? PrimeGroup::generate(bits, 7)
                                 : PrimeGroup::rfc3526_1536();
  Rng rng(3);
  Bignum base = group.hash_to_group(rng.next_bytes(32));
  Bignum exp = Bignum::from_bytes_be(rng.next_bytes(group.byte_len())) %
               group.q();
  for (auto _ : state) {
    benchmark::DoNotOptimize(group.exp(base, exp));
  }
}
BENCHMARK(BM_BignumModExp)->Arg(128)->Arg(256)->Arg(1536)
    ->Unit(benchmark::kMicrosecond);

PrimeGroup group_of_bits(std::size_t bits) {
  return bits <= 256 ? PrimeGroup::generate(bits, 9)
                     : PrimeGroup::rfc3526_1536();
}

void BM_DdhVrfEval(benchmark::State& state) {
  DdhVrf vrf(group_of_bits(static_cast<std::size_t>(state.range(0))));
  Rng rng(4);
  VrfKeyPair kp = vrf.keygen(rng);
  std::uint64_t round = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(vrf.eval(kp.sk, bytes_of_u64(round++)));
  }
}
BENCHMARK(BM_DdhVrfEval)->Arg(128)->Arg(256)->Arg(1536)
    ->Unit(benchmark::kMicrosecond);

void BM_DdhVrfVerify(benchmark::State& state) {
  DdhVrf vrf(group_of_bits(static_cast<std::size_t>(state.range(0))));
  Rng rng(5);
  VrfKeyPair kp = vrf.keygen(rng);
  VrfOutput out = vrf.eval(kp.sk, bytes_of("round"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(vrf.verify(kp.pk, bytes_of("round"), out));
  }
}
BENCHMARK(BM_DdhVrfVerify)->Arg(128)->Arg(256)->Arg(1536)
    ->Unit(benchmark::kMicrosecond);

// The Montgomery substrate behind the 1536-bit numbers above: one REDC
// multiply/square, the reference divmod multiply for contrast, and the
// two ladders DdhVrf::verify actually runs.
void BM_MontMul(benchmark::State& state) {
  PrimeGroup group = PrimeGroup::rfc3526_1536();
  const MontgomeryCtx& ctx = group.mont();
  Rng rng(21);
  Bignum a = ctx.to_mont(group.hash_to_group(rng.next_bytes(32)));
  Bignum b = ctx.to_mont(group.hash_to_group(rng.next_bytes(32)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.mont_mul(a, b));
  }
}
BENCHMARK(BM_MontMul);

void BM_MontSqr(benchmark::State& state) {
  PrimeGroup group = PrimeGroup::rfc3526_1536();
  const MontgomeryCtx& ctx = group.mont();
  Rng rng(22);
  Bignum a = ctx.to_mont(group.hash_to_group(rng.next_bytes(32)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.mont_sqr(a));
  }
}
BENCHMARK(BM_MontSqr);

void BM_MulModRef(benchmark::State& state) {
  PrimeGroup group = PrimeGroup::rfc3526_1536();
  Rng rng(23);
  Bignum a = group.hash_to_group(rng.next_bytes(32));
  Bignum b = group.hash_to_group(rng.next_bytes(32));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Bignum::mul_mod(a, b, group.p()));
  }
}
BENCHMARK(BM_MulModRef);

void BM_BignumModExpRef(benchmark::State& state) {
  PrimeGroup group = PrimeGroup::rfc3526_1536();
  Rng rng(3);
  Bignum base = group.hash_to_group(rng.next_bytes(32));
  Bignum exp = Bignum::from_bytes_be(rng.next_bytes(group.byte_len())) %
               group.q();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Bignum::mod_exp_ref(base, exp, group.p()));
  }
}
BENCHMARK(BM_BignumModExpRef)->Unit(benchmark::kMicrosecond);

void BM_DualExp(benchmark::State& state) {
  PrimeGroup group = PrimeGroup::rfc3526_1536();
  Rng rng(24);
  Bignum a = group.hash_to_group(rng.next_bytes(32));
  Bignum b = group.hash_to_group(rng.next_bytes(32));
  Bignum ea = Bignum::from_bytes_be(rng.next_bytes(group.byte_len())) %
              group.q();
  Bignum eb = Bignum::from_bytes_be(rng.next_bytes(group.byte_len())) %
              group.q();
  for (auto _ : state) {
    benchmark::DoNotOptimize(group.dual_exp(a, ea, b, eb));
  }
}
BENCHMARK(BM_DualExp)->Unit(benchmark::kMicrosecond);

// The batch-verification engine: Π bᵢ^eᵢ with 128-bit exponents (the
// BGR combiner width), against which k chained dual ladders would pay
// full-width squaring chains per pair. Below 8 terms multi_exp itself
// falls back to the chained Straus ladder, so Arg(4) prices the
// crossover's cheap side.
void BM_MultiExp(benchmark::State& state) {
  PrimeGroup group = PrimeGroup::rfc3526_1536();
  Rng rng(26);
  auto k = static_cast<std::size_t>(state.range(0));
  std::vector<MultiExpTerm> terms(k);
  for (std::size_t i = 0; i < k; ++i) {
    terms[i].base = group.hash_to_group(rng.next_bytes(32));
    terms[i].exp = Bignum::from_bytes_be(rng.next_bytes(16));  // 128-bit
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(group.multi_exp(terms));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(k));
}
BENCHMARK(BM_MultiExp)->Arg(4)->Arg(8)->Arg(32)->Arg(128)->Arg(512)
    ->Unit(benchmark::kMicrosecond);

void BM_ExpGComb(benchmark::State& state) {
  PrimeGroup group = PrimeGroup::rfc3526_1536();
  Rng rng(25);
  Bignum e = Bignum::from_bytes_be(rng.next_bytes(group.byte_len())) %
             group.q();
  for (auto _ : state) {
    benchmark::DoNotOptimize(group.exp_g(e));
  }
}
BENCHMARK(BM_ExpGComb)->Unit(benchmark::kMicrosecond);

void BM_FastVrfEval(benchmark::State& state) {
  auto registry = KeyRegistry::create_for(8, 11);
  FastVrf vrf(registry);
  std::uint64_t round = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(vrf.eval(registry->sk_of(0), bytes_of_u64(round++)));
  }
}
BENCHMARK(BM_FastVrfEval);

void BM_FastVrfVerify(benchmark::State& state) {
  auto registry = KeyRegistry::create_for(8, 11);
  FastVrf vrf(registry);
  VrfOutput out = vrf.eval(registry->sk_of(0), bytes_of("round"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(vrf.verify(registry->pk_of(0), bytes_of("round"), out));
  }
}
BENCHMARK(BM_FastVrfVerify);

void BM_CommitteeSample(benchmark::State& state) {
  auto registry = KeyRegistry::create_for(64, 13);
  auto vrf = std::make_shared<FastVrf>(registry);
  committee::Sampler sampler(vrf, registry, 0.3);
  std::uint64_t c = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sampler.sample(0, "seed-" + std::to_string(c++)));
  }
}
BENCHMARK(BM_CommitteeSample);

void BM_CommitteeVal(benchmark::State& state) {
  auto registry = KeyRegistry::create_for(64, 13);
  auto vrf = std::make_shared<FastVrf>(registry);
  committee::Sampler sampler(vrf, registry, 0.3);
  auto election = sampler.sample(0, "seed");
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.committee_val("seed", 0, election.proof));
  }
}
BENCHMARK(BM_CommitteeVal);

void BM_SignVerify(benchmark::State& state) {
  auto registry = KeyRegistry::create_for(8, 15);
  Signer signer(registry);
  Bytes sig = signer.sign(0, bytes_of("echo,1"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(signer.verify(0, bytes_of("echo,1"), sig));
  }
}
BENCHMARK(BM_SignVerify);

void BM_ShamirShare(benchmark::State& state) {
  Rng rng(17);
  auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(shamir_share(12345, n, n / 3, rng));
  }
}
BENCHMARK(BM_ShamirShare)->Arg(16)->Arg(64)->Arg(256);

void BM_ShamirReconstruct(benchmark::State& state) {
  Rng rng(19);
  auto n = static_cast<std::size_t>(state.range(0));
  auto shares = shamir_share(12345, n, n / 3, rng);
  shares.resize(n / 3 + 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(shamir_reconstruct(shares));
  }
}
BENCHMARK(BM_ShamirReconstruct)->Arg(16)->Arg(64)->Arg(256);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): translates two repo-level
// convenience flags into google-benchmark's own before initialization.
//   --quick            cap min_time so the full suite finishes in seconds
//                      (the CI quick-bench smoke job)
//   --bench_json=FILE  emit the JSON report to FILE (the committed
//                      BENCH_crypto.json snapshot)
int main(int argc, char** argv) {
  std::vector<std::string> passthrough;
  passthrough.reserve(static_cast<std::size_t>(argc) + 2);
  passthrough.emplace_back(argv[0]);
  std::string json_path;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg.rfind("--bench_json=", 0) == 0) {
      json_path = arg.substr(std::string("--bench_json=").size());
    } else {
      passthrough.push_back(std::move(arg));
    }
  }
  if (quick) passthrough.emplace_back("--benchmark_min_time=0.02");
  if (!json_path.empty()) {
    passthrough.emplace_back("--benchmark_out=" + json_path);
    passthrough.emplace_back("--benchmark_out_format=json");
  }
  std::vector<char*> args;
  args.reserve(passthrough.size());
  for (std::string& s : passthrough) args.push_back(s.data());
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
