// E12 — batch VRF proof verification amortization (google-benchmark).
//
// The deferred-verification pipeline's whole premise in one sweep:
// verifying k coin shares as ONE Bellare–Garay–Rabin random linear
// combination (DdhVrf::batch_verify — two short-exponent Pippenger
// multi-exps + one comb + one exponentiation per distinct input) versus
// k independent verify() calls (2k full-width Straus dual ladders).
//
//   BM_SeqVerify/<bits>/<k>    — the inline-verification baseline
//   BM_BatchVerify/<bits>/<k>  — one folded batch of the same k entries
//   BM_BatchVerifyOneBad/...   — worst-honest-case: one forged entry, so
//                                the fold fails and binary-split
//                                attribution pays its O(log k) subsets
//
// k sweeps {1, 4, 16, 64, 256} over the two production-shaped groups
// (RFC 2409 768-bit, RFC 3526 1536-bit). All k entries share one input
// — the coin-share shape: every signer evaluates the same round nonce —
// which is exactly where the Π H1(x)^(Σwᵢsᵢ) term amortizes hardest.
//
// The committed BENCH_crypto.json merges this binary's JSON report with
// micro_crypto's; CI gates on BatchVerify/1536/64 regressions.
#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "crypto/ddh_vrf.h"
#include "crypto/prime_group.h"
#include "crypto/vrf.h"

using namespace coincidence;
using namespace coincidence::crypto;

namespace {

struct BatchFixture {
  std::unique_ptr<DdhVrf> vrf;
  Bytes input;               // one shared round nonce, coin-share style
  std::vector<Bytes> pks;    // stable storage behind the entry views
  std::vector<VrfOutput> outs;
  std::vector<VrfBatchEntry> entries;
};

/// Builds (and caches — google-benchmark re-enters the function body
/// while calibrating iteration counts) k honest proofs over one input.
const BatchFixture& fixture(std::size_t bits, std::size_t k) {
  static std::map<std::pair<std::size_t, std::size_t>, BatchFixture> cache;
  auto key = std::make_pair(bits, k);
  auto it = cache.find(key);
  if (it != cache.end()) return it->second;

  BatchFixture& f = cache[key];
  f.vrf = std::make_unique<DdhVrf>(bits == 768 ? PrimeGroup::rfc2409_768()
                                               : PrimeGroup::rfc3526_1536());
  f.vrf->set_batch_seed(0x5eed);
  f.input = bytes_of("coin-round-7");
  Rng rng(bits * 1000 + k);
  f.pks.reserve(k);
  f.outs.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    VrfKeyPair kp = f.vrf->keygen(rng);
    f.outs.push_back(f.vrf->eval(kp.sk, f.input));
    f.pks.push_back(std::move(kp.pk));
  }
  for (std::size_t i = 0; i < k; ++i)
    f.entries.push_back({f.pks[i], f.input, f.outs[i].value, f.outs[i].proof});
  return f;
}

void BM_SeqVerify(benchmark::State& state) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  const auto k = static_cast<std::size_t>(state.range(1));
  const BatchFixture& f = fixture(bits, k);
  for (auto _ : state) {
    bool all = true;
    for (const VrfBatchEntry& e : f.entries)
      all &= f.vrf->verify(e.pk, e.input, e.value, e.proof);
    benchmark::DoNotOptimize(all);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(k));
}

void BM_BatchVerify(benchmark::State& state) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  const auto k = static_cast<std::size_t>(state.range(1));
  const BatchFixture& f = fixture(bits, k);
  std::vector<char> out;
  for (auto _ : state) {
    f.vrf->batch_verify(f.entries, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(k));
}

// One forged value in the batch: the fold fails and attribution runs —
// the adversarial overhead the queue's discard counters pay for.
void BM_BatchVerifyOneBad(benchmark::State& state) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  const auto k = static_cast<std::size_t>(state.range(1));
  const BatchFixture& honest = fixture(bits, k);
  std::vector<VrfBatchEntry> entries = honest.entries;
  // Corrupt the response scalar s (the proof's last blob): the entry
  // still parses and passes the subgroup checks, so the fold fails and
  // attribution must run. (A forged *value* would be rejected during the
  // structural pass and never reach the combination.)
  Bytes forged = honest.outs[k / 2].proof;
  forged.back() ^= 0x01;
  entries[k / 2].proof = forged;
  std::vector<char> out;
  for (auto _ : state) {
    honest.vrf->batch_verify(entries, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(k));
}

void sweep(benchmark::internal::Benchmark* b) {
  for (std::int64_t bits : {768, 1536})
    for (std::int64_t k : {1, 4, 16, 64, 256}) b->Args({bits, k});
  b->Unit(benchmark::kMicrosecond);
}

BENCHMARK(BM_SeqVerify)->Apply(sweep);
BENCHMARK(BM_BatchVerify)->Apply(sweep);
BENCHMARK(BM_BatchVerifyOneBad)
    ->Args({768, 16})
    ->Args({768, 64})
    ->Args({1536, 64})
    ->Unit(benchmark::kMicrosecond);

}  // namespace

// Same two convenience flags as micro_crypto, so the CI quick-bench job
// and the BENCH_crypto.json regeneration recipe drive both binaries
// identically:
//   --quick            cap min_time so the sweep finishes in seconds
//   --bench_json=FILE  emit the google-benchmark JSON report to FILE
int main(int argc, char** argv) {
  std::vector<std::string> passthrough;
  passthrough.reserve(static_cast<std::size_t>(argc) + 2);
  passthrough.emplace_back(argv[0]);
  std::string json_path;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg.rfind("--bench_json=", 0) == 0) {
      json_path = arg.substr(std::string("--bench_json=").size());
    } else {
      passthrough.push_back(std::move(arg));
    }
  }
  if (quick) passthrough.emplace_back("--benchmark_min_time=0.02");
  if (!json_path.empty()) {
    passthrough.emplace_back("--benchmark_out=" + json_path);
    passthrough.emplace_back("--benchmark_out_format=json");
  }
  std::vector<char*> args;
  args.reserve(passthrough.size());
  for (std::string& s : passthrough) args.push_back(s.data());
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
