// E6 — why the delayed-adaptive assumption is necessary (§2, [1]).
//
// Runs the Algorithm-1 shared coin against three adversaries:
//   random            — benign asynchrony                   (legal)
//   delay-senders     — hostile but content-oblivious       (legal)
//   content-aware     — reads pending messages' VRF values, (ILLEGAL)
//                       starves/silences wrong-LSB holders
// and reports P[output = 0] when the illegal adversary wants 0 (and 1).
// The legal adversaries cannot move the coin off ~50/50; the illegal one
// drives it toward its target — exactly the attack the model forbids.
#include <iostream>

#include "common/args.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/coin_runner.h"

using namespace coincidence;

int main(int argc, char** argv) {
  Args args(argc, argv);
  const auto n = static_cast<std::size_t>(args.get_int("n", 36));
  const int runs = static_cast<int>(args.get_int("runs", 300));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 10));

  std::cout << "== E6: delayed-adaptive necessity ablation, shared coin, n="
            << n << ", " << runs << " flips per row ==\n\n";

  Table t({"adversary", "model", "agree rate", "P[out=0]", "95% CI"});

  auto run_rows = [&](bool content_aware, int bias_toward,
                      std::size_t delay, const std::string& label) {
    std::size_t agreed = 0, zeros = 0, done = 0;
    for (int run = 0; run < runs; ++run) {
      core::CoinOptions o;
      o.kind = core::CoinKind::kShared;
      o.n = n;
      o.seed = seed * 7717 + run;
      o.round = static_cast<std::uint64_t>(run);
      o.content_aware_bias = content_aware;
      o.bias_toward = bias_toward;
      o.delay_senders = delay;
      if (content_aware) {
        o.bias_budget = 64;        // clamped to f inside the runner
        o.fairness_bound = 50000;  // wide-but-finite async delays
      }
      core::CoinReport r = core::run_coin_trial(o);
      if (!r.all_returned) continue;
      ++done;
      if (r.agreed_bit) {
        ++agreed;
        zeros += (*r.agreed_bit == 0);
      }
    }
    double agree_rate = done ? static_cast<double>(agreed) / done : 0;
    double p0 = agreed ? static_cast<double>(zeros) / agreed : 0;
    Interval ci = wilson_interval(zeros, agreed);
    t.add_row({label, content_aware ? "ILLEGAL" : "legal",
               Table::num(agree_rate, 3), Table::num(p0, 3),
               "[" + Table::num(ci.lo, 3) + "," + Table::num(ci.hi, 3) + "]"});
  };

  run_rows(false, 0, 0, "random");
  run_rows(false, 0, n / 4, "delay-senders (n/4 victims)");
  run_rows(true, 0, 0, "content-aware, wants 0");
  run_rows(true, 1, 0, "content-aware, wants 1");

  t.print(std::cout);
  std::cout << "\npaper-shape checks: legal adversaries leave P[out=0] near "
               "0.5 (the coin is fair);\nthe content-aware adversary pulls "
               "it sharply toward its target bit in both directions —\n"
               "sub-quadratic protocols NEED the no-after-the-fact/delayed-"
               "adaptive assumption ([1], §2).\n";
  return 0;
}
