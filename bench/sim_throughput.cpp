// Simulator message-plane throughput (ISSUE 3).
//
// Measures deliveries/sec and heap traffic (allocations + bytes per
// delivery) for whp_coin and ba_whp runs under *null* crypto — VRF and
// committee sampling replaced by O(1) hash stubs — so the numbers are
// the message substrate's, not the crypto's. The committed BENCH_sim.json
// carries a `baseline_pre_zero_copy` block with the same workloads
// measured on the pre-refactor tree; CI re-runs `--quick` and fails if
// deliveries/sec regresses >30% against the committed snapshot.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "ba/ba_whp.h"
#include "ba/broadcast.h"
#include "bench_json.h"
#include "coin/coin_protocol.h"
#include "coin/verify_queue.h"
#include "coin/whp_coin.h"
#include "committee/params.h"
#include "committee/sampler.h"
#include "common/args.h"
#include "common/table.h"
#include "crypto/key_registry.h"
#include "crypto/signer.h"
#include "crypto/vrf.h"
#include "sim/simulation.h"

// ---------------------------------------------------------------------------
// Global allocation counters. Every operator new in the process is
// counted; the measured region is bracketed by snapshots, so setup cost
// (key generation, process construction) never pollutes the per-delivery
// numbers.
// ---------------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<std::uint64_t> g_alloc_bytes{0};

void* counted_alloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return operator new(size, std::nothrow);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

using namespace coincidence;

namespace {

// ---------------------------------------------------------------------------
// Null crypto: deterministic O(1) hash stubs with zero heap traffic on
// the verify path. Secure against nobody — these exist purely to take
// crypto off the profile so the bench isolates the message plane.
// ---------------------------------------------------------------------------

std::uint64_t fnv1a(std::uint64_t h, const std::uint8_t* data,
                    std::size_t len) {
  for (std::size_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= 1099511628211ull;
  }
  return h;
}

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;

/// Expands a 64-bit hash into a 32-byte "VRF value" (splitmix64 stream).
void expand32(std::uint64_t h, std::uint8_t out[32]) {
  for (int block = 0; block < 4; ++block) {
    std::uint64_t z = h + 0x9e3779b97f4a7c15ull * (block + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    std::memcpy(out + 8 * block, &z, 8);
  }
}

/// VRF stub: value = expand32(H(sk || input)), proof = sk. Verification
/// recomputes into a stack buffer — no allocations, no registry lookups.
class NullVrf final : public crypto::Vrf {
 public:
  crypto::VrfKeyPair keygen(Rng& rng) const override {
    crypto::VrfKeyPair kp;
    kp.sk = rng.next_bytes(32);
    kp.pk = kp.sk;
    return kp;
  }

  crypto::VrfOutput eval(BytesView sk, BytesView input) const override {
    std::uint8_t value[32];
    eval_into(sk, input, value);
    crypto::VrfOutput out;
    out.value.assign(value, value + 32);
    out.proof.assign(sk.begin(), sk.end());
    return out;
  }

  bool verify(BytesView pk, BytesView input,
              const crypto::VrfOutput& out) const override {
    return verify(pk, input, out.value, out.proof);
  }

  /// View-based verify (the protocols' hot path): recompute into a stack
  /// buffer and memcmp — zero heap traffic.
  bool verify(BytesView pk, BytesView input, BytesView value,
              BytesView proof) const override {
    (void)pk;
    if (value.size() != 32) return false;
    std::uint8_t expect[32];
    eval_into(proof, input, expect);
    return std::memcmp(expect, value.data(), 32) == 0;
  }

  std::size_t value_size() const override { return 32; }
  const char* name() const override { return "null"; }

 private:
  static void eval_into(BytesView sk, BytesView input, std::uint8_t out[32]) {
    std::uint64_t h = fnv1a(kFnvOffset, sk.data(), sk.size());
    h = fnv1a(h, input.data(), input.size());
    expand32(h, out);
  }
};

/// Sampler stub: election decided by H(id, seed) mapped to [0,1); the
/// proof is the 32-byte expansion of the same hash, so committee_val is a
/// recompute + memcmp with zero allocations.
class NullSampler final : public committee::Sampler {
 public:
  NullSampler(std::shared_ptr<const crypto::Vrf> vrf,
              std::shared_ptr<const crypto::KeyRegistry> registry,
              double lambda_over_n)
      : Sampler(std::move(vrf), std::move(registry), lambda_over_n) {}

  Election sample(crypto::ProcessId i,
                  const std::string& seed) const override {
    std::uint8_t proof[32];
    bool sampled = elect(i, seed, proof);
    Election e;
    e.sampled = sampled;
    e.proof.assign(proof, proof + 32);
    return e;
  }

  bool committee_val(const std::string& seed, crypto::ProcessId i,
                     BytesView proof) const override {
    if (proof.size() != 32) return false;
    std::uint8_t expect[32];
    if (!elect(i, seed, expect)) return false;
    return std::memcmp(expect, proof.data(), 32) == 0;
  }

  /// Batch contract: out[i] == committee_val(checks[i]). The base-class
  /// batch decodes real VRF proof wire format, which would reject every
  /// null proof — a stub sampler must loop its own committee_val.
  void committee_val_batch(std::span<const committee::Sampler::ValCheck> checks,
                           std::vector<char>& out) const override {
    out.assign(checks.size(), 0);
    for (std::size_t i = 0; i < checks.size(); ++i)
      out[i] =
          committee_val(*checks[i].seed, checks[i].id, checks[i].proof) ? 1
                                                                        : 0;
  }

 private:
  bool elect(crypto::ProcessId i, const std::string& seed,
             std::uint8_t proof[32]) const {
    std::uint64_t id64 = i;
    std::uint64_t h = fnv1a(kFnvOffset,
                            reinterpret_cast<const std::uint8_t*>("nsmp"), 4);
    h = fnv1a(h, reinterpret_cast<const std::uint8_t*>(&id64), 8);
    h = fnv1a(h, reinterpret_cast<const std::uint8_t*>(seed.data()),
              seed.size());
    expand32(h, proof);
    // Big-endian first 8 bytes -> [0,1), mirroring vrf_value_as_unit_double.
    std::uint64_t v = 0;
    for (int b = 0; b < 8; ++b) v = (v << 8) | proof[b];
    double unit = static_cast<double>(v >> 11) * 0x1.0p-53;
    return unit < threshold();
  }
};

// ---------------------------------------------------------------------------
// Workloads.
// ---------------------------------------------------------------------------

struct NullEnv {
  committee::Params params;
  std::shared_ptr<crypto::KeyRegistry> registry;
  std::shared_ptr<NullVrf> vrf;
  std::shared_ptr<NullSampler> sampler;
  std::shared_ptr<crypto::Signer> signer;
};

NullEnv make_null_env(std::size_t n, std::uint64_t seed) {
  NullEnv env;
  env.params = committee::Params::derive(n, 0.25, 0.02, /*strict=*/false);
  env.registry = crypto::KeyRegistry::create_for(n, seed);
  env.vrf = std::make_shared<NullVrf>();
  env.sampler = std::make_shared<NullSampler>(env.vrf, env.registry,
                                              env.params.sample_prob());
  env.signer = std::make_shared<crypto::Signer>(env.registry);
  return env;
}

/// Mirrors core::RunOptions::defer_verify for the bench workloads:
/// deliveries and decisions are bit-identical either way (the deferred
/// path's contract), so `--no-defer` isolates the batching/memo win.
bool g_defer_verify = true;

/// Sharded superstep engine (ISSUE 8): 0 = legacy loop. The sharded
/// schedule is deterministic per (seed, n) but is a *different* valid
/// schedule from the legacy one, so sharded rows carry a `/s<shards>`
/// name suffix and never collide with the frozen `benchmarks` names the
/// CI gate compares against.
std::size_t g_shards = 0;
std::size_t g_threads = 0;

struct RunStats {
  std::uint64_t deliveries = 0;
  std::uint64_t allocs = 0;
  std::uint64_t bytes = 0;
  double seconds = 0.0;
  std::uint64_t sig_checks = 0;
  std::uint64_t sig_memo_hits = 0;

  void operator+=(const RunStats& o) {
    deliveries += o.deliveries;
    allocs += o.allocs;
    bytes += o.bytes;
    seconds += o.seconds;
    sig_checks += o.sig_checks;
    sig_memo_hits += o.sig_memo_hits;
  }
};

template <typename Run>
RunStats measure(Run&& run) {
  const std::uint64_t a0 = g_alloc_count.load(std::memory_order_relaxed);
  const std::uint64_t b0 = g_alloc_bytes.load(std::memory_order_relaxed);
  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t deliveries = run();
  const auto t1 = std::chrono::steady_clock::now();
  RunStats s;
  s.deliveries = deliveries;
  s.allocs = g_alloc_count.load(std::memory_order_relaxed) - a0;
  s.bytes = g_alloc_bytes.load(std::memory_order_relaxed) - b0;
  s.seconds = std::chrono::duration<double>(t1 - t0).count();
  return s;
}

/// One standalone whp_coin flip across n CoinHosts, reliable network.
RunStats run_whp_coin(std::size_t n, std::uint64_t seed) {
  NullEnv env = make_null_env(n, seed);
  sim::SimConfig cfg;
  cfg.n = n;
  cfg.f = 0;
  cfg.seed = seed;
  cfg.shards = g_shards;
  cfg.threads = g_threads;
  if (g_shards > 0) cfg.expected_in_flight = n * 16;
  sim::Simulation sim(cfg);
  for (crypto::ProcessId i = 0; i < n; ++i) {
    coin::WhpCoin::Config ccfg;
    ccfg.tag = "coin";
    ccfg.round = 1;
    ccfg.params = env.params;
    ccfg.vrf = env.vrf;
    ccfg.registry = env.registry;
    ccfg.sampler = env.sampler;
    sim.add_process(std::make_unique<coin::CoinHost>(
        std::make_unique<coin::WhpCoin>(std::move(ccfg))));
  }
  return measure([&] {
    sim.start();
    sim.run();
    return sim.metrics().deliveries();
  });
}

/// One full BA-WHP agreement (split inputs) across n processes. The HMAC
/// Signer here is REAL (only VRF + sampling are stubbed), so the W-sig
/// ok-proof sweep dominates — exactly the hot path the shared
/// BatchVerifier's SigMemo is built to collapse.
RunStats run_ba_whp(std::size_t n, std::uint64_t seed) {
  NullEnv env = make_null_env(n, seed);
  // Legacy loop: one shared batcher so the SigMemo collapses the W-sig
  // sweep across processes. Sharded handlers run concurrently, and the
  // BatchVerifier's caches are unsynchronized — each process gets a
  // private lane (verdicts are pure, so deliveries stay identical; only
  // the memo-hit split differs).
  std::vector<std::shared_ptr<coin::BatchVerifier>> batchers;
  if (g_defer_verify) {
    const std::size_t lanes = g_shards > 0 ? n : 1;
    for (std::size_t i = 0; i < lanes; ++i)
      batchers.push_back(std::make_shared<coin::BatchVerifier>(
          coin::BatchVerifier::Config{env.vrf, env.sampler, env.signer}));
  }
  sim::SimConfig cfg;
  cfg.n = n;
  cfg.f = 0;
  cfg.seed = seed;
  cfg.shards = g_shards;
  cfg.threads = g_threads;
  if (g_shards > 0) cfg.expected_in_flight = n * 16;
  sim::Simulation sim(cfg);
  for (crypto::ProcessId i = 0; i < n; ++i) {
    ba::BaWhp::Config bcfg;
    bcfg.tag = "ba";
    bcfg.params = env.params;
    bcfg.vrf = env.vrf;
    bcfg.registry = env.registry;
    bcfg.sampler = env.sampler;
    bcfg.signer = env.signer;
    if (!batchers.empty()) bcfg.batcher = batchers[i % batchers.size()];
    bcfg.max_rounds = 32;
    sim.add_process(std::make_unique<ba::BaWhp>(
        std::move(bcfg), static_cast<ba::Value>(i % 2)));
  }
  RunStats s = measure([&] {
    sim.start();
    sim.run_until([&] {
      for (sim::ProcessId i = 0; i < n; ++i)
        if (!dynamic_cast<ba::BaWhp&>(sim.process(i)).decided()) return false;
      return true;
    });
    return sim.metrics().deliveries();
  });
  for (const auto& b : batchers) {
    s.sig_checks += b->sig_checks();
    s.sig_memo_hits += b->sig_memo().hits();
  }
  return s;
}

// ---------------------------------------------------------------------------
// RBC dissemination workload (ISSUE 10): a fixed set of sources reliable-
// broadcasts 1KB payloads to n processes, once per --rbc backend. Bracha
// re-ships the full value in every echo (n² payload copies per source);
// the erasure-coded backend ships ⌈|v|/k⌉-byte fragments plus Merkle
// branches — the alloc/bytes-per-delivery columns are the message-plane
// cost of that difference, with no BA or crypto on the profile (sha256
// is the only hashing either backend does).
// ---------------------------------------------------------------------------

class RbcHost final : public sim::Process {
 public:
  RbcHost(ba::RbcBackend backend, ba::Broadcast::Config cfg,
          Bytes to_send)
      : rbc_(ba::make_broadcast(backend, std::move(cfg),
                                [](sim::ProcessId, const Bytes&) {})),
        to_send_(std::move(to_send)) {}

  void on_start(sim::Context& ctx) override {
    if (!to_send_.empty()) rbc_->broadcast(ctx, to_send_);
  }
  void on_message(sim::Context& ctx, const sim::Message& msg) override {
    rbc_->handle(ctx, msg);
  }
  std::size_t delivered_count() const { return rbc_->delivered_count(); }

 private:
  std::unique_ptr<ba::Broadcast> rbc_;
  Bytes to_send_;
};

ba::RbcBackend g_rbc_backend = ba::RbcBackend::kBracha;

RunStats run_rbc(std::size_t n, std::uint64_t seed) {
  const std::size_t sources = std::min<std::size_t>(n, 8);
  const std::size_t f = (n - 1) / 3;
  sim::SimConfig cfg;
  cfg.n = n;
  cfg.f = 0;
  cfg.seed = seed;
  cfg.shards = g_shards;
  cfg.threads = g_threads;
  if (g_shards > 0) cfg.expected_in_flight = n * 16;
  sim::Simulation sim(cfg);
  for (crypto::ProcessId i = 0; i < n; ++i) {
    ba::Broadcast::Config bcfg;
    bcfg.tag = "rbc";
    bcfg.n = n;
    bcfg.f = f;
    Bytes payload;
    if (i < sources) {
      payload.resize(1024);
      for (std::size_t b = 0; b < payload.size(); ++b)
        payload[b] = static_cast<std::uint8_t>((i * 131 + b) & 0xff);
    }
    sim.add_process(std::make_unique<RbcHost>(g_rbc_backend, std::move(bcfg),
                                              std::move(payload)));
  }
  return measure([&] {
    sim.start();
    sim.run_until([&] {
      for (sim::ProcessId i = 0; i < n; ++i)
        if (dynamic_cast<RbcHost&>(sim.process(i)).delivered_count() <
            sources)
          return false;
      return true;
    });
    return sim.metrics().deliveries();
  });
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  const bool quick = args.get_bool("quick", false);
  const std::size_t reps =
      static_cast<std::size_t>(args.get_int("reps", quick ? 1 : 5));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
  g_defer_verify = !args.get_bool("no-defer", false);
  g_shards = static_cast<std::size_t>(args.get_int("shards", 0));
  g_threads = static_cast<std::size_t>(args.get_int("threads", 0));
  // Large-n rows (ISSUE 8): the default grid stops at 128 so the frozen
  // `benchmarks` names the CI gate reads never change; `--max_n` extends
  // it through {256, 512, 1024, 2048, 4096}.
  const std::size_t max_n =
      static_cast<std::size_t>(args.get_int("max_n", 128));
  const std::string json_path =
      args.get("bench_json", args.get("json", ""));
  // --rbc bracha|ec restricts the dissemination workload to one backend;
  // the default measures both (rows "rbc_bracha/..." and "rbc_ec/...").
  std::vector<ba::RbcBackend> rbc_backends = {ba::RbcBackend::kBracha,
                                              ba::RbcBackend::kEc};
  if (const std::string rbc = args.get("rbc", ""); !rbc.empty()) {
    auto parsed = ba::parse_rbc_backend(rbc);
    if (!parsed) {
      std::cerr << "unknown --rbc backend: " << rbc << "\n";
      return 2;
    }
    rbc_backends = {*parsed};
  }

  bench::BenchJson json;
  json.context("bench", "sim_throughput");
  json.context("crypto", "null");
  json.context("reps", static_cast<double>(reps));
  json.context("seed", static_cast<double>(seed));
  json.context("defer_verify", g_defer_verify ? 1.0 : 0.0);
  json.context("shards", static_cast<double>(g_shards));
  json.context("threads", static_cast<double>(g_threads));

  std::cout << "== simulator message-plane throughput (null crypto), reps="
            << reps;
  if (g_shards > 0)
    std::cout << ", shards=" << g_shards << ", threads="
              << (g_threads ? std::to_string(g_threads) : "auto");
  std::cout << " ==\n\n";

  Table t({"workload", "n", "deliveries", "deliv/sec", "allocs/deliv",
           "bytes/deliv"});

  struct Workload {
    const char* name;
    RunStats (*run)(std::size_t, std::uint64_t);
  };
  const Workload workloads[] = {{"whp_coin", run_whp_coin},
                                {"ba_whp", run_ba_whp}};

  std::vector<std::size_t> grid = {32, 64, 128};
  for (std::size_t n : {256, 512, 1024, 2048, 4096})
    if (n <= max_n) grid.push_back(n);
  // Sharded rows get a name suffix so they never shadow the frozen
  // legacy-loop rows in a committed snapshot.
  const std::string suffix =
      g_shards > 0 ? "/s" + std::to_string(g_shards) : "";

  for (const Workload& w : workloads) {
    for (std::size_t n : grid) {
      RunStats total;
      for (std::size_t rep = 0; rep < reps; ++rep)
        total += w.run(n, seed + rep);
      const double dps =
          total.seconds > 0 ? total.deliveries / total.seconds : 0;
      const double apd =
          total.deliveries ? static_cast<double>(total.allocs) /
                                 static_cast<double>(total.deliveries)
                           : 0;
      const double bpd =
          total.deliveries ? static_cast<double>(total.bytes) /
                                 static_cast<double>(total.deliveries)
                           : 0;
      bench::BenchJson::Row& row =
          json.row(std::string(w.name) + "/n" + std::to_string(n) + suffix);
      bench::BenchJson::field(row, "n", static_cast<double>(n));
      bench::BenchJson::field(row, "deliveries",
                              static_cast<double>(total.deliveries));
      bench::BenchJson::field(row, "seconds", total.seconds);
      bench::BenchJson::field(row, "deliveries_per_sec", dps);
      bench::BenchJson::field(row, "allocs_per_delivery", apd);
      bench::BenchJson::field(row, "bytes_per_delivery", bpd);
      bench::BenchJson::field(row, "sig_checks",
                              static_cast<double>(total.sig_checks));
      bench::BenchJson::field(row, "sig_memo_hits",
                              static_cast<double>(total.sig_memo_hits));
      t.add_row({w.name + suffix, std::to_string(n),
                 std::to_string(total.deliveries),
                 Table::count(static_cast<std::uint64_t>(dps)),
                 std::to_string(apd).substr(0, 6),
                 std::to_string(bpd).substr(0, 8)});
    }
  }

  // Dissemination rows: 8 sources × 1KB payloads per run. Quadratic in n
  // per source (echo/ready fan-out), so the grid is capped at 128.
  for (ba::RbcBackend backend : rbc_backends) {
    g_rbc_backend = backend;
    const std::string wname =
        std::string("rbc_") + ba::to_string(backend);
    for (std::size_t n : grid) {
      if (n > 128) continue;
      RunStats total;
      for (std::size_t rep = 0; rep < reps; ++rep)
        total += run_rbc(n, seed + rep);
      const double dps =
          total.seconds > 0 ? total.deliveries / total.seconds : 0;
      const double apd =
          total.deliveries ? static_cast<double>(total.allocs) /
                                 static_cast<double>(total.deliveries)
                           : 0;
      const double bpd =
          total.deliveries ? static_cast<double>(total.bytes) /
                                 static_cast<double>(total.deliveries)
                           : 0;
      bench::BenchJson::Row& row =
          json.row(wname + "/n" + std::to_string(n) + suffix);
      bench::BenchJson::field(row, "n", static_cast<double>(n));
      bench::BenchJson::field(row, "deliveries",
                              static_cast<double>(total.deliveries));
      bench::BenchJson::field(row, "seconds", total.seconds);
      bench::BenchJson::field(row, "deliveries_per_sec", dps);
      bench::BenchJson::field(row, "allocs_per_delivery", apd);
      bench::BenchJson::field(row, "bytes_per_delivery", bpd);
      t.add_row({wname + suffix, std::to_string(n),
                 std::to_string(total.deliveries),
                 Table::count(static_cast<std::uint64_t>(dps)),
                 std::to_string(apd).substr(0, 6),
                 std::to_string(bpd).substr(0, 8)});
    }
  }

  t.print(std::cout);
  std::cout << "\nnull crypto: VRF + committee election are O(1) hash "
               "stubs (stack buffers, memcmp\nverification), so every "
               "allocation above is the simulator's message plane —\n"
               "tag strings, payload copies, queue bookkeeping — plus "
               "protocol-state churn.\n";

  if (!json_path.empty()) {
    if (!json.write(json_path)) {
      std::cerr << "failed to write " << json_path << "\n";
      return 1;
    }
    std::cout << "\nwrote " << json_path << "\n";
  }
  return 0;
}
