// E5 — O(1) expected time (Lemma 6.14) and the duration metric of §2.
//
// Distribution of rounds-to-decision and causal duration for BA WHP as n
// grows, under benign and hostile (content-oblivious) scheduling. O(1)
// expected time means: the rows should NOT trend upward with n.
#include <iostream>

#include "common/args.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/runner.h"

using namespace coincidence;

int main(int argc, char** argv) {
  Args args(argc, argv);
  const int runs = static_cast<int>(args.get_int("runs", 10));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 9));

  std::cout << "== E5: rounds to decide / causal duration vs n (" << runs
            << " runs per row) ==\n\n";

  Table t({"n", "adversary", "decided", "rounds p50", "rounds p90",
           "rounds max", "duration p50", "duration max"});

  for (std::size_t n : {48, 64, 96, 128}) {
    for (core::AdversaryKind a :
         {core::AdversaryKind::kRandom, core::AdversaryKind::kDelaySenders}) {
      std::vector<double> rounds, durations;
      int decided = 0;
      for (int run = 0; run < runs; ++run) {
        core::RunOptions o;
        o.protocol = core::Protocol::kBaWhp;
        o.n = n;
        o.seed = seed * 1009 + 17 * run + n;
        o.adversary = a;
        o.inputs.assign(n, ba::kZero);
        for (std::size_t i = 0; i < n / 2; ++i) o.inputs[i] = ba::kOne;
        core::RunReport r = core::run_agreement(o);
        if (!r.all_correct_decided) continue;
        ++decided;
        rounds.push_back(static_cast<double>(r.max_decided_round));
        durations.push_back(static_cast<double>(r.duration));
      }
      Summary rs = summarize(rounds);
      Summary ds = summarize(durations);
      t.add_row({std::to_string(n), core::adversary_name(a),
                 std::to_string(decided) + "/" + std::to_string(runs),
                 Table::num(rs.p50, 1), Table::num(rs.p90, 1),
                 Table::num(rs.max, 0), Table::num(ds.p50, 1),
                 Table::num(ds.max, 0)});
    }
  }

  t.print(std::cout);
  std::cout << "\npaper-shape checks: rounds stay O(1) — flat in n, small "
               "median (expected <= 1/rho);\nduration (longest causal "
               "chain) flat in n as well; hostile scheduling costs a\n"
               "constant factor, not a growth rate.\n";
  return 0;
}
