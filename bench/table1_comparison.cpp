// T1 — regenerates Table 1 of the paper empirically.
//
// For every protocol row we can run (Ben-Or, Rabin-style dealer coin,
// Bracha, MMR + our VRF coin ["Cachin-style operating point"], and our
// BA WHP), sweep n, run split-input agreement to decision under random
// asynchrony, and report: resilience used, decision rate, expected
// rounds, word complexity, and the fitted growth exponent of words in n.
// The paper's asymptotic claims this reproduces:
//     Ben-Or   n>5f  O(2^n) expected time  -> rounds blow up with n
//     Rabin    n>10f O(n²)  const rounds   (dealer-coin trust)
//     Bracha   n>3f  exponential            -> O(n³)/round message cost
//     MMR+coin n>3f  O(n²)  const rounds
//     ours     n≈4.5f Õ(n)  const rounds whp (committee overhead λ² makes
//              the win asymptotic; see bench/word_scaling for the slope)
#include <iostream>
#include <vector>

#include "common/args.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/runner.h"

using namespace coincidence;

namespace {

struct SweepSpec {
  core::Protocol protocol;
  std::vector<std::size_t> ns;
  int trials;
  std::uint64_t max_rounds;
};

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  const auto trials_scale = args.get_int("trials", 3);
  const auto seed0 = static_cast<std::uint64_t>(args.get_int("seed", 1));

  std::cout
      << "== T1: Table 1 comparison (empirical) ==\n"
         "split inputs, random asynchrony, per-protocol max resilience\n\n";

  const std::vector<SweepSpec> sweeps = {
      {core::Protocol::kBenOr, {8, 16, 24, 32}, static_cast<int>(trials_scale), 128},
      {core::Protocol::kMmrDealerCoin, {16, 32, 64, 96}, static_cast<int>(trials_scale), 64},
      {core::Protocol::kBracha, {7, 10, 13, 16}, static_cast<int>(trials_scale), 64},
      {core::Protocol::kMmrSharedCoin, {16, 32, 64, 96}, static_cast<int>(trials_scale), 64},
      {core::Protocol::kMmrWhpCoin, {48, 64, 96, 128}, static_cast<int>(trials_scale), 64},
      {core::Protocol::kBaWhp, {48, 64, 96, 128}, static_cast<int>(trials_scale), 32},
  };

  Table t({"protocol", "n", "f", "decided", "rounds(avg)", "words(avg)",
           "msgs(avg)", "duration(avg)"});

  for (const auto& sweep : sweeps) {
    std::vector<double> xs, ys;
    for (std::size_t n : sweep.ns) {
      int decided = 0;
      std::vector<double> rounds, words, msgs, durations;
      std::size_t f_used = 0;
      for (int trial = 0; trial < sweep.trials; ++trial) {
        core::RunOptions o;
        o.protocol = sweep.protocol;
        o.n = n;
        o.seed = seed0 + 97 * trial + n;
        o.max_rounds = sweep.max_rounds;
        o.inputs.assign(n, ba::kZero);
        for (std::size_t i = 0; i < n / 2; ++i) o.inputs[i] = ba::kOne;
        core::RunReport r = core::run_agreement(o);
        f_used = r.protocol_f;
        if (r.all_correct_decided) {
          ++decided;
          rounds.push_back(static_cast<double>(r.max_decided_round));
          words.push_back(static_cast<double>(r.correct_words));
          msgs.push_back(static_cast<double>(r.messages));
          durations.push_back(static_cast<double>(r.duration));
        }
      }
      Summary rs = summarize(rounds), ws = summarize(words),
              ms = summarize(msgs), ds = summarize(durations);
      t.add_row({core::protocol_name(sweep.protocol), std::to_string(n),
                 std::to_string(f_used),
                 std::to_string(decided) + "/" + std::to_string(sweep.trials),
                 Table::num(rs.mean, 1), Table::count(static_cast<unsigned long long>(ws.mean)),
                 Table::count(static_cast<unsigned long long>(ms.mean)),
                 Table::num(ds.mean, 1)});
      if (ws.count > 0) {
        xs.push_back(static_cast<double>(n));
        ys.push_back(ws.mean);
      }
    }
    if (xs.size() >= 2) {
      std::cout << core::protocol_name(sweep.protocol)
                << ": fitted word-growth exponent "
                << Table::num(loglog_slope(xs, ys), 2) << "\n";
    }
  }

  std::cout << '\n';
  t.print(std::cout);
  std::cout << "\npaper-shape checks: Ben-Or's rounds inflate with n "
               "(local coin); the three shared-coin\nprotocols decide in "
               "O(1) rounds; word exponents near 2 for the O(n²) rows; "
               "ba-whp pays a\nlambda^2 committee constant that amortizes "
               "only at large n (see word_scaling).\n";
  return 0;
}
