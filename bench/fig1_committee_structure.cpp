// F1 — regenerates Figure 1: the committee structure of Algorithm 3.
//
// The paper's figure shows one approver instance flowing through four
// sampled committees: init -> echo(0) / echo(1) -> ok. We run the
// approver with a 50/50 input split at several n and print, per phase:
// the sampled committee size (vs the expected λ = 8 ln n), how many
// members actually broadcast, and the measured message/word cost —
// including the O(λ) ok-proof words that dominate the complexity.
#include <iostream>

#include "ba/approver.h"
#include "common/args.h"
#include "common/table.h"
#include "core/env.h"
#include "sim/simulation.h"

using namespace coincidence;

int main(int argc, char** argv) {
  Args args(argc, argv);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 4));

  std::cout << "== F1: committee structure of one approver instance "
               "(Algorithm 3 / Figure 1) ==\n\n";

  Table t({"n", "lambda", "W", "B", "|init|", "|echo(0)|", "|echo(1)|",
           "|ok|", "init words", "echo words", "ok words", "returned"});

  for (std::size_t n : {64, 128, 256, 512}) {
    core::Env env = core::Env::make_relaxed(n, seed + n);

    sim::SimConfig scfg;
    scfg.n = n;
    scfg.seed = seed * 31 + n;
    sim::Simulation sim(scfg);
    for (sim::ProcessId i = 0; i < n; ++i) {
      ba::Approver::Config cfg;
      cfg.tag = "apv";
      cfg.params = env.params;
      cfg.registry = env.registry;
      cfg.sampler = env.sampler;
      cfg.signer = env.signer;
      ba::Value input = i < n / 2 ? ba::kOne : ba::kZero;
      sim.add_process(std::make_unique<ba::ApproverHost>(cfg, input));
    }
    sim.start();
    sim.run();

    // Committee sizes are a pure function of the sampler (Fig. 1's boxes).
    std::size_t init_c = 0, echo0_c = 0, echo1_c = 0, ok_c = 0, returned = 0;
    for (sim::ProcessId i = 0; i < n; ++i) {
      init_c += env.sampler->sample(i, "apv/init").sampled;
      echo0_c += env.sampler->sample(i, "apv/echo/0").sampled;
      echo1_c += env.sampler->sample(i, "apv/echo/1").sampled;
      ok_c += env.sampler->sample(i, "apv/ok").sampled;
      auto& host = dynamic_cast<ba::ApproverHost&>(sim.process(i));
      returned += host.approver().done();
    }

    const auto& buckets = sim.metrics().words_by_tag();
    auto words_of = [&](const std::string& k) -> unsigned long long {
      auto it = buckets.find(k);
      return it == buckets.end() ? 0 : it->second;
    };

    t.add_row({std::to_string(n), Table::num(env.params.lambda, 1),
               std::to_string(env.params.W), std::to_string(env.params.B),
               std::to_string(init_c), std::to_string(echo0_c),
               std::to_string(echo1_c), std::to_string(ok_c),
               Table::count(words_of("init")), Table::count(words_of("echo")),
               Table::count(words_of("ok")),
               std::to_string(returned) + "/" + std::to_string(n)});
  }

  t.print(std::cout);
  std::cout << "\npaper-shape checks: every committee size concentrates "
               "near lambda = 8 ln n (S1/S2);\nok words dominate (each ok "
               "message carries W signed echoes -> the n log^2 n term);\n"
               "all processes return whp (Lemma 6.4).\n";
  return 0;
}
