// E4 — the headline claim: Õ(n) vs O(n²) word complexity.
//
// Measures words-to-decision for our BA WHP and for MMR + Algorithm-1
// coin (the O(n²) operating point of §4) across n, fits the log-log
// growth exponents, and — because the paper's Õ(n) hides an 8²·ln²n
// committee constant that dwarfs n² at simulable sizes — *projects* the
// crossover point from the fitted models:
//   ours  ≈ a · n ln²n      (measured a)
//   mmr   ≈ b · n²          (measured b)
//   crossover at a·ln²n = b·n.
// Per-coin-instance words (no approver, no ok proofs) cross much earlier
// and are printed too: the WHP coin beats the full coin within reach.
#include <cmath>
#include <iostream>

#include "bench_json.h"
#include "common/args.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/coin_runner.h"
#include "core/parallel.h"
#include "core/runner.h"

using namespace coincidence;

int main(int argc, char** argv) {
  Args args(argc, argv);
  const int trials = static_cast<int>(args.get_int("trials", 3));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 8));
  // E15 (ISSUE 8): `--max_n` extends the coin grid through {512, 1024,
  // 2048, 4096}; runs there take 1 trial each (the committee machinery
  // is deterministic enough that one flip pins the word count to a few
  // percent) and should be paired with `--shards` so the superstep
  // engine carries the n^2-delivery shared-coin rows.
  const std::size_t max_n =
      static_cast<std::size_t>(args.get_int("max_n", 384));
  const std::size_t shards =
      static_cast<std::size_t>(args.get_int("shards", 0));
  const std::string json_path = args.get("bench_json", "");
  core::ThreadPool pool(
      static_cast<std::size_t>(args.get_int("threads", 0)));

  bench::BenchJson json;
  json.context("bench", "word_scaling");
  json.context("trials", static_cast<double>(trials));
  json.context("seed", static_cast<double>(seed));
  json.context("max_n", static_cast<double>(max_n));
  json.context("shards", static_cast<double>(shards));

  std::cout << "== E4: word-complexity scaling, ours vs O(n^2) (trials="
            << trials << ", threads=" << pool.size();
  if (shards > 0) std::cout << ", shards=" << shards;
  std::cout << ") ==\n\n";

  // --- part 1: the coins alone (Algorithm 1 vs Algorithm 2) -------------
  Table tc({"n", "shared-coin words", "whp-coin words", "ratio"});
  std::vector<double> cxs, shared_ys, whp_ys;
  std::vector<std::size_t> coin_ns = {48, 96, 160, 256, 384};
  for (std::size_t n : {512, 1024, 2048, 4096})
    if (n <= max_n) coin_ns.push_back(n);
  for (std::size_t n : coin_ns) {
    const int tn = n >= 512 ? 1 : trials;
    // The whp coin fails (by design) a few percent of the time; at the
    // single-trial large-n rows a failed flip would drop the row, so run
    // a few speculative retry seeds and consume the first tn successes.
    // The default grid keeps exactly the historical trial set.
    const int whp_attempts = tn + (n >= 512 ? 4 : 0);
    // Indices [0, tn) are shared-coin flips, [tn, tn + whp_attempts) are
    // whp — one flat fan-out per n, folded in input order so tallies
    // match the serial loop.
    std::vector<core::CoinOptions> flips(
        static_cast<std::size_t>(tn + whp_attempts));
    for (int trial = 0; trial < whp_attempts; ++trial) {
      core::CoinOptions o;
      o.n = n;
      o.seed = seed + 31 * trial + n;
      o.round = static_cast<std::uint64_t>(trial);
      o.shards = shards;
      if (trial < tn) {
        o.kind = core::CoinKind::kShared;
        flips[static_cast<std::size_t>(trial)] = o;
      }
      o.kind = core::CoinKind::kWhp;
      flips[static_cast<std::size_t>(tn + trial)] = o;
    }
    std::vector<core::CoinReport> reports = core::parallel_map(
        pool, flips.size(),
        [&](std::size_t i) { return core::run_coin_trial(flips[i]); });
    double shared_words = 0, whp_words = 0;
    int shared_c = 0, whp_c = 0;
    for (int trial = 0; trial < tn; ++trial) {
      const core::CoinReport& rs = reports[static_cast<std::size_t>(trial)];
      if (rs.all_returned) {
        shared_words += static_cast<double>(rs.correct_words);
        ++shared_c;
      }
    }
    for (int trial = 0; trial < whp_attempts && whp_c < tn; ++trial) {
      const core::CoinReport& rw =
          reports[static_cast<std::size_t>(tn + trial)];
      if (rw.all_returned) {
        whp_words += static_cast<double>(rw.correct_words);
        ++whp_c;
      }
    }
    if (shared_c == 0 || whp_c == 0) continue;
    shared_words /= shared_c;
    whp_words /= whp_c;
    cxs.push_back(static_cast<double>(n));
    shared_ys.push_back(shared_words);
    whp_ys.push_back(whp_words);
    bench::BenchJson::Row& row = json.row("coin/n" + std::to_string(n));
    bench::BenchJson::field(row, "n", static_cast<double>(n));
    bench::BenchJson::field(row, "shared_words", shared_words);
    bench::BenchJson::field(row, "whp_words", whp_words);
    bench::BenchJson::field(row, "trials", static_cast<double>(tn));
    tc.add_row({std::to_string(n),
                Table::count(static_cast<unsigned long long>(shared_words)),
                Table::count(static_cast<unsigned long long>(whp_words)),
                Table::num(shared_words / whp_words, 2)});
  }
  tc.print(std::cout);
  const double shared_slope = loglog_slope(cxs, shared_ys);
  const double whp_slope = loglog_slope(cxs, whp_ys);
  json.context("shared_slope", shared_slope);
  json.context("whp_slope", whp_slope);
  std::cout << "coin word-growth exponents: shared="
            << Table::num(shared_slope, 2)
            << " (theory 2), whp=" << Table::num(whp_slope, 2)
            << " (theory ~1 + log factor)\n\n";

  // --- part 2: full BA, ours vs MMR+Algorithm-1 -------------------------
  Table tb({"n", "ba-whp words", "mmr-vrf words", "ba-whp/n*ln^2(n)",
            "mmr/n^2"});
  std::vector<double> xs, ours_ys, mmr_ys;
  std::vector<std::size_t> ba_ns = {48, 64, 96, 128, 192, 256};
  if (args.get_bool("big", false)) ba_ns.push_back(512);
  for (std::size_t n : ba_ns) {
    double ours = 0, mmr = 0;
    int ours_c = 0, mmr_c = 0;
    // The whp-failure tail bites harder at one-shot large-n runs; retry a
    // few extra seeds there so the row reflects successful decisions.
    int attempts = n >= 512 ? trials + 4 : trials;
    int wanted = trials;
    // Speculatively run every attempt for both protocols in parallel,
    // then replay the serial retry-gating over the reports in trial
    // order: the tallies consume exactly the runs the serial loop would
    // have executed (the spare speculative runs are simply discarded).
    std::vector<core::RunOptions> opts(2 * static_cast<std::size_t>(attempts));
    for (int trial = 0; trial < attempts; ++trial) {
      core::RunOptions o;
      o.n = n;
      o.seed = seed + 7 * trial + n;
      o.shards = shards;
      o.inputs.assign(n, ba::kZero);
      for (std::size_t i = 0; i < n / 2; ++i) o.inputs[i] = ba::kOne;
      o.protocol = core::Protocol::kBaWhp;
      opts[2 * static_cast<std::size_t>(trial)] = o;
      o.protocol = core::Protocol::kMmrSharedCoin;
      opts[2 * static_cast<std::size_t>(trial) + 1] = o;
    }
    std::vector<core::RunReport> reports =
        core::run_agreements_parallel(pool, opts);
    for (int trial = 0; trial < attempts && (ours_c < wanted || mmr_c < wanted);
         ++trial) {
      if (ours_c < wanted) {
        const core::RunReport& r1 = reports[2 * static_cast<std::size_t>(trial)];
        if (r1.all_correct_decided) {
          ours += static_cast<double>(r1.correct_words);
          ++ours_c;
        }
      }
      if (mmr_c < wanted) {
        const core::RunReport& r2 =
            reports[2 * static_cast<std::size_t>(trial) + 1];
        if (r2.all_correct_decided) {
          mmr += static_cast<double>(r2.correct_words);
          ++mmr_c;
        }
      }
    }
    if (ours_c == 0 || mmr_c == 0) continue;
    ours /= ours_c;
    mmr /= mmr_c;
    xs.push_back(static_cast<double>(n));
    ours_ys.push_back(ours);
    mmr_ys.push_back(mmr);
    double ln2 = std::log(static_cast<double>(n)) * std::log(static_cast<double>(n));
    double a = ours / (static_cast<double>(n) * ln2);
    double b = mmr / (static_cast<double>(n) * static_cast<double>(n));
    tb.add_row({std::to_string(n),
                Table::count(static_cast<unsigned long long>(ours)),
                Table::count(static_cast<unsigned long long>(mmr)),
                Table::num(a, 1), Table::num(b, 1)});
  }
  tb.print(std::cout);

  if (xs.size() >= 2) {
    std::cout << "\nfull-BA word-growth exponents: ba-whp="
              << Table::num(loglog_slope(xs, ours_ys), 2)
              << " (theory ~1+), mmr=" << Table::num(loglog_slope(xs, mmr_ys), 2)
              << " (theory 2)\n";
    // Fit the model constants by least squares through the origin over
    // ALL measured points (robust to per-row round-count noise):
    //   ours = a * n ln^2 n,  mmr = b * n^2.
    double a_num = 0, a_den = 0, b_num = 0, b_den = 0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      double ln2 = std::log(xs[i]) * std::log(xs[i]);
      double xa = xs[i] * ln2;
      double xb = xs[i] * xs[i];
      a_num += xa * ours_ys[i];
      a_den += xa * xa;
      b_num += xb * mmr_ys[i];
      b_den += xb * xb;
    }
    double a_fit = a_den > 0 ? a_num / a_den : 0;
    double b_fit = b_den > 0 ? b_num / b_den : 0;
    // crossover: a n ln^2 n = b n^2  =>  n / ln^2 n = a / b.
    if (b_fit > 0) {
      double target = a_fit / b_fit;
      double n_cross = 16;
      for (int iter = 0; iter < 64; ++iter) {
        double ln = std::log(n_cross);
        n_cross = target * ln * ln;
      }
      std::cout << "projected crossover (a*n*ln^2 n = b*n^2): n ~ "
                << Table::count(static_cast<unsigned long long>(n_cross))
                << " — the paper's win is asymptotic; at simulable n the "
                   "lambda^2 ok-proof constant dominates.\n";
    }
  }

  if (!json_path.empty()) {
    if (!json.write(json_path)) {
      std::cerr << "failed to write " << json_path << "\n";
      return 1;
    }
    std::cout << "\nwrote " << json_path << "\n";
  }
  return 0;
}
