// E3 — Claim 1 (S1–S4) and Corollaries S5/S6: committee sampling bounds.
//
// Samples many committees at various (n, d), counts how often each
// property fails empirically, and prints the Chernoff upper bounds from
// Appendix A next to the measurements. Also verifies the set-intersection
// corollaries by direct worst-case counting on the sampled committees:
//   S5: any two W-subsets of one committee share >= B+1 members,
//   S6: any (B+1)-subset meets any W-subset.
// Worst case over subsets = size arithmetic: |C| vs W and B.
#include <cmath>
#include <iostream>

#include "committee/params.h"
#include "common/args.h"
#include "common/table.h"
#include "core/env.h"

using namespace coincidence;

int main(int argc, char** argv) {
  Args args(argc, argv);
  const int committees = static_cast<int>(args.get_int("committees", 2000));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));

  std::cout << "== E3: committee sampling properties S1-S6 vs Chernoff "
               "bounds (" << committees << " committees per row) ==\n\n";

  Table t({"n", "d", "S1 fail", "S1 bound", "S2 fail", "S2 bound",
           "S3 fail", "S3 bound", "S4 fail", "S4 bound", "S5|S1", "S6|S1"});

  struct Row {
    std::size_t n;
    double d;
  };
  for (const Row& row : {Row{64, 0.04}, Row{128, 0.04}, Row{256, 0.04},
                         Row{512, 0.04}, Row{256, 0.08}}) {
    core::Env env = core::Env::make(row.n, 0.25, row.d, seed + row.n,
                                    /*strict=*/false);
    const auto& p = env.params;
    // The f "Byzantine" processes are the highest ids (any fixed set is
    // equivalent: sampling is symmetric).
    const std::size_t f = p.f;

    int s1_fail = 0, s2_fail = 0, s3_fail = 0, s4_fail = 0;
    int s5_ok = 0, s6_ok = 0, s56_applicable = 0;
    for (int c = 0; c < committees; ++c) {
      std::string seed_str = "cmte-" + std::to_string(c);
      std::size_t size = 0, byz = 0;
      for (std::size_t i = 0; i < row.n; ++i) {
        if (!env.sampler->sample(static_cast<crypto::ProcessId>(i), seed_str)
                 .sampled)
          continue;
        ++size;
        if (i >= row.n - f) ++byz;
      }
      std::size_t correct = size - byz;
      if (static_cast<double>(size) > (1.0 + p.d) * p.lambda) ++s1_fail;
      if (static_cast<double>(size) < (1.0 - p.d) * p.lambda) ++s2_fail;
      if (correct < p.W) ++s3_fail;
      if (byz > p.B) ++s4_fail;

      // S5/S6 are consequences of S1 (Corollaries 5.1/5.2 use
      // |C| <= (1+d)λ), so count them over S1-passing committees with at
      // least W members, via worst-case subset arithmetic.
      bool s1_holds = static_cast<double>(size) <= (1.0 + p.d) * p.lambda;
      if (s1_holds && size >= p.W) {
        ++s56_applicable;
        // two W-subsets overlap by at least 2W - |C| members;
        if (2 * p.W >= size && 2 * p.W - size >= p.B + 1) ++s5_ok;
        // a (B+1)-subset and a W-subset must overlap if (B+1)+W > |C|.
        if (p.B + 1 + p.W > size) ++s6_ok;
      }
    }

    auto frac = [&](int k) { return Table::num(static_cast<double>(k) / committees, 4); };
    t.add_row({std::to_string(row.n), Table::num(row.d, 2),
               frac(s1_fail), Table::num(committee::s1_failure_bound(p.lambda, p.d), 4),
               frac(s2_fail), Table::num(committee::s2_failure_bound(p.lambda, p.d), 4),
               frac(s3_fail), Table::num(committee::s3_failure_bound(p.lambda, p.d, p.epsilon), 4),
               frac(s4_fail), Table::num(committee::s4_failure_bound(p.lambda, p.d, p.epsilon), 4),
               std::to_string(s5_ok) + "/" + std::to_string(s56_applicable),
               std::to_string(s6_ok) + "/" + std::to_string(s56_applicable)});
  }

  t.print(std::cout);
  std::cout << "\npaper-shape checks: every empirical failure rate sits "
               "below its Chernoff bound (the bounds\nare loose at these "
               "lambda — 'whp' is asymptotic); S4 failures shrink fast with "
               "n; S5/S6 hold\nfor every S1-passing committee, exactly as "
               "Corollaries 5.1/5.2 derive them from S1-S4.\n";
  return 0;
}
