// E8 — the common-core lemmas behind both coins, measured directly.
//
// Lemma 4.2:  in Algorithm 1, the number of *common* values (received by
//             >= f+1 correct processes by the end of phase 1) satisfies
//             c >= 9ε/(1+6ε) · n.
// Lemma 4.4:  P[global minimum is common] >= c/n − 1/3 + ε.
// Lemma B.1:  committee version, c >= d(11−3d)/(1+9d) · λ.
//
// We run the coins with instrumented phase-1 snapshots (the rows of the
// proof's table T), count common values exactly, and print measured
// minima/averages next to the analytic lower bounds.
#include <iostream>
#include <map>

#include "coin/shared_coin.h"
#include "coin/whp_coin.h"
#include "committee/params.h"
#include "common/args.h"
#include "common/ser.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/env.h"
#include "sim/simulation.h"

using namespace coincidence;

namespace {

struct CoreStats {
  double min_c = 1e18;
  double avg_c = 0;
  int runs = 0;
  int min_common = 0;  // runs where the global minimum was common
};

/// Counts values received by >= threshold distinct processes' snapshots.
template <typename GetSnapshot>
std::size_t count_common(std::size_t n, std::size_t threshold,
                         GetSnapshot snapshot_of,
                         const std::map<crypto::ProcessId, bool>& is_origin) {
  std::map<crypto::ProcessId, std::size_t> received_by;
  for (crypto::ProcessId i = 0; i < n; ++i)
    for (crypto::ProcessId origin : snapshot_of(i))
      if (is_origin.count(origin)) ++received_by[origin];
  std::size_t c = 0;
  for (const auto& [origin, count] : received_by)
    if (count >= threshold) ++c;
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  const int runs = static_cast<int>(args.get_int("runs", 60));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 14));

  // ---- Lemma 4.2 / 4.4: Algorithm 1 ------------------------------------
  std::cout << "== E8: common-core lemmas (" << runs << " runs per row) ==\n\n"
            << "Lemma 4.2 / 4.4 — shared coin (Algorithm 1):\n";
  Table t1({"n", "eps", "f", "sched", "c measured (min/avg)",
            "bound 9e/(1+6e)n", "P[min common]", "bound c/n-1/3+e"});
  // Low-resilience edge (ε near the paper's 0.109 constant): f ≈ 0.2 n,
  // so processes stop at n−f firsts and the adversary can keep up to f
  // values out of every snapshot — the regime where Lemma 4.2 bites.
  for (std::size_t n : {24, 36, 48}) {
   for (bool hostile : {false, true}) {
    double eps = 0.135;
    auto f = static_cast<std::size_t>((1.0 / 3.0 - eps) * static_cast<double>(n));
    CoreStats stats;
    for (int run = 0; run < runs; ++run) {
      core::Env env = core::Env::make_relaxed(n, seed + run);
      sim::SimConfig cfg;
      cfg.n = n;
      cfg.seed = seed * 31 + run;
      cfg.fairness_bound = 64 * n;  // wide latitude for the hostile row
      sim::Simulation sim(cfg);
      if (hostile) {
        // Starve a third of the senders: their firsts arrive last, which
        // is exactly what pushes c toward the lemma's worst case.
        std::vector<sim::ProcessId> victims;
        for (std::size_t v = 0; v < n / 3; ++v)
          victims.push_back(static_cast<sim::ProcessId>(v));
        sim.set_adversary(std::make_unique<sim::DelaySendersAdversary>(
            std::move(victims), /*ordered=*/true));
      }
      for (crypto::ProcessId i = 0; i < n; ++i) {
        coin::SharedCoin::Config ccfg;
        ccfg.tag = "coin";
        ccfg.round = static_cast<std::uint64_t>(run);
        ccfg.n = n;
        ccfg.f = f;
        ccfg.vrf = env.vrf;
        ccfg.registry = env.registry;
        sim.add_process(std::make_unique<coin::CoinHost>(
            std::make_unique<coin::SharedCoin>(ccfg)));
      }
      sim.start();
      sim.run();

      std::map<crypto::ProcessId, bool> origins;
      for (crypto::ProcessId i = 0; i < n; ++i) origins[i] = true;
      auto snapshot_of = [&](crypto::ProcessId i)
          -> const std::set<crypto::ProcessId>& {
        return dynamic_cast<const coin::SharedCoin&>(
                   dynamic_cast<coin::CoinHost&>(sim.process(i)).coin())
            .phase1_snapshot();
      };
      // All processes are correct here: threshold f+1 per the lemma.
      std::size_t c = count_common(n, f + 1, snapshot_of, origins);
      stats.min_c = std::min(stats.min_c, static_cast<double>(c));
      stats.avg_c += static_cast<double>(c);
      ++stats.runs;

      // Was the global minimum common? Find the min VRF origin offline.
      Bytes min_value;
      crypto::ProcessId min_origin = 0;
      for (crypto::ProcessId i = 0; i < n; ++i) {
        Writer w;
        w.str("shared-coin").u64(static_cast<std::uint64_t>(run));
        auto out = env.vrf->eval(env.registry->sk_of(i), w.bytes());
        if (min_value.empty() || out.value < min_value) {
          min_value = out.value;
          min_origin = i;
        }
      }
      std::size_t receivers = 0;
      for (crypto::ProcessId i = 0; i < n; ++i)
        receivers += snapshot_of(i).count(min_origin);
      if (receivers >= f + 1) ++stats.min_common;
    }
    double actual_eps = 1.0 / 3.0 - static_cast<double>(f) / static_cast<double>(n);
    double c_bound = 9.0 * actual_eps / (1.0 + 6.0 * actual_eps) *
                     static_cast<double>(n);
    double p_bound = stats.min_c / static_cast<double>(n) - 1.0 / 3.0 +
                     actual_eps;
    t1.add_row({std::to_string(n), Table::num(actual_eps, 3),
                std::to_string(f), hostile ? "delay" : "random",
                Table::num(stats.min_c, 0) + " / " +
                    Table::num(stats.avg_c / stats.runs, 1),
                Table::num(c_bound, 1),
                Table::num(static_cast<double>(stats.min_common) / stats.runs, 3),
                Table::num(p_bound, 3)});
   }
  }
  t1.print(std::cout);

  // ---- Lemma B.1: Algorithm 2 ------------------------------------------
  std::cout << "\nLemma B.1 — WHP coin (Algorithm 2), d = 0.02:\n";
  Table t2({"n", "lambda", "c measured (min/avg)", "bound d(11-3d)/(1+9d)λ"});
  for (std::size_t n : {64, 128, 256}) {
    committee::Params p = committee::Params::derive(n, 0.25, 0.02, false);
    double min_c = 1e18, avg_c = 0;
    int counted = 0;
    for (int run = 0; run < runs / 2; ++run) {
      core::Env env = core::Env::make_relaxed(n, seed + run);
      sim::SimConfig cfg;
      cfg.n = n;
      cfg.seed = seed * 77 + run;
      sim::Simulation sim(cfg);
      for (crypto::ProcessId i = 0; i < n; ++i) {
        coin::WhpCoin::Config ccfg;
        ccfg.tag = "coin";
        ccfg.round = static_cast<std::uint64_t>(run);
        ccfg.params = p;
        ccfg.vrf = env.vrf;
        ccfg.registry = env.registry;
        ccfg.sampler = env.sampler;
        sim.add_process(std::make_unique<coin::CoinHost>(
            std::make_unique<coin::WhpCoin>(ccfg)));
      }
      sim.start();
      sim.run();

      // Origins = first-committee members; common threshold = B+1
      // second-committee receivers.
      std::map<crypto::ProcessId, bool> origins;
      for (crypto::ProcessId i = 0; i < n; ++i)
        if (env.sampler->sample(i, "coin/first").sampled) origins[i] = true;
      auto snapshot_of = [&](crypto::ProcessId i)
          -> const std::set<crypto::ProcessId>& {
        return dynamic_cast<const coin::WhpCoin&>(
                   dynamic_cast<coin::CoinHost&>(sim.process(i)).coin())
            .phase1_snapshot();
      };
      std::size_t c = count_common(n, p.B + 1, snapshot_of, origins);
      if (c == 0) continue;  // liveness whp-failure run: no snapshots
      min_c = std::min(min_c, static_cast<double>(c));
      avg_c += static_cast<double>(c);
      ++counted;
    }
    double bound = p.d * (11.0 - 3.0 * p.d) / (1.0 + 9.0 * p.d) * p.lambda;
    t2.add_row({std::to_string(n), Table::num(p.lambda, 1),
                counted ? Table::num(min_c, 0) + " / " +
                              Table::num(avg_c / counted, 1)
                        : "n/a",
                Table::num(bound, 1)});
  }
  t2.print(std::cout);

  std::cout << "\npaper-shape checks: measured common-value counts c sit "
               "above both lemmas' lower bounds in\nevery run (the bounds "
               "are worst-case over adversarial schedules; random "
               "asynchrony does better);\nP[global min common] dominates "
               "the Lemma 4.4 expression built from the measured c.\n";
  return 0;
}
