// E1 — Lemma 4.8 / Theorem 4.13: the shared coin's success rate.
//
// Sweeps ε (equivalently f = (1/3−ε)n) for Algorithm 1, measures the
// empirical probability that all correct processes output the same bit
// under random asynchrony and under a hostile content-*oblivious*
// scheduler, and prints it next to the paper's analytic lower bound
//   2 · (18ε² + 24ε − 1) / (6(1+6ε))        (both values of b together).
// Also checks Remark 4.10: ε = 1/3 (f = 0) behaves like a fair coin.
#include <iostream>

#include "committee/params.h"
#include "common/args.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/coin_runner.h"
#include "core/parallel.h"

using namespace coincidence;

int main(int argc, char** argv) {
  Args args(argc, argv);
  const auto n = static_cast<std::size_t>(args.get_int("n", 36));
  const int runs = static_cast<int>(args.get_int("runs", 200));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 5));
  core::ThreadPool pool(
      static_cast<std::size_t>(args.get_int("threads", 0)));

  std::cout << "== E1: shared-coin (Algorithm 1) success rate, n=" << n
            << ", " << runs << " flips per row, " << pool.size()
            << " threads ==\n\n";

  Table t({"epsilon", "f", "sched", "agree rate", "95% CI",
           "paper bound(x2)", "ones frac"});

  for (double eps : {1.0 / 3.0, 0.30, 0.25, 0.20, 0.15, 0.12}) {
    auto f = static_cast<std::size_t>((1.0 / 3.0 - eps) * static_cast<double>(n));
    double actual_eps = 1.0 / 3.0 - static_cast<double>(f) / static_cast<double>(n);
    for (bool hostile : {false, true}) {
      // Independent seeded flips: fan out on the pool, fold serially in
      // input order — tallies match a serial loop bit for bit.
      std::vector<core::CoinOptions> flips(static_cast<std::size_t>(runs));
      for (int run = 0; run < runs; ++run) {
        core::CoinOptions& o = flips[static_cast<std::size_t>(run)];
        o.kind = core::CoinKind::kShared;
        o.n = n;
        // Env epsilon drives f inside the runner; inject via epsilon.
        o.epsilon = f == 0 ? 1.0 / 3.0 - 1e-9 : actual_eps;
        o.seed = seed * 100003 + 17 * f + run;
        o.round = static_cast<std::uint64_t>(run);
        // Hostile-but-legal: starve a third of the senders' messages.
        if (hostile) o.delay_senders = n / 3;
      }
      std::vector<core::CoinReport> reports = core::parallel_map(
          pool, flips.size(),
          [&](std::size_t i) { return core::run_coin_trial(flips[i]); });
      std::size_t agree = 0, ones = 0, done = 0;
      for (const core::CoinReport& r : reports) {
        if (!r.all_returned) continue;
        ++done;
        if (r.agreed_bit) {
          ++agree;
          ones += static_cast<std::size_t>(*r.agreed_bit);
        }
      }
      double rate = done ? static_cast<double>(agree) / done : 0.0;
      Interval ci = wilson_interval(agree, done);
      double bound = 2.0 * committee::coin_success_lower_bound(actual_eps);
      t.add_row({Table::num(actual_eps, 3), std::to_string(f),
                 hostile ? "delay" : "random", Table::num(rate, 3),
                 "[" + Table::num(ci.lo, 3) + "," + Table::num(ci.hi, 3) + "]",
                 Table::num(std::max(0.0, bound), 3),
                 Table::num(agree ? static_cast<double>(ones) / agree : 0.0, 3)});
    }
  }

  t.print(std::cout);
  std::cout << "\npaper-shape checks: measured agreement >= the analytic "
               "bound at every epsilon; the bound\nrises toward 1 as eps -> "
               "1/3 and the f=0 row shows a fair coin (ones frac ~ 0.5, "
               "Remark 4.10).\n";
  return 0;
}
