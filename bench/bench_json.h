// Minimal JSON emission for the bench binaries' --json modes.
//
// The CI quick-bench job and the committed BENCH_*.json snapshots need
// machine-readable output, but the repo takes no JSON dependency: the
// values emitted here are flat name->number records plus a context
// block, which this ~60-line writer covers exactly.
#pragma once

#include <fstream>
#include <string>
#include <utility>
#include <vector>

namespace coincidence::bench {

/// Accumulates rows of (name, numeric fields) and writes
///   {"context": {...}, "benchmarks": [{"name": ..., fields...}, ...]}
/// — the same top-level shape google-benchmark's JSON reporter uses, so
/// downstream tooling can treat both files alike.
class BenchJson {
 public:
  void context(const std::string& key, const std::string& value) {
    context_.emplace_back(key, "\"" + escape(value) + "\"");
  }
  void context(const std::string& key, double value) {
    context_.emplace_back(key, number(value));
  }

  struct Row {
    std::string name;
    std::vector<std::pair<std::string, std::string>> fields;
  };

  /// Starts a row; chain field() calls on the returned reference.
  Row& row(const std::string& name) {
    rows_.push_back({name, {}});
    return rows_.back();
  }
  static void field(Row& r, const std::string& key, double value) {
    r.fields.emplace_back(key, number(value));
  }
  static void field(Row& r, const std::string& key, const std::string& value) {
    r.fields.emplace_back(key, "\"" + escape(value) + "\"");
  }

  bool write(const std::string& path) const {
    std::ofstream out(path);
    if (!out) return false;
    out << "{\n  \"context\": {";
    for (std::size_t i = 0; i < context_.size(); ++i)
      out << (i ? "," : "") << "\n    \"" << escape(context_[i].first)
          << "\": " << context_[i].second;
    out << "\n  },\n  \"benchmarks\": [";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      out << (i ? "," : "") << "\n    {\"name\": \"" << escape(rows_[i].name)
          << "\"";
      for (const auto& [key, value] : rows_[i].fields)
        out << ", \"" << escape(key) << "\": " << value;
      out << "}";
    }
    out << "\n  ]\n}\n";
    return out.good();
  }

 private:
  static std::string escape(const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }
  static std::string number(double v) {
    std::string s = std::to_string(v);
    // Trim trailing zeros but keep one decimal ("3.0", not "3.").
    while (s.size() > 1 && s.back() == '0' && s[s.size() - 2] != '.')
      s.pop_back();
    return s;
  }

  std::vector<std::pair<std::string, std::string>> context_;
  std::vector<Row> rows_;
};

}  // namespace coincidence::bench
