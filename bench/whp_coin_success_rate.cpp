// E2 — Lemma B.7 / Theorem 5.4: the committee (WHP) coin.
//
// Sweeps the committee margin d and the system size n for Algorithm 2,
// measuring liveness (all correct processes return — S3 territory) and
// agreement (same output bit), next to the paper's analytic rate
//   2 · (18d² + 27d − 1) / (3(5+6d)(1−d)(1+9d)).
// At small n the bound is weak/negative — visible in the table — while
// the empirical rates are already high: the asymptotic analysis is
// conservative, not wrong.
#include <iostream>

#include "committee/params.h"
#include "common/args.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/coin_runner.h"
#include "core/parallel.h"

using namespace coincidence;

int main(int argc, char** argv) {
  Args args(argc, argv);
  const int runs = static_cast<int>(args.get_int("runs", 120));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 6));
  core::ThreadPool pool(
      static_cast<std::size_t>(args.get_int("threads", 0)));

  std::cout << "== E2: WHP coin (Algorithm 2), " << runs
            << " flips per row, " << pool.size() << " threads ==\n\n";

  Table t({"n", "d", "W", "silent f", "returned", "agree|returned",
           "95% CI", "paper bound(x2)"});

  struct Row {
    std::size_t n;
    double d;
    std::size_t silent;  // Byzantine committee members (silent)
  };
  const Row rows[] = {{64, 0.01, 0},  {64, 0.04, 0},  {64, 0.08, 0},
                      {128, 0.01, 0}, {128, 0.04, 0}, {128, 0.08, 0},
                      {256, 0.04, 0}, {256, 0.08, 0},
                      // full Byzantine load f = (1/3 - 0.25) n, silent:
                      {128, 0.01, 10}, {256, 0.04, 21}};

  for (const Row& row : rows) {
    committee::Params params =
        committee::Params::derive(row.n, 0.25, row.d, /*strict=*/false);
    std::vector<core::CoinOptions> flips(static_cast<std::size_t>(runs));
    for (int run = 0; run < runs; ++run) {
      core::CoinOptions& o = flips[static_cast<std::size_t>(run)];
      o.kind = core::CoinKind::kWhp;
      o.n = row.n;
      o.d = row.d;
      o.seed = seed * 999983 + 131 * run + row.n;
      o.round = static_cast<std::uint64_t>(run);
      o.silent = row.silent;
    }
    std::vector<core::CoinReport> reports = core::parallel_map(
        pool, flips.size(),
        [&](std::size_t i) { return core::run_coin_trial(flips[i]); });
    std::size_t returned = 0, agree = 0;
    for (const core::CoinReport& r : reports) {
      if (!r.all_returned) continue;
      ++returned;
      if (r.agreed_bit) ++agree;
    }
    double agree_rate =
        returned ? static_cast<double>(agree) / returned : 0.0;
    Interval ci = wilson_interval(agree, returned);
    double bound = 2.0 * committee::whp_coin_success_lower_bound(row.d);
    t.add_row({std::to_string(row.n), Table::num(row.d, 2),
               std::to_string(params.W), std::to_string(row.silent),
               Table::num(static_cast<double>(returned) / runs, 3),
               Table::num(agree_rate, 3),
               "[" + Table::num(ci.lo, 3) + "," + Table::num(ci.hi, 3) + "]",
               Table::num(bound, 3)});
  }

  t.print(std::cout);
  std::cout << "\npaper-shape checks: agreement beats the (often vacuous "
               "at these n) analytic bound\neverywhere; raising d raises W, "
               "visibly trading liveness margin (S3, 'returned') for\n"
               "intersection margin (S5/S6). At fixed d the S3 failure "
               "decays like n^-c3 with a small\nc3 — the whp guarantee is "
               "asymptotic, which is why small d dominates at these n.\n";
  return 0;
}
