// Randomness beacon from the WHP coin (Algorithm 2).
//
// Committee-sampled coins are exactly what blockchain beacons need: every
// round, a fresh unpredictable bit that all participants agree on, at
// Õ(n) communication. This example flips `rounds` beacon bits across a
// cluster and reports agreement quality, bit balance and word cost —
// including what happens when f committee members go silent.
//
//   ./randomness_beacon [--n 96] [--rounds 24] [--seed 2] [--silent 3]
#include <iostream>

#include "common/args.h"
#include "common/table.h"
#include "core/coin_runner.h"

using namespace coincidence;

int main(int argc, char** argv) {
  Args args(argc, argv);
  const auto n = static_cast<std::size_t>(args.get_int("n", 96));
  const auto rounds = static_cast<std::uint64_t>(args.get_int("rounds", 24));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 2));
  const auto silent = static_cast<std::size_t>(args.get_int("silent", 0));

  std::cout << "randomness beacon: " << rounds << " WHP-coin rounds, n=" << n
            << ", silent committee members: " << silent << "\n\n";

  std::string bits;
  std::size_t agreed = 0, returned = 0, ones = 0;
  std::uint64_t total_words = 0;

  for (std::uint64_t round = 0; round < rounds; ++round) {
    core::CoinOptions o;
    o.kind = core::CoinKind::kWhp;
    o.n = n;
    o.round = round;
    o.seed = seed * 7919 + round;
    o.silent = silent;
    core::CoinReport r = core::run_coin_trial(o);
    total_words += r.correct_words;
    if (!r.all_returned) {
      bits += '?';
      continue;
    }
    ++returned;
    if (r.agreed_bit) {
      ++agreed;
      ones += static_cast<std::size_t>(*r.agreed_bit);
      bits += static_cast<char>('0' + *r.agreed_bit);
    } else {
      bits += 'X';  // processes returned but split — coin failure
    }
  }

  std::cout << "beacon output : " << bits << "\n"
            << "  (digit = unanimous bit, X = split outputs, ? = a process "
               "did not return)\n\n";

  Table t({"metric", "value"});
  t.add_row({"rounds flipped", std::to_string(rounds)});
  t.add_row({"all returned", std::to_string(returned)});
  t.add_row({"unanimous", std::to_string(agreed)});
  t.add_row({"ones / unanimous",
             std::to_string(ones) + " / " + std::to_string(agreed)});
  t.add_row({"avg words per flip",
             Table::count(rounds ? total_words / rounds : 0)});
  t.print(std::cout);

  std::cout << "\nThe paper guarantees a constant success rate (Theorem "
               "5.4);\ndisagreements and non-returns are the whp tail the "
               "\"WHP coin\" name warns about.\n";
  return 0;
}
