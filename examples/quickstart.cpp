// Quickstart: run one sub-quadratic Byzantine Agreement instance.
//
//   ./quickstart [--n 64] [--ones 32] [--seed 1] [--crash 0] [--silent 0]
//                [--junk 0] [--adversary random|fifo|delay-senders|split]
//
// n processes propose bits (the first `ones` propose 1, the rest 0), a
// mix of Byzantine behaviours is applied to the highest ids, and the
// protocol of the paper (Algorithm 4: committee approvers + WHP coin)
// runs over the simulated asynchronous network until everyone decides.
#include <iostream>

#include "common/args.h"
#include "core/runner.h"

using namespace coincidence;

int main(int argc, char** argv) {
  Args args(argc, argv);
  core::RunOptions o;
  o.protocol = core::Protocol::kBaWhp;
  o.n = static_cast<std::size_t>(args.get_int("n", 64));
  o.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  o.crash = static_cast<std::size_t>(args.get_int("crash", 0));
  o.silent = static_cast<std::size_t>(args.get_int("silent", 0));
  o.junk = static_cast<std::size_t>(args.get_int("junk", 0));

  auto ones = static_cast<std::size_t>(
      args.get_int("ones", static_cast<std::int64_t>(o.n / 2)));
  o.inputs.assign(o.n, ba::kZero);
  for (std::size_t i = 0; i < ones && i < o.n; ++i) o.inputs[i] = ba::kOne;

  std::string adv = args.get("adversary", "random");
  if (adv == "fifo") o.adversary = core::AdversaryKind::kFifo;
  else if (adv == "delay-senders") o.adversary = core::AdversaryKind::kDelaySenders;
  else if (adv == "split") o.adversary = core::AdversaryKind::kSplit;

  std::cout << "coincidence quickstart — Byzantine Agreement WHP\n"
            << "  n=" << o.n << "  inputs: " << ones << "x1, "
            << (o.n - ones) << "x0"
            << "  faults: crash=" << o.crash << " silent=" << o.silent
            << " junk=" << o.junk << "  adversary=" << adv << "\n\n";

  core::RunReport r = core::run_agreement(o);

  if (!r.all_correct_decided) {
    std::cout << "run hit the whp-failure tail: not every correct process "
                 "decided (try another --seed or a larger --n)\n";
    return 1;
  }
  std::cout << "decision          : " << *r.decision << "\n"
            << "agreement         : " << (r.agreement ? "yes" : "VIOLATED")
            << "\n"
            << "last decided round: " << r.max_decided_round << "\n"
            << "words (correct)   : " << r.correct_words << "\n"
            << "messages          : " << r.messages << "\n"
            << "causal duration   : " << r.duration << "\n"
            << "tolerated f       : " << r.protocol_f << " (faulty: "
            << r.faulty << ")\n";
  return 0;
}
