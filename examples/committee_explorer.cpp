// Committee parameter explorer — a calculator for the paper's §2/§5.1
// parameter space.
//
//   ./committee_explorer [--n 500] [--eps 0.2] [--d 0.05] [--samples 400]
//
// For the given n it prints the admissible ε window, then for (ε, d) —
// defaults: window midpoints — the derived f, λ, W, B, the analytic coin
// success-rate bounds, the Chernoff failure bounds for S1–S4, and an
// empirical committee-size histogram so the abstract quantities become
// concrete. Invalid parameters are diagnosed rather than rejected
// silently — this is the tool to consult before configuring a cluster.
#include <iostream>

#include "committee/params.h"
#include "common/args.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/env.h"

using namespace coincidence;

int main(int argc, char** argv) {
  Args args(argc, argv);
  const auto n = static_cast<std::size_t>(args.get_int("n", 500));
  const auto samples = static_cast<std::size_t>(args.get_int("samples", 400));

  committee::Window ew = committee::epsilon_window(n);
  std::cout << "n = " << n << "\n"
            << "epsilon window (S2 §2): (" << Table::num(ew.lo, 4) << ", "
            << Table::num(ew.hi, 4) << ")"
            << (ew.feasible() ? "" : "  — EMPTY: n too small for the strict model")
            << "\n";
  if (!ew.feasible()) return 1;

  double eps = args.get_double("eps", ew.midpoint());
  committee::Window dw = committee::d_window(n, eps);
  std::cout << "d window for eps=" << Table::num(eps, 4) << " (§5.1): ("
            << Table::num(dw.lo, 4) << ", " << Table::num(dw.hi, 4) << ")"
            << (dw.feasible() ? "" : "  — EMPTY at this epsilon") << "\n\n";
  if (!dw.feasible()) return 1;

  double d = args.get_double("d", dw.midpoint());
  bool strict = ew.contains(eps) && dw.contains(d);
  committee::Params p = committee::Params::derive(n, eps, d, strict);
  if (!strict)
    std::cout << "(parameters outside the strict windows: derived in "
                 "relaxed mode)\n\n";

  Table t({"quantity", "value", "meaning"});
  t.add_row({"f", std::to_string(p.f), "tolerated Byzantine processes"});
  t.add_row({"n/f", Table::num(static_cast<double>(n) / std::max<std::size_t>(p.f, 1), 2),
             "resilience ratio (paper: ~4.5 asymptotically)"});
  t.add_row({"lambda", Table::num(p.lambda, 2), "expected committee size 8 ln n"});
  t.add_row({"W", std::to_string(p.W), "wait threshold (2/3+3d)λ"});
  t.add_row({"B", std::to_string(p.B), "committee Byzantine bound (1/3−d)λ"});
  t.add_row({"coin rate (Alg 1)",
             Table::num(committee::coin_success_lower_bound(eps), 4),
             "Lemma 4.8 lower bound, per bit value"});
  t.add_row({"coin rate (Alg 2)",
             Table::num(committee::whp_coin_success_lower_bound(d), 4),
             "Lemma B.7 lower bound, per bit value"});
  t.add_row({"S1 fail bound", Table::num(committee::s1_failure_bound(p.lambda, d), 4),
             "P[committee too large]"});
  t.add_row({"S2 fail bound", Table::num(committee::s2_failure_bound(p.lambda, d), 4),
             "P[committee too small]"});
  t.add_row({"S3 fail bound", Table::num(committee::s3_failure_bound(p.lambda, d, eps), 4),
             "P[< W correct members]"});
  t.add_row({"S4 fail bound", Table::num(committee::s4_failure_bound(p.lambda, d, eps), 4),
             "P[> B Byzantine members]"});
  t.print(std::cout);

  // Empirical committee-size histogram from real VRF sampling.
  core::Env env = core::Env::make(n, eps, d, 42, /*strict=*/false);
  Histogram sizes;
  for (std::size_t c = 0; c < samples; ++c) {
    std::size_t size = 0;
    for (std::size_t i = 0; i < n; ++i)
      if (env.sampler->sample(static_cast<crypto::ProcessId>(i),
                              "explore-" + std::to_string(c)).sampled)
        ++size;
    sizes.add(size);
  }
  std::cout << "\ncommittee-size distribution over " << samples
            << " sampled committees (W=" << p.W << "):\n";
  sizes.print(std::cout, 50);
  return 0;
}
