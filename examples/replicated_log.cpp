// Replicated log on top of binary agreement — the classic application
// the paper's introduction motivates ("practical use-cases of BA in
// large-scale systems").
//
// Each log slot holds one client command that replicas either commit (1)
// or skip (0). Replicas receive the command proposal unreliably — some
// see it, some don't — and agree per slot on the bit "I have the
// command". All slots run *concurrently* over one network and one
// trusted setup (the paper's §3 point: the PKI is set up once for any
// number of BA instances). The decided log is identical at every correct
// replica; a few replicas are Byzantine-silent throughout.
//
//   ./replicated_log [--n 64] [--slots 8] [--seed 1] [--loss 0.3]
#include <iomanip>
#include <iostream>
#include <vector>

#include "common/args.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/session.h"

using namespace coincidence;

int main(int argc, char** argv) {
  Args args(argc, argv);
  const auto n = static_cast<std::size_t>(args.get_int("n", 64));
  const auto slots = static_cast<std::size_t>(args.get_int("slots", 8));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const double loss = args.get_double("loss", 0.3);

  std::cout << "replicated log: " << slots << " concurrent slots over " << n
            << " replicas, command propagation loss " << loss << "\n\n";

  Rng rng(seed);
  std::vector<std::vector<ba::Value>> inputs(slots,
                                             std::vector<ba::Value>(n, 0));
  std::vector<std::size_t> holders(slots, 0);
  for (std::size_t slot = 0; slot < slots; ++slot) {
    // The client's command reaches each replica with probability 1-loss.
    for (std::size_t i = 0; i < n; ++i) {
      if (!rng.next_bool(loss)) {
        inputs[slot][i] = ba::kOne;
        ++holders[slot];
      }
    }
  }

  core::Session session(core::Env::make_relaxed(n, seed));
  core::SessionReport report =
      session.run_concurrent_slots(inputs, seed, /*silent_faults=*/2);

  std::vector<std::string> committed;
  Table table({"slot", "command", "replicas holding it", "decision",
               "rounds"});
  for (std::size_t slot = 0; slot < slots; ++slot) {
    const core::SlotReport& sr = report.slots[slot];
    std::string command = "cmd-" + std::to_string(slot);
    std::string decision = "stalled";
    if (sr.all_correct_decided) {
      decision = *sr.decision == 1 ? "COMMIT" : "skip";
      if (*sr.decision == 1) committed.push_back(command);
    }
    table.add_row({std::to_string(slot), command,
                   std::to_string(holders[slot]) + "/" + std::to_string(n),
                   decision, std::to_string(sr.max_decided_round)});
  }

  table.print(std::cout);
  std::cout << "\ntotal words across all concurrent slots: "
            << Table::count(report.correct_words) << "\n";
  std::cout << "\nfinal log at every correct replica:";
  if (committed.empty()) std::cout << " (empty)";
  for (const auto& c : committed) std::cout << ' ' << c;
  std::cout << "\n\nBA validity in action: slots whose command reached "
               "every replica always commit;\nslots nobody saw are always "
               "skipped; mixed slots agree on one of the two.\n";
  return 0;
}
