// Adversary laboratory: every agreement protocol in the repo against
// every scheduling strategy, with the maximum Byzantine load each
// protocol tolerates. Prints one Table-1-style grid of outcomes.
//
//   ./adversary_lab [--n 12] [--whp-n 64] [--seed 3]
//
// (The committee protocol gets its own, larger n: committees need
// room to breathe — see DESIGN.md §6.)
#include <iostream>

#include "common/args.h"
#include "common/table.h"
#include "core/runner.h"

using namespace coincidence;

int main(int argc, char** argv) {
  Args args(argc, argv);
  const auto small_n = static_cast<std::size_t>(args.get_int("n", 12));
  const auto whp_n = static_cast<std::size_t>(args.get_int("whp-n", 64));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 3));

  const core::AdversaryKind kAdversaries[] = {
      core::AdversaryKind::kRandom, core::AdversaryKind::kFifo,
      core::AdversaryKind::kDelaySenders, core::AdversaryKind::kSplit};

  Table t({"protocol", "n", "f used", "adversary", "decided", "agreed",
           "rounds", "words"});

  int row = 0;
  for (core::Protocol p : core::all_protocols()) {
    for (core::AdversaryKind a : kAdversaries) {
      core::RunOptions o;
      o.protocol = p;
      ++row;
      // Committee-based protocols need room for W-quorums; everything
      // else runs at the small n so Bracha's n^3 stays cheap.
      o.n = core::min_n_for(p) >= 32 ? whp_n : small_n;
      o.seed = seed + 1000 * row;  // independent draw per row
      o.adversary = a;
      o.inputs.assign(o.n, ba::kZero);
      for (std::size_t i = 0; i < o.n / 2; ++i) o.inputs[i] = ba::kOne;

      // Load the protocol with as many Byzantine processes as it claims
      // to tolerate, split across behaviours.
      core::RunReport probe;  // f depends on protocol: probe via report
      {
        core::RunOptions probe_o = o;
        probe = core::run_agreement(probe_o);
      }
      std::size_t f = probe.protocol_f;
      // The mmr-whp-coin hybrid's skeleton tolerates (n-1)/3 but its coin
      // committees only (1/3 - eps)n: load it at the min of the two
      // (running it at full skeleton-f stalls the coin — the documented
      // resilience caveat of the hybrid, observable by editing this cap).
      if (p == core::Protocol::kMmrWhpCoin)
        f = std::min(f, static_cast<std::size_t>(
                            (1.0 / 3.0 - o.epsilon) * static_cast<double>(o.n)));
      o.crash = f / 3;
      o.junk = f / 3;
      o.silent = f - o.crash - o.junk;

      core::RunReport r = core::run_agreement(o);
      t.add_row({core::protocol_name(p), std::to_string(o.n),
                 std::to_string(r.faulty), core::adversary_name(a),
                 r.all_correct_decided ? "yes" : "NO",
                 r.agreement ? "yes" : "NO",
                 std::to_string(r.max_decided_round),
                 Table::count(r.correct_words)});
    }
  }

  std::cout << "adversary lab — all protocols x all scheduling strategies, "
               "max Byzantine load\n\n";
  t.print(std::cout);
  std::cout << "\n'NO' under decided is a liveness whp-failure; under "
               "agreed it would be a safety whp-failure.\n";
  return 0;
}
