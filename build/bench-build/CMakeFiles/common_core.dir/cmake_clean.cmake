file(REMOVE_RECURSE
  "../bench/common_core"
  "../bench/common_core.pdb"
  "CMakeFiles/common_core.dir/common_core.cpp.o"
  "CMakeFiles/common_core.dir/common_core.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
