# Empty dependencies file for common_core.
# This may be replaced when dependencies are built.
