file(REMOVE_RECURSE
  "../bench/committee_bounds"
  "../bench/committee_bounds.pdb"
  "CMakeFiles/committee_bounds.dir/committee_bounds.cpp.o"
  "CMakeFiles/committee_bounds.dir/committee_bounds.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/committee_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
