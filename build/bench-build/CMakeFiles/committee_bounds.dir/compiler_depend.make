# Empty compiler generated dependencies file for committee_bounds.
# This may be replaced when dependencies are built.
