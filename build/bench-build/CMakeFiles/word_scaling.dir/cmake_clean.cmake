file(REMOVE_RECURSE
  "../bench/word_scaling"
  "../bench/word_scaling.pdb"
  "CMakeFiles/word_scaling.dir/word_scaling.cpp.o"
  "CMakeFiles/word_scaling.dir/word_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/word_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
