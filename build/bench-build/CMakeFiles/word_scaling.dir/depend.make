# Empty dependencies file for word_scaling.
# This may be replaced when dependencies are built.
