file(REMOVE_RECURSE
  "../bench/session_throughput"
  "../bench/session_throughput.pdb"
  "CMakeFiles/session_throughput.dir/session_throughput.cpp.o"
  "CMakeFiles/session_throughput.dir/session_throughput.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/session_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
