# Empty compiler generated dependencies file for session_throughput.
# This may be replaced when dependencies are built.
