file(REMOVE_RECURSE
  "../bench/adversary_ablation"
  "../bench/adversary_ablation.pdb"
  "CMakeFiles/adversary_ablation.dir/adversary_ablation.cpp.o"
  "CMakeFiles/adversary_ablation.dir/adversary_ablation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adversary_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
