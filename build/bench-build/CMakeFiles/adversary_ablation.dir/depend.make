# Empty dependencies file for adversary_ablation.
# This may be replaced when dependencies are built.
