file(REMOVE_RECURSE
  "../bench/fig1_committee_structure"
  "../bench/fig1_committee_structure.pdb"
  "CMakeFiles/fig1_committee_structure.dir/fig1_committee_structure.cpp.o"
  "CMakeFiles/fig1_committee_structure.dir/fig1_committee_structure.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_committee_structure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
