# Empty dependencies file for fig1_committee_structure.
# This may be replaced when dependencies are built.
