# Empty compiler generated dependencies file for whp_coin_success_rate.
# This may be replaced when dependencies are built.
