file(REMOVE_RECURSE
  "../bench/whp_coin_success_rate"
  "../bench/whp_coin_success_rate.pdb"
  "CMakeFiles/whp_coin_success_rate.dir/whp_coin_success_rate.cpp.o"
  "CMakeFiles/whp_coin_success_rate.dir/whp_coin_success_rate.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whp_coin_success_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
