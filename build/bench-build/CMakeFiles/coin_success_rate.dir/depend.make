# Empty dependencies file for coin_success_rate.
# This may be replaced when dependencies are built.
