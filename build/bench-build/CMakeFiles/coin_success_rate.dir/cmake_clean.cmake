file(REMOVE_RECURSE
  "../bench/coin_success_rate"
  "../bench/coin_success_rate.pdb"
  "CMakeFiles/coin_success_rate.dir/coin_success_rate.cpp.o"
  "CMakeFiles/coin_success_rate.dir/coin_success_rate.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coin_success_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
