# Empty dependencies file for rounds_to_decide.
# This may be replaced when dependencies are built.
