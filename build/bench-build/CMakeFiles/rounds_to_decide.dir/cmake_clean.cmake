file(REMOVE_RECURSE
  "../bench/rounds_to_decide"
  "../bench/rounds_to_decide.pdb"
  "CMakeFiles/rounds_to_decide.dir/rounds_to_decide.cpp.o"
  "CMakeFiles/rounds_to_decide.dir/rounds_to_decide.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rounds_to_decide.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
