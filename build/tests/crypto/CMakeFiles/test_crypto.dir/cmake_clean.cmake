file(REMOVE_RECURSE
  "CMakeFiles/test_crypto.dir/test_bignum.cpp.o"
  "CMakeFiles/test_crypto.dir/test_bignum.cpp.o.d"
  "CMakeFiles/test_crypto.dir/test_ddh_vrf.cpp.o"
  "CMakeFiles/test_crypto.dir/test_ddh_vrf.cpp.o.d"
  "CMakeFiles/test_crypto.dir/test_fast_vrf.cpp.o"
  "CMakeFiles/test_crypto.dir/test_fast_vrf.cpp.o.d"
  "CMakeFiles/test_crypto.dir/test_hmac.cpp.o"
  "CMakeFiles/test_crypto.dir/test_hmac.cpp.o.d"
  "CMakeFiles/test_crypto.dir/test_prime.cpp.o"
  "CMakeFiles/test_crypto.dir/test_prime.cpp.o.d"
  "CMakeFiles/test_crypto.dir/test_prime_group.cpp.o"
  "CMakeFiles/test_crypto.dir/test_prime_group.cpp.o.d"
  "CMakeFiles/test_crypto.dir/test_sha256.cpp.o"
  "CMakeFiles/test_crypto.dir/test_sha256.cpp.o.d"
  "CMakeFiles/test_crypto.dir/test_shamir.cpp.o"
  "CMakeFiles/test_crypto.dir/test_shamir.cpp.o.d"
  "CMakeFiles/test_crypto.dir/test_signer.cpp.o"
  "CMakeFiles/test_crypto.dir/test_signer.cpp.o.d"
  "test_crypto"
  "test_crypto.pdb"
  "test_crypto[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
