
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/crypto/test_bignum.cpp" "tests/crypto/CMakeFiles/test_crypto.dir/test_bignum.cpp.o" "gcc" "tests/crypto/CMakeFiles/test_crypto.dir/test_bignum.cpp.o.d"
  "/root/repo/tests/crypto/test_ddh_vrf.cpp" "tests/crypto/CMakeFiles/test_crypto.dir/test_ddh_vrf.cpp.o" "gcc" "tests/crypto/CMakeFiles/test_crypto.dir/test_ddh_vrf.cpp.o.d"
  "/root/repo/tests/crypto/test_fast_vrf.cpp" "tests/crypto/CMakeFiles/test_crypto.dir/test_fast_vrf.cpp.o" "gcc" "tests/crypto/CMakeFiles/test_crypto.dir/test_fast_vrf.cpp.o.d"
  "/root/repo/tests/crypto/test_hmac.cpp" "tests/crypto/CMakeFiles/test_crypto.dir/test_hmac.cpp.o" "gcc" "tests/crypto/CMakeFiles/test_crypto.dir/test_hmac.cpp.o.d"
  "/root/repo/tests/crypto/test_prime.cpp" "tests/crypto/CMakeFiles/test_crypto.dir/test_prime.cpp.o" "gcc" "tests/crypto/CMakeFiles/test_crypto.dir/test_prime.cpp.o.d"
  "/root/repo/tests/crypto/test_prime_group.cpp" "tests/crypto/CMakeFiles/test_crypto.dir/test_prime_group.cpp.o" "gcc" "tests/crypto/CMakeFiles/test_crypto.dir/test_prime_group.cpp.o.d"
  "/root/repo/tests/crypto/test_sha256.cpp" "tests/crypto/CMakeFiles/test_crypto.dir/test_sha256.cpp.o" "gcc" "tests/crypto/CMakeFiles/test_crypto.dir/test_sha256.cpp.o.d"
  "/root/repo/tests/crypto/test_shamir.cpp" "tests/crypto/CMakeFiles/test_crypto.dir/test_shamir.cpp.o" "gcc" "tests/crypto/CMakeFiles/test_crypto.dir/test_shamir.cpp.o.d"
  "/root/repo/tests/crypto/test_signer.cpp" "tests/crypto/CMakeFiles/test_crypto.dir/test_signer.cpp.o" "gcc" "tests/crypto/CMakeFiles/test_crypto.dir/test_signer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/coincidence_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ba/CMakeFiles/coincidence_ba.dir/DependInfo.cmake"
  "/root/repo/build/src/coin/CMakeFiles/coincidence_coin.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/coincidence_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/committee/CMakeFiles/coincidence_committee.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/coincidence_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/coincidence_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
