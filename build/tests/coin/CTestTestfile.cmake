# CMake generated Testfile for 
# Source directory: /root/repo/tests/coin
# Build directory: /root/repo/build/tests/coin
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/coin/test_coin[1]_include.cmake")
