# CMake generated Testfile for 
# Source directory: /root/repo/tests/ba
# Build directory: /root/repo/build/tests/ba
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/ba/test_ba[1]_include.cmake")
