file(REMOVE_RECURSE
  "CMakeFiles/test_ba.dir/test_approver.cpp.o"
  "CMakeFiles/test_ba.dir/test_approver.cpp.o.d"
  "CMakeFiles/test_ba.dir/test_approver_attacks.cpp.o"
  "CMakeFiles/test_ba.dir/test_approver_attacks.cpp.o.d"
  "CMakeFiles/test_ba.dir/test_ba_whp.cpp.o"
  "CMakeFiles/test_ba.dir/test_ba_whp.cpp.o.d"
  "CMakeFiles/test_ba.dir/test_baselines.cpp.o"
  "CMakeFiles/test_ba.dir/test_baselines.cpp.o.d"
  "CMakeFiles/test_ba.dir/test_rbc.cpp.o"
  "CMakeFiles/test_ba.dir/test_rbc.cpp.o.d"
  "test_ba"
  "test_ba.pdb"
  "test_ba[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ba.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
