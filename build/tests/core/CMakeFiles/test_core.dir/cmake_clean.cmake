file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/test_ddh_integration.cpp.o"
  "CMakeFiles/test_core.dir/test_ddh_integration.cpp.o.d"
  "CMakeFiles/test_core.dir/test_runner.cpp.o"
  "CMakeFiles/test_core.dir/test_runner.cpp.o.d"
  "CMakeFiles/test_core.dir/test_session.cpp.o"
  "CMakeFiles/test_core.dir/test_session.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
