file(REMOVE_RECURSE
  "CMakeFiles/test_committee.dir/test_params.cpp.o"
  "CMakeFiles/test_committee.dir/test_params.cpp.o.d"
  "CMakeFiles/test_committee.dir/test_sampler.cpp.o"
  "CMakeFiles/test_committee.dir/test_sampler.cpp.o.d"
  "test_committee"
  "test_committee.pdb"
  "test_committee[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_committee.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
