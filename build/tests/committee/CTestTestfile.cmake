# CMake generated Testfile for 
# Source directory: /root/repo/tests/committee
# Build directory: /root/repo/build/tests/committee
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/committee/test_committee[1]_include.cmake")
