file(REMOVE_RECURSE
  "CMakeFiles/test_properties.dir/test_ba_properties.cpp.o"
  "CMakeFiles/test_properties.dir/test_ba_properties.cpp.o.d"
  "CMakeFiles/test_properties.dir/test_bignum_properties.cpp.o"
  "CMakeFiles/test_properties.dir/test_bignum_properties.cpp.o.d"
  "CMakeFiles/test_properties.dir/test_coin_properties.cpp.o"
  "CMakeFiles/test_properties.dir/test_coin_properties.cpp.o.d"
  "CMakeFiles/test_properties.dir/test_committee_properties.cpp.o"
  "CMakeFiles/test_properties.dir/test_committee_properties.cpp.o.d"
  "CMakeFiles/test_properties.dir/test_fuzz_decoders.cpp.o"
  "CMakeFiles/test_properties.dir/test_fuzz_decoders.cpp.o.d"
  "CMakeFiles/test_properties.dir/test_invariants.cpp.o"
  "CMakeFiles/test_properties.dir/test_invariants.cpp.o.d"
  "CMakeFiles/test_properties.dir/test_safety_hunt.cpp.o"
  "CMakeFiles/test_properties.dir/test_safety_hunt.cpp.o.d"
  "CMakeFiles/test_properties.dir/test_word_accounting.cpp.o"
  "CMakeFiles/test_properties.dir/test_word_accounting.cpp.o.d"
  "test_properties"
  "test_properties.pdb"
  "test_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
