file(REMOVE_RECURSE
  "CMakeFiles/test_sim.dir/test_adversary.cpp.o"
  "CMakeFiles/test_sim.dir/test_adversary.cpp.o.d"
  "CMakeFiles/test_sim.dir/test_faults.cpp.o"
  "CMakeFiles/test_sim.dir/test_faults.cpp.o.d"
  "CMakeFiles/test_sim.dir/test_metrics.cpp.o"
  "CMakeFiles/test_sim.dir/test_metrics.cpp.o.d"
  "CMakeFiles/test_sim.dir/test_pending_pool.cpp.o"
  "CMakeFiles/test_sim.dir/test_pending_pool.cpp.o.d"
  "CMakeFiles/test_sim.dir/test_simulation.cpp.o"
  "CMakeFiles/test_sim.dir/test_simulation.cpp.o.d"
  "CMakeFiles/test_sim.dir/test_vector_clock.cpp.o"
  "CMakeFiles/test_sim.dir/test_vector_clock.cpp.o.d"
  "test_sim"
  "test_sim.pdb"
  "test_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
