# Empty compiler generated dependencies file for randomness_beacon.
# This may be replaced when dependencies are built.
