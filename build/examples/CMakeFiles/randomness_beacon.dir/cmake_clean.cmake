file(REMOVE_RECURSE
  "CMakeFiles/randomness_beacon.dir/randomness_beacon.cpp.o"
  "CMakeFiles/randomness_beacon.dir/randomness_beacon.cpp.o.d"
  "randomness_beacon"
  "randomness_beacon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/randomness_beacon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
