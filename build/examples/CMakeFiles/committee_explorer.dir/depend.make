# Empty dependencies file for committee_explorer.
# This may be replaced when dependencies are built.
