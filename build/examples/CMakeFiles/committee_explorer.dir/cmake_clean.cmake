file(REMOVE_RECURSE
  "CMakeFiles/committee_explorer.dir/committee_explorer.cpp.o"
  "CMakeFiles/committee_explorer.dir/committee_explorer.cpp.o.d"
  "committee_explorer"
  "committee_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/committee_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
