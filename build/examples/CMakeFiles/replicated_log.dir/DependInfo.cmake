
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/replicated_log.cpp" "examples/CMakeFiles/replicated_log.dir/replicated_log.cpp.o" "gcc" "examples/CMakeFiles/replicated_log.dir/replicated_log.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/coincidence_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ba/CMakeFiles/coincidence_ba.dir/DependInfo.cmake"
  "/root/repo/build/src/coin/CMakeFiles/coincidence_coin.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/coincidence_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/committee/CMakeFiles/coincidence_committee.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/coincidence_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/coincidence_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
