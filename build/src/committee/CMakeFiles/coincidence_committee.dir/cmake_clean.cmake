file(REMOVE_RECURSE
  "CMakeFiles/coincidence_committee.dir/params.cpp.o"
  "CMakeFiles/coincidence_committee.dir/params.cpp.o.d"
  "CMakeFiles/coincidence_committee.dir/sampler.cpp.o"
  "CMakeFiles/coincidence_committee.dir/sampler.cpp.o.d"
  "libcoincidence_committee.a"
  "libcoincidence_committee.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coincidence_committee.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
