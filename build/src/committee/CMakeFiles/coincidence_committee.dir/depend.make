# Empty dependencies file for coincidence_committee.
# This may be replaced when dependencies are built.
