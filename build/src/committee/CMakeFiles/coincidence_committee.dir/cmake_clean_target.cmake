file(REMOVE_RECURSE
  "libcoincidence_committee.a"
)
