file(REMOVE_RECURSE
  "libcoincidence_sim.a"
)
