
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/adversary.cpp" "src/sim/CMakeFiles/coincidence_sim.dir/adversary.cpp.o" "gcc" "src/sim/CMakeFiles/coincidence_sim.dir/adversary.cpp.o.d"
  "/root/repo/src/sim/metrics.cpp" "src/sim/CMakeFiles/coincidence_sim.dir/metrics.cpp.o" "gcc" "src/sim/CMakeFiles/coincidence_sim.dir/metrics.cpp.o.d"
  "/root/repo/src/sim/pending_pool.cpp" "src/sim/CMakeFiles/coincidence_sim.dir/pending_pool.cpp.o" "gcc" "src/sim/CMakeFiles/coincidence_sim.dir/pending_pool.cpp.o.d"
  "/root/repo/src/sim/simulation.cpp" "src/sim/CMakeFiles/coincidence_sim.dir/simulation.cpp.o" "gcc" "src/sim/CMakeFiles/coincidence_sim.dir/simulation.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/sim/CMakeFiles/coincidence_sim.dir/trace.cpp.o" "gcc" "src/sim/CMakeFiles/coincidence_sim.dir/trace.cpp.o.d"
  "/root/repo/src/sim/vector_clock.cpp" "src/sim/CMakeFiles/coincidence_sim.dir/vector_clock.cpp.o" "gcc" "src/sim/CMakeFiles/coincidence_sim.dir/vector_clock.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/coincidence_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
