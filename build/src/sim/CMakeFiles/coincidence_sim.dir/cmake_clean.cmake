file(REMOVE_RECURSE
  "CMakeFiles/coincidence_sim.dir/adversary.cpp.o"
  "CMakeFiles/coincidence_sim.dir/adversary.cpp.o.d"
  "CMakeFiles/coincidence_sim.dir/metrics.cpp.o"
  "CMakeFiles/coincidence_sim.dir/metrics.cpp.o.d"
  "CMakeFiles/coincidence_sim.dir/pending_pool.cpp.o"
  "CMakeFiles/coincidence_sim.dir/pending_pool.cpp.o.d"
  "CMakeFiles/coincidence_sim.dir/simulation.cpp.o"
  "CMakeFiles/coincidence_sim.dir/simulation.cpp.o.d"
  "CMakeFiles/coincidence_sim.dir/trace.cpp.o"
  "CMakeFiles/coincidence_sim.dir/trace.cpp.o.d"
  "CMakeFiles/coincidence_sim.dir/vector_clock.cpp.o"
  "CMakeFiles/coincidence_sim.dir/vector_clock.cpp.o.d"
  "libcoincidence_sim.a"
  "libcoincidence_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coincidence_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
