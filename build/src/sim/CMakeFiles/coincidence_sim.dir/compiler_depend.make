# Empty compiler generated dependencies file for coincidence_sim.
# This may be replaced when dependencies are built.
