file(REMOVE_RECURSE
  "CMakeFiles/coincidence_coin.dir/dealer_coin.cpp.o"
  "CMakeFiles/coincidence_coin.dir/dealer_coin.cpp.o.d"
  "CMakeFiles/coincidence_coin.dir/shared_coin.cpp.o"
  "CMakeFiles/coincidence_coin.dir/shared_coin.cpp.o.d"
  "CMakeFiles/coincidence_coin.dir/whp_coin.cpp.o"
  "CMakeFiles/coincidence_coin.dir/whp_coin.cpp.o.d"
  "libcoincidence_coin.a"
  "libcoincidence_coin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coincidence_coin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
