file(REMOVE_RECURSE
  "libcoincidence_coin.a"
)
