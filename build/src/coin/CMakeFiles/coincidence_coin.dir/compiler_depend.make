# Empty compiler generated dependencies file for coincidence_coin.
# This may be replaced when dependencies are built.
