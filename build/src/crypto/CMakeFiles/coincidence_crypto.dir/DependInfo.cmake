
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/bignum.cpp" "src/crypto/CMakeFiles/coincidence_crypto.dir/bignum.cpp.o" "gcc" "src/crypto/CMakeFiles/coincidence_crypto.dir/bignum.cpp.o.d"
  "/root/repo/src/crypto/ddh_vrf.cpp" "src/crypto/CMakeFiles/coincidence_crypto.dir/ddh_vrf.cpp.o" "gcc" "src/crypto/CMakeFiles/coincidence_crypto.dir/ddh_vrf.cpp.o.d"
  "/root/repo/src/crypto/fast_vrf.cpp" "src/crypto/CMakeFiles/coincidence_crypto.dir/fast_vrf.cpp.o" "gcc" "src/crypto/CMakeFiles/coincidence_crypto.dir/fast_vrf.cpp.o.d"
  "/root/repo/src/crypto/hmac.cpp" "src/crypto/CMakeFiles/coincidence_crypto.dir/hmac.cpp.o" "gcc" "src/crypto/CMakeFiles/coincidence_crypto.dir/hmac.cpp.o.d"
  "/root/repo/src/crypto/key_registry.cpp" "src/crypto/CMakeFiles/coincidence_crypto.dir/key_registry.cpp.o" "gcc" "src/crypto/CMakeFiles/coincidence_crypto.dir/key_registry.cpp.o.d"
  "/root/repo/src/crypto/prime.cpp" "src/crypto/CMakeFiles/coincidence_crypto.dir/prime.cpp.o" "gcc" "src/crypto/CMakeFiles/coincidence_crypto.dir/prime.cpp.o.d"
  "/root/repo/src/crypto/prime_group.cpp" "src/crypto/CMakeFiles/coincidence_crypto.dir/prime_group.cpp.o" "gcc" "src/crypto/CMakeFiles/coincidence_crypto.dir/prime_group.cpp.o.d"
  "/root/repo/src/crypto/sha256.cpp" "src/crypto/CMakeFiles/coincidence_crypto.dir/sha256.cpp.o" "gcc" "src/crypto/CMakeFiles/coincidence_crypto.dir/sha256.cpp.o.d"
  "/root/repo/src/crypto/shamir.cpp" "src/crypto/CMakeFiles/coincidence_crypto.dir/shamir.cpp.o" "gcc" "src/crypto/CMakeFiles/coincidence_crypto.dir/shamir.cpp.o.d"
  "/root/repo/src/crypto/signer.cpp" "src/crypto/CMakeFiles/coincidence_crypto.dir/signer.cpp.o" "gcc" "src/crypto/CMakeFiles/coincidence_crypto.dir/signer.cpp.o.d"
  "/root/repo/src/crypto/vrf.cpp" "src/crypto/CMakeFiles/coincidence_crypto.dir/vrf.cpp.o" "gcc" "src/crypto/CMakeFiles/coincidence_crypto.dir/vrf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/coincidence_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
