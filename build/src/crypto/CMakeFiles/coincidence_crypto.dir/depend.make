# Empty dependencies file for coincidence_crypto.
# This may be replaced when dependencies are built.
