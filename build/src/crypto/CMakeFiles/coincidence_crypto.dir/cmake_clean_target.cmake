file(REMOVE_RECURSE
  "libcoincidence_crypto.a"
)
