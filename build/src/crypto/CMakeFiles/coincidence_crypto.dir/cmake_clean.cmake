file(REMOVE_RECURSE
  "CMakeFiles/coincidence_crypto.dir/bignum.cpp.o"
  "CMakeFiles/coincidence_crypto.dir/bignum.cpp.o.d"
  "CMakeFiles/coincidence_crypto.dir/ddh_vrf.cpp.o"
  "CMakeFiles/coincidence_crypto.dir/ddh_vrf.cpp.o.d"
  "CMakeFiles/coincidence_crypto.dir/fast_vrf.cpp.o"
  "CMakeFiles/coincidence_crypto.dir/fast_vrf.cpp.o.d"
  "CMakeFiles/coincidence_crypto.dir/hmac.cpp.o"
  "CMakeFiles/coincidence_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/coincidence_crypto.dir/key_registry.cpp.o"
  "CMakeFiles/coincidence_crypto.dir/key_registry.cpp.o.d"
  "CMakeFiles/coincidence_crypto.dir/prime.cpp.o"
  "CMakeFiles/coincidence_crypto.dir/prime.cpp.o.d"
  "CMakeFiles/coincidence_crypto.dir/prime_group.cpp.o"
  "CMakeFiles/coincidence_crypto.dir/prime_group.cpp.o.d"
  "CMakeFiles/coincidence_crypto.dir/sha256.cpp.o"
  "CMakeFiles/coincidence_crypto.dir/sha256.cpp.o.d"
  "CMakeFiles/coincidence_crypto.dir/shamir.cpp.o"
  "CMakeFiles/coincidence_crypto.dir/shamir.cpp.o.d"
  "CMakeFiles/coincidence_crypto.dir/signer.cpp.o"
  "CMakeFiles/coincidence_crypto.dir/signer.cpp.o.d"
  "CMakeFiles/coincidence_crypto.dir/vrf.cpp.o"
  "CMakeFiles/coincidence_crypto.dir/vrf.cpp.o.d"
  "libcoincidence_crypto.a"
  "libcoincidence_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coincidence_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
