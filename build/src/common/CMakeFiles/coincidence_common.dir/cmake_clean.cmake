file(REMOVE_RECURSE
  "CMakeFiles/coincidence_common.dir/args.cpp.o"
  "CMakeFiles/coincidence_common.dir/args.cpp.o.d"
  "CMakeFiles/coincidence_common.dir/bytes.cpp.o"
  "CMakeFiles/coincidence_common.dir/bytes.cpp.o.d"
  "CMakeFiles/coincidence_common.dir/errors.cpp.o"
  "CMakeFiles/coincidence_common.dir/errors.cpp.o.d"
  "CMakeFiles/coincidence_common.dir/rng.cpp.o"
  "CMakeFiles/coincidence_common.dir/rng.cpp.o.d"
  "CMakeFiles/coincidence_common.dir/ser.cpp.o"
  "CMakeFiles/coincidence_common.dir/ser.cpp.o.d"
  "CMakeFiles/coincidence_common.dir/stats.cpp.o"
  "CMakeFiles/coincidence_common.dir/stats.cpp.o.d"
  "CMakeFiles/coincidence_common.dir/table.cpp.o"
  "CMakeFiles/coincidence_common.dir/table.cpp.o.d"
  "libcoincidence_common.a"
  "libcoincidence_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coincidence_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
