# Empty compiler generated dependencies file for coincidence_common.
# This may be replaced when dependencies are built.
