file(REMOVE_RECURSE
  "libcoincidence_common.a"
)
