file(REMOVE_RECURSE
  "CMakeFiles/coincidence_core.dir/coin_runner.cpp.o"
  "CMakeFiles/coincidence_core.dir/coin_runner.cpp.o.d"
  "CMakeFiles/coincidence_core.dir/env.cpp.o"
  "CMakeFiles/coincidence_core.dir/env.cpp.o.d"
  "CMakeFiles/coincidence_core.dir/runner.cpp.o"
  "CMakeFiles/coincidence_core.dir/runner.cpp.o.d"
  "CMakeFiles/coincidence_core.dir/session.cpp.o"
  "CMakeFiles/coincidence_core.dir/session.cpp.o.d"
  "libcoincidence_core.a"
  "libcoincidence_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coincidence_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
