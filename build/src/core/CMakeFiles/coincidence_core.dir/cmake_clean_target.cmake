file(REMOVE_RECURSE
  "libcoincidence_core.a"
)
