# Empty compiler generated dependencies file for coincidence_core.
# This may be replaced when dependencies are built.
