
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ba/approver.cpp" "src/ba/CMakeFiles/coincidence_ba.dir/approver.cpp.o" "gcc" "src/ba/CMakeFiles/coincidence_ba.dir/approver.cpp.o.d"
  "/root/repo/src/ba/ba_whp.cpp" "src/ba/CMakeFiles/coincidence_ba.dir/ba_whp.cpp.o" "gcc" "src/ba/CMakeFiles/coincidence_ba.dir/ba_whp.cpp.o.d"
  "/root/repo/src/ba/ben_or.cpp" "src/ba/CMakeFiles/coincidence_ba.dir/ben_or.cpp.o" "gcc" "src/ba/CMakeFiles/coincidence_ba.dir/ben_or.cpp.o.d"
  "/root/repo/src/ba/bracha.cpp" "src/ba/CMakeFiles/coincidence_ba.dir/bracha.cpp.o" "gcc" "src/ba/CMakeFiles/coincidence_ba.dir/bracha.cpp.o.d"
  "/root/repo/src/ba/instance_mux.cpp" "src/ba/CMakeFiles/coincidence_ba.dir/instance_mux.cpp.o" "gcc" "src/ba/CMakeFiles/coincidence_ba.dir/instance_mux.cpp.o.d"
  "/root/repo/src/ba/mmr.cpp" "src/ba/CMakeFiles/coincidence_ba.dir/mmr.cpp.o" "gcc" "src/ba/CMakeFiles/coincidence_ba.dir/mmr.cpp.o.d"
  "/root/repo/src/ba/rbc.cpp" "src/ba/CMakeFiles/coincidence_ba.dir/rbc.cpp.o" "gcc" "src/ba/CMakeFiles/coincidence_ba.dir/rbc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/coincidence_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/coincidence_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/coincidence_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/committee/CMakeFiles/coincidence_committee.dir/DependInfo.cmake"
  "/root/repo/build/src/coin/CMakeFiles/coincidence_coin.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
