file(REMOVE_RECURSE
  "libcoincidence_ba.a"
)
