# Empty compiler generated dependencies file for coincidence_ba.
# This may be replaced when dependencies are built.
