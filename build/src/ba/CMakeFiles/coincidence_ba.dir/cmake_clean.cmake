file(REMOVE_RECURSE
  "CMakeFiles/coincidence_ba.dir/approver.cpp.o"
  "CMakeFiles/coincidence_ba.dir/approver.cpp.o.d"
  "CMakeFiles/coincidence_ba.dir/ba_whp.cpp.o"
  "CMakeFiles/coincidence_ba.dir/ba_whp.cpp.o.d"
  "CMakeFiles/coincidence_ba.dir/ben_or.cpp.o"
  "CMakeFiles/coincidence_ba.dir/ben_or.cpp.o.d"
  "CMakeFiles/coincidence_ba.dir/bracha.cpp.o"
  "CMakeFiles/coincidence_ba.dir/bracha.cpp.o.d"
  "CMakeFiles/coincidence_ba.dir/instance_mux.cpp.o"
  "CMakeFiles/coincidence_ba.dir/instance_mux.cpp.o.d"
  "CMakeFiles/coincidence_ba.dir/mmr.cpp.o"
  "CMakeFiles/coincidence_ba.dir/mmr.cpp.o.d"
  "CMakeFiles/coincidence_ba.dir/rbc.cpp.o"
  "CMakeFiles/coincidence_ba.dir/rbc.cpp.o.d"
  "libcoincidence_ba.a"
  "libcoincidence_ba.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coincidence_ba.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
