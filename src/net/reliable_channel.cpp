#include "net/reliable_channel.h"

#include <algorithm>

#include "common/errors.h"
#include "common/ser.h"

namespace coincidence::net {

namespace {

// Data frame: u64 seq | str inner_tag | u64 inner_words | blob payload.
Bytes encode_data(std::uint64_t seq, const std::string& tag,
                  std::size_t words, BytesView payload) {
  Writer w;
  w.u64(seq).str(tag).u64(words).blob(payload);
  return w.take();
}

// Ack frame: u64 seq (cumulative acks would save words but complicate the
// retransmit bookkeeping; per-frame acks keep every state transition
// locally checkable, which the fuzz rows lean on).
Bytes encode_ack(std::uint64_t seq) {
  Writer w;
  w.u64(seq);
  return w.take();
}

}  // namespace

ReliableChannel::ReliableChannel(ReliableChannelConfig cfg, DeliverFn deliver)
    : cfg_(std::move(cfg)),
      deliver_(std::move(deliver)),
      dat_tag_(cfg_.tag + "/dat"),
      ack_tag_(cfg_.tag + "/ack") {
  COIN_REQUIRE(cfg_.initial_rto >= 1, "initial_rto must be >= 1");
  COIN_REQUIRE(cfg_.max_rto >= cfg_.initial_rto,
               "max_rto must be >= initial_rto");
}

void ReliableChannel::send(sim::Context& ctx, sim::ProcessId to,
                           sim::Tag tag, SharedBytes payload,
                           std::size_t words) {
  const std::uint64_t seq = next_seq_[to]++;
  Outgoing out;
  out.to = to;
  out.frame = SharedBytes(encode_data(seq, tag.str(), words, payload));
  out.words = words + 1;  // +1 word for the seq/length header
  out.rto = cfg_.initial_rto;
  out.due = ctx.now() + out.rto;
  ctx.send(to, dat_tag_, out.frame, out.words);
  outgoing_.emplace(std::make_pair(to, seq), std::move(out));
  arm_timer(ctx);
}

void ReliableChannel::broadcast(sim::Context& ctx, sim::Tag tag,
                                SharedBytes payload, std::size_t words) {
  for (sim::ProcessId to = 0; to < ctx.n(); ++to) {
    send(ctx, to, tag, payload, words);
  }
}

bool ReliableChannel::handle(sim::Context& ctx, const sim::Message& msg) {
  if (msg.tag == dat_tag_) return handle_data(ctx, msg);
  if (msg.tag == ack_tag_) return handle_ack(msg);
  return false;
}

bool ReliableChannel::handle_data(sim::Context& ctx, const sim::Message& msg) {
  std::uint64_t seq = 0;
  std::string inner_tag;
  std::uint64_t inner_words = 0;
  Bytes payload;
  try {
    Reader r(msg.payload);
    seq = r.u64();
    inner_tag = r.str();
    inner_words = r.u64();
    payload = r.blob();  // owned copy: the upcall payload outlives the frame
    r.done();
  } catch (const CodecError&) {
    return true;  // malformed frame from a Byzantine peer: consume, no ack
  }

  // Ack even duplicates — a repeat means our earlier ack was lost.
  ctx.send(msg.from, ack_tag_, encode_ack(seq), 1);

  PeerIn& in = incoming_[msg.from];
  if (seq < in.frontier || in.above.count(seq) != 0) {
    ++duplicates_suppressed_;
    return true;
  }
  in.above.insert(seq);
  while (in.above.erase(in.frontier) != 0) ++in.frontier;

  ++delivered_;
  if (deliver_) {
    deliver_(msg.from, sim::Tag(inner_tag), SharedBytes(std::move(payload)),
             static_cast<std::size_t>(inner_words));
  }
  return true;
}

bool ReliableChannel::handle_ack(const sim::Message& msg) {
  std::uint64_t seq = 0;
  try {
    Reader r(msg.payload);
    seq = r.u64();
    r.done();
  } catch (const CodecError&) {
    return true;
  }
  outgoing_.erase({msg.from, seq});
  return true;
}

void ReliableChannel::on_wakeup(sim::Context& ctx) {
  const std::uint64_t now = ctx.now();
  if (armed_ && *armed_ > now) return;  // not ours (spurious / inner wakeup)
  armed_.reset();
  for (auto it = outgoing_.begin(); it != outgoing_.end();) {
    Outgoing& out = it->second;
    if (out.due > now) {
      ++it;
      continue;
    }
    if (out.attempts >= cfg_.max_retransmits) {
      ++abandoned_;
      // The payload is lost for good — surface it instead of dropping it
      // silently: Metrics counts it and Observer::on_dead_letter fires.
      ctx.note_dead_letter(out.to, dat_tag_, out.words);
      it = outgoing_.erase(it);
      continue;
    }
    ++out.attempts;
    ++retransmits_;
    ctx.send_retransmission(out.to, dat_tag_, out.frame, out.words);
    out.rto = std::min(out.rto * 2, cfg_.max_rto);
    out.due = now + out.rto;
    ++it;
  }
  arm_timer(ctx);
}

void ReliableChannel::arm_timer(sim::Context& ctx) {
  if (outgoing_.empty()) return;
  std::uint64_t min_due = UINT64_MAX;
  for (const auto& [key, out] : outgoing_) {
    min_due = std::min(min_due, out.due);
  }
  // Skip if an already-armed wakeup fires early enough; extra wakeups are
  // harmless (on_wakeup re-checks dues) but bloat the timer heap.
  if (armed_ && *armed_ <= min_due) return;
  const std::uint64_t now = ctx.now();
  const std::uint64_t delay = min_due > now ? min_due - now : 1;
  ctx.schedule_wakeup(delay);
  armed_ = now + delay;
}

void ReliableChannel::reset() {
  outgoing_.clear();
  next_seq_.clear();
  incoming_.clear();
  armed_.reset();
  retransmits_ = 0;
  abandoned_ = 0;
  delivered_ = 0;
  duplicates_suppressed_ = 0;
}

}  // namespace coincidence::net
