#include "net/reliable_process.h"

#include <utility>

#include "common/errors.h"

namespace coincidence::net {

// The Context handed to the inner process: identical to the outer one
// except that non-self sends are framed through the ReliableChannel.
class ReliableProcess::ChannelContext final : public sim::Context {
 public:
  explicit ChannelContext(ReliableProcess* host) : host_(host) {}

  sim::ProcessId self() const override { return outer().self(); }
  std::size_t n() const override { return outer().n(); }

  void send(sim::ProcessId to, sim::Tag tag, SharedBytes payload,
            std::size_t words) override {
    if (to == self()) {
      // The self-queue never drops or duplicates; framing it would only
      // add a useless ack round-trip.
      outer().send(to, tag, std::move(payload), words);
      return;
    }
    host_->channel_.send(outer(), to, tag, std::move(payload), words);
  }

  void broadcast(sim::Tag tag, SharedBytes payload,
                 std::size_t words) override {
    for (sim::ProcessId to = 0; to < n(); ++to) {
      send(to, tag, payload, words);
    }
  }

  Rng& rng() override { return outer().rng(); }
  std::uint64_t causal_depth() const override {
    return outer().causal_depth();
  }
  std::uint64_t now() const override { return outer().now(); }
  void schedule_wakeup(std::uint64_t delay) override {
    outer().schedule_wakeup(delay);
  }
  void persist(BytesView snapshot) override { outer().persist(snapshot); }

  // Telemetry notes pass straight through — the channel is invisible to
  // the decide/round accounting of the wrapped protocol.
  void note_decide(sim::Tag scope, int value, std::uint64_t round) override {
    outer().note_decide(scope, value, round);
  }
  void note_round(std::uint64_t round) override { outer().note_round(round); }
  void note_dead_letter(sim::ProcessId to, sim::Tag tag,
                        std::size_t words) override {
    outer().note_dead_letter(to, tag, words);
  }
  void note_verify_batch(std::size_t shares, std::size_t rejects,
                         std::size_t memo_hits) override {
    outer().note_verify_batch(shares, rejects, memo_hits);
  }
  void note_sig_verify_batch(std::size_t sigs, std::size_t rejects,
                             std::size_t memo_hits) override {
    outer().note_sig_verify_batch(sigs, rejects, memo_hits);
  }
  void note_rbc_encode(std::size_t fragments) override {
    outer().note_rbc_encode(fragments);
  }
  void note_rbc_decode(bool ok, std::size_t fragments) override {
    outer().note_rbc_decode(ok, fragments);
  }

 private:
  sim::Context& outer() const {
    COIN_REQUIRE(host_->outer_ != nullptr,
                 "ChannelContext used outside a callback");
    return *host_->outer_;
  }

  ReliableProcess* host_;
};

ReliableProcess::ReliableProcess(std::unique_ptr<sim::Process> inner,
                                 ReliableChannelConfig cfg)
    : inner_(std::move(inner)),
      channel_(std::move(cfg),
               [this](sim::ProcessId from, sim::Tag tag, SharedBytes payload,
                      std::size_t words) {
                 sim::Message unwrapped;
                 unwrapped.from = from;
                 unwrapped.to = outer_->self();
                 unwrapped.tag = tag;
                 unwrapped.payload = std::move(payload);
                 unwrapped.words = words;
                 unwrapped.causal_depth = outer_->causal_depth();
                 inner_->on_message(*shim_, unwrapped);
               }),
      shim_(std::make_unique<ChannelContext>(this)) {
  COIN_REQUIRE(inner_ != nullptr, "ReliableProcess needs an inner process");
}

ReliableProcess::~ReliableProcess() = default;

void ReliableProcess::on_start(sim::Context& ctx) {
  outer_ = &ctx;
  inner_->on_start(*shim_);
}

void ReliableProcess::on_message(sim::Context& ctx, const sim::Message& msg) {
  outer_ = &ctx;
  if (channel_.handle(ctx, msg)) return;
  // Not a channel frame: a direct send (self-queue bypass, or traffic
  // from an unwrapped/Byzantine peer). Deliver as-is — the inner
  // protocol's own dedup must cope, exactly as on a raw network.
  inner_->on_message(*shim_, msg);
}

void ReliableProcess::on_wakeup(sim::Context& ctx) {
  outer_ = &ctx;
  channel_.on_wakeup(ctx);
  inner_->on_wakeup(*shim_);
}

void ReliableProcess::on_corrupt(sim::Context& ctx) {
  outer_ = &ctx;
  inner_->on_corrupt(*shim_);
}

void ReliableProcess::on_recover(sim::Context& ctx, const Bytes& snapshot) {
  outer_ = &ctx;
  channel_.reset();  // in-memory transport state did not survive
  inner_->on_recover(*shim_, snapshot);
}

}  // namespace coincidence::net
