// A reliable, exactly-once channel over lossy links.
//
// The paper assumes reliable authenticated links; sim/link.h lets the
// substrate drop, duplicate and replay packets. ReliableChannel restores
// the assumption end-to-end: every payload handed to send() is framed
// with a per-destination sequence number, retransmitted with capped
// exponential backoff (measured in delivery-events — the simulator's
// only clock) until acknowledged, and duplicate-suppressed at the
// receiver, so the upcall fires exactly once per payload per
// incarnation. Retransmissions go out via Context::send_retransmission,
// which Metrics attribute to a separate overhead bucket — the §2 word
// complexity of the wrapped protocol stays comparable across network
// profiles.
//
// The channel is a passive component (like a coin instance): its host
// Process forwards messages to handle(), forwards on_wakeup, and sends
// through send()/broadcast(). net::ReliableProcess packages exactly
// that wiring around an arbitrary inner Process.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>

#include "sim/process.h"

namespace coincidence::net {

struct ReliableChannelConfig {
  /// Routing prefix for channel frames ("<tag>/dat", "<tag>/ack").
  std::string tag = "net";
  /// Delivery-events before the first retransmission of a frame.
  std::uint64_t initial_rto = 64;
  /// Backoff cap: the retransmission interval doubles per attempt up to
  /// this bound (capped exponential backoff).
  std::uint64_t max_rto = 2048;
  /// Give-up bound per frame. With drop probability p the chance of
  /// losing a frame k+1 times is p^(k+1) — at the default 24 even a 50%
  /// lossy link fails a frame with probability ~6e-8; the bound exists
  /// so a frame addressed to a *crashed* peer cannot retransmit forever
  /// and livelock quiescence-based harnesses.
  std::uint32_t max_retransmits = 24;
};

class ReliableChannel {
 public:
  /// Exactly-once upcall: the unwrapped payload as the peer sent it.
  using DeliverFn = std::function<void(sim::ProcessId from, sim::Tag tag,
                                       SharedBytes payload,
                                       std::size_t words)>;

  ReliableChannel(ReliableChannelConfig cfg, DeliverFn deliver);

  /// Sends `payload` to `to` with exactly-once semantics. `words` is the
  /// inner message's §2 word count; the frame charges one extra word for
  /// the sequence/length header, and each ack costs one word.
  void send(sim::Context& ctx, sim::ProcessId to, sim::Tag tag,
            SharedBytes payload, std::size_t words);

  /// send() to every process. The self-copy is framed too (it traverses
  /// the self-queue, which is reliable, so it acks immediately).
  void broadcast(sim::Context& ctx, sim::Tag tag, SharedBytes payload,
                 std::size_t words);

  /// Offers a delivered message; true iff it was a channel frame (data
  /// or ack, including malformed ones, which are dropped).
  bool handle(sim::Context& ctx, const sim::Message& msg);

  /// Retransmission driver; the host must forward Process::on_wakeup.
  void on_wakeup(sim::Context& ctx);

  /// Forgets all channel state (crash recovery: sequence numbers, the
  /// unacked queue and duplicate-suppression tables are in-memory).
  void reset();

  // Introspection for tests and harness assertions.
  std::uint64_t retransmits() const { return retransmits_; }
  std::uint64_t abandoned() const { return abandoned_; }
  std::uint64_t delivered() const { return delivered_; }
  std::uint64_t duplicates_suppressed() const {
    return duplicates_suppressed_;
  }
  std::size_t unacked() const { return outgoing_.size(); }

 private:
  struct Outgoing {
    sim::ProcessId to = 0;
    // Encoded data frame; retransmissions re-send this exact SharedBytes,
    // so every copy on the wire aliases one buffer.
    SharedBytes frame;
    std::size_t words = 0;  // frame word count (inner + header)
    std::uint64_t rto = 0;
    std::uint64_t due = 0;
    std::uint32_t attempts = 0;
  };

  /// Receiver-side duplicate suppression: a cumulative frontier (all
  /// seq < frontier delivered) plus the sparse set above it, so state
  /// stays O(reordering window), not O(traffic).
  struct PeerIn {
    std::uint64_t frontier = 0;
    std::set<std::uint64_t> above;
  };

  void arm_timer(sim::Context& ctx);
  bool handle_data(sim::Context& ctx, const sim::Message& msg);
  bool handle_ack(const sim::Message& msg);

  ReliableChannelConfig cfg_;
  DeliverFn deliver_;
  // Interned once at construction: handle() compares ids, never strings.
  sim::Tag dat_tag_;
  sim::Tag ack_tag_;

  // std::map keys (to, seq): deterministic iteration order — retransmit
  // order must be a pure function of the run, like everything else.
  std::map<std::pair<sim::ProcessId, std::uint64_t>, Outgoing> outgoing_;
  std::map<sim::ProcessId, std::uint64_t> next_seq_;
  std::map<sim::ProcessId, PeerIn> incoming_;
  std::optional<std::uint64_t> armed_;  // earliest scheduled wakeup tick

  std::uint64_t retransmits_ = 0;
  std::uint64_t abandoned_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t duplicates_suppressed_ = 0;
};

}  // namespace coincidence::net
