// Decorator giving any Process exactly-once delivery over lossy links.
//
// ReliableProcess owns an inner Process and a ReliableChannel. Outbound
// sends from the inner protocol are framed through the channel (except
// self-sends — the simulator's self-queue is already reliable); inbound
// channel frames are unwrapped and handed to the inner process as
// synthetic messages carrying the original tag/payload/words. The inner
// protocol is completely unaware of the transport: the same BaProcess
// binary decides over lossless links and over 20%-drop duplicating ones.
//
// Crash recovery: the channel's sequence numbers and unacked queue are
// in-memory state, so on_recover resets the channel before the inner
// process sees its snapshot.
#pragma once

#include <memory>

#include "net/reliable_channel.h"
#include "sim/process.h"

namespace coincidence::net {

class ReliableProcess final : public sim::Process {
 public:
  explicit ReliableProcess(std::unique_ptr<sim::Process> inner,
                           ReliableChannelConfig cfg = {});
  ~ReliableProcess() override;

  void on_start(sim::Context& ctx) override;
  void on_message(sim::Context& ctx, const sim::Message& msg) override;
  void on_wakeup(sim::Context& ctx) override;
  void on_corrupt(sim::Context& ctx) override;
  void on_recover(sim::Context& ctx, const Bytes& snapshot) override;

  /// The wrapped protocol — harnesses downcast this to read decisions.
  sim::Process& inner() { return *inner_; }
  const sim::Process& inner() const { return *inner_; }

  const ReliableChannel& channel() const { return channel_; }

 private:
  class ChannelContext;  // routes inner sends through the channel

  std::unique_ptr<sim::Process> inner_;
  ReliableChannel channel_;
  std::unique_ptr<ChannelContext> shim_;
  sim::Context* outer_ = nullptr;  // bound for the duration of a callback
};

}  // namespace coincidence::net
