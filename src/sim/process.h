// Protocol-facing runtime interface.
//
// A Process is an event-driven state machine: on_start fires once, then
// on_message for every delivered message. All interaction with the world
// goes through Context, which the simulation implements. Protocol code
// never sees the scheduler, the adversary, or other processes' state —
// exactly the asynchronous message-passing model of the paper.
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.h"
#include "common/rng.h"
#include "sim/message.h"

namespace coincidence::sim {

class Context {
 public:
  virtual ~Context() = default;

  virtual ProcessId self() const = 0;
  virtual std::size_t n() const = 0;

  /// Point-to-point send. `words` is the paper word count of the message.
  /// Sending to self is free on the wire but still dispatched (after the
  /// current callback returns, to avoid reentrancy).
  virtual void send(ProcessId to, std::string tag, Bytes payload,
                    std::size_t words) = 0;

  /// Send to all n processes (including self). Word metering charges
  /// n * words, matching the paper's "send to all processes" accounting.
  virtual void broadcast(std::string tag, Bytes payload,
                         std::size_t words) = 0;

  /// Per-process deterministic randomness (local coins, Ben-Or baseline).
  virtual Rng& rng() = 0;

  /// Current causal depth observed by this process.
  virtual std::uint64_t causal_depth() const = 0;
};

class Process {
 public:
  virtual ~Process() = default;

  virtual void on_start(Context& ctx) = 0;
  virtual void on_message(Context& ctx, const Message& msg) = 0;

  /// Invoked when the adversary corrupts this process. Default: nothing —
  /// the runtime-level FaultPlan already controls the visible behaviour.
  virtual void on_corrupt(Context& /*ctx*/) {}
};

}  // namespace coincidence::sim
