// Protocol-facing runtime interface.
//
// A Process is an event-driven state machine: on_start fires once, then
// on_message for every delivered message. All interaction with the world
// goes through Context, which the simulation implements. Protocol code
// never sees the scheduler, the adversary, or other processes' state —
// exactly the asynchronous message-passing model of the paper.
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.h"
#include "common/rng.h"
#include "sim/message.h"

namespace coincidence::sim {

class Context {
 public:
  virtual ~Context() = default;

  virtual ProcessId self() const = 0;
  virtual std::size_t n() const = 0;

  /// Point-to-point send. `words` is the paper word count of the message.
  /// Sending to self is free on the wire but still dispatched (after the
  /// current callback returns, to avoid reentrancy). Tag and SharedBytes
  /// convert implicitly from std::string/Bytes; hot paths pass cached
  /// Tag values and hand the payload over once.
  virtual void send(ProcessId to, Tag tag, SharedBytes payload,
                    std::size_t words) = 0;

  /// Send to all n processes (including self). Word metering charges
  /// n * words, matching the paper's "send to all processes" accounting.
  /// The payload buffer is shared across all n enqueued copies.
  virtual void broadcast(Tag tag, SharedBytes payload,
                         std::size_t words) = 0;

  /// A send that repeats an earlier payload to repair link loss (used by
  /// net::ReliableChannel). Identical on the wire, but Metrics attribute
  /// its words to the retransmission-overhead bucket, keeping the §2
  /// word-complexity measure comparable across lossy and reliable runs.
  /// Default: an ordinary send (for harness Contexts without metering).
  virtual void send_retransmission(ProcessId to, Tag tag,
                                   SharedBytes payload, std::size_t words) {
    send(to, tag, std::move(payload), words);
  }

  /// Per-process deterministic randomness (local coins, Ben-Or baseline).
  virtual Rng& rng() = 0;

  /// Current causal depth observed by this process.
  virtual std::uint64_t causal_depth() const = 0;

  /// Global delivery count — the simulator's only notion of elapsed
  /// "time". Protocols must not branch on it (it is scheduler-dependent);
  /// it exists so transport-level backoff (net::ReliableChannel) can be
  /// expressed in delivery-events. Default for harness Contexts: 0.
  virtual std::uint64_t now() const { return 0; }

  /// Requests an on_wakeup callback once `delay` further deliveries have
  /// occurred (fires even if the network drains first — the runtime
  /// advances idle "time" to the next due wakeup). Wakeups are lost if
  /// the process crashes. Default: ignored (harness Contexts).
  virtual void schedule_wakeup(std::uint64_t delay) { (void)delay; }

  /// Writes `snapshot` to this process's stable storage, overwriting any
  /// previous snapshot. Stable storage survives kCrashRecover faults and
  /// is handed back via Process::on_recover. Default: dropped.
  virtual void persist(BytesView snapshot) { (void)snapshot; }

  // --- Telemetry notes (ISSUE 4). Pure observability: the runtime fans
  // these out to Observers and Metrics; they never influence scheduling,
  // randomness, or message flow, so instrumented and bare runs are
  // byte-identical. Defaults are no-ops for harness Contexts.

  /// This process (or a sub-protocol it hosts) produced an output: a BA
  /// decision, a coin value, an approver value set, an RBC delivery.
  /// `scope` is the reporting instance's tag prefix, `round` its round.
  virtual void note_decide(Tag scope, int value, std::uint64_t round) {
    (void)scope;
    (void)value;
    (void)round;
  }

  /// This process entered protocol round `round`.
  virtual void note_round(std::uint64_t round) { (void)round; }

  /// A transport on this process abandoned a frame addressed to `to`
  /// after exhausting its retransmission budget — the payload is lost
  /// and must be accounted, never silently dropped.
  virtual void note_dead_letter(ProcessId to, Tag tag, std::size_t words) {
    (void)to;
    (void)tag;
    (void)words;
  }

  /// This process flushed a deferred-verification batch of `shares`
  /// coin shares, of which `rejects` failed their proof checks (and were
  /// discarded) and `memo_hits` were answered by the verified-share memo.
  virtual void note_verify_batch(std::size_t shares, std::size_t rejects,
                                 std::size_t memo_hits) {
    (void)shares;
    (void)rejects;
    (void)memo_hits;
  }

  /// This process flushed a deferred signature batch (the approver's
  /// ok-proof sweep) of `sigs` HMAC checks, of which `rejects` failed and
  /// `memo_hits` were answered by the signature memo.
  virtual void note_sig_verify_batch(std::size_t sigs, std::size_t rejects,
                                     std::size_t memo_hits) {
    (void)sigs;
    (void)rejects;
    (void)memo_hits;
  }

  /// This process Reed–Solomon-encoded a value into `fragments` coded
  /// fragments (erasure-coded broadcast: source dispersal or the
  /// pre-delivery re-encode consistency check).
  virtual void note_rbc_encode(std::size_t fragments) { (void)fragments; }

  /// This process attempted an erasure decode from `fragments` collected
  /// fragments; `ok` is false when the dispersal failed the consistency
  /// check (Byzantine source) and the flow was discarded.
  virtual void note_rbc_decode(bool ok, std::size_t fragments) {
    (void)ok;
    (void)fragments;
  }
};

class Process {
 public:
  virtual ~Process() = default;

  virtual void on_start(Context& ctx) = 0;
  virtual void on_message(Context& ctx, const Message& msg) = 0;

  /// Invoked when the adversary corrupts this process. Default: nothing —
  /// the runtime-level FaultPlan already controls the visible behaviour.
  virtual void on_corrupt(Context& /*ctx*/) {}

  /// A wakeup requested via Context::schedule_wakeup came due. A single
  /// callback serves all outstanding requests at or before now().
  virtual void on_wakeup(Context& /*ctx*/) {}

  /// A kCrashRecover process restarting. `snapshot` is the last blob the
  /// process passed to Context::persist (empty if it never persisted).
  /// Contract: the implementation must treat its in-memory state as lost
  /// — reset everything and rebuild only from `snapshot`; anything else
  /// simulates RAM surviving a power cycle. Default: nothing (the
  /// process rejoins as a passive participant with stale state; safe for
  /// quorum protocols whose handlers are idempotent, but it may never
  /// decide).
  virtual void on_recover(Context& /*ctx*/, const Bytes& /*snapshot*/) {}
};

}  // namespace coincidence::sim
