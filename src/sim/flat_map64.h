// Open-addressing hash map keyed by u64 (ISSUE 3 tentpole).
//
// The simulator's hot-path indexes — PendingPool's id->index map, the
// replay history's (from,to)->ring map, NetworkProfile overrides — were
// node-based (std::map / std::unordered_map): one heap allocation per
// insert and pointer-chasing per lookup, paid per message. FlatMap64 is
// a fixed-purpose replacement: linear probing over a power-of-two slot
// array, tombstone deletion, amortized O(1) with zero per-insert
// allocations. Values must be default-constructible and movable.
//
// Iteration order is slot order (hash-dependent) — callers must not let
// it reach anything determinism-sensitive; the simulator only ever does
// keyed lookups and order-insensitive folds.
#pragma once

#include <cstdint>
#include <cstddef>
#include <utility>
#include <vector>

namespace coincidence::sim {

template <typename V>
class FlatMap64 {
 public:
  V* find(std::uint64_t key) {
    if (slots_.empty()) return nullptr;
    for (std::size_t i = probe_start(key);; i = (i + 1) & mask()) {
      Slot& s = slots_[i];
      if (s.state == State::kEmpty) return nullptr;
      if (s.state == State::kFull && s.key == key) return &s.value;
    }
  }
  const V* find(std::uint64_t key) const {
    return const_cast<FlatMap64*>(this)->find(key);
  }

  /// Returns the value slot for `key`, inserting a default-constructed
  /// value if absent.
  V& operator[](std::uint64_t key) {
    reserve_one();
    // One probe pass: stop at the first empty slot (key is absent past
    // it), remembering the first reusable slot along the way.
    constexpr std::size_t kNone = static_cast<std::size_t>(-1);
    std::size_t insert_at = kNone;
    for (std::size_t i = probe_start(key);; i = (i + 1) & mask()) {
      Slot& s = slots_[i];
      if (s.state == State::kFull) {
        if (s.key == key) return s.value;
        continue;
      }
      if (insert_at == kNone) insert_at = i;
      if (s.state == State::kEmpty) break;
    }
    Slot& t = slots_[insert_at];
    if (t.state == State::kTombstone) --tombstones_;
    t.state = State::kFull;
    t.key = key;
    t.value = V{};
    ++size_;
    return t.value;
  }

  void insert_or_assign(std::uint64_t key, V value) {
    (*this)[key] = std::move(value);
  }

  bool erase(std::uint64_t key) {
    if (slots_.empty()) return false;
    for (std::size_t i = probe_start(key);; i = (i + 1) & mask()) {
      Slot& s = slots_[i];
      if (s.state == State::kEmpty) return false;
      if (s.state == State::kFull && s.key == key) {
        s.state = State::kTombstone;
        s.value = V{};  // release held resources eagerly
        --size_;
        ++tombstones_;
        return true;
      }
    }
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Pre-sizes the table for `n` live keys (the SimConfig capacity-hint
  /// path) so churn-heavy large-n runs never rehash mid-flight. Keeps
  /// the <=50% load invariant: the slot array becomes the smallest
  /// power of two holding 2*(n+1) slots. No-op when already that large;
  /// existing entries (and no tombstones) carry over.
  void reserve(std::size_t n) {
    std::size_t target = 16;
    while (target < 2 * (n + 1)) target <<= 1;
    if (target <= slots_.size()) return;
    rehash_to(target);
  }

  /// Whitebox capacity view for the growth/compaction regression tests.
  std::size_t slot_count() const { return slots_.size(); }

  void clear() {
    slots_.clear();
    size_ = 0;
    tombstones_ = 0;
  }

  /// Order-insensitive visitation (for aggregate checks only — see the
  /// header note on iteration order).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Slot& s : slots_)
      if (s.state == State::kFull) fn(s.key, s.value);
  }

 private:
  enum class State : std::uint8_t { kEmpty = 0, kFull, kTombstone };

  struct Slot {
    std::uint64_t key = 0;
    V value{};
    State state = State::kEmpty;
  };

  std::size_t mask() const { return slots_.size() - 1; }

  std::size_t probe_start(std::uint64_t key) const {
    // splitmix64 finalizer: full-avalanche, so sequential message ids do
    // not cluster in the probe sequence.
    std::uint64_t z = key + 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return static_cast<std::size_t>(z ^ (z >> 31)) & mask();
  }

  void reserve_one() {
    if (slots_.empty()) {
      slots_.resize(16);
      return;
    }
    // Rehash when live + dead slots pass half capacity; doubling only
    // when live entries alone demand it keeps tombstone churn bounded.
    if ((size_ + tombstones_ + 1) * 2 <= slots_.size()) return;
    std::size_t new_cap = slots_.size();
    if ((size_ + 1) * 2 > slots_.size()) new_cap *= 2;
    rehash_to(new_cap);
  }

  /// Rebuilds into `new_cap` slots (a power of two >= 2*(size_+1)),
  /// dropping every tombstone.
  void rehash_to(std::size_t new_cap) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_cap, Slot{});
    size_ = 0;
    tombstones_ = 0;
    for (Slot& s : old) {
      if (s.state != State::kFull) continue;
      for (std::size_t i = probe_start(s.key);; i = (i + 1) & mask()) {
        Slot& t = slots_[i];
        if (t.state == State::kFull) continue;
        t.state = State::kFull;
        t.key = s.key;
        t.value = std::move(s.value);
        ++size_;
        break;
      }
    }
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
  std::size_t tombstones_ = 0;
};

}  // namespace coincidence::sim
