// Vector clocks — the reference implementation of Lamport's happens-before
// relation (§2 defines the delayed-adaptive adversary in terms of it).
//
// The runtime itself only tracks scalar causal depth (enough for the
// duration metric); vector clocks are used by the test-suite to verify
// that the runtime's depth accounting and visibility rules agree with
// true causality, and are available to applications that need full
// happens-before queries.
#pragma once

#include <cstdint>
#include <vector>

namespace coincidence::sim {

class VectorClock {
 public:
  VectorClock() = default;
  explicit VectorClock(std::size_t n) : ticks_(n, 0) {}

  std::size_t size() const { return ticks_.size(); }
  std::uint64_t at(std::size_t i) const { return ticks_.at(i); }

  /// Local event at process i: ticks_[i] += 1.
  void tick(std::size_t i);

  /// Component-wise max with another clock (message receive), then tick.
  void merge(const VectorClock& other);

  /// a happens-before b: a <= b component-wise and a != b.
  static bool happens_before(const VectorClock& a, const VectorClock& b);

  /// Neither happens-before the other.
  static bool concurrent(const VectorClock& a, const VectorClock& b);

  bool operator==(const VectorClock& other) const {
    return ticks_ == other.ticks_;
  }

 private:
  std::vector<std::uint64_t> ticks_;
};

}  // namespace coincidence::sim
