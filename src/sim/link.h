// Lossy-link fault injection: what the network substrate itself may do
// to a message, independently of the Byzantine adversary.
//
// The paper's model (§2) assumes reliable authenticated links: every
// message between correct processes is eventually delivered exactly
// once. A LinkPlan deliberately breaks that assumption — packets can be
// dropped, duplicated, or replaced by replays of earlier traffic on the
// same link — so the repo can exercise protocol behaviour when the
// substrate misbehaves (and so src/net/ReliableChannel has something to
// repair). All link decisions are drawn from one dedicated Rng derived
// from SimConfig::seed, so runs stay bit-for-bit replayable.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/flat_map64.h"
#include "sim/message.h"

namespace coincidence::sim {

/// Per-link misbehaviour probabilities. The default plan is reliable:
/// the runtime draws no randomness at all for reliable links, so
/// existing seeded runs are unchanged by this feature's existence.
struct LinkPlan {
  /// Probability a message is silently lost (never enters the pool).
  double drop_p = 0.0;
  /// Probability a delivered-to-the-pool message is duplicated; each
  /// duplication event enqueues 1..max_duplicates extra copies.
  double dup_p = 0.0;
  /// Cap on extra copies per duplication event (>= 1 when dup_p > 0).
  std::size_t max_duplicates = 1;
  /// Probability each send on this link additionally re-enqueues a copy
  /// of a previously *delivered* message on the same link (a stale
  /// packet bouncing around the network).
  double replay_p = 0.0;
  /// How many delivered messages per link are remembered as replay
  /// candidates (bounds the history buffer).
  std::size_t replay_window = 8;

  /// True when this plan never perturbs traffic — the runtime skips all
  /// randomness draws in that case, preserving legacy trace equality.
  bool reliable() const {
    return drop_p <= 0.0 && dup_p <= 0.0 && replay_p <= 0.0;
  }

  static LinkPlan lossless() { return {}; }
  static LinkPlan lossy(double drop) {
    LinkPlan p;
    p.drop_p = drop;
    return p;
  }
  static LinkPlan duplicating(double dup, std::size_t max_copies = 1) {
    LinkPlan p;
    p.dup_p = dup;
    p.max_duplicates = max_copies;
    return p;
  }
  static LinkPlan replaying(double replay, std::size_t window = 8) {
    LinkPlan p;
    p.replay_p = replay;
    p.replay_window = window;
    return p;
  }
};

/// Sparse per-(from, to) LinkPlan table on a flat u64-keyed hash: the
/// per-send `link()` lookup allocates nothing and touches one probe run
/// instead of walking a red-black tree. operator[] keeps the legacy
/// `overrides[{from, to}] = plan` configuration syntax.
class LinkOverrides {
 public:
  LinkPlan& operator[](std::pair<ProcessId, ProcessId> key) {
    std::size_t* idx = index_.find(pack(key.first, key.second));
    if (idx == nullptr) {
      index_[pack(key.first, key.second)] = plans_.size();
      plans_.emplace_back();
      return plans_.back();
    }
    return plans_[*idx];
  }

  const LinkPlan* find(ProcessId from, ProcessId to) const {
    const std::size_t* idx = index_.find(pack(from, to));
    return idx == nullptr ? nullptr : &plans_[*idx];
  }

  bool empty() const { return plans_.empty(); }

  /// All configured overrides are reliable (order-insensitive fold).
  bool all_reliable() const {
    for (const LinkPlan& plan : plans_)
      if (!plan.reliable()) return false;
    return true;
  }

 private:
  static std::uint64_t pack(ProcessId from, ProcessId to) {
    return (static_cast<std::uint64_t>(from) << 32) | to;
  }

  FlatMap64<std::size_t> index_;
  std::vector<LinkPlan> plans_;
};

/// The network's fault configuration: one default LinkPlan plus optional
/// per-(from, to) overrides. Self-links (from == to) are exempt — local
/// delivery models an in-process queue, not a network hop.
struct NetworkProfile {
  LinkPlan default_link;
  LinkOverrides overrides;

  const LinkPlan& link(ProcessId from, ProcessId to) const {
    if (overrides.empty()) return default_link;
    const LinkPlan* plan = overrides.find(from, to);
    return plan == nullptr ? default_link : *plan;
  }

  /// True when no link anywhere can misbehave.
  bool reliable() const {
    return default_link.reliable() && overrides.all_reliable();
  }

  static NetworkProfile lossless() { return {}; }
  static NetworkProfile uniform(LinkPlan plan) {
    NetworkProfile p;
    p.default_link = plan;
    return p;
  }
};

}  // namespace coincidence::sim
