// Lossy-link fault injection: what the network substrate itself may do
// to a message, independently of the Byzantine adversary.
//
// The paper's model (§2) assumes reliable authenticated links: every
// message between correct processes is eventually delivered exactly
// once. A LinkPlan deliberately breaks that assumption — packets can be
// dropped, duplicated, or replaced by replays of earlier traffic on the
// same link — so the repo can exercise protocol behaviour when the
// substrate misbehaves (and so src/net/ReliableChannel has something to
// repair). All link decisions are drawn from one dedicated Rng derived
// from SimConfig::seed, so runs stay bit-for-bit replayable.
#pragma once

#include <cstdint>
#include <map>
#include <utility>

#include "sim/message.h"

namespace coincidence::sim {

/// Per-link misbehaviour probabilities. The default plan is reliable:
/// the runtime draws no randomness at all for reliable links, so
/// existing seeded runs are unchanged by this feature's existence.
struct LinkPlan {
  /// Probability a message is silently lost (never enters the pool).
  double drop_p = 0.0;
  /// Probability a delivered-to-the-pool message is duplicated; each
  /// duplication event enqueues 1..max_duplicates extra copies.
  double dup_p = 0.0;
  /// Cap on extra copies per duplication event (>= 1 when dup_p > 0).
  std::size_t max_duplicates = 1;
  /// Probability each send on this link additionally re-enqueues a copy
  /// of a previously *delivered* message on the same link (a stale
  /// packet bouncing around the network).
  double replay_p = 0.0;
  /// How many delivered messages per link are remembered as replay
  /// candidates (bounds the history buffer).
  std::size_t replay_window = 8;

  /// True when this plan never perturbs traffic — the runtime skips all
  /// randomness draws in that case, preserving legacy trace equality.
  bool reliable() const {
    return drop_p <= 0.0 && dup_p <= 0.0 && replay_p <= 0.0;
  }

  static LinkPlan lossless() { return {}; }
  static LinkPlan lossy(double drop) {
    LinkPlan p;
    p.drop_p = drop;
    return p;
  }
  static LinkPlan duplicating(double dup, std::size_t max_copies = 1) {
    LinkPlan p;
    p.dup_p = dup;
    p.max_duplicates = max_copies;
    return p;
  }
  static LinkPlan replaying(double replay, std::size_t window = 8) {
    LinkPlan p;
    p.replay_p = replay;
    p.replay_window = window;
    return p;
  }
};

/// The network's fault configuration: one default LinkPlan plus optional
/// per-(from, to) overrides. Self-links (from == to) are exempt — local
/// delivery models an in-process queue, not a network hop.
struct NetworkProfile {
  LinkPlan default_link;
  std::map<std::pair<ProcessId, ProcessId>, LinkPlan> overrides;

  const LinkPlan& link(ProcessId from, ProcessId to) const {
    auto it = overrides.find({from, to});
    return it == overrides.end() ? default_link : it->second;
  }

  /// True when no link anywhere can misbehave.
  bool reliable() const {
    if (!default_link.reliable()) return false;
    for (const auto& [key, plan] : overrides)
      if (!plan.reliable()) return false;
    return true;
  }

  static NetworkProfile lossless() { return {}; }
  static NetworkProfile uniform(LinkPlan plan) {
    NetworkProfile p;
    p.default_link = plan;
    return p;
  }
};

}  // namespace coincidence::sim
