// Deterministic discrete-event simulator for the asynchronous model of §2.
//
// One Simulation owns n processes, the in-flight message pool, the
// adversary, and the metrics. There is no global clock: the adversary
// picks the next delivery, subject to (a) eventual delivery — a fairness
// bound forces the oldest message through once it has been bypassed too
// often, modelling "every message is eventually delivered"; (b) the
// corruption budget f; (c) no-front-running — messages already in flight
// from a newly-corrupted process cannot be retracted; and (d) content-
// blindness for pending messages unless the illegal ablation mode is on.
//
// Everything is driven by one seeded Rng, so a run is a pure function of
// (processes, adversary, config) — every experiment is replayable.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <queue>
#include <tuple>
#include <utility>
#include <vector>

#include "common/parallel.h"
#include "sim/adversary.h"
#include "sim/chaos.h"
#include "sim/fault.h"
#include "sim/flat_map64.h"
#include "sim/link.h"
#include "sim/message.h"
#include "sim/metrics.h"
#include "sim/observer.h"
#include "sim/pending_pool.h"
#include "sim/process.h"

namespace coincidence::sim {

struct SimConfig {
  std::size_t n = 4;
  std::size_t f = 0;  // corruption budget for the adversary
  std::uint64_t seed = 1;
  /// A pending message is force-delivered once it has been bypassed this
  /// many times (0 = default 16 * n). Models eventual delivery while
  /// leaving the adversary wide scheduling latitude.
  std::uint64_t fairness_bound = 0;
  /// ILLEGAL mode for the E6 ablation: feeds pending-message content to
  /// Adversary::observe_pending_content, violating delayed-adaptivity.
  bool allow_content_visibility = false;
  /// Hard stop against runaway protocols.
  std::uint64_t max_deliveries = 200'000'000;
  /// Lossy-link fault injection (sim/link.h). The default profile is
  /// reliable and draws no randomness, so legacy runs are unchanged.
  /// Link faults are driven by a dedicated Rng derived from `seed`
  /// (never the scheduling Rng), so enabling them does not perturb the
  /// adversary's or the processes' random streams.
  NetworkProfile network;
  /// Chaos orchestration schedule (sim/chaos.h): scripted partitions,
  /// churn waves and storm bursts executed on the delivery clock. Empty
  /// (the default) costs nothing; storm randomness burns a dedicated Rng
  /// like link faults, so schedules never perturb other streams.
  ChaosSchedule chaos;
  /// Sharded superstep engine (DESIGN.md §5g). 0 = the legacy sequential
  /// adversary-scheduled loop, byte-identical to prior releases. k >= 1
  /// partitions delivery work across k shards (receiver id mod k) and
  /// replaces the per-delivery adversary choice with a hash-addressed
  /// random-delay schedule: every message's delivery superstep and
  /// within-superstep rank are pure functions of (seed, route sequence),
  /// so the global delivery order — fingerprints, traces, metrics,
  /// decisions — is bit-identical for EVERY shard count and thread count.
  /// Scheduling adversaries (Adversary::schedule) are bypassed in this
  /// mode; corrupt_now/observe_delivery still fire.
  std::size_t shards = 0;
  /// Worker threads for the sharded engine, including the calling thread
  /// (0 = min(shards, hardware)). Never affects the schedule.
  std::size_t threads = 0;
  /// Superstep slack window W: a routed message is delivered 1..W
  /// supersteps after routing (hash-chosen). Larger W spreads a burst
  /// over more supersteps (more reordering latitude, smaller batches).
  std::uint64_t shard_slack = 4;
  /// Capacity hint: expected peak in-flight messages. Presizes the
  /// pending pool (legacy) or the shard calendars (sharded) so large-n
  /// runs do not rehash/regrow mid-flight. 0 = no reservation.
  std::size_t expected_in_flight = 0;
};

/// Per-shard telemetry of a sharded run (run_report surfaces this; it
/// never enters Metrics, whose exports must stay byte-identical across
/// shard counts).
struct ShardStats {
  std::uint64_t deliveries = 0;      // activations committed on this shard
  std::uint64_t handler_calls = 0;   // on_message invocations (incl. self)
  std::uint64_t idle_supersteps = 0; // supersteps this shard sat out
};

class Simulation {
 public:
  explicit Simulation(SimConfig cfg);
  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Adds the next process (ids are assigned 0..n-1 in call order).
  /// All n processes must be added before start().
  void add_process(std::unique_ptr<Process> p);

  /// Installs the adversary (default: RandomAdversary).
  void set_adversary(std::unique_ptr<Adversary> a);

  /// Attaches a passive observer (tracing / invariant checks). Multiple
  /// observers fire in attachment order.
  void add_observer(std::shared_ptr<Observer> observer);

  /// Corrupts `id` with the given behaviour. Counts against the budget f;
  /// throws PreconditionError when the budget is exhausted. Messages the
  /// process already sent stay in flight (no after-the-fact removal).
  void corrupt(ProcessId id, FaultPlan plan);

  bool is_corrupted(ProcessId id) const;
  std::size_t corrupted_count() const { return corrupted_count_; }

  /// True while a kCrashRecover process is down (crashed, not yet
  /// restarted). Down processes neither send nor receive.
  bool is_down(ProcessId id) const;

  /// True once a kCrashRecover process has restarted. It still counts
  /// against the corruption budget (the adversary spent it), but its
  /// behaviour is correct again from the restart on.
  bool has_recovered(ProcessId id) const;

  /// Adversary-crafted message from a corrupted process (must already be
  /// corrupted — correct processes cannot be impersonated, modelling
  /// authenticated links).
  void inject(ProcessId from, ProcessId to, Tag tag, SharedBytes payload,
              std::size_t words);

  /// Calls on_start on every process. Must be called exactly once.
  void start();

  /// Delivers one message; false when nothing is pending.
  bool step();

  /// Runs until quiescence (no pending messages) or max_deliveries.
  void run();

  /// Runs until pred() is true or quiescence/max_deliveries; returns the
  /// final pred() value.
  bool run_until(const std::function<bool()>& pred);

  Metrics& metrics() { return metrics_; }
  const Metrics& metrics() const { return metrics_; }

  std::size_t n() const { return cfg_.n; }
  std::size_t f_budget() const { return cfg_.f; }
  std::uint64_t deliveries() const { return deliveries_; }
  bool has_pending() const {
    return sharded() ? calendar_size_ != 0 : !pending_.empty();
  }

  /// Protocol-visible access for the harness (e.g. to read decisions).
  Process& process(ProcessId id);

  /// Causal depth a process has observed (exposed for tests/metrics).
  std::uint64_t depth_of(ProcessId id) const;

  /// Whitebox view for the payload-aliasing regression tests: the replay
  /// ring recorded for the directed link from→to, or nullptr when that
  /// link has no history. Entries share the delivered payload buffers.
  const std::deque<Message>* replay_history_of(ProcessId from,
                                               ProcessId to) const;

  /// Messages currently buffered by an unhealed chaos partition. Must be
  /// zero at quiescence of a well-formed schedule — the "partitions
  /// eventually heal" invariant the checker asserts at run end.
  std::size_t chaos_held() const { return held_.size(); }

  /// Latest chaos phase begun (index into SimConfig::chaos.phases), or
  /// SIZE_MAX before the first phase / without a schedule. The repro
  /// triple's schedule-phase coordinate.
  std::size_t chaos_phase() const {
    return chaos_ ? chaos_->current_phase() : static_cast<std::size_t>(-1);
  }

  /// Sharded-engine introspection (all zero/empty on the legacy path).
  bool sharded() const { return cfg_.shards > 0; }
  std::size_t shard_count() const { return cfg_.shards; }
  std::uint64_t supersteps() const { return superstep_; }
  /// Total idle shard-supersteps at the exchange barrier: supersteps in
  /// which a shard had nothing to deliver while some other shard did —
  /// the deterministic load-imbalance measure run_report surfaces.
  std::uint64_t merge_stalls() const { return merge_stalls_; }
  const std::vector<ShardStats>& shard_stats() const { return shard_stats_; }

 private:
  struct Slot;       // per-process runtime state
  class SlotContext; // Context implementation bound to one slot
  struct PendingEffect;  // sharded engine: buffered handler side-effect
  struct CalEntry;       // sharded engine: one routed in-flight message
  struct ShardState;     // sharded engine: per-shard calendar + work list

  void dispatch_to(ProcessId to, const Message& msg);
  void drain_self_queue(ProcessId id);
  void enqueue_send(ProcessId from, ProcessId to, Tag tag,
                    SharedBytes payload, std::size_t words,
                    bool retransmit = false);
  void apply_corruptions();

  // Sharded superstep engine (DESIGN.md §5g). route_message is the one
  // funnel below the link layer: legacy pushes into the pending pool,
  // sharded inserts into a shard calendar at a hash-addressed superstep.
  bool superstep();
  void route_message(Message msg);
  void buffer_send(ProcessId from, ProcessId to, Tag tag,
                   SharedBytes payload, std::size_t words, bool retransmit);
  void run_shard_handlers(std::size_t shard);
  void deliver_in_phase(Slot& slot, const Message& msg);
  void commit_activation(CalEntry& act);
  std::size_t shard_of(ProcessId to) const { return to % cfg_.shards; }

  // Telemetry notes forwarded from SlotContext (Context::note_*): fan
  // out to Metrics and the observers. Pure observation — nothing here
  // touches scheduling state.
  void note_decide_from(ProcessId who, Tag scope, int value,
                        std::uint64_t round);
  void note_round_from(ProcessId who, std::uint64_t round);
  void note_dead_letter_from(ProcessId who, ProcessId to, Tag tag,
                             std::size_t words);
  void note_verify_batch_from(ProcessId who, std::size_t shares,
                              std::size_t rejects, std::size_t memo_hits);
  void note_rbc_encode_from(ProcessId who, std::size_t fragments);
  void note_rbc_decode_from(ProcessId who, bool ok, std::size_t fragments);
  void note_sig_verify_batch_from(ProcessId who, std::size_t sigs,
                                  std::size_t rejects, std::size_t memo_hits);

  // Lossy-link layer (sim/link.h), applied between enqueue and the pool.
  void push_through_link(Message msg);
  void remember_delivered(const Message& msg);

  // Delivery-event timers: process wakeups and crash-recover restarts.
  void schedule_wakeup_for(ProcessId id, std::uint64_t delay);
  void fire_due_timers();
  std::optional<std::uint64_t> next_timer_due() const;
  void recover_process(ProcessId id);

  // Chaos orchestration (sim/chaos.h): consume schedule events due now.
  void run_chaos_due();
  void churn_wave(std::size_t phase_idx);
  void release_partition(std::size_t phase_idx);

  SimConfig cfg_;
  Rng rng_;
  Rng link_rng_;  // dedicated stream: link faults never perturb scheduling
  Rng chaos_rng_;  // dedicated stream for storm bursts
  // Cached cfg_.network.reliable(): reliable runs (the common case) skip
  // the per-send link-plan lookup and the per-delivery history check.
  bool network_reliable_ = true;
  std::vector<std::unique_ptr<Slot>> slots_;
  std::unique_ptr<Adversary> adversary_;
  std::vector<std::shared_ptr<Observer>> observers_;
  PendingPool pending_;
  Metrics metrics_;
  std::uint64_t next_msg_id_ = 1;
  std::uint64_t send_seq_ = 0;
  std::uint64_t deliveries_ = 0;
  std::size_t corrupted_count_ = 0;
  bool started_ = false;

  // Min-heaps over (due tick, insertion seq, process, wakeup epoch):
  // fire order is deterministic regardless of container internals. The
  // epoch invalidates wakeups scheduled before a crash — timers are
  // in-memory state and do not survive into a recovered incarnation.
  using TimerEntry =
      std::tuple<std::uint64_t, std::uint64_t, ProcessId, std::uint64_t>;
  using TimerHeap = std::priority_queue<TimerEntry, std::vector<TimerEntry>,
                                        std::greater<TimerEntry>>;
  TimerHeap wakeups_;
  TimerHeap recoveries_;
  std::uint64_t timer_seq_ = 0;

  // Chaos runtime: the schedule cursor, cross-partition messages held
  // until their partition heals (tagged with the blocking phase), and
  // the per-churn-phase victim sets (chosen at the first wave, then
  // re-corrupted — budget-free — on every later wave).
  std::unique_ptr<ChaosState> chaos_;
  std::vector<std::pair<std::size_t, Message>> held_;
  std::vector<std::vector<ProcessId>> churn_victims_;

  // Per-link ring of recently delivered messages: replay candidates.
  // Keyed (from << 32 | to) on a flat hash; the Message copies stored
  // here share the delivered payload buffers (SharedBytes), so the
  // history's resident cost is O(window * header) per lossy link.
  FlatMap64<std::deque<Message>> replay_history_;

  // Sharded superstep engine state (cfg_.shards > 0; empty otherwise).
  // Calendars, the route counter and the per-superstep work lists live in
  // per-shard ShardStates; the pool runs the parallel sort/handler
  // phases; everything observable is emitted by the serial commit.
  std::vector<std::unique_ptr<ShardState>> shard_states_;
  std::unique_ptr<ThreadPool> shard_pool_;
  std::uint64_t shard_seed_ = 0;
  std::uint64_t route_seq_ = 0;       // canonical routing counter
  std::uint64_t superstep_ = 0;
  std::uint64_t calendar_size_ = 0;   // in-flight entries across shards
  std::vector<std::uint64_t> slot_counts_;  // per ring slot, across shards
  bool parallel_phase_ = false;       // handler phase: buffer effects
  std::uint64_t merge_stalls_ = 0;
  std::vector<ShardStats> shard_stats_;
};

}  // namespace coincidence::sim
