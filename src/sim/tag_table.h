// Interned message tags (ISSUE 3 tentpole).
//
// Tags are the simulator's routing keys ("ba/3/coin/first"). The legacy
// substrate carried them as std::string in every Message — one heap
// allocation per enqueued copy, plus re-concatenation on every receive-
// side match. A TagTable interns each distinct tag string exactly once
// and hands out a dense TagId; a Tag is that integer, so tag equality is
// an integer compare, Message copies allocate nothing for the tag, and
// Metrics can bucket words into a flat vector indexed by TagId.
//
// Determinism: TagId values depend on interning order, which may differ
// across runs and threads — so ids must never leak into observable
// output. Nothing here lets them: every externally visible surface
// (traces, words_by_tag views, adversary matching) resolves back to the
// string. See docs/SIM_FAST_PATH.md for the full argument.
//
// Thread-safety: core/parallel.h runs whole simulations on worker
// threads, and protocols intern at construction time — so intern() takes
// a shared lock for the (overwhelmingly common) lookup-hit path and only
// upgrades to an exclusive lock to insert a genuinely new tag, while
// str() is lock-free (chunked storage with stable addresses; an acquire
// on the published size pairs with the release in intern(), so any id
// obtained from a Tag resolves safely).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace coincidence::sim {

using TagId = std::uint32_t;

class TagTable {
 public:
  /// The process-global table. Tag sets are small (a bounded grammar of
  /// instance/round/step components), so one shared table never grows
  /// past a few thousand entries even across chaos sweeps.
  static TagTable& instance();

  /// Returns the id for `s`, interning it on first sight. Thread-safe.
  TagId intern(std::string_view s);

  /// Resolves an id to its string. Lock-free; the reference is stable
  /// for the lifetime of the process.
  const std::string& str(TagId id) const;

  std::size_t size() const {
    return size_.load(std::memory_order_acquire);
  }

 private:
  TagTable();

  // Chunked storage: chunk pointers are published once and never moved,
  // so resolved references stay valid without any locking.
  static constexpr std::size_t kChunkShift = 10;
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkShift;
  static constexpr std::size_t kMaxChunks = 1024;  // 1M distinct tags
  using Chunk = std::array<std::string, kChunkSize>;

  std::atomic<std::uint32_t> size_{0};
  std::array<std::atomic<Chunk*>, kMaxChunks> chunks_{};
  mutable std::shared_mutex mu_;
  // Keys are views into chunk storage (stable addresses).
  std::unordered_map<std::string_view, TagId> index_;
};

/// A message tag: an interned id with string interop. Implicit
/// construction from strings keeps every legacy call site compiling
/// (`ctx.broadcast("ping", ...)`, `msg.tag == "ping"`); hot paths cache
/// Tag values at protocol construction so the intern cost is paid once.
class Tag {
 public:
  Tag() = default;  // the empty tag (id 0)
  Tag(std::string_view s) : id_(TagTable::instance().intern(s)) {}
  Tag(const std::string& s) : Tag(std::string_view(s)) {}
  Tag(const char* s) : Tag(std::string_view(s)) {}

  static Tag from_id(TagId id) {
    Tag t;
    t.id_ = id;
    return t;
  }

  TagId id() const { return id_; }
  const std::string& str() const { return TagTable::instance().str(id_); }
  bool empty() const { return id_ == 0; }

  friend bool operator==(const Tag& a, const Tag& b) {
    return a.id_ == b.id_;
  }
  friend bool operator!=(const Tag& a, const Tag& b) {
    return a.id_ != b.id_;
  }

 private:
  TagId id_ = 0;
};

std::ostream& operator<<(std::ostream& os, const Tag& tag);

}  // namespace coincidence::sim
