#include "sim/chaos.h"

#include <algorithm>
#include <sstream>

#include "common/errors.h"

namespace coincidence::sim {

const char* ChaosPhase::kind_name() const {
  switch (kind) {
    case Kind::kPartition: return "partition";
    case Kind::kChurn: return "churn";
    case Kind::kStorm: return "storm";
  }
  return "unknown";
}

ChaosPhase ChaosPhase::partition(std::uint64_t start, std::uint64_t duration,
                                 ProcessId boundary, PartitionMode mode) {
  ChaosPhase p;
  p.kind = Kind::kPartition;
  p.start = start;
  p.duration = duration;
  p.boundary = boundary;
  p.partition_mode = mode;
  return p;
}

ChaosPhase ChaosPhase::churn(std::uint64_t start, std::uint64_t duration,
                             std::size_t victims, std::uint64_t down,
                             std::uint64_t every) {
  ChaosPhase p;
  p.kind = Kind::kChurn;
  p.start = start;
  p.duration = duration;
  p.churn_victims = victims;
  p.churn_down = down;
  p.churn_every = every;
  return p;
}

ChaosPhase ChaosPhase::storm(std::uint64_t start, std::uint64_t duration,
                             double prob, std::size_t copies) {
  ChaosPhase p;
  p.kind = Kind::kStorm;
  p.start = start;
  p.duration = duration;
  p.storm_p = prob;
  p.storm_copies = copies == 0 ? 1 : copies;
  return p;
}

std::size_t ChaosSchedule::max_churn_victims() const {
  std::size_t most = 0;
  for (const ChaosPhase& p : phases)
    if (p.kind == ChaosPhase::Kind::kChurn)
      most = std::max(most, p.churn_victims);
  return most;
}

// ------------------------------------------------------------- spec I/O --
//
// Grammar (one line, ';'-separated phases):
//   phase     := kind '@' start '+' duration [':' params]
//   params    := key '=' value (',' key '=' value)*
//   partition := boundary=<pid>, mode=hold|drop
//   churn     := victims=<k>, down=<ticks>, every=<ticks>
//   storm     := p=<prob>, copies=<k>
// spec() emits every field; parse() accepts any subset (defaults apply).

namespace {

std::uint64_t parse_u64(const std::string& s, const std::string& where) {
  if (s.empty()) throw ConfigError("chaos spec: empty number in " + where);
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9')
      throw ConfigError("chaos spec: bad number '" + s + "' in " + where);
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return v;
}

double parse_prob(const std::string& s, const std::string& where) {
  try {
    std::size_t used = 0;
    double v = std::stod(s, &used);
    if (used != s.size() || v < 0.0 || v > 1.0) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    throw ConfigError("chaos spec: bad probability '" + s + "' in " + where);
  }
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  while (begin <= s.size()) {
    std::size_t end = s.find(sep, begin);
    if (end == std::string::npos) end = s.size();
    if (end > begin) out.push_back(s.substr(begin, end - begin));
    begin = end + 1;
  }
  return out;
}

std::string format_prob(double p) {
  std::ostringstream os;
  os << p;
  return os.str();
}

}  // namespace

std::string ChaosSchedule::spec() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const ChaosPhase& p = phases[i];
    if (i) os << ';';
    os << p.kind_name() << '@' << p.start << '+' << p.duration << ':';
    switch (p.kind) {
      case ChaosPhase::Kind::kPartition:
        os << "boundary=" << p.boundary << ",mode="
           << (p.partition_mode == ChaosPhase::PartitionMode::kHold ? "hold"
                                                                    : "drop");
        break;
      case ChaosPhase::Kind::kChurn:
        os << "victims=" << p.churn_victims << ",down=" << p.churn_down
           << ",every=" << p.churn_every;
        break;
      case ChaosPhase::Kind::kStorm:
        os << "p=" << format_prob(p.storm_p) << ",copies=" << p.storm_copies;
        break;
    }
  }
  return os.str();
}

ChaosSchedule ChaosSchedule::parse(const std::string& spec) {
  ChaosSchedule out;
  for (const std::string& part : split(spec, ';')) {
    const std::size_t at = part.find('@');
    if (at == std::string::npos)
      throw ConfigError("chaos spec: missing '@' in '" + part + "'");
    const std::string kind = part.substr(0, at);
    const std::size_t plus = part.find('+', at);
    if (plus == std::string::npos)
      throw ConfigError("chaos spec: missing '+' in '" + part + "'");
    const std::size_t colon = part.find(':', plus);
    const std::size_t window_end = colon == std::string::npos ? part.size()
                                                              : colon;

    ChaosPhase phase;
    if (kind == "partition") {
      phase.kind = ChaosPhase::Kind::kPartition;
    } else if (kind == "churn") {
      phase.kind = ChaosPhase::Kind::kChurn;
    } else if (kind == "storm") {
      phase.kind = ChaosPhase::Kind::kStorm;
    } else {
      throw ConfigError("chaos spec: unknown phase kind '" + kind + "'");
    }
    phase.start = parse_u64(part.substr(at + 1, plus - at - 1), part);
    phase.duration =
        parse_u64(part.substr(plus + 1, window_end - plus - 1), part);

    if (colon != std::string::npos) {
      for (const std::string& kv : split(part.substr(colon + 1), ',')) {
        const std::size_t eq = kv.find('=');
        if (eq == std::string::npos)
          throw ConfigError("chaos spec: missing '=' in '" + kv + "'");
        const std::string key = kv.substr(0, eq);
        const std::string val = kv.substr(eq + 1);
        if (key == "boundary") {
          phase.boundary = static_cast<ProcessId>(parse_u64(val, part));
        } else if (key == "mode") {
          if (val == "hold") {
            phase.partition_mode = ChaosPhase::PartitionMode::kHold;
          } else if (val == "drop") {
            phase.partition_mode = ChaosPhase::PartitionMode::kDrop;
          } else {
            throw ConfigError("chaos spec: bad partition mode '" + val + "'");
          }
        } else if (key == "victims") {
          phase.churn_victims = parse_u64(val, part);
        } else if (key == "down") {
          phase.churn_down = parse_u64(val, part);
        } else if (key == "every") {
          phase.churn_every = parse_u64(val, part);
        } else if (key == "p") {
          phase.storm_p = parse_prob(val, part);
        } else if (key == "copies") {
          phase.storm_copies = std::max<std::size_t>(
              1, static_cast<std::size_t>(parse_u64(val, part)));
        } else {
          throw ConfigError("chaos spec: unknown key '" + key + "'");
        }
      }
    }
    out.phases.push_back(phase);
  }
  return out;
}

const std::vector<std::string>& ChaosSchedule::preset_names() {
  static const std::vector<std::string> kNames = {
      "partition-hold", "partition-drop", "churn",
      "storm",          "adaptive",       "combined"};
  return kNames;
}

// Presets are scaled to n: windows are multiples of 16n (one fairness
// bound — long enough for real traffic to pile up against a partition,
// short enough that churn waves fit several cycles into a normal run).
ChaosSchedule ChaosSchedule::preset(const std::string& name, std::size_t n) {
  COIN_REQUIRE(n > 0, "chaos preset: n must be positive");
  const std::uint64_t unit = 16 * static_cast<std::uint64_t>(n);
  const ProcessId half = static_cast<ProcessId>(n / 2);
  ChaosSchedule s;
  if (name == "partition-hold") {
    s.phases.push_back(ChaosPhase::partition(
        unit, 3 * unit, half, ChaosPhase::PartitionMode::kHold));
  } else if (name == "partition-drop") {
    s.phases.push_back(ChaosPhase::partition(
        unit, 2 * unit, half, ChaosPhase::PartitionMode::kDrop));
  } else if (name == "churn") {
    s.phases.push_back(
        ChaosPhase::churn(0, 8 * unit, /*victims=*/1, /*down=*/unit,
                          /*every=*/3 * unit));
  } else if (name == "storm") {
    s.phases.push_back(ChaosPhase::storm(unit, 4 * unit, 0.3, 2));
  } else if (name == "adaptive") {
    // Empty on purpose: the hostility is the AdaptiveCorruptionAdversary
    // (sim/adversary.h), which needs no schedule to act.
  } else if (name == "combined") {
    s.phases.push_back(ChaosPhase::storm(0, 2 * unit, 0.25, 2));
    s.phases.push_back(ChaosPhase::partition(
        unit, 2 * unit, half, ChaosPhase::PartitionMode::kHold));
    s.phases.push_back(ChaosPhase::churn(3 * unit, 6 * unit, /*victims=*/1,
                                         /*down=*/unit, /*every=*/3 * unit));
  } else {
    throw ConfigError("chaos preset: unknown name '" + name + "'");
  }
  return s;
}

// ------------------------------------------------------------ ChaosState --

ChaosState::ChaosState(ChaosSchedule schedule)
    : schedule_(std::move(schedule)) {
  for (std::size_t i = 0; i < schedule_.phases.size(); ++i) {
    const ChaosPhase& p = schedule_.phases[i];
    events_.push_back({ChaosEvent::Kind::kPhaseBegin, i, p.start});
    if (p.kind == ChaosPhase::Kind::kChurn && p.churn_victims > 0) {
      // One wave at phase start, then every churn_every ticks while the
      // phase lasts (every=0 collapses to the single opening wave).
      std::uint64_t at = p.start;
      do {
        events_.push_back({ChaosEvent::Kind::kChurnWave, i, at});
        if (p.churn_every == 0) break;
        at += p.churn_every;
      } while (at < p.end());
    }
    events_.push_back({ChaosEvent::Kind::kPhaseEnd, i, p.end()});
  }
  // Deterministic order: time, then phase index, then begin < wave < end
  // (an end and a begin at the same tick: the earlier phase ends first).
  std::stable_sort(events_.begin(), events_.end(),
                   [](const ChaosEvent& a, const ChaosEvent& b) {
                     if (a.at != b.at) return a.at < b.at;
                     if (a.phase != b.phase) return a.phase < b.phase;
                     return static_cast<int>(a.kind) < static_cast<int>(b.kind);
                   });
}

std::optional<ChaosEvent> ChaosState::pop_due(std::uint64_t now) {
  if (cursor_ >= events_.size() || events_[cursor_].at > now)
    return std::nullopt;
  const ChaosEvent ev = events_[cursor_++];
  const ChaosPhase& phase = schedule_.phases[ev.phase];
  switch (ev.kind) {
    case ChaosEvent::Kind::kPhaseBegin:
      current_phase_ = ev.phase;
      if (phase.kind == ChaosPhase::Kind::kPartition)
        active_partitions_.push_back(ev.phase);
      if (phase.kind == ChaosPhase::Kind::kStorm)
        active_storms_.push_back(ev.phase);
      break;
    case ChaosEvent::Kind::kChurnWave:
      break;
    case ChaosEvent::Kind::kPhaseEnd:
      active_partitions_.erase(std::remove(active_partitions_.begin(),
                                           active_partitions_.end(), ev.phase),
                               active_partitions_.end());
      active_storms_.erase(std::remove(active_storms_.begin(),
                                       active_storms_.end(), ev.phase),
                           active_storms_.end());
      break;
  }
  return ev;
}

std::optional<std::uint64_t> ChaosState::next_event_at() const {
  if (cursor_ >= events_.size()) return std::nullopt;
  return events_[cursor_].at;
}

bool ChaosState::blocked(ProcessId from, ProcessId to,
                         ChaosPhase::PartitionMode* mode,
                         std::size_t* phase) const {
  for (std::size_t idx : active_partitions_) {
    const ChaosPhase& p = schedule_.phases[idx];
    if ((from < p.boundary) != (to < p.boundary)) {
      if (mode != nullptr) *mode = p.partition_mode;
      if (phase != nullptr) *phase = idx;
      return true;
    }
  }
  return false;
}

std::optional<std::size_t> ChaosState::active_storm() const {
  if (active_storms_.empty()) return std::nullopt;
  return active_storms_.front();
}

}  // namespace coincidence::sim
