#include "sim/pending_pool.h"

#include "common/errors.h"

namespace coincidence::sim {

void PendingPool::push(Message msg, std::uint64_t tick) {
  std::uint64_t id = msg.id;
  index_of_[id] = msgs_.size();
  msgs_.push_back(std::move(msg));
  ticks_.push_back(tick);
  oldest_heap_.push({tick, id});
}

std::size_t PendingPool::oldest_index() const {
  COIN_REQUIRE(!msgs_.empty(), "oldest_index on empty pool");
  for (;;) {
    const HeapEntry& top = oldest_heap_.top();
    auto it = index_of_.find(top.second);
    if (it != index_of_.end()) return it->second;
    oldest_heap_.pop();  // stale entry for an already-taken message
  }
}

Message PendingPool::take(std::size_t i) {
  COIN_REQUIRE(i < msgs_.size(), "take: bad index");
  Message out = std::move(msgs_[i]);
  index_of_.erase(out.id);
  if (i + 1 != msgs_.size()) {
    msgs_[i] = std::move(msgs_.back());
    ticks_[i] = ticks_.back();
    index_of_[msgs_[i].id] = i;
  }
  msgs_.pop_back();
  ticks_.pop_back();
  return out;
}

}  // namespace coincidence::sim
