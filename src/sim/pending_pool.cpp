#include "sim/pending_pool.h"

#include "common/errors.h"

namespace coincidence::sim {

void PendingPool::reserve(std::size_t n) {
  msgs_.reserve(n);
  ticks_.reserve(n);
  index_of_.reserve(n);
}

void PendingPool::push(Message msg, std::uint64_t tick) {
  std::uint64_t id = msg.id;
  index_of_[id] = msgs_.size();
  msgs_.push_back(std::move(msg));
  ticks_.push_back(tick);
  // Stale heap entries (taken messages skipped lazily by oldest_index)
  // would otherwise accumulate across a long run; rebuild from the live
  // set once they dominate. Ticks are monotone, so the rebuilt heap
  // orders identically to the lazily-cleaned one.
  if (oldest_heap_.size() > 2 * (msgs_.size() + 8)) compact_heap();
  oldest_heap_.push({tick, id});
}

void PendingPool::compact_heap() const {
  std::vector<HeapEntry> live;
  live.reserve(msgs_.size());
  for (std::size_t i = 0; i < msgs_.size(); ++i)
    live.push_back({ticks_[i], msgs_[i].id});
  oldest_heap_ = Heap(std::greater<HeapEntry>(), std::move(live));
}

std::size_t PendingPool::oldest_index() const {
  COIN_REQUIRE(!msgs_.empty(), "oldest_index on empty pool");
  for (;;) {
    const HeapEntry& top = oldest_heap_.top();
    const std::size_t* idx = index_of_.find(top.second);
    if (idx != nullptr) return *idx;
    oldest_heap_.pop();  // stale entry for an already-taken message
  }
}

Message PendingPool::take(std::size_t i) {
  COIN_REQUIRE(i < msgs_.size(), "take: bad index");
  Message out = std::move(msgs_[i]);
  index_of_.erase(out.id);
  if (i + 1 != msgs_.size()) {
    msgs_[i] = std::move(msgs_.back());
    ticks_[i] = ticks_.back();
    index_of_[msgs_[i].id] = i;
  }
  msgs_.pop_back();
  ticks_.pop_back();
  return out;
}

}  // namespace coincidence::sim
