#include "sim/simulation.h"

#include <algorithm>

#include "common/errors.h"

namespace coincidence::sim {

namespace {
/// replay_history_ key: one u64 per directed link.
std::uint64_t link_key(ProcessId from, ProcessId to) {
  return (static_cast<std::uint64_t>(from) << 32) | to;
}

/// splitmix64 finalizer: the sharded engine's hash-addressed randomness.
/// Every scheduling decision is mix64(seed ^ counter) of a counter that
/// advances in canonical (serial-commit) order, never a stream whose
/// draw order could depend on shard or thread count.
std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}
}  // namespace

// ------------------------------------------------- sharded engine data --

/// One side-effect a handler produced during the parallel phase. Replayed
/// by the serial commit in the exact order the handler issued it, so the
/// observable event stream is identical to an inline execution.
struct Simulation::PendingEffect {
  enum class Kind : std::uint8_t {
    kSend,
    kWakeup,
    kDecide,
    kRound,
    kDeadLetter,
    kVerifyBatch,
    kSigVerifyBatch,
    kRbcEncode,
    kRbcDecode,
  };
  Kind kind = Kind::kSend;
  bool retransmit = false;
  bool self = false;    // send to self: already delivered nested in-phase
  bool correct = true;  // sender/reporter was uncorrupted at call time
  ProcessId to = 0;
  Tag tag;
  SharedBytes payload;
  // kSend: a=words b=causal_depth; kWakeup: a=delay; kDecide: a=round
  // b=value c=depth; kRound: a=round; kDeadLetter: a=words; k*Verify:
  // a=count b=rejects c=memo_hits; kRbcEncode: a=fragments; kRbcDecode:
  // a=fragments b=ok.
  std::uint64_t a = 0, b = 0, c = 0;
};

/// One routed in-flight message in a shard calendar. (okey, route_seq) is
/// the canonical within-superstep rank — a pure function of (seed, route
/// order), so the merged delivery order is shard/thread-count invariant.
struct Simulation::CalEntry {
  std::uint64_t okey = 0;
  std::uint64_t route_seq = 0;
  std::uint64_t enqueue_index = 0;  // deliveries_ at routing (age basis)
  std::uint64_t delivery_pre = 0;   // deliveries_ just before this commit
  bool handler_ran = false;
  Message msg;
  std::vector<PendingEffect> effects;
};

/// Per-shard runtime: the calendar ring (slot s holds entries due at
/// supersteps congruent to s mod W) and the current superstep's work.
struct Simulation::ShardState {
  std::vector<std::vector<CalEntry>> ring;
  std::vector<CalEntry> acts;
};

// ---------------------------------------------------------------- Slot --

struct Simulation::Slot {
  std::unique_ptr<Process> process;
  std::unique_ptr<SlotContext> context;
  Rng rng{0};
  FaultPlan fault;            // kCorrect until corrupted
  bool corrupted = false;
  bool recovered = false;     // kCrashRecover process that restarted
  std::uint64_t wakeup_epoch = 0;  // bumped on crash: stale timers die
  std::uint64_t depth = 0;    // causal depth observed so far
  std::deque<Message> self_queue;
  Bytes stable_storage;       // survives kCrashRecover (Context::persist)
  // Sharded handler phase: the activation this slot is currently
  // executing (its effect sink). Only ever touched by the slot's home
  // shard, so no synchronization is needed.
  CalEntry* active_entry = nullptr;

  /// Crash semantics apply: a kCrash process forever, a kCrashRecover
  /// process until its restart flips the mode back to kCorrect.
  bool crash_like() const {
    return fault.mode == FaultPlan::Mode::kCrash ||
           fault.mode == FaultPlan::Mode::kCrashRecover;
  }
};

class Simulation::SlotContext final : public Context {
 public:
  SlotContext(Simulation* sim, ProcessId id) : sim_(sim), id_(id) {}

  ProcessId self() const override { return id_; }
  std::size_t n() const override { return sim_->cfg_.n; }

  // During the sharded engine's parallel handler phase every side-effect
  // is buffered on the running activation (and replayed by the serial
  // commit in canonical order); outside it — the legacy loop and all
  // serial callbacks (on_start/on_wakeup/on_recover/barriers) — the
  // effects go straight through, exactly as before.

  void send(ProcessId to, Tag tag, SharedBytes payload,
            std::size_t words) override {
    if (sim_->parallel_phase_) {
      sim_->buffer_send(id_, to, tag, std::move(payload), words,
                        /*retransmit=*/false);
      return;
    }
    sim_->enqueue_send(id_, to, tag, std::move(payload), words);
  }

  void broadcast(Tag tag, SharedBytes payload, std::size_t words) override {
    // Each enqueued copy shares `payload`'s buffer: n refcount bumps,
    // zero deep copies.
    if (sim_->parallel_phase_) {
      for (ProcessId to = 0; to < sim_->cfg_.n; ++to)
        sim_->buffer_send(id_, to, tag, payload, words, /*retransmit=*/false);
      return;
    }
    for (ProcessId to = 0; to < sim_->cfg_.n; ++to)
      sim_->enqueue_send(id_, to, tag, payload, words);
  }

  void send_retransmission(ProcessId to, Tag tag, SharedBytes payload,
                           std::size_t words) override {
    if (sim_->parallel_phase_) {
      sim_->buffer_send(id_, to, tag, std::move(payload), words,
                        /*retransmit=*/true);
      return;
    }
    sim_->enqueue_send(id_, to, tag, std::move(payload), words,
                       /*retransmit=*/true);
  }

  Rng& rng() override { return sim_->slots_[id_]->rng; }

  std::uint64_t causal_depth() const override {
    return sim_->slots_[id_]->depth;
  }

  std::uint64_t now() const override {
    if (sim_->parallel_phase_) {
      // The legacy loop increments deliveries_ before dispatching, so a
      // handler sees "my delivery's index + 1"; delivery_pre is exactly
      // that index under the canonical merge order.
      const CalEntry* act = sim_->slots_[id_]->active_entry;
      if (act != nullptr) return act->delivery_pre + 1;
    }
    return sim_->deliveries_;
  }

  void schedule_wakeup(std::uint64_t delay) override {
    if (sim_->parallel_phase_) {
      buffered_effect(PendingEffect::Kind::kWakeup).a = delay;
      return;
    }
    sim_->schedule_wakeup_for(id_, delay);
  }

  void persist(BytesView snapshot) override {
    sim_->slots_[id_]->stable_storage.assign(snapshot.begin(),
                                             snapshot.end());
  }

  void note_decide(Tag scope, int value, std::uint64_t round) override {
    if (sim_->parallel_phase_) {
      PendingEffect& e = buffered_effect(PendingEffect::Kind::kDecide);
      e.tag = scope;
      e.a = round;
      e.b = static_cast<std::uint64_t>(static_cast<std::int64_t>(value));
      e.c = sim_->slots_[id_]->depth;  // depth at the call, not at commit
      return;
    }
    sim_->note_decide_from(id_, scope, value, round);
  }

  void note_round(std::uint64_t round) override {
    if (sim_->parallel_phase_) {
      buffered_effect(PendingEffect::Kind::kRound).a = round;
      return;
    }
    sim_->note_round_from(id_, round);
  }

  void note_dead_letter(ProcessId to, Tag tag, std::size_t words) override {
    if (sim_->parallel_phase_) {
      PendingEffect& e = buffered_effect(PendingEffect::Kind::kDeadLetter);
      e.to = to;
      e.tag = tag;
      e.a = words;
      return;
    }
    sim_->note_dead_letter_from(id_, to, tag, words);
  }

  void note_verify_batch(std::size_t shares, std::size_t rejects,
                         std::size_t memo_hits) override {
    if (sim_->parallel_phase_) {
      PendingEffect& e = buffered_effect(PendingEffect::Kind::kVerifyBatch);
      e.a = shares;
      e.b = rejects;
      e.c = memo_hits;
      return;
    }
    sim_->note_verify_batch_from(id_, shares, rejects, memo_hits);
  }

  void note_sig_verify_batch(std::size_t sigs, std::size_t rejects,
                             std::size_t memo_hits) override {
    if (sim_->parallel_phase_) {
      PendingEffect& e = buffered_effect(PendingEffect::Kind::kSigVerifyBatch);
      e.a = sigs;
      e.b = rejects;
      e.c = memo_hits;
      return;
    }
    sim_->note_sig_verify_batch_from(id_, sigs, rejects, memo_hits);
  }

  void note_rbc_encode(std::size_t fragments) override {
    if (sim_->parallel_phase_) {
      buffered_effect(PendingEffect::Kind::kRbcEncode).a = fragments;
      return;
    }
    sim_->note_rbc_encode_from(id_, fragments);
  }

  void note_rbc_decode(bool ok, std::size_t fragments) override {
    if (sim_->parallel_phase_) {
      PendingEffect& e = buffered_effect(PendingEffect::Kind::kRbcDecode);
      e.a = fragments;
      e.b = ok ? 1 : 0;
      return;
    }
    sim_->note_rbc_decode_from(id_, ok, fragments);
  }

 private:
  /// Appends a blank effect of `kind` to the slot's running activation,
  /// pre-stamping the reporter's correctness. Parallel phase only; the
  /// slot's home shard owns both the slot and the activation.
  PendingEffect& buffered_effect(PendingEffect::Kind kind) {
    Slot& slot = *sim_->slots_[id_];
    PendingEffect e;
    e.kind = kind;
    e.correct = !slot.corrupted;
    slot.active_entry->effects.push_back(std::move(e));
    return slot.active_entry->effects.back();
  }

  Simulation* sim_;
  ProcessId id_;
};

// ---------------------------------------------------------- Simulation --

// The link Rng's seed is derived (not forked) from cfg.seed so that the
// scheduling stream and the per-process forks are byte-identical to a
// run without link faults — enabling a NetworkProfile must not change
// anything else about the run.
Simulation::Simulation(SimConfig cfg)
    : cfg_(std::move(cfg)),
      rng_(cfg_.seed),
      link_rng_(cfg_.seed ^ 0x6c696e6b5f726e67ULL),
      chaos_rng_(cfg_.seed ^ 0x6368616f73726e67ULL),
      network_reliable_(cfg_.network.reliable()) {
  COIN_REQUIRE(cfg_.n > 0, "Simulation needs at least one process");
  if (cfg_.fairness_bound == 0) cfg_.fairness_bound = 16 * cfg_.n;
  adversary_ = std::make_unique<RandomAdversary>();
  slots_.reserve(cfg_.n);
  if (!cfg_.chaos.empty()) {
    chaos_ = std::make_unique<ChaosState>(cfg_.chaos);
    churn_victims_.resize(cfg_.chaos.phases.size());
  }
  if (cfg_.shards > 0) {
    // More shards than processes would leave permanently-empty shards;
    // the clamp keeps shard_of() total without changing any schedule
    // (the schedule depends on (seed, route order), not the shard map).
    cfg_.shards = std::min(cfg_.shards, cfg_.n);
    if (cfg_.shard_slack == 0) cfg_.shard_slack = 1;
    shard_seed_ = mix64(cfg_.seed ^ 0x73686172645f7373ULL);  // "shard_ss"
    shard_states_.reserve(cfg_.shards);
    for (std::size_t s = 0; s < cfg_.shards; ++s) {
      auto st = std::make_unique<ShardState>();
      st->ring.resize(cfg_.shard_slack);
      shard_states_.push_back(std::move(st));
    }
    slot_counts_.assign(cfg_.shard_slack, 0);
    shard_stats_.assign(cfg_.shards, ShardStats{});
    if (cfg_.expected_in_flight > 0) {
      const std::size_t per_slot =
          cfg_.expected_in_flight / (cfg_.shards * cfg_.shard_slack) + 1;
      for (auto& st : shard_states_)
        for (auto& slot : st->ring) slot.reserve(per_slot);
    }
    std::size_t threads = cfg_.threads;
    if (threads == 0) threads = std::min(cfg_.shards, default_thread_count());
    shard_pool_ = std::make_unique<ThreadPool>(threads);
  } else if (cfg_.expected_in_flight > 0) {
    pending_.reserve(cfg_.expected_in_flight);
  }
}

Simulation::~Simulation() = default;

void Simulation::add_process(std::unique_ptr<Process> p) {
  COIN_REQUIRE(!started_, "add_process after start");
  COIN_REQUIRE(slots_.size() < cfg_.n, "too many processes");
  auto id = static_cast<ProcessId>(slots_.size());
  auto slot = std::make_unique<Slot>();
  slot->process = std::move(p);
  slot->context = std::make_unique<SlotContext>(this, id);
  slot->rng = rng_.fork();
  slots_.push_back(std::move(slot));
}

void Simulation::set_adversary(std::unique_ptr<Adversary> a) {
  COIN_REQUIRE(a != nullptr, "null adversary");
  adversary_ = std::move(a);
}

void Simulation::add_observer(std::shared_ptr<Observer> observer) {
  COIN_REQUIRE(observer != nullptr, "null observer");
  observers_.push_back(std::move(observer));
}

void Simulation::corrupt(ProcessId id, FaultPlan plan) {
  COIN_REQUIRE(id < slots_.size(), "corrupt: bad id");
  Slot& slot = *slots_[id];
  const bool fresh = !slot.corrupted;
  if (fresh) {
    COIN_REQUIRE(corrupted_count_ < cfg_.f,
                 "adversary corruption budget f exhausted");
    slot.corrupted = true;
    ++corrupted_count_;
  }
  slot.fault = std::move(plan);  // re-corruption just updates the behaviour
  if (slot.crash_like()) ++slot.wakeup_epoch;  // pending timers are lost
  if (slot.fault.mode == FaultPlan::Mode::kCrashRecover) {
    slot.recovered = false;
    recoveries_.push({deliveries_ + slot.fault.recover_after, timer_seq_++,
                      id, slot.wakeup_epoch});
  }
  if (!fresh) return;
  for (auto& obs : observers_) obs->on_corrupt(id, slot.fault);
  if (started_) slot.process->on_corrupt(*slot.context);
}

bool Simulation::is_corrupted(ProcessId id) const {
  COIN_REQUIRE(id < slots_.size(), "is_corrupted: bad id");
  return slots_[id]->corrupted;
}

bool Simulation::is_down(ProcessId id) const {
  COIN_REQUIRE(id < slots_.size(), "is_down: bad id");
  return slots_[id]->fault.mode == FaultPlan::Mode::kCrashRecover;
}

bool Simulation::has_recovered(ProcessId id) const {
  COIN_REQUIRE(id < slots_.size(), "has_recovered: bad id");
  return slots_[id]->recovered;
}

Process& Simulation::process(ProcessId id) {
  COIN_REQUIRE(id < slots_.size(), "process: bad id");
  return *slots_[id]->process;
}

std::uint64_t Simulation::depth_of(ProcessId id) const {
  COIN_REQUIRE(id < slots_.size(), "depth_of: bad id");
  return slots_[id]->depth;
}

void Simulation::enqueue_send(ProcessId from, ProcessId to, Tag tag,
                              SharedBytes payload, std::size_t words,
                              bool retransmit) {
  COIN_REQUIRE(to < cfg_.n, "send: bad destination");
  Slot& sender = *slots_[from];

  // Apply the sender's fault behaviour at the network boundary.
  if (sender.corrupted) {
    switch (sender.fault.mode) {
      case FaultPlan::Mode::kCrash:
      case FaultPlan::Mode::kCrashRecover:  // down: nothing leaves
      case FaultPlan::Mode::kSilent:
        return;  // nothing leaves a crashed/silent process
      case FaultPlan::Mode::kSelective: {
        const auto& t = sender.fault.selective_targets;
        if (std::find(t.begin(), t.end(), to) == t.end()) return;
        break;
      }
      case FaultPlan::Mode::kJunk:
        // Fresh junk per destination (broadcast fan-out reaches here once
        // per receiver), exactly as the pre-shared-payload substrate drew.
        payload = SharedBytes(sender.rng.next_bytes(payload.size()));
        break;
      case FaultPlan::Mode::kCorrect:
        break;
    }
  }

  Message msg;
  msg.id = next_msg_id_++;
  msg.from = from;
  msg.to = to;
  msg.tag = tag;
  msg.payload = std::move(payload);
  msg.words = words;
  msg.causal_depth = sender.depth + 1;
  msg.send_seq = send_seq_++;
  msg.retransmit = retransmit;

  metrics_.record_send(msg, !sender.corrupted);
  for (auto& obs : observers_) obs->on_send(msg, !sender.corrupted);

  if (cfg_.allow_content_visibility) adversary_->observe_pending_content(msg);

  if (to == from) {
    sender.self_queue.push_back(std::move(msg));  // free local delivery
  } else {
    push_through_link(std::move(msg));
  }
}

// The lossy-link layer sits between the send event and the pending pool:
// the send already happened (metrics/observers above saw it — the sender
// paid its word cost), but the substrate may lose the packet, enqueue
// extra copies, or belch up a stale packet from the same link's past.
// Every draw comes from link_rng_, and only for links whose plan is not
// reliable, so (a) runs are replayable and (b) reliable runs are
// byte-identical to pre-link-fault behaviour.
void Simulation::push_through_link(Message msg) {
  // Chaos partition gate: an active partition intercepts cross-group
  // traffic before any link-plan randomness is drawn. Held messages skip
  // the link layer entirely and re-enter the pool verbatim at heal time
  // (they "traversed" the link once; the partition only delayed them).
  if (chaos_ && chaos_->any_active_partition()) {
    ChaosPhase::PartitionMode mode = ChaosPhase::PartitionMode::kHold;
    std::size_t phase = 0;
    if (chaos_->blocked(msg.from, msg.to, &mode, &phase)) {
      if (mode == ChaosPhase::PartitionMode::kHold) {
        metrics_.record_partition_hold(msg);
        for (auto& obs : observers_) obs->on_partition_block(msg, true);
        held_.emplace_back(phase, std::move(msg));
      } else {
        metrics_.record_partition_drop(msg);
        for (auto& obs : observers_) obs->on_partition_block(msg, false);
      }
      return;
    }
  }

  // Chaos storm burst: congestion-style amplification, drawn from the
  // dedicated chaos Rng so storms never perturb link or scheduling
  // streams. Copies are network-created (like link duplicates) and
  // charge no words to anyone.
  if (chaos_) {
    if (std::optional<std::size_t> storm = chaos_->active_storm()) {
      const ChaosPhase& p = chaos_->schedule().phases[*storm];
      if (p.storm_p > 0.0 && chaos_rng_.next_bool(p.storm_p)) {
        std::size_t copies = 1;
        if (p.storm_copies > 1)
          copies += static_cast<std::size_t>(
              chaos_rng_.next_below(p.storm_copies));
        for (std::size_t i = 0; i < copies; ++i) {
          Message dup = msg;
          dup.id = next_msg_id_++;
          metrics_.record_storm_copy();
          route_message(std::move(dup));
        }
      }
    }
  }

  // Fully-reliable networks (the common case) skip the per-link plan
  // lookup entirely — one cached bool instead of a hash probe per send.
  if (network_reliable_) {
    route_message(std::move(msg));
    return;
  }
  const LinkPlan& plan = cfg_.network.link(msg.from, msg.to);
  if (plan.reliable()) {
    route_message(std::move(msg));
    return;
  }

  if (plan.drop_p > 0.0 && link_rng_.next_bool(plan.drop_p)) {
    metrics_.record_link_drop(msg);
    for (auto& obs : observers_) obs->on_link_drop(msg);
  } else {
    std::size_t copies = 0;
    if (plan.dup_p > 0.0 && link_rng_.next_bool(plan.dup_p)) {
      copies = 1;
      if (plan.max_duplicates > 1)
        copies += static_cast<std::size_t>(
            link_rng_.next_below(plan.max_duplicates));
    }
    for (std::size_t i = 0; i < copies; ++i) {
      Message dup = msg;
      dup.id = next_msg_id_++;
      metrics_.record_link_duplicate();
      for (auto& obs : observers_) obs->on_link_duplicate(dup);
      route_message(std::move(dup));
    }
    route_message(std::move(msg));
  }

  // Replay is keyed to send *activity* on the link, not to this packet's
  // fate: a dropped fresh packet can still shake loose a stale one.
  if (plan.replay_p > 0.0 && link_rng_.next_bool(plan.replay_p)) {
    const std::deque<Message>* history =
        replay_history_.find(link_key(msg.from, msg.to));
    if (history != nullptr && !history->empty()) {
      // The replayed copy aliases the original payload buffer.
      Message replay =
          (*history)[static_cast<std::size_t>(
              link_rng_.next_below(history->size()))];
      replay.id = next_msg_id_++;
      metrics_.record_link_replay();
      for (auto& obs : observers_) obs->on_link_replay(replay);
      route_message(std::move(replay));
    }
  }
}

const std::deque<Message>* Simulation::replay_history_of(ProcessId from,
                                                         ProcessId to) const {
  return replay_history_.find(link_key(from, to));
}

void Simulation::remember_delivered(const Message& msg) {
  if (network_reliable_) return;
  const LinkPlan& plan = cfg_.network.link(msg.from, msg.to);
  if (plan.replay_p <= 0.0 || plan.replay_window == 0) return;
  // The stored copy shares msg's payload buffer, so the history holds
  // O(window) headers per link, not O(window) payload clones.
  auto& history = replay_history_[link_key(msg.from, msg.to)];
  history.push_back(msg);
  while (history.size() > plan.replay_window) history.pop_front();
}

void Simulation::inject(ProcessId from, ProcessId to, Tag tag,
                        SharedBytes payload, std::size_t words) {
  COIN_REQUIRE(from < slots_.size() && to < cfg_.n, "inject: bad ids");
  COIN_REQUIRE(slots_[from]->corrupted,
               "inject: only corrupted processes can be impersonated");
  Message msg;
  msg.id = next_msg_id_++;
  msg.from = from;
  msg.to = to;
  msg.tag = tag;
  msg.payload = std::move(payload);
  msg.words = words;
  msg.causal_depth = slots_[from]->depth + 1;
  msg.send_seq = send_seq_++;
  metrics_.record_send(msg, /*sender_correct=*/false);
  for (auto& obs : observers_) obs->on_send(msg, false);
  if (to == from) {
    slots_[from]->self_queue.push_back(std::move(msg));
  } else {
    route_message(std::move(msg));
  }
}

void Simulation::dispatch_to(ProcessId to, const Message& msg) {
  Slot& receiver = *slots_[to];
  if (receiver.corrupted && receiver.crash_like())
    return;  // crashed/down processes receive nothing
  receiver.depth = std::max(receiver.depth, msg.causal_depth);
  receiver.process->on_message(*receiver.context, msg);
  drain_self_queue(to);
}

void Simulation::drain_self_queue(ProcessId id) {
  Slot& slot = *slots_[id];
  while (!slot.self_queue.empty()) {
    if (slot.corrupted && slot.crash_like()) {
      slot.self_queue.clear();  // in-memory queue: lost in the crash
      return;
    }
    Message msg = std::move(slot.self_queue.front());
    slot.self_queue.pop_front();
    slot.depth = std::max(slot.depth, msg.causal_depth);
    slot.process->on_message(*slot.context, msg);
  }
}

// ----------------------------------------------------- telemetry notes --
//
// The §2 measures only count events at correct processes, so Metrics see
// a decision only when the reporter is currently correct; observers see
// everything, with the DecideEvent.correct flag carrying the distinction.

void Simulation::note_decide_from(ProcessId who, Tag scope, int value,
                                  std::uint64_t round) {
  const Slot& slot = *slots_[who];
  if (!slot.corrupted) metrics_.record_decide(round, slot.depth);
  if (observers_.empty()) return;
  DecideEvent ev;
  ev.who = who;
  ev.scope = scope;
  ev.value = value;
  ev.round = round;
  ev.causal_depth = slot.depth;
  ev.correct = !slot.corrupted;
  for (auto& obs : observers_) obs->on_decide(ev);
}

void Simulation::note_round_from(ProcessId who, std::uint64_t round) {
  for (auto& obs : observers_) obs->on_round(who, round);
}

void Simulation::note_dead_letter_from(ProcessId who, ProcessId to, Tag tag,
                                       std::size_t words) {
  metrics_.record_dead_letter(words);
  for (auto& obs : observers_) obs->on_dead_letter(who, to, tag, words);
}

void Simulation::note_verify_batch_from(ProcessId /*who*/, std::size_t shares,
                                        std::size_t rejects,
                                        std::size_t memo_hits) {
  metrics_.record_verify_batch(shares, rejects, memo_hits);
}

void Simulation::note_sig_verify_batch_from(ProcessId /*who*/,
                                            std::size_t sigs,
                                            std::size_t rejects,
                                            std::size_t memo_hits) {
  metrics_.record_sig_verify_batch(sigs, rejects, memo_hits);
}

void Simulation::note_rbc_encode_from(ProcessId /*who*/,
                                      std::size_t fragments) {
  metrics_.record_rbc_encode(fragments);
}

void Simulation::note_rbc_decode_from(ProcessId /*who*/, bool ok,
                                      std::size_t fragments) {
  metrics_.record_rbc_decode(ok, fragments);
}

// ----------------------------------------------------- timers/recovery --

void Simulation::schedule_wakeup_for(ProcessId id, std::uint64_t delay) {
  COIN_REQUIRE(id < slots_.size(), "schedule_wakeup: bad id");
  wakeups_.push(
      {deliveries_ + delay, timer_seq_++, id, slots_[id]->wakeup_epoch});
}

std::optional<std::uint64_t> Simulation::next_timer_due() const {
  std::optional<std::uint64_t> due;
  if (!wakeups_.empty()) due = std::get<0>(wakeups_.top());
  if (!recoveries_.empty()) {
    std::uint64_t r = std::get<0>(recoveries_.top());
    if (!due || r < *due) due = r;
  }
  // Chaos events participate in idle advance: a heal (or churn wave)
  // must fire even when nothing is in flight — otherwise a drained
  // network would strand held messages behind a partition forever.
  if (chaos_) {
    std::optional<std::uint64_t> c = chaos_->next_event_at();
    if (c && (!due || *c < *due)) due = c;
  }
  return due;
}

void Simulation::recover_process(ProcessId id) {
  Slot& slot = *slots_[id];
  // A re-corruption may have replaced the crash-recover plan (e.g. with a
  // permanent crash) while the restart was pending; the stale timer then
  // must not resurrect the process.
  if (slot.fault.mode != FaultPlan::Mode::kCrashRecover) return;
  slot.fault.mode = FaultPlan::Mode::kCorrect;
  slot.recovered = true;
  slot.process->on_recover(*slot.context, slot.stable_storage);
  drain_self_queue(id);
  for (auto& obs : observers_) obs->on_recover(id);
}

void Simulation::fire_due_timers() {
  // Restarts first: a process whose wakeup and restart are both due
  // should come back before (not instead of) seeing the wakeup dropped.
  while (!recoveries_.empty() &&
         std::get<0>(recoveries_.top()) <= deliveries_) {
    ProcessId id = std::get<2>(recoveries_.top());
    recoveries_.pop();
    recover_process(id);
  }
  while (!wakeups_.empty() && std::get<0>(wakeups_.top()) <= deliveries_) {
    TimerEntry e = wakeups_.top();
    wakeups_.pop();
    Slot& slot = *slots_[std::get<2>(e)];
    if (std::get<3>(e) != slot.wakeup_epoch) continue;  // pre-crash timer
    if (slot.corrupted && slot.crash_like()) continue;  // down right now
    slot.process->on_wakeup(*slot.context);
    drain_self_queue(std::get<2>(e));
  }
}

// ------------------------------------------------------------- chaos --

void Simulation::run_chaos_due() {
  if (!chaos_) return;
  while (std::optional<ChaosEvent> ev = chaos_->pop_due(deliveries_)) {
    const ChaosPhase& phase = chaos_->schedule().phases[ev->phase];
    switch (ev->kind) {
      case ChaosEvent::Kind::kPhaseBegin:
        for (auto& obs : observers_)
          obs->on_chaos_phase(ev->phase, phase.kind_name(), true,
                              deliveries_);
        break;
      case ChaosEvent::Kind::kChurnWave:
        churn_wave(ev->phase);
        break;
      case ChaosEvent::Kind::kPhaseEnd:
        if (phase.kind == ChaosPhase::Kind::kPartition)
          release_partition(ev->phase);
        for (auto& obs : observers_)
          obs->on_chaos_phase(ev->phase, phase.kind_name(), false,
                              deliveries_);
        break;
    }
  }
}

void Simulation::churn_wave(std::size_t phase_idx) {
  const ChaosPhase& phase = chaos_->schedule().phases[phase_idx];
  std::vector<ProcessId>& victims = churn_victims_[phase_idx];
  if (victims.empty()) {
    // First wave: claim the highest not-yet-corrupted ids. The runner's
    // static fault mix occupies the very top, so churn lands directly
    // below it; later waves cycle this same set, which re-corruption
    // makes budget-free.
    for (ProcessId id = static_cast<ProcessId>(cfg_.n);
         id > 0 && victims.size() < phase.churn_victims;) {
      --id;
      if (!slots_[id]->corrupted) victims.push_back(id);
    }
  }
  for (ProcessId id : victims) {
    Slot& slot = *slots_[id];
    // Skip victims that are still down (a wave must not extend a crash
    // already in progress) or that the adversary meanwhile repurposed
    // with a non-recovering behaviour — churn must never *heal* a
    // corruption it does not own.
    if (slot.corrupted && slot.fault.mode != FaultPlan::Mode::kCorrect)
      continue;
    // Fresh corruptions respect the budget like adversary requests do.
    if (!slot.corrupted && corrupted_count_ >= cfg_.f) continue;
    metrics_.record_churn_crash();
    corrupt(id, FaultPlan::crash_recover(phase.churn_down));
  }
}

void Simulation::release_partition(std::size_t phase_idx) {
  if (held_.empty()) return;
  std::vector<std::pair<std::size_t, Message>> kept;
  kept.reserve(held_.size());
  std::size_t released = 0;
  for (auto& entry : held_) {
    if (entry.first == phase_idx) {
      // Healed: the message re-enters the pool now, with a fresh enqueue
      // tick — its fairness clock starts at the heal, not at the
      // original send (the partition, not the adversary, delayed it).
      route_message(std::move(entry.second));
      ++released;
    } else {
      kept.push_back(std::move(entry));
    }
  }
  held_.swap(kept);
  metrics_.record_partition_release(released);
}

void Simulation::apply_corruptions() {
  for (auto& req : adversary_->corrupt_now(rng_)) {
    if (req.target >= slots_.size()) continue;
    if (slots_[req.target]->corrupted) continue;
    if (corrupted_count_ >= cfg_.f) break;  // budget exhausted: ignore
    corrupt(req.target, std::move(req.plan));
  }
}

void Simulation::start() {
  COIN_REQUIRE(!started_, "start called twice");
  COIN_REQUIRE(slots_.size() == cfg_.n, "start: missing processes");
  started_ = true;
  apply_corruptions();
  run_chaos_due();  // phases starting at tick 0 fire before on_start
  for (auto& slot : slots_) {
    if (slot->corrupted && slot->crash_like()) continue;
    slot->process->on_start(*slot->context);
  }
  for (ProcessId id = 0; id < slots_.size(); ++id) drain_self_queue(id);
}

bool Simulation::step() {
  COIN_REQUIRE(started_, "step before start");
  if (sharded()) return superstep();
  fire_due_timers();
  run_chaos_due();

  if (pending_.empty()) {
    // Idle network. If a wakeup, restart or chaos event is scheduled,
    // advance "time" straight to it (deliveries are the only clock;
    // nothing else can move it while no message is in flight). Its
    // callback may enqueue new sends — retransmissions typically do —
    // and a heal releases held messages, so this revives runs a pure
    // drop-fault or unhealed partition would otherwise strand.
    auto due = next_timer_due();
    if (!due) return false;
    if (*due >= cfg_.max_deliveries)
      throw ConfigError("Simulation: max_deliveries exceeded (livelock?)");
    deliveries_ = std::max(deliveries_, *due);
    fire_due_timers();
    run_chaos_due();
    return true;
  }

  if (deliveries_ >= cfg_.max_deliveries)
    throw ConfigError("Simulation: max_deliveries exceeded (livelock?)");

  apply_corruptions();

  // Fairness override: the oldest message must go through once bypassed
  // fairness_bound times; otherwise the adversary chooses freely. The
  // cheap tick lower bound screens out the common case — if even the
  // stalest heap entry is too young, the precise (stale-popping) oldest
  // lookup cannot trigger either, so it is skipped entirely.
  std::size_t chosen = static_cast<std::size_t>(-1);
  bool forced_by_fairness = false;
  if (deliveries_ - pending_.oldest_tick_lower_bound() >=
      cfg_.fairness_bound) {
    std::size_t oldest = pending_.oldest_index();
    if (deliveries_ - pending_.enqueue_tick(oldest) >= cfg_.fairness_bound) {
      chosen = oldest;
      forced_by_fairness = true;
    }
  }
  if (chosen == static_cast<std::size_t>(-1)) {
    chosen = adversary_->schedule(pending_, rng_);
    COIN_REQUIRE(chosen < pending_.size(), "adversary chose bad index");
  }

  const std::uint64_t age = deliveries_ - pending_.enqueue_tick(chosen);
  Message msg = pending_.take(chosen);

  if (!observers_.empty()) {
    MessageMeta meta;
    meta.id = msg.id;
    meta.from = msg.from;
    meta.to = msg.to;
    meta.tag = msg.tag;
    meta.words = msg.words;
    meta.send_seq = msg.send_seq;
    meta.age = age;
    for (auto& obs : observers_)
      obs->on_adversary_choice(meta, forced_by_fairness);
  }

  ++deliveries_;
  metrics_.record_delivery(msg, age);
  dispatch_to(msg.to, msg);
  remember_delivered(msg);
  for (auto& obs : observers_) obs->on_deliver(msg);
  adversary_->observe_delivery(msg);
  return true;
}

// ------------------------------------------- sharded superstep engine --
//
// The sharded engine replaces the per-delivery adversary choice with a
// hash-addressed random-delay schedule: at routing time (always serial —
// either the legacy-equivalent serial callbacks or the serial commit)
// each message draws h = mix64(shard_seed ^ route_seq) and is placed at
// superstep `now + 1 + h % W` with within-superstep rank mix64(h). Both
// are pure functions of (seed, canonical route order), so the merged
// global delivery order is bit-identical for every shard count and
// thread count. A superstep then runs in four phases:
//   1. barrier work (timers, chaos, corruption requests) — serial;
//   2. exchange: pull the due calendar slot per shard, sort by rank —
//      parallel, pure;
//   3. handlers: each shard executes its activations in rank order,
//      buffering every side-effect — parallel, shard-local state only;
//   4. commit: replay activations in the globally merged rank order,
//      emitting deliveries/sends/notes exactly as an inline loop would —
//      serial.
// Fairness is structural here (nothing waits more than W supersteps), so
// the fairness-bound scan and Adversary::schedule are bypassed.

void Simulation::route_message(Message msg) {
  if (!sharded()) {
    pending_.push(std::move(msg), deliveries_);
    return;
  }
  const std::uint64_t h = mix64(shard_seed_ ^ route_seq_);
  const std::size_t shard = shard_of(msg.to);
  CalEntry e;
  e.okey = mix64(h);
  e.route_seq = route_seq_++;
  e.enqueue_index = deliveries_;
  e.msg = std::move(msg);
  const auto slot =
      static_cast<std::size_t>((superstep_ + 1 + h % cfg_.shard_slack) %
                               cfg_.shard_slack);
  shard_states_[shard]->ring[slot].push_back(std::move(e));
  ++slot_counts_[slot];
  ++calendar_size_;
}

void Simulation::buffer_send(ProcessId from, ProcessId to, Tag tag,
                             SharedBytes payload, std::size_t words,
                             bool retransmit) {
  COIN_REQUIRE(to < cfg_.n, "send: bad destination");
  Slot& sender = *slots_[from];

  // The sender's fault behaviour applies at call time (the parallel
  // phase), mirroring enqueue_send: only the sender's own slot state and
  // rng are touched, and both are home-shard-exclusive.
  if (sender.corrupted) {
    switch (sender.fault.mode) {
      case FaultPlan::Mode::kCrash:
      case FaultPlan::Mode::kCrashRecover:
      case FaultPlan::Mode::kSilent:
        return;  // nothing leaves a crashed/silent process
      case FaultPlan::Mode::kSelective: {
        const auto& t = sender.fault.selective_targets;
        if (std::find(t.begin(), t.end(), to) == t.end()) return;
        break;
      }
      case FaultPlan::Mode::kJunk:
        payload = SharedBytes(sender.rng.next_bytes(payload.size()));
        break;
      case FaultPlan::Mode::kCorrect:
        break;
    }
  }

  PendingEffect e;
  e.kind = PendingEffect::Kind::kSend;
  e.retransmit = retransmit;
  e.self = (to == from);
  e.correct = !sender.corrupted;
  e.to = to;
  e.tag = tag;
  e.payload = payload;  // commit emits the send event from this handle
  e.a = words;
  e.b = sender.depth + 1;
  sender.active_entry->effects.push_back(std::move(e));

  if (to == from) {
    // Self-sends are free local deliveries in the legacy loop (straight
    // onto the self queue, no pool transit): deliver them nested inside
    // this same handler phase. id/send_seq are stamped 0 here — the
    // canonical values exist only at commit — which is safe because no
    // protocol reads them; the commit-time send event carries real ones.
    Message msg;
    msg.from = from;
    msg.to = to;
    msg.tag = tag;
    msg.payload = std::move(payload);
    msg.words = words;
    msg.causal_depth = sender.depth + 1;
    msg.retransmit = retransmit;
    sender.self_queue.push_back(std::move(msg));
  }
}

void Simulation::deliver_in_phase(Slot& slot, const Message& msg) {
  slot.depth = std::max(slot.depth, msg.causal_depth);
  slot.process->on_message(*slot.context, msg);
}

void Simulation::run_shard_handlers(std::size_t shard) {
  ShardState& st = *shard_states_[shard];
  ShardStats& stats = shard_stats_[shard];
  for (CalEntry& act : st.acts) {
    Slot& receiver = *slots_[act.msg.to];
    receiver.active_entry = &act;
    if (!(receiver.corrupted && receiver.crash_like())) {
      act.handler_ran = true;
      ++stats.handler_calls;
      deliver_in_phase(receiver, act.msg);
      while (!receiver.self_queue.empty()) {
        Message msg = std::move(receiver.self_queue.front());
        receiver.self_queue.pop_front();
        ++stats.handler_calls;
        deliver_in_phase(receiver, msg);
      }
    }
    receiver.active_entry = nullptr;
    ++stats.deliveries;
  }
}

void Simulation::commit_activation(CalEntry& act) {
  const Message& msg = act.msg;
  const std::uint64_t age = act.delivery_pre - act.enqueue_index;

  if (!observers_.empty()) {
    MessageMeta meta;
    meta.id = msg.id;
    meta.from = msg.from;
    meta.to = msg.to;
    meta.tag = msg.tag;
    meta.words = msg.words;
    meta.send_seq = msg.send_seq;
    meta.age = age;
    // The "choice" is the hash-addressed schedule's; fairness never
    // forces anything (delay is structurally bounded by W).
    for (auto& obs : observers_) obs->on_adversary_choice(meta, false);
  }

  ++deliveries_;
  metrics_.record_delivery(msg, age);
  remember_delivered(msg);
  for (auto& obs : observers_) obs->on_deliver(msg);
  adversary_->observe_delivery(msg);

  const ProcessId who = msg.to;
  for (PendingEffect& e : act.effects) {
    switch (e.kind) {
      case PendingEffect::Kind::kSend: {
        Message m;
        m.id = next_msg_id_++;
        m.from = who;
        m.to = e.to;
        m.tag = e.tag;
        m.payload = std::move(e.payload);
        m.words = static_cast<std::size_t>(e.a);
        m.causal_depth = e.b;
        m.send_seq = send_seq_++;
        m.retransmit = e.retransmit;
        metrics_.record_send(m, e.correct);
        for (auto& obs : observers_) obs->on_send(m, e.correct);
        if (cfg_.allow_content_visibility)
          adversary_->observe_pending_content(m);
        // Self copies were already delivered nested inside the handler
        // phase; everything else transits the (serial) link layer now.
        if (!e.self) push_through_link(std::move(m));
        break;
      }
      case PendingEffect::Kind::kWakeup:
        // deliveries_ here == delivery_pre + 1 == the handler's now().
        wakeups_.push({deliveries_ + e.a, timer_seq_++, who,
                       slots_[who]->wakeup_epoch});
        break;
      case PendingEffect::Kind::kDecide: {
        if (e.correct) metrics_.record_decide(e.a, e.c);
        if (!observers_.empty()) {
          DecideEvent ev;
          ev.who = who;
          ev.scope = e.tag;
          ev.value = static_cast<int>(static_cast<std::int64_t>(e.b));
          ev.round = e.a;
          ev.causal_depth = e.c;
          ev.correct = e.correct;
          for (auto& obs : observers_) obs->on_decide(ev);
        }
        break;
      }
      case PendingEffect::Kind::kRound:
        for (auto& obs : observers_) obs->on_round(who, e.a);
        break;
      case PendingEffect::Kind::kDeadLetter:
        metrics_.record_dead_letter(static_cast<std::size_t>(e.a));
        for (auto& obs : observers_)
          obs->on_dead_letter(who, e.to, e.tag,
                              static_cast<std::size_t>(e.a));
        break;
      case PendingEffect::Kind::kVerifyBatch:
        metrics_.record_verify_batch(static_cast<std::size_t>(e.a),
                                     static_cast<std::size_t>(e.b),
                                     static_cast<std::size_t>(e.c));
        break;
      case PendingEffect::Kind::kSigVerifyBatch:
        metrics_.record_sig_verify_batch(static_cast<std::size_t>(e.a),
                                         static_cast<std::size_t>(e.b),
                                         static_cast<std::size_t>(e.c));
        break;
      case PendingEffect::Kind::kRbcEncode:
        metrics_.record_rbc_encode(static_cast<std::size_t>(e.a));
        break;
      case PendingEffect::Kind::kRbcDecode:
        metrics_.record_rbc_decode(e.b != 0, static_cast<std::size_t>(e.a));
        break;
    }
  }
  act.effects.clear();
}

bool Simulation::superstep() {
  fire_due_timers();
  run_chaos_due();

  if (calendar_size_ == 0) {
    // Idle network: advance the delivery clock straight to the next
    // timer/chaos event, exactly like the legacy idle path.
    auto due = next_timer_due();
    if (!due) return false;
    if (*due >= cfg_.max_deliveries)
      throw ConfigError("Simulation: max_deliveries exceeded (livelock?)");
    deliveries_ = std::max(deliveries_, *due);
    fire_due_timers();
    run_chaos_due();
    return true;
  }

  if (deliveries_ >= cfg_.max_deliveries)
    throw ConfigError("Simulation: max_deliveries exceeded (livelock?)");

  apply_corruptions();

  // Advance to the next superstep with work. Every in-flight entry is at
  // most W supersteps out, so this scans at most W ring slots.
  do {
    ++superstep_;
  } while (slot_counts_[static_cast<std::size_t>(
               superstep_ % cfg_.shard_slack)] == 0);
  const auto slot =
      static_cast<std::size_t>(superstep_ % cfg_.shard_slack);

  // Phase 2 — exchange: move the due slot into each shard's work list
  // and sort by the canonical (okey, route_seq) rank, in parallel. Idle
  // shards (nothing due while another shard has work) are the
  // deterministic load-imbalance signal run_report surfaces.
  std::size_t busy = 0;
  for (const auto& st : shard_states_)
    if (!st->ring[slot].empty()) ++busy;
  if (busy < cfg_.shards) {
    for (std::size_t s = 0; s < cfg_.shards; ++s) {
      if (shard_states_[s]->ring[slot].empty()) {
        ++shard_stats_[s].idle_supersteps;
        ++merge_stalls_;
      }
    }
  }
  shard_pool_->for_each_index(cfg_.shards, [&](std::size_t s) {
    ShardState& st = *shard_states_[s];
    st.acts = std::move(st.ring[slot]);
    st.ring[slot].clear();
    std::sort(st.acts.begin(), st.acts.end(),
              [](const CalEntry& a, const CalEntry& b) {
                return a.okey != b.okey ? a.okey < b.okey
                                        : a.route_seq < b.route_seq;
              });
  });

  // Merge: assign each activation its global delivery index (the rank in
  // the k-way merge of the sorted shard lists) and remember the commit
  // order. Runs before the handlers so now()/delivery_pre are available
  // inside them.
  std::size_t total = 0;
  for (const auto& st : shard_states_) total += st->acts.size();
  calendar_size_ -= total;
  slot_counts_[slot] = 0;
  std::vector<std::pair<std::size_t, std::size_t>> order;  // (shard, index)
  order.reserve(total);
  std::vector<std::size_t> cursor(cfg_.shards, 0);
  for (std::size_t k = 0; k < total; ++k) {
    std::size_t best = static_cast<std::size_t>(-1);
    for (std::size_t s = 0; s < cfg_.shards; ++s) {
      if (cursor[s] >= shard_states_[s]->acts.size()) continue;
      if (best == static_cast<std::size_t>(-1)) {
        best = s;
        continue;
      }
      const CalEntry& a = shard_states_[s]->acts[cursor[s]];
      const CalEntry& b = shard_states_[best]->acts[cursor[best]];
      if (a.okey < b.okey ||
          (a.okey == b.okey && a.route_seq < b.route_seq))
        best = s;
    }
    CalEntry& act = shard_states_[best]->acts[cursor[best]];
    act.delivery_pre = deliveries_ + k;
    order.emplace_back(best, cursor[best]);
    ++cursor[best];
  }

  // Phase 3 — handlers, in parallel; every side-effect buffered.
  parallel_phase_ = true;
  shard_pool_->for_each_index(
      cfg_.shards, [this](std::size_t s) { run_shard_handlers(s); });
  parallel_phase_ = false;

  // Phase 4 — serial commit in the merged canonical order.
  for (const auto& [s, i] : order) commit_activation(shard_states_[s]->acts[i]);
  for (auto& st : shard_states_) st->acts.clear();
  return true;
}

void Simulation::run() {
  while (step()) {
  }
}

bool Simulation::run_until(const std::function<bool()>& pred) {
  if (pred()) return true;
  while (step()) {
    if (pred()) return true;
  }
  return pred();
}

}  // namespace coincidence::sim
