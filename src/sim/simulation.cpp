#include "sim/simulation.h"

#include <algorithm>

#include "common/errors.h"

namespace coincidence::sim {

// ---------------------------------------------------------------- Slot --

struct Simulation::Slot {
  std::unique_ptr<Process> process;
  std::unique_ptr<SlotContext> context;
  Rng rng{0};
  FaultPlan fault;            // kCorrect until corrupted
  bool corrupted = false;
  std::uint64_t depth = 0;    // causal depth observed so far
  std::deque<Message> self_queue;
};

class Simulation::SlotContext final : public Context {
 public:
  SlotContext(Simulation* sim, ProcessId id) : sim_(sim), id_(id) {}

  ProcessId self() const override { return id_; }
  std::size_t n() const override { return sim_->cfg_.n; }

  void send(ProcessId to, std::string tag, Bytes payload,
            std::size_t words) override {
    sim_->enqueue_send(id_, to, std::move(tag), std::move(payload), words);
  }

  void broadcast(std::string tag, Bytes payload, std::size_t words) override {
    for (ProcessId to = 0; to < sim_->cfg_.n; ++to)
      sim_->enqueue_send(id_, to, tag, payload, words);
  }

  Rng& rng() override { return sim_->slots_[id_]->rng; }

  std::uint64_t causal_depth() const override {
    return sim_->slots_[id_]->depth;
  }

 private:
  Simulation* sim_;
  ProcessId id_;
};

// ---------------------------------------------------------- Simulation --

Simulation::Simulation(SimConfig cfg) : cfg_(cfg), rng_(cfg.seed) {
  COIN_REQUIRE(cfg_.n > 0, "Simulation needs at least one process");
  if (cfg_.fairness_bound == 0) cfg_.fairness_bound = 16 * cfg_.n;
  adversary_ = std::make_unique<RandomAdversary>();
  slots_.reserve(cfg_.n);
}

Simulation::~Simulation() = default;

void Simulation::add_process(std::unique_ptr<Process> p) {
  COIN_REQUIRE(!started_, "add_process after start");
  COIN_REQUIRE(slots_.size() < cfg_.n, "too many processes");
  auto id = static_cast<ProcessId>(slots_.size());
  auto slot = std::make_unique<Slot>();
  slot->process = std::move(p);
  slot->context = std::make_unique<SlotContext>(this, id);
  slot->rng = rng_.fork();
  slots_.push_back(std::move(slot));
}

void Simulation::set_adversary(std::unique_ptr<Adversary> a) {
  COIN_REQUIRE(a != nullptr, "null adversary");
  adversary_ = std::move(a);
}

void Simulation::add_observer(std::shared_ptr<Observer> observer) {
  COIN_REQUIRE(observer != nullptr, "null observer");
  observers_.push_back(std::move(observer));
}

void Simulation::corrupt(ProcessId id, FaultPlan plan) {
  COIN_REQUIRE(id < slots_.size(), "corrupt: bad id");
  Slot& slot = *slots_[id];
  if (slot.corrupted) {  // re-corruption just updates the behaviour
    slot.fault = std::move(plan);
    return;
  }
  COIN_REQUIRE(corrupted_count_ < cfg_.f,
               "adversary corruption budget f exhausted");
  slot.corrupted = true;
  slot.fault = std::move(plan);
  ++corrupted_count_;
  for (auto& obs : observers_) obs->on_corrupt(id, slot.fault);
  if (started_) slot.process->on_corrupt(*slot.context);
}

bool Simulation::is_corrupted(ProcessId id) const {
  COIN_REQUIRE(id < slots_.size(), "is_corrupted: bad id");
  return slots_[id]->corrupted;
}

Process& Simulation::process(ProcessId id) {
  COIN_REQUIRE(id < slots_.size(), "process: bad id");
  return *slots_[id]->process;
}

std::uint64_t Simulation::depth_of(ProcessId id) const {
  COIN_REQUIRE(id < slots_.size(), "depth_of: bad id");
  return slots_[id]->depth;
}

void Simulation::enqueue_send(ProcessId from, ProcessId to, std::string tag,
                              Bytes payload, std::size_t words) {
  COIN_REQUIRE(to < cfg_.n, "send: bad destination");
  Slot& sender = *slots_[from];

  // Apply the sender's fault behaviour at the network boundary.
  if (sender.corrupted) {
    switch (sender.fault.mode) {
      case FaultPlan::Mode::kCrash:
      case FaultPlan::Mode::kSilent:
        return;  // nothing leaves a crashed/silent process
      case FaultPlan::Mode::kSelective: {
        const auto& t = sender.fault.selective_targets;
        if (std::find(t.begin(), t.end(), to) == t.end()) return;
        break;
      }
      case FaultPlan::Mode::kJunk:
        payload = sender.rng.next_bytes(payload.size());
        break;
      case FaultPlan::Mode::kCorrect:
        break;
    }
  }

  Message msg;
  msg.id = next_msg_id_++;
  msg.from = from;
  msg.to = to;
  msg.tag = std::move(tag);
  msg.payload = std::move(payload);
  msg.words = words;
  msg.causal_depth = sender.depth + 1;
  msg.send_seq = send_seq_++;

  metrics_.record_send(msg, !sender.corrupted);
  for (auto& obs : observers_) obs->on_send(msg, !sender.corrupted);

  if (cfg_.allow_content_visibility) adversary_->observe_pending_content(msg);

  if (to == from) {
    sender.self_queue.push_back(std::move(msg));  // free local delivery
  } else {
    pending_.push(std::move(msg), deliveries_);
  }
}

void Simulation::inject(ProcessId from, ProcessId to, std::string tag,
                        Bytes payload, std::size_t words) {
  COIN_REQUIRE(from < slots_.size() && to < cfg_.n, "inject: bad ids");
  COIN_REQUIRE(slots_[from]->corrupted,
               "inject: only corrupted processes can be impersonated");
  Message msg;
  msg.id = next_msg_id_++;
  msg.from = from;
  msg.to = to;
  msg.tag = std::move(tag);
  msg.payload = std::move(payload);
  msg.words = words;
  msg.causal_depth = slots_[from]->depth + 1;
  msg.send_seq = send_seq_++;
  metrics_.record_send(msg, /*sender_correct=*/false);
  for (auto& obs : observers_) obs->on_send(msg, false);
  if (to == from) {
    slots_[from]->self_queue.push_back(std::move(msg));
  } else {
    pending_.push(std::move(msg), deliveries_);
  }
}

void Simulation::dispatch_to(ProcessId to, const Message& msg) {
  Slot& receiver = *slots_[to];
  if (receiver.corrupted && receiver.fault.mode == FaultPlan::Mode::kCrash)
    return;  // crashed processes receive nothing
  receiver.depth = std::max(receiver.depth, msg.causal_depth);
  receiver.process->on_message(*receiver.context, msg);
  drain_self_queue(to);
}

void Simulation::drain_self_queue(ProcessId id) {
  Slot& slot = *slots_[id];
  while (!slot.self_queue.empty()) {
    if (slot.corrupted && slot.fault.mode == FaultPlan::Mode::kCrash) {
      slot.self_queue.clear();
      return;
    }
    Message msg = std::move(slot.self_queue.front());
    slot.self_queue.pop_front();
    slot.depth = std::max(slot.depth, msg.causal_depth);
    slot.process->on_message(*slot.context, msg);
  }
}

void Simulation::apply_corruptions() {
  for (auto& req : adversary_->corrupt_now(rng_)) {
    if (req.target >= slots_.size()) continue;
    if (slots_[req.target]->corrupted) continue;
    if (corrupted_count_ >= cfg_.f) break;  // budget exhausted: ignore
    corrupt(req.target, std::move(req.plan));
  }
}

void Simulation::start() {
  COIN_REQUIRE(!started_, "start called twice");
  COIN_REQUIRE(slots_.size() == cfg_.n, "start: missing processes");
  started_ = true;
  apply_corruptions();
  for (auto& slot : slots_) {
    if (slot->corrupted && slot->fault.mode == FaultPlan::Mode::kCrash)
      continue;
    slot->process->on_start(*slot->context);
  }
  for (ProcessId id = 0; id < slots_.size(); ++id) drain_self_queue(id);
}

bool Simulation::step() {
  COIN_REQUIRE(started_, "step before start");
  if (pending_.empty()) return false;
  if (deliveries_ >= cfg_.max_deliveries)
    throw ConfigError("Simulation: max_deliveries exceeded (livelock?)");

  apply_corruptions();

  // Fairness override: the oldest message must go through once bypassed
  // fairness_bound times; otherwise the adversary chooses freely.
  std::size_t chosen;
  std::size_t oldest = pending_.oldest_index();
  if (deliveries_ - pending_.enqueue_tick(oldest) >= cfg_.fairness_bound) {
    chosen = oldest;
  } else {
    chosen = adversary_->schedule(pending_, rng_);
    COIN_REQUIRE(chosen < pending_.size(), "adversary chose bad index");
  }

  Message msg = pending_.take(chosen);

  ++deliveries_;
  metrics_.record_delivery();
  dispatch_to(msg.to, msg);
  for (auto& obs : observers_) obs->on_deliver(msg);
  adversary_->observe_delivery(msg);
  return true;
}

void Simulation::run() {
  while (step()) {
  }
}

bool Simulation::run_until(const std::function<bool()>& pred) {
  if (pred()) return true;
  while (step()) {
    if (pred()) return true;
  }
  return pred();
}

}  // namespace coincidence::sim
