#include "sim/simulation.h"

#include <algorithm>

#include "common/errors.h"

namespace coincidence::sim {

namespace {
/// replay_history_ key: one u64 per directed link.
std::uint64_t link_key(ProcessId from, ProcessId to) {
  return (static_cast<std::uint64_t>(from) << 32) | to;
}
}  // namespace

// ---------------------------------------------------------------- Slot --

struct Simulation::Slot {
  std::unique_ptr<Process> process;
  std::unique_ptr<SlotContext> context;
  Rng rng{0};
  FaultPlan fault;            // kCorrect until corrupted
  bool corrupted = false;
  bool recovered = false;     // kCrashRecover process that restarted
  std::uint64_t wakeup_epoch = 0;  // bumped on crash: stale timers die
  std::uint64_t depth = 0;    // causal depth observed so far
  std::deque<Message> self_queue;
  Bytes stable_storage;       // survives kCrashRecover (Context::persist)

  /// Crash semantics apply: a kCrash process forever, a kCrashRecover
  /// process until its restart flips the mode back to kCorrect.
  bool crash_like() const {
    return fault.mode == FaultPlan::Mode::kCrash ||
           fault.mode == FaultPlan::Mode::kCrashRecover;
  }
};

class Simulation::SlotContext final : public Context {
 public:
  SlotContext(Simulation* sim, ProcessId id) : sim_(sim), id_(id) {}

  ProcessId self() const override { return id_; }
  std::size_t n() const override { return sim_->cfg_.n; }

  void send(ProcessId to, Tag tag, SharedBytes payload,
            std::size_t words) override {
    sim_->enqueue_send(id_, to, tag, std::move(payload), words);
  }

  void broadcast(Tag tag, SharedBytes payload, std::size_t words) override {
    // Each enqueued copy shares `payload`'s buffer: n refcount bumps,
    // zero deep copies.
    for (ProcessId to = 0; to < sim_->cfg_.n; ++to)
      sim_->enqueue_send(id_, to, tag, payload, words);
  }

  void send_retransmission(ProcessId to, Tag tag, SharedBytes payload,
                           std::size_t words) override {
    sim_->enqueue_send(id_, to, tag, std::move(payload), words,
                       /*retransmit=*/true);
  }

  Rng& rng() override { return sim_->slots_[id_]->rng; }

  std::uint64_t causal_depth() const override {
    return sim_->slots_[id_]->depth;
  }

  std::uint64_t now() const override { return sim_->deliveries_; }

  void schedule_wakeup(std::uint64_t delay) override {
    sim_->schedule_wakeup_for(id_, delay);
  }

  void persist(BytesView snapshot) override {
    sim_->slots_[id_]->stable_storage.assign(snapshot.begin(),
                                             snapshot.end());
  }

  void note_decide(Tag scope, int value, std::uint64_t round) override {
    sim_->note_decide_from(id_, scope, value, round);
  }

  void note_round(std::uint64_t round) override {
    sim_->note_round_from(id_, round);
  }

  void note_dead_letter(ProcessId to, Tag tag, std::size_t words) override {
    sim_->note_dead_letter_from(id_, to, tag, words);
  }

  void note_verify_batch(std::size_t shares, std::size_t rejects,
                         std::size_t memo_hits) override {
    sim_->note_verify_batch_from(id_, shares, rejects, memo_hits);
  }

  void note_sig_verify_batch(std::size_t sigs, std::size_t rejects,
                             std::size_t memo_hits) override {
    sim_->note_sig_verify_batch_from(id_, sigs, rejects, memo_hits);
  }

 private:
  Simulation* sim_;
  ProcessId id_;
};

// ---------------------------------------------------------- Simulation --

// The link Rng's seed is derived (not forked) from cfg.seed so that the
// scheduling stream and the per-process forks are byte-identical to a
// run without link faults — enabling a NetworkProfile must not change
// anything else about the run.
Simulation::Simulation(SimConfig cfg)
    : cfg_(std::move(cfg)),
      rng_(cfg_.seed),
      link_rng_(cfg_.seed ^ 0x6c696e6b5f726e67ULL),
      chaos_rng_(cfg_.seed ^ 0x6368616f73726e67ULL),
      network_reliable_(cfg_.network.reliable()) {
  COIN_REQUIRE(cfg_.n > 0, "Simulation needs at least one process");
  if (cfg_.fairness_bound == 0) cfg_.fairness_bound = 16 * cfg_.n;
  adversary_ = std::make_unique<RandomAdversary>();
  slots_.reserve(cfg_.n);
  if (!cfg_.chaos.empty()) {
    chaos_ = std::make_unique<ChaosState>(cfg_.chaos);
    churn_victims_.resize(cfg_.chaos.phases.size());
  }
}

Simulation::~Simulation() = default;

void Simulation::add_process(std::unique_ptr<Process> p) {
  COIN_REQUIRE(!started_, "add_process after start");
  COIN_REQUIRE(slots_.size() < cfg_.n, "too many processes");
  auto id = static_cast<ProcessId>(slots_.size());
  auto slot = std::make_unique<Slot>();
  slot->process = std::move(p);
  slot->context = std::make_unique<SlotContext>(this, id);
  slot->rng = rng_.fork();
  slots_.push_back(std::move(slot));
}

void Simulation::set_adversary(std::unique_ptr<Adversary> a) {
  COIN_REQUIRE(a != nullptr, "null adversary");
  adversary_ = std::move(a);
}

void Simulation::add_observer(std::shared_ptr<Observer> observer) {
  COIN_REQUIRE(observer != nullptr, "null observer");
  observers_.push_back(std::move(observer));
}

void Simulation::corrupt(ProcessId id, FaultPlan plan) {
  COIN_REQUIRE(id < slots_.size(), "corrupt: bad id");
  Slot& slot = *slots_[id];
  const bool fresh = !slot.corrupted;
  if (fresh) {
    COIN_REQUIRE(corrupted_count_ < cfg_.f,
                 "adversary corruption budget f exhausted");
    slot.corrupted = true;
    ++corrupted_count_;
  }
  slot.fault = std::move(plan);  // re-corruption just updates the behaviour
  if (slot.crash_like()) ++slot.wakeup_epoch;  // pending timers are lost
  if (slot.fault.mode == FaultPlan::Mode::kCrashRecover) {
    slot.recovered = false;
    recoveries_.push({deliveries_ + slot.fault.recover_after, timer_seq_++,
                      id, slot.wakeup_epoch});
  }
  if (!fresh) return;
  for (auto& obs : observers_) obs->on_corrupt(id, slot.fault);
  if (started_) slot.process->on_corrupt(*slot.context);
}

bool Simulation::is_corrupted(ProcessId id) const {
  COIN_REQUIRE(id < slots_.size(), "is_corrupted: bad id");
  return slots_[id]->corrupted;
}

bool Simulation::is_down(ProcessId id) const {
  COIN_REQUIRE(id < slots_.size(), "is_down: bad id");
  return slots_[id]->fault.mode == FaultPlan::Mode::kCrashRecover;
}

bool Simulation::has_recovered(ProcessId id) const {
  COIN_REQUIRE(id < slots_.size(), "has_recovered: bad id");
  return slots_[id]->recovered;
}

Process& Simulation::process(ProcessId id) {
  COIN_REQUIRE(id < slots_.size(), "process: bad id");
  return *slots_[id]->process;
}

std::uint64_t Simulation::depth_of(ProcessId id) const {
  COIN_REQUIRE(id < slots_.size(), "depth_of: bad id");
  return slots_[id]->depth;
}

void Simulation::enqueue_send(ProcessId from, ProcessId to, Tag tag,
                              SharedBytes payload, std::size_t words,
                              bool retransmit) {
  COIN_REQUIRE(to < cfg_.n, "send: bad destination");
  Slot& sender = *slots_[from];

  // Apply the sender's fault behaviour at the network boundary.
  if (sender.corrupted) {
    switch (sender.fault.mode) {
      case FaultPlan::Mode::kCrash:
      case FaultPlan::Mode::kCrashRecover:  // down: nothing leaves
      case FaultPlan::Mode::kSilent:
        return;  // nothing leaves a crashed/silent process
      case FaultPlan::Mode::kSelective: {
        const auto& t = sender.fault.selective_targets;
        if (std::find(t.begin(), t.end(), to) == t.end()) return;
        break;
      }
      case FaultPlan::Mode::kJunk:
        // Fresh junk per destination (broadcast fan-out reaches here once
        // per receiver), exactly as the pre-shared-payload substrate drew.
        payload = SharedBytes(sender.rng.next_bytes(payload.size()));
        break;
      case FaultPlan::Mode::kCorrect:
        break;
    }
  }

  Message msg;
  msg.id = next_msg_id_++;
  msg.from = from;
  msg.to = to;
  msg.tag = tag;
  msg.payload = std::move(payload);
  msg.words = words;
  msg.causal_depth = sender.depth + 1;
  msg.send_seq = send_seq_++;
  msg.retransmit = retransmit;

  metrics_.record_send(msg, !sender.corrupted);
  for (auto& obs : observers_) obs->on_send(msg, !sender.corrupted);

  if (cfg_.allow_content_visibility) adversary_->observe_pending_content(msg);

  if (to == from) {
    sender.self_queue.push_back(std::move(msg));  // free local delivery
  } else {
    push_through_link(std::move(msg));
  }
}

// The lossy-link layer sits between the send event and the pending pool:
// the send already happened (metrics/observers above saw it — the sender
// paid its word cost), but the substrate may lose the packet, enqueue
// extra copies, or belch up a stale packet from the same link's past.
// Every draw comes from link_rng_, and only for links whose plan is not
// reliable, so (a) runs are replayable and (b) reliable runs are
// byte-identical to pre-link-fault behaviour.
void Simulation::push_through_link(Message msg) {
  // Chaos partition gate: an active partition intercepts cross-group
  // traffic before any link-plan randomness is drawn. Held messages skip
  // the link layer entirely and re-enter the pool verbatim at heal time
  // (they "traversed" the link once; the partition only delayed them).
  if (chaos_ && chaos_->any_active_partition()) {
    ChaosPhase::PartitionMode mode = ChaosPhase::PartitionMode::kHold;
    std::size_t phase = 0;
    if (chaos_->blocked(msg.from, msg.to, &mode, &phase)) {
      if (mode == ChaosPhase::PartitionMode::kHold) {
        metrics_.record_partition_hold(msg);
        for (auto& obs : observers_) obs->on_partition_block(msg, true);
        held_.emplace_back(phase, std::move(msg));
      } else {
        metrics_.record_partition_drop(msg);
        for (auto& obs : observers_) obs->on_partition_block(msg, false);
      }
      return;
    }
  }

  // Chaos storm burst: congestion-style amplification, drawn from the
  // dedicated chaos Rng so storms never perturb link or scheduling
  // streams. Copies are network-created (like link duplicates) and
  // charge no words to anyone.
  if (chaos_) {
    if (std::optional<std::size_t> storm = chaos_->active_storm()) {
      const ChaosPhase& p = chaos_->schedule().phases[*storm];
      if (p.storm_p > 0.0 && chaos_rng_.next_bool(p.storm_p)) {
        std::size_t copies = 1;
        if (p.storm_copies > 1)
          copies += static_cast<std::size_t>(
              chaos_rng_.next_below(p.storm_copies));
        for (std::size_t i = 0; i < copies; ++i) {
          Message dup = msg;
          dup.id = next_msg_id_++;
          metrics_.record_storm_copy();
          pending_.push(std::move(dup), deliveries_);
        }
      }
    }
  }

  // Fully-reliable networks (the common case) skip the per-link plan
  // lookup entirely — one cached bool instead of a hash probe per send.
  if (network_reliable_) {
    pending_.push(std::move(msg), deliveries_);
    return;
  }
  const LinkPlan& plan = cfg_.network.link(msg.from, msg.to);
  if (plan.reliable()) {
    pending_.push(std::move(msg), deliveries_);
    return;
  }

  if (plan.drop_p > 0.0 && link_rng_.next_bool(plan.drop_p)) {
    metrics_.record_link_drop(msg);
    for (auto& obs : observers_) obs->on_link_drop(msg);
  } else {
    std::size_t copies = 0;
    if (plan.dup_p > 0.0 && link_rng_.next_bool(plan.dup_p)) {
      copies = 1;
      if (plan.max_duplicates > 1)
        copies += static_cast<std::size_t>(
            link_rng_.next_below(plan.max_duplicates));
    }
    for (std::size_t i = 0; i < copies; ++i) {
      Message dup = msg;
      dup.id = next_msg_id_++;
      metrics_.record_link_duplicate();
      for (auto& obs : observers_) obs->on_link_duplicate(dup);
      pending_.push(std::move(dup), deliveries_);
    }
    pending_.push(std::move(msg), deliveries_);
  }

  // Replay is keyed to send *activity* on the link, not to this packet's
  // fate: a dropped fresh packet can still shake loose a stale one.
  if (plan.replay_p > 0.0 && link_rng_.next_bool(plan.replay_p)) {
    const std::deque<Message>* history =
        replay_history_.find(link_key(msg.from, msg.to));
    if (history != nullptr && !history->empty()) {
      // The replayed copy aliases the original payload buffer.
      Message replay =
          (*history)[static_cast<std::size_t>(
              link_rng_.next_below(history->size()))];
      replay.id = next_msg_id_++;
      metrics_.record_link_replay();
      for (auto& obs : observers_) obs->on_link_replay(replay);
      pending_.push(std::move(replay), deliveries_);
    }
  }
}

const std::deque<Message>* Simulation::replay_history_of(ProcessId from,
                                                         ProcessId to) const {
  return replay_history_.find(link_key(from, to));
}

void Simulation::remember_delivered(const Message& msg) {
  if (network_reliable_) return;
  const LinkPlan& plan = cfg_.network.link(msg.from, msg.to);
  if (plan.replay_p <= 0.0 || plan.replay_window == 0) return;
  // The stored copy shares msg's payload buffer, so the history holds
  // O(window) headers per link, not O(window) payload clones.
  auto& history = replay_history_[link_key(msg.from, msg.to)];
  history.push_back(msg);
  while (history.size() > plan.replay_window) history.pop_front();
}

void Simulation::inject(ProcessId from, ProcessId to, Tag tag,
                        SharedBytes payload, std::size_t words) {
  COIN_REQUIRE(from < slots_.size() && to < cfg_.n, "inject: bad ids");
  COIN_REQUIRE(slots_[from]->corrupted,
               "inject: only corrupted processes can be impersonated");
  Message msg;
  msg.id = next_msg_id_++;
  msg.from = from;
  msg.to = to;
  msg.tag = tag;
  msg.payload = std::move(payload);
  msg.words = words;
  msg.causal_depth = slots_[from]->depth + 1;
  msg.send_seq = send_seq_++;
  metrics_.record_send(msg, /*sender_correct=*/false);
  for (auto& obs : observers_) obs->on_send(msg, false);
  if (to == from) {
    slots_[from]->self_queue.push_back(std::move(msg));
  } else {
    pending_.push(std::move(msg), deliveries_);
  }
}

void Simulation::dispatch_to(ProcessId to, const Message& msg) {
  Slot& receiver = *slots_[to];
  if (receiver.corrupted && receiver.crash_like())
    return;  // crashed/down processes receive nothing
  receiver.depth = std::max(receiver.depth, msg.causal_depth);
  receiver.process->on_message(*receiver.context, msg);
  drain_self_queue(to);
}

void Simulation::drain_self_queue(ProcessId id) {
  Slot& slot = *slots_[id];
  while (!slot.self_queue.empty()) {
    if (slot.corrupted && slot.crash_like()) {
      slot.self_queue.clear();  // in-memory queue: lost in the crash
      return;
    }
    Message msg = std::move(slot.self_queue.front());
    slot.self_queue.pop_front();
    slot.depth = std::max(slot.depth, msg.causal_depth);
    slot.process->on_message(*slot.context, msg);
  }
}

// ----------------------------------------------------- telemetry notes --
//
// The §2 measures only count events at correct processes, so Metrics see
// a decision only when the reporter is currently correct; observers see
// everything, with the DecideEvent.correct flag carrying the distinction.

void Simulation::note_decide_from(ProcessId who, Tag scope, int value,
                                  std::uint64_t round) {
  const Slot& slot = *slots_[who];
  if (!slot.corrupted) metrics_.record_decide(round, slot.depth);
  if (observers_.empty()) return;
  DecideEvent ev;
  ev.who = who;
  ev.scope = scope;
  ev.value = value;
  ev.round = round;
  ev.causal_depth = slot.depth;
  ev.correct = !slot.corrupted;
  for (auto& obs : observers_) obs->on_decide(ev);
}

void Simulation::note_round_from(ProcessId who, std::uint64_t round) {
  for (auto& obs : observers_) obs->on_round(who, round);
}

void Simulation::note_dead_letter_from(ProcessId who, ProcessId to, Tag tag,
                                       std::size_t words) {
  metrics_.record_dead_letter(words);
  for (auto& obs : observers_) obs->on_dead_letter(who, to, tag, words);
}

void Simulation::note_verify_batch_from(ProcessId /*who*/, std::size_t shares,
                                        std::size_t rejects,
                                        std::size_t memo_hits) {
  metrics_.record_verify_batch(shares, rejects, memo_hits);
}

void Simulation::note_sig_verify_batch_from(ProcessId /*who*/,
                                            std::size_t sigs,
                                            std::size_t rejects,
                                            std::size_t memo_hits) {
  metrics_.record_sig_verify_batch(sigs, rejects, memo_hits);
}

// ----------------------------------------------------- timers/recovery --

void Simulation::schedule_wakeup_for(ProcessId id, std::uint64_t delay) {
  COIN_REQUIRE(id < slots_.size(), "schedule_wakeup: bad id");
  wakeups_.push(
      {deliveries_ + delay, timer_seq_++, id, slots_[id]->wakeup_epoch});
}

std::optional<std::uint64_t> Simulation::next_timer_due() const {
  std::optional<std::uint64_t> due;
  if (!wakeups_.empty()) due = std::get<0>(wakeups_.top());
  if (!recoveries_.empty()) {
    std::uint64_t r = std::get<0>(recoveries_.top());
    if (!due || r < *due) due = r;
  }
  // Chaos events participate in idle advance: a heal (or churn wave)
  // must fire even when nothing is in flight — otherwise a drained
  // network would strand held messages behind a partition forever.
  if (chaos_) {
    std::optional<std::uint64_t> c = chaos_->next_event_at();
    if (c && (!due || *c < *due)) due = c;
  }
  return due;
}

void Simulation::recover_process(ProcessId id) {
  Slot& slot = *slots_[id];
  // A re-corruption may have replaced the crash-recover plan (e.g. with a
  // permanent crash) while the restart was pending; the stale timer then
  // must not resurrect the process.
  if (slot.fault.mode != FaultPlan::Mode::kCrashRecover) return;
  slot.fault.mode = FaultPlan::Mode::kCorrect;
  slot.recovered = true;
  slot.process->on_recover(*slot.context, slot.stable_storage);
  drain_self_queue(id);
  for (auto& obs : observers_) obs->on_recover(id);
}

void Simulation::fire_due_timers() {
  // Restarts first: a process whose wakeup and restart are both due
  // should come back before (not instead of) seeing the wakeup dropped.
  while (!recoveries_.empty() &&
         std::get<0>(recoveries_.top()) <= deliveries_) {
    ProcessId id = std::get<2>(recoveries_.top());
    recoveries_.pop();
    recover_process(id);
  }
  while (!wakeups_.empty() && std::get<0>(wakeups_.top()) <= deliveries_) {
    TimerEntry e = wakeups_.top();
    wakeups_.pop();
    Slot& slot = *slots_[std::get<2>(e)];
    if (std::get<3>(e) != slot.wakeup_epoch) continue;  // pre-crash timer
    if (slot.corrupted && slot.crash_like()) continue;  // down right now
    slot.process->on_wakeup(*slot.context);
    drain_self_queue(std::get<2>(e));
  }
}

// ------------------------------------------------------------- chaos --

void Simulation::run_chaos_due() {
  if (!chaos_) return;
  while (std::optional<ChaosEvent> ev = chaos_->pop_due(deliveries_)) {
    const ChaosPhase& phase = chaos_->schedule().phases[ev->phase];
    switch (ev->kind) {
      case ChaosEvent::Kind::kPhaseBegin:
        for (auto& obs : observers_)
          obs->on_chaos_phase(ev->phase, phase.kind_name(), true,
                              deliveries_);
        break;
      case ChaosEvent::Kind::kChurnWave:
        churn_wave(ev->phase);
        break;
      case ChaosEvent::Kind::kPhaseEnd:
        if (phase.kind == ChaosPhase::Kind::kPartition)
          release_partition(ev->phase);
        for (auto& obs : observers_)
          obs->on_chaos_phase(ev->phase, phase.kind_name(), false,
                              deliveries_);
        break;
    }
  }
}

void Simulation::churn_wave(std::size_t phase_idx) {
  const ChaosPhase& phase = chaos_->schedule().phases[phase_idx];
  std::vector<ProcessId>& victims = churn_victims_[phase_idx];
  if (victims.empty()) {
    // First wave: claim the highest not-yet-corrupted ids. The runner's
    // static fault mix occupies the very top, so churn lands directly
    // below it; later waves cycle this same set, which re-corruption
    // makes budget-free.
    for (ProcessId id = static_cast<ProcessId>(cfg_.n);
         id > 0 && victims.size() < phase.churn_victims;) {
      --id;
      if (!slots_[id]->corrupted) victims.push_back(id);
    }
  }
  for (ProcessId id : victims) {
    Slot& slot = *slots_[id];
    // Skip victims that are still down (a wave must not extend a crash
    // already in progress) or that the adversary meanwhile repurposed
    // with a non-recovering behaviour — churn must never *heal* a
    // corruption it does not own.
    if (slot.corrupted && slot.fault.mode != FaultPlan::Mode::kCorrect)
      continue;
    // Fresh corruptions respect the budget like adversary requests do.
    if (!slot.corrupted && corrupted_count_ >= cfg_.f) continue;
    metrics_.record_churn_crash();
    corrupt(id, FaultPlan::crash_recover(phase.churn_down));
  }
}

void Simulation::release_partition(std::size_t phase_idx) {
  if (held_.empty()) return;
  std::vector<std::pair<std::size_t, Message>> kept;
  kept.reserve(held_.size());
  std::size_t released = 0;
  for (auto& entry : held_) {
    if (entry.first == phase_idx) {
      // Healed: the message re-enters the pool now, with a fresh enqueue
      // tick — its fairness clock starts at the heal, not at the
      // original send (the partition, not the adversary, delayed it).
      pending_.push(std::move(entry.second), deliveries_);
      ++released;
    } else {
      kept.push_back(std::move(entry));
    }
  }
  held_.swap(kept);
  metrics_.record_partition_release(released);
}

void Simulation::apply_corruptions() {
  for (auto& req : adversary_->corrupt_now(rng_)) {
    if (req.target >= slots_.size()) continue;
    if (slots_[req.target]->corrupted) continue;
    if (corrupted_count_ >= cfg_.f) break;  // budget exhausted: ignore
    corrupt(req.target, std::move(req.plan));
  }
}

void Simulation::start() {
  COIN_REQUIRE(!started_, "start called twice");
  COIN_REQUIRE(slots_.size() == cfg_.n, "start: missing processes");
  started_ = true;
  apply_corruptions();
  run_chaos_due();  // phases starting at tick 0 fire before on_start
  for (auto& slot : slots_) {
    if (slot->corrupted && slot->crash_like()) continue;
    slot->process->on_start(*slot->context);
  }
  for (ProcessId id = 0; id < slots_.size(); ++id) drain_self_queue(id);
}

bool Simulation::step() {
  COIN_REQUIRE(started_, "step before start");
  fire_due_timers();
  run_chaos_due();

  if (pending_.empty()) {
    // Idle network. If a wakeup, restart or chaos event is scheduled,
    // advance "time" straight to it (deliveries are the only clock;
    // nothing else can move it while no message is in flight). Its
    // callback may enqueue new sends — retransmissions typically do —
    // and a heal releases held messages, so this revives runs a pure
    // drop-fault or unhealed partition would otherwise strand.
    auto due = next_timer_due();
    if (!due) return false;
    if (*due >= cfg_.max_deliveries)
      throw ConfigError("Simulation: max_deliveries exceeded (livelock?)");
    deliveries_ = std::max(deliveries_, *due);
    fire_due_timers();
    run_chaos_due();
    return true;
  }

  if (deliveries_ >= cfg_.max_deliveries)
    throw ConfigError("Simulation: max_deliveries exceeded (livelock?)");

  apply_corruptions();

  // Fairness override: the oldest message must go through once bypassed
  // fairness_bound times; otherwise the adversary chooses freely. The
  // cheap tick lower bound screens out the common case — if even the
  // stalest heap entry is too young, the precise (stale-popping) oldest
  // lookup cannot trigger either, so it is skipped entirely.
  std::size_t chosen = static_cast<std::size_t>(-1);
  bool forced_by_fairness = false;
  if (deliveries_ - pending_.oldest_tick_lower_bound() >=
      cfg_.fairness_bound) {
    std::size_t oldest = pending_.oldest_index();
    if (deliveries_ - pending_.enqueue_tick(oldest) >= cfg_.fairness_bound) {
      chosen = oldest;
      forced_by_fairness = true;
    }
  }
  if (chosen == static_cast<std::size_t>(-1)) {
    chosen = adversary_->schedule(pending_, rng_);
    COIN_REQUIRE(chosen < pending_.size(), "adversary chose bad index");
  }

  const std::uint64_t age = deliveries_ - pending_.enqueue_tick(chosen);
  Message msg = pending_.take(chosen);

  if (!observers_.empty()) {
    MessageMeta meta;
    meta.id = msg.id;
    meta.from = msg.from;
    meta.to = msg.to;
    meta.tag = msg.tag;
    meta.words = msg.words;
    meta.send_seq = msg.send_seq;
    meta.age = age;
    for (auto& obs : observers_)
      obs->on_adversary_choice(meta, forced_by_fairness);
  }

  ++deliveries_;
  metrics_.record_delivery(msg, age);
  dispatch_to(msg.to, msg);
  remember_delivered(msg);
  for (auto& obs : observers_) obs->on_deliver(msg);
  adversary_->observe_delivery(msg);
  return true;
}

void Simulation::run() {
  while (step()) {
  }
}

bool Simulation::run_until(const std::function<bool()>& pred) {
  if (pred()) return true;
  while (step()) {
    if (pred()) return true;
  }
  return pred();
}

}  // namespace coincidence::sim
