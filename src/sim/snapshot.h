// Versioned state snapshots for kCrashRecover persistence.
//
// Context::persist / Process::on_recover move raw bytes; this header
// gives protocols a tiny framing convention on top of the existing ser
// layer so a recovering process can reject snapshots written by a
// different protocol (or an older wire version) instead of misparsing
// them — stable storage is just another untrusted decoder input.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/errors.h"
#include "common/ser.h"

namespace coincidence::sim {

struct StateSnapshot {
  /// Frames `state` as a snapshot of kind `kind` (a protocol-chosen
  /// name, e.g. "chaos-counter") at the given schema version.
  static Bytes pack(std::string_view kind, std::uint32_t version,
                    BytesView state) {
    Writer w;
    w.str(kind).u32(version).blob(state);
    return w.take();
  }

  /// Unpacks `blob` into `state` iff it is a well-formed snapshot of the
  /// expected kind and version; returns false (leaving `state` alone)
  /// otherwise. Empty blobs — a process that never persisted — are the
  /// common "no snapshot" case and simply return false.
  static bool unpack(BytesView blob, std::string_view kind,
                     std::uint32_t version, Bytes& state) {
    try {
      Reader r(blob);
      if (r.str() != kind) return false;
      if (r.u32() != version) return false;
      Bytes decoded = r.blob();
      r.done();
      state = std::move(decoded);
      return true;
    } catch (const CodecError&) {
      return false;
    }
  }
};

}  // namespace coincidence::sim
