// Online invariant checking: an Observer that turns every run — chaos
// or not — into a self-auditing safety test.
//
// The checker watches the event stream (decisions, corruptions,
// recoveries, sends, chaos phases) and records a Violation the moment a
// protocol guarantee breaks, labelled with the chaos phase active at
// that moment — the third coordinate of the (seed, config,
// schedule-phase) repro triple the runner prints.
//
// Invariant catalog (docs/CHAOS.md):
//   agreement   — no two correct processes decide differently in the
//                 same agreement scope. Scopes are opt-in: coin
//                 sub-protocols are *weak* coins and may legitimately
//                 disagree, so only the protocol's top-level tag (e.g.
//                 "ba", "mmr") is registered.
//   validity    — with a unanimous-input oracle configured, every
//                 correct decision equals the unanimous input.
//   integrity   — one process never decides two different values in one
//                 scope; because decisions survive crash-recovery only
//                 through the persisted snapshot, this is exactly the
//                 "no decide divergence across recoveries" check.
//   budget      — the corrupted set never exceeds f (fresh corruption
//                 events are counted; re-corruptions are free).
//   heal        — every chaos partition eventually heals: no message is
//                 still held when the run ends (finalize).
//   word-count  — per-message word sanity plus an exact cross-check:
//                 the checker's own correct-word tally must equal
//                 Metrics::correct_words() to the word at finalize.
//
// Observers are passive; the checker never throws mid-run. The harness
// reads violations() (or ok()) after the run and decides how loudly to
// fail.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "sim/observer.h"

namespace coincidence::sim {

class InvariantChecker final : public Observer {
 public:
  struct Config {
    std::size_t n = 0;
    /// Corruption budget the run was configured with.
    std::size_t f = 0;
    /// DecideEvent scopes where agreement/validity/integrity must hold
    /// (exact match on the scope tag). Sub-protocol scopes (weak coins,
    /// approvers) are intentionally not checkable for agreement.
    std::vector<std::string> agreement_scopes;
    /// Validity oracle: with unanimous input v, decisions must equal v.
    std::optional<int> expected_decision;
    /// Word-count sanity bound per message (generous: the largest legal
    /// message is an ok-certificate of 2 + 2W words).
    std::uint64_t max_message_words = 1u << 20;
  };

  struct Violation {
    std::string invariant;  // catalog key: "agreement", "validity", ...
    std::string detail;
    /// Chaos phase active when the violation fired (SIZE_MAX = none).
    std::size_t chaos_phase = static_cast<std::size_t>(-1);
  };

  explicit InvariantChecker(Config cfg);

  void on_send(const Message& msg, bool sender_correct) override;
  void on_decide(const DecideEvent& event) override;
  void on_corrupt(ProcessId target, const FaultPlan& plan) override;
  void on_recover(ProcessId target) override;
  void on_chaos_phase(std::size_t index, const char* kind, bool begin,
                      std::uint64_t at) override;

  /// Run-end checks that need facts only the harness can supply: the
  /// Metrics word total (exact cross-check), the count of messages still
  /// held by unhealed partitions, and the final corrupted count.
  void finalize(std::uint64_t metrics_correct_words,
                std::size_t held_remaining, std::size_t corrupted_count);

  bool ok() const { return violations_.empty(); }
  const std::vector<Violation>& violations() const { return violations_; }

  /// One-line "invariant=... phase=... detail=..." rendering of a
  /// violation, the payload of the runner's repro line.
  static std::string describe(const Violation& v);

 private:
  void violate(std::string invariant, std::string detail);
  bool in_scope(const std::string& scope) const;

  Config cfg_;
  std::vector<Violation> violations_;
  std::size_t fresh_corruptions_ = 0;
  std::size_t current_phase_ = static_cast<std::size_t>(-1);
  std::uint64_t correct_words_tally_ = 0;
  // First correct decision per scope (agreement) and per (scope,
  // process) (integrity / recovery divergence).
  std::map<std::string, int> first_decision_;
  std::map<std::pair<std::string, ProcessId>, int> decided_;
  std::vector<bool> recovered_;
};

}  // namespace coincidence::sim
