// Byzantine fault behaviours applied by the runtime to corrupted
// processes.
//
// Because every protocol value in this system is VRF- or signature-
// validated, a Byzantine process cannot fabricate values that verify; its
// real powers are silence, selective omission, garbage (exercises decoder
// rejection paths), crashing, and — through the adversary — scheduling.
// Protocol-specific equivocation attacks are built as dedicated Process
// subclasses in the tests where they matter.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/message.h"

namespace coincidence::sim {

struct FaultPlan {
  enum class Mode {
    kCorrect,       // follows the protocol (not corrupted)
    kCrash,         // stops sending and receiving at corruption time
    kSilent,        // keeps receiving, sends nothing
    kSelective,     // sends only to the listed targets (omission attack)
    kJunk,          // payloads replaced by random bytes of the same length
    kCrashRecover,  // crashes, then restarts after `recover_after`
                    // deliveries via Process::on_recover(snapshot)
  };

  Mode mode = Mode::kCorrect;

  /// For kSelective: ids that still receive this process's messages.
  std::vector<ProcessId> selective_targets;

  /// For kCrashRecover: global deliveries the process stays down before
  /// the runtime restarts it (its in-memory state is presumed lost; only
  /// what it passed to Context::persist survives).
  std::uint64_t recover_after = 0;

  static FaultPlan correct() { return {}; }
  static FaultPlan crash() { return {Mode::kCrash, {}}; }
  static FaultPlan silent() { return {Mode::kSilent, {}}; }
  static FaultPlan junk() { return {Mode::kJunk, {}}; }
  static FaultPlan selective(std::vector<ProcessId> targets) {
    return {Mode::kSelective, std::move(targets)};
  }
  static FaultPlan crash_recover(std::uint64_t recover_after) {
    FaultPlan p;
    p.mode = Mode::kCrashRecover;
    p.recover_after = recover_after;
    return p;
  }
};

}  // namespace coincidence::sim
