// Chaos orchestration plane: a deterministic, seeded schedule of
// substrate-level hostility executed by the Simulation itself.
//
// A ChaosSchedule is a list of phases on the delivery-event clock (the
// simulator's only notion of time), each one of:
//   partition  — split processes into [0, boundary) vs [boundary, n) and
//                block cross-partition traffic until the phase ends
//                (heals). mode=hold buffers blocked messages and releases
//                them at heal time (the paper's "eventually delivered"
//                asynchrony, stretched to the limit); mode=drop loses
//                them at the link, which only a retransmitting transport
//                (net::ReliableChannel) can survive.
//   churn      — waves of kCrashRecover faults: every `every` deliveries
//                the same <= f victim set crashes for `down` deliveries
//                and restarts through Process::on_recover with its
//                persisted snapshot. Re-corrupting an already-corrupted
//                process is budget-free (sim/simulation.h), so waves
//                cycle the SAME victims without exceeding f.
//   storm      — message bursts: every send is duplicated with
//                probability p into 1..copies extra network copies,
//                modelling congestion-driven amplification.
//
// Phases are data, not callbacks: a schedule round-trips through a
// one-line spec string ("churn@0+4000:victims=2,down=300,every=900;...")
// so any chaos run is reproducible from (seed, config, schedule) alone —
// the triple the invariant checker prints on violation. All storm
// randomness burns a dedicated Rng stream derived from the simulation
// seed (like link faults), so enabling chaos never perturbs the
// adversary's or the processes' random streams.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/message.h"

namespace coincidence::sim {

struct ChaosPhase {
  enum class Kind { kPartition, kChurn, kStorm };
  enum class PartitionMode { kHold, kDrop };

  Kind kind = Kind::kPartition;
  /// Delivery tick the phase begins (the simulator's clock).
  std::uint64_t start = 0;
  /// Ticks the phase stays active; it ends (a partition heals, a storm
  /// quiets, churn waves stop) at start + duration.
  std::uint64_t duration = 0;

  // kPartition: groups are [0, boundary) and [boundary, n).
  ProcessId boundary = 0;
  PartitionMode partition_mode = PartitionMode::kHold;

  // kChurn.
  std::size_t churn_victims = 0;   // processes cycled per wave
  std::uint64_t churn_down = 0;    // deliveries a victim stays down
  std::uint64_t churn_every = 0;   // gap between waves (0 = one wave)

  // kStorm.
  double storm_p = 0.0;            // per-send burst probability
  std::size_t storm_copies = 1;    // max extra copies per burst

  std::uint64_t end() const { return start + duration; }
  const char* kind_name() const;

  static ChaosPhase partition(std::uint64_t start, std::uint64_t duration,
                              ProcessId boundary,
                              PartitionMode mode = PartitionMode::kHold);
  static ChaosPhase churn(std::uint64_t start, std::uint64_t duration,
                          std::size_t victims, std::uint64_t down,
                          std::uint64_t every);
  static ChaosPhase storm(std::uint64_t start, std::uint64_t duration,
                          double p, std::size_t copies);
};

struct ChaosSchedule {
  std::vector<ChaosPhase> phases;

  bool empty() const { return phases.empty(); }

  /// Largest victim count over the churn phases — the corruption-budget
  /// headroom a run must reserve for churn.
  std::size_t max_churn_victims() const;

  /// One-line canonical spec: "kind@start+duration:k=v,...;kind@...".
  /// parse(spec()) reproduces the schedule exactly.
  std::string spec() const;

  /// Parses a spec string; throws ConfigError on malformed input.
  static ChaosSchedule parse(const std::string& spec);

  /// Named presets scaled to n processes: "partition-hold",
  /// "partition-drop", "churn", "storm", "adaptive" (empty schedule — the
  /// hostility comes from the adversary), "combined". Throws ConfigError
  /// for unknown names.
  static ChaosSchedule preset(const std::string& name, std::size_t n);
  static const std::vector<std::string>& preset_names();
};

/// A chaos schedule event the Simulation must act on: a phase beginning
/// or ending, or a churn wave firing inside a churn phase.
struct ChaosEvent {
  enum class Kind { kPhaseBegin, kChurnWave, kPhaseEnd };
  Kind kind = Kind::kPhaseBegin;
  std::size_t phase = 0;  // index into ChaosSchedule::phases
  std::uint64_t at = 0;   // delivery tick the event is due
};

/// Runtime cursor over a schedule: precomputes the full event list at
/// construction (pure function of the schedule — no randomness), hands
/// events to the Simulation in deterministic order, and tracks which
/// partition phases are currently active for the per-send block check.
class ChaosState {
 public:
  explicit ChaosState(ChaosSchedule schedule);

  const ChaosSchedule& schedule() const { return schedule_; }

  /// Pops the next event due at or before `now` (and updates the active-
  /// partition set); nullopt when nothing is due yet.
  std::optional<ChaosEvent> pop_due(std::uint64_t now);

  /// Tick of the next unconsumed event — the idle-advance target when
  /// the network drains mid-schedule (a heal must fire even if nothing
  /// is in flight to deliver).
  std::optional<std::uint64_t> next_event_at() const;

  /// An active partition separates `from` and `to`; `*mode` receives the
  /// blocking phase's mode and `*phase` its index.
  bool blocked(ProcessId from, ProcessId to, ChaosPhase::PartitionMode* mode,
               std::size_t* phase) const;

  bool any_active_partition() const { return !active_partitions_.empty(); }

  /// Index of the storm phase active right now, if any.
  std::optional<std::size_t> active_storm() const;

  /// Latest phase that has begun (for violation/telemetry labeling);
  /// npos before the first phase.
  std::size_t current_phase() const { return current_phase_; }

 private:
  ChaosSchedule schedule_;
  std::vector<ChaosEvent> events_;  // sorted by (at, phase, kind)
  std::size_t cursor_ = 0;
  std::vector<std::size_t> active_partitions_;
  std::vector<std::size_t> active_storms_;
  std::size_t current_phase_ = static_cast<std::size_t>(-1);
};

}  // namespace coincidence::sim
