#include "sim/adversary.h"

#include <algorithm>
#include <cmath>

#include "common/errors.h"
#include "common/ser.h"

namespace coincidence::sim {

namespace detail {

std::size_t pick_avoiding(const PendingPool& pending, Rng& rng,
                          const std::unordered_set<ProcessId>& avoid) {
  if (avoid.empty())
    return static_cast<std::size_t>(rng.next_below(pending.size()));
  // Rejection sampling first (cheap when few senders are starved)…
  for (int attempt = 0; attempt < 32; ++attempt) {
    auto i = static_cast<std::size_t>(rng.next_below(pending.size()));
    if (avoid.count(pending.from(i)) == 0) return i;
  }
  // …then an exact scan.
  std::vector<std::size_t> ok;
  for (std::size_t i = 0; i < pending.size(); ++i)
    if (avoid.count(pending.from(i)) == 0) ok.push_back(i);
  if (ok.empty())
    return static_cast<std::size_t>(rng.next_below(pending.size()));
  return ok[rng.next_below(ok.size())];
}

}  // namespace detail

std::size_t FifoAdversary::schedule(const PendingPool& pending, Rng& /*rng*/) {
  return pending.oldest_index();
}

std::size_t RandomAdversary::schedule(const PendingPool& pending, Rng& rng) {
  return static_cast<std::size_t>(rng.next_below(pending.size()));
}

DelaySendersAdversary::DelaySendersAdversary(std::vector<ProcessId> victims,
                                             bool ordered)
    : victims_(victims.begin(), victims.end()), ordered_(ordered) {}

std::size_t DelaySendersAdversary::schedule(const PendingPool& pending,
                                            Rng& rng) {
  if (!ordered_) return detail::pick_avoiding(pending, rng, victims_);
  // Ordered mode: any non-victim first; otherwise the victim with the
  // smallest id (globally consistent release order).
  for (int attempt = 0; attempt < 32; ++attempt) {
    auto i = static_cast<std::size_t>(rng.next_below(pending.size()));
    if (victims_.count(pending.from(i)) == 0) return i;
  }
  std::size_t best = pending.size();
  for (std::size_t i = 0; i < pending.size(); ++i) {
    if (victims_.count(pending.from(i)) == 0) return i;
    if (best == pending.size() || pending.from(i) < pending.from(best))
      best = i;
  }
  return best;
}

SplitAdversary::SplitAdversary(ProcessId boundary) : boundary_(boundary) {}

std::size_t SplitAdversary::schedule(const PendingPool& pending, Rng& rng) {
  for (int attempt = 0; attempt < 32; ++attempt) {
    auto i = static_cast<std::size_t>(rng.next_below(pending.size()));
    bool cross = (pending.from(i) < boundary_) != (pending.to(i) < boundary_);
    if (!cross) return i;
  }
  std::vector<std::size_t> intra;
  for (std::size_t i = 0; i < pending.size(); ++i) {
    bool cross = (pending.from(i) < boundary_) != (pending.to(i) < boundary_);
    if (!cross) intra.push_back(i);
  }
  if (intra.empty())
    return static_cast<std::size_t>(rng.next_below(pending.size()));
  return intra[rng.next_below(intra.size())];
}

HeavyTailAdversary::HeavyTailAdversary(double alpha) : alpha_(alpha) {
  COIN_REQUIRE(alpha > 0.0, "HeavyTailAdversary: alpha must be positive");
}

std::size_t HeavyTailAdversary::schedule(const PendingPool& pending,
                                         Rng& rng) {
  // Lazily assign each message a Pareto(alpha) weight on first sight and
  // always deliver the lightest. Weights persist, so a heavy message
  // stays delayed until the fairness bound rescues it.
  std::size_t best = 0;
  double best_w = 0.0;
  for (std::size_t i = 0; i < pending.size(); ++i) {
    auto [it, inserted] = weight_.try_emplace(pending.send_seq(i), 0.0);
    if (inserted) {
      double u = rng.next_double();
      if (u < 1e-12) u = 1e-12;
      it->second = std::pow(u, -1.0 / alpha_);  // Pareto with x_m = 1
    }
    if (i == 0 || it->second < best_w) {
      best = i;
      best_w = it->second;
    }
  }
  return best;
}

StaticCorruptionAdversary::StaticCorruptionAdversary(
    std::vector<ProcessId> targets, FaultPlan plan)
    : targets_(std::move(targets)), plan_(std::move(plan)) {}

std::size_t StaticCorruptionAdversary::schedule(const PendingPool& pending,
                                                Rng& rng) {
  return static_cast<std::size_t>(rng.next_below(pending.size()));
}

std::vector<CorruptionRequest> StaticCorruptionAdversary::corrupt_now(
    Rng& /*rng*/) {
  if (fired_) return {};
  fired_ = true;
  std::vector<CorruptionRequest> out;
  out.reserve(targets_.size());
  for (ProcessId t : targets_) out.push_back({t, plan_});
  return out;
}

CommitteeHunterAdversary::CommitteeHunterAdversary(std::string tag_substring,
                                                   FaultPlan plan)
    : tag_substring_(std::move(tag_substring)), plan_(std::move(plan)) {}

std::size_t CommitteeHunterAdversary::schedule(const PendingPool& pending,
                                               Rng& rng) {
  return static_cast<std::size_t>(rng.next_below(pending.size()));
}

void CommitteeHunterAdversary::observe_delivery(const Message& msg) {
  if (!tag_substring_.empty() &&
      msg.tag.str().find(tag_substring_) == std::string::npos)
    return;
  if (requested_.insert(msg.from).second) queue_.push_back(msg.from);
}

std::vector<CorruptionRequest> CommitteeHunterAdversary::corrupt_now(
    Rng& /*rng*/) {
  std::vector<CorruptionRequest> out;
  out.reserve(queue_.size());
  for (ProcessId p : queue_) out.push_back({p, plan_});
  queue_.clear();
  return out;
}

AdaptiveCorruptionAdversary::AdaptiveCorruptionAdversary(Config cfg)
    : cfg_(std::move(cfg)) {}

std::size_t AdaptiveCorruptionAdversary::schedule(const PendingPool& pending,
                                                  Rng& rng) {
  if (!cfg_.starve || requested_.empty())
    return static_cast<std::size_t>(rng.next_below(pending.size()));
  // Metadata-only starvation: hold back everything a revealed victim
  // still has in flight (tags/senders are the adversary's legal view).
  return detail::pick_avoiding(pending, rng, requested_);
}

void AdaptiveCorruptionAdversary::observe_delivery(const Message& msg) {
  // Delivered content is causally public — the paper's rule. A tag
  // carrying a role marker identifies its sender as a committee member
  // (coin-share sender, relay, ok-elector). By that moment the message
  // is already delivered, so corruption cannot retract it — exactly the
  // attack process replaceability is designed to absorb.
  if (requested_.size() >= cfg_.max_victims) return;
  if (requested_.count(msg.from) != 0) return;
  const std::string& tag = msg.tag.str();
  for (const std::string& marker : cfg_.role_markers) {
    if (tag.find(marker) != std::string::npos) {
      requested_.insert(msg.from);
      queue_.push_back(msg.from);
      return;
    }
  }
}

std::vector<CorruptionRequest> AdaptiveCorruptionAdversary::corrupt_now(
    Rng& /*rng*/) {
  std::vector<CorruptionRequest> out;
  out.reserve(queue_.size());
  for (ProcessId p : queue_) out.push_back({p, cfg_.plan});
  queue_.clear();
  return out;
}

CoinBiasAdversary::CoinBiasAdversary(std::string tag_substring,
                                     int desired_bit)
    : tag_substring_(std::move(tag_substring)), desired_bit_(desired_bit) {}

std::size_t CoinBiasAdversary::schedule(const PendingPool& pending,
                                        Rng& rng) {
  if (starved_.empty())
    return static_cast<std::size_t>(rng.next_below(pending.size()));
  // Prefer any non-starved message…
  for (int attempt = 0; attempt < 32; ++attempt) {
    auto i = static_cast<std::size_t>(rng.next_below(pending.size()));
    if (starved_.count(pending.from(i)) == 0) return i;
  }
  std::size_t best = pending.size();
  for (std::size_t i = 0; i < pending.size(); ++i) {
    if (starved_.count(pending.from(i)) == 0) return i;
    if (best == pending.size()) {
      best = i;
      continue;
    }
    // …otherwise release the starved sender with the LARGEST value.
    auto vi = value_of_.find(pending.from(i));
    auto vb = value_of_.find(pending.from(best));
    std::uint64_t a = vi == value_of_.end() ? 0 : vi->second;
    std::uint64_t b = vb == value_of_.end() ? 0 : vb->second;
    if (a > b) best = i;
  }
  return best;
}

void CoinBiasAdversary::observe_pending_content(const Message& msg) {
  if (msg.tag.str().find(tag_substring_) == std::string::npos) return;
  // Coin messages serialize the VRF value as their first blob; the coin
  // outputs the LSB of the minimum value, i.e. the value's last byte & 1.
  try {
    Reader r(msg.payload);
    Bytes value = r.blob();
    if (value.size() < 8) return;
    int lsb = value.back() & 1;
    value_of_.emplace(msg.from, u64_of_bytes(value));
    if (lsb != desired_bit_) starved_.insert(msg.from);
  } catch (const CodecError&) {
    // Not a coin-shaped payload; skip.
  }
}

std::vector<CorruptionRequest> CoinBiasAdversary::corrupt_now(Rng& /*rng*/) {
  // The runtime grants requests in order until the budget runs out, so
  // ask for the *smallest-value* wrong-bit holders first: those are the
  // senders whose relayed minima would leak the hidden small values.
  std::vector<std::pair<std::uint64_t, ProcessId>> ranked;
  for (ProcessId p : starved_) {
    if (requested_.count(p)) continue;
    auto it = value_of_.find(p);
    ranked.push_back({it == value_of_.end() ? ~0ULL : it->second, p});
  }
  std::sort(ranked.begin(), ranked.end());
  std::vector<CorruptionRequest> out;
  for (const auto& [value, p] : ranked) {
    requested_.insert(p);
    out.push_back({p, FaultPlan::silent()});
  }
  return out;
}

}  // namespace coincidence::sim
