// Messages on the simulated asynchronous network.
//
// Every message carries (a) routing metadata, (b) an opaque payload the
// protocols encode/decode, (c) the word count charged to the sender per
// the paper's accounting (§2: a word holds a signature, a VRF output, or
// a finite-domain value), and (d) causal bookkeeping used both to measure
// the paper's "duration" (longest causal message chain) and to enforce
// the delayed-adaptive adversary's visibility rule.
//
// Zero-copy substrate (ISSUE 3): the tag is an interned TagId and the
// payload a refcounted immutable buffer, so copying a Message — fan-out,
// duplication, replay history — allocates nothing and shares the one
// encoded buffer. See sim/tag_table.h and common/shared_bytes.h.
#pragma once

#include <cstdint>

#include "common/shared_bytes.h"
#include "sim/tag_table.h"

namespace coincidence::sim {

using ProcessId = std::uint32_t;

struct Message {
  std::uint64_t id = 0;        // unique per simulation, assigned on send
  ProcessId from = 0;
  ProcessId to = 0;
  Tag tag;                     // routing key, e.g. "ba/3/coin/first"
  SharedBytes payload;
  std::size_t words = 0;       // paper word count of this message

  // Causality: depth of the send event = 1 + max depth the sender had
  // observed when it sent. The paper's duration metric is the maximum
  // depth over all decision events.
  std::uint64_t causal_depth = 0;
  std::uint64_t send_seq = 0;  // global send order (not visible to protocols)

  /// Set by Context::send_retransmission: this send repeats an earlier
  /// payload to repair link loss. Metrics attribute its words to the
  /// retransmission-overhead bucket instead of the paper's §2 word
  /// complexity (which assumes reliable links).
  bool retransmit = false;
};

/// What a *legal* (delayed-adaptive) adversary is allowed to see about an
/// in-flight message when scheduling: everything except the content. The
/// paper's adversary may only use a correct message's content for
/// scheduling decisions about messages it causally precedes; for pending
/// (undelivered) concurrent messages that reduces to content-blindness.
struct MessageMeta {
  std::uint64_t id = 0;
  ProcessId from = 0;
  ProcessId to = 0;
  Tag tag;
  std::size_t words = 0;
  std::uint64_t send_seq = 0;
  std::uint64_t age = 0;  // deliveries elapsed since this was enqueued
};

}  // namespace coincidence::sim
