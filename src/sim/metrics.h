// Word/message/time accounting, defined exactly as in §2 of the paper:
//   word complexity = total words sent by correct processes,
//   duration        = longest causally-related message chain.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/message.h"

namespace coincidence::sim {

class Metrics {
 public:
  /// Records a sent message. `sender_correct` selects whether it counts
  /// toward the paper's word complexity (only correct senders do).
  /// Retransmissions (msg.retransmit) are attributed to the separate
  /// retransmission-overhead bucket, never to correct_words — the §2
  /// measure assumes reliable links, so repair traffic must not skew it.
  void record_send(const Message& msg, bool sender_correct);

  void record_delivery() { ++deliveries_; }

  /// Folds a decision event's causal depth into the duration metric.
  void record_decision_depth(std::uint64_t depth);

  // Lossy-link events (sim/link.h). Duplicates/replays charge no words
  // anywhere: the network, not a process, created the copy.
  void record_link_drop(const Message& msg);
  void record_link_duplicate() { ++link_duplicates_; }
  void record_link_replay() { ++link_replays_; }

  /// Words sent by correct processes (the paper's complexity measure).
  std::uint64_t correct_words() const { return correct_words_; }
  /// Words sent by everyone, Byzantine included.
  std::uint64_t total_words() const { return total_words_; }
  std::uint64_t messages_sent() const { return messages_sent_; }
  std::uint64_t deliveries() const { return deliveries_; }
  /// Max causal depth over recorded decision events (paper "duration").
  std::uint64_t duration() const { return max_decision_depth_; }

  // Link-fault accounting.
  std::uint64_t link_drops() const { return link_drops_; }
  std::uint64_t link_dropped_words() const { return link_dropped_words_; }
  std::uint64_t link_duplicates() const { return link_duplicates_; }
  std::uint64_t link_replays() const { return link_replays_; }
  /// Retransmissions by correct processes, reported separately from
  /// correct_words (the §2 measure stays comparable across profiles).
  std::uint64_t retransmits() const { return retransmits_; }
  std::uint64_t retransmit_words() const { return retransmit_words_; }

  /// Correct-sender words bucketed by the final tag component (the
  /// message kind: init/echo/ok/first/...) — lets the benches split cost
  /// per protocol phase. The hot path accumulates into a flat vector
  /// indexed by TagId; this view resolves and buckets the strings on
  /// demand, so it is identical across runs whatever order tags were
  /// interned in.
  std::map<std::string, std::uint64_t> words_by_tag() const;

  void reset();

 private:
  std::uint64_t correct_words_ = 0;
  std::uint64_t total_words_ = 0;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t deliveries_ = 0;
  std::uint64_t max_decision_depth_ = 0;
  std::uint64_t link_drops_ = 0;
  std::uint64_t link_dropped_words_ = 0;
  std::uint64_t link_duplicates_ = 0;
  std::uint64_t link_replays_ = 0;
  std::uint64_t retransmits_ = 0;
  std::uint64_t retransmit_words_ = 0;
  // Correct-sender words per full tag, indexed by TagId (grown lazily).
  std::vector<std::uint64_t> words_by_tag_id_;
};

}  // namespace coincidence::sim
