// Word/message/time accounting, defined exactly as in §2 of the paper:
//   word complexity = total words sent by correct processes,
//   duration        = longest causally-related message chain.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "sim/message.h"

namespace coincidence::sim {

class Metrics {
 public:
  /// Records a sent message. `sender_correct` selects whether it counts
  /// toward the paper's word complexity (only correct senders do).
  void record_send(const Message& msg, bool sender_correct);

  void record_delivery() { ++deliveries_; }

  /// Folds a decision event's causal depth into the duration metric.
  void record_decision_depth(std::uint64_t depth);

  /// Words sent by correct processes (the paper's complexity measure).
  std::uint64_t correct_words() const { return correct_words_; }
  /// Words sent by everyone, Byzantine included.
  std::uint64_t total_words() const { return total_words_; }
  std::uint64_t messages_sent() const { return messages_sent_; }
  std::uint64_t deliveries() const { return deliveries_; }
  /// Max causal depth over recorded decision events (paper "duration").
  std::uint64_t duration() const { return max_decision_depth_; }

  /// Correct-sender words bucketed by the final tag component (the
  /// message kind: init/echo/ok/first/...) — lets the benches split cost
  /// per protocol phase.
  const std::map<std::string, std::uint64_t>& words_by_tag() const {
    return words_by_tag_;
  }

  void reset();

 private:
  std::uint64_t correct_words_ = 0;
  std::uint64_t total_words_ = 0;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t deliveries_ = 0;
  std::uint64_t max_decision_depth_ = 0;
  std::map<std::string, std::uint64_t> words_by_tag_;
};

}  // namespace coincidence::sim
