// Word/message/time accounting, defined exactly as in §2 of the paper:
//   word complexity = total words sent by correct processes,
//   duration        = longest causally-related message chain.
//
// Telemetry plane (ISSUE 4): beside the flat run-level totals, Metrics
// can keep per-tag log-bucketed histograms of words, causal depth and
// delivery latency (in delivery-events), plus a rounds-to-decide
// histogram fed by Context::note_decide. Detail recording is off by
// default and must be switched on with enable_detail() — the hot path
// then costs three histogram adds per event; with detail off the record
// paths are byte-for-byte the pre-telemetry work, so benches that run
// without observers pay nothing.
//
// Derived views bucket the per-TagId rows by *phase* (the tag with every
// numeric component wildcarded: "ba/3/coin/first" -> "ba/*/coin/first")
// and by *round* (the first numeric component). Views resolve TagIds to
// strings and fold into string-keyed maps, so they are identical across
// runs whatever order tags were interned in.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/log_hist.h"
#include "common/stats.h"
#include "sim/message.h"

namespace coincidence::sim {

/// Derives the phase key of a tag: every '/'-separated all-numeric
/// component replaced by '*'. Exposed for tests and report tooling.
std::string phase_of_tag(const std::string& tag);

/// First all-numeric '/'-separated component of a tag, if any — the
/// round encoded by every protocol's "<prefix>/<round>/<step>" grammar.
std::optional<std::uint64_t> round_of_tag(const std::string& tag);

class Metrics {
 public:
  /// Per-tag telemetry row (detail mode only). Latency is measured in
  /// delivery-events between enqueue and delivery; depth is the
  /// delivered message's causal depth.
  struct TagDetail {
    std::uint64_t messages = 0;
    std::uint64_t correct_words = 0;
    LogHistogram words;
    LogHistogram depth;
    LogHistogram latency;
  };

  /// Phase-level rollup returned by by_phase().
  struct PhaseDetail {
    std::uint64_t messages = 0;
    std::uint64_t correct_words = 0;
    LogHistogram words;
    LogHistogram depth;
    LogHistogram latency;
  };

  /// Records a sent message. `sender_correct` selects whether it counts
  /// toward the paper's word complexity (only correct senders do).
  /// Retransmissions (msg.retransmit) are attributed to the separate
  /// retransmission-overhead bucket, never to correct_words — the §2
  /// measure assumes reliable links, so repair traffic must not skew it.
  void record_send(const Message& msg, bool sender_correct);

  void record_delivery() { ++deliveries_; }

  /// Delivery with telemetry: `latency` is delivery-events spent pending.
  /// Identical to record_delivery() when detail is off.
  void record_delivery(const Message& msg, std::uint64_t latency);

  /// Folds a decision event's causal depth into the duration metric.
  void record_decision_depth(std::uint64_t depth);

  /// A protocol decision point fired (Context::note_decide): folds the
  /// causal depth into duration and the round into the rounds-to-decide
  /// histogram. Always on — decisions are rare.
  void record_decide(std::uint64_t round, std::uint64_t depth);

  // Lossy-link events (sim/link.h). Duplicates/replays charge no words
  // anywhere: the network, not a process, created the copy.
  void record_link_drop(const Message& msg);
  void record_link_duplicate() { ++link_duplicates_; }
  void record_link_replay() { ++link_replays_; }

  /// A transport abandoned a frame after exhausting retransmissions
  /// (Context::note_dead_letter). Always on — dead letters must be
  /// accounted, never invisible.
  void record_dead_letter(std::size_t words) {
    ++dead_letters_;
    dead_letter_words_ += words;
  }

  // Chaos orchestration events (sim/chaos.h). Always on — chaos runs
  // exist to be audited, and the counters are the audit trail.
  void record_partition_hold(const Message& msg) {
    ++partition_held_;
    partition_held_words_ += msg.words;
  }
  void record_partition_drop(const Message& msg) {
    ++partition_dropped_;
    partition_dropped_words_ += msg.words;
  }
  void record_partition_release(std::size_t count) {
    partition_released_ += count;
  }
  void record_storm_copy() { ++storm_copies_; }
  void record_churn_crash() { ++churn_crashes_; }

  /// A deferred-verification batch flushed (Context::note_verify_batch).
  /// Always on — rejected shares are discarded protocol input and must
  /// be accounted, never invisible.
  void record_verify_batch(std::size_t shares, std::size_t rejects,
                           std::size_t memo_hits) {
    ++verify_flushes_;
    verify_shares_ += shares;
    verify_rejects_ += rejects;
    verify_memo_hits_ += memo_hits;
  }

  /// A deferred signature batch flushed (Context::note_sig_verify_batch;
  /// the approver's ok-proof sweep). Same always-on contract.
  void record_sig_verify_batch(std::size_t sigs, std::size_t rejects,
                               std::size_t memo_hits) {
    ++sig_verify_flushes_;
    sig_verify_sigs_ += sigs;
    sig_verify_rejects_ += rejects;
    sig_verify_memo_hits_ += memo_hits;
  }

  /// An erasure-coding pass produced `fragments` coded fragments
  /// (Context::note_rbc_encode; fires for source encodes and for the
  /// deliver-time re-encode consistency check). Always on — coding work
  /// is part of the dissemination bill.
  void record_rbc_encode(std::size_t fragments) {
    ++rbc_encodes_;
    rbc_fragments_encoded_ += fragments;
  }

  /// A decode attempt from `fragments` proof-valid fragments
  /// (Context::note_rbc_decode). Failures mark an inconsistently-
  /// dispersed (poisoned) broadcast — accounted, never invisible.
  void record_rbc_decode(bool ok, std::size_t fragments) {
    ++rbc_decodes_;
    rbc_fragments_decoded_ += fragments;
    if (!ok) ++rbc_decode_failures_;
  }

  /// Switches on per-tag histogram recording (words/depth/latency).
  void enable_detail() { detail_ = true; }
  bool detail_enabled() const { return detail_; }

  /// Words sent by correct processes (the paper's complexity measure).
  std::uint64_t correct_words() const { return correct_words_; }
  /// Words sent by everyone, Byzantine included.
  std::uint64_t total_words() const { return total_words_; }
  std::uint64_t messages_sent() const { return messages_sent_; }
  std::uint64_t deliveries() const { return deliveries_; }
  /// Max causal depth over recorded decision events (paper "duration").
  std::uint64_t duration() const { return max_decision_depth_; }

  // Link-fault accounting.
  std::uint64_t link_drops() const { return link_drops_; }
  std::uint64_t link_dropped_words() const { return link_dropped_words_; }
  std::uint64_t link_duplicates() const { return link_duplicates_; }
  std::uint64_t link_replays() const { return link_replays_; }
  /// Retransmissions by correct processes, reported separately from
  /// correct_words (the §2 measure stays comparable across profiles).
  std::uint64_t retransmits() const { return retransmits_; }
  std::uint64_t retransmit_words() const { return retransmit_words_; }
  // Dead-letter accounting (frames a transport gave up on).
  std::uint64_t dead_letters() const { return dead_letters_; }
  std::uint64_t dead_letter_words() const { return dead_letter_words_; }
  // Chaos-partition accounting: held messages are buffered cross-
  // partition traffic awaiting the heal; dropped ones are gone (drop
  // mode); released counts what the heal pushed back into the pool.
  // held == released at quiescence is the "partitions eventually heal"
  // invariant's metric side.
  std::uint64_t partition_held() const { return partition_held_; }
  std::uint64_t partition_held_words() const { return partition_held_words_; }
  std::uint64_t partition_dropped() const { return partition_dropped_; }
  std::uint64_t partition_dropped_words() const {
    return partition_dropped_words_;
  }
  std::uint64_t partition_released() const { return partition_released_; }
  std::uint64_t storm_copies() const { return storm_copies_; }
  std::uint64_t churn_crashes() const { return churn_crashes_; }
  // Deferred-verification accounting (coin/verify_queue.h).
  std::uint64_t verify_flushes() const { return verify_flushes_; }
  std::uint64_t verify_shares() const { return verify_shares_; }
  std::uint64_t verify_rejects() const { return verify_rejects_; }
  std::uint64_t verify_memo_hits() const { return verify_memo_hits_; }
  // Deferred signature-verification accounting (approver ok proofs).
  std::uint64_t sig_verify_flushes() const { return sig_verify_flushes_; }
  std::uint64_t sig_verify_sigs() const { return sig_verify_sigs_; }
  std::uint64_t sig_verify_rejects() const { return sig_verify_rejects_; }
  std::uint64_t sig_verify_memo_hits() const { return sig_verify_memo_hits_; }
  // Erasure-coded dissemination accounting (ba/rbc_ec.h).
  std::uint64_t rbc_encodes() const { return rbc_encodes_; }
  std::uint64_t rbc_fragments_encoded() const { return rbc_fragments_encoded_; }
  std::uint64_t rbc_decodes() const { return rbc_decodes_; }
  std::uint64_t rbc_fragments_decoded() const { return rbc_fragments_decoded_; }
  std::uint64_t rbc_decode_failures() const { return rbc_decode_failures_; }

  /// Rounds-to-decide histogram over note_decide events from correct
  /// processes (one entry per decision point, sub-protocols included).
  const Histogram& decide_rounds() const { return decide_rounds_; }

  /// Correct-sender words bucketed by the final tag component (the
  /// message kind: init/echo/ok/first/...) — lets the benches split cost
  /// per protocol phase. The hot path accumulates into a flat vector
  /// indexed by TagId; this view resolves and buckets the strings on
  /// demand, so it is identical across runs whatever order tags were
  /// interned in.
  std::map<std::string, std::uint64_t> words_by_tag() const;

  /// Correct-sender words per phase key (numeric components wildcarded).
  /// Partitions correct_words exactly: summing the values reproduces
  /// correct_words() to the word.
  std::map<std::string, std::uint64_t> words_by_phase() const;

  /// Correct-sender words per protocol round (first numeric component);
  /// tags without a round component land under key UINT64_MAX.
  std::map<std::uint64_t, std::uint64_t> words_by_round() const;

  /// Full per-phase telemetry (detail mode): histograms merged across
  /// the tags sharing a phase key. Empty when detail is off.
  std::map<std::string, PhaseDetail> by_phase() const;

  /// Per-full-tag telemetry rows, string-keyed (detail mode).
  std::map<std::string, TagDetail> by_tag() const;

  /// Canonical JSON export of everything above. Deterministic: totals,
  /// then phases/rounds in string/numeric key order.
  void to_json(std::ostream& os) const;

  /// Prometheus text exposition (counters + histogram series), suitable
  /// for a node_exporter textfile collector. Deterministic.
  void to_prometheus(std::ostream& os) const;

  void reset();

 private:
  std::uint64_t correct_words_ = 0;
  std::uint64_t total_words_ = 0;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t deliveries_ = 0;
  std::uint64_t max_decision_depth_ = 0;
  std::uint64_t link_drops_ = 0;
  std::uint64_t link_dropped_words_ = 0;
  std::uint64_t link_duplicates_ = 0;
  std::uint64_t link_replays_ = 0;
  std::uint64_t retransmits_ = 0;
  std::uint64_t retransmit_words_ = 0;
  std::uint64_t dead_letters_ = 0;
  std::uint64_t dead_letter_words_ = 0;
  std::uint64_t verify_flushes_ = 0;
  std::uint64_t verify_shares_ = 0;
  std::uint64_t verify_rejects_ = 0;
  std::uint64_t verify_memo_hits_ = 0;
  std::uint64_t sig_verify_flushes_ = 0;
  std::uint64_t sig_verify_sigs_ = 0;
  std::uint64_t sig_verify_rejects_ = 0;
  std::uint64_t sig_verify_memo_hits_ = 0;
  std::uint64_t rbc_encodes_ = 0;
  std::uint64_t rbc_fragments_encoded_ = 0;
  std::uint64_t rbc_decodes_ = 0;
  std::uint64_t rbc_fragments_decoded_ = 0;
  std::uint64_t rbc_decode_failures_ = 0;
  std::uint64_t partition_held_ = 0;
  std::uint64_t partition_held_words_ = 0;
  std::uint64_t partition_dropped_ = 0;
  std::uint64_t partition_dropped_words_ = 0;
  std::uint64_t partition_released_ = 0;
  std::uint64_t storm_copies_ = 0;
  std::uint64_t churn_crashes_ = 0;
  // Correct-sender words per full tag, indexed by TagId (grown lazily).
  std::vector<std::uint64_t> words_by_tag_id_;

  bool detail_ = false;
  // Detail rows indexed by TagId (grown lazily; detail mode only).
  std::vector<TagDetail> detail_by_tag_id_;
  Histogram decide_rounds_;

  TagDetail& detail_row(TagId id);
};

}  // namespace coincidence::sim
