#include "sim/metrics.h"

#include <algorithm>
#include <ostream>

namespace coincidence::sim {

namespace {

bool all_digits(const std::string& tag, std::size_t begin, std::size_t end) {
  if (begin >= end) return false;
  for (std::size_t i = begin; i < end; ++i)
    if (tag[i] < '0' || tag[i] > '9') return false;
  return true;
}

/// Minimal JSON string escaping — tags are short slash-separated tokens,
/// but a Byzantine-crafted tag must still produce valid JSON.
void json_escape(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          os << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

/// Prometheus label values share the JSON escaping rules for '\' , '"'
/// and '\n' — reuse the minimal escaper without the surrounding quotes.
std::string prom_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\' || c == '"') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string phase_of_tag(const std::string& tag) {
  std::string out;
  out.reserve(tag.size());
  std::size_t begin = 0;
  for (;;) {
    std::size_t slash = tag.find('/', begin);
    std::size_t end = slash == std::string::npos ? tag.size() : slash;
    if (all_digits(tag, begin, end)) {
      out.push_back('*');
    } else {
      out.append(tag, begin, end - begin);
    }
    if (slash == std::string::npos) break;
    out.push_back('/');
    begin = slash + 1;
  }
  return out;
}

std::optional<std::uint64_t> round_of_tag(const std::string& tag) {
  std::size_t begin = 0;
  for (;;) {
    std::size_t slash = tag.find('/', begin);
    std::size_t end = slash == std::string::npos ? tag.size() : slash;
    if (all_digits(tag, begin, end)) {
      std::uint64_t r = 0;
      for (std::size_t i = begin; i < end; ++i)
        r = r * 10 + static_cast<std::uint64_t>(tag[i] - '0');
      return r;
    }
    if (slash == std::string::npos) return std::nullopt;
    begin = slash + 1;
  }
}

Metrics::TagDetail& Metrics::detail_row(TagId id) {
  if (id >= detail_by_tag_id_.size()) detail_by_tag_id_.resize(id + 1);
  return detail_by_tag_id_[id];
}

void Metrics::record_send(const Message& msg, bool sender_correct) {
  ++messages_sent_;
  total_words_ += msg.words;
  if (!sender_correct) return;
  if (msg.retransmit) {
    // Repair traffic: real wire cost, but not part of the §2 measure.
    ++retransmits_;
    retransmit_words_ += msg.words;
    return;
  }
  correct_words_ += msg.words;
  const TagId id = msg.tag.id();
  if (id >= words_by_tag_id_.size()) words_by_tag_id_.resize(id + 1, 0);
  words_by_tag_id_[id] += msg.words;
  if (detail_) {
    TagDetail& row = detail_row(id);
    ++row.messages;
    row.correct_words += msg.words;
    row.words.add(msg.words);
  }
}

void Metrics::record_delivery(const Message& msg, std::uint64_t latency) {
  ++deliveries_;
  if (!detail_) return;
  TagDetail& row = detail_row(msg.tag.id());
  row.depth.add(msg.causal_depth);
  row.latency.add(latency);
}

std::map<std::string, std::uint64_t> Metrics::words_by_tag() const {
  // Bucket by the final tag component — the message *kind* (init, echo,
  // ok, first, second, bval, ...) — so harnesses can split cost per
  // protocol phase regardless of instance/round prefixes. Done at view
  // time: the string-keyed map makes the result independent of TagId
  // assignment order.
  std::map<std::string, std::uint64_t> view;
  for (TagId id = 0; id < words_by_tag_id_.size(); ++id) {
    if (words_by_tag_id_[id] == 0) continue;
    const std::string& tag = TagTable::instance().str(id);
    auto slash = tag.rfind('/');
    std::string bucket =
        slash == std::string::npos ? tag : tag.substr(slash + 1);
    view[bucket] += words_by_tag_id_[id];
  }
  return view;
}

std::map<std::string, std::uint64_t> Metrics::words_by_phase() const {
  std::map<std::string, std::uint64_t> view;
  for (TagId id = 0; id < words_by_tag_id_.size(); ++id) {
    if (words_by_tag_id_[id] == 0) continue;
    view[phase_of_tag(TagTable::instance().str(id))] += words_by_tag_id_[id];
  }
  return view;
}

std::map<std::uint64_t, std::uint64_t> Metrics::words_by_round() const {
  std::map<std::uint64_t, std::uint64_t> view;
  for (TagId id = 0; id < words_by_tag_id_.size(); ++id) {
    if (words_by_tag_id_[id] == 0) continue;
    auto round = round_of_tag(TagTable::instance().str(id));
    view[round.value_or(UINT64_MAX)] += words_by_tag_id_[id];
  }
  return view;
}

std::map<std::string, Metrics::PhaseDetail> Metrics::by_phase() const {
  std::map<std::string, PhaseDetail> view;
  for (TagId id = 0; id < detail_by_tag_id_.size(); ++id) {
    const TagDetail& row = detail_by_tag_id_[id];
    if (row.messages == 0 && row.depth.empty()) continue;
    PhaseDetail& p = view[phase_of_tag(TagTable::instance().str(id))];
    p.messages += row.messages;
    p.correct_words += row.correct_words;
    p.words.merge(row.words);
    p.depth.merge(row.depth);
    p.latency.merge(row.latency);
  }
  return view;
}

std::map<std::string, Metrics::TagDetail> Metrics::by_tag() const {
  std::map<std::string, TagDetail> view;
  for (TagId id = 0; id < detail_by_tag_id_.size(); ++id) {
    const TagDetail& row = detail_by_tag_id_[id];
    if (row.messages == 0 && row.depth.empty()) continue;
    view[TagTable::instance().str(id)] = row;
  }
  return view;
}

void Metrics::record_link_drop(const Message& msg) {
  ++link_drops_;
  link_dropped_words_ += msg.words;
}

void Metrics::record_decision_depth(std::uint64_t depth) {
  max_decision_depth_ = std::max(max_decision_depth_, depth);
}

void Metrics::record_decide(std::uint64_t round, std::uint64_t depth) {
  record_decision_depth(depth);
  decide_rounds_.add(round);
}

void Metrics::to_json(std::ostream& os) const {
  os << "{\"totals\":{"
     << "\"correct_words\":" << correct_words_
     << ",\"total_words\":" << total_words_
     << ",\"messages_sent\":" << messages_sent_
     << ",\"deliveries\":" << deliveries_
     << ",\"duration\":" << max_decision_depth_
     << ",\"link_drops\":" << link_drops_
     << ",\"link_dropped_words\":" << link_dropped_words_
     << ",\"link_duplicates\":" << link_duplicates_
     << ",\"link_replays\":" << link_replays_
     << ",\"retransmits\":" << retransmits_
     << ",\"retransmit_words\":" << retransmit_words_
     << ",\"dead_letters\":" << dead_letters_
     << ",\"dead_letter_words\":" << dead_letter_words_
     << ",\"verify_flushes\":" << verify_flushes_
     << ",\"verify_shares\":" << verify_shares_
     << ",\"verify_rejects\":" << verify_rejects_
     << ",\"verify_memo_hits\":" << verify_memo_hits_
     << ",\"sig_verify_flushes\":" << sig_verify_flushes_
     << ",\"sig_verify_sigs\":" << sig_verify_sigs_
     << ",\"sig_verify_rejects\":" << sig_verify_rejects_
     << ",\"sig_verify_memo_hits\":" << sig_verify_memo_hits_
     << ",\"rbc_encodes\":" << rbc_encodes_
     << ",\"rbc_fragments_encoded\":" << rbc_fragments_encoded_
     << ",\"rbc_decodes\":" << rbc_decodes_
     << ",\"rbc_fragments_decoded\":" << rbc_fragments_decoded_
     << ",\"rbc_decode_failures\":" << rbc_decode_failures_
     << ",\"partition_held\":" << partition_held_
     << ",\"partition_held_words\":" << partition_held_words_
     << ",\"partition_dropped\":" << partition_dropped_
     << ",\"partition_dropped_words\":" << partition_dropped_words_
     << ",\"partition_released\":" << partition_released_
     << ",\"storm_copies\":" << storm_copies_
     << ",\"churn_crashes\":" << churn_crashes_ << '}';

  os << ",\"decide_rounds\":";
  json_escape(os, decide_rounds_.summary());

  os << ",\"words_by_phase\":{";
  bool first = true;
  for (const auto& [phase, words] : words_by_phase()) {
    if (!first) os << ',';
    json_escape(os, phase);
    os << ':' << words;
    first = false;
  }
  os << '}';

  os << ",\"words_by_round\":{";
  first = true;
  for (const auto& [round, words] : words_by_round()) {
    if (!first) os << ',';
    if (round == UINT64_MAX)
      os << "\"-\"";
    else
      os << '"' << round << '"';
    os << ':' << words;
    first = false;
  }
  os << '}';

  os << ",\"phases\":[";
  first = true;
  for (const auto& [phase, d] : by_phase()) {
    if (!first) os << ',';
    os << "{\"phase\":";
    json_escape(os, phase);
    os << ",\"messages\":" << d.messages
       << ",\"correct_words\":" << d.correct_words << ",\"words\":";
    d.words.to_json(os);
    os << ",\"depth\":";
    d.depth.to_json(os);
    os << ",\"latency\":";
    d.latency.to_json(os);
    os << '}';
    first = false;
  }
  os << "]}";
}

void Metrics::to_prometheus(std::ostream& os) const {
  os << "# TYPE coincidence_correct_words_total counter\n"
     << "coincidence_correct_words_total " << correct_words_ << '\n'
     << "# TYPE coincidence_total_words_total counter\n"
     << "coincidence_total_words_total " << total_words_ << '\n'
     << "# TYPE coincidence_messages_sent_total counter\n"
     << "coincidence_messages_sent_total " << messages_sent_ << '\n'
     << "# TYPE coincidence_deliveries_total counter\n"
     << "coincidence_deliveries_total " << deliveries_ << '\n'
     << "# TYPE coincidence_duration_causal_depth gauge\n"
     << "coincidence_duration_causal_depth " << max_decision_depth_ << '\n'
     << "# TYPE coincidence_link_drops_total counter\n"
     << "coincidence_link_drops_total " << link_drops_ << '\n'
     << "# TYPE coincidence_link_duplicates_total counter\n"
     << "coincidence_link_duplicates_total " << link_duplicates_ << '\n'
     << "# TYPE coincidence_link_replays_total counter\n"
     << "coincidence_link_replays_total " << link_replays_ << '\n'
     << "# TYPE coincidence_retransmits_total counter\n"
     << "coincidence_retransmits_total " << retransmits_ << '\n'
     << "# TYPE coincidence_dead_letters_total counter\n"
     << "coincidence_dead_letters_total " << dead_letters_ << '\n'
     << "# TYPE coincidence_dead_letter_words_total counter\n"
     << "coincidence_dead_letter_words_total " << dead_letter_words_ << '\n'
     << "# TYPE coincidence_verify_flushes_total counter\n"
     << "coincidence_verify_flushes_total " << verify_flushes_ << '\n'
     << "# TYPE coincidence_verify_shares_total counter\n"
     << "coincidence_verify_shares_total " << verify_shares_ << '\n'
     << "# TYPE coincidence_verify_rejects_total counter\n"
     << "coincidence_verify_rejects_total " << verify_rejects_ << '\n'
     << "# TYPE coincidence_verify_memo_hits_total counter\n"
     << "coincidence_verify_memo_hits_total " << verify_memo_hits_ << '\n'
     << "# TYPE coincidence_sig_verify_flushes_total counter\n"
     << "coincidence_sig_verify_flushes_total " << sig_verify_flushes_ << '\n'
     << "# TYPE coincidence_sig_verify_sigs_total counter\n"
     << "coincidence_sig_verify_sigs_total " << sig_verify_sigs_ << '\n'
     << "# TYPE coincidence_sig_verify_rejects_total counter\n"
     << "coincidence_sig_verify_rejects_total " << sig_verify_rejects_ << '\n'
     << "# TYPE coincidence_sig_verify_memo_hits_total counter\n"
     << "coincidence_sig_verify_memo_hits_total " << sig_verify_memo_hits_
     << '\n'
     << "# TYPE coincidence_rbc_encodes_total counter\n"
     << "coincidence_rbc_encodes_total " << rbc_encodes_ << '\n'
     << "# TYPE coincidence_rbc_fragments_encoded_total counter\n"
     << "coincidence_rbc_fragments_encoded_total " << rbc_fragments_encoded_
     << '\n'
     << "# TYPE coincidence_rbc_decodes_total counter\n"
     << "coincidence_rbc_decodes_total " << rbc_decodes_ << '\n'
     << "# TYPE coincidence_rbc_fragments_decoded_total counter\n"
     << "coincidence_rbc_fragments_decoded_total " << rbc_fragments_decoded_
     << '\n'
     << "# TYPE coincidence_rbc_decode_failures_total counter\n"
     << "coincidence_rbc_decode_failures_total " << rbc_decode_failures_
     << '\n'
     << "# TYPE coincidence_partition_held_total counter\n"
     << "coincidence_partition_held_total " << partition_held_ << '\n'
     << "# TYPE coincidence_partition_dropped_total counter\n"
     << "coincidence_partition_dropped_total " << partition_dropped_ << '\n'
     << "# TYPE coincidence_partition_released_total counter\n"
     << "coincidence_partition_released_total " << partition_released_ << '\n'
     << "# TYPE coincidence_storm_copies_total counter\n"
     << "coincidence_storm_copies_total " << storm_copies_ << '\n'
     << "# TYPE coincidence_churn_crashes_total counter\n"
     << "coincidence_churn_crashes_total " << churn_crashes_ << '\n';

  os << "# TYPE coincidence_phase_words_total counter\n";
  for (const auto& [phase, words] : words_by_phase())
    os << "coincidence_phase_words_total{phase=\"" << prom_escape(phase)
       << "\"} " << words << '\n';

  const auto phases = by_phase();
  if (!phases.empty()) {
    os << "# TYPE coincidence_phase_depth histogram\n";
    for (const auto& [phase, d] : phases)
      d.depth.to_prometheus(os, "coincidence_phase_depth",
                            "phase=\"" + prom_escape(phase) + "\"");
    os << "# TYPE coincidence_phase_latency_deliveries histogram\n";
    for (const auto& [phase, d] : phases)
      d.latency.to_prometheus(os, "coincidence_phase_latency_deliveries",
                              "phase=\"" + prom_escape(phase) + "\"");
  }
}

void Metrics::reset() {
  correct_words_ = 0;
  total_words_ = 0;
  messages_sent_ = 0;
  deliveries_ = 0;
  max_decision_depth_ = 0;
  link_drops_ = 0;
  link_dropped_words_ = 0;
  link_duplicates_ = 0;
  link_replays_ = 0;
  retransmits_ = 0;
  retransmit_words_ = 0;
  dead_letters_ = 0;
  dead_letter_words_ = 0;
  verify_flushes_ = 0;
  verify_shares_ = 0;
  verify_rejects_ = 0;
  verify_memo_hits_ = 0;
  sig_verify_flushes_ = 0;
  sig_verify_sigs_ = 0;
  sig_verify_rejects_ = 0;
  sig_verify_memo_hits_ = 0;
  rbc_encodes_ = 0;
  rbc_fragments_encoded_ = 0;
  rbc_decodes_ = 0;
  rbc_fragments_decoded_ = 0;
  rbc_decode_failures_ = 0;
  partition_held_ = 0;
  partition_held_words_ = 0;
  partition_dropped_ = 0;
  partition_dropped_words_ = 0;
  partition_released_ = 0;
  storm_copies_ = 0;
  churn_crashes_ = 0;
  words_by_tag_id_.clear();
  detail_by_tag_id_.clear();
  decide_rounds_ = Histogram{};
}

}  // namespace coincidence::sim
