#include "sim/metrics.h"

#include <algorithm>

namespace coincidence::sim {

void Metrics::record_send(const Message& msg, bool sender_correct) {
  ++messages_sent_;
  total_words_ += msg.words;
  if (!sender_correct) return;
  if (msg.retransmit) {
    // Repair traffic: real wire cost, but not part of the §2 measure.
    ++retransmits_;
    retransmit_words_ += msg.words;
    return;
  }
  correct_words_ += msg.words;
  const TagId id = msg.tag.id();
  if (id >= words_by_tag_id_.size()) words_by_tag_id_.resize(id + 1, 0);
  words_by_tag_id_[id] += msg.words;
}

std::map<std::string, std::uint64_t> Metrics::words_by_tag() const {
  // Bucket by the final tag component — the message *kind* (init, echo,
  // ok, first, second, bval, ...) — so harnesses can split cost per
  // protocol phase regardless of instance/round prefixes. Done at view
  // time: the string-keyed map makes the result independent of TagId
  // assignment order.
  std::map<std::string, std::uint64_t> view;
  for (TagId id = 0; id < words_by_tag_id_.size(); ++id) {
    if (words_by_tag_id_[id] == 0) continue;
    const std::string& tag = TagTable::instance().str(id);
    auto slash = tag.rfind('/');
    std::string bucket =
        slash == std::string::npos ? tag : tag.substr(slash + 1);
    view[bucket] += words_by_tag_id_[id];
  }
  return view;
}

void Metrics::record_link_drop(const Message& msg) {
  ++link_drops_;
  link_dropped_words_ += msg.words;
}

void Metrics::record_decision_depth(std::uint64_t depth) {
  max_decision_depth_ = std::max(max_decision_depth_, depth);
}

void Metrics::reset() {
  correct_words_ = 0;
  total_words_ = 0;
  messages_sent_ = 0;
  deliveries_ = 0;
  max_decision_depth_ = 0;
  link_drops_ = 0;
  link_dropped_words_ = 0;
  link_duplicates_ = 0;
  link_replays_ = 0;
  retransmits_ = 0;
  retransmit_words_ = 0;
  words_by_tag_id_.clear();
}

}  // namespace coincidence::sim
