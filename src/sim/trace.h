// Event-trace recording built on the Observer hooks.
//
// Records a compact, human-greppable line per event; tests and debugging
// sessions replay a run (everything is seed-deterministic) with a
// TraceRecorder attached and diff or grep the trace. Optional tag filter
// keeps traces of big runs manageable.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/observer.h"

namespace coincidence::sim {

class TraceRecorder final : public Observer {
 public:
  struct Event {
    enum class Kind { kSend, kDeliver, kCorrupt };
    Kind kind;
    std::uint64_t msg_id = 0;  // 0 for corruptions
    ProcessId from = 0;        // corrupted process for kCorrupt
    ProcessId to = 0;
    std::string tag;           // fault mode name for kCorrupt
    std::size_t words = 0;
    bool sender_correct = true;
  };

  /// Records only events whose tag contains `tag_filter` (empty = all).
  explicit TraceRecorder(std::string tag_filter = "");

  void on_send(const Message& msg, bool sender_correct) override;
  void on_deliver(const Message& msg) override;
  void on_corrupt(ProcessId target, const FaultPlan& plan) override;

  const std::vector<Event>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  void clear() { events_.clear(); }

  /// One line per event: "S id from->to tag words" / "D id from->to tag"
  /// / "C target mode".
  void dump(std::ostream& os) const;

 private:
  std::string tag_filter_;
  std::vector<Event> events_;
};

/// Name of a fault mode, for traces and test diagnostics.
const char* fault_mode_name(FaultPlan::Mode mode);

}  // namespace coincidence::sim
