// Event-trace recording built on the Observer hooks.
//
// Two layers share one recorder:
//
//  * The legacy compact trace: one human-greppable line per send /
//    deliver / corrupt event, unchanged since PR 0 — golden fingerprint
//    tests hash dump()'s bytes, so its format and event set are frozen.
//
//  * The structured trace (opt-in via TraceOptions.structured): one JSON
//    object per event, covering the full Observer surface — sends,
//    deliveries, link drops/duplicates/replays, dead letters, decisions,
//    round transitions, corruptions, recoveries — each stamped with the
//    message's causal depth and a vector-clock timestamp maintained by
//    the recorder itself. Deliveries carry provenance: whether the
//    delivered copy was the fresh send, a retransmission, a link
//    duplicate, or a stale replay. Tags are resolved to strings
//    (TagIds never appear in output), so the JSONL stream is
//    byte-identical across replays regardless of interning order.
//
// Filter contract: `tag_filter` narrows *message traffic only* — send
// and deliver events. Fault events (corrupt, drop, dead letter, decide,
// round, ...) are always recorded: their `tag`/`mode` fields hold fault
// or scope names, not message tags, and a filtered trace that silently
// dropped corruptions would make fault accounting lie.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/flat_map64.h"
#include "sim/observer.h"

namespace coincidence::sim {

struct TraceOptions {
  /// Records only send/deliver events whose tag contains this substring
  /// (empty = all). Never applied to fault/decision events — see the
  /// filter contract above.
  std::string tag_filter;
  /// Captures the structured JSONL record stream beside the legacy
  /// compact events. Off by default: the legacy trace stays cheap and
  /// its golden hashes stay meaningful.
  bool structured = false;
};

class TraceRecorder final : public Observer {
 public:
  struct Event {
    enum class Kind { kSend, kDeliver, kCorrupt };
    Kind kind;
    std::uint64_t msg_id = 0;  // 0 for corruptions
    ProcessId from = 0;        // corrupted process for kCorrupt
    ProcessId to = 0;
    std::string tag;           // fault mode name for kCorrupt
    std::size_t words = 0;
    bool sender_correct = true;
  };

  /// How the delivered (or lost) copy of a message came to exist.
  enum class Prov { kFresh, kRetransmit, kDuplicate, kReplay };

  /// One structured record. Field use depends on kind; unused fields
  /// keep their defaults and are omitted from the JSONL line.
  struct Rec {
    enum class Kind {
      kSend,
      kDeliver,
      kDrop,
      kDuplicate,
      kReplay,
      kDeadLetter,
      kCorrupt,
      kRecover,
      kDecide,
      kRound,
    };
    Kind kind;
    std::uint64_t msg_id = 0;
    std::uint64_t send_seq = 0;
    ProcessId from = 0;  // reporter for decide/round/corrupt/recover
    ProcessId to = 0;
    std::string tag;  // message tag / decide scope / fault mode
    std::size_t words = 0;
    std::uint64_t depth = 0;  // causal depth (messages and decides)
    std::uint64_t round = 0;  // decide/round events
    int value = 0;            // decide events
    bool correct = true;
    Prov prov = Prov::kFresh;
    std::vector<std::uint64_t> vc;  // vector-clock timestamp
  };

  /// Records only events whose tag contains `tag_filter` (empty = all).
  explicit TraceRecorder(std::string tag_filter = "");
  explicit TraceRecorder(TraceOptions opts);

  void on_send(const Message& msg, bool sender_correct) override;
  void on_deliver(const Message& msg) override;
  void on_corrupt(ProcessId target, const FaultPlan& plan) override;
  void on_recover(ProcessId target) override;
  void on_link_drop(const Message& msg) override;
  void on_link_duplicate(const Message& msg) override;
  void on_link_replay(const Message& msg) override;
  void on_dead_letter(ProcessId from, ProcessId to, const Tag& tag,
                      std::size_t words) override;
  void on_decide(const DecideEvent& event) override;
  void on_round(ProcessId who, std::uint64_t round) override;

  const std::vector<Event>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  void clear();

  /// Legacy compact dump — format frozen (golden fingerprints hash it).
  /// One line per event: "S id from->to tag words" / "D id from->to tag"
  /// / "C target mode".
  void dump(std::ostream& os) const;

  /// Structured records (empty unless TraceOptions.structured).
  const std::vector<Rec>& records() const { return records_; }

  /// JSONL dump of the structured records: one JSON object per line,
  /// deterministic byte-for-byte for a fixed (config, seed).
  void dump_jsonl(std::ostream& os) const;

 private:
  bool passes_filter(const Message& msg) const;
  std::vector<std::uint64_t>& clock_of(ProcessId id);
  void record_message(Rec::Kind kind, const Message& msg, bool correct,
                      Prov prov, const std::vector<std::uint64_t>* vc);

  std::string tag_filter_;
  bool structured_ = false;
  std::vector<Event> events_;
  std::vector<Rec> records_;
  // Vector clocks, maintained only in structured mode. Clocks grow on
  // demand (index = ProcessId); snapshots are keyed by send_seq, which
  // — unlike msg id — is shared by link duplicates and replays of the
  // same send, so a stale copy still resolves to its causal timestamp.
  std::vector<std::vector<std::uint64_t>> clocks_;
  FlatMap64<std::vector<std::uint64_t>> send_clock_;  // send_seq -> vc
  FlatMap64<std::uint8_t> copy_prov_;  // msg id -> Prov of link copies
};

/// Name of a fault mode, for traces and test diagnostics.
const char* fault_mode_name(FaultPlan::Mode mode);

}  // namespace coincidence::sim
