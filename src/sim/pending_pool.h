// The in-flight message pool.
//
// Requirements: O(1) random access for the adversary, O(1) removal, O(1)
// amortized oldest-message lookup for the fairness bound, and a metadata-
// only read surface — adversaries can see every field of a pending
// message *except its payload*, which is exactly the delayed-adaptive
// visibility rule (payload access is reserved to the Simulation via
// take()).
//
// Hot-path containers (ISSUE 3): the id->index map is a flat hash (no
// per-push node allocation) and the lazily-cleaned oldest-message heap
// is compacted once stale entries outnumber live ones, so the pool's
// memory stays proportional to what is actually in flight.
#pragma once

#include <cstdint>
#include <queue>
#include <string>
#include <vector>

#include "sim/flat_map64.h"
#include "sim/message.h"

namespace coincidence::sim {

class PendingPool {
 public:
  std::size_t size() const { return msgs_.size(); }
  bool empty() const { return msgs_.empty(); }

  // Metadata-only accessors (the adversary's legal view).
  ProcessId from(std::size_t i) const { return msgs_[i].from; }
  ProcessId to(std::size_t i) const { return msgs_[i].to; }
  const std::string& tag(std::size_t i) const { return msgs_[i].tag.str(); }
  TagId tag_id(std::size_t i) const { return msgs_[i].tag.id(); }
  std::size_t words(std::size_t i) const { return msgs_[i].words; }
  std::uint64_t send_seq(std::size_t i) const { return msgs_[i].send_seq; }
  std::uint64_t enqueue_tick(std::size_t i) const { return ticks_[i]; }

  /// Index of the message enqueued earliest among those still pending.
  /// Amortized O(1) via a lazily-cleaned min-heap. Pool must be non-empty.
  std::size_t oldest_index() const;

  /// Lower bound on the oldest pending message's enqueue tick: the heap
  /// top's tick, stale entries included (a stale tick is never larger
  /// than the live minimum, since ticks only grow). Lets the scheduler
  /// skip the precise oldest_index() resolution — and its stale-entry
  /// pops — whenever even this bound cannot trip the fairness check.
  /// O(1), no cleanup. Pool must be non-empty.
  std::uint64_t oldest_tick_lower_bound() const {
    return oldest_heap_.top().first;
  }

  /// Capacity hint (SimConfig::expected_in_flight): presizes the message
  /// and tick arrays and the id->index hash so a run whose in-flight
  /// population peaks at `n` never regrows or rehashes mid-flight.
  void reserve(std::size_t n);

  void push(Message msg, std::uint64_t tick);

  /// Removes and returns the message at `i` (swap-remove; indices of other
  /// messages may change).
  Message take(std::size_t i);

  /// Heap entries including stale ones — whitebox view for the compaction
  /// regression test.
  std::size_t heap_size() const { return oldest_heap_.size(); }

 private:
  void compact_heap() const;

  std::vector<Message> msgs_;
  std::vector<std::uint64_t> ticks_;
  mutable FlatMap64<std::size_t> index_of_;  // id -> idx
  // min-heap of (tick, id); stale ids skipped lazily, bulk-evicted by
  // compact_heap() once they outnumber the live messages.
  using HeapEntry = std::pair<std::uint64_t, std::uint64_t>;
  using Heap = std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                                   std::greater<HeapEntry>>;
  mutable Heap oldest_heap_;
};

}  // namespace coincidence::sim
