// The in-flight message pool.
//
// Requirements: O(1) random access for the adversary, O(1) removal, O(1)
// amortized oldest-message lookup for the fairness bound, and a metadata-
// only read surface — adversaries can see every field of a pending
// message *except its payload*, which is exactly the delayed-adaptive
// visibility rule (payload access is reserved to the Simulation via
// take()).
#pragma once

#include <cstdint>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/message.h"

namespace coincidence::sim {

class PendingPool {
 public:
  std::size_t size() const { return msgs_.size(); }
  bool empty() const { return msgs_.empty(); }

  // Metadata-only accessors (the adversary's legal view).
  ProcessId from(std::size_t i) const { return msgs_[i].from; }
  ProcessId to(std::size_t i) const { return msgs_[i].to; }
  const std::string& tag(std::size_t i) const { return msgs_[i].tag; }
  std::size_t words(std::size_t i) const { return msgs_[i].words; }
  std::uint64_t send_seq(std::size_t i) const { return msgs_[i].send_seq; }
  std::uint64_t enqueue_tick(std::size_t i) const { return ticks_[i]; }

  /// Index of the message enqueued earliest among those still pending.
  /// Amortized O(1) via a lazily-cleaned min-heap. Pool must be non-empty.
  std::size_t oldest_index() const;

  void push(Message msg, std::uint64_t tick);

  /// Removes and returns the message at `i` (swap-remove; indices of other
  /// messages may change).
  Message take(std::size_t i);

 private:
  std::vector<Message> msgs_;
  std::vector<std::uint64_t> ticks_;
  mutable std::unordered_map<std::uint64_t, std::size_t> index_of_;  // id -> idx
  // min-heap of (tick, id); stale ids skipped lazily.
  using HeapEntry = std::pair<std::uint64_t, std::uint64_t>;
  mutable std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                              std::greater<HeapEntry>> oldest_heap_;
};

}  // namespace coincidence::sim
