// The delayed-adaptive adversary (Definition 2.1) as a scheduling +
// corruption strategy interface.
//
// Model enforcement is structural: a legal adversary schedules from the
// PendingPool's metadata view (no payload access) and learns content only
// through observe_delivery — i.e. once a message has been delivered and
// is part of the causal past. That is exactly the paper's rule "the
// adversary can use the contents of m for scheduling m' only if m → m'".
// The runtime additionally enforces the corruption budget f, eventual
// delivery (a fairness bound), and no-front-running (a corrupted
// process's already-sent messages cannot be retracted — cf. the Blum et
// al. key-deletion argument cited in §2).
//
// The *illegal* content-aware adversary used by the E6 ablation bench
// overrides observe_pending_content, which the runtime only feeds when
// SimConfig.allow_content_visibility is set — deliberately stepping
// outside the model to demonstrate why the assumption is needed.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "sim/fault.h"
#include "sim/message.h"
#include "sim/pending_pool.h"

namespace coincidence::sim {

struct CorruptionRequest {
  ProcessId target;
  FaultPlan plan;
};

class Adversary {
 public:
  virtual ~Adversary() = default;

  /// Chooses the index (into `pending`, never empty) of the next message
  /// to deliver. The runtime may override the choice to enforce the
  /// fairness bound.
  virtual std::size_t schedule(const PendingPool& pending, Rng& rng) = 0;

  /// Full content of a just-delivered message: now causally public.
  virtual void observe_delivery(const Message& /*msg*/) {}

  /// ILLEGAL channel (ablation only): full content of a message at the
  /// moment it is *sent*, before any causal relation exists. The runtime
  /// only calls this when configured to run outside the paper's model.
  virtual void observe_pending_content(const Message& /*msg*/) {}

  /// Polled before each delivery: processes to corrupt right now. The
  /// runtime applies requests while the corruption budget f lasts and
  /// ignores the rest.
  virtual std::vector<CorruptionRequest> corrupt_now(Rng& /*rng*/) {
    return {};
  }
};

/// FIFO delivery: the network behaves like a synchronous round-robin
/// (oldest message first).
class FifoAdversary final : public Adversary {
 public:
  std::size_t schedule(const PendingPool& pending, Rng& rng) override;
};

/// Uniformly random delivery order — the standard benign-asynchrony
/// baseline for coin success-rate measurements.
class RandomAdversary final : public Adversary {
 public:
  std::size_t schedule(const PendingPool& pending, Rng& rng) override;
};

/// Content-oblivious but actively hostile: starves a set of senders
/// (their messages go out only when the fairness bound forces them),
/// random otherwise. A legal delayed-adaptive strategy.
class DelaySendersAdversary final : public Adversary {
 public:
  /// ordered=false: when only victims' messages remain, release a random
  /// one. ordered=true: release victims in ascending id order — the same
  /// victims stay hidden at *every* receiver, which is the coordinated
  /// schedule the common-core lemmas' worst case needs (still legal:
  /// the order uses ids, never content).
  explicit DelaySendersAdversary(std::vector<ProcessId> victims,
                                 bool ordered = false);
  std::size_t schedule(const PendingPool& pending, Rng& rng) override;

 protected:
  std::unordered_set<ProcessId> victims_;
  bool ordered_;
};

/// Partitions processes into [0, boundary) vs the rest and delays all
/// cross-partition traffic — stress-tests threshold logic (legal:
/// content-blind).
class SplitAdversary final : public Adversary {
 public:
  explicit SplitAdversary(ProcessId boundary);
  std::size_t schedule(const PendingPool& pending, Rng& rng) override;

 private:
  ProcessId boundary_;
};

/// Heavy-tailed "WAN-like" scheduling: each pending message gets a
/// persistent random weight drawn from a Pareto-ish distribution, and the
/// lightest pending message is delivered first. Models realistic networks
/// where most messages are fast but a long tail straggles — unlike the
/// uniform RandomAdversary, a few messages are delayed a LOT. Content-
/// oblivious, hence legal.
class HeavyTailAdversary final : public Adversary {
 public:
  /// `alpha` is the Pareto shape (smaller = heavier tail; 1.1–2 typical).
  explicit HeavyTailAdversary(double alpha = 1.5);

  std::size_t schedule(const PendingPool& pending, Rng& rng) override;

 private:
  double alpha_;
  std::unordered_map<std::uint64_t, double> weight_;  // msg id -> weight
};

/// Corrupts a fixed set of processes at start-up (static corruption is a
/// special case of adaptive) and schedules randomly.
class StaticCorruptionAdversary final : public Adversary {
 public:
  StaticCorruptionAdversary(std::vector<ProcessId> targets, FaultPlan plan);
  std::size_t schedule(const PendingPool& pending, Rng& rng) override;
  std::vector<CorruptionRequest> corrupt_now(Rng& rng) override;

 private:
  std::vector<ProcessId> targets_;
  FaultPlan plan_;
  bool fired_ = false;
};

/// ILLEGAL content-aware adversary for the E6 ablation: reads the content
/// of *pending* (not yet causally-public) coin messages, learns each
/// sender's VRF value, and starves + corrupt-silences every sender whose
/// value's LSB differs from the desired coin outcome. Since the coin
/// outputs the LSB of the minimum surviving value, this drives all
/// correct processes toward the adversary's bit — the attack the
/// delayed-adaptive assumption exists to rule out.
class CoinBiasAdversary final : public Adversary {
 public:
  /// `tag_substring` selects which messages to inspect (e.g. "first");
  /// `desired_bit` is the coin outcome the adversary forces.
  CoinBiasAdversary(std::string tag_substring, int desired_bit);

  std::size_t schedule(const PendingPool& pending, Rng& rng) override;
  void observe_pending_content(const Message& msg) override;
  std::vector<CorruptionRequest> corrupt_now(Rng& rng) override;

 private:
  std::string tag_substring_;
  int desired_bit_;
  std::unordered_set<ProcessId> starved_;  // senders holding the wrong bit
  std::unordered_set<ProcessId> requested_;
  // Observed coin value per sender: when starvation alone cannot block
  // progress (everything pending is starved), the adversary releases the
  // *largest* starved value first, keeping the small minima hidden
  // longest — the strongest content-aware schedule against a min-coin.
  std::unordered_map<ProcessId, std::uint64_t> value_of_;
};

/// LEGAL adaptive strategy: corrupts processes the moment they reveal
/// committee membership by *speaking* (observe_delivery is causal-past
/// information, so this obeys Definition 2.1). This is exactly the attack
/// process replaceability (§6.1) is designed to defeat: by the time a
/// member is identified it has already sent its one message, which cannot
/// be retracted — so the corruptions buy the adversary nothing.
class CommitteeHunterAdversary final : public Adversary {
 public:
  /// Corrupts senders of messages whose tag contains `tag_substring`
  /// (empty = hunt every sender), with the given behaviour.
  CommitteeHunterAdversary(std::string tag_substring, FaultPlan plan);

  std::size_t schedule(const PendingPool& pending, Rng& rng) override;
  void observe_delivery(const Message& msg) override;
  std::vector<CorruptionRequest> corrupt_now(Rng& rng) override;

  std::size_t hunted_count() const { return requested_.size(); }

 private:
  std::string tag_substring_;
  FaultPlan plan_;
  std::vector<ProcessId> queue_;  // revealed, not yet requested
  std::unordered_set<ProcessId> requested_;
};

/// LEGAL delayed-adaptive strategy for the chaos plane: hunts every
/// protocol role the observer plane exposes at once. Delivered messages
/// whose tags carry committee-membership markers — coin-share senders
/// ("/first"), minima relayers ("/second"), ok-certificate electors
/// ("/ok") — reveal their sender as worth corrupting; the adversary
/// queues the sender, corrupts it at the next poll (subject to the
/// runtime budget f and its own victim cap) and additionally starves the
/// victims' remaining traffic until the fairness bound forces it
/// through. Everything it reads is causal-past content (observe_delivery)
/// or metadata (tags during scheduling), so it sits strictly inside
/// Definition 2.1 — see docs/CHAOS.md for the legality argument.
class AdaptiveCorruptionAdversary final : public Adversary {
 public:
  struct Config {
    /// Tag substrings that mark a sender as a revealed role-holder.
    std::vector<std::string> role_markers = {"/first", "/second", "/ok"};
    /// Behaviour applied to victims.
    FaultPlan plan = FaultPlan::silent();
    /// Hard cap on corruption requests (the runtime budget f still
    /// applies on top; 0 = corrupt nothing, scheduling-only hostility).
    std::size_t max_victims = 0;
    /// Also starve revealed victims' pending traffic.
    bool starve = true;
  };

  explicit AdaptiveCorruptionAdversary(Config cfg);

  std::size_t schedule(const PendingPool& pending, Rng& rng) override;
  void observe_delivery(const Message& msg) override;
  std::vector<CorruptionRequest> corrupt_now(Rng& rng) override;

  std::size_t hunted_count() const { return requested_.size(); }

 private:
  Config cfg_;
  std::vector<ProcessId> queue_;  // revealed, not yet requested
  std::unordered_set<ProcessId> requested_;
};

namespace detail {
/// Rejection-samples an index whose sender is not in `avoid`; falls back
/// to a full scan, then to an arbitrary pick if every sender is avoided.
std::size_t pick_avoiding(const PendingPool& pending, Rng& rng,
                          const std::unordered_set<ProcessId>& avoid);
}  // namespace detail

}  // namespace coincidence::sim
