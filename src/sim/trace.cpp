#include "sim/trace.h"

#include <algorithm>
#include <ostream>

namespace coincidence::sim {

namespace {

const char* rec_kind_name(TraceRecorder::Rec::Kind kind) {
  using Kind = TraceRecorder::Rec::Kind;
  switch (kind) {
    case Kind::kSend: return "send";
    case Kind::kDeliver: return "deliver";
    case Kind::kDrop: return "drop";
    case Kind::kDuplicate: return "dup";
    case Kind::kReplay: return "replay";
    case Kind::kDeadLetter: return "dead_letter";
    case Kind::kCorrupt: return "corrupt";
    case Kind::kRecover: return "recover";
    case Kind::kDecide: return "decide";
    case Kind::kRound: return "round";
  }
  return "unknown";
}

const char* prov_name(TraceRecorder::Prov prov) {
  switch (prov) {
    case TraceRecorder::Prov::kFresh: return "fresh";
    case TraceRecorder::Prov::kRetransmit: return "retransmit";
    case TraceRecorder::Prov::kDuplicate: return "dup";
    case TraceRecorder::Prov::kReplay: return "replay";
  }
  return "unknown";
}

/// Minimal JSON string escaping — tags are short slash-separated tokens,
/// but a Byzantine-crafted tag must still produce valid JSONL.
void json_escape(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          os << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

const char* fault_mode_name(FaultPlan::Mode mode) {
  switch (mode) {
    case FaultPlan::Mode::kCorrect: return "correct";
    case FaultPlan::Mode::kCrash: return "crash";
    case FaultPlan::Mode::kSilent: return "silent";
    case FaultPlan::Mode::kSelective: return "selective";
    case FaultPlan::Mode::kJunk: return "junk";
    case FaultPlan::Mode::kCrashRecover: return "crash-recover";
  }
  return "unknown";
}

TraceRecorder::TraceRecorder(std::string tag_filter)
    : tag_filter_(std::move(tag_filter)) {}

TraceRecorder::TraceRecorder(TraceOptions opts)
    : tag_filter_(std::move(opts.tag_filter)), structured_(opts.structured) {}

void TraceRecorder::clear() {
  events_.clear();
  records_.clear();
  clocks_.clear();
  send_clock_.clear();
  copy_prov_.clear();
}

bool TraceRecorder::passes_filter(const Message& msg) const {
  return tag_filter_.empty() ||
         msg.tag.str().find(tag_filter_) != std::string::npos;
}

std::vector<std::uint64_t>& TraceRecorder::clock_of(ProcessId id) {
  if (id >= clocks_.size()) clocks_.resize(id + 1);
  auto& clock = clocks_[id];
  if (clock.size() <= id) clock.resize(id + 1, 0);
  return clock;
}

void TraceRecorder::record_message(Rec::Kind kind, const Message& msg,
                                   bool correct, Prov prov,
                                   const std::vector<std::uint64_t>* vc) {
  Rec rec;
  rec.kind = kind;
  rec.msg_id = msg.id;
  rec.send_seq = msg.send_seq;
  rec.from = msg.from;
  rec.to = msg.to;
  rec.tag = msg.tag.str();
  rec.words = msg.words;
  rec.depth = msg.causal_depth;
  rec.correct = correct;
  rec.prov = prov;
  if (vc != nullptr) rec.vc = *vc;
  records_.push_back(std::move(rec));
}

void TraceRecorder::on_send(const Message& msg, bool sender_correct) {
  if (!passes_filter(msg)) return;
  events_.push_back({Event::Kind::kSend, msg.id, msg.from, msg.to,
                     msg.tag.str(), msg.words, sender_correct});
  if (!structured_) return;
  // Lamport send: bump the sender's own component and snapshot. The
  // snapshot is keyed by send_seq so that link duplicates and replays of
  // this send (fresh msg ids, same send_seq) still resolve to it.
  auto& clock = clock_of(msg.from);
  ++clock[msg.from];
  send_clock_.insert_or_assign(msg.send_seq, clock);
  record_message(Rec::Kind::kSend, msg, sender_correct,
                 msg.retransmit ? Prov::kRetransmit : Prov::kFresh, &clock);
}

void TraceRecorder::on_deliver(const Message& msg) {
  if (!passes_filter(msg)) return;
  events_.push_back({Event::Kind::kDeliver, msg.id, msg.from, msg.to,
                     msg.tag.str(), msg.words, true});
  if (!structured_) return;
  // Lamport receive: fold the send snapshot in, then bump the receiver.
  auto& clock = clock_of(msg.to);
  if (const auto* sent = send_clock_.find(msg.send_seq)) {
    if (clock.size() < sent->size()) clock.resize(sent->size(), 0);
    for (std::size_t i = 0; i < sent->size(); ++i)
      clock[i] = std::max(clock[i], (*sent)[i]);
  }
  ++clock[msg.to];
  Prov prov = msg.retransmit ? Prov::kRetransmit : Prov::kFresh;
  if (const auto* copy = copy_prov_.find(msg.id))
    prov = static_cast<Prov>(*copy);
  record_message(Rec::Kind::kDeliver, msg, true, prov, &clock);
}

void TraceRecorder::on_corrupt(ProcessId target, const FaultPlan& plan) {
  // Never filtered: the tag field holds a fault-mode name, not a message
  // tag, and fault accounting must survive any tag_filter.
  events_.push_back({Event::Kind::kCorrupt, 0, target, target,
                     fault_mode_name(plan.mode), 0, false});
  if (!structured_) return;
  Rec rec;
  rec.kind = Rec::Kind::kCorrupt;
  rec.from = target;
  rec.tag = fault_mode_name(plan.mode);
  rec.correct = false;
  records_.push_back(std::move(rec));
}

void TraceRecorder::on_recover(ProcessId target) {
  if (!structured_) return;
  Rec rec;
  rec.kind = Rec::Kind::kRecover;
  rec.from = target;
  records_.push_back(std::move(rec));
}

void TraceRecorder::on_link_drop(const Message& msg) {
  if (!structured_) return;
  const auto* vc = send_clock_.find(msg.send_seq);
  record_message(Rec::Kind::kDrop, msg, true, Prov::kFresh, vc);
}

void TraceRecorder::on_link_duplicate(const Message& msg) {
  if (!structured_) return;
  copy_prov_.insert_or_assign(msg.id,
                              static_cast<std::uint8_t>(Prov::kDuplicate));
  const auto* vc = send_clock_.find(msg.send_seq);
  record_message(Rec::Kind::kDuplicate, msg, true, Prov::kDuplicate, vc);
}

void TraceRecorder::on_link_replay(const Message& msg) {
  if (!structured_) return;
  copy_prov_.insert_or_assign(msg.id,
                              static_cast<std::uint8_t>(Prov::kReplay));
  const auto* vc = send_clock_.find(msg.send_seq);
  record_message(Rec::Kind::kReplay, msg, true, Prov::kReplay, vc);
}

void TraceRecorder::on_dead_letter(ProcessId from, ProcessId to,
                                   const Tag& tag, std::size_t words) {
  if (!structured_) return;
  Rec rec;
  rec.kind = Rec::Kind::kDeadLetter;
  rec.from = from;
  rec.to = to;
  rec.tag = tag.str();
  rec.words = words;
  records_.push_back(std::move(rec));
}

void TraceRecorder::on_decide(const DecideEvent& event) {
  if (!structured_) return;
  Rec rec;
  rec.kind = Rec::Kind::kDecide;
  rec.from = event.who;
  rec.tag = event.scope.str();
  rec.depth = event.causal_depth;
  rec.round = event.round;
  rec.value = event.value;
  rec.correct = event.correct;
  rec.vc = clock_of(event.who);
  records_.push_back(std::move(rec));
}

void TraceRecorder::on_round(ProcessId who, std::uint64_t round) {
  if (!structured_) return;
  Rec rec;
  rec.kind = Rec::Kind::kRound;
  rec.from = who;
  rec.round = round;
  records_.push_back(std::move(rec));
}

void TraceRecorder::dump(std::ostream& os) const {
  for (const Event& e : events_) {
    switch (e.kind) {
      case Event::Kind::kSend:
        os << "S " << e.msg_id << ' ' << e.from << "->" << e.to << ' '
           << e.tag << ' ' << e.words << (e.sender_correct ? "" : " BYZ")
           << '\n';
        break;
      case Event::Kind::kDeliver:
        os << "D " << e.msg_id << ' ' << e.from << "->" << e.to << ' '
           << e.tag << '\n';
        break;
      case Event::Kind::kCorrupt:
        os << "C " << e.from << ' ' << e.tag << '\n';
        break;
    }
  }
}

void TraceRecorder::dump_jsonl(std::ostream& os) const {
  std::uint64_t seq = 0;
  for (const Rec& r : records_) {
    os << "{\"seq\":" << seq++ << ",\"ev\":\"" << rec_kind_name(r.kind)
       << '"';
    switch (r.kind) {
      case Rec::Kind::kSend:
      case Rec::Kind::kDeliver:
      case Rec::Kind::kDrop:
      case Rec::Kind::kDuplicate:
      case Rec::Kind::kReplay:
        os << ",\"id\":" << r.msg_id << ",\"sseq\":" << r.send_seq
           << ",\"from\":" << r.from << ",\"to\":" << r.to << ",\"tag\":";
        json_escape(os, r.tag);
        os << ",\"words\":" << r.words << ",\"depth\":" << r.depth
           << ",\"correct\":" << (r.correct ? "true" : "false")
           << ",\"prov\":\"" << prov_name(r.prov) << '"';
        break;
      case Rec::Kind::kDeadLetter:
        os << ",\"from\":" << r.from << ",\"to\":" << r.to << ",\"tag\":";
        json_escape(os, r.tag);
        os << ",\"words\":" << r.words;
        break;
      case Rec::Kind::kCorrupt:
        os << ",\"who\":" << r.from << ",\"mode\":";
        json_escape(os, r.tag);
        break;
      case Rec::Kind::kRecover:
        os << ",\"who\":" << r.from;
        break;
      case Rec::Kind::kDecide:
        os << ",\"who\":" << r.from << ",\"scope\":";
        json_escape(os, r.tag);
        os << ",\"value\":" << r.value << ",\"round\":" << r.round
           << ",\"depth\":" << r.depth
           << ",\"correct\":" << (r.correct ? "true" : "false");
        break;
      case Rec::Kind::kRound:
        os << ",\"who\":" << r.from << ",\"round\":" << r.round;
        break;
    }
    if (!r.vc.empty()) {
      os << ",\"vc\":[";
      for (std::size_t i = 0; i < r.vc.size(); ++i) {
        if (i != 0) os << ',';
        os << r.vc[i];
      }
      os << ']';
    }
    os << "}\n";
  }
}

}  // namespace coincidence::sim
