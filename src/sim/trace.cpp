#include "sim/trace.h"

#include <ostream>

namespace coincidence::sim {

const char* fault_mode_name(FaultPlan::Mode mode) {
  switch (mode) {
    case FaultPlan::Mode::kCorrect: return "correct";
    case FaultPlan::Mode::kCrash: return "crash";
    case FaultPlan::Mode::kSilent: return "silent";
    case FaultPlan::Mode::kSelective: return "selective";
    case FaultPlan::Mode::kJunk: return "junk";
    case FaultPlan::Mode::kCrashRecover: return "crash-recover";
  }
  return "unknown";
}

TraceRecorder::TraceRecorder(std::string tag_filter)
    : tag_filter_(std::move(tag_filter)) {}

void TraceRecorder::on_send(const Message& msg, bool sender_correct) {
  const std::string& tag = msg.tag.str();
  if (!tag_filter_.empty() && tag.find(tag_filter_) == std::string::npos)
    return;
  events_.push_back({Event::Kind::kSend, msg.id, msg.from, msg.to, tag,
                     msg.words, sender_correct});
}

void TraceRecorder::on_deliver(const Message& msg) {
  const std::string& tag = msg.tag.str();
  if (!tag_filter_.empty() && tag.find(tag_filter_) == std::string::npos)
    return;
  events_.push_back({Event::Kind::kDeliver, msg.id, msg.from, msg.to,
                     tag, msg.words, true});
}

void TraceRecorder::on_corrupt(ProcessId target, const FaultPlan& plan) {
  events_.push_back({Event::Kind::kCorrupt, 0, target, target,
                     fault_mode_name(plan.mode), 0, false});
}

void TraceRecorder::dump(std::ostream& os) const {
  for (const Event& e : events_) {
    switch (e.kind) {
      case Event::Kind::kSend:
        os << "S " << e.msg_id << ' ' << e.from << "->" << e.to << ' '
           << e.tag << ' ' << e.words << (e.sender_correct ? "" : " BYZ")
           << '\n';
        break;
      case Event::Kind::kDeliver:
        os << "D " << e.msg_id << ' ' << e.from << "->" << e.to << ' '
           << e.tag << '\n';
        break;
      case Event::Kind::kCorrupt:
        os << "C " << e.from << ' ' << e.tag << '\n';
        break;
    }
  }
}

}  // namespace coincidence::sim
