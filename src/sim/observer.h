// Passive observation hooks on a Simulation.
//
// Observers see every send, delivery and corruption — outside the
// adversary's restricted view — which makes them the right place for
// in-flight invariant checking ("no correct process broadcast twice in
// one committee role"), tracing, and custom metrics. Observers must not
// mutate anything; they run after the runtime has finished processing
// the event they are told about.
#pragma once

#include "sim/fault.h"
#include "sim/message.h"

namespace coincidence::sim {

/// A protocol-level decision or sub-protocol output, reported through
/// Context::note_decide. `scope` is the reporting (sub-)protocol's tag
/// prefix ("ba", "ba/3/coin", ...), `value` its output, `round` the
/// protocol round the output fired in, and `causal_depth` the reporter's
/// observed causal depth at that moment — the quantity the paper's
/// duration metric maximises over decision events.
struct DecideEvent {
  ProcessId who = 0;
  Tag scope;
  int value = 0;
  std::uint64_t round = 0;
  std::uint64_t causal_depth = 0;
  bool correct = true;  // false when the reporter is corrupted
};

class Observer {
 public:
  virtual ~Observer() = default;

  /// A message entered the network (or a self-queue). `sender_correct`
  /// is false for corrupted senders and adversary injections.
  virtual void on_send(const Message& /*msg*/, bool /*sender_correct*/) {}

  /// A message was handed to its receiver.
  virtual void on_deliver(const Message& /*msg*/) {}

  /// A process was corrupted with the given behaviour.
  virtual void on_corrupt(ProcessId /*target*/, const FaultPlan& /*plan*/) {}

  /// A kCrashRecover process came back up (after on_recover ran).
  virtual void on_recover(ProcessId /*target*/) {}

  /// The lossy link layer dropped `msg` (it will never be delivered).
  virtual void on_link_drop(const Message& /*msg*/) {}

  /// The lossy link layer enqueued an extra copy of `msg`.
  virtual void on_link_duplicate(const Message& /*msg*/) {}

  /// The lossy link layer belched up a stale replay. Default forwards to
  /// on_link_duplicate, matching the pre-telemetry contract where both
  /// network-created copies arrived through one hook.
  virtual void on_link_replay(const Message& msg) { on_link_duplicate(msg); }

  /// A transport gave up on a frame (e.g. net::ReliableChannel exhausting
  /// max_retransmits). The payload is gone for good and is *not* covered
  /// by on_link_drop — that hook fires per lost packet, this one fires
  /// once per abandoned payload.
  virtual void on_dead_letter(ProcessId /*from*/, ProcessId /*to*/,
                              const Tag& /*tag*/, std::size_t /*words*/) {}

  /// A protocol decision point fired (Context::note_decide).
  virtual void on_decide(const DecideEvent& /*event*/) {}

  /// A process entered protocol round `round` (Context::note_round).
  virtual void on_round(ProcessId /*who*/, std::uint64_t /*round*/) {}

  /// The scheduler picked the next message to deliver. `forced_by_
  /// fairness` marks deliveries the fairness bound forced through over
  /// the adversary's head; everything else is the adversary's own pick.
  /// Fires before the delivery it describes (msg.age is the delivery-
  /// event count the message spent pending).
  virtual void on_adversary_choice(const MessageMeta& /*msg*/,
                                   bool /*forced_by_fairness*/) {}

  /// A chaos schedule phase (sim/chaos.h) began (`begin`) or ended at
  /// delivery tick `at`. `kind` is the phase's kind_name(); `index` its
  /// position in the schedule — the coordinate the failing-seed repro
  /// triple (seed, config, schedule-phase) points at.
  virtual void on_chaos_phase(std::size_t /*index*/, const char* /*kind*/,
                              bool /*begin*/, std::uint64_t /*at*/) {}

  /// An active chaos partition blocked `msg`: `held`=true means the
  /// message was buffered and will be released when the partition heals,
  /// false means it was lost at the link (drop mode — only a
  /// retransmitting transport delivers its payload eventually).
  virtual void on_partition_block(const Message& /*msg*/, bool /*held*/) {}
};

}  // namespace coincidence::sim
