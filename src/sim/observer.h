// Passive observation hooks on a Simulation.
//
// Observers see every send, delivery and corruption — outside the
// adversary's restricted view — which makes them the right place for
// in-flight invariant checking ("no correct process broadcast twice in
// one committee role"), tracing, and custom metrics. Observers must not
// mutate anything; they run after the runtime has finished processing
// the event they are told about.
#pragma once

#include "sim/fault.h"
#include "sim/message.h"

namespace coincidence::sim {

class Observer {
 public:
  virtual ~Observer() = default;

  /// A message entered the network (or a self-queue). `sender_correct`
  /// is false for corrupted senders and adversary injections.
  virtual void on_send(const Message& /*msg*/, bool /*sender_correct*/) {}

  /// A message was handed to its receiver.
  virtual void on_deliver(const Message& /*msg*/) {}

  /// A process was corrupted with the given behaviour.
  virtual void on_corrupt(ProcessId /*target*/, const FaultPlan& /*plan*/) {}

  /// A kCrashRecover process came back up (after on_recover ran).
  virtual void on_recover(ProcessId /*target*/) {}

  /// The lossy link layer dropped `msg` (it will never be delivered).
  virtual void on_link_drop(const Message& /*msg*/) {}

  /// The lossy link layer enqueued an extra copy / stale replay of `msg`.
  virtual void on_link_duplicate(const Message& /*msg*/) {}
};

}  // namespace coincidence::sim
