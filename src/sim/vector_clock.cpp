#include "sim/vector_clock.h"

#include <algorithm>

#include "common/errors.h"

namespace coincidence::sim {

void VectorClock::tick(std::size_t i) {
  COIN_REQUIRE(i < ticks_.size(), "VectorClock::tick: bad index");
  ++ticks_[i];
}

void VectorClock::merge(const VectorClock& other) {
  COIN_REQUIRE(ticks_.size() == other.ticks_.size(),
               "VectorClock::merge: size mismatch");
  for (std::size_t i = 0; i < ticks_.size(); ++i)
    ticks_[i] = std::max(ticks_[i], other.ticks_[i]);
}

bool VectorClock::happens_before(const VectorClock& a, const VectorClock& b) {
  COIN_REQUIRE(a.size() == b.size(), "happens_before: size mismatch");
  bool strictly_less = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.ticks_[i] > b.ticks_[i]) return false;
    if (a.ticks_[i] < b.ticks_[i]) strictly_less = true;
  }
  return strictly_less;
}

bool VectorClock::concurrent(const VectorClock& a, const VectorClock& b) {
  return !happens_before(a, b) && !happens_before(b, a) && !(a == b);
}

}  // namespace coincidence::sim
