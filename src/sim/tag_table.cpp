#include "sim/tag_table.h"

#include <mutex>
#include <ostream>

#include "common/errors.h"

namespace coincidence::sim {

TagTable& TagTable::instance() {
  static TagTable table;
  return table;
}

TagTable::TagTable() {
  // Id 0 is the empty tag, so a default Tag resolves without interning.
  intern(std::string_view{});
}

TagId TagTable::intern(std::string_view s) {
  // Fast path: parallel drivers intern the same bounded tag grammar over
  // and over, so nearly every call is a lookup hit — readers share mu_.
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = index_.find(s);
    if (it != index_.end()) return it->second;
  }

  std::unique_lock<std::shared_mutex> lock(mu_);
  // Re-check: another thread may have interned `s` between the locks.
  auto it = index_.find(s);
  if (it != index_.end()) return it->second;

  const std::uint32_t id = size_.load(std::memory_order_relaxed);
  const std::size_t chunk_idx = id >> kChunkShift;
  COIN_REQUIRE(chunk_idx < kMaxChunks, "TagTable: tag universe exhausted");
  Chunk* chunk = chunks_[chunk_idx].load(std::memory_order_relaxed);
  if (chunk == nullptr) {
    chunk = new Chunk();
    chunks_[chunk_idx].store(chunk, std::memory_order_relaxed);
  }
  std::string& stored = (*chunk)[id & (kChunkSize - 1)];
  stored.assign(s);
  index_.emplace(std::string_view(stored), id);
  // Publish: readers that acquire size_ >= id+1 see the chunk pointer
  // and the stored string.
  size_.store(id + 1, std::memory_order_release);
  return id;
}

const std::string& TagTable::str(TagId id) const {
  COIN_REQUIRE(id < size_.load(std::memory_order_acquire),
               "TagTable: unknown tag id");
  const Chunk* chunk =
      chunks_[id >> kChunkShift].load(std::memory_order_relaxed);
  return (*chunk)[id & (kChunkSize - 1)];
}

std::ostream& operator<<(std::ostream& os, const Tag& tag) {
  return os << tag.str();
}

}  // namespace coincidence::sim
