#include "sim/invariants.h"

#include <sstream>

namespace coincidence::sim {

InvariantChecker::InvariantChecker(Config cfg)
    : cfg_(std::move(cfg)), recovered_(cfg_.n, false) {}

void InvariantChecker::violate(std::string invariant, std::string detail) {
  Violation v;
  v.invariant = std::move(invariant);
  v.detail = std::move(detail);
  v.chaos_phase = current_phase_;
  violations_.push_back(std::move(v));
}

bool InvariantChecker::in_scope(const std::string& scope) const {
  for (const std::string& s : cfg_.agreement_scopes)
    if (s == scope) return true;
  return false;
}

void InvariantChecker::on_send(const Message& msg, bool sender_correct) {
  if (msg.words == 0 || msg.words > cfg_.max_message_words) {
    std::ostringstream os;
    os << "message " << msg.tag.str() << " from " << msg.from << " carries "
       << msg.words << " words";
    violate("word-count", os.str());
  }
  // Mirror Metrics::record_send exactly: correct senders' non-repair
  // traffic is the §2 measure; the finalize cross-check must reproduce
  // it to the word.
  if (sender_correct && !msg.retransmit) correct_words_tally_ += msg.words;
}

void InvariantChecker::on_decide(const DecideEvent& event) {
  if (!event.correct) return;  // Byzantine "decisions" carry no promise
  const std::string& scope = event.scope.str();
  if (!in_scope(scope)) return;

  // Integrity / no-divergence-across-recovery: a process may report its
  // decision more than once (e.g. after a crash-recovery replays the
  // deciding round), but never a *different* value.
  const auto who_key = std::make_pair(scope, event.who);
  auto prior = decided_.find(who_key);
  if (prior != decided_.end()) {
    if (prior->second != event.value) {
      std::ostringstream os;
      os << "process " << event.who << " decided " << prior->second
         << " then " << event.value << " in scope " << scope
         << (event.who < recovered_.size() && recovered_[event.who]
                 ? " (across a recovery)"
                 : "");
      violate("integrity", os.str());
    }
  } else {
    decided_.emplace(who_key, event.value);
  }

  auto first = first_decision_.find(scope);
  if (first != first_decision_.end()) {
    if (first->second != event.value) {
      std::ostringstream os;
      os << "scope " << scope << ": process " << event.who << " decided "
         << event.value << " but an earlier correct process decided "
         << first->second;
      violate("agreement", os.str());
    }
  } else {
    first_decision_.emplace(scope, event.value);
  }

  if (cfg_.expected_decision && event.value != *cfg_.expected_decision) {
    std::ostringstream os;
    os << "scope " << scope << ": process " << event.who << " decided "
       << event.value << " against unanimous input "
       << *cfg_.expected_decision;
    violate("validity", os.str());
  }
}

void InvariantChecker::on_corrupt(ProcessId target,
                                  const FaultPlan& /*plan*/) {
  // The runtime only surfaces *fresh* corruptions through this hook, so
  // counting calls counts distinct corrupted processes.
  ++fresh_corruptions_;
  if (fresh_corruptions_ > cfg_.f) {
    std::ostringstream os;
    os << "corruption of process " << target << " is number "
       << fresh_corruptions_ << " against budget f=" << cfg_.f;
    violate("budget", os.str());
  }
}

void InvariantChecker::on_recover(ProcessId target) {
  if (target < recovered_.size()) recovered_[target] = true;
}

void InvariantChecker::on_chaos_phase(std::size_t index, const char* /*kind*/,
                                      bool begin, std::uint64_t /*at*/) {
  if (begin) current_phase_ = index;
}

void InvariantChecker::finalize(std::uint64_t metrics_correct_words,
                                std::size_t held_remaining,
                                std::size_t corrupted_count) {
  if (correct_words_tally_ != metrics_correct_words) {
    std::ostringstream os;
    os << "observer-side correct-word tally " << correct_words_tally_
       << " != Metrics::correct_words() " << metrics_correct_words;
    violate("word-count", os.str());
  }
  if (held_remaining != 0) {
    std::ostringstream os;
    os << held_remaining
       << " messages still held by an unhealed chaos partition at run end";
    violate("heal", os.str());
  }
  if (corrupted_count > cfg_.f) {
    std::ostringstream os;
    os << "final corrupted count " << corrupted_count << " exceeds f="
       << cfg_.f;
    violate("budget", os.str());
  }
}

std::string InvariantChecker::describe(const Violation& v) {
  std::ostringstream os;
  os << "invariant=" << v.invariant << " phase=";
  if (v.chaos_phase == static_cast<std::size_t>(-1))
    os << "-";
  else
    os << v.chaos_phase;
  os << " detail=\"" << v.detail << '"';
  return os.str();
}

}  // namespace coincidence::sim
