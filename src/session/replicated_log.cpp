#include "session/replicated_log.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "common/errors.h"
#include "common/rng.h"

namespace coincidence::session {

LogProcess::LogProcess(LogConfig cfg) : cfg_(std::move(cfg)) {
  COIN_REQUIRE(cfg_.total_slots > 0, "LogProcess: need at least one slot");
  COIN_REQUIRE(cfg_.pipeline_depth > 0, "LogProcess: depth must be >= 1");
  COIN_REQUIRE(cfg_.batch_size > 0, "LogProcess: batch must be >= 1");
  slots_.reserve(cfg_.total_slots);
}

Bytes LogProcess::batch_for(sim::ProcessId proposer,
                            std::size_t slot) const {
  // Simulated clients: every process can regenerate any proposer's
  // stream (the seed is shared config), which is what lets tests check
  // that a committed batch is exactly some proposer's honest proposal.
  std::string batch;
  for (std::size_t j = 0; j < cfg_.batch_size; ++j) {
    const std::uint64_t idx = slot * cfg_.batch_size + j;
    std::uint64_t state = cfg_.client_seed ^
                          (static_cast<std::uint64_t>(proposer) *
                           0x9E3779B97F4A7C15ULL) ^
                          (idx * 0xD1B54A32D192ED03ULL);
    char token[64];
    std::snprintf(token, sizeof token, "c%u-%llu:%016llx",
                  static_cast<unsigned>(proposer),
                  static_cast<unsigned long long>(idx),
                  static_cast<unsigned long long>(splitmix64(state)));
    if (!batch.empty()) batch.push_back('\n');
    batch += token;
  }
  return bytes_of(batch);
}

void LogProcess::on_start(sim::Context& ctx) {
  self_ = ctx.self();
  pump(ctx);  // opens the first pipeline_depth slots
}

void LogProcess::on_message(sim::Context& ctx, const sim::Message& msg) {
  const auto k = slot_of_tag(msg.tag);
  if (!k) return;  // foreign tag
  if (*k < slots_.size()) {
    slots_[*k]->on_message(ctx, msg);
    pump(ctx);
  } else if (*k < cfg_.total_slots) {
    backlog_.push_back(msg);
  }
}

void LogProcess::on_wakeup(sim::Context& ctx) {
  for (auto& slot : slots_) slot->on_wakeup(ctx);
  pump(ctx);
}

void LogProcess::pump(sim::Context& ctx) {
  bool progress = true;
  while (progress) {
    progress = false;
    // Latch fresh local decisions (any order across the pipeline).
    for (std::size_t k = 0; k < slots_.size(); ++k) {
      if (slot_done_[k] || !slots_[k]->decided()) continue;
      slot_done_[k] = true;
      ++decided_count_;
      decided_at_[k] = ctx.now();
      progress = true;
    }
    // Open the next slot while the pipeline has room.
    if (slots_.size() < cfg_.total_slots &&
        slots_.size() - decided_count_ < cfg_.pipeline_depth) {
      activate_slot(ctx);
      progress = true;
    }
    // Extend the contiguous committed prefix.
    while (log_.size() < slots_.size() && slot_done_[log_.size()]) {
      const std::size_t s = log_.size();
      const Bytes& value = slots_[s]->decided_value();
      log_.push_back(value);
      committed_at_[s] = ctx.now();
      if (!value.empty()) {
        // Batches are newline-joined request tokens.
        requests_committed_ +=
            1 + static_cast<std::uint64_t>(
                    std::count(value.begin(), value.end(), '\n'));
      }
      progress = true;
    }
  }
}

void LogProcess::activate_slot(sim::Context& ctx) {
  const std::size_t k = slots_.size();
  ba::MultiValuedBa::Config mcfg;
  mcfg.tag = slot_tag(k);
  mcfg.params = cfg_.params;
  mcfg.vrf = cfg_.vrf;
  mcfg.registry = cfg_.registry;
  mcfg.sampler = cfg_.sampler;
  mcfg.signer = cfg_.signer;
  mcfg.batcher = cfg_.batcher;
  mcfg.max_rounds = cfg_.max_rounds;
  mcfg.extra_rounds = cfg_.extra_rounds;
  mcfg.skip_timeout = cfg_.skip_timeout;
  mcfg.skip_max_attempts = cfg_.skip_max_attempts;
  mcfg.max_candidates = cfg_.max_candidates;
  mcfg.rbc = cfg_.rbc;
  slots_.push_back(std::make_unique<ba::MultiValuedBa>(
      std::move(mcfg), batch_for(self_, k)));
  slot_done_.push_back(false);
  activated_at_.push_back(ctx.now());
  decided_at_.push_back(0);
  committed_at_.push_back(0);
  slots_.back()->on_start(ctx);
  // Replay traffic that outran the local activation; messages for still-
  // closed slots go back to the queue (the replay can grow it).
  std::vector<sim::Message> pending;
  pending.swap(backlog_);
  for (auto& m : pending) {
    const auto s = slot_of_tag(m.tag);
    if (s && *s == k)
      slots_[k]->on_message(ctx, m);
    else
      backlog_.push_back(std::move(m));
  }
}

std::optional<std::size_t> LogProcess::slot_of_tag(const sim::Tag& tag) {
  if (const std::uint32_t* cached = slot_cache_.find(tag.id()))
    return *cached == 0 ? std::nullopt
                        : std::optional<std::size_t>(*cached - 1);
  const std::string& t = tag.str();
  const std::size_t base = cfg_.slot_prefix.size();
  std::optional<std::size_t> result;
  if (t.size() > base && t.compare(0, base, cfg_.slot_prefix) == 0) {
    std::size_t k = 0;
    std::size_t i = base;
    bool any = false;
    while (i < t.size() && t[i] >= '0' && t[i] <= '9') {
      k = k * 10 + static_cast<std::size_t>(t[i] - '0');
      ++i;
      any = true;
    }
    if (any && (i == t.size() || t[i] == '/')) result = k;
  }
  slot_cache_[tag.id()] =
      result ? static_cast<std::uint32_t>(*result) + 1 : 0;
  return result;
}

crypto::Digest LogProcess::log_fingerprint() const {
  Bytes buf;
  for (const Bytes& entry : log_) {
    append(buf, bytes_of_u64(entry.size()));
    append(buf, entry);
  }
  return crypto::sha256(buf);
}

std::uint64_t LogProcess::decide_latency(std::size_t slot) const {
  COIN_REQUIRE(slot < slots_.size() && slot_done_[slot],
               "LogProcess: slot not decided");
  return decided_at_[slot] - activated_at_[slot];
}

std::uint64_t LogProcess::commit_latency(std::size_t slot) const {
  COIN_REQUIRE(slot < log_.size(), "LogProcess: slot not committed");
  return committed_at_[slot] - activated_at_[slot];
}

std::uint64_t LogProcess::rounds_skipped() const {
  std::uint64_t total = 0;
  for (const auto& slot : slots_) total += slot->rounds_skipped();
  return total;
}

std::uint64_t LogProcess::max_decided_round() const {
  std::uint64_t max_round = 0;
  for (std::size_t k = 0; k < slots_.size(); ++k)
    if (slot_done_[k])
      max_round = std::max(max_round, slots_[k]->decided_round());
  return max_round;
}

}  // namespace coincidence::session
