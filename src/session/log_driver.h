// Harness driver for the replicated-log layer: one call from an Env and
// a set of options to a finished LogReport — the session-layer analogue
// of core::run_agreement. Runs n LogProcesses in one Simulation (legacy
// or sharded engine, per options), waits until every correct process
// committed the full log, and distils throughput / latency / agreement
// telemetry.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/env.h"
#include "session/replicated_log.h"

namespace coincidence::session {

struct LogRunOptions {
  std::size_t slots = 8;
  std::size_t pipeline_depth = 4;
  std::size_t batch_size = 4;
  std::size_t silent_faults = 0;
  std::uint64_t sim_seed = 1;

  /// Round-skip fallback budget per inner BA (ba_whp.h). kAutoSkip
  /// scales with n and the pipeline depth — concurrent slots share the
  /// delivery clock, so a healthy round takes proportionally longer
  /// when more slots are in flight. 0 disables the fallback.
  static constexpr std::uint64_t kAutoSkip = ~0ULL;
  std::uint64_t skip_timeout = kAutoSkip;

  /// Sharded superstep engine (sim/simulation.h). 0 = legacy loop.
  std::size_t shards = 0;
  std::size_t threads = 0;

  std::uint64_t max_rounds = 32;
  std::size_t max_candidates = 8;
  std::uint64_t client_seed = 0xC11E57;

  /// Proposal-dissemination backend for every slot (ba/broadcast.h).
  ba::RbcBackend rbc = ba::RbcBackend::kBracha;
};

struct LogReport {
  std::size_t slots = 0;
  /// Every correct process committed every slot.
  bool all_committed = false;
  /// All correct processes' committed logs are byte-identical.
  bool agreement = true;
  std::uint64_t requests_committed = 0;  // per correct process
  std::size_t noop_slots = 0;

  std::uint64_t deliveries = 0;
  std::uint64_t correct_words = 0;
  std::uint64_t messages = 0;
  std::uint64_t duration = 0;  // max causal depth
  std::uint64_t words_per_slot = 0;
  /// Committed requests per 100k delivery events — the simulator's
  /// clock-free "requests/s".
  double requests_per_100k_deliveries = 0.0;

  /// Slot activation -> local decision, across all correct processes
  /// and slots, in delivery events.
  std::uint64_t decide_latency_p50 = 0;
  std::uint64_t decide_latency_p90 = 0;
  std::uint64_t decide_latency_max = 0;

  std::uint64_t rounds_skipped = 0;  // summed over processes and slots
  std::uint64_t max_decided_round = 0;
  /// Hex log fingerprint shared by the correct processes (empty until
  /// the first correct process commits the full log).
  std::string fingerprint;
};

/// The effective skip budget kAutoSkip resolves to (exposed so benches
/// and tests can report it).
std::uint64_t auto_skip_timeout(std::size_t n, std::size_t pipeline_depth);

LogReport run_replicated_log(const core::Env& env,
                             const LogRunOptions& opts);

}  // namespace coincidence::session
