#include "session/log_driver.h"

#include <algorithm>

#include "common/bytes.h"
#include "common/errors.h"
#include "sim/simulation.h"

namespace coincidence::session {

std::uint64_t auto_skip_timeout(std::size_t n, std::size_t pipeline_depth) {
  // A healthy BA round at n=48 burns a few thousand deliveries per slot;
  // concurrent slots multiplex one delivery clock, so the stall horizon
  // scales with the in-flight depth. Far above one round, far below the
  // run budget: false skips cost fresh committees (harmless), late
  // skips cost wall-clock.
  return 192ULL * n * std::max<std::size_t>(pipeline_depth, 1);
}

LogReport run_replicated_log(const core::Env& env,
                             const LogRunOptions& opts) {
  const std::size_t n = env.n();
  COIN_REQUIRE(opts.silent_faults <= env.f(),
               "run_replicated_log: faults exceed f");

  sim::SimConfig cfg;
  cfg.n = n;
  cfg.f = opts.silent_faults;
  cfg.seed = opts.sim_seed;
  cfg.shards = opts.shards;
  cfg.threads = opts.threads;
  sim::Simulation sim(cfg);

  LogConfig lcfg;
  lcfg.params = env.params;
  lcfg.vrf = env.vrf;
  lcfg.registry = env.registry;
  lcfg.sampler = env.sampler;
  lcfg.signer = env.signer;
  lcfg.batcher = env.batcher;
  lcfg.total_slots = opts.slots;
  lcfg.pipeline_depth = opts.pipeline_depth;
  lcfg.batch_size = opts.batch_size;
  lcfg.max_rounds = opts.max_rounds;
  lcfg.max_candidates = opts.max_candidates;
  lcfg.client_seed = opts.client_seed;
  lcfg.rbc = opts.rbc;
  lcfg.skip_timeout = opts.skip_timeout == LogRunOptions::kAutoSkip
                          ? auto_skip_timeout(n, opts.pipeline_depth)
                          : opts.skip_timeout;

  for (std::size_t i = 0; i < n; ++i)
    sim.add_process(std::make_unique<LogProcess>(lcfg));
  sim::ProcessId next = static_cast<sim::ProcessId>(n);
  for (std::size_t i = 0; i < opts.silent_faults; ++i)
    sim.corrupt(--next, sim::FaultPlan::silent());

  auto log_of = [&](sim::ProcessId i) -> LogProcess& {
    return dynamic_cast<LogProcess&>(sim.process(i));
  };

  sim.start();
  sim.run_until([&] {
    for (sim::ProcessId i = 0; i < n; ++i) {
      if (sim.is_corrupted(i)) continue;
      if (!log_of(i).all_committed()) return false;
    }
    return true;
  });

  LogReport report;
  report.slots = opts.slots;
  report.all_committed = true;
  std::vector<std::uint64_t> latencies;
  bool have_first = false;
  crypto::Digest first_fp{};
  for (sim::ProcessId i = 0; i < n; ++i) {
    if (sim.is_corrupted(i)) continue;
    LogProcess& log = log_of(i);
    if (!log.all_committed()) {
      report.all_committed = false;
      continue;
    }
    const crypto::Digest fp = log.log_fingerprint();
    if (!have_first) {
      have_first = true;
      first_fp = fp;
      report.fingerprint = to_hex(fp);
      report.requests_committed = log.requests_committed();
      for (std::size_t s = 0; s < opts.slots; ++s)
        if (log.committed(s).empty()) ++report.noop_slots;
    } else if (fp != first_fp) {
      report.agreement = false;
    }
    for (std::size_t s = 0; s < opts.slots; ++s)
      latencies.push_back(log.decide_latency(s));
    report.rounds_skipped += log.rounds_skipped();
    report.max_decided_round =
        std::max(report.max_decided_round, log.max_decided_round());
  }

  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    report.decide_latency_p50 = latencies[latencies.size() / 2];
    report.decide_latency_p90 = latencies[latencies.size() * 9 / 10];
    report.decide_latency_max = latencies.back();
  }
  report.deliveries = sim.deliveries();
  report.correct_words = sim.metrics().correct_words();
  report.messages = sim.metrics().messages_sent();
  for (sim::ProcessId i = 0; i < n; ++i)
    report.duration = std::max(report.duration, sim.depth_of(i));
  report.words_per_slot =
      opts.slots ? report.correct_words / opts.slots : 0;
  if (report.deliveries > 0)
    report.requests_per_100k_deliveries =
        static_cast<double>(report.requests_committed) * 100000.0 /
        static_cast<double>(report.deliveries);
  return report;
}

}  // namespace coincidence::session
