// Replicated log over pipelined multivalued BA slots — the application
// layer the paper's §3 remark ("setup has to occur once and may be used
// for any number of BA instances") is ultimately for: a state-machine-
// replication log where slot k's value is agreed by a MultiValuedBa
// instance tagged "slot<k>", all slots sharing one PKI/VRF setup.
//
// Each process carries an unbounded stream of simulated client requests
// (deterministically generated from LogConfig::client_seed, so runs are
// replayable). For slot k it proposes a batch of batch_size of its own
// requests; the slot's MvBa adopts exactly one proposer's batch (or the
// no-op value when every examined candidate loses its race), and every
// correct process appends the same payload at the same position.
//
// Pipelining: at most pipeline_depth slots are undecided ("in flight")
// at once. Slot k activates locally as soon as fewer than depth earlier
// slots are still undecided, so independent slots overlap instead of
// running lock-step; decisions may land out of order, and the log
// commits its contiguous decided prefix. Messages for slots a peer has
// not activated yet are backlogged and replayed on activation, exactly
// like BaWhp's round backlog.
//
// Exactly-once request semantics are out of scope here (a real system
// would dedup against the committed prefix); the layer reports honest
// counts of what it committed.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ba/mv_ba.h"
#include "common/bytes.h"
#include "crypto/sha256.h"
#include "sim/flat_map64.h"
#include "sim/process.h"

namespace coincidence::session {

struct LogConfig {
  /// Slot k's MvBa instance tag is "<slot_prefix><k>".
  std::string slot_prefix = "slot";
  committee::Params params;
  std::shared_ptr<const crypto::Vrf> vrf;
  std::shared_ptr<const crypto::KeyRegistry> registry;
  std::shared_ptr<const committee::Sampler> sampler;
  std::shared_ptr<const crypto::Signer> signer;
  std::shared_ptr<coin::BatchVerifier> batcher;

  std::size_t total_slots = 8;
  /// Max locally-undecided slots in flight at once (>= 1).
  std::size_t pipeline_depth = 4;
  /// Client requests batched into each proposal.
  std::size_t batch_size = 4;

  // Forwarded to every slot's MultiValuedBa (see mv_ba.h / ba_whp.h).
  std::uint64_t max_rounds = 32;
  std::uint64_t extra_rounds = 4;
  std::uint64_t skip_timeout = 0;
  std::uint32_t skip_max_attempts = 8;
  std::size_t max_candidates = 8;
  /// Dissemination backend for every slot's proposal broadcasts
  /// (ba/broadcast.h): Bracha or erasure-coded AVID-M.
  ba::RbcBackend rbc = ba::RbcBackend::kBracha;

  /// Seed of the simulated client-request stream.
  std::uint64_t client_seed = 0xC11E57;
};

class LogProcess final : public sim::Process {
 public:
  explicit LogProcess(LogConfig cfg);

  void on_start(sim::Context& ctx) override;
  void on_message(sim::Context& ctx, const sim::Message& msg) override;
  void on_wakeup(sim::Context& ctx) override;

  std::size_t slots_activated() const { return slots_.size(); }
  std::size_t slots_decided() const { return decided_count_; }
  /// Length of the contiguous committed prefix.
  std::size_t committed_count() const { return log_.size(); }
  bool all_committed() const { return log_.size() == cfg_.total_slots; }
  const Bytes& committed(std::size_t slot) const { return log_.at(slot); }
  /// Requests in the committed prefix (no-op slots contribute zero).
  std::uint64_t requests_committed() const { return requests_committed_; }

  /// sha256 over the length-prefixed committed entries — byte-equal
  /// across correct processes iff their logs agree.
  crypto::Digest log_fingerprint() const;

  /// Telemetry (delivery-event clock): per-slot activation -> local
  /// decision, and activation -> contiguous commit. Require the slot to
  /// have reached the respective state.
  std::uint64_t decide_latency(std::size_t slot) const;
  std::uint64_t commit_latency(std::size_t slot) const;

  std::uint64_t rounds_skipped() const;
  std::uint64_t max_decided_round() const;
  /// Whitebox: the MvBa instance of an activated slot (tests, stall
  /// diagnostics).
  const ba::MultiValuedBa& slot_instance(std::size_t k) const {
    return *slots_.at(k);
  }
  /// The proposal this process would make for `slot` (exposed so tests
  /// can check validity: every committed batch is some process's batch).
  Bytes batch_for(sim::ProcessId proposer, std::size_t slot) const;

 private:
  std::string slot_tag(std::size_t k) const {
    return cfg_.slot_prefix + std::to_string(k);
  }
  /// The driver loop: latch local slot decisions, open new slots while
  /// the pipeline has room, extend the contiguous committed prefix.
  void pump(sim::Context& ctx);
  void activate_slot(sim::Context& ctx);
  std::optional<std::size_t> slot_of_tag(const sim::Tag& tag);

  LogConfig cfg_;
  sim::ProcessId self_ = 0;  // bound in on_start

  // Slot k's instance lives at slots_[k]; activation is strictly
  // sequential. Done flags latch decided() transitions.
  std::vector<std::unique_ptr<ba::MultiValuedBa>> slots_;
  std::vector<bool> slot_done_;
  std::size_t decided_count_ = 0;
  std::vector<sim::Message> backlog_;  // for slots not yet activated
  // TagId -> slot index + 1 (0 = foreign tag), as in InstanceMux.
  sim::FlatMap64<std::uint32_t> slot_cache_;

  std::vector<Bytes> log_;  // committed contiguous prefix
  std::uint64_t requests_committed_ = 0;

  std::vector<std::uint64_t> activated_at_;
  std::vector<std::uint64_t> decided_at_;
  std::vector<std::uint64_t> committed_at_;
};

}  // namespace coincidence::session
