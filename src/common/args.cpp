#include "common/args.h"

#include <cstdlib>

namespace coincidence {

Args::Args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--", 0) != 0) {
      positional_.push_back(a);
      continue;
    }
    a = a.substr(2);
    auto eq = a.find('=');
    if (eq != std::string::npos) {
      kv_[a.substr(0, eq)] = a.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      kv_[a] = argv[++i];
    } else {
      kv_[a] = "true";
    }
  }
}

bool Args::has(const std::string& key) const { return kv_.count(key) > 0; }

std::string Args::get(const std::string& key, const std::string& def) const {
  auto it = kv_.find(key);
  return it == kv_.end() ? def : it->second;
}

std::int64_t Args::get_int(const std::string& key, std::int64_t def) const {
  auto it = kv_.find(key);
  return it == kv_.end() ? def : std::strtoll(it->second.c_str(), nullptr, 10);
}

double Args::get_double(const std::string& key, double def) const {
  auto it = kv_.find(key);
  return it == kv_.end() ? def : std::strtod(it->second.c_str(), nullptr);
}

bool Args::get_bool(const std::string& key, bool def) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace coincidence
