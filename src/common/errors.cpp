#include "common/errors.h"

#include <sstream>

namespace coincidence::detail {

void fail_require(const char* expr, const char* file, int line,
                  const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw PreconditionError(os.str());
}

}  // namespace coincidence::detail
