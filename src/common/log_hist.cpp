#include "common/log_hist.h"

#include <bit>
#include <ostream>
#include <sstream>

namespace coincidence {

std::size_t LogHistogram::bucket_of(std::uint64_t value) {
  return static_cast<std::size_t>(std::bit_width(value));
}

std::uint64_t LogHistogram::percentile(double q) const {
  if (total_ == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Smallest cumulative count covering q of the sample; q=0 lands in the
  // first non-empty bucket, q=1 in the last.
  std::uint64_t need = static_cast<std::uint64_t>(
      q * static_cast<double>(total_));
  if (need == 0) need = 1;
  if (need > total_) need = total_;
  std::uint64_t seen = 0;
  for (std::size_t k = 0; k < kBuckets; ++k) {
    seen += counts_[k];
    if (seen >= need) return bucket_upper(k);
  }
  return max_;
}

std::string LogHistogram::brief() const {
  std::ostringstream os;
  bool first = true;
  for (std::size_t k = 0; k < kBuckets; ++k) {
    if (counts_[k] == 0) continue;
    if (!first) os << ' ';
    os << k << ':' << counts_[k];
    first = false;
  }
  return os.str();
}

void LogHistogram::to_json(std::ostream& os) const {
  os << "{\"total\":" << total_ << ",\"sum\":" << sum_ << ",\"max\":" << max_
     << ",\"buckets\":[";
  bool first = true;
  for (std::size_t k = 0; k < kBuckets; ++k) {
    if (counts_[k] == 0) continue;
    if (!first) os << ',';
    os << '[' << k << ',' << counts_[k] << ']';
    first = false;
  }
  os << "]}";
}

void LogHistogram::to_prometheus(std::ostream& os, const std::string& name,
                                 const std::string& labels) const {
  const std::string sep = labels.empty() ? "" : ",";
  std::uint64_t cumulative = 0;
  for (std::size_t k = 0; k < kBuckets; ++k) {
    if (counts_[k] == 0) continue;
    cumulative += counts_[k];
    os << name << "_bucket{" << labels << sep << "le=\"" << bucket_upper(k)
       << "\"} " << cumulative << '\n';
  }
  os << name << "_bucket{" << labels << sep << "le=\"+Inf\"} " << total_
     << '\n';
  os << name << "_sum{" << labels << "} " << sum_ << '\n';
  os << name << "_count{" << labels << "} " << total_ << '\n';
}

}  // namespace coincidence
