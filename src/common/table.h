// ASCII table rendering for the benchmark harnesses, so every bench binary
// prints the same aligned "paper table" style rows.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace coincidence {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds one row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Renders with a header rule and right-padded columns.
  void print(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

  /// Formats a double with `prec` digits after the point.
  static std::string num(double v, int prec = 2);
  /// Formats an integer with thousands separators (1 234 567).
  static std::string count(unsigned long long v);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace coincidence
