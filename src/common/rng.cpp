#include "common/rng.h"

#include "common/errors.h"

namespace coincidence {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // All-zero state is the one invalid state of xoshiro; splitmix64 cannot
  // produce four zero outputs in a row, but keep the guard explicit.
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  COIN_REQUIRE(bound > 0, "next_below: bound must be positive");
  // Lemire's multiply-shift rejection method.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

std::vector<std::uint8_t> Rng::next_bytes(std::size_t n) {
  std::vector<std::uint8_t> out(n);
  std::size_t i = 0;
  while (i < n) {
    std::uint64_t w = next_u64();
    for (int b = 0; b < 8 && i < n; ++b, ++i) {
      out[i] = static_cast<std::uint8_t>(w & 0xff);
      w >>= 8;
    }
  }
  return out;
}

Rng Rng::fork() {
  return Rng(next_u64());
}

}  // namespace coincidence
