// Minimal binary serialization for protocol messages.
//
// Messages on the simulated network are carried as byte strings; each
// protocol defines an encode/decode pair with these helpers. The format is
// length-prefixed and self-delimiting, so decoders can reject truncated or
// trailing data — Byzantine senders exercise those paths in the tests.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/bytes.h"

namespace coincidence {

/// Appends typed fields to an output byte string.
class Writer {
 public:
  Writer& u8(std::uint8_t v);
  Writer& u32(std::uint32_t v);
  Writer& u64(std::uint64_t v);
  /// Length-prefixed byte string (u32 length + raw bytes).
  Writer& blob(BytesView data);
  /// Length-prefixed UTF-8 string.
  Writer& str(std::string_view s);

  const Bytes& bytes() const { return out_; }
  Bytes take() { return std::move(out_); }

 private:
  Bytes out_;
};

/// Reads typed fields back; throws CodecError on truncation. Call done()
/// at the end of a decode to reject trailing garbage.
class Reader {
 public:
  explicit Reader(BytesView data) : data_(data) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  Bytes blob();
  /// Like blob(), but returns a view into the underlying buffer instead
  /// of copying. Valid only while that buffer outlives the view — hot
  /// paths decode, verify, and drop the view before the message goes
  /// away.
  BytesView blob_view();
  std::string str();

  bool empty() const { return pos_ == data_.size(); }
  /// Throws CodecError unless the whole input was consumed.
  void done() const;

 private:
  void need(std::size_t n) const;

  BytesView data_;
  std::size_t pos_ = 0;
};

}  // namespace coincidence
