#include "common/parallel.h"

namespace coincidence {

std::size_t default_thread_count() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = default_thread_count();
  workers_.reserve(threads - 1);
  for (std::size_t i = 0; i + 1 < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::size_t)>* body;
    std::size_t count;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      body = body_;
      count = count_;
    }
    work(*body, count);
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (--active_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::work(const std::function<void(std::size_t)>& body,
                      std::size_t count) {
  for (;;) {
    std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= count) return;
    try {
      body(i);
    } catch (...) {
      std::lock_guard<std::mutex> lk(err_mu_);
      if (!err_ || i < err_index_) {
        err_ = std::current_exception();
        err_index_ = i;
      }
    }
  }
}

void ThreadPool::for_each_index(std::size_t count,
                                const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  {
    std::lock_guard<std::mutex> lk(mu_);
    body_ = &body;
    count_ = count;
    next_.store(0, std::memory_order_relaxed);
    active_ = workers_.size();
    ++generation_;
    err_ = nullptr;
  }
  work_cv_.notify_all();
  work(body, count);  // the caller is a worker too
  {
    std::unique_lock<std::mutex> lk(mu_);
    done_cv_.wait(lk, [&] { return active_ == 0; });
    body_ = nullptr;
  }
  if (err_) std::rethrow_exception(err_);
}

}  // namespace coincidence
