// Byte-string utilities: the lingua franca between crypto, serialization
// and the simulated network.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace coincidence {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

/// Lowercase hex encoding ("" for empty input).
std::string to_hex(BytesView data);

/// Strict decoder: throws CodecError on odd length or non-hex characters.
Bytes from_hex(std::string_view hex);

/// Copies the raw characters of `s` (no terminator) into a byte string.
Bytes bytes_of(std::string_view s);

/// Big-endian encoding of a 64-bit integer (8 bytes).
Bytes bytes_of_u64(std::uint64_t v);

/// Reads a big-endian u64 from the first 8 bytes of `data`.
std::uint64_t u64_of_bytes(BytesView data);

/// Concatenates any number of byte strings.
Bytes concat(std::initializer_list<BytesView> parts);

/// Appends `suffix` to `dst` in place.
void append(Bytes& dst, BytesView suffix);

/// Constant-time equality (length leaks, contents do not).
bool ct_equal(BytesView a, BytesView b);

}  // namespace coincidence
