// Deterministic pseudo-random number generation for the simulator.
//
// Everything in the simulation that needs randomness draws from an Rng
// seeded explicitly, so every experiment is exactly reproducible from
// (seed, parameters). We implement xoshiro256** (public-domain algorithm
// by Blackman & Vigna) with a splitmix64 seeder — no dependence on the
// platform's std::random_device / distribution implementations, which are
// not reproducible across standard libraries.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace coincidence {

/// splitmix64 step; used for seeding and as a cheap stateless mixer.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** deterministic PRNG.
class Rng {
 public:
  /// Seeds all 256 bits of state from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed);

  /// Uniform 64-bit draw.
  std::uint64_t next_u64();

  /// Uniform draw in [0, bound) — bound must be > 0. Uses rejection
  /// sampling (Lemire) so the result is exactly uniform.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1) with 53 bits of precision.
  double next_double();

  /// Bernoulli trial with success probability p.
  bool next_bool(double p);

  /// Uniform random bytes.
  std::vector<std::uint8_t> next_bytes(std::size_t n);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child generator; used to give each process /
  /// adversary / workload its own stream from one experiment seed.
  Rng fork();

 private:
  std::array<std::uint64_t, 4> s_;
};

}  // namespace coincidence
