#include "common/bytes.h"

#include "common/errors.h"

namespace coincidence {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string to_hex(BytesView data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0x0f]);
  }
  return out;
}

Bytes from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) throw CodecError("from_hex: odd-length input");
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    int hi = hex_value(hex[i]);
    int lo = hex_value(hex[i + 1]);
    if (hi < 0 || lo < 0) throw CodecError("from_hex: non-hex character");
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

Bytes bytes_of(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

Bytes bytes_of_u64(std::uint64_t v) {
  Bytes out(8);
  for (int i = 7; i >= 0; --i) {
    out[i] = static_cast<std::uint8_t>(v & 0xff);
    v >>= 8;
  }
  return out;
}

std::uint64_t u64_of_bytes(BytesView data) {
  COIN_REQUIRE(data.size() >= 8, "u64_of_bytes needs 8 bytes");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | data[i];
  return v;
}

Bytes concat(std::initializer_list<BytesView> parts) {
  std::size_t total = 0;
  for (auto p : parts) total += p.size();
  Bytes out;
  out.reserve(total);
  for (auto p : parts) out.insert(out.end(), p.begin(), p.end());
  return out;
}

void append(Bytes& dst, BytesView suffix) {
  dst.insert(dst.end(), suffix.begin(), suffix.end());
}

bool ct_equal(BytesView a, BytesView b) {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc |= a[i] ^ b[i];
  return acc == 0;
}

}  // namespace coincidence
