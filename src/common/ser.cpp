#include "common/ser.h"

#include "common/errors.h"

namespace coincidence {

Writer& Writer::u8(std::uint8_t v) {
  out_.push_back(v);
  return *this;
}

Writer& Writer::u32(std::uint32_t v) {
  for (int i = 3; i >= 0; --i)
    out_.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
  return *this;
}

Writer& Writer::u64(std::uint64_t v) {
  for (int i = 7; i >= 0; --i)
    out_.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
  return *this;
}

Writer& Writer::blob(BytesView data) {
  COIN_REQUIRE(data.size() <= 0xffffffffULL, "blob too large");
  u32(static_cast<std::uint32_t>(data.size()));
  out_.insert(out_.end(), data.begin(), data.end());
  return *this;
}

Writer& Writer::str(std::string_view s) {
  return blob(BytesView(reinterpret_cast<const std::uint8_t*>(s.data()),
                        s.size()));
}

void Reader::need(std::size_t n) const {
  if (data_.size() - pos_ < n) throw CodecError("Reader: truncated input");
}

std::uint8_t Reader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint32_t Reader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = (v << 8) | data_[pos_++];
  return v;
}

std::uint64_t Reader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | data_[pos_++];
  return v;
}

Bytes Reader::blob() {
  std::uint32_t len = u32();
  need(len);
  Bytes out(data_.begin() + pos_, data_.begin() + pos_ + len);
  pos_ += len;
  return out;
}

BytesView Reader::blob_view() {
  std::uint32_t len = u32();
  need(len);
  BytesView out = data_.subspan(pos_, len);
  pos_ += len;
  return out;
}

std::string Reader::str() {
  Bytes b = blob();
  return std::string(b.begin(), b.end());
}

void Reader::done() const {
  if (pos_ != data_.size()) throw CodecError("Reader: trailing bytes");
}

}  // namespace coincidence
