// Shared thread pool + order-preserving fan-out helper.
//
// Lives in common/ (rather than core/, where it started) so that lower
// layers — notably the coin layer's batch share verification — can fan
// work out without depending on the experiment runner. core/parallel.h
// re-exports these names for its callers and layers the run_agreement
// driver on top.
//
// Work items execute on whatever thread grabs them, but results are
// stored by input index, so parallel_map's output vector is
// bit-identical to a serial loop regardless of thread count or
// scheduling.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace coincidence {

/// Hardware concurrency, clamped to at least 1 (the standard allows 0).
std::size_t default_thread_count();

/// Fixed-size pool of worker threads with a shared atomic work queue.
/// The calling thread participates in every job, so a pool constructed
/// with `threads == 1` runs everything inline on the caller — handy for
/// A/B-ing parallel against serial execution in tests.
///
/// Jobs are NOT reentrant: body(i) must never call back into
/// for_each_index on the same pool.
class ThreadPool {
 public:
  /// `threads` is the TOTAL worker count including the calling thread;
  /// 0 means default_thread_count().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total workers, including the calling thread.
  std::size_t size() const { return workers_.size() + 1; }

  /// Runs body(i) once for every i in [0, count), distributing indices
  /// over the pool via an atomic counter, and blocks until all complete.
  /// If any invocations throw, the exception of the LOWEST failing index
  /// is rethrown (a deterministic choice independent of scheduling).
  void for_each_index(std::size_t count,
                      const std::function<void(std::size_t)>& body);

 private:
  void worker_loop();
  void work(const std::function<void(std::size_t)>& body, std::size_t count);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* body_ = nullptr;
  std::size_t count_ = 0;
  std::atomic<std::size_t> next_{0};
  std::size_t active_ = 0;       // workers still inside the current job
  std::uint64_t generation_ = 0; // bumped per job so workers wake exactly once
  bool stop_ = false;

  std::mutex err_mu_;
  std::exception_ptr err_;
  std::size_t err_index_ = 0;
};

/// Maps fn over [0, count) on the pool, returning results in input order.
/// R must be default-constructible (slot storage before fn(i) fills it).
template <typename Fn>
auto parallel_map(ThreadPool& pool, std::size_t count, Fn&& fn)
    -> std::vector<decltype(fn(std::size_t{}))> {
  std::vector<decltype(fn(std::size_t{}))> out(count);
  pool.for_each_index(count, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace coincidence
