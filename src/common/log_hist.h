// Log-bucketed histogram for run telemetry (ISSUE 4 tentpole).
//
// The telemetry plane records a histogram per (tag, dimension) for every
// delivered message, so the accumulate path must be branch-light and
// allocation-free: values land in power-of-two buckets (bucket k holds
// values with bit_width k, i.e. [2^(k-1), 2^k)), which costs one
// std::bit_width plus one increment. Exact count and sum are kept
// alongside, so means are exact and only percentiles are bucket-
// approximate (reported as the bucket's inclusive upper bound, a
// conservative over-estimate). Buckets are a fixed 65-slot array —
// merging, copying and diffing histograms across runs is trivially
// deterministic.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace coincidence {

class LogHistogram {
 public:
  /// Bucket index for `value`: 0 for value 0, else bit_width(value)
  /// (so bucket k >= 1 spans [2^(k-1), 2^k)).
  static constexpr std::size_t kBuckets = 65;

  void add(std::uint64_t value) {
    ++counts_[bucket_of(value)];
    ++total_;
    sum_ += value;
    if (value > max_) max_ = value;
  }

  void merge(const LogHistogram& other) {
    for (std::size_t i = 0; i < kBuckets; ++i) counts_[i] += other.counts_[i];
    total_ += other.total_;
    sum_ += other.sum_;
    if (other.max_ > max_) max_ = other.max_;
  }

  std::uint64_t total() const { return total_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t max() const { return max_; }
  bool empty() const { return total_ == 0; }
  double mean() const {
    return total_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(total_);
  }

  std::uint64_t bucket_count(std::size_t bucket) const {
    return counts_[bucket];
  }

  /// Inclusive upper bound of a bucket (0, 1, 3, 7, 15, ...).
  static std::uint64_t bucket_upper(std::size_t bucket) {
    if (bucket == 0) return 0;
    if (bucket >= 64) return UINT64_MAX;
    return (std::uint64_t{1} << bucket) - 1;
  }

  /// Bucket-resolution percentile, q in [0, 1]: the upper bound of the
  /// first bucket whose cumulative count reaches q * total (exact for
  /// q = 1 up to bucket resolution; 0 on an empty histogram).
  std::uint64_t percentile(double q) const;

  /// Compact text form "0:3 1:5 4:12" — non-empty buckets only, keyed by
  /// bucket index, plus nothing else (summary values are printed by the
  /// owner). Deterministic.
  std::string brief() const;

  /// JSON object {"total":..,"sum":..,"max":..,"buckets":[[k,count],..]}
  /// with buckets in ascending k, empty buckets omitted. Deterministic.
  void to_json(std::ostream& os) const;

  /// Prometheus histogram exposition: one cumulative `<name>_bucket`
  /// line per non-empty bucket boundary plus `+Inf`, `<name>_sum` and
  /// `<name>_count`. `labels` is the rendered label set without braces
  /// (may be empty), e.g. `phase="coin/first"`.
  void to_prometheus(std::ostream& os, const std::string& name,
                     const std::string& labels) const;

 private:
  static std::size_t bucket_of(std::uint64_t value);

  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t total_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace coincidence
