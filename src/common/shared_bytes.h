// Refcounted immutable payload buffer (ISSUE 3 tentpole).
//
// Message payloads are write-once: a protocol encodes a buffer, the
// network fans it out, receivers only read. SharedBytes makes that
// explicit — the buffer is held behind shared_ptr<const Bytes>, so a
// broadcast to n processes enqueues n refcount bumps instead of n deep
// copies, and replay/duplicate/history entries alias the original
// allocation. Copy-on-write is by construction: the bytes are const, so
// a receiver wanting a mutable copy must take one via to_bytes(), which
// can never affect other holders of the same buffer.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>

#include "common/bytes.h"

namespace coincidence {

class SharedBytes {
 public:
  SharedBytes() = default;  // empty payload, no allocation

  /// Implicit from Bytes so `ctx.send(to, tag, writer.take(), w)` keeps
  /// compiling: moves the buffer behind one shared allocation.
  SharedBytes(Bytes b)
      : data_(b.empty() ? nullptr
                        : std::make_shared<const Bytes>(std::move(b))) {}

  /// Deep copy of a view (the view's storage is not adopted).
  static SharedBytes copy_of(BytesView v) {
    return SharedBytes(Bytes(v.begin(), v.end()));
  }

  const Bytes& bytes() const { return data_ ? *data_ : empty_bytes(); }
  BytesView view() const { return BytesView(bytes()); }
  operator BytesView() const { return view(); }

  const std::uint8_t* data() const { return bytes().data(); }
  std::size_t size() const { return data_ ? data_->size() : 0; }
  bool empty() const { return size() == 0; }

  /// Mutable deep copy — the copy-on-write escape hatch.
  Bytes to_bytes() const { return bytes(); }

  /// Aliasing introspection for tests: two SharedBytes share storage iff
  /// their buffer ids are equal (and non-null).
  const void* buffer_id() const { return data_.get(); }
  long use_count() const { return data_.use_count(); }

  friend bool operator==(const SharedBytes& a, const SharedBytes& b) {
    return a.bytes() == b.bytes();
  }

 private:
  static const Bytes& empty_bytes() {
    static const Bytes kEmpty;
    return kEmpty;
  }

  std::shared_ptr<const Bytes> data_;
};

}  // namespace coincidence
