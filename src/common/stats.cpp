#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

#include "common/errors.h"

namespace coincidence {

double percentile_sorted(const std::vector<double>& sorted, double q) {
  COIN_REQUIRE(!sorted.empty(), "percentile of empty sample");
  COIN_REQUIRE(q >= 0.0 && q <= 1.0, "percentile q out of range");
  if (sorted.size() == 1) return sorted[0];
  double idx = q * static_cast<double>(sorted.size() - 1);
  auto lo = static_cast<std::size_t>(std::floor(idx));
  auto hi = static_cast<std::size_t>(std::ceil(idx));
  double frac = idx - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Summary summarize(std::vector<double> values) {
  Summary s;
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  s.count = values.size();
  s.min = values.front();
  s.max = values.back();
  double sum = 0.0;
  for (double v : values) sum += v;
  s.mean = sum / static_cast<double>(s.count);
  double sq = 0.0;
  for (double v : values) sq += (v - s.mean) * (v - s.mean);
  s.stddev = s.count > 1 ? std::sqrt(sq / static_cast<double>(s.count - 1)) : 0.0;
  s.p50 = percentile_sorted(values, 0.50);
  s.p90 = percentile_sorted(values, 0.90);
  s.p99 = percentile_sorted(values, 0.99);
  return s;
}

Interval wilson_interval(std::size_t successes, std::size_t trials) {
  if (trials == 0) return {0.0, 1.0};
  const double z = 1.959964;  // 95%
  double n = static_cast<double>(trials);
  double p = static_cast<double>(successes) / n;
  double z2 = z * z;
  double denom = 1.0 + z2 / n;
  double center = (p + z2 / (2.0 * n)) / denom;
  double half =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  return {std::max(0.0, center - half), std::min(1.0, center + half)};
}

LinearFit fit_line(const std::vector<double>& xs,
                   const std::vector<double>& ys) {
  COIN_REQUIRE(xs.size() == ys.size(), "fit_line: size mismatch");
  COIN_REQUIRE(xs.size() >= 2, "fit_line: need at least two points");
  double n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
  }
  double denom = n * sxx - sx * sx;
  COIN_REQUIRE(denom != 0.0, "fit_line: degenerate x values");
  LinearFit f;
  f.slope = (n * sxy - sx * sy) / denom;
  f.intercept = (sy - f.slope * sx) / n;
  return f;
}

double loglog_slope(const std::vector<double>& xs,
                    const std::vector<double>& ys) {
  std::vector<double> lx, ly;
  for (std::size_t i = 0; i < xs.size() && i < ys.size(); ++i) {
    if (xs[i] > 0 && ys[i] > 0) {
      lx.push_back(std::log(xs[i]));
      ly.push_back(std::log(ys[i]));
    }
  }
  return fit_line(lx, ly).slope;
}

void Histogram::add(std::uint64_t value) {
  ++bins_[value];
  ++total_;
}

std::size_t Histogram::count(std::uint64_t value) const {
  auto it = bins_.find(value);
  return it == bins_.end() ? 0 : it->second;
}

std::uint64_t Histogram::max_value() const {
  return bins_.empty() ? 0 : bins_.rbegin()->first;
}

std::string Histogram::summary() const {
  std::ostringstream os;
  bool first = true;
  for (const auto& [value, count] : bins_) {
    if (!first) os << ' ';
    os << value << ':' << count;
    first = false;
  }
  return os.str();
}

void Histogram::print(std::ostream& os, std::size_t width) const {
  std::size_t peak = 0;
  for (const auto& [value, count] : bins_) peak = std::max(peak, count);
  if (peak == 0) return;
  for (const auto& [value, count] : bins_) {
    std::size_t bar = std::max<std::size_t>(1, count * width / peak);
    os << value << " | " << std::string(bar, '#') << ' ' << count << '\n';
  }
}

}  // namespace coincidence
