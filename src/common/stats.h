// Small statistics toolkit used by the benchmark harnesses: summary
// statistics, percentiles, binomial confidence intervals and log-log
// slope fits (to estimate empirical complexity exponents).
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace coincidence {

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  // sample standard deviation
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

/// Full-pass summary of a sample (empty input yields all-zero Summary).
Summary summarize(std::vector<double> values);

/// Linear-interpolated percentile of a *sorted* sample, q in [0,1].
double percentile_sorted(const std::vector<double>& sorted, double q);

/// Wilson score interval for a binomial proportion at ~95% confidence.
struct Interval {
  double lo = 0.0;
  double hi = 0.0;
};
Interval wilson_interval(std::size_t successes, std::size_t trials);

/// Least-squares fit of y = a + b*x. Returns {a, b}.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
};
LinearFit fit_line(const std::vector<double>& xs, const std::vector<double>& ys);

/// Slope of log(y) vs log(x): the empirical growth exponent of y(x).
/// Points with x <= 0 or y <= 0 are skipped.
double loglog_slope(const std::vector<double>& xs, const std::vector<double>& ys);

/// Integer-valued histogram (rounds-to-decide distributions etc.).
class Histogram {
 public:
  void add(std::uint64_t value);

  std::size_t total() const { return total_; }
  std::size_t count(std::uint64_t value) const;
  std::uint64_t max_value() const;

  /// "0:12 1:5 3:1" — sorted, zero-count bins omitted.
  std::string summary() const;
  /// One bar row per bin, scaled to `width` characters.
  void print(std::ostream& os, std::size_t width = 40) const;

 private:
  std::map<std::uint64_t, std::size_t> bins_;
  std::size_t total_ = 0;
};

}  // namespace coincidence
