// Error-handling primitives shared across the library.
//
// Protocol code distinguishes two failure classes:
//  * programming errors / violated preconditions  -> COIN_REQUIRE (throws)
//  * adversarial inputs (bad proofs, forged msgs) -> boolean/Result returns
#pragma once

#include <stdexcept>
#include <string>

namespace coincidence {

/// Thrown when a library precondition is violated by the caller.
class PreconditionError : public std::logic_error {
 public:
  explicit PreconditionError(const std::string& what) : std::logic_error(what) {}
};

/// Thrown when a configuration is internally inconsistent (e.g. the
/// epsilon/d windows of the paper are empty for the requested n).
class ConfigError : public std::runtime_error {
 public:
  explicit ConfigError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown on malformed serialized data (truncated reader, bad tag...).
class CodecError : public std::runtime_error {
 public:
  explicit CodecError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void fail_require(const char* expr, const char* file, int line,
                               const std::string& msg);
}  // namespace detail

}  // namespace coincidence

/// Precondition check that survives NDEBUG: protocol safety must not
/// silently degrade in release benchmarking builds.
#define COIN_REQUIRE(expr, msg)                                              \
  do {                                                                       \
    if (!(expr)) {                                                           \
      ::coincidence::detail::fail_require(#expr, __FILE__, __LINE__, (msg)); \
    }                                                                        \
  } while (false)
