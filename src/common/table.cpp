#include "common/table.h"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/errors.h"

namespace coincidence {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  COIN_REQUIRE(!headers_.empty(), "Table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  COIN_REQUIRE(cells.size() == headers_.size(), "Table row arity mismatch");
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    os << "| ";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c])) << row[c];
      os << (c + 1 == row.size() ? " |" : " | ");
    }
    os << '\n';
  };

  print_row(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string Table::num(double v, int prec) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(prec) << v;
  return os.str();
}

std::string Table::count(unsigned long long v) {
  std::string raw = std::to_string(v);
  std::string out;
  int c = 0;
  for (auto it = raw.rbegin(); it != raw.rend(); ++it) {
    if (c != 0 && c % 3 == 0) out.push_back(' ');
    out.push_back(*it);
    ++c;
  }
  return std::string(out.rbegin(), out.rend());
}

}  // namespace coincidence
