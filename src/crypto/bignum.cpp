#include "crypto/bignum.h"

#include <algorithm>

#include "common/errors.h"

namespace coincidence::crypto {

namespace {
using u64 = std::uint64_t;
using u128 = unsigned __int128;
}  // namespace

Bignum::Bignum(u64 v) {
  if (v != 0) limbs_.push_back(v);
}

void Bignum::normalize() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

Bignum Bignum::from_bytes_be(BytesView data) {
  Bignum out;
  out.limbs_.assign((data.size() + 7) / 8, 0);
  for (std::size_t i = 0; i < data.size(); ++i) {
    // byte i (big-endian) contributes to bit offset 8*(size-1-i)
    std::size_t bit_off = 8 * (data.size() - 1 - i);
    out.limbs_[bit_off / 64] |= static_cast<u64>(data[i]) << (bit_off % 64);
  }
  out.normalize();
  return out;
}

Bignum Bignum::from_hex(std::string_view hex) {
  std::string padded(hex);
  if (padded.size() % 2 != 0) padded.insert(padded.begin(), '0');
  return from_bytes_be(::coincidence::from_hex(padded));
}

Bytes Bignum::to_bytes_be(std::size_t min_len) const {
  std::size_t bytes_needed = (bit_length() + 7) / 8;
  std::size_t len = std::max(bytes_needed, min_len);
  Bytes out(len, 0);
  for (std::size_t i = 0; i < bytes_needed; ++i) {
    std::size_t bit_off = 8 * i;
    auto byte = static_cast<std::uint8_t>(
        (limbs_[bit_off / 64] >> (bit_off % 64)) & 0xff);
    out[len - 1 - i] = byte;
  }
  return out;
}

std::string Bignum::to_hex() const {
  if (is_zero()) return "0";
  std::string s = ::coincidence::to_hex(to_bytes_be());
  std::size_t nz = s.find_first_not_of('0');
  return s.substr(nz);
}

std::size_t Bignum::bit_length() const {
  if (limbs_.empty()) return 0;
  u64 top = limbs_.back();
  std::size_t bits = (limbs_.size() - 1) * 64;
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool Bignum::bit(std::size_t i) const {
  std::size_t limb = i / 64;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 64)) & 1;
}

int Bignum::compare(const Bignum& a, const Bignum& b) {
  if (a.limbs_.size() != b.limbs_.size())
    return a.limbs_.size() < b.limbs_.size() ? -1 : 1;
  for (std::size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] < b.limbs_[i] ? -1 : 1;
  }
  return 0;
}

Bignum Bignum::operator+(const Bignum& rhs) const {
  Bignum out;
  const auto& a = limbs_;
  const auto& b = rhs.limbs_;
  std::size_t n = std::max(a.size(), b.size());
  out.limbs_.assign(n + 1, 0);
  u64 carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    u128 sum = static_cast<u128>(i < a.size() ? a[i] : 0) +
               (i < b.size() ? b[i] : 0) + carry;
    out.limbs_[i] = static_cast<u64>(sum);
    carry = static_cast<u64>(sum >> 64);
  }
  out.limbs_[n] = carry;
  out.normalize();
  return out;
}

Bignum Bignum::operator-(const Bignum& rhs) const {
  COIN_REQUIRE(*this >= rhs, "Bignum subtraction underflow");
  Bignum out;
  out.limbs_.assign(limbs_.size(), 0);
  u64 borrow = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    u64 b = i < rhs.limbs_.size() ? rhs.limbs_[i] : 0;
    u128 diff = static_cast<u128>(limbs_[i]) - b - borrow;
    out.limbs_[i] = static_cast<u64>(diff);
    borrow = (diff >> 64) ? 1 : 0;  // wrapped => borrow
  }
  COIN_REQUIRE(borrow == 0, "Bignum subtraction internal underflow");
  out.normalize();
  return out;
}

namespace {

// Limb count above which Karatsuba beats schoolbook. The allocation
// overhead of the splits only amortizes above ~2048 bits, so the 1536-bit
// RFC 3526 group (24 limbs) stays on the cache-friendly schoolbook path.
constexpr std::size_t kKaratsubaThreshold = 32;

}  // namespace

Bignum Bignum::operator*(const Bignum& rhs) const {
  if (is_zero() || rhs.is_zero()) return Bignum();

  // Karatsuba: split both operands at half the larger width and recurse:
  //   x = x1·B + x0, y = y1·B + y0 (B = 2^(64·half)),
  //   xy = z2·B² + (z1 − z2 − z0)·B + z0,
  //   z0 = x0·y0, z2 = x1·y1, z1 = (x0+x1)(y0+y1).
  if (limbs_.size() >= kKaratsubaThreshold &&
      rhs.limbs_.size() >= kKaratsubaThreshold) {
    std::size_t half = (std::max(limbs_.size(), rhs.limbs_.size()) + 1) / 2;
    auto split = [half](const Bignum& v) {
      Bignum lo, hi;
      if (v.limbs_.size() <= half) {
        lo = v;
      } else {
        lo.limbs_.assign(v.limbs_.begin(),
                         v.limbs_.begin() + static_cast<std::ptrdiff_t>(half));
        lo.normalize();
        hi.limbs_.assign(v.limbs_.begin() + static_cast<std::ptrdiff_t>(half),
                         v.limbs_.end());
      }
      return std::make_pair(lo, hi);
    };
    auto [x0, x1] = split(*this);
    auto [y0, y1] = split(rhs);
    Bignum z0 = x0 * y0;
    Bignum z2 = x1 * y1;
    Bignum z1 = (x0 + x1) * (y0 + y1) - z2 - z0;
    return (z2 << (128 * half)) + (z1 << (64 * half)) + z0;
  }

  // Schoolbook base case with 128-bit intermediates.
  Bignum out;
  out.limbs_.assign(limbs_.size() + rhs.limbs_.size(), 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    u64 carry = 0;
    for (std::size_t j = 0; j < rhs.limbs_.size(); ++j) {
      u128 cur = static_cast<u128>(limbs_[i]) * rhs.limbs_[j] +
                 out.limbs_[i + j] + carry;
      out.limbs_[i + j] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    out.limbs_[i + rhs.limbs_.size()] += carry;
  }
  out.normalize();
  return out;
}

Bignum Bignum::operator<<(std::size_t bits) const {
  if (is_zero() || bits == 0) return *this;
  std::size_t limb_shift = bits / 64;
  std::size_t bit_shift = bits % 64;
  Bignum out;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    out.limbs_[i + limb_shift] |= limbs_[i] << bit_shift;
    if (bit_shift != 0)
      out.limbs_[i + limb_shift + 1] |= limbs_[i] >> (64 - bit_shift);
  }
  out.normalize();
  return out;
}

Bignum Bignum::operator>>(std::size_t bits) const {
  if (is_zero() || bits == 0) return *this;
  std::size_t limb_shift = bits / 64;
  std::size_t bit_shift = bits % 64;
  if (limb_shift >= limbs_.size()) return Bignum();
  Bignum out;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < out.limbs_.size(); ++i) {
    out.limbs_[i] = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size())
      out.limbs_[i] |= limbs_[i + limb_shift + 1] << (64 - bit_shift);
  }
  out.normalize();
  return out;
}

DivMod divmod(const Bignum& u, const Bignum& v) {
  COIN_REQUIRE(!v.is_zero(), "Bignum division by zero");
  if (Bignum::compare(u, v) < 0) return {Bignum(), u};

  // Single-limb divisor fast path.
  if (v.limbs_.size() == 1) {
    u64 d = v.limbs_[0];
    Bignum q;
    q.limbs_.assign(u.limbs_.size(), 0);
    u128 rem = 0;
    for (std::size_t i = u.limbs_.size(); i-- > 0;) {
      u128 cur = (rem << 64) | u.limbs_[i];
      q.limbs_[i] = static_cast<u64>(cur / d);
      rem = cur % d;
    }
    q.normalize();
    return {q, Bignum(static_cast<u64>(rem))};
  }

  // Knuth TAOCP Vol. 2, Algorithm D, with 64-bit limbs.
  const std::size_t n = v.limbs_.size();
  const std::size_t m = u.limbs_.size() - n;

  // D1: normalize so the divisor's top limb has its high bit set.
  int shift = 0;
  for (u64 top = v.limbs_.back(); (top & (1ULL << 63)) == 0; top <<= 1) ++shift;
  Bignum un = u << static_cast<std::size_t>(shift);
  Bignum vn = v << static_cast<std::size_t>(shift);
  un.limbs_.resize(u.limbs_.size() + 1, 0);  // extra high limb for D3/D4
  vn.limbs_.resize(n, 0);

  Bignum q;
  q.limbs_.assign(m + 1, 0);

  for (std::size_t j = m + 1; j-- > 0;) {
    // D3: estimate qhat from the top two limbs of the current remainder.
    u128 numer = (static_cast<u128>(un.limbs_[j + n]) << 64) | un.limbs_[j + n - 1];
    u128 qhat = numer / vn.limbs_[n - 1];
    u128 rhat = numer % vn.limbs_[n - 1];
    while (qhat > ~0ULL ||
           (qhat * vn.limbs_[n - 2]) >
               ((rhat << 64) | un.limbs_[j + n - 2])) {
      --qhat;
      rhat += vn.limbs_[n - 1];
      if (rhat > ~0ULL) break;
    }

    // D4: multiply-and-subtract qhat * vn from un[j .. j+n].
    u128 borrow = 0;
    u128 carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      u128 prod = qhat * vn.limbs_[i] + carry;
      carry = prod >> 64;
      u128 sub = static_cast<u128>(un.limbs_[i + j]) -
                 static_cast<u64>(prod) - borrow;
      un.limbs_[i + j] = static_cast<u64>(sub);
      borrow = (sub >> 64) ? 1 : 0;
    }
    u128 sub = static_cast<u128>(un.limbs_[j + n]) -
               static_cast<u64>(carry) - borrow;
    un.limbs_[j + n] = static_cast<u64>(sub);
    bool went_negative = (sub >> 64) != 0;

    // D5/D6: if we overshot, add the divisor back once.
    q.limbs_[j] = static_cast<u64>(qhat);
    if (went_negative) {
      --q.limbs_[j];
      u128 carry2 = 0;
      for (std::size_t i = 0; i < n; ++i) {
        u128 sum = static_cast<u128>(un.limbs_[i + j]) + vn.limbs_[i] + carry2;
        un.limbs_[i + j] = static_cast<u64>(sum);
        carry2 = sum >> 64;
      }
      un.limbs_[j + n] += static_cast<u64>(carry2);
    }
  }

  q.normalize();
  un.limbs_.resize(n);
  un.normalize();
  Bignum r = un >> static_cast<std::size_t>(shift);
  return {q, r};
}

Bignum Bignum::operator/(const Bignum& rhs) const { return divmod(*this, rhs).quotient; }
Bignum Bignum::operator%(const Bignum& rhs) const { return divmod(*this, rhs).remainder; }

Bignum Bignum::add_mod(const Bignum& a, const Bignum& b, const Bignum& m) {
  Bignum s = a + b;
  if (s >= m) s = s - m;
  return s;
}

Bignum Bignum::sub_mod(const Bignum& a, const Bignum& b, const Bignum& m) {
  if (a >= b) return a - b;
  return m - (b - a);
}

Bignum Bignum::mul_mod(const Bignum& a, const Bignum& b, const Bignum& m) {
  return (a * b) % m;
}

Bignum Bignum::mod_exp(const Bignum& base, const Bignum& exp, const Bignum& m) {
  COIN_REQUIRE(!m.is_zero(), "mod_exp: zero modulus");
  // The Montgomery context costs one divmod (R² mod m) to set up; it wins
  // whenever the ladder is long enough to amortize that, which at the
  // multi-limb sizes the VRF uses means any exponent past a machine word.
  if (m.is_odd() && m.limbs_.size() >= 2 && exp.bit_length() > 64) {
    return MontgomeryCtx(m).mod_exp(base, exp);
  }
  return mod_exp_ref(base, exp, m);
}

Bignum Bignum::mod_exp_ref(const Bignum& base, const Bignum& exp,
                           const Bignum& m) {
  COIN_REQUIRE(!m.is_zero(), "mod_exp: zero modulus");
  if (m == Bignum(1)) return Bignum();

  const std::size_t nbits = exp.bit_length();
  Bignum b = base % m;

  // Small exponents: plain left-to-right square-and-multiply.
  if (nbits <= 32) {
    Bignum result(1);
    for (std::size_t i = nbits; i-- > 0;) {
      result = mul_mod(result, result, m);
      if (exp.bit(i)) result = mul_mod(result, b, m);
    }
    return result;
  }

  // Fixed 4-bit window: precompute b^0..b^15, then one multiply per
  // window instead of per set bit (~25% fewer multiplications at the
  // 128-1536 bit sizes the VRF uses).
  constexpr std::size_t kWindow = 4;
  Bignum table[1u << kWindow];
  table[0] = Bignum(1);
  for (std::size_t i = 1; i < (1u << kWindow); ++i)
    table[i] = mul_mod(table[i - 1], b, m);

  // Process the exponent from the most significant window down.
  std::size_t windows = (nbits + kWindow - 1) / kWindow;
  Bignum result(1);
  for (std::size_t w = windows; w-- > 0;) {
    for (std::size_t s = 0; s < kWindow; ++s)
      result = mul_mod(result, result, m);
    std::size_t chunk = 0;
    for (std::size_t s = kWindow; s-- > 0;) {
      chunk <<= 1;
      std::size_t bit_index = w * kWindow + s;
      if (bit_index < nbits && exp.bit(bit_index)) chunk |= 1;
    }
    if (chunk != 0) result = mul_mod(result, table[chunk], m);
  }
  return result;
}

int Bignum::jacobi(const Bignum& a, const Bignum& n) {
  COIN_REQUIRE(n.is_odd() && !n.is_zero(), "jacobi: modulus must be odd > 0");
  // Binary algorithm on raw limb vectors: shift/subtract/compare in
  // place, no division and no allocation inside the loop. The batch
  // verifier pays four subgroup checks per entry, so this sits on the
  // amortized path's constant factor; the Euclid-with-divmod version it
  // replaces was several times slower at 1536 bits.
  using Limbs = std::vector<std::uint64_t>;
  auto norm = [](Limbs& v) {
    while (!v.empty() && v.back() == 0) v.pop_back();
  };
  auto low = [](const Limbs& v) -> std::uint64_t {
    return v.empty() ? 0 : v[0];
  };
  // u and v normalized; <0, 0, >0 like memcmp.
  auto cmp = [](const Limbs& u, const Limbs& v) -> int {
    if (u.size() != v.size()) return u.size() < v.size() ? -1 : 1;
    for (std::size_t i = u.size(); i-- > 0;)
      if (u[i] != v[i]) return u[i] < v[i] ? -1 : 1;
    return 0;
  };
  auto sub_in_place = [&norm](Limbs& u, const Limbs& v) {  // u -= v, u >= v
    std::uint64_t borrow = 0;
    for (std::size_t i = 0; i < u.size(); ++i) {
      const std::uint64_t vi = i < v.size() ? v[i] : 0;
      const std::uint64_t d = u[i] - vi;
      const std::uint64_t b = (u[i] < vi) | (d < borrow);
      u[i] = d - borrow;
      borrow = b;
    }
    norm(u);
  };
  auto shift_right = [&norm](Limbs& u, std::size_t k) {
    const std::size_t limbs = k / 64, bits = k % 64;
    if (limbs)
      u.erase(u.begin(),
              u.begin() + static_cast<std::ptrdiff_t>(std::min(limbs, u.size())));
    if (bits && !u.empty()) {
      for (std::size_t i = 0; i + 1 < u.size(); ++i)
        u[i] = (u[i] >> bits) | (u[i + 1] << (64 - bits));
      u.back() >>= bits;
    }
    norm(u);
  };
  auto trailing_zeros = [](const Limbs& u) {
    std::size_t tz = 0, i = 0;
    while (i < u.size() && u[i] == 0) {
      tz += 64;
      ++i;
    }
    if (i < u.size())
      tz += static_cast<std::size_t>(__builtin_ctzll(u[i]));
    return tz;
  };

  Limbs x = (a % n).limbs_;
  Limbs y = n.limbs_;
  norm(x);
  norm(y);
  int result = 1;
  while (!x.empty()) {
    // Pull out the even part of x; each factor of 2 flips the sign when
    // y ≡ ±3 (mod 8).
    const std::size_t twos = trailing_zeros(x);
    if (twos != 0) {
      const std::uint64_t y_mod8 = low(y) & 7;
      if ((twos & 1) && (y_mod8 == 3 || y_mod8 == 5)) result = -result;
      shift_right(x, twos);
    }
    // Both odd: swap so x >= y, applying quadratic reciprocity, then one
    // subtraction makes x even again for the next round of shifts.
    if (cmp(x, y) < 0) {
      x.swap(y);
      if ((low(x) & 3) == 3 && (low(y) & 3) == 3) result = -result;
    }
    sub_in_place(x, y);
  }
  return y.size() == 1 && y[0] == 1 ? result : 0;
}

Bignum Bignum::gcd(Bignum a, Bignum b) {
  while (!b.is_zero()) {
    Bignum r = a % b;
    a = b;
    b = r;
  }
  return a;
}

Bignum Bignum::mod_inv(const Bignum& a, const Bignum& m) {
  COIN_REQUIRE(!m.is_zero(), "mod_inv: zero modulus");
  // Extended Euclid with signed coefficients tracked as (value, sign).
  Bignum r0 = m, r1 = a % m;
  Bignum t0, t1(1);
  bool t0_neg = false, t1_neg = false;
  while (!r1.is_zero()) {
    DivMod dm = divmod(r0, r1);
    // (t0, t1) <- (t1, t0 - q * t1) with sign tracking.
    Bignum qt = dm.quotient * t1;
    Bignum new_t;
    bool new_neg;
    if (t0_neg == t1_neg) {
      if (t0 >= qt) {
        new_t = t0 - qt;
        new_neg = t0_neg;
      } else {
        new_t = qt - t0;
        new_neg = !t0_neg;
      }
    } else {
      new_t = t0 + qt;
      new_neg = t0_neg;
    }
    t0 = t1;
    t0_neg = t1_neg;
    t1 = new_t;
    t1_neg = new_neg;
    r0 = r1;
    r1 = dm.remainder;
  }
  COIN_REQUIRE(r0 == Bignum(1), "mod_inv: not invertible");
  Bignum inv = t0 % m;
  if (t0_neg && !inv.is_zero()) inv = m - inv;
  return inv;
}

// ---------------------------------------------------------------------------
// MontgomeryCtx
// ---------------------------------------------------------------------------

MontgomeryCtx::MontgomeryCtx(const Bignum& m) : m_(m) {
  COIN_REQUIRE(m.is_odd() && m > Bignum(1),
               "MontgomeryCtx: modulus must be odd and > 1");
  k_ = m.limbs_.size();
  mod_ = m.limbs_;

  // n0inv = -m⁻¹ mod 2⁶⁴ by Newton/Hensel lifting: x ← x·(2 − m₀·x)
  // doubles the number of correct low bits each step; 6 steps cover 64.
  u64 m0 = mod_[0];
  u64 x = m0;  // correct to 3 bits (m0 odd)
  for (int i = 0; i < 6; ++i) x *= 2 - m0 * x;
  n0inv_ = ~x + 1;  // -x mod 2⁶⁴

  // R mod m and R² mod m via the division path, once per context.
  Bignum r_mod_m = (Bignum(1) << (64 * k_)) % m_;
  Bignum r2_mod_m = (r_mod_m * r_mod_m) % m_;
  one_ = r_mod_m.limbs_;
  one_.resize(k_, 0);
  r2_ = r2_mod_m.limbs_;
  r2_.resize(k_, 0);
}

MontgomeryCtx::Limbs MontgomeryCtx::to_limbs(const Bignum& a) const {
  Limbs out = (a >= m_ ? a % m_ : a).limbs_;
  out.resize(k_, 0);
  return out;
}

Bignum MontgomeryCtx::to_bignum(const Limbs& a) const {
  Bignum out;
  out.limbs_ = a;
  out.normalize();
  return out;
}

void MontgomeryCtx::reduce_once(Limbs& x, u64 overflow) const {
  // x (k limbs, plus `overflow` as limb k) is < 2m; subtract m if needed.
  bool ge = overflow != 0;
  if (!ge) {
    ge = true;  // treat equality as >= so the result is always < m
    for (std::size_t i = k_; i-- > 0;) {
      if (x[i] != mod_[i]) {
        ge = x[i] > mod_[i];
        break;
      }
    }
  }
  if (!ge) return;
  u64 borrow = 0;
  for (std::size_t i = 0; i < k_; ++i) {
    u128 diff = static_cast<u128>(x[i]) - mod_[i] - borrow;
    x[i] = static_cast<u64>(diff);
    borrow = (diff >> 64) ? 1 : 0;
  }
}

void MontgomeryCtx::mul_redc(const Limbs& a, const Limbs& b, Limbs& out,
                             Limbs& t) const {
  // CIOS (coarsely integrated operand scanning): interleave the schoolbook
  // multiply with the reduction so the accumulator never exceeds k+2 limbs.
  const std::size_t k = k_;
  std::fill(t.begin(), t.end(), 0);
  for (std::size_t i = 0; i < k; ++i) {
    u64 carry = 0;
    const u64 ai = a[i];
    for (std::size_t j = 0; j < k; ++j) {
      u128 cur = static_cast<u128>(ai) * b[j] + t[j] + carry;
      t[j] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    u128 cur = static_cast<u128>(t[k]) + carry;
    t[k] = static_cast<u64>(cur);
    t[k + 1] = static_cast<u64>(cur >> 64);

    const u64 mfac = t[0] * n0inv_;
    u128 acc = static_cast<u128>(mfac) * mod_[0] + t[0];
    carry = static_cast<u64>(acc >> 64);
    for (std::size_t j = 1; j < k; ++j) {
      acc = static_cast<u128>(mfac) * mod_[j] + t[j] + carry;
      t[j - 1] = static_cast<u64>(acc);
      carry = static_cast<u64>(acc >> 64);
    }
    acc = static_cast<u128>(t[k]) + carry;
    t[k - 1] = static_cast<u64>(acc);
    t[k] = t[k + 1] + static_cast<u64>(acc >> 64);
  }
  std::copy(t.begin(), t.begin() + static_cast<std::ptrdiff_t>(k),
            out.begin());
  reduce_once(out, t[k]);
}

void MontgomeryCtx::sqr_redc(const Limbs& a, Limbs& out, Limbs& t) const {
  // SOS squaring: cross products once (then doubled), diagonal squares,
  // then a separate k-pass REDC over the 2k-limb product. Carries out of
  // each row land exactly where the next row's final add lands, so a
  // single rolling `pending` limb replaces per-row propagation loops.
  const std::size_t k = k_;
  const u64* ap = a.data();
  const u64* mp = mod_.data();
  u64* tp = t.data();
  std::fill(t.begin(), t.end(), 0);
  // Cross products a[i]·a[j], i < j. Row i's final carry belongs at limb
  // i+k; row i+1 also ends at limb i+k+1, so `pending` rides along.
  u64 pending = 0;
  for (std::size_t i = 0; i + 1 < k; ++i) {
    u64 carry = 0;
    const u64 ai = ap[i];
    for (std::size_t j = i + 1; j < k; ++j) {
      u128 cur = static_cast<u128>(ai) * ap[j] + tp[i + j] + carry;
      tp[i + j] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    u128 cur = static_cast<u128>(tp[i + k]) + carry + pending;
    tp[i + k] = static_cast<u64>(cur);
    pending = static_cast<u64>(cur >> 64);
  }
  tp[2 * k - 1] += pending;  // a² < 2^(128k), so this cannot overflow
  // Double the cross products: shift t left one bit across 2k limbs.
  u64 top = 0;
  for (std::size_t i = 0; i < 2 * k; ++i) {
    u64 next_top = tp[i] >> 63;
    tp[i] = (tp[i] << 1) | top;
    top = next_top;
  }
  t[2 * k] = top;
  // Add the diagonal squares a[i]² at bit offset 128·i.
  u64 carry = 0;
  for (std::size_t i = 0; i < k; ++i) {
    u128 sq = static_cast<u128>(ap[i]) * ap[i];
    u128 lo = static_cast<u128>(tp[2 * i]) + static_cast<u64>(sq) + carry;
    tp[2 * i] = static_cast<u64>(lo);
    u128 hi = static_cast<u128>(tp[2 * i + 1]) + static_cast<u64>(sq >> 64) +
              static_cast<u64>(lo >> 64);
    tp[2 * i + 1] = static_cast<u64>(hi);
    carry = static_cast<u64>(hi >> 64);
  }
  t[2 * k] += carry;
  // REDC: clear the low k limbs one at a time, rolling the row-end carry.
  pending = 0;
  for (std::size_t i = 0; i < k; ++i) {
    const u64 mfac = tp[i] * n0inv_;
    u64 c = 0;
    for (std::size_t j = 0; j < k; ++j) {
      u128 cur = static_cast<u128>(mfac) * mp[j] + tp[i + j] + c;
      tp[i + j] = static_cast<u64>(cur);
      c = static_cast<u64>(cur >> 64);
    }
    u128 cur = static_cast<u128>(tp[i + k]) + c + pending;
    tp[i + k] = static_cast<u64>(cur);
    pending = static_cast<u64>(cur >> 64);
  }
  std::copy(t.begin() + static_cast<std::ptrdiff_t>(k),
            t.begin() + static_cast<std::ptrdiff_t>(2 * k), out.begin());
  reduce_once(out, t[2 * k] + pending);
}

Bignum MontgomeryCtx::to_mont(const Bignum& a) const {
  Limbs al = to_limbs(a);
  Limbs out(k_, 0), t(k_ + 2, 0);
  mul_redc(al, r2_, out, t);
  return to_bignum(out);
}

Bignum MontgomeryCtx::from_mont(const Bignum& a) const {
  Limbs al = to_limbs(a);
  Limbs one(k_, 0);
  one[0] = 1;
  Limbs out(k_, 0), t(k_ + 2, 0);
  mul_redc(al, one, out, t);
  return to_bignum(out);
}

Bignum MontgomeryCtx::mont_mul(const Bignum& a, const Bignum& b) const {
  Limbs al = to_limbs(a), bl = to_limbs(b);
  Limbs out(k_, 0), t(k_ + 2, 0);
  mul_redc(al, bl, out, t);
  return to_bignum(out);
}

Bignum MontgomeryCtx::mont_sqr(const Bignum& a) const {
  Limbs al = to_limbs(a);
  Limbs out(k_, 0), t(2 * k_ + 1, 0);
  sqr_redc(al, out, t);
  return to_bignum(out);
}

Bignum MontgomeryCtx::mod_exp(const Bignum& base, const Bignum& exp) const {
  const std::size_t nbits = exp.bit_length();
  if (nbits == 0) return Bignum(1) % m_;  // 0^0 = 1 convention

  Limbs mt(k_ + 2, 0);          // mul scratch
  Limbs st(2 * k_ + 1, 0);      // sqr scratch
  Limbs base_m(k_, 0);
  mul_redc(to_limbs(base), r2_, base_m, mt);

  // 4-bit fixed window: 16-entry table, one multiply per window.
  constexpr std::size_t kWindow = 4;
  Limbs table[1u << kWindow];
  table[0] = one_;
  table[1] = base_m;
  for (std::size_t i = 2; i < (1u << kWindow); ++i) {
    table[i].assign(k_, 0);
    mul_redc(table[i - 1], base_m, table[i], mt);
  }

  Limbs result = one_;
  Limbs tmp(k_, 0);
  std::size_t windows = (nbits + kWindow - 1) / kWindow;
  for (std::size_t w = windows; w-- > 0;) {
    for (std::size_t s = 0; s < kWindow; ++s) {
      sqr_redc(result, tmp, st);
      result.swap(tmp);
    }
    std::size_t chunk = 0;
    for (std::size_t s = kWindow; s-- > 0;) {
      chunk <<= 1;
      std::size_t bit_index = w * kWindow + s;
      if (bit_index < nbits && exp.bit(bit_index)) chunk |= 1;
    }
    if (chunk != 0) {
      mul_redc(result, table[chunk], tmp, mt);
      result.swap(tmp);
    }
  }

  // Leave Montgomery form.
  Limbs one(k_, 0);
  one[0] = 1;
  mul_redc(result, one, tmp, mt);
  return to_bignum(tmp);
}

Bignum MontgomeryCtx::dual_exp(const Bignum& a, const Bignum& ea,
                               const Bignum& b, const Bignum& eb) const {
  // Straus/Shamir: one shared-squaring ladder over both exponents with
  // 3-bit windows each, indexing a 64-entry table of aⁱ·bʲ (i, j ≤ 7).
  // Versus two independent ladders this halves the squarings — the
  // dominant cost of g^s·pk^c / h^s·Γ^c in DdhVrf::verify — and the wide
  // window amortizes the table build across ~nbits/3 joint multiplies.
  const std::size_t nbits = std::max(ea.bit_length(), eb.bit_length());
  if (nbits == 0) return Bignum(1) % m_;

  constexpr std::size_t kWindow = 3;
  Limbs mt(k_ + 2, 0);
  Limbs st(2 * k_ + 1, 0);
  Limbs am(k_, 0), bm(k_, 0);
  mul_redc(to_limbs(a), r2_, am, mt);
  mul_redc(to_limbs(b), r2_, bm, mt);

  // table[(i << kWindow) | j] = aⁱ · bʲ in Montgomery form.
  constexpr std::size_t kSide = 1u << kWindow;
  Limbs table[kSide * kSide];
  table[0] = one_;
  table[1] = bm;
  table[kSide] = am;
  for (std::size_t i = 2; i < kSide * kSide; ++i) {
    if (i == kSide) continue;
    table[i].assign(k_, 0);
    if (i >= kSide) {
      mul_redc(table[i - kSide], am, table[i], mt);  // bump the a-power
    } else {
      mul_redc(table[i - 1], bm, table[i], mt);  // bump the b-power
    }
  }

  auto window_of = [](const Bignum& e, std::size_t lo) {
    std::size_t v = 0;
    for (std::size_t s = kWindow; s-- > 0;) v = (v << 1) | (e.bit(lo + s) ? 1u : 0u);
    return v;
  };

  Limbs result = one_;
  Limbs tmp(k_, 0);
  std::size_t windows = (nbits + kWindow - 1) / kWindow;
  for (std::size_t w = windows; w-- > 0;) {
    for (std::size_t s = 0; s < kWindow; ++s) {
      sqr_redc(result, tmp, st);
      result.swap(tmp);
    }
    const std::size_t lo = kWindow * w;
    std::size_t idx = (window_of(ea, lo) << kWindow) | window_of(eb, lo);
    if (idx != 0) {
      mul_redc(result, table[idx], tmp, mt);
      result.swap(tmp);
    }
  }

  Limbs one(k_, 0);
  one[0] = 1;
  mul_redc(result, one, tmp, mt);
  return to_bignum(tmp);
}

namespace {

// Pippenger window width by term count: bucket folding costs 2·(2^c − 1)
// multiplies per window, so the window only widens once enough terms
// share it. Break-evens are the usual k ≈ 2^(c+1) rule of thumb.
std::size_t pippenger_window(std::size_t terms) {
  if (terms < 32) return 3;
  if (terms < 128) return 4;
  if (terms < 512) return 5;
  if (terms < 2048) return 6;
  return 7;
}

}  // namespace

Bignum MontgomeryCtx::multi_exp(std::span<const MultiExpTerm> terms) const {
  // Below the bucket break-even, chain Straus pairs: every pair still
  // shares its squarings, and the pairwise products combine with plain
  // modular multiplies.
  if (terms.size() < 8) {
    Bignum acc;
    bool have = false;
    auto fold = [&](Bignum part) {
      acc = have ? Bignum::mul_mod(acc, part, m_) : std::move(part);
      have = true;
    };
    std::size_t i = 0;
    for (; i + 1 < terms.size(); i += 2)
      fold(dual_exp(terms[i].base, terms[i].exp, terms[i + 1].base,
                    terms[i + 1].exp));
    if (i < terms.size()) fold(mod_exp(terms[i].base, terms[i].exp));
    return have ? acc : Bignum(1) % m_;
  }

  std::size_t nbits = 0;
  for (const MultiExpTerm& t : terms)
    nbits = std::max(nbits, t.exp.bit_length());
  if (nbits == 0) return Bignum(1) % m_;

  Limbs mt(k_ + 2, 0);      // mul scratch
  Limbs st(2 * k_ + 1, 0);  // sqr scratch
  std::vector<Limbs> bases_m(terms.size());
  for (std::size_t i = 0; i < terms.size(); ++i) {
    bases_m[i].assign(k_, 0);
    mul_redc(to_limbs(terms[i].base), r2_, bases_m[i], mt);
  }

  const std::size_t c = pippenger_window(terms.size());
  const std::size_t nbuckets = (std::size_t{1} << c) - 1;  // digit d → [d-1]
  std::vector<Limbs> bucket(nbuckets);
  std::vector<char> bucket_set(nbuckets);
  const std::size_t windows = (nbits + c - 1) / c;

  Limbs result;  // Montgomery accumulator; empty until the first window hits
  Limbs tmp(k_, 0);
  for (std::size_t w = windows; w-- > 0;) {
    if (!result.empty()) {
      for (std::size_t s = 0; s < c; ++s) {
        sqr_redc(result, tmp, st);
        result.swap(tmp);
      }
    }

    // Deposit every term into the bucket of its digit at this window; all
    // terms share the one squaring chain above, which is the whole point.
    std::fill(bucket_set.begin(), bucket_set.end(), 0);
    for (std::size_t i = 0; i < terms.size(); ++i) {
      std::size_t digit = 0;
      for (std::size_t s = c; s-- > 0;)
        digit = (digit << 1) | (terms[i].exp.bit(w * c + s) ? 1u : 0u);
      if (digit == 0) continue;
      Limbs& b = bucket[digit - 1];
      if (!bucket_set[digit - 1]) {
        b = bases_m[i];
        bucket_set[digit - 1] = 1;
      } else {
        mul_redc(b, bases_m[i], tmp, mt);
        b.swap(tmp);
      }
    }

    // Running-product fold: with run_d = Π_{e ≥ d} B_e, the window value
    // Π_d B_d^d equals Π_d run_d — 2·(2^c − 1) multiplies, no exponents.
    Limbs run, win;
    for (std::size_t d = nbuckets; d-- > 0;) {
      if (bucket_set[d]) {
        if (run.empty()) {
          run = bucket[d];
        } else {
          mul_redc(run, bucket[d], tmp, mt);
          run.swap(tmp);
        }
      }
      if (!run.empty()) {
        if (win.empty()) {
          win = run;
        } else {
          mul_redc(win, run, tmp, mt);
          win.swap(tmp);
        }
      }
    }
    if (!win.empty()) {
      if (result.empty()) {
        result = std::move(win);
      } else {
        mul_redc(result, win, tmp, mt);
        result.swap(tmp);
      }
    }
  }
  if (result.empty()) result = one_;  // every digit of every exponent was 0

  Limbs one(k_, 0);
  one[0] = 1;
  mul_redc(result, one, tmp, mt);
  return to_bignum(tmp);
}

// ---------------------------------------------------------------------------
// CombTable
// ---------------------------------------------------------------------------

CombTable::CombTable(std::shared_ptr<const MontgomeryCtx> ctx,
                     const Bignum& base, std::size_t max_exp_bits)
    : ctx_(std::move(ctx)), base_(base) {
  COIN_REQUIRE(ctx_ != nullptr, "CombTable: null context");
  max_bits_ = std::max<std::size_t>(max_exp_bits, kTeeth);
  span_ = (max_bits_ + kTeeth - 1) / kTeeth;

  const std::size_t k = ctx_->k_;
  std::vector<std::uint64_t> mt(k + 2, 0), st(2 * k + 1, 0);

  // tooth[i] = base^(2^(i·span)) in Montgomery form.
  std::vector<std::vector<std::uint64_t>> tooth(kTeeth);
  tooth[0].assign(k, 0);
  ctx_->mul_redc(ctx_->to_limbs(base_), ctx_->r2_, tooth[0], mt);
  std::vector<std::uint64_t> tmp(k, 0);
  for (std::size_t i = 1; i < kTeeth; ++i) {
    tooth[i] = tooth[i - 1];
    for (std::size_t s = 0; s < span_; ++s) {
      ctx_->sqr_redc(tooth[i], tmp, st);
      tooth[i].swap(tmp);
    }
  }

  table_.resize(std::size_t{1} << kTeeth);
  table_[0] = ctx_->one_;
  for (std::size_t s = 1; s < table_.size(); ++s) {
    // Lowest set bit extends the previously-built entry by one tooth.
    std::size_t low = s & (~s + 1);
    std::size_t low_idx = 0;
    while ((std::size_t{1} << low_idx) != low) ++low_idx;
    if (s == low) {
      table_[s] = tooth[low_idx];
    } else {
      table_[s].assign(k, 0);
      ctx_->mul_redc(table_[s - low], tooth[low_idx], table_[s], mt);
    }
  }
}

Bignum CombTable::exp(const Bignum& e) const {
  if (e.bit_length() > max_bits_) return ctx_->mod_exp(base_, e);
  if (e.is_zero()) return Bignum(1) % ctx_->m_;

  const std::size_t k = ctx_->k_;
  std::vector<std::uint64_t> mt(k + 2, 0), st(2 * k + 1, 0);
  std::vector<std::uint64_t> result = ctx_->one_;
  std::vector<std::uint64_t> tmp(k, 0);
  for (std::size_t col = span_; col-- > 0;) {
    ctx_->sqr_redc(result, tmp, st);
    result.swap(tmp);
    std::size_t idx = 0;
    for (std::size_t tooth = 0; tooth < kTeeth; ++tooth) {
      if (e.bit(tooth * span_ + col)) idx |= std::size_t{1} << tooth;
    }
    if (idx != 0) {
      ctx_->mul_redc(result, table_[idx], tmp, mt);
      result.swap(tmp);
    }
  }
  std::vector<std::uint64_t> one(k, 0);
  one[0] = 1;
  ctx_->mul_redc(result, one, tmp, mt);
  return ctx_->to_bignum(tmp);
}

}  // namespace coincidence::crypto
