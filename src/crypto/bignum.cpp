#include "crypto/bignum.h"

#include <algorithm>

#include "common/errors.h"

namespace coincidence::crypto {

namespace {
using u64 = std::uint64_t;
using u128 = unsigned __int128;
}  // namespace

Bignum::Bignum(u64 v) {
  if (v != 0) limbs_.push_back(v);
}

void Bignum::normalize() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

Bignum Bignum::from_bytes_be(BytesView data) {
  Bignum out;
  out.limbs_.assign((data.size() + 7) / 8, 0);
  for (std::size_t i = 0; i < data.size(); ++i) {
    // byte i (big-endian) contributes to bit offset 8*(size-1-i)
    std::size_t bit_off = 8 * (data.size() - 1 - i);
    out.limbs_[bit_off / 64] |= static_cast<u64>(data[i]) << (bit_off % 64);
  }
  out.normalize();
  return out;
}

Bignum Bignum::from_hex(std::string_view hex) {
  std::string padded(hex);
  if (padded.size() % 2 != 0) padded.insert(padded.begin(), '0');
  return from_bytes_be(::coincidence::from_hex(padded));
}

Bytes Bignum::to_bytes_be(std::size_t min_len) const {
  std::size_t bytes_needed = (bit_length() + 7) / 8;
  std::size_t len = std::max(bytes_needed, min_len);
  Bytes out(len, 0);
  for (std::size_t i = 0; i < bytes_needed; ++i) {
    std::size_t bit_off = 8 * i;
    auto byte = static_cast<std::uint8_t>(
        (limbs_[bit_off / 64] >> (bit_off % 64)) & 0xff);
    out[len - 1 - i] = byte;
  }
  return out;
}

std::string Bignum::to_hex() const {
  if (is_zero()) return "0";
  std::string s = ::coincidence::to_hex(to_bytes_be());
  std::size_t nz = s.find_first_not_of('0');
  return s.substr(nz);
}

std::size_t Bignum::bit_length() const {
  if (limbs_.empty()) return 0;
  u64 top = limbs_.back();
  std::size_t bits = (limbs_.size() - 1) * 64;
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool Bignum::bit(std::size_t i) const {
  std::size_t limb = i / 64;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 64)) & 1;
}

int Bignum::compare(const Bignum& a, const Bignum& b) {
  if (a.limbs_.size() != b.limbs_.size())
    return a.limbs_.size() < b.limbs_.size() ? -1 : 1;
  for (std::size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] < b.limbs_[i] ? -1 : 1;
  }
  return 0;
}

Bignum Bignum::operator+(const Bignum& rhs) const {
  Bignum out;
  const auto& a = limbs_;
  const auto& b = rhs.limbs_;
  std::size_t n = std::max(a.size(), b.size());
  out.limbs_.assign(n + 1, 0);
  u64 carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    u128 sum = static_cast<u128>(i < a.size() ? a[i] : 0) +
               (i < b.size() ? b[i] : 0) + carry;
    out.limbs_[i] = static_cast<u64>(sum);
    carry = static_cast<u64>(sum >> 64);
  }
  out.limbs_[n] = carry;
  out.normalize();
  return out;
}

Bignum Bignum::operator-(const Bignum& rhs) const {
  COIN_REQUIRE(*this >= rhs, "Bignum subtraction underflow");
  Bignum out;
  out.limbs_.assign(limbs_.size(), 0);
  u64 borrow = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    u64 b = i < rhs.limbs_.size() ? rhs.limbs_[i] : 0;
    u128 diff = static_cast<u128>(limbs_[i]) - b - borrow;
    out.limbs_[i] = static_cast<u64>(diff);
    borrow = (diff >> 64) ? 1 : 0;  // wrapped => borrow
  }
  COIN_REQUIRE(borrow == 0, "Bignum subtraction internal underflow");
  out.normalize();
  return out;
}

namespace {

// Limb count above which Karatsuba beats schoolbook. The allocation
// overhead of the splits only amortizes above ~2048 bits, so the 1536-bit
// RFC 3526 group (24 limbs) stays on the cache-friendly schoolbook path.
constexpr std::size_t kKaratsubaThreshold = 32;

}  // namespace

Bignum Bignum::operator*(const Bignum& rhs) const {
  if (is_zero() || rhs.is_zero()) return Bignum();

  // Karatsuba: split both operands at half the larger width and recurse:
  //   x = x1·B + x0, y = y1·B + y0 (B = 2^(64·half)),
  //   xy = z2·B² + (z1 − z2 − z0)·B + z0,
  //   z0 = x0·y0, z2 = x1·y1, z1 = (x0+x1)(y0+y1).
  if (limbs_.size() >= kKaratsubaThreshold &&
      rhs.limbs_.size() >= kKaratsubaThreshold) {
    std::size_t half = (std::max(limbs_.size(), rhs.limbs_.size()) + 1) / 2;
    auto split = [half](const Bignum& v) {
      Bignum lo, hi;
      if (v.limbs_.size() <= half) {
        lo = v;
      } else {
        lo.limbs_.assign(v.limbs_.begin(),
                         v.limbs_.begin() + static_cast<std::ptrdiff_t>(half));
        lo.normalize();
        hi.limbs_.assign(v.limbs_.begin() + static_cast<std::ptrdiff_t>(half),
                         v.limbs_.end());
      }
      return std::make_pair(lo, hi);
    };
    auto [x0, x1] = split(*this);
    auto [y0, y1] = split(rhs);
    Bignum z0 = x0 * y0;
    Bignum z2 = x1 * y1;
    Bignum z1 = (x0 + x1) * (y0 + y1) - z2 - z0;
    return (z2 << (128 * half)) + (z1 << (64 * half)) + z0;
  }

  // Schoolbook base case with 128-bit intermediates.
  Bignum out;
  out.limbs_.assign(limbs_.size() + rhs.limbs_.size(), 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    u64 carry = 0;
    for (std::size_t j = 0; j < rhs.limbs_.size(); ++j) {
      u128 cur = static_cast<u128>(limbs_[i]) * rhs.limbs_[j] +
                 out.limbs_[i + j] + carry;
      out.limbs_[i + j] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    out.limbs_[i + rhs.limbs_.size()] += carry;
  }
  out.normalize();
  return out;
}

Bignum Bignum::operator<<(std::size_t bits) const {
  if (is_zero() || bits == 0) return *this;
  std::size_t limb_shift = bits / 64;
  std::size_t bit_shift = bits % 64;
  Bignum out;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    out.limbs_[i + limb_shift] |= limbs_[i] << bit_shift;
    if (bit_shift != 0)
      out.limbs_[i + limb_shift + 1] |= limbs_[i] >> (64 - bit_shift);
  }
  out.normalize();
  return out;
}

Bignum Bignum::operator>>(std::size_t bits) const {
  if (is_zero() || bits == 0) return *this;
  std::size_t limb_shift = bits / 64;
  std::size_t bit_shift = bits % 64;
  if (limb_shift >= limbs_.size()) return Bignum();
  Bignum out;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < out.limbs_.size(); ++i) {
    out.limbs_[i] = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size())
      out.limbs_[i] |= limbs_[i + limb_shift + 1] << (64 - bit_shift);
  }
  out.normalize();
  return out;
}

DivMod divmod(const Bignum& u, const Bignum& v) {
  COIN_REQUIRE(!v.is_zero(), "Bignum division by zero");
  if (Bignum::compare(u, v) < 0) return {Bignum(), u};

  // Single-limb divisor fast path.
  if (v.limbs_.size() == 1) {
    u64 d = v.limbs_[0];
    Bignum q;
    q.limbs_.assign(u.limbs_.size(), 0);
    u128 rem = 0;
    for (std::size_t i = u.limbs_.size(); i-- > 0;) {
      u128 cur = (rem << 64) | u.limbs_[i];
      q.limbs_[i] = static_cast<u64>(cur / d);
      rem = cur % d;
    }
    q.normalize();
    return {q, Bignum(static_cast<u64>(rem))};
  }

  // Knuth TAOCP Vol. 2, Algorithm D, with 64-bit limbs.
  const std::size_t n = v.limbs_.size();
  const std::size_t m = u.limbs_.size() - n;

  // D1: normalize so the divisor's top limb has its high bit set.
  int shift = 0;
  for (u64 top = v.limbs_.back(); (top & (1ULL << 63)) == 0; top <<= 1) ++shift;
  Bignum un = u << static_cast<std::size_t>(shift);
  Bignum vn = v << static_cast<std::size_t>(shift);
  un.limbs_.resize(u.limbs_.size() + 1, 0);  // extra high limb for D3/D4
  vn.limbs_.resize(n, 0);

  Bignum q;
  q.limbs_.assign(m + 1, 0);

  for (std::size_t j = m + 1; j-- > 0;) {
    // D3: estimate qhat from the top two limbs of the current remainder.
    u128 numer = (static_cast<u128>(un.limbs_[j + n]) << 64) | un.limbs_[j + n - 1];
    u128 qhat = numer / vn.limbs_[n - 1];
    u128 rhat = numer % vn.limbs_[n - 1];
    while (qhat > ~0ULL ||
           (qhat * vn.limbs_[n - 2]) >
               ((rhat << 64) | un.limbs_[j + n - 2])) {
      --qhat;
      rhat += vn.limbs_[n - 1];
      if (rhat > ~0ULL) break;
    }

    // D4: multiply-and-subtract qhat * vn from un[j .. j+n].
    u128 borrow = 0;
    u128 carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      u128 prod = qhat * vn.limbs_[i] + carry;
      carry = prod >> 64;
      u128 sub = static_cast<u128>(un.limbs_[i + j]) -
                 static_cast<u64>(prod) - borrow;
      un.limbs_[i + j] = static_cast<u64>(sub);
      borrow = (sub >> 64) ? 1 : 0;
    }
    u128 sub = static_cast<u128>(un.limbs_[j + n]) -
               static_cast<u64>(carry) - borrow;
    un.limbs_[j + n] = static_cast<u64>(sub);
    bool went_negative = (sub >> 64) != 0;

    // D5/D6: if we overshot, add the divisor back once.
    q.limbs_[j] = static_cast<u64>(qhat);
    if (went_negative) {
      --q.limbs_[j];
      u128 carry2 = 0;
      for (std::size_t i = 0; i < n; ++i) {
        u128 sum = static_cast<u128>(un.limbs_[i + j]) + vn.limbs_[i] + carry2;
        un.limbs_[i + j] = static_cast<u64>(sum);
        carry2 = sum >> 64;
      }
      un.limbs_[j + n] += static_cast<u64>(carry2);
    }
  }

  q.normalize();
  un.limbs_.resize(n);
  un.normalize();
  Bignum r = un >> static_cast<std::size_t>(shift);
  return {q, r};
}

Bignum Bignum::operator/(const Bignum& rhs) const { return divmod(*this, rhs).quotient; }
Bignum Bignum::operator%(const Bignum& rhs) const { return divmod(*this, rhs).remainder; }

Bignum Bignum::add_mod(const Bignum& a, const Bignum& b, const Bignum& m) {
  Bignum s = a + b;
  if (s >= m) s = s - m;
  return s;
}

Bignum Bignum::sub_mod(const Bignum& a, const Bignum& b, const Bignum& m) {
  if (a >= b) return a - b;
  return m - (b - a);
}

Bignum Bignum::mul_mod(const Bignum& a, const Bignum& b, const Bignum& m) {
  return (a * b) % m;
}

Bignum Bignum::mod_exp(const Bignum& base, const Bignum& exp, const Bignum& m) {
  COIN_REQUIRE(!m.is_zero(), "mod_exp: zero modulus");
  if (m == Bignum(1)) return Bignum();

  const std::size_t nbits = exp.bit_length();
  Bignum b = base % m;

  // Small exponents: plain left-to-right square-and-multiply.
  if (nbits <= 32) {
    Bignum result(1);
    for (std::size_t i = nbits; i-- > 0;) {
      result = mul_mod(result, result, m);
      if (exp.bit(i)) result = mul_mod(result, b, m);
    }
    return result;
  }

  // Fixed 4-bit window: precompute b^0..b^15, then one multiply per
  // window instead of per set bit (~25% fewer multiplications at the
  // 128-1536 bit sizes the VRF uses).
  constexpr std::size_t kWindow = 4;
  Bignum table[1u << kWindow];
  table[0] = Bignum(1);
  for (std::size_t i = 1; i < (1u << kWindow); ++i)
    table[i] = mul_mod(table[i - 1], b, m);

  // Process the exponent from the most significant window down.
  std::size_t windows = (nbits + kWindow - 1) / kWindow;
  Bignum result(1);
  for (std::size_t w = windows; w-- > 0;) {
    for (std::size_t s = 0; s < kWindow; ++s)
      result = mul_mod(result, result, m);
    std::size_t chunk = 0;
    for (std::size_t s = kWindow; s-- > 0;) {
      chunk <<= 1;
      std::size_t bit_index = w * kWindow + s;
      if (bit_index < nbits && exp.bit(bit_index)) chunk |= 1;
    }
    if (chunk != 0) result = mul_mod(result, table[chunk], m);
  }
  return result;
}

Bignum Bignum::gcd(Bignum a, Bignum b) {
  while (!b.is_zero()) {
    Bignum r = a % b;
    a = b;
    b = r;
  }
  return a;
}

Bignum Bignum::mod_inv(const Bignum& a, const Bignum& m) {
  COIN_REQUIRE(!m.is_zero(), "mod_inv: zero modulus");
  // Extended Euclid with signed coefficients tracked as (value, sign).
  Bignum r0 = m, r1 = a % m;
  Bignum t0, t1(1);
  bool t0_neg = false, t1_neg = false;
  while (!r1.is_zero()) {
    DivMod dm = divmod(r0, r1);
    // (t0, t1) <- (t1, t0 - q * t1) with sign tracking.
    Bignum qt = dm.quotient * t1;
    Bignum new_t;
    bool new_neg;
    if (t0_neg == t1_neg) {
      if (t0 >= qt) {
        new_t = t0 - qt;
        new_neg = t0_neg;
      } else {
        new_t = qt - t0;
        new_neg = !t0_neg;
      }
    } else {
      new_t = t0 + qt;
      new_neg = t0_neg;
    }
    t0 = t1;
    t0_neg = t1_neg;
    t1 = new_t;
    t1_neg = new_neg;
    r0 = r1;
    r1 = dm.remainder;
  }
  COIN_REQUIRE(r0 == Bignum(1), "mod_inv: not invertible");
  Bignum inv = t0 % m;
  if (t0_neg && !inv.is_zero()) inv = m - inv;
  return inv;
}

}  // namespace coincidence::crypto
