// Arbitrary-precision unsigned integers, from scratch.
//
// This backs the real (non-simulated) VRF: a DDH-VRF over the quadratic-
// residue subgroup of a safe prime (see prime_group.h / ddh_vrf.h).
// Little-endian 64-bit limbs, schoolbook multiplication with 128-bit
// intermediates, Knuth Algorithm D division, binary extended GCD inverse,
// and left-to-right square-and-multiply modular exponentiation. These are
// textbook algorithms chosen for auditability; at the 256–1536 bit sizes
// the simulator uses they are more than fast enough.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.h"

namespace coincidence::crypto {

class Bignum;
struct DivMod;
/// Knuth Algorithm D; throws PreconditionError on division by zero.
DivMod divmod(const Bignum& u, const Bignum& v);

class Bignum {
 public:
  /// Zero.
  Bignum() = default;
  /// From a machine word.
  Bignum(std::uint64_t v);  // NOLINT(google-explicit-constructor): numeric literal convenience

  /// Big-endian byte-string decoding (empty input = zero).
  static Bignum from_bytes_be(BytesView data);
  /// Hex decoding; accepts odd length and uppercase. Throws CodecError.
  static Bignum from_hex(std::string_view hex);

  /// Big-endian byte encoding, left-padded with zeros to at least
  /// `min_len` bytes (0 encodes as "" unless min_len > 0).
  Bytes to_bytes_be(std::size_t min_len = 0) const;
  std::string to_hex() const;

  bool is_zero() const { return limbs_.empty(); }
  bool is_odd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  /// Number of significant bits (0 for zero).
  std::size_t bit_length() const;
  /// Value of bit i (i >= bit_length() reads as 0).
  bool bit(std::size_t i) const;
  /// Low 64 bits.
  std::uint64_t low_u64() const { return limbs_.empty() ? 0 : limbs_[0]; }

  /// Three-way comparison: -1, 0, +1.
  static int compare(const Bignum& a, const Bignum& b);

  friend bool operator==(const Bignum& a, const Bignum& b) { return compare(a, b) == 0; }
  friend bool operator!=(const Bignum& a, const Bignum& b) { return compare(a, b) != 0; }
  friend bool operator<(const Bignum& a, const Bignum& b) { return compare(a, b) < 0; }
  friend bool operator<=(const Bignum& a, const Bignum& b) { return compare(a, b) <= 0; }
  friend bool operator>(const Bignum& a, const Bignum& b) { return compare(a, b) > 0; }
  friend bool operator>=(const Bignum& a, const Bignum& b) { return compare(a, b) >= 0; }

  Bignum operator+(const Bignum& rhs) const;
  /// Requires *this >= rhs (unsigned arithmetic); throws otherwise.
  Bignum operator-(const Bignum& rhs) const;
  Bignum operator*(const Bignum& rhs) const;
  Bignum operator/(const Bignum& rhs) const;
  Bignum operator%(const Bignum& rhs) const;
  Bignum operator<<(std::size_t bits) const;
  Bignum operator>>(std::size_t bits) const;

  /// (a + b) mod m, assuming a, b < m.
  static Bignum add_mod(const Bignum& a, const Bignum& b, const Bignum& m);
  /// (a - b) mod m, assuming a, b < m.
  static Bignum sub_mod(const Bignum& a, const Bignum& b, const Bignum& m);
  /// (a * b) mod m.
  static Bignum mul_mod(const Bignum& a, const Bignum& b, const Bignum& m);
  /// base^exp mod m (m > 0). 0^0 = 1 by convention.
  static Bignum mod_exp(const Bignum& base, const Bignum& exp, const Bignum& m);
  /// Multiplicative inverse mod m; throws if gcd(a, m) != 1.
  static Bignum mod_inv(const Bignum& a, const Bignum& m);
  static Bignum gcd(Bignum a, Bignum b);

  /// Access to limbs for tests (little-endian, normalized).
  const std::vector<std::uint64_t>& limbs() const { return limbs_; }

  friend DivMod divmod(const Bignum& u, const Bignum& v);

 private:
  void normalize();

  std::vector<std::uint64_t> limbs_;  // little-endian, no trailing zero limbs
};

struct DivMod {
  Bignum quotient;
  Bignum remainder;
};

}  // namespace coincidence::crypto
