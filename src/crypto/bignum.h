// Arbitrary-precision unsigned integers, from scratch.
//
// This backs the real (non-simulated) VRF: a DDH-VRF over the quadratic-
// residue subgroup of a safe prime (see prime_group.h / ddh_vrf.h).
// Little-endian 64-bit limbs, schoolbook multiplication with 128-bit
// intermediates, Knuth Algorithm D division, binary extended GCD inverse,
// and two modular-exponentiation paths: a division-based reference ladder
// (mod_exp_ref) kept for auditability and cross-checking, and a
// Montgomery-form fast path (MontgomeryCtx) that replaces the per-multiply
// divmod with word-level REDC — the difference between ~30 ms and a few ms
// per DDH-VRF verification at 1536 bits.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.h"

namespace coincidence::crypto {

class Bignum;
struct DivMod;
struct MultiExpTerm;
/// Knuth Algorithm D; throws PreconditionError on division by zero.
DivMod divmod(const Bignum& u, const Bignum& v);

class Bignum {
 public:
  /// Zero.
  Bignum() = default;
  /// From a machine word.
  Bignum(std::uint64_t v);  // NOLINT(google-explicit-constructor): numeric literal convenience

  /// Big-endian byte-string decoding (empty input = zero).
  static Bignum from_bytes_be(BytesView data);
  /// Hex decoding; accepts odd length and uppercase. Throws CodecError.
  static Bignum from_hex(std::string_view hex);

  /// Big-endian byte encoding, left-padded with zeros to at least
  /// `min_len` bytes (0 encodes as "" unless min_len > 0).
  Bytes to_bytes_be(std::size_t min_len = 0) const;
  std::string to_hex() const;

  bool is_zero() const { return limbs_.empty(); }
  bool is_odd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  /// Number of significant bits (0 for zero).
  std::size_t bit_length() const;
  /// Value of bit i (i >= bit_length() reads as 0).
  bool bit(std::size_t i) const;
  /// Low 64 bits.
  std::uint64_t low_u64() const { return limbs_.empty() ? 0 : limbs_[0]; }

  /// Three-way comparison: -1, 0, +1.
  static int compare(const Bignum& a, const Bignum& b);

  friend bool operator==(const Bignum& a, const Bignum& b) { return compare(a, b) == 0; }
  friend bool operator!=(const Bignum& a, const Bignum& b) { return compare(a, b) != 0; }
  friend bool operator<(const Bignum& a, const Bignum& b) { return compare(a, b) < 0; }
  friend bool operator<=(const Bignum& a, const Bignum& b) { return compare(a, b) <= 0; }
  friend bool operator>(const Bignum& a, const Bignum& b) { return compare(a, b) > 0; }
  friend bool operator>=(const Bignum& a, const Bignum& b) { return compare(a, b) >= 0; }

  Bignum operator+(const Bignum& rhs) const;
  /// Requires *this >= rhs (unsigned arithmetic); throws otherwise.
  Bignum operator-(const Bignum& rhs) const;
  Bignum operator*(const Bignum& rhs) const;
  Bignum operator/(const Bignum& rhs) const;
  Bignum operator%(const Bignum& rhs) const;
  Bignum operator<<(std::size_t bits) const;
  Bignum operator>>(std::size_t bits) const;

  /// (a + b) mod m, assuming a, b < m.
  static Bignum add_mod(const Bignum& a, const Bignum& b, const Bignum& m);
  /// (a - b) mod m, assuming a, b < m.
  static Bignum sub_mod(const Bignum& a, const Bignum& b, const Bignum& m);
  /// (a * b) mod m.
  static Bignum mul_mod(const Bignum& a, const Bignum& b, const Bignum& m);
  /// base^exp mod m (m > 0). 0^0 = 1 by convention. Dispatches to the
  /// Montgomery fast path for odd multi-limb moduli with non-trivial
  /// exponents, and to mod_exp_ref otherwise; both return identical values.
  static Bignum mod_exp(const Bignum& base, const Bignum& exp, const Bignum& m);
  /// Division-based reference ladder (the original implementation). Kept
  /// as an independently-auditable oracle for the Montgomery path.
  static Bignum mod_exp_ref(const Bignum& base, const Bignum& exp,
                            const Bignum& m);
  /// Multiplicative inverse mod m; throws if gcd(a, m) != 1.
  static Bignum mod_inv(const Bignum& a, const Bignum& m);
  static Bignum gcd(Bignum a, Bignum b);

  /// Jacobi symbol (a/n) for odd n > 0: +1, -1, or 0. For prime n this is
  /// the Legendre symbol, so (a/p) == 1 iff a is a nonzero quadratic
  /// residue — an O(bits²) subgroup test that replaces a full mod_exp.
  static int jacobi(const Bignum& a, const Bignum& n);

  /// Access to limbs for tests (little-endian, normalized).
  const std::vector<std::uint64_t>& limbs() const { return limbs_; }

  friend DivMod divmod(const Bignum& u, const Bignum& v);
  friend class MontgomeryCtx;
  friend class CombTable;

 private:
  void normalize();

  std::vector<std::uint64_t> limbs_;  // little-endian, no trailing zero limbs
};

struct DivMod {
  Bignum quotient;
  Bignum remainder;
};

/// One term of a multi-exponentiation (see MontgomeryCtx::multi_exp).
struct MultiExpTerm {
  Bignum base;
  Bignum exp;
};

/// Montgomery-form modular arithmetic for a fixed odd modulus m.
///
/// Precomputes n' = -m⁻¹ mod 2⁶⁴ and R² mod m (R = 2^(64·k), k = limb
/// count of m) once, then every modular multiply is a word-level CIOS
/// REDC — no division anywhere on the hot path. The windowed mod_exp and
/// the Straus/Shamir dual_exp stay in Montgomery form for the whole
/// ladder, converting in and out exactly once. Immutable after
/// construction, so one context can be shared freely across threads.
class MontgomeryCtx {
 public:
  /// Throws PreconditionError unless m is odd and > 1.
  explicit MontgomeryCtx(const Bignum& m);

  const Bignum& modulus() const { return m_; }
  std::size_t limb_count() const { return k_; }

  /// a·R mod m (a is reduced mod m first).
  Bignum to_mont(const Bignum& a) const;
  /// a·R⁻¹ mod m (inverse of to_mont on reduced inputs).
  Bignum from_mont(const Bignum& a) const;

  /// Montgomery product a·b·R⁻¹ mod m. Operands must be < m; when both are
  /// in Montgomery form the result is the Montgomery form of the product.
  Bignum mont_mul(const Bignum& a, const Bignum& b) const;
  /// Montgomery square (same contract as mont_mul(a, a), ~25% cheaper).
  Bignum mont_sqr(const Bignum& a) const;

  /// base^exp mod m via a 4-bit fixed-window ladder entirely in
  /// Montgomery form. 0^0 = 1, matching Bignum::mod_exp_ref.
  Bignum mod_exp(const Bignum& base, const Bignum& exp) const;

  /// a^ea · b^eb mod m in ONE ladder: Straus/Shamir interleaving with
  /// 3-bit windows per exponent shares every squaring between the two
  /// exponentiations — the dominant cost of a DLEQ verification.
  Bignum dual_exp(const Bignum& a, const Bignum& ea, const Bignum& b,
                  const Bignum& eb) const;

  /// Π termᵢ.base ^ termᵢ.exp mod m. Pippenger's bucket method: one
  /// shared squaring chain over the longest exponent, with a window size
  /// chosen from the term count; below ~8 terms the bucket bookkeeping
  /// doesn't amortize, so the Straus dual_exp ladder is chained pairwise
  /// instead. Empty input returns 1 mod m.
  Bignum multi_exp(std::span<const MultiExpTerm> terms) const;

 private:
  using Limbs = std::vector<std::uint64_t>;  // fixed k-limb little-endian

  Limbs to_limbs(const Bignum& a) const;  // reduce mod m, pad to k limbs
  Bignum to_bignum(const Limbs& a) const;

  // out = a·b·R⁻¹ mod m (CIOS). `t` is caller scratch of k+2 limbs.
  void mul_redc(const Limbs& a, const Limbs& b, Limbs& out, Limbs& t) const;
  // out = a²·R⁻¹ mod m. `t` is caller scratch of 2k+1 limbs.
  void sqr_redc(const Limbs& a, Limbs& out, Limbs& t) const;
  // Conditional final subtraction shared by both reducers.
  void reduce_once(Limbs& x, std::uint64_t overflow) const;

  Bignum m_;
  Limbs mod_;                 // m, exactly k limbs
  std::size_t k_ = 0;         // limb count of m
  std::uint64_t n0inv_ = 0;   // -m⁻¹ mod 2⁶⁴
  Limbs r2_;                  // R² mod m (to_mont multiplier)
  Limbs one_;                 // R mod m (Montgomery form of 1)

  friend class CombTable;
};

/// Fixed-base comb exponentiation (Lim–Lee) over a MontgomeryCtx.
///
/// For a base reused across many exponentiations (the group generator g),
/// precomputes the 2^t products of g^(2^(i·span)) for the t comb teeth;
/// each exponentiation then costs `span` squarings and at most `span`
/// table multiplies — ~4× fewer limb operations than a fresh windowed
/// ladder at t = 4. Immutable after construction.
class CombTable {
 public:
  /// Table for exponents up to `max_exp_bits` bits. Larger exponents are
  /// handled by exp() via a fallback to ctx->mod_exp.
  CombTable(std::shared_ptr<const MontgomeryCtx> ctx, const Bignum& base,
            std::size_t max_exp_bits);

  /// base^e mod m.
  Bignum exp(const Bignum& e) const;

  std::size_t teeth() const { return kTeeth; }
  std::size_t span() const { return span_; }

 private:
  static constexpr std::size_t kTeeth = 4;

  std::shared_ptr<const MontgomeryCtx> ctx_;
  Bignum base_;
  std::size_t max_bits_ = 0;
  std::size_t span_ = 0;  // ceil(max_bits / kTeeth)
  // table[s] = Π_{i : bit i of s} base^(2^(i·span)), Montgomery form.
  std::vector<std::vector<std::uint64_t>> table_;
};

}  // namespace coincidence::crypto
