// The VRF abstraction of §2: y,π = VRF_sk(x) with
//   * pseudorandomness  — y is indistinguishable from random without sk,
//   * verifiability     — VRF-Ver_pk(x, (y,π)) = true for honest output,
//   * uniqueness        — no two (y1,π1) != (y2,π2) both verify for one x.
//
// Two interchangeable implementations:
//   DdhVrf  — real cryptography (Chaum–Pedersen DLEQ over a safe-prime QR
//             group); use for the crypto test-suite and micro-benches.
//   FastVrf — HMAC-SHA-256 keyed by sk, verified against the simulated
//             PKI (KeyRegistry); O(1) per call so protocol benches can
//             sweep n into the hundreds. Same three properties hold within
//             the simulation's trust model (the registry *is* the PKI).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"

namespace coincidence::crypto {

struct VrfKeyPair {
  Bytes sk;
  Bytes pk;
};

struct VrfOutput {
  Bytes value;  // the pseudorandom output y (32 bytes for both backends)
  Bytes proof;  // the correctness proof π
};

/// One (pk, input, value, proof) tuple of a batch verification. Views
/// must outlive the batch_verify call; they typically point into retained
/// wire buffers.
struct VrfBatchEntry {
  BytesView pk;
  BytesView input;
  BytesView value;
  BytesView proof;
};

class Vrf {
 public:
  virtual ~Vrf() = default;

  /// Generates a keypair from caller-supplied randomness.
  virtual VrfKeyPair keygen(Rng& rng) const = 0;

  /// Evaluates VRF_sk(x).
  virtual VrfOutput eval(BytesView sk, BytesView input) const = 0;

  /// Checks VRF-Ver_pk(x, (y, π)).
  virtual bool verify(BytesView pk, BytesView input,
                      const VrfOutput& out) const = 0;

  /// View-based variant for hot paths: verifies (y, π) straight out of a
  /// decoded wire buffer without materialising a VrfOutput. The default
  /// copies into owned buffers; backends override it to skip the copies.
  virtual bool verify(BytesView pk, BytesView input, BytesView value,
                      BytesView proof) const {
    return verify(pk, input,
                  VrfOutput{Bytes(value.begin(), value.end()),
                            Bytes(proof.begin(), proof.end())});
  }

  /// Verifies a whole batch: on return out[i] == verify(entries[i]...)
  /// for every i, and out.size() == entries.size(). The default loops the
  /// view-based verify — already the right thing for cheap backends like
  /// FastVrf — while DdhVrf overrides it with random-linear-combination
  /// batching. Protocols call this regardless of backend. `out` is a
  /// vector<char> (not <bool>) so chunked parallel flushes can fill
  /// disjoint slots without data races.
  virtual void batch_verify(std::span<const VrfBatchEntry> entries,
                            std::vector<char>& out) const;

  /// Length in bytes of the output value y.
  virtual std::size_t value_size() const = 0;

  virtual const char* name() const = 0;
};

/// Interprets the first 8 bytes of a VRF value as a big-endian integer —
/// the total order the shared coin minimizes over. Collisions across 2^64
/// are negligible at simulation scale; ties are additionally broken by the
/// full value bytes then sender id in protocol code.
std::uint64_t vrf_value_as_u64(BytesView value);

/// Maps a VRF value to a uniform double in [0,1) — committee sampling uses
/// this to compare against the λ/n election threshold.
double vrf_value_as_unit_double(BytesView value);

}  // namespace coincidence::crypto
