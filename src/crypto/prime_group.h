// The prime-order group underlying the DDH VRF.
//
// For a safe prime p = 2q + 1 the quadratic residues of Z_p* form a
// subgroup of prime order q; g = 4 = 2^2 is always a quadratic residue and
// (being != 1) generates it. Hashing into the group is exact: square a
// pseudorandom field element. This gives a textbook DDH-hard group with
// honest hash-to-group — the standard setting for the Chaum–Pedersen DLEQ
// proof used by the VRF.
//
// Every modular operation rides the Montgomery fast path: the group owns
// one immutable MontgomeryCtx for p (shared by copies), a fixed-base comb
// table for the generator g, and a Straus/Shamir dual_exp for the paired
// exponentiations of DLEQ verification. Membership testing uses the
// Jacobi symbol (exact for the QR subgroup of a safe prime) instead of a
// full x^q ladder.
#pragma once

#include <cstdint>
#include <memory>

#include "common/bytes.h"
#include "crypto/bignum.h"

namespace coincidence::crypto {

class PrimeGroup {
 public:
  /// Builds the group from a safe prime. Verifies (probabilistically) that
  /// p and (p-1)/2 are prime; throws ConfigError otherwise.
  static PrimeGroup from_safe_prime(const Bignum& p);

  /// Deterministically generates a fresh safe-prime group of `bits` bits.
  static PrimeGroup generate(std::size_t bits, std::uint64_t seed);

  /// The RFC 2409 768-bit group (primality assumed, not re-verified, so
  /// construction is instant).
  static PrimeGroup rfc2409_768();

  /// The RFC 3526 1536-bit group (primality assumed, not re-verified, so
  /// construction is instant).
  static PrimeGroup rfc3526_1536();

  const Bignum& p() const { return p_; }
  const Bignum& q() const { return q_; }  // group order
  const Bignum& g() const { return g_; }  // generator of the QR subgroup

  /// g^e mod p, via the precomputed fixed-base comb table.
  Bignum exp_g(const Bignum& e) const;
  /// b^e mod p.
  Bignum exp(const Bignum& base, const Bignum& e) const;
  /// a^ea · b^eb mod p in a single shared-squaring ladder (Straus/Shamir).
  /// The workhorse of DLEQ verification: g^s·pk^c and h^s·Γ^c each cost
  /// barely more than ONE exponentiation instead of two.
  Bignum dual_exp(const Bignum& a, const Bignum& ea, const Bignum& b,
                  const Bignum& eb) const;
  /// Π termᵢ.base ^ termᵢ.exp mod p — Pippenger bucket multi-exp (falls
  /// back to chained Straus ladders below ~8 terms). The engine of batch
  /// DLEQ verification: k proofs fold into two multi-exps over short
  /// (128/256-bit) exponents instead of 2k full-width dual ladders.
  Bignum multi_exp(std::span<const MultiExpTerm> terms) const {
    return ctx_->multi_exp(terms);
  }
  /// a*b mod p.
  Bignum mul(const Bignum& a, const Bignum& b) const;
  /// Multiplicative inverse mod p.
  Bignum inv(const Bignum& a) const;

  /// True iff x is a group element: 1 <= x < p and x^q == 1. Implemented
  /// as a Jacobi-symbol test (equivalent for the QR subgroup of a safe
  /// prime, and ~two orders of magnitude cheaper than the x^q ladder).
  bool is_element(const Bignum& x) const;

  /// Hash-to-group: expands `input` with HMAC-DRBG to a field element and
  /// squares it; retries (never observed beyond one retry) on 0/1.
  Bignum hash_to_group(BytesView input) const;

  /// Reduces a hash expansion of `input` into a scalar in [0, q).
  Bignum hash_to_scalar(BytesView input) const;

  /// Fixed-width big-endian encoding of a field element (byte_len() bytes).
  Bytes encode(const Bignum& x) const;
  std::size_t byte_len() const { return byte_len_; }

  /// The shared Montgomery context for p (never null).
  const MontgomeryCtx& mont() const { return *ctx_; }

 private:
  PrimeGroup(Bignum p, Bignum q, Bignum g);

  Bignum p_;
  Bignum q_;
  Bignum g_;
  std::size_t byte_len_ = 0;
  // Shared across copies: both are immutable once built.
  std::shared_ptr<const MontgomeryCtx> ctx_;
  std::shared_ptr<const CombTable> g_comb_;
  // Hoisted domain tags for the hash-to-group/scalar input paths.
  Bytes h2g_tag_;
  Bytes h2s_tag_;
};

}  // namespace coincidence::crypto
