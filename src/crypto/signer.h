// Message signatures for the approver's ok-message proofs (§6.1: an
// ⟨ok,v⟩ message carries W signed ⟨echo,v⟩ messages as validity proof).
//
// Simulated-PKI instantiation: sig = HMAC(sk, msg), verified by
// recomputation through the KeyRegistry. Unforgeable within the
// simulation (the adversary never sees a correct process's sk) and
// costs one word on the wire — exactly how the paper accounts it.
#pragma once

#include <memory>

#include "crypto/key_registry.h"

namespace coincidence::crypto {

class Signer {
 public:
  explicit Signer(std::shared_ptr<const KeyRegistry> registry);

  /// Signature by process `id` over `message`.
  Bytes sign(ProcessId id, BytesView message) const;

  /// True iff `sig` is `id`'s signature over `message`.
  bool verify(ProcessId id, BytesView message, BytesView sig) const;

  /// Wire size of one signature (one "word" in the paper's accounting).
  static constexpr std::size_t kSignatureSize = 32;

 private:
  std::shared_ptr<const KeyRegistry> registry_;
};

}  // namespace coincidence::crypto
