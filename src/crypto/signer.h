// Message signatures for the approver's ok-message proofs (§6.1: an
// ⟨ok,v⟩ message carries W signed ⟨echo,v⟩ messages as validity proof).
//
// Simulated-PKI instantiation: sig = HMAC(sk, msg), verified by
// recomputation through the KeyRegistry. Unforgeable within the
// simulation (the adversary never sees a correct process's sk) and
// costs one word on the wire — exactly how the paper accounts it.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "crypto/key_registry.h"

namespace coincidence::crypto {

/// One (signer, message, sig) triple of a batch verification. Views must
/// outlive the batch_verify call; they typically point into retained
/// wire buffers (the approver's ok-proof entries) or hoisted members.
struct SigBatchEntry {
  ProcessId signer = 0;
  BytesView message;
  BytesView sig;
};

class Signer {
 public:
  explicit Signer(std::shared_ptr<const KeyRegistry> registry);

  /// Signature by process `id` over `message`.
  Bytes sign(ProcessId id, BytesView message) const;

  /// True iff `sig` is `id`'s signature over `message`.
  bool verify(ProcessId id, BytesView message, BytesView sig) const;

  /// Verifies a whole batch: on return out[i] == verify(entries[i]...)
  /// for every i, and out.size() == entries.size(). HMAC recomputation
  /// does not fold the way a multi-exp does, so the amortization here is
  /// structural: the domain-separation prefix is re-tagged only when the
  /// message changes between consecutive entries (the approver's W-entry
  /// sweep signs ONE message), and all verification runs against stack
  /// digests — no per-entry heap traffic. Callers wanting cross-batch
  /// dedup wrap this with a SigMemo (see coin::BatchVerifier).
  void batch_verify(std::span<const SigBatchEntry> entries,
                    std::vector<char>& out) const;

  /// Wire size of one signature (one "word" in the paper's accounting).
  static constexpr std::size_t kSignatureSize = 32;

 private:
  std::shared_ptr<const KeyRegistry> registry_;
};

}  // namespace coincidence::crypto
