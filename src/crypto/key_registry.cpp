#include "crypto/key_registry.h"

#include "common/errors.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace coincidence::crypto {

void KeyRegistry::register_keypair(ProcessId id, Bytes sk, Bytes pk) {
  COIN_REQUIRE(by_id_.count(id) == 0, "KeyRegistry: duplicate id");
  COIN_REQUIRE(by_pk_.count(pk) == 0, "KeyRegistry: duplicate public key");
  by_pk_[pk] = id;
  by_id_[id] = Entry{std::move(sk), std::move(pk)};
}

const Bytes& KeyRegistry::sk_of(ProcessId id) const {
  auto it = by_id_.find(id);
  COIN_REQUIRE(it != by_id_.end(), "KeyRegistry: unknown id");
  return it->second.sk;
}

const Bytes& KeyRegistry::pk_of(ProcessId id) const {
  auto it = by_id_.find(id);
  COIN_REQUIRE(it != by_id_.end(), "KeyRegistry: unknown id");
  return it->second.pk;
}

std::optional<Bytes> KeyRegistry::sk_for_pk(const Bytes& pk) const {
  auto it = by_pk_.find(pk);
  if (it == by_pk_.end()) return std::nullopt;
  return by_id_.at(it->second).sk;
}

std::shared_ptr<KeyRegistry> KeyRegistry::create_for(std::size_t n,
                                                     std::uint64_t seed) {
  auto reg = std::make_shared<KeyRegistry>();
  HmacDrbg drbg(concat({bytes_of("pki"), bytes_of_u64(seed)}));
  for (std::size_t i = 0; i < n; ++i) {
    Bytes sk = drbg.generate(32);
    Bytes pk = sha256_bytes(concat({bytes_of("pk"), BytesView(sk)}));
    reg->register_keypair(static_cast<ProcessId>(i), std::move(sk),
                          std::move(pk));
  }
  return reg;
}

}  // namespace coincidence::crypto
