// HMAC-SHA-256 (RFC 2104 / FIPS 198-1) and HMAC-DRBG (SP 800-90A).
//
// HMAC authenticates simulated-PKI messages (see Signer) and keys the
// FastVrf; the DRBG turns VRF outputs into arbitrary-length pseudorandom
// streams (e.g. committee-sampling thresholds).
#pragma once

#include "common/bytes.h"
#include "crypto/sha256.h"

namespace coincidence::crypto {

/// One-shot HMAC-SHA-256.
Digest hmac_sha256(BytesView key, BytesView message);

/// One-shot HMAC-SHA-256 returning Bytes.
Bytes hmac_sha256_bytes(BytesView key, BytesView message);

/// Deterministic random bit generator per SP 800-90A HMAC_DRBG
/// (no reseeding; the simulator never generates more than 2^19 bits
/// per instantiation).
class HmacDrbg {
 public:
  explicit HmacDrbg(BytesView seed);

  /// Next `n` pseudorandom bytes.
  Bytes generate(std::size_t n);

  /// Same stream as generate(), but fills `out` in place (resized to `n`)
  /// so a caller looping draws — hash_to_group's retry loop, committee
  /// threshold expansion — reuses one allocation instead of minting a
  /// fresh Bytes per call.
  void generate_into(std::size_t n, Bytes& out);

  /// Next uniform u64 (first 8 bytes of a generate(8) call).
  std::uint64_t next_u64();

 private:
  void update(BytesView provided);

  Bytes key_;
  Bytes value_;
};

}  // namespace coincidence::crypto
