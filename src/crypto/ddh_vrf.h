// DDH-based VRF with a Chaum–Pedersen DLEQ proof (the classic
// construction behind ECVRF, instantiated over a safe-prime QR group):
//
//   keygen:  sk ∈ [1, q),  pk = g^sk
//   eval(x): h = H1(x), Γ = h^sk, y = H2(Γ)
//            proof: deterministic nonce k (RFC 6979 style),
//                   a = g^k, b = h^k, c = H3(g,h,pk,Γ,a,b), s = k − c·sk
//   verify:  c = H3(g,h,pk,Γ,a,b),
//            accept iff pk,Γ,a,b ∈ G, a = g^s·pk^c, b = h^s·Γ^c, y = H2(Γ)
//
// The proof transmits the commitments (Γ, a, b, s) rather than the
// compressed (Γ, c, s) form: recomputing c from the transmitted a, b and
// checking the two group equations is what makes k proofs foldable into
// ONE random linear combination (batch_verify below) — the hash-compare
// form needs a'/b' individually and cannot be batched. The challenge is
// truncated to 128 bits (ECVRF-style): soundness 2⁻¹²⁸ per proof, and the
// per-entry batch exponents stay 128/256 bits wide, which is where the
// near-k-fold amortization comes from.
//
// Uniqueness holds because Γ = h^sk is a function of (pk, x) and H2 is
// deterministic; the subgroup checks (Jacobi) on pk, Γ, a, b close the
// order-2 escape hatch in the safe-prime setting — for the batch path
// they are load-bearing, since a random combination would catch a Z₂
// component only with probability 1/2.
#pragma once

#include "crypto/prime_group.h"
#include "crypto/vrf.h"

namespace coincidence::crypto {

class DdhVrf final : public Vrf {
 public:
  explicit DdhVrf(PrimeGroup group);

  VrfKeyPair keygen(Rng& rng) const override;
  VrfOutput eval(BytesView sk, BytesView input) const override;
  bool verify(BytesView pk, BytesView input,
              const VrfOutput& out) const override;
  bool verify(BytesView pk, BytesView input, BytesView value,
              BytesView proof) const override;

  /// Bellare–Garay–Rabin small-exponent batch verification: all k DLEQ
  /// proofs fold under independent 128-bit DRBG scalars zᵢ, wᵢ into
  ///
  ///   Π aᵢ^zᵢ · bᵢ^wᵢ  ==  Π pkᵢ^(zᵢcᵢ) · Γᵢ^(wᵢcᵢ)
  ///                        · g^(Σzᵢsᵢ) · Π_x H1(x)^(Σ_{inputᵢ=x} wᵢsᵢ)
  ///
  /// — two Pippenger multi-exps over short exponents plus one fixed-base
  /// comb and one exponentiation per distinct input, instead of 2k dual
  /// ladders. On failure, binary-split attribution isolates the bad
  /// entries in O(bad·log k) subset multi-exps; singletons are checked
  /// with the exact per-proof equations, so the accept/reject sets are
  /// bit-identical to verify() (up to the 2⁻¹²⁸ combination soundness
  /// error on multi-entry subsets). The combiner scalars are derived
  /// deterministically from (batch_seed, entry bytes), so replays — at
  /// any thread count — see identical scalars.
  void batch_verify(std::span<const VrfBatchEntry> entries,
                    std::vector<char>& out) const override;

  /// Folds a session seed into the combiner DRBG so distinct runs draw
  /// distinct scalars while replays of one run stay deterministic. Call
  /// before sharing the instance across threads; defaults to 0.
  void set_batch_seed(std::uint64_t seed) { batch_seed_ = seed; }

  std::size_t value_size() const override { return 32; }
  const char* name() const override { return "ddh-vrf"; }

  const PrimeGroup& group() const { return group_; }

 private:
  struct ParsedEntry;

  Bignum challenge(const Bignum& h, const Bignum& pk, const Bignum& gamma,
                   const Bignum& a, const Bignum& b) const;
  /// The two DLEQ group equations, exactly as verify() checks them.
  bool check_single(const ParsedEntry& e) const;
  /// Randomized subset check over already-parsed entries (indices into
  /// `parsed`); true iff the folded equation holds.
  bool check_subset(const std::vector<ParsedEntry>& parsed,
                    const std::vector<std::size_t>& subset) const;

  PrimeGroup group_;
  std::uint64_t batch_seed_ = 0;
};

}  // namespace coincidence::crypto
