// DDH-based VRF with a Chaum–Pedersen DLEQ proof (the classic
// construction behind ECVRF, instantiated over a safe-prime QR group):
//
//   keygen:  sk ∈ [1, q),  pk = g^sk
//   eval(x): h = H1(x), Γ = h^sk, y = H2(Γ)
//            proof: deterministic nonce k (RFC 6979 style),
//                   a = g^k, b = h^k, c = H3(g,h,pk,Γ,a,b), s = k − c·sk
//   verify:  a' = g^s · pk^c, b' = h^s · Γ^c,
//            accept iff Γ ∈ G, c = H3(g,h,pk,Γ,a',b'), y = H2(Γ)
//
// Uniqueness holds because Γ = h^sk is a function of (pk, x) and H2 is
// deterministic; the subgroup check Γ^q = 1 closes the small-order escape
// hatch in the safe-prime setting.
#pragma once

#include "crypto/prime_group.h"
#include "crypto/vrf.h"

namespace coincidence::crypto {

class DdhVrf final : public Vrf {
 public:
  explicit DdhVrf(PrimeGroup group);

  VrfKeyPair keygen(Rng& rng) const override;
  VrfOutput eval(BytesView sk, BytesView input) const override;
  using Vrf::verify;  // keep the base's view-based overload visible
  bool verify(BytesView pk, BytesView input,
              const VrfOutput& out) const override;
  std::size_t value_size() const override { return 32; }
  const char* name() const override { return "ddh-vrf"; }

  const PrimeGroup& group() const { return group_; }

 private:
  Bignum challenge(const Bignum& h, const Bignum& pk, const Bignum& gamma,
                   const Bignum& a, const Bignum& b) const;

  PrimeGroup group_;
};

}  // namespace coincidence::crypto
