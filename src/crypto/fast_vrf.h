// Simulation-speed VRF: y = HMAC(sk, 0x01 || x), π = HMAC(sk, 0x02 || x).
//
// Verification recomputes both MACs using the secret key looked up in the
// trusted KeyRegistry (the simulated PKI — see key_registry.h for why this
// preserves the paper's trust model). Properties within that model:
//   pseudorandomness — HMAC output is unpredictable without sk;
//   verifiability    — honest (y, π) always verifies;
//   uniqueness       — y is a deterministic function of (sk, x); any forged
//                      (y', π') with y' != y fails the recomputation check.
// O(1) per call, which is what lets the protocol benches sweep n into the
// hundreds on a single core. The DESIGN.md substitution table and the
// micro_crypto bench quantify the cost difference vs DdhVrf.
#pragma once

#include <memory>

#include "crypto/key_registry.h"
#include "crypto/vrf.h"

namespace coincidence::crypto {

class FastVrf final : public Vrf {
 public:
  explicit FastVrf(std::shared_ptr<const KeyRegistry> registry);

  VrfKeyPair keygen(Rng& rng) const override;
  VrfOutput eval(BytesView sk, BytesView input) const override;
  bool verify(BytesView pk, BytesView input,
              const VrfOutput& out) const override;
  bool verify(BytesView pk, BytesView input, BytesView value,
              BytesView proof) const override;
  std::size_t value_size() const override { return 32; }
  const char* name() const override { return "fast-vrf"; }

 private:
  std::shared_ptr<const KeyRegistry> registry_;
};

}  // namespace coincidence::crypto
