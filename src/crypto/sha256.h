// SHA-256 (FIPS 180-4), implemented from scratch.
//
// This is the hash underlying every derived primitive in the library:
// HMAC, HMAC-DRBG, the hash-to-group map of the DDH VRF, the FastVrf and
// the simulated signature scheme. Tested against the FIPS/NIST vectors.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace coincidence::crypto {

inline constexpr std::size_t kSha256DigestSize = 32;
inline constexpr std::size_t kSha256BlockSize = 64;

using Digest = std::array<std::uint8_t, kSha256DigestSize>;

/// Incremental SHA-256. Usage: Sha256 h; h.update(a); h.update(b);
/// Digest d = h.finish();  finish() may be called exactly once.
class Sha256 {
 public:
  Sha256();

  void update(BytesView data);
  Digest finish();

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, kSha256BlockSize> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
  bool finished_ = false;
};

/// One-shot convenience.
Digest sha256(BytesView data);

/// One-shot returning a Bytes (handy for serialization paths).
Bytes sha256_bytes(BytesView data);

}  // namespace coincidence::crypto
