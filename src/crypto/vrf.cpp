#include "crypto/vrf.h"

#include "common/errors.h"

namespace coincidence::crypto {

void Vrf::batch_verify(std::span<const VrfBatchEntry> entries,
                       std::vector<char>& out) const {
  out.resize(entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const VrfBatchEntry& e = entries[i];
    out[i] = verify(e.pk, e.input, e.value, e.proof) ? 1 : 0;
  }
}

std::uint64_t vrf_value_as_u64(BytesView value) {
  COIN_REQUIRE(value.size() >= 8, "vrf value too short");
  return u64_of_bytes(value);
}

double vrf_value_as_unit_double(BytesView value) {
  // 53 bits of the value, same construction as Rng::next_double.
  return static_cast<double>(vrf_value_as_u64(value) >> 11) * 0x1.0p-53;
}

}  // namespace coincidence::crypto
