#include "crypto/vrf.h"

#include "common/errors.h"

namespace coincidence::crypto {

std::uint64_t vrf_value_as_u64(BytesView value) {
  COIN_REQUIRE(value.size() >= 8, "vrf value too short");
  return u64_of_bytes(value);
}

double vrf_value_as_unit_double(BytesView value) {
  // 53 bits of the value, same construction as Rng::next_double.
  return static_cast<double>(vrf_value_as_u64(value) >> 11) * 0x1.0p-53;
}

}  // namespace coincidence::crypto
