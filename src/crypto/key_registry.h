// The simulated trusted PKI of §2.
//
// The paper assumes keys are generated before the protocol starts and the
// public keys of all n processes are well known. KeyRegistry models
// exactly that: a trusted, immutable-after-setup table mapping process ids
// to keypairs. The *verification* side of the cheap crypto backends
// (FastVrf, Signer) consults the registry the way real verifiers consult
// a public key plus algebra — the registry stands in for the algebra, not
// for the trust assumption, which the paper already makes.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"

namespace coincidence::crypto {

using ProcessId = std::uint32_t;

class KeyRegistry {
 public:
  struct Entry {
    Bytes sk;
    Bytes pk;
  };

  /// Registers a keypair for `id`; throws if `id` already registered.
  void register_keypair(ProcessId id, Bytes sk, Bytes pk);

  std::size_t size() const { return by_id_.size(); }
  bool has(ProcessId id) const { return by_id_.count(id) > 0; }

  const Bytes& sk_of(ProcessId id) const;
  const Bytes& pk_of(ProcessId id) const;

  /// Reverse lookup: secret key for a public key (what FastVrf::verify
  /// uses to recompute the MAC). Empty optional for unknown keys.
  std::optional<Bytes> sk_for_pk(const Bytes& pk) const;

  /// Convenience: derives n deterministic keypairs (sk = DRBG(seed, i),
  /// pk = SHA-256(sk)) — the standard setup for simulation processes.
  static std::shared_ptr<KeyRegistry> create_for(std::size_t n,
                                                 std::uint64_t seed);

 private:
  std::map<ProcessId, Entry> by_id_;
  std::map<Bytes, ProcessId> by_pk_;
};

}  // namespace coincidence::crypto
