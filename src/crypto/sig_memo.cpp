#include "crypto/sig_memo.h"

#include <algorithm>

namespace coincidence::crypto {

namespace {

// FNV-1a with a length marker between fields, mirroring VerifyMemo: the
// marker keeps (message="ab", sig="c") and (message="a", sig="bc") from
// fingerprinting alike.
std::uint64_t fnv1a(std::uint64_t h, BytesView data) {
  constexpr std::uint64_t kPrime = 1099511628211ULL;
  h ^= data.size();
  h *= kPrime;
  for (std::uint8_t byte : data) {
    h ^= byte;
    h *= kPrime;
  }
  return h;
}

}  // namespace

std::uint64_t SigMemo::fingerprint(const SigBatchEntry& e) {
  std::uint64_t fp = 1469598103934665603ULL;  // FNV offset basis
  fp ^= e.signer;
  fp *= 1099511628211ULL;
  fp = fnv1a(fp, e.message);
  fp = fnv1a(fp, e.sig);
  return fp;
}

bool SigMemo::matches(const Entry& entry, const SigBatchEntry& e) {
  return entry.signer == e.signer &&
         entry.message.size() == e.message.size() &&
         entry.sig.size() == e.sig.size() &&
         std::equal(e.message.begin(), e.message.end(),
                    entry.message.begin()) &&
         std::equal(e.sig.begin(), e.sig.end(), entry.sig.begin());
}

std::optional<bool> SigMemo::lookup(const SigBatchEntry& e) const {
  auto [lo, hi] = memo_.equal_range(fingerprint(e));
  for (auto it = lo; it != hi; ++it)
    if (matches(it->second, e)) {
      ++hits_;
      return it->second.ok;
    }
  ++misses_;
  return std::nullopt;
}

void SigMemo::store(const SigBatchEntry& e, bool ok) {
  const std::uint64_t fp = fingerprint(e);
  auto [lo, hi] = memo_.equal_range(fp);
  for (auto it = lo; it != hi; ++it)
    if (matches(it->second, e)) {
      it->second.ok = ok;  // unlikely re-store: overwrite
      return;
    }
  memo_.emplace(fp, Entry{e.signer, Bytes(e.message.begin(), e.message.end()),
                          Bytes(e.sig.begin(), e.sig.end()), ok});
}

}  // namespace coincidence::crypto
