#include "crypto/shamir.h"

#include <set>

#include "common/errors.h"

namespace coincidence::crypto {

std::uint64_t Field61::reduce(std::uint64_t x) {
  x = (x & kP) + (x >> 61);
  if (x >= kP) x -= kP;
  return x;
}

std::uint64_t Field61::add(std::uint64_t a, std::uint64_t b) {
  std::uint64_t s = a + b;  // a,b < 2^61 so no overflow in 64 bits
  if (s >= kP) s -= kP;
  return s;
}

std::uint64_t Field61::sub(std::uint64_t a, std::uint64_t b) {
  return a >= b ? a - b : a + kP - b;
}

std::uint64_t Field61::mul(std::uint64_t a, std::uint64_t b) {
  unsigned __int128 prod = static_cast<unsigned __int128>(a) * b;
  // prod < 2^122; fold the high 61-bit chunk twice.
  std::uint64_t lo = static_cast<std::uint64_t>(prod & kP);
  std::uint64_t hi = static_cast<std::uint64_t>(prod >> 61);
  return reduce(lo + reduce(hi));
}

std::uint64_t Field61::pow(std::uint64_t base, std::uint64_t exp) {
  std::uint64_t result = 1;
  std::uint64_t b = reduce(base);
  while (exp > 0) {
    if (exp & 1) result = mul(result, b);
    b = mul(b, b);
    exp >>= 1;
  }
  return result;
}

std::uint64_t Field61::inv(std::uint64_t a) {
  COIN_REQUIRE(reduce(a) != 0, "Field61: inverse of zero");
  return pow(a, kP - 2);
}

std::vector<Share> shamir_share(std::uint64_t secret, std::size_t n,
                                std::size_t t, Rng& rng) {
  COIN_REQUIRE(secret < Field61::kP, "shamir_share: secret out of field");
  COIN_REQUIRE(t < n, "shamir_share: threshold must be below n");
  COIN_REQUIRE(n < Field61::kP, "shamir_share: too many shares");

  std::vector<std::uint64_t> coeffs(t + 1);
  coeffs[0] = secret;
  for (std::size_t i = 1; i <= t; ++i)
    coeffs[i] = rng.next_below(Field61::kP);

  std::vector<Share> shares;
  shares.reserve(n);
  for (std::size_t i = 1; i <= n; ++i) {
    // Horner evaluation at x = i.
    std::uint64_t x = static_cast<std::uint64_t>(i);
    std::uint64_t y = 0;
    for (std::size_t c = t + 1; c-- > 0;) y = Field61::add(Field61::mul(y, x), coeffs[c]);
    shares.push_back({x, y});
  }
  return shares;
}

std::uint64_t shamir_reconstruct(const std::vector<Share>& shares) {
  COIN_REQUIRE(!shares.empty(), "shamir_reconstruct: no shares");
  std::set<std::uint64_t> xs;
  for (const auto& s : shares) {
    COIN_REQUIRE(s.x != 0 && s.x < Field61::kP, "shamir: bad share point");
    COIN_REQUIRE(xs.insert(s.x).second, "shamir: duplicate share point");
  }

  std::uint64_t secret = 0;
  for (std::size_t i = 0; i < shares.size(); ++i) {
    std::uint64_t num = 1, den = 1;
    for (std::size_t j = 0; j < shares.size(); ++j) {
      if (i == j) continue;
      num = Field61::mul(num, shares[j].x);  // (0 - x_j) up to sign…
      den = Field61::mul(den, Field61::sub(shares[j].x, shares[i].x));
    }
    // …signs cancel pairwise between numerator and denominator:
    // prod(0-x_j)/prod(x_i-x_j) = prod(x_j)/prod(x_j-x_i).
    std::uint64_t li = Field61::mul(num, Field61::inv(den));
    secret = Field61::add(secret, Field61::mul(shares[i].y, li));
  }
  return secret;
}

}  // namespace coincidence::crypto
