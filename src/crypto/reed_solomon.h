// Systematic Reed–Solomon erasure code over GF(2^8) (ISSUE 10 tentpole).
//
// The erasure-coded broadcast (ba/rbc_ec.h) splits a value into k = f+1
// data fragments and n−k parity fragments so that *any* k of the n
// fragments reconstruct the value — the MDS property that lets a source
// disseminate O(|v|/k) bytes per process instead of re-shipping the whole
// value n times.
//
// Construction: the value is striped into k data fragments of
// L = ⌈|v|/k⌉ bytes (zero-padded). For byte position j, the k data bytes
// define the unique polynomial p_j of degree < k with p_j(x_i) = data
// byte i at evaluation points x_i = i; parity fragment i ∈ [k, n) holds
// p_j(x_i) at every position j. Decoding Lagrange-interpolates each
// position from any k distinct fragments. All arithmetic is in GF(2^8)
// with the AES-adjacent primitive polynomial x^8+x^4+x^3+x^2+1 (0x11d),
// multiplied via log/exp tables. Field size caps n at 255 fragments —
// plenty for the session-layer configurations; callers must gate larger
// cohorts onto the Bracha backend.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/bytes.h"

namespace coincidence::crypto {

/// GF(2^8) helpers, exposed for tests and micro-benches.
namespace gf256 {
std::uint8_t mul(std::uint8_t a, std::uint8_t b);
std::uint8_t inv(std::uint8_t a);  // COIN_REQUIRE(a != 0)
}  // namespace gf256

class ReedSolomon {
 public:
  /// `n` total fragments, `k` data fragments; 1 <= k <= n <= 255.
  ReedSolomon(std::size_t n, std::size_t k);

  std::size_t n() const { return n_; }
  std::size_t k() const { return k_; }

  /// Per-fragment byte length for a `value_size`-byte value: ⌈size/k⌉.
  std::size_t fragment_size(std::size_t value_size) const {
    return (value_size + k_ - 1) / k_;
  }

  /// Encodes `value` into n fragments of fragment_size(value.size())
  /// bytes each; fragments [0, k) concatenate to the zero-padded value
  /// (systematic part), [k, n) are parity.
  std::vector<Bytes> encode(BytesView value) const;

  /// Reconstructs the original value from any k distinct (index,
  /// fragment) pairs. Throws CodecError on duplicate/out-of-range
  /// indices, a fragment-count or fragment-length mismatch, or
  /// value_size > k * fragment length.
  Bytes decode(const std::vector<std::pair<std::size_t, Bytes>>& fragments,
               std::size_t value_size) const;

 private:
  /// Lagrange coefficients c_s such that p(target) = Σ c_s · y_s for the
  /// unique degree-<k polynomial through (xs[s], y_s).
  std::vector<std::uint8_t> lagrange_row(const std::vector<std::uint8_t>& xs,
                                         std::uint8_t target) const;

  std::size_t n_;
  std::size_t k_;
  // Precomputed encode matrix: parity_rows_[i - k][m] is the weight of
  // data fragment m in parity fragment i.
  std::vector<std::vector<std::uint8_t>> parity_rows_;
};

}  // namespace coincidence::crypto
