// Verified-share memo: a result cache over (pk, input, value, proof)
// tuples, keyed the same way as committee/CachingSampler — an FNV-1a
// fingerprint for the hash table plus the full bytes for exact equality.
//
// Lossy links duplicate and replay coin shares verbatim (see
// sim::NetworkProfile); with deferred batch verification those copies
// would otherwise re-enter a batch and pay the multi-exp again. The memo
// makes every re-delivered tuple a dictionary hit. Negative results are
// cached too: a forged share replayed n times costs one verification.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <unordered_map>

#include "common/bytes.h"
#include "crypto/vrf.h"

namespace coincidence::crypto {

class VerifyMemo {
 public:
  /// The cached verdict for `e`, if any. Counts a hit or miss.
  std::optional<bool> lookup(const VrfBatchEntry& e) const;

  /// Records the verdict for `e` (overwrites on the unlikely re-store).
  void store(const VrfBatchEntry& e, bool ok);

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::size_t size() const { return memo_.size(); }

 private:
  struct Key {
    std::uint64_t fingerprint;
    Bytes pk, input, value, proof;

    friend bool operator==(const Key& a, const Key& b) {
      return a.fingerprint == b.fingerprint && a.pk == b.pk &&
             a.input == b.input && a.value == b.value && a.proof == b.proof;
    }
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      return static_cast<std::size_t>(k.fingerprint);
    }
  };

  static Key make_key(const VrfBatchEntry& e);

  std::unordered_map<Key, bool, KeyHash> memo_;
  mutable std::uint64_t hits_ = 0;
  mutable std::uint64_t misses_ = 0;
};

}  // namespace coincidence::crypto
