// Verified-signature memo: a result cache over (signer, message, sig)
// triples, keyed the same way as crypto::VerifyMemo — an FNV-1a
// fingerprint for the hash table plus the full bytes for exact equality.
//
// The approver's ok-path is where this pays: every ⟨ok,v⟩ message embeds
// the SAME W signed ⟨echo,v⟩ entries (§6.1), so the ~λ ok messages a
// process receives would re-verify n·W HMACs that collapse to ~W memo
// misses. Because the key includes the signature bytes, a forged
// signature caches its own (negative) verdict without poisoning the
// honest (signer, message) pair — the honest entry is a different key.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <unordered_map>

#include "common/bytes.h"
#include "crypto/signer.h"

namespace coincidence::crypto {

class SigMemo {
 public:
  /// The cached verdict for `e`, if any. Counts a hit or miss.
  std::optional<bool> lookup(const SigBatchEntry& e) const;

  /// Records the verdict for `e` (overwrites on the unlikely re-store).
  void store(const SigBatchEntry& e, bool ok);

  /// The table fingerprint of `e` — exposed so batch callers can dedup
  /// identical triples WITHIN one flush before they reach the signer
  /// (the memo itself only collapses repeats across flushes: lookups all
  /// happen before any store).
  static std::uint64_t fingerprint(const SigBatchEntry& e);

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::size_t size() const { return memo_.size(); }

 private:
  // Fingerprint-keyed multimap with owned bytes only in the stored
  // entries: a lookup walks the (almost always singleton) fingerprint
  // bucket comparing views — the hot path allocates nothing. The old
  // map-of-full-keys shape cost two Bytes copies per probe.
  struct Entry {
    ProcessId signer;
    Bytes message, sig;
    bool ok;
  };

  static bool matches(const Entry& entry, const SigBatchEntry& e);

  std::unordered_multimap<std::uint64_t, Entry> memo_;
  mutable std::uint64_t hits_ = 0;
  mutable std::uint64_t misses_ = 0;
};

}  // namespace coincidence::crypto
