#include "crypto/fast_vrf.h"

#include "common/errors.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace coincidence::crypto {

namespace {
Bytes tagged_mac(BytesView sk, std::uint8_t tag, BytesView input) {
  Bytes msg;
  msg.push_back(tag);
  append(msg, input);
  return hmac_sha256_bytes(sk, msg);
}
}  // namespace

FastVrf::FastVrf(std::shared_ptr<const KeyRegistry> registry)
    : registry_(std::move(registry)) {
  COIN_REQUIRE(registry_ != nullptr, "FastVrf needs a key registry");
}

VrfKeyPair FastVrf::keygen(Rng& rng) const {
  Bytes sk = rng.next_bytes(32);
  Bytes pk = sha256_bytes(concat({bytes_of("pk"), BytesView(sk)}));
  return {std::move(sk), std::move(pk)};
}

VrfOutput FastVrf::eval(BytesView sk, BytesView input) const {
  return {tagged_mac(sk, 0x01, input), tagged_mac(sk, 0x02, input)};
}

bool FastVrf::verify(BytesView pk, BytesView input,
                     const VrfOutput& out) const {
  return verify(pk, input, out.value, out.proof);
}

bool FastVrf::verify(BytesView pk, BytesView input, BytesView value,
                     BytesView proof) const {
  auto sk = registry_->sk_for_pk(Bytes(pk.begin(), pk.end()));
  if (!sk) return false;  // not a registered participant
  return ct_equal(value, tagged_mac(*sk, 0x01, input)) &&
         ct_equal(proof, tagged_mac(*sk, 0x02, input));
}

}  // namespace coincidence::crypto
