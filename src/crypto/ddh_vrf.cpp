#include "crypto/ddh_vrf.h"

#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/errors.h"
#include "common/ser.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace coincidence::crypto {

/// Batch-verification working state for one proof: the parsed group
/// elements, the recomputed challenge, and (for multi-entry batches) the
/// 128-bit combiner scalars.
struct DdhVrf::ParsedEntry {
  Bignum pk, gamma, a, b, s;
  Bignum c;               // recomputed 128-bit challenge
  Bignum h;               // H1(input)
  Bignum z, w;            // combiner scalars (set when the batch has ≥ 2)
  std::size_t input_id = 0;  // dense id over the batch's distinct inputs
};

DdhVrf::DdhVrf(PrimeGroup group) : group_(std::move(group)) {}

VrfKeyPair DdhVrf::keygen(Rng& rng) const {
  // sk uniform in [1, q): rejection-free via mod, bias negligible for the
  // >=128-bit groups used outside the unit tests.
  Bytes seed = rng.next_bytes(group_.byte_len() + 16);
  Bignum sk = Bignum::from_bytes_be(seed) % (group_.q() - Bignum(1));
  sk = sk + Bignum(1);
  Bignum pk = group_.exp_g(sk);
  return {sk.to_bytes_be(group_.byte_len()), group_.encode(pk)};
}

Bignum DdhVrf::challenge(const Bignum& h, const Bignum& pk,
                         const Bignum& gamma, const Bignum& a,
                         const Bignum& b) const {
  Writer w;
  w.blob(group_.encode(group_.g()))
      .blob(group_.encode(h))
      .blob(group_.encode(pk))
      .blob(group_.encode(gamma))
      .blob(group_.encode(a))
      .blob(group_.encode(b));
  // 128-bit Fiat–Shamir challenge (ECVRF-style truncation): 2⁻¹²⁸
  // soundness, and short enough that the batch combination's per-entry
  // exponents zᵢcᵢ stay ≤ 256 bits. The tiny unit-test groups have
  // q < 2¹²⁸, hence the reduction.
  Digest d = sha256(concat({bytes_of("h3"), BytesView(w.bytes())}));
  Bignum c = Bignum::from_bytes_be(BytesView(d.data(), 16));
  if (c >= group_.q()) c = c % group_.q();
  return c;
}

VrfOutput DdhVrf::eval(BytesView sk_bytes, BytesView input) const {
  Bignum sk = Bignum::from_bytes_be(sk_bytes);
  COIN_REQUIRE(!sk.is_zero() && sk < group_.q(), "DdhVrf: bad secret key");

  Bignum h = group_.hash_to_group(input);
  Bignum gamma = group_.exp(h, sk);

  // Deterministic nonce bound to (sk, input) — RFC 6979 flavour.
  Bytes nonce_seed = concat({bytes_of("nonce"), BytesView(sk_bytes), input});
  HmacDrbg drbg(nonce_seed);
  Bignum k = Bignum::from_bytes_be(drbg.generate(group_.byte_len() + 8)) %
             (group_.q() - Bignum(1));
  k = k + Bignum(1);

  Bignum a = group_.exp_g(k);
  Bignum b = group_.exp(h, k);
  Bignum pk = group_.exp_g(sk);
  Bignum c = challenge(h, pk, gamma, a, b);
  // s = k - c*sk mod q
  Bignum s = Bignum::sub_mod(k % group_.q(),
                             Bignum::mul_mod(c, sk, group_.q()), group_.q());

  Bytes y = sha256_bytes(concat({bytes_of("h2"), group_.encode(gamma)}));

  // The proof ships the commitments (Γ, a, b, s) — not the compressed
  // (Γ, c, s) — so verifiers can fold many proofs into one random linear
  // combination (see batch_verify).
  Writer proof;
  proof.blob(group_.encode(gamma))
      .blob(group_.encode(a))
      .blob(group_.encode(b))
      .blob(s.to_bytes_be(group_.byte_len()));
  return {y, proof.take()};
}

bool DdhVrf::verify(BytesView pk_bytes, BytesView input,
                    const VrfOutput& out) const {
  return verify(pk_bytes, input, BytesView(out.value), BytesView(out.proof));
}

bool DdhVrf::verify(BytesView pk_bytes, BytesView input, BytesView value,
                    BytesView proof) const {
  Bignum gamma, a, b, s;
  try {
    Reader r(proof);
    gamma = Bignum::from_bytes_be(r.blob_view());
    a = Bignum::from_bytes_be(r.blob_view());
    b = Bignum::from_bytes_be(r.blob_view());
    s = Bignum::from_bytes_be(r.blob_view());
    r.done();
  } catch (const CodecError&) {
    return false;
  }

  Bignum pk = Bignum::from_bytes_be(pk_bytes);
  if (!group_.is_element(pk) || !group_.is_element(gamma) ||
      !group_.is_element(a) || !group_.is_element(b))
    return false;
  if (s >= group_.q()) return false;

  Bignum h = group_.hash_to_group(input);
  Bignum c = challenge(h, pk, gamma, a, b);
  // a == g^s · pk^c and b == h^s · Γ^c, each as ONE Straus/Shamir ladder:
  // the squarings — the dominant cost — are shared between the paired
  // exponentiations instead of paid twice.
  if (group_.dual_exp(group_.g(), s, pk, c) != a) return false;
  if (group_.dual_exp(h, s, gamma, c) != b) return false;

  Bytes y = sha256_bytes(concat({bytes_of("h2"), group_.encode(gamma)}));
  return ct_equal(y, value);
}

bool DdhVrf::check_single(const ParsedEntry& e) const {
  return group_.dual_exp(group_.g(), e.s, e.pk, e.c) == e.a &&
         group_.dual_exp(e.h, e.s, e.gamma, e.c) == e.b;
}

bool DdhVrf::check_subset(const std::vector<ParsedEntry>& parsed,
                          const std::vector<std::size_t>& subset) const {
  const Bignum& q = group_.q();
  // LHS: Π aᵢ^zᵢ · bᵢ^wᵢ — exponents ≤ 128 bits.
  // RHS: Π pkᵢ^(zᵢcᵢ) · Γᵢ^(wᵢcᵢ) — exponents ≤ 256 bits — times the
  // full-width residual folded onto the FIXED bases: g^(Σzᵢsᵢ) on the
  // comb table, and one exponentiation per distinct input for
  // H1(x)^(Σwᵢsᵢ). Keeping the full-width exponents off the Pippenger
  // terms is what keeps the shared squaring chains short.
  std::vector<MultiExpTerm> lhs, rhs;
  lhs.reserve(2 * subset.size());
  rhs.reserve(2 * subset.size());
  Bignum sum_zs;
  // input_id → (h, Σ wᵢsᵢ); std::map for a deterministic fold order.
  std::map<std::size_t, std::pair<const Bignum*, Bignum>> by_input;
  for (std::size_t i : subset) {
    const ParsedEntry& e = parsed[i];
    lhs.push_back({e.a, e.z});
    lhs.push_back({e.b, e.w});
    rhs.push_back({e.pk, Bignum::mul_mod(e.z, e.c, q)});
    rhs.push_back({e.gamma, Bignum::mul_mod(e.w, e.c, q)});
    sum_zs = Bignum::add_mod(sum_zs, Bignum::mul_mod(e.z, e.s, q), q);
    auto [it, fresh] = by_input.try_emplace(e.input_id, &e.h, Bignum());
    it->second.second =
        Bignum::add_mod(it->second.second, Bignum::mul_mod(e.w, e.s, q), q);
  }
  Bignum left = group_.multi_exp(lhs);
  Bignum right = group_.multi_exp(rhs);
  right = group_.mul(right, group_.exp_g(sum_zs));
  for (const auto& [id, hw] : by_input)
    right = group_.mul(right, group_.exp(*hw.first, hw.second));
  return left == right;
}

void DdhVrf::batch_verify(std::span<const VrfBatchEntry> entries,
                          std::vector<char>& out) const {
  out.assign(entries.size(), 0);
  if (entries.empty()) return;

  // Structural pass: parse, subgroup-check and y-bind every entry exactly
  // as verify() does. Entries failing here are rejected outright and
  // never enter the combination (a non-element could defeat it: a stray
  // order-2 component survives a random combination with probability
  // 1/2). `live` keeps batch order, so scalar derivation is order-stable.
  std::vector<ParsedEntry> parsed(entries.size());
  std::vector<std::size_t> live;
  live.reserve(entries.size());
  std::unordered_map<std::string, std::size_t> input_ids;
  std::vector<Bignum> hs;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const VrfBatchEntry& e = entries[i];
    ParsedEntry& p = parsed[i];
    try {
      Reader r(e.proof);
      p.gamma = Bignum::from_bytes_be(r.blob_view());
      p.a = Bignum::from_bytes_be(r.blob_view());
      p.b = Bignum::from_bytes_be(r.blob_view());
      p.s = Bignum::from_bytes_be(r.blob_view());
      r.done();
    } catch (const CodecError&) {
      continue;
    }
    p.pk = Bignum::from_bytes_be(e.pk);
    if (!group_.is_element(p.pk) || !group_.is_element(p.gamma) ||
        !group_.is_element(p.a) || !group_.is_element(p.b))
      continue;
    if (p.s >= group_.q()) continue;
    Bytes y = sha256_bytes(concat({bytes_of("h2"), group_.encode(p.gamma)}));
    if (!ct_equal(y, e.value)) continue;

    std::string key(e.input.begin(), e.input.end());
    auto [it, fresh] = input_ids.emplace(std::move(key), hs.size());
    if (fresh) hs.push_back(group_.hash_to_group(e.input));
    p.input_id = it->second;
    p.h = hs[it->second];
    p.c = challenge(p.h, p.pk, p.gamma, p.a, p.b);
    live.push_back(i);
  }
  if (live.empty()) return;
  if (live.size() == 1) {
    out[live[0]] = check_single(parsed[live[0]]) ? 1 : 0;
    return;
  }

  // Combiner scalars: content-addressed — seeded from the session's
  // batch seed plus a hash of every surviving entry's bytes — so a
  // replayed run (at any thread count) derives the identical zᵢ, wᵢ. The
  // scalars are independent per entry; sharing one scalar between the
  // two equations would let an adversary cancel forged terms across
  // them.
  Writer transcript;
  for (std::size_t i : live)
    transcript.blob(entries[i].pk)
        .blob(entries[i].input)
        .blob(entries[i].value)
        .blob(entries[i].proof);
  HmacDrbg drbg(concat({bytes_of("batch-dleq"), bytes_of_u64(batch_seed_),
                        sha256_bytes(transcript.bytes())}));
  for (std::size_t i : live) {
    ParsedEntry& p = parsed[i];
    p.z = Bignum::from_bytes_be(drbg.generate(16)) % group_.q();
    if (p.z.is_zero()) p.z = Bignum(1);
    p.w = Bignum::from_bytes_be(drbg.generate(16)) % group_.q();
    if (p.w.is_zero()) p.w = Bignum(1);
  }

  if (check_subset(parsed, live)) {
    for (std::size_t i : live) out[i] = 1;
    return;
  }

  // Binary-split attribution: a failing subset splits in half and each
  // half re-checks, isolating the bad entries in O(bad·log k) subset
  // multi-exps. Singletons are decided by the exact per-proof equations,
  // so the final verdicts match verify() bit-for-bit.
  std::function<void(const std::vector<std::size_t>&)> attribute =
      [&](const std::vector<std::size_t>& subset) {
        std::size_t mid = subset.size() / 2;
        std::vector<std::size_t> halves[2] = {
            {subset.begin(), subset.begin() + mid},
            {subset.begin() + mid, subset.end()}};
        for (const std::vector<std::size_t>& half : halves) {
          if (half.size() == 1) {
            out[half[0]] = check_single(parsed[half[0]]) ? 1 : 0;
          } else if (check_subset(parsed, half)) {
            for (std::size_t i : half) out[i] = 1;
          } else {
            attribute(half);
          }
        }
      };
  attribute(live);
}

}  // namespace coincidence::crypto
