#include "crypto/ddh_vrf.h"

#include "common/errors.h"
#include "common/ser.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace coincidence::crypto {

DdhVrf::DdhVrf(PrimeGroup group) : group_(std::move(group)) {}

VrfKeyPair DdhVrf::keygen(Rng& rng) const {
  // sk uniform in [1, q): rejection-free via mod, bias negligible for the
  // >=128-bit groups used outside the unit tests.
  Bytes seed = rng.next_bytes(group_.byte_len() + 16);
  Bignum sk = Bignum::from_bytes_be(seed) % (group_.q() - Bignum(1));
  sk = sk + Bignum(1);
  Bignum pk = group_.exp_g(sk);
  return {sk.to_bytes_be(group_.byte_len()), group_.encode(pk)};
}

Bignum DdhVrf::challenge(const Bignum& h, const Bignum& pk,
                         const Bignum& gamma, const Bignum& a,
                         const Bignum& b) const {
  Writer w;
  w.blob(group_.encode(group_.g()))
      .blob(group_.encode(h))
      .blob(group_.encode(pk))
      .blob(group_.encode(gamma))
      .blob(group_.encode(a))
      .blob(group_.encode(b));
  return group_.hash_to_scalar(w.bytes());
}

VrfOutput DdhVrf::eval(BytesView sk_bytes, BytesView input) const {
  Bignum sk = Bignum::from_bytes_be(sk_bytes);
  COIN_REQUIRE(!sk.is_zero() && sk < group_.q(), "DdhVrf: bad secret key");

  Bignum h = group_.hash_to_group(input);
  Bignum gamma = group_.exp(h, sk);

  // Deterministic nonce bound to (sk, input) — RFC 6979 flavour.
  Bytes nonce_seed = concat({bytes_of("nonce"), BytesView(sk_bytes), input});
  HmacDrbg drbg(nonce_seed);
  Bignum k = Bignum::from_bytes_be(drbg.generate(group_.byte_len() + 8)) %
             (group_.q() - Bignum(1));
  k = k + Bignum(1);

  Bignum a = group_.exp_g(k);
  Bignum b = group_.exp(h, k);
  Bignum pk = group_.exp_g(sk);
  Bignum c = challenge(h, pk, gamma, a, b);
  // s = k - c*sk mod q
  Bignum s = Bignum::sub_mod(k % group_.q(),
                             Bignum::mul_mod(c, sk, group_.q()), group_.q());

  Bytes y = sha256_bytes(concat({bytes_of("h2"), group_.encode(gamma)}));

  Writer proof;
  proof.blob(group_.encode(gamma))
      .blob(c.to_bytes_be(group_.byte_len()))
      .blob(s.to_bytes_be(group_.byte_len()));
  return {y, proof.take()};
}

bool DdhVrf::verify(BytesView pk_bytes, BytesView input,
                    const VrfOutput& out) const {
  Bignum gamma, c, s;
  try {
    Reader r(out.proof);
    gamma = Bignum::from_bytes_be(r.blob());
    c = Bignum::from_bytes_be(r.blob());
    s = Bignum::from_bytes_be(r.blob());
    r.done();
  } catch (const CodecError&) {
    return false;
  }

  Bignum pk = Bignum::from_bytes_be(pk_bytes);
  if (!group_.is_element(pk) || !group_.is_element(gamma)) return false;
  if (c >= group_.q() || s >= group_.q()) return false;

  Bignum h = group_.hash_to_group(input);
  // a' = g^s · pk^c and b' = h^s · Γ^c, each as ONE Straus/Shamir ladder:
  // the squarings — the dominant cost — are shared between the paired
  // exponentiations instead of paid twice.
  Bignum a = group_.dual_exp(group_.g(), s, pk, c);
  Bignum b = group_.dual_exp(h, s, gamma, c);
  if (challenge(h, pk, gamma, a, b) != c) return false;

  Bytes y = sha256_bytes(concat({bytes_of("h2"), group_.encode(gamma)}));
  return ct_equal(y, out.value);
}

}  // namespace coincidence::crypto
