// Shamir secret sharing over GF(2^61 − 1).
//
// Substrate for the Rabin-style baseline: Rabin's shared coin [33] assumes
// a trusted dealer who pre-deals shares of coin values; we reproduce that
// with textbook Shamir sharing (random degree-t polynomial, Lagrange
// interpolation at 0). The Mersenne prime 2^61−1 keeps field arithmetic in
// unsigned 128-bit intermediates.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace coincidence::crypto {

/// GF(p) with p = 2^61 - 1 (Mersenne): add/sub/mul/inv/pow.
class Field61 {
 public:
  static constexpr std::uint64_t kP = (1ULL << 61) - 1;

  static std::uint64_t reduce(std::uint64_t x);
  static std::uint64_t add(std::uint64_t a, std::uint64_t b);
  static std::uint64_t sub(std::uint64_t a, std::uint64_t b);
  static std::uint64_t mul(std::uint64_t a, std::uint64_t b);
  static std::uint64_t pow(std::uint64_t base, std::uint64_t exp);
  /// Inverse via Fermat; requires a != 0.
  static std::uint64_t inv(std::uint64_t a);
};

struct Share {
  std::uint64_t x;  // evaluation point (1-based process index)
  std::uint64_t y;  // polynomial value
};

/// Splits `secret` into n shares with reconstruction threshold t+1
/// (polynomial degree t). Requires 0 <= secret < p, t < n.
std::vector<Share> shamir_share(std::uint64_t secret, std::size_t n,
                                std::size_t t, Rng& rng);

/// Lagrange interpolation at x=0 over exactly t+1 distinct shares.
/// Any t+1 valid shares reconstruct; fewer reveal nothing.
std::uint64_t shamir_reconstruct(const std::vector<Share>& shares);

}  // namespace coincidence::crypto
