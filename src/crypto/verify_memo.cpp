#include "crypto/verify_memo.h"

namespace coincidence::crypto {

namespace {

// FNV-1a, with a length marker between fields so (pk="ab", input="c")
// and (pk="a", input="bc") fingerprint differently.
std::uint64_t fnv1a(std::uint64_t h, BytesView data) {
  constexpr std::uint64_t kPrime = 1099511628211ULL;
  h ^= data.size();
  h *= kPrime;
  for (std::uint8_t byte : data) {
    h ^= byte;
    h *= kPrime;
  }
  return h;
}

}  // namespace

VerifyMemo::Key VerifyMemo::make_key(const VrfBatchEntry& e) {
  std::uint64_t fp = 1469598103934665603ULL;  // FNV offset basis
  fp = fnv1a(fp, e.pk);
  fp = fnv1a(fp, e.input);
  fp = fnv1a(fp, e.value);
  fp = fnv1a(fp, e.proof);
  return Key{fp,
             Bytes(e.pk.begin(), e.pk.end()),
             Bytes(e.input.begin(), e.input.end()),
             Bytes(e.value.begin(), e.value.end()),
             Bytes(e.proof.begin(), e.proof.end())};
}

std::optional<bool> VerifyMemo::lookup(const VrfBatchEntry& e) const {
  auto it = memo_.find(make_key(e));
  if (it == memo_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  return it->second;
}

void VerifyMemo::store(const VrfBatchEntry& e, bool ok) {
  memo_[make_key(e)] = ok;
}

}  // namespace coincidence::crypto
