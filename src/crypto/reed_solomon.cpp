#include "crypto/reed_solomon.h"

#include <algorithm>

#include "common/errors.h"

namespace coincidence::crypto {

namespace gf256 {
namespace {

// log/exp tables for the primitive element 0x02 modulo x^8+x^4+x^3+x^2+1.
// exp_ is doubled so mul can skip the mod-255 reduction on the sum.
struct Tables {
  std::uint8_t log[256];
  std::uint8_t exp[510];

  Tables() {
    std::uint16_t x = 1;
    for (int i = 0; i < 255; ++i) {
      exp[i] = static_cast<std::uint8_t>(x);
      exp[i + 255] = static_cast<std::uint8_t>(x);
      log[x] = static_cast<std::uint8_t>(i);
      x <<= 1;
      if (x & 0x100) x ^= 0x11d;
    }
    log[0] = 0;  // never read: mul/inv guard zero explicitly
  }
};

const Tables& tables() {
  static const Tables t;
  return t;
}

}  // namespace

std::uint8_t mul(std::uint8_t a, std::uint8_t b) {
  if (a == 0 || b == 0) return 0;
  const Tables& t = tables();
  return t.exp[t.log[a] + t.log[b]];
}

std::uint8_t inv(std::uint8_t a) {
  COIN_REQUIRE(a != 0, "gf256::inv: zero has no inverse");
  const Tables& t = tables();
  return t.exp[255 - t.log[a]];
}

}  // namespace gf256

ReedSolomon::ReedSolomon(std::size_t n, std::size_t k) : n_(n), k_(k) {
  COIN_REQUIRE(k >= 1 && k <= n, "ReedSolomon: requires 1 <= k <= n");
  COIN_REQUIRE(n <= 255, "ReedSolomon: GF(2^8) caps n at 255 fragments");
  std::vector<std::uint8_t> data_xs(k_);
  for (std::size_t m = 0; m < k_; ++m)
    data_xs[m] = static_cast<std::uint8_t>(m);
  parity_rows_.reserve(n_ - k_);
  for (std::size_t i = k_; i < n_; ++i)
    parity_rows_.push_back(
        lagrange_row(data_xs, static_cast<std::uint8_t>(i)));
}

std::vector<std::uint8_t> ReedSolomon::lagrange_row(
    const std::vector<std::uint8_t>& xs, std::uint8_t target) const {
  const std::size_t k = xs.size();
  std::vector<std::uint8_t> row(k);
  for (std::size_t s = 0; s < k; ++s) {
    // c_s = Π_{l≠s} (target − x_l) / (x_s − x_l); in GF(2^8) subtraction
    // is xor, and target never coincides with an interpolation point.
    std::uint8_t num = 1;
    std::uint8_t den = 1;
    for (std::size_t l = 0; l < k; ++l) {
      if (l == s) continue;
      num = gf256::mul(num, target ^ xs[l]);
      den = gf256::mul(den, xs[s] ^ xs[l]);
    }
    row[s] = gf256::mul(num, gf256::inv(den));
  }
  return row;
}

std::vector<Bytes> ReedSolomon::encode(BytesView value) const {
  const std::size_t len = fragment_size(value.size());
  std::vector<Bytes> fragments(n_);
  for (std::size_t m = 0; m < k_; ++m) {
    fragments[m].assign(len, 0);
    const std::size_t off = m * len;
    const std::size_t avail =
        off < value.size() ? std::min(len, value.size() - off) : 0;
    std::copy_n(value.begin() + static_cast<std::ptrdiff_t>(off), avail,
                fragments[m].begin());
  }
  for (std::size_t i = k_; i < n_; ++i) {
    const std::vector<std::uint8_t>& row = parity_rows_[i - k_];
    Bytes& out = fragments[i];
    out.assign(len, 0);
    for (std::size_t m = 0; m < k_; ++m) {
      const std::uint8_t w = row[m];
      if (w == 0) continue;
      const Bytes& data = fragments[m];
      for (std::size_t j = 0; j < len; ++j)
        out[j] ^= gf256::mul(w, data[j]);
    }
  }
  return fragments;
}

Bytes ReedSolomon::decode(
    const std::vector<std::pair<std::size_t, Bytes>>& fragments,
    std::size_t value_size) const {
  if (fragments.size() != k_)
    throw CodecError("ReedSolomon::decode: needs exactly k fragments");
  const std::size_t len = fragment_size(value_size);
  std::vector<bool> seen(n_, false);
  std::vector<std::uint8_t> xs(k_);
  for (std::size_t s = 0; s < k_; ++s) {
    const auto& [idx, frag] = fragments[s];
    if (idx >= n_)
      throw CodecError("ReedSolomon::decode: fragment index out of range");
    if (seen[idx])
      throw CodecError("ReedSolomon::decode: duplicate fragment index");
    seen[idx] = true;
    if (frag.size() != len)
      throw CodecError("ReedSolomon::decode: fragment length mismatch");
    xs[s] = static_cast<std::uint8_t>(idx);
  }

  Bytes value(value_size, 0);
  for (std::size_t m = 0; m < k_; ++m) {
    const std::size_t off = m * len;
    if (off >= value_size && value_size != 0) break;
    const std::size_t take =
        value_size == 0 ? 0 : std::min(len, value_size - off);
    if (seen[m]) {
      // Systematic fragment present: copy it straight through.
      for (std::size_t s = 0; s < k_; ++s)
        if (fragments[s].first == m)
          std::copy_n(fragments[s].second.begin(), take,
                      value.begin() + static_cast<std::ptrdiff_t>(off));
      continue;
    }
    const std::vector<std::uint8_t> row =
        lagrange_row(xs, static_cast<std::uint8_t>(m));
    for (std::size_t j = 0; j < take; ++j) {
      std::uint8_t acc = 0;
      for (std::size_t s = 0; s < k_; ++s)
        acc ^= gf256::mul(row[s], fragments[s].second[j]);
      value[off + j] = acc;
    }
  }
  return value;
}

}  // namespace coincidence::crypto
