// SHA-256 Merkle tree with branch proofs (ISSUE 10 tentpole).
//
// Commits the erasure-coded broadcast's n fragments to one λ-word root:
// the source ships each process its fragment plus the sibling path, and
// receivers verify membership against the recomputed root without seeing
// the other fragments. Domain separation (0x00-prefixed leaves,
// 0x01-prefixed interior nodes) blocks leaf/node confusion; an odd node
// at any level is promoted unchanged, so the branch for index i holds
// exactly one digest per level where a sibling exists — verification
// replays the same promotion schedule from (index, leaf_count) alone.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bytes.h"
#include "crypto/sha256.h"

namespace coincidence::crypto {

/// Hash of one leaf payload: sha256(0x00 || data).
Digest merkle_leaf(BytesView data);

/// The root implied by placing `leaf` at `index` of a `leaf_count`-leaf
/// tree with sibling path `branch` — nullopt when the branch length does
/// not match the promotion schedule. Receivers that only know the
/// claimed root compare against this (MerkleTree::verify is the
/// equality wrapper).
std::optional<Digest> merkle_implied_root(std::size_t leaf_count,
                                          std::size_t index, BytesView leaf,
                                          const std::vector<Digest>& branch);

class MerkleTree {
 public:
  /// Builds the tree over `leaves` (at least one), hashing each payload.
  explicit MerkleTree(const std::vector<Bytes>& leaves);

  std::size_t leaf_count() const { return leaf_count_; }
  const Digest& root() const { return levels_.back().front(); }

  /// Sibling path for leaf `index`, bottom-up. Empty for a 1-leaf tree.
  std::vector<Digest> branch(std::size_t index) const;

  /// Recomputes the root implied by (`index`, `leaf`, `branch`) in a
  /// `leaf_count`-leaf tree and compares it to `root`. False on any
  /// mismatch, including a branch of the wrong length.
  static bool verify(const Digest& root, std::size_t leaf_count,
                     std::size_t index, BytesView leaf,
                     const std::vector<Digest>& branch);

 private:
  std::size_t leaf_count_;
  // levels_[0] = leaf hashes, levels_.back() = {root}.
  std::vector<std::vector<Digest>> levels_;
};

}  // namespace coincidence::crypto
