#include "crypto/hmac.h"

namespace coincidence::crypto {

Digest hmac_sha256(BytesView key, BytesView message) {
  Bytes block_key(kSha256BlockSize, 0);
  if (key.size() > kSha256BlockSize) {
    Digest kd = sha256(key);
    std::copy(kd.begin(), kd.end(), block_key.begin());
  } else {
    std::copy(key.begin(), key.end(), block_key.begin());
  }

  Bytes ipad(kSha256BlockSize), opad(kSha256BlockSize);
  for (std::size_t i = 0; i < kSha256BlockSize; ++i) {
    ipad[i] = block_key[i] ^ 0x36;
    opad[i] = block_key[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.update(ipad);
  inner.update(message);
  Digest inner_digest = inner.finish();

  Sha256 outer;
  outer.update(opad);
  outer.update(BytesView(inner_digest.data(), inner_digest.size()));
  return outer.finish();
}

Bytes hmac_sha256_bytes(BytesView key, BytesView message) {
  Digest d = hmac_sha256(key, message);
  return Bytes(d.begin(), d.end());
}

HmacDrbg::HmacDrbg(BytesView seed)
    : key_(kSha256DigestSize, 0x00), value_(kSha256DigestSize, 0x01) {
  update(seed);
}

void HmacDrbg::update(BytesView provided) {
  Bytes msg = value_;
  msg.push_back(0x00);
  append(msg, provided);
  Digest k = hmac_sha256(key_, msg);
  key_.assign(k.begin(), k.end());
  Digest v = hmac_sha256(key_, value_);
  value_.assign(v.begin(), v.end());
  if (!provided.empty()) {
    msg = value_;
    msg.push_back(0x01);
    append(msg, provided);
    k = hmac_sha256(key_, msg);
    key_.assign(k.begin(), k.end());
    v = hmac_sha256(key_, value_);
    value_.assign(v.begin(), v.end());
  }
}

Bytes HmacDrbg::generate(std::size_t n) {
  Bytes out;
  generate_into(n, out);
  return out;
}

void HmacDrbg::generate_into(std::size_t n, Bytes& out) {
  out.clear();
  out.reserve(n);
  while (out.size() < n) {
    Digest v = hmac_sha256(key_, value_);
    value_.assign(v.begin(), v.end());
    std::size_t take = std::min(value_.size(), n - out.size());
    out.insert(out.end(), value_.begin(), value_.begin() + take);
  }
  update({});
}

std::uint64_t HmacDrbg::next_u64() {
  Bytes b = generate(8);
  return u64_of_bytes(b);
}

}  // namespace coincidence::crypto
