#include "crypto/prime_group.h"

#include "common/errors.h"
#include "crypto/hmac.h"
#include "crypto/prime.h"

namespace coincidence::crypto {

PrimeGroup::PrimeGroup(Bignum p, Bignum q, Bignum g)
    : p_(std::move(p)), q_(std::move(q)), g_(std::move(g)) {
  byte_len_ = (p_.bit_length() + 7) / 8;
}

PrimeGroup PrimeGroup::from_safe_prime(const Bignum& p) {
  if (!p.is_odd() || p.bit_length() < 16)
    throw ConfigError("PrimeGroup: modulus too small or even");
  Bignum q = (p - Bignum(1)) >> 1;
  if (!is_probable_prime(p, 16) || !is_probable_prime(q, 16))
    throw ConfigError("PrimeGroup: p is not a safe prime");
  return PrimeGroup(p, q, Bignum(4));
}

PrimeGroup PrimeGroup::generate(std::size_t bits, std::uint64_t seed) {
  SafePrime sp = generate_safe_prime(bits, seed);
  return PrimeGroup(sp.p, sp.q, Bignum(4));
}

PrimeGroup PrimeGroup::rfc3526_1536() {
  const Bignum& p = rfc3526_prime_1536();
  Bignum q = (p - Bignum(1)) >> 1;
  return PrimeGroup(p, q, Bignum(4));
}

Bignum PrimeGroup::exp(const Bignum& base, const Bignum& e) const {
  return Bignum::mod_exp(base, e, p_);
}

Bignum PrimeGroup::mul(const Bignum& a, const Bignum& b) const {
  return Bignum::mul_mod(a, b, p_);
}

Bignum PrimeGroup::inv(const Bignum& a) const {
  return Bignum::mod_inv(a, p_);
}

bool PrimeGroup::is_element(const Bignum& x) const {
  if (x.is_zero() || x >= p_) return false;
  return exp(x, q_) == Bignum(1);
}

Bignum PrimeGroup::hash_to_group(BytesView input) const {
  Bytes seed = concat({bytes_of("h2g"), input});
  HmacDrbg drbg(seed);
  for (;;) {
    Bignum r = Bignum::from_bytes_be(drbg.generate(byte_len_ + 8)) % p_;
    Bignum h = mul(r, r);  // squares are exactly the QR subgroup
    if (h != Bignum() && h != Bignum(1)) return h;
  }
}

Bignum PrimeGroup::hash_to_scalar(BytesView input) const {
  Bytes seed = concat({bytes_of("h2s"), input});
  HmacDrbg drbg(seed);
  return Bignum::from_bytes_be(drbg.generate(byte_len_ + 8)) % q_;
}

Bytes PrimeGroup::encode(const Bignum& x) const {
  return x.to_bytes_be(byte_len_);
}

}  // namespace coincidence::crypto
