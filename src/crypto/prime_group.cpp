#include "crypto/prime_group.h"

#include "common/errors.h"
#include "crypto/hmac.h"
#include "crypto/prime.h"

namespace coincidence::crypto {

PrimeGroup::PrimeGroup(Bignum p, Bignum q, Bignum g)
    : p_(std::move(p)), q_(std::move(q)), g_(std::move(g)) {
  byte_len_ = (p_.bit_length() + 7) / 8;
  ctx_ = std::make_shared<const MontgomeryCtx>(p_);
  // Scalars are < q < p, so p's bit length bounds every comb exponent.
  g_comb_ = std::make_shared<const CombTable>(ctx_, g_, p_.bit_length());
  h2g_tag_ = bytes_of("h2g");
  h2s_tag_ = bytes_of("h2s");
}

PrimeGroup PrimeGroup::from_safe_prime(const Bignum& p) {
  if (!p.is_odd() || p.bit_length() < 16)
    throw ConfigError("PrimeGroup: modulus too small or even");
  Bignum q = (p - Bignum(1)) >> 1;
  if (!is_probable_prime(p, 16) || !is_probable_prime(q, 16))
    throw ConfigError("PrimeGroup: p is not a safe prime");
  return PrimeGroup(p, q, Bignum(4));
}

PrimeGroup PrimeGroup::generate(std::size_t bits, std::uint64_t seed) {
  SafePrime sp = generate_safe_prime(bits, seed);
  return PrimeGroup(sp.p, sp.q, Bignum(4));
}

PrimeGroup PrimeGroup::rfc2409_768() {
  const Bignum& p = rfc2409_prime_768();
  Bignum q = (p - Bignum(1)) >> 1;
  return PrimeGroup(p, q, Bignum(4));
}

PrimeGroup PrimeGroup::rfc3526_1536() {
  const Bignum& p = rfc3526_prime_1536();
  Bignum q = (p - Bignum(1)) >> 1;
  return PrimeGroup(p, q, Bignum(4));
}

Bignum PrimeGroup::exp_g(const Bignum& e) const { return g_comb_->exp(e); }

Bignum PrimeGroup::exp(const Bignum& base, const Bignum& e) const {
  // Short exponents don't amortize the Montgomery ladder setup; the
  // reference path also covers them exactly.
  if (e.bit_length() <= 64) return Bignum::mod_exp_ref(base, e, p_);
  return ctx_->mod_exp(base, e);
}

Bignum PrimeGroup::dual_exp(const Bignum& a, const Bignum& ea,
                            const Bignum& b, const Bignum& eb) const {
  return ctx_->dual_exp(a, ea, b, eb);
}

Bignum PrimeGroup::mul(const Bignum& a, const Bignum& b) const {
  return Bignum::mul_mod(a, b, p_);
}

Bignum PrimeGroup::inv(const Bignum& a) const {
  return Bignum::mod_inv(a, p_);
}

bool PrimeGroup::is_element(const Bignum& x) const {
  if (x.is_zero() || x >= p_) return false;
  // x^q == 1 iff ord(x) | q iff x is a quadratic residue (the group is
  // the order-q QR subgroup of Z_p*, p = 2q+1), iff (x/p) == +1.
  return Bignum::jacobi(x, p_) == 1;
}

Bignum PrimeGroup::hash_to_group(BytesView input) const {
  Bytes seed;
  seed.reserve(h2g_tag_.size() + input.size());
  append(seed, h2g_tag_);
  append(seed, input);
  HmacDrbg drbg(seed);
  Bytes buf;  // reused across retries — no fresh allocation per draw
  for (;;) {
    drbg.generate_into(byte_len_ + 8, buf);
    Bignum r = Bignum::from_bytes_be(buf) % p_;
    Bignum h = mul(r, r);  // squares are exactly the QR subgroup
    if (h != Bignum() && h != Bignum(1)) return h;
  }
}

Bignum PrimeGroup::hash_to_scalar(BytesView input) const {
  Bytes seed;
  seed.reserve(h2s_tag_.size() + input.size());
  append(seed, h2s_tag_);
  append(seed, input);
  HmacDrbg drbg(seed);
  Bytes buf;
  drbg.generate_into(byte_len_ + 8, buf);
  return Bignum::from_bytes_be(buf) % q_;
}

Bytes PrimeGroup::encode(const Bignum& x) const {
  return x.to_bytes_be(byte_len_);
}

}  // namespace coincidence::crypto
