#include "crypto/signer.h"

#include <cstring>

#include "common/errors.h"
#include "crypto/hmac.h"

namespace coincidence::crypto {

Signer::Signer(std::shared_ptr<const KeyRegistry> registry)
    : registry_(std::move(registry)) {
  COIN_REQUIRE(registry_ != nullptr, "Signer needs a key registry");
}

Bytes Signer::sign(ProcessId id, BytesView message) const {
  Bytes tagged = concat({bytes_of("sig"), message});
  return hmac_sha256_bytes(registry_->sk_of(id), tagged);
}

bool Signer::verify(ProcessId id, BytesView message, BytesView sig) const {
  if (!registry_->has(id)) return false;
  Bytes tagged = concat({bytes_of("sig"), message});
  Digest expect = hmac_sha256(registry_->sk_of(id), tagged);
  return ct_equal(BytesView(expect.data(), expect.size()), sig);
}

void Signer::batch_verify(std::span<const SigBatchEntry> entries,
                          std::vector<char>& out) const {
  out.assign(entries.size(), 0);
  Bytes tagged;
  bool tagged_valid = false;
  BytesView tagged_for;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const SigBatchEntry& e = entries[i];
    if (!registry_->has(e.signer)) continue;
    // Re-tag only when the message changes; equal-pointer or equal-bytes
    // both qualify (the fast pointer test catches the hoisted-member
    // case, the byte test catches re-encoded duplicates).
    const bool same =
        tagged_valid &&
        (tagged_for.data() == e.message.data()
             ? tagged_for.size() == e.message.size()
             : tagged_for.size() == e.message.size() &&
                   std::memcmp(tagged_for.data(), e.message.data(),
                               e.message.size()) == 0);
    if (!same) {
      tagged = concat({bytes_of("sig"), e.message});
      tagged_for = e.message;
      tagged_valid = true;
    }
    Digest expect = hmac_sha256(registry_->sk_of(e.signer), tagged);
    out[i] =
        ct_equal(BytesView(expect.data(), expect.size()), e.sig) ? 1 : 0;
  }
}

}  // namespace coincidence::crypto
