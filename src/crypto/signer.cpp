#include "crypto/signer.h"

#include "common/errors.h"
#include "crypto/hmac.h"

namespace coincidence::crypto {

Signer::Signer(std::shared_ptr<const KeyRegistry> registry)
    : registry_(std::move(registry)) {
  COIN_REQUIRE(registry_ != nullptr, "Signer needs a key registry");
}

Bytes Signer::sign(ProcessId id, BytesView message) const {
  Bytes tagged = concat({bytes_of("sig"), message});
  return hmac_sha256_bytes(registry_->sk_of(id), tagged);
}

bool Signer::verify(ProcessId id, BytesView message, BytesView sig) const {
  if (!registry_->has(id)) return false;
  Bytes tagged = concat({bytes_of("sig"), message});
  return ct_equal(hmac_sha256_bytes(registry_->sk_of(id), tagged), sig);
}

}  // namespace coincidence::crypto
