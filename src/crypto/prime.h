// Primality testing and safe-prime generation.
//
// Used once at setup time to produce the group of the DDH VRF. Provides
// Miller–Rabin with both fixed small bases and DRBG-derived random bases,
// and a deterministic (seeded) safe-prime search so tests can regenerate
// identical groups. The RFC 3526 1536-bit MODP prime is shipped as the
// default production-size group modulus.
#pragma once

#include <cstdint>

#include "crypto/bignum.h"

namespace coincidence::crypto {

/// Miller–Rabin with `rounds` random bases derived deterministically from
/// `n` (plus fixed bases 2, 3). Error probability <= 4^-rounds.
bool is_probable_prime(const Bignum& n, int rounds = 32);

/// Searches for a safe prime p = 2q + 1 with exactly `bits` bits, starting
/// from a candidate derived from `seed` (deterministic). `bits` >= 16.
struct SafePrime {
  Bignum p;  // the safe prime
  Bignum q;  // (p-1)/2, also prime
};
SafePrime generate_safe_prime(std::size_t bits, std::uint64_t seed);

/// RFC 2409 Oakley group 1 modulus (768-bit safe prime) — the smaller
/// production-shaped group the batch-verification benches sweep against.
const Bignum& rfc2409_prime_768();

/// RFC 3526 group 5 modulus (1536-bit safe prime), for production-size use.
const Bignum& rfc3526_prime_1536();

}  // namespace coincidence::crypto
