#include "crypto/merkle.h"

#include "common/errors.h"

namespace coincidence::crypto {

namespace {

Digest node_hash(const Digest& left, const Digest& right) {
  Sha256 h;
  const std::uint8_t prefix = 0x01;
  h.update(BytesView(&prefix, 1));
  h.update(BytesView(left.data(), left.size()));
  h.update(BytesView(right.data(), right.size()));
  return h.finish();
}

}  // namespace

Digest merkle_leaf(BytesView data) {
  Sha256 h;
  const std::uint8_t prefix = 0x00;
  h.update(BytesView(&prefix, 1));
  h.update(data);
  return h.finish();
}

MerkleTree::MerkleTree(const std::vector<Bytes>& leaves)
    : leaf_count_(leaves.size()) {
  COIN_REQUIRE(!leaves.empty(), "MerkleTree: needs at least one leaf");
  std::vector<Digest> level;
  level.reserve(leaves.size());
  for (const Bytes& leaf : leaves) level.push_back(merkle_leaf(leaf));
  levels_.push_back(std::move(level));
  while (levels_.back().size() > 1) {
    const std::vector<Digest>& below = levels_.back();
    std::vector<Digest> above;
    above.reserve((below.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < below.size(); i += 2)
      above.push_back(node_hash(below[i], below[i + 1]));
    if (below.size() % 2 == 1) above.push_back(below.back());
    levels_.push_back(std::move(above));
  }
}

std::vector<Digest> MerkleTree::branch(std::size_t index) const {
  COIN_REQUIRE(index < leaf_count_, "MerkleTree::branch: index out of range");
  std::vector<Digest> path;
  for (std::size_t level = 0; level + 1 < levels_.size(); ++level) {
    const std::vector<Digest>& row = levels_[level];
    const std::size_t sibling = index ^ 1;
    if (sibling < row.size()) path.push_back(row[sibling]);
    index >>= 1;
  }
  return path;
}

std::optional<Digest> merkle_implied_root(std::size_t leaf_count,
                                          std::size_t index, BytesView leaf,
                                          const std::vector<Digest>& branch) {
  if (leaf_count == 0 || index >= leaf_count) return std::nullopt;
  Digest acc = merkle_leaf(leaf);
  std::size_t used = 0;
  std::size_t width = leaf_count;
  while (width > 1) {
    const std::size_t sibling = index ^ 1;
    if (sibling < width) {
      if (used >= branch.size()) return std::nullopt;
      const Digest& sib = branch[used++];
      acc = (index & 1) ? node_hash(sib, acc) : node_hash(acc, sib);
    }
    index >>= 1;
    width = (width + 1) / 2;
  }
  if (used != branch.size()) return std::nullopt;
  return acc;
}

bool MerkleTree::verify(const Digest& root, std::size_t leaf_count,
                        std::size_t index, BytesView leaf,
                        const std::vector<Digest>& branch) {
  const auto implied = merkle_implied_root(leaf_count, index, leaf, branch);
  return implied.has_value() && *implied == root;
}

}  // namespace coincidence::crypto
