#include "crypto/prime.h"

#include <vector>

#include "common/errors.h"
#include "crypto/hmac.h"

namespace coincidence::crypto {

namespace {

const std::vector<std::uint32_t>& small_primes() {
  static const std::vector<std::uint32_t> primes = [] {
    constexpr std::uint32_t kLimit = 10000;
    std::vector<bool> sieve(kLimit, true);
    std::vector<std::uint32_t> out;
    for (std::uint32_t i = 2; i < kLimit; ++i) {
      if (!sieve[i]) continue;
      out.push_back(i);
      for (std::uint32_t j = i * 2; j < kLimit; j += i) sieve[j] = false;
    }
    return out;
  }();
  return primes;
}

std::uint64_t mod_small(const Bignum& n, std::uint64_t m) {
  // Compute n mod m for small m via per-limb reduction (base 2^64).
  const auto& limbs = n.limbs();
  unsigned __int128 rem = 0;
  for (std::size_t i = limbs.size(); i-- > 0;) {
    rem = ((rem << 64) | limbs[i]) % m;
  }
  return static_cast<std::uint64_t>(rem);
}

/// One Miller–Rabin round: returns true if n passes for base a.
bool mr_round(const Bignum& n, const Bignum& n_minus_1, const Bignum& d,
              std::size_t r, const Bignum& a) {
  Bignum x = Bignum::mod_exp(a, d, n);
  if (x == Bignum(1) || x == n_minus_1) return true;
  for (std::size_t i = 1; i < r; ++i) {
    x = Bignum::mul_mod(x, x, n);
    if (x == n_minus_1) return true;
    if (x == Bignum(1)) return false;  // nontrivial sqrt of 1 => composite
  }
  return false;
}

}  // namespace

bool is_probable_prime(const Bignum& n, int rounds) {
  if (n < Bignum(2)) return false;
  for (std::uint32_t p : small_primes()) {
    if (n == Bignum(p)) return true;
    if (mod_small(n, p) == 0) return false;
  }

  // n - 1 = d * 2^r with d odd.
  Bignum n_minus_1 = n - Bignum(1);
  Bignum d = n_minus_1;
  std::size_t r = 0;
  while (!d.is_odd()) {
    d = d >> 1;
    ++r;
  }

  // Fixed bases first (cheap early rejection), then DRBG-derived bases.
  if (!mr_round(n, n_minus_1, d, r, Bignum(2))) return false;
  if (!mr_round(n, n_minus_1, d, r, Bignum(3))) return false;

  HmacDrbg drbg(n.to_bytes_be());
  std::size_t byte_len = (n.bit_length() + 7) / 8;
  for (int i = 0; i < rounds; ++i) {
    Bignum a = Bignum::from_bytes_be(drbg.generate(byte_len)) % (n - Bignum(3));
    a = a + Bignum(2);  // a in [2, n-2]
    if (!mr_round(n, n_minus_1, d, r, a)) return false;
  }
  return true;
}

SafePrime generate_safe_prime(std::size_t bits, std::uint64_t seed) {
  COIN_REQUIRE(bits >= 16, "generate_safe_prime: need >= 16 bits");
  HmacDrbg drbg(bytes_of_u64(seed));
  const std::size_t qbits = bits - 1;
  const std::size_t qbytes = (qbits + 7) / 8;

  for (;;) {
    Bignum q = Bignum::from_bytes_be(drbg.generate(qbytes));
    // Force exact bit length (set the top bit) and oddness.
    Bignum top = Bignum(1) << (qbits - 1);
    q = (q % top) + top;
    if (!q.is_odd()) q = q + Bignum(1);

    // Step by 2 from the candidate; bounded scan before reseeding.
    for (int step = 0; step < 4096; ++step, q = q + Bignum(2)) {
      if (q.bit_length() != qbits) break;
      bool sieved_out = false;
      for (std::uint32_t sp : small_primes()) {
        std::uint64_t qm = mod_small(q, sp);
        if (qm == 0 || (2 * qm + 1) % sp == 0) {
          if (q != Bignum(sp)) {
            sieved_out = true;
            break;
          }
        }
      }
      if (sieved_out) continue;
      if (!is_probable_prime(q, 8)) continue;
      Bignum p = (q << 1) + Bignum(1);
      if (!is_probable_prime(p, 8)) continue;
      // Confirm with full-strength rounds.
      if (is_probable_prime(q, 32) && is_probable_prime(p, 32)) {
        return {p, q};
      }
    }
  }
}

const Bignum& rfc2409_prime_768() {
  static const Bignum p = Bignum::from_hex(
      "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
      "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
      "4FE1356D6D51C245E485B576625E7EC6F44C42E9A63A3620FFFFFFFFFFFFFFFF");
  return p;
}

const Bignum& rfc3526_prime_1536() {
  static const Bignum p = Bignum::from_hex(
      "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
      "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
      "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
      "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05"
      "98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB"
      "9ED529077096966D670C354E4ABC9804F1746C08CA237327FFFFFFFFFFFFFFFF");
  return p;
}

}  // namespace coincidence::crypto
