// One-call experiment runner: pick a protocol, an adversary, a fault mix
// and inputs; get back decisions + the paper's metrics. This is the
// public API the examples and every bench binary drive.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ba/broadcast.h"
#include "ba/value.h"
#include "core/env.h"
#include "sim/chaos.h"
#include "sim/fault.h"
#include "sim/link.h"
#include "sim/metrics.h"
#include "sim/observer.h"

namespace coincidence::core {

/// Every agreement protocol in the repo, including the Table-1 baselines.
enum class Protocol {
  kBaWhp,          // this paper: Algorithm 4 (committees + WHP coin)
  kMmrSharedCoin,  // MMR skeleton + Algorithm 1 coin: O(n²), VRF-based
  kMmrWhpCoin,     // ablation: MMR skeleton + Algorithm 2 committee coin —
                   // isolates the coin's Õ(n) saving from the approver's
                   // λ² overhead (see DESIGN.md §4). NOTE: its effective
                   // resilience is the MIN of MMR's (n-1)/3 and the coin
                   // committees' (1/3-ε)n — it is an instrumented hybrid,
                   // not a protocol the paper claims.
  kMmrDealerCoin,  // MMR skeleton + Rabin-style dealer coin
  kBenOr,          // local coin, n > 5f
  kBracha,         // local coin over reliable broadcast, n > 3f
};

const char* protocol_name(Protocol p);
std::optional<Protocol> protocol_from_name(const std::string& name);
/// All protocols, in Table-1 comparison order.
const std::vector<Protocol>& all_protocols();
/// Minimum n for which `p` can run with at least one tolerated fault.
std::size_t min_n_for(Protocol p);

enum class AdversaryKind {
  kRandom,        // benign asynchrony
  kFifo,          // synchronous-like delivery
  kDelaySenders,  // starve the first f processes' messages
  kSplit,         // delay cross-partition traffic
  kHeavyTail,     // Pareto message delays (WAN-like stragglers)
  /// Delayed-adaptive hunter (sim::AdaptiveCorruptionAdversary): corrupts
  /// committee members as they reveal themselves by speaking, within
  /// whatever corruption budget the static fault mix and the chaos
  /// schedule leave free. Legal per Definition 2.1 (docs/CHAOS.md).
  kAdaptiveCorruption,
};

const char* adversary_name(AdversaryKind a);

struct RunOptions {
  Protocol protocol = Protocol::kBaWhp;
  std::size_t n = 64;
  std::uint64_t seed = 1;
  /// Inputs per process; sized n (default: all zero).
  std::vector<ba::Value> inputs;

  // Parameters for the committee-based protocols.
  double epsilon = 0.25;
  double d = 0.02;
  bool strict_params = false;

  AdversaryKind adversary = AdversaryKind::kRandom;

  /// Fault mix, applied to the highest process ids (so inputs of low ids
  /// stay meaningful). Total must stay within the protocol's resilience.
  std::size_t crash = 0;
  std::size_t silent = 0;
  std::size_t junk = 0;
  /// Crash-recover faults: down for `recover_after` deliveries, then
  /// restarted via Process::on_recover. Counts against resilience like
  /// any corruption (the adversary spent budget on it).
  std::size_t crash_recover = 0;
  std::uint64_t recover_after = 5000;

  /// Link-fault profile for the underlying network (default: reliable,
  /// zero overhead — legacy runs are bit-identical).
  sim::NetworkProfile network;
  /// Wraps every process in net::ReliableProcess, restoring exactly-once
  /// delivery on top of a lossy `network`. Adds "net/dat"/"net/ack"
  /// framing; retransmission words are reported separately.
  bool reliable_channel = false;
  /// Per-frame give-up bound for the reliable channel (its
  /// ReliableChannelConfig::max_retransmits). The default survives lossy
  /// links; runs scheduling long drop-mode chaos partitions should raise
  /// it — a frame whose every retry falls inside the partition window
  /// burns budget without ever reaching the wire's good period, and a
  /// dead-lettered protocol message can stall liveness (safety holds
  /// regardless).
  std::uint32_t transport_retransmits = 24;

  /// Routes coin-share and election-proof checks through the Env's
  /// BatchVerifier (deferred queues + folded batch verification,
  /// coin/verify_queue.h) instead of inline per-message verification.
  /// Decisions, sends and metrics words are bit-identical either way;
  /// only the verify_* counters (and wall-clock) differ. Applies to the
  /// VRF-backed protocols (kBaWhp, kMmrWhpCoin, kMmrSharedCoin).
  bool defer_verify = true;

  std::uint64_t max_rounds = 64;

  /// Reliable-broadcast backend for the protocols that disseminate over
  /// RBC (kBracha today): classic full-value echoes or erasure-coded
  /// AVID-M fragments (ba/broadcast.h). Ignored by the others.
  ba::RbcBackend rbc = ba::RbcBackend::kBracha;

  /// Sharded superstep engine (SimConfig::shards): 0 = the legacy
  /// sequential loop; k >= 1 partitions delivery across k shards with a
  /// hash-addressed schedule that is bit-identical for every shard and
  /// thread count (DESIGN.md §5g). Scheduling adversaries (`adversary`)
  /// are bypassed in sharded mode; corruption adversaries still act.
  /// Each process also gets a private sampler cache + BatchVerifier lane
  /// (instead of the Env-shared ones), since handlers run concurrently.
  std::size_t shards = 0;
  /// Worker threads for the sharded engine (0 = min(shards, hardware)).
  std::size_t threads = 0;

  /// Chaos schedule (sim/chaos.h) executed by the simulation on the
  /// delivery clock: healing partitions, churn waves, storm bursts.
  /// Churn-wave victims need corruption budget, so the runner widens the
  /// simulation's f (never beyond the protocol's resilience) to
  /// accommodate them on top of the static fault mix.
  sim::ChaosSchedule chaos;
  /// Attaches a sim::InvariantChecker to the run and reports its
  /// violations (RunReport::invariant_violations); on any violation the
  /// runner also prints a one-line copy-pasteable repro — the exact
  /// (seed, config, schedule-phase) triple — to stderr.
  bool check_invariants = false;
  /// Validity oracle for the checker: when every correct process got the
  /// same input, that value is the only legal decision.
  std::optional<int> expected_decision;
  /// Victim cap for kAdaptiveCorruption (default: whatever corruption
  /// budget the fault mix and churn waves leave free, up to f). Small-n
  /// committee runs want a lower cap: silencing close to f processes can
  /// legitimately starve a W-threshold committee quorum — a model limit,
  /// not a protocol bug (the Chernoff margins S1–S6 are asymptotic).
  std::size_t adaptive_victims = static_cast<std::size_t>(-1);
};

struct RunReport {
  bool all_correct_decided = false;
  bool agreement = false;               // no two correct decided differently
  std::optional<int> decision;          // the unanimous decision, if any
  std::uint64_t max_decided_round = 0;  // paper "constant expected rounds"
  std::uint64_t correct_words = 0;      // paper word complexity
  std::uint64_t messages = 0;
  std::uint64_t duration = 0;  // longest causal chain (paper "time")
  std::map<std::string, std::uint64_t> words_by_tag;
  std::size_t faulty = 0;
  std::size_t protocol_f = 0;  // the f the protocol was configured with

  // Link-fault / transport accounting (zero on a reliable network).
  std::uint64_t link_drops = 0;
  std::uint64_t link_duplicates = 0;
  std::uint64_t link_replays = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t retransmit_words = 0;  // repair overhead, not §2 words
  // Frames a transport abandoned after exhausting retransmissions —
  // surfaced so lossy runs can assert every loss is accounted for.
  std::uint64_t dead_letters = 0;
  std::uint64_t dead_letter_words = 0;

  // Deferred-verification accounting (zero with defer_verify off or for
  // protocols without VRF proofs). Rejected shares were discarded
  // without entering protocol state — the batched analogue of an inline
  // verification failure.
  std::uint64_t verify_flushes = 0;
  std::uint64_t verify_shares = 0;
  std::uint64_t verify_rejects = 0;
  std::uint64_t verify_memo_hits = 0;
  // Deferred signature-verification accounting (the approver's ok-proof
  // sweep; zero with defer_verify off or for protocols without an
  // approver). sig_checks counts every check routed through the shared
  // BatchVerifier (flush batches + memoized echo singles); memo_hit_rate
  // = sig_memo_hits / sig_checks is the cross-receiver dedup factor.
  std::uint64_t sig_verify_flushes = 0;
  std::uint64_t sig_verify_sigs = 0;
  std::uint64_t sig_verify_rejects = 0;
  std::uint64_t sig_verify_memo_hits = 0;
  std::uint64_t sig_checks = 0;
  std::uint64_t sig_memo_hits = 0;
  // Erasure-coded dissemination accounting (zero on the Bracha backend):
  // encodes fire at the source and at the deliver-time re-encode
  // consistency check; a decode failure marks a poisoned (inconsistently
  // dispersed) broadcast that no correct process will ever deliver.
  std::uint64_t rbc_encodes = 0;
  std::uint64_t rbc_fragments_encoded = 0;
  std::uint64_t rbc_decodes = 0;
  std::uint64_t rbc_fragments_decoded = 0;
  std::uint64_t rbc_decode_failures = 0;
  // BatchVerifier queue ledger, read after every coin has retired. The
  // conservation law verify_enqueued == verify_batch_flushed +
  // verify_discarded must hold for every run — crash-recovery must
  // neither lose nor double-count a deferred share.
  std::uint64_t verify_enqueued = 0;
  std::uint64_t verify_batch_flushed = 0;
  std::uint64_t verify_discarded = 0;

  // Chaos accounting (zero without a schedule).
  std::size_t corrupted = 0;  // final corrupted count (static + churn + hunt)
  std::uint64_t partition_held = 0;
  std::uint64_t partition_dropped = 0;
  std::uint64_t partition_released = 0;
  std::uint64_t storm_copies = 0;
  std::uint64_t churn_crashes = 0;
  /// InvariantChecker::describe lines (empty = run passed all checks, or
  /// check_invariants was off).
  std::vector<std::string> invariant_violations;

  // Sharded-engine telemetry (zero/empty on the legacy path). Lives here
  // — not in Metrics — so metrics exports stay byte-identical across
  // shard counts; run_report renders it in the human-readable section.
  std::size_t shards = 0;
  std::uint64_t supersteps = 0;
  /// Idle shard-supersteps at the exchange barrier (load imbalance).
  std::uint64_t merge_stalls = 0;
  /// Deliveries committed per shard, in shard order.
  std::vector<std::uint64_t> shard_deliveries;
};

/// Instrumentation to attach to a run without changing its behaviour:
/// runs with and without instruments are delivery-for-delivery identical
/// (observers are passive; detail metrics only record extra histograms).
struct RunInstruments {
  /// Attached to the Simulation before start(), in order.
  std::vector<std::shared_ptr<sim::Observer>> observers;
  /// Switches on Metrics per-tag/per-phase histograms (words, causal
  /// depth, delivery latency).
  bool detailed_metrics = false;
  /// Called with the run's final Metrics before the Simulation is torn
  /// down — the escape hatch for JSON/Prometheus export and report
  /// tooling (RunReport carries only the headline numbers).
  std::function<void(const sim::Metrics&)> metrics_out;
};

/// Runs one agreement instance to completion (or whp-failure quiescence).
RunReport run_agreement(const RunOptions& options);

/// Same run, with telemetry attached (tools/run_report drives this).
RunReport run_agreement(const RunOptions& options,
                        const RunInstruments& instruments);

}  // namespace coincidence::core
