// Standalone coin experiment runner — drives one coin instance across a
// cluster for the success-rate, committee and adversary-ablation benches.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/env.h"

namespace coincidence::core {

enum class CoinKind {
  kShared,  // Algorithm 1 (full participation)
  kWhp,     // Algorithm 2 (committee-sampled)
  kDealer,  // Rabin-style trusted-dealer coin
};

const char* coin_name(CoinKind k);

struct CoinOptions {
  CoinKind kind = CoinKind::kShared;
  std::size_t n = 32;
  std::uint64_t seed = 1;
  std::uint64_t round = 0;
  double epsilon = 0.25;
  double d = 0.02;
  bool strict_params = false;

  /// Fault mix applied to the highest ids (silent processes).
  std::size_t silent = 0;

  /// Legal content-oblivious hostility: starve the first `delay_senders`
  /// processes' messages (DelaySendersAdversary).
  std::size_t delay_senders = 0;

  /// E6 ablation: run the ILLEGAL content-aware CoinBiasAdversary that
  /// forces the coin toward `bias_toward`. Violates delayed-adaptivity.
  bool content_aware_bias = false;
  int bias_toward = 0;
  /// Corruption budget handed to the biasing adversary (clamped to the
  /// model's f so content-awareness stays the only illegal ingredient).
  std::size_t bias_budget = 0;
  /// Scheduling latitude: deliveries a message may be bypassed before
  /// being forced through (0 = simulator default 16n). The ablation bench
  /// widens this — asynchrony allows unbounded-but-finite delays.
  std::uint64_t fairness_bound = 0;

  /// Sharded superstep engine (SimConfig::shards): 0 = legacy loop.
  /// Incompatible with the scheduling adversaries (delay_senders /
  /// content_aware_bias), whose per-delivery choices the hash-addressed
  /// schedule replaces. Each process gets a private sampler cache.
  std::size_t shards = 0;
  /// Worker threads for the sharded engine (0 = min(shards, hardware)).
  std::size_t threads = 0;
};

struct CoinReport {
  bool all_returned = false;      // every correct process output a bit
  std::optional<int> agreed_bit;  // set iff all correct agreed
  std::vector<std::optional<int>> outputs;
  std::uint64_t correct_words = 0;
  std::uint64_t duration = 0;
};

CoinReport run_coin_trial(const CoinOptions& options);

}  // namespace coincidence::core
