#include "core/runner.h"

#include <algorithm>
#include <iostream>
#include <sstream>

#include "ba/ba_process.h"
#include "ba/ba_whp.h"
#include "ba/ben_or.h"
#include "ba/bracha.h"
#include "ba/mmr.h"
#include "coin/dealer_coin.h"
#include "coin/shared_coin.h"
#include "coin/whp_coin.h"
#include "common/errors.h"
#include "net/reliable_process.h"
#include "sim/invariants.h"
#include "sim/simulation.h"

namespace coincidence::core {

const char* protocol_name(Protocol p) {
  switch (p) {
    case Protocol::kBenOr: return "ben-or";
    case Protocol::kMmrDealerCoin: return "rabin-dealer";
    case Protocol::kBracha: return "bracha";
    case Protocol::kMmrSharedCoin: return "mmr-vrf-coin";
    case Protocol::kMmrWhpCoin: return "mmr-whp-coin";
    case Protocol::kBaWhp: return "ba-whp";
  }
  return "unknown";
}

std::optional<Protocol> protocol_from_name(const std::string& name) {
  for (Protocol p : all_protocols())
    if (name == protocol_name(p)) return p;
  return std::nullopt;
}

const std::vector<Protocol>& all_protocols() {
  static const std::vector<Protocol> kAll = {
      Protocol::kBenOr, Protocol::kMmrDealerCoin, Protocol::kBracha,
      Protocol::kMmrSharedCoin, Protocol::kMmrWhpCoin, Protocol::kBaWhp};
  return kAll;
}

std::size_t min_n_for(Protocol p) {
  switch (p) {
    case Protocol::kBenOr: return 6;  // n > 5f with f = 1
    case Protocol::kMmrDealerCoin:
    case Protocol::kBracha:
    case Protocol::kMmrSharedCoin: return 4;  // n > 3f with f = 1
    // Committee protocols need W = ceil((2/3+3d)·8 ln n) <= n to be able
    // to collect a quorum at all; n = 32 is the smallest comfortable size
    // with the relaxed default parameters.
    case Protocol::kMmrWhpCoin: return 32;
    case Protocol::kBaWhp: return 32;
  }
  return 4;
}

const char* adversary_name(AdversaryKind a) {
  switch (a) {
    case AdversaryKind::kRandom: return "random";
    case AdversaryKind::kFifo: return "fifo";
    case AdversaryKind::kDelaySenders: return "delay-senders";
    case AdversaryKind::kSplit: return "split";
    case AdversaryKind::kHeavyTail: return "heavy-tail";
    case AdversaryKind::kAdaptiveCorruption: return "adaptive-corruption";
  }
  return "unknown";
}

namespace {

std::size_t resilience_f(Protocol p, std::size_t n, const Env& env) {
  switch (p) {
    case Protocol::kBenOr: return (n - 1) / 5;
    case Protocol::kBracha:
    case Protocol::kMmrSharedCoin:
    case Protocol::kMmrWhpCoin:
    case Protocol::kMmrDealerCoin: return (n - 1) / 3;
    case Protocol::kBaWhp: return env.params.f;
  }
  return 0;
}

/// The scope tag each protocol reports its top-level decisions under —
/// the only scope where agreement is a *promise* (coin sub-instances are
/// weak coins and may legitimately "disagree").
const char* agreement_scope(Protocol p) {
  switch (p) {
    case Protocol::kBenOr: return "benor";
    case Protocol::kBracha: return "bracha";
    case Protocol::kMmrSharedCoin: return "mmr";
    case Protocol::kMmrWhpCoin: return "mmrw";
    case Protocol::kMmrDealerCoin: return "rabin";
    case Protocol::kBaWhp: return "ba";
  }
  return "";
}

std::unique_ptr<sim::Adversary> make_adversary(const RunOptions& o,
                                               std::size_t f,
                                               std::size_t adaptive_victims) {
  switch (o.adversary) {
    case AdversaryKind::kRandom:
      return std::make_unique<sim::RandomAdversary>();
    case AdversaryKind::kFifo:
      return std::make_unique<sim::FifoAdversary>();
    case AdversaryKind::kDelaySenders: {
      std::vector<sim::ProcessId> victims;
      for (std::size_t i = 0; i < f && i < o.n; ++i)
        victims.push_back(static_cast<sim::ProcessId>(i));
      return std::make_unique<sim::DelaySendersAdversary>(std::move(victims));
    }
    case AdversaryKind::kSplit:
      return std::make_unique<sim::SplitAdversary>(
          static_cast<sim::ProcessId>(o.n / 2));
    case AdversaryKind::kHeavyTail:
      return std::make_unique<sim::HeavyTailAdversary>();
    case AdversaryKind::kAdaptiveCorruption: {
      sim::AdaptiveCorruptionAdversary::Config cfg;
      cfg.max_victims = adaptive_victims;
      return std::make_unique<sim::AdaptiveCorruptionAdversary>(cfg);
    }
  }
  return std::make_unique<sim::RandomAdversary>();
}

/// One-line, copy-pasteable reconstruction of a run: the (seed, config,
/// schedule) part of the repro triple (the schedule *phase* rides in the
/// violation description appended by the caller).
std::string repro_command(const RunOptions& o) {
  std::ostringstream os;
  os << "chaos_run --protocol " << protocol_name(o.protocol) << " --n "
     << o.n << " --seed " << o.seed << " --adversary "
     << adversary_name(o.adversary);
  if (o.crash) os << " --crash " << o.crash;
  if (o.silent) os << " --silent " << o.silent;
  if (o.junk) os << " --junk " << o.junk;
  if (o.crash_recover) os << " --crash-recover " << o.crash_recover;
  if (o.reliable_channel) {
    os << " --reliable";
    if (o.transport_retransmits != 24)
      os << " --retransmits " << o.transport_retransmits;
  }
  if (o.adaptive_victims != static_cast<std::size_t>(-1))
    os << " --adaptive-victims " << o.adaptive_victims;
  if (!o.defer_verify) os << " --no-defer-verify";
  if (!o.chaos.empty()) os << " --schedule \"" << o.chaos.spec() << '"';
  return os.str();
}

/// Sees through an optional ReliableProcess wrapper to the protocol.
ba::BaProcess& as_ba(sim::Process& p) {
  if (auto* wrapped = dynamic_cast<net::ReliableProcess*>(&p))
    return dynamic_cast<ba::BaProcess&>(wrapped->inner());
  return dynamic_cast<ba::BaProcess&>(p);
}

}  // namespace

RunReport run_agreement(const RunOptions& options) {
  return run_agreement(options, RunInstruments{});
}

RunReport run_agreement(const RunOptions& options,
                        const RunInstruments& instruments) {
  COIN_REQUIRE(options.n >= min_n_for(options.protocol),
               "run_agreement: n below the protocol's minimum");

  Env env = Env::make(options.n, options.epsilon, options.d,
                      options.seed ^ 0x9e3779b97f4a7c15ULL,
                      options.strict_params);
  const std::size_t f = resilience_f(options.protocol, options.n, env);
  const std::size_t faulty = options.crash + options.silent + options.junk +
                             options.crash_recover;
  COIN_REQUIRE(faulty <= f, "run_agreement: fault mix exceeds resilience f");

  std::vector<ba::Value> inputs = options.inputs;
  if (inputs.empty()) inputs.assign(options.n, ba::kZero);
  COIN_REQUIRE(inputs.size() == options.n, "run_agreement: inputs size != n");

  // Shared setup for the dealer-coin baseline (trusted dealer, §3).
  std::shared_ptr<coin::DealerCoinSetup> dealer_setup;
  if (options.protocol == Protocol::kMmrDealerCoin) {
    dealer_setup = std::make_shared<coin::DealerCoinSetup>(
        options.n, f, options.max_rounds, options.seed + 17);
  }

  // Sharded runs execute handlers concurrently, so the Env-shared
  // mutable crypto state — the sampler's cache and the BatchVerifier's
  // queues/memos — becomes one private lane per process. Verdicts are
  // pure functions of the inputs, so decisions/sends/words are identical
  // to the shared-lane wiring; only cross-process memo-hit counters (and
  // wall-clock) differ. Lane batchers outlive the Simulation: their
  // ledgers are aggregated after teardown, like env.batcher's.
  const bool sharded = options.shards > 0;
  std::vector<std::shared_ptr<coin::BatchVerifier>> lane_batchers(
      sharded ? options.n : 0);
  auto crypto_lane = [&](sim::ProcessId id)
      -> std::pair<std::shared_ptr<committee::Sampler>,
                   std::shared_ptr<coin::BatchVerifier>> {
    if (!sharded) return {env.sampler, env.batcher};
    auto sampler = std::make_shared<committee::CachingSampler>(
        env.vrf, env.registry, env.params.sample_prob());
    auto batcher = std::make_shared<coin::BatchVerifier>(
        coin::BatchVerifier::Config{env.vrf, sampler, env.signer});
    lane_batchers[id] = batcher;
    return {sampler, batcher};
  };

  auto make_process =
      [&](sim::ProcessId id,
          ba::Value input) -> std::unique_ptr<ba::BaProcess> {
    switch (options.protocol) {
      case Protocol::kBenOr: {
        ba::BenOr::Config cfg;
        cfg.n = options.n;
        cfg.f = f;
        cfg.max_rounds = options.max_rounds;
        return std::make_unique<ba::BenOr>(cfg, input);
      }
      case Protocol::kBracha: {
        ba::Bracha::Config cfg;
        cfg.n = options.n;
        cfg.f = f;
        cfg.max_rounds = options.max_rounds;
        cfg.rbc = options.rbc;
        return std::make_unique<ba::Bracha>(cfg, input);
      }
      case Protocol::kMmrSharedCoin: {
        ba::Mmr::Config cfg;
        cfg.tag = "mmr";
        cfg.n = options.n;
        cfg.f = f;
        cfg.max_rounds = options.max_rounds;
        cfg.make_coin = [env, lane = crypto_lane(id), n = options.n, f,
                         defer = options.defer_verify](
                            std::uint64_t round, const std::string& tag) {
          coin::SharedCoin::Config ccfg;
          ccfg.tag = tag;
          ccfg.round = round;
          ccfg.n = n;
          ccfg.f = f;
          ccfg.vrf = env.vrf;
          ccfg.registry = env.registry;
          if (defer) ccfg.batcher = lane.second;
          return std::make_unique<coin::SharedCoin>(ccfg);
        };
        return std::make_unique<ba::Mmr>(cfg, input);
      }
      case Protocol::kMmrWhpCoin: {
        ba::Mmr::Config cfg;
        cfg.tag = "mmrw";
        cfg.n = options.n;
        cfg.f = f;
        cfg.max_rounds = options.max_rounds;
        cfg.make_coin = [env, lane = crypto_lane(id),
                         defer = options.defer_verify](
                            std::uint64_t round, const std::string& tag) {
          coin::WhpCoin::Config ccfg;
          ccfg.tag = tag;
          ccfg.round = round;
          ccfg.params = env.params;
          ccfg.vrf = env.vrf;
          ccfg.registry = env.registry;
          ccfg.sampler = lane.first;
          if (defer) ccfg.batcher = lane.second;
          return std::make_unique<coin::WhpCoin>(ccfg);
        };
        return std::make_unique<ba::Mmr>(cfg, input);
      }
      case Protocol::kMmrDealerCoin: {
        ba::Mmr::Config cfg;
        cfg.tag = "rabin";
        cfg.n = options.n;
        cfg.f = f;
        cfg.max_rounds = options.max_rounds;
        cfg.make_coin = [dealer_setup](std::uint64_t round,
                                       const std::string& tag) {
          coin::DealerCoin::Config ccfg;
          ccfg.tag = tag;
          ccfg.round = round;
          ccfg.setup = dealer_setup;
          return std::make_unique<coin::DealerCoin>(ccfg);
        };
        return std::make_unique<ba::Mmr>(cfg, input);
      }
      case Protocol::kBaWhp: {
        auto lane = crypto_lane(id);
        ba::BaWhp::Config cfg;
        cfg.tag = "ba";
        cfg.params = env.params;
        cfg.vrf = env.vrf;
        cfg.registry = env.registry;
        cfg.sampler = lane.first;
        cfg.signer = env.signer;
        if (options.defer_verify) cfg.batcher = lane.second;
        cfg.max_rounds = options.max_rounds;
        return std::make_unique<ba::BaWhp>(cfg, input);
      }
    }
    throw PreconditionError("run_agreement: unknown protocol");
  };

  // Chaos churn waves and the adaptive hunter spend corruption budget on
  // top of the static fault mix; widen the simulation's f for them —
  // never beyond the protocol's resilience. The adaptive hunter gets
  // whatever resilience the mix and the churn waves leave unclaimed.
  std::size_t budget =
      std::min(f, faulty + options.chaos.max_churn_victims());
  std::size_t adaptive_victims = 0;
  if (options.adversary == AdversaryKind::kAdaptiveCorruption) {
    adaptive_victims = std::min(options.adaptive_victims, f - budget);
    budget += adaptive_victims;
  }

  sim::SimConfig scfg;
  scfg.n = options.n;
  scfg.f = budget;
  scfg.seed = options.seed;
  scfg.network = options.network;
  scfg.chaos = options.chaos;
  scfg.shards = options.shards;
  scfg.threads = options.threads;
  // Broadcast-heavy rounds keep O(n) messages per process in flight
  // inside the W-superstep window; presize the calendars for that.
  if (sharded) scfg.expected_in_flight = options.n * 16;

  RunReport report;
  report.faulty = faulty;
  report.protocol_f = f;
  // Inner scope: the Simulation (and with it every process and coin)
  // must be torn down before the BatchVerifier's queue ledger is read —
  // a destroyed coin is what reports its still-pending shares as
  // discarded-unverified.
  {
    sim::Simulation sim(scfg);
    if (instruments.detailed_metrics) sim.metrics().enable_detail();
    for (const auto& obs : instruments.observers) sim.add_observer(obs);
    std::shared_ptr<sim::InvariantChecker> checker;
    if (options.check_invariants) {
      sim::InvariantChecker::Config icfg;
      icfg.n = options.n;
      icfg.f = scfg.f;
      icfg.agreement_scopes = {agreement_scope(options.protocol)};
      icfg.expected_decision = options.expected_decision;
      checker = std::make_shared<sim::InvariantChecker>(icfg);
      sim.add_observer(checker);
    }
    for (sim::ProcessId i = 0; i < options.n; ++i) {
      std::unique_ptr<sim::Process> p = make_process(i, inputs[i]);
      if (options.reliable_channel) {
        net::ReliableChannelConfig rcfg;
        rcfg.max_retransmits = options.transport_retransmits;
        p = std::make_unique<net::ReliableProcess>(std::move(p), rcfg);
      }
      sim.add_process(std::move(p));
    }
    sim.set_adversary(make_adversary(options, f, adaptive_victims));

    // Faults land on the highest ids.
    sim::ProcessId next = static_cast<sim::ProcessId>(options.n);
    for (std::size_t i = 0; i < options.crash; ++i)
      sim.corrupt(--next, sim::FaultPlan::crash());
    for (std::size_t i = 0; i < options.silent; ++i)
      sim.corrupt(--next, sim::FaultPlan::silent());
    for (std::size_t i = 0; i < options.junk; ++i)
      sim.corrupt(--next, sim::FaultPlan::junk());
    for (std::size_t i = 0; i < options.crash_recover; ++i)
      sim.corrupt(--next,
                  sim::FaultPlan::crash_recover(options.recover_after));

    sim.start();
    sim.run_until([&] {
      // A run doesn't end while a chaos partition still holds traffic:
      // the schedule owes a heal, and the "partitions eventually heal"
      // invariant is checked against the *completed* schedule (the
      // simulator idle-advances to the heal event once decided).
      if (sim.chaos_held() != 0) return false;
      for (sim::ProcessId i = 0; i < options.n; ++i) {
        if (sim.is_corrupted(i)) continue;
        if (!as_ba(sim.process(i)).decided()) return false;
      }
      return true;
    });

    report.all_correct_decided = true;
    report.agreement = true;
    for (sim::ProcessId i = 0; i < options.n; ++i) {
      if (sim.is_corrupted(i)) continue;
      auto& p = as_ba(sim.process(i));
      if (!p.decided()) {
        report.all_correct_decided = false;
        continue;
      }
      if (!report.decision) report.decision = p.decision();
      if (*report.decision != p.decision()) report.agreement = false;
      report.max_decided_round = std::max(report.max_decided_round,
                                          p.decided_round());
    }
    if (!report.all_correct_decided) report.decision.reset();

    report.correct_words = sim.metrics().correct_words();
    report.messages = sim.metrics().messages_sent();
    report.words_by_tag = sim.metrics().words_by_tag();
    report.link_drops = sim.metrics().link_drops();
    report.link_duplicates = sim.metrics().link_duplicates();
    report.link_replays = sim.metrics().link_replays();
    report.retransmits = sim.metrics().retransmits();
    report.retransmit_words = sim.metrics().retransmit_words();
    report.dead_letters = sim.metrics().dead_letters();
    report.dead_letter_words = sim.metrics().dead_letter_words();
    report.verify_flushes = sim.metrics().verify_flushes();
    report.verify_shares = sim.metrics().verify_shares();
    report.verify_rejects = sim.metrics().verify_rejects();
    report.verify_memo_hits = sim.metrics().verify_memo_hits();
    report.sig_verify_flushes = sim.metrics().sig_verify_flushes();
    report.sig_verify_sigs = sim.metrics().sig_verify_sigs();
    report.sig_verify_rejects = sim.metrics().sig_verify_rejects();
    report.sig_verify_memo_hits = sim.metrics().sig_verify_memo_hits();
    report.rbc_encodes = sim.metrics().rbc_encodes();
    report.rbc_fragments_encoded = sim.metrics().rbc_fragments_encoded();
    report.rbc_decodes = sim.metrics().rbc_decodes();
    report.rbc_fragments_decoded = sim.metrics().rbc_fragments_decoded();
    report.rbc_decode_failures = sim.metrics().rbc_decode_failures();
    report.corrupted = sim.corrupted_count();
    report.partition_held = sim.metrics().partition_held();
    report.partition_dropped = sim.metrics().partition_dropped();
    report.partition_released = sim.metrics().partition_released();
    report.storm_copies = sim.metrics().storm_copies();
    report.churn_crashes = sim.metrics().churn_crashes();
    for (sim::ProcessId i = 0; i < options.n; ++i)
      report.duration = std::max(report.duration, sim.depth_of(i));

    if (sim.sharded()) {
      report.shards = sim.shard_count();
      report.supersteps = sim.supersteps();
      report.merge_stalls = sim.merge_stalls();
      for (const sim::ShardStats& s : sim.shard_stats())
        report.shard_deliveries.push_back(s.deliveries);
    }

    if (checker) {
      checker->finalize(sim.metrics().correct_words(), sim.chaos_held(),
                        sim.corrupted_count());
      for (const auto& v : checker->violations()) {
        report.invariant_violations.push_back(
            sim::InvariantChecker::describe(v));
        // The copy-pasteable repro: seed + config in the command, the
        // schedule phase in the describe() payload.
        std::cerr << "CHAOS-VIOLATION " << repro_command(options) << "  # "
                  << report.invariant_violations.back() << '\n';
      }
    }
    if (instruments.metrics_out) instruments.metrics_out(sim.metrics());
  }

  if (sharded) {
    for (const auto& b : lane_batchers) {
      if (!b) continue;
      report.verify_enqueued += b->enqueued();
      report.verify_batch_flushed += b->flushed();
      report.verify_discarded += b->discarded();
      report.sig_checks += b->sig_checks();
      report.sig_memo_hits += b->sig_memo().hits();
    }
  } else if (env.batcher) {
    report.verify_enqueued = env.batcher->enqueued();
    report.verify_batch_flushed = env.batcher->flushed();
    report.verify_discarded = env.batcher->discarded();
    report.sig_checks = env.batcher->sig_checks();
    report.sig_memo_hits = env.batcher->sig_memo().hits();
  }
  return report;
}

}  // namespace coincidence::core
