// Multi-instance agreement sessions over a single trusted setup.
//
// The paper (§3, comparison with Blum et al.) emphasizes that its setup —
// the PKI — "has to occur once and may be used for any number of BA
// instances". Session packages that: one Env (keys, VRF, sampler), any
// number of agreement slots, run either concurrently inside one
// simulation (one network, messages of all slots interleaved by the
// adversary) or as a convenience loop of independent instances.
#pragma once

#include <cstdint>
#include <vector>

#include "ba/broadcast.h"
#include "ba/value.h"
#include "common/bytes.h"
#include "core/env.h"
#include "core/runner.h"

namespace coincidence::core {

struct SlotReport {
  bool all_correct_decided = false;
  std::optional<int> decision;
  bool agreement = true;
  std::uint64_t max_decided_round = 0;
  /// Highest round any correct process *entered* for this slot — unlike
  /// max_decided_round it is honest for wedged slots too (a slot stuck
  /// in round 0 reports 0 because round 0 is where it sat, not because
  /// the telemetry never fired).
  std::uint64_t max_round_reached = 0;
  /// Rounds advanced via the skip fallback (summed over correct
  /// processes) and decisions adopted from a forwarded certificate.
  std::uint64_t rounds_skipped = 0;
  std::uint64_t cert_decisions = 0;
  std::uint64_t correct_words = 0;  // attributed by slot tag prefix
};

/// Session-wide knobs (all default to the legacy behaviour).
struct SessionOptions {
  /// BaWhp round-skip liveness fallback (ba_whp.h): silence window in
  /// delivery events before a wedged round is skipped. 0 = off.
  std::uint64_t skip_timeout = 0;
  std::uint32_t skip_max_attempts = 8;
  /// Sharded superstep engine (sim/simulation.h). 0 = legacy loop;
  /// k >= 1 is bit-identical for every shard/thread count.
  std::size_t shards = 0;
  std::size_t threads = 0;
  /// Dissemination backend for multivalued slots (ba/broadcast.h):
  /// Bracha full-value echoes or erasure-coded AVID-M fragments. Binary
  /// slots have no proposal broadcast and ignore it.
  ba::RbcBackend rbc = ba::RbcBackend::kBracha;
};

struct SessionReport {
  std::vector<SlotReport> slots;
  std::uint64_t correct_words = 0;   // across all slots
  std::uint64_t messages = 0;
  std::uint64_t duration = 0;

  bool all_slots_decided() const {
    for (const auto& s : slots)
      if (!s.all_correct_decided) return false;
    return !slots.empty();
  }
};

class Session {
 public:
  /// One setup, reused by every slot (the §3 property).
  explicit Session(Env env);

  /// Routes every slot's share/election checks through the Env's shared
  /// BatchVerifier (see RunOptions::defer_verify). On by default; slot
  /// decisions and word counts are bit-identical either way.
  void set_defer_verify(bool on) { defer_verify_ = on; }

  /// Applies to every subsequent run_concurrent_slots call.
  void set_options(const SessionOptions& options) { options_ = options; }
  const SessionOptions& options() const { return options_; }

  /// Runs `inputs.size()` BA-WHP instances *concurrently* in a single
  /// simulation: every process participates in all slots at once;
  /// inputs[slot][process] is its proposal for that slot. Committee seeds
  /// derive from the slot tag, so each slot gets fresh committees from
  /// the same keys.
  SessionReport run_concurrent_slots(
      const std::vector<std::vector<ba::Value>>& inputs, std::uint64_t seed,
      std::size_t silent_faults = 0, std::uint64_t max_rounds = 32);

  /// Multivalued analogue: `proposals[slot][process]` is that process's
  /// byte-string proposal for the slot; every slot runs a MultiValuedBa
  /// instance (proposal dissemination via SessionOptions::rbc) and the
  /// report's per-slot decision is the adopted rank index (-1 = no-op).
  /// Agreement additionally compares the adopted payloads byte-for-byte.
  SessionReport run_concurrent_mv_slots(
      const std::vector<std::vector<Bytes>>& proposals, std::uint64_t seed,
      std::size_t silent_faults = 0, std::uint64_t max_rounds = 32);

  const Env& env() const { return env_; }

 private:
  Env env_;
  bool defer_verify_ = true;
  SessionOptions options_;
};

}  // namespace coincidence::core
