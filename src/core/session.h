// Multi-instance agreement sessions over a single trusted setup.
//
// The paper (§3, comparison with Blum et al.) emphasizes that its setup —
// the PKI — "has to occur once and may be used for any number of BA
// instances". Session packages that: one Env (keys, VRF, sampler), any
// number of agreement slots, run either concurrently inside one
// simulation (one network, messages of all slots interleaved by the
// adversary) or as a convenience loop of independent instances.
#pragma once

#include <cstdint>
#include <vector>

#include "ba/value.h"
#include "core/env.h"
#include "core/runner.h"

namespace coincidence::core {

struct SlotReport {
  bool all_correct_decided = false;
  std::optional<int> decision;
  bool agreement = true;
  std::uint64_t max_decided_round = 0;
  std::uint64_t correct_words = 0;  // attributed by slot tag prefix
};

struct SessionReport {
  std::vector<SlotReport> slots;
  std::uint64_t correct_words = 0;   // across all slots
  std::uint64_t messages = 0;
  std::uint64_t duration = 0;

  bool all_slots_decided() const {
    for (const auto& s : slots)
      if (!s.all_correct_decided) return false;
    return !slots.empty();
  }
};

class Session {
 public:
  /// One setup, reused by every slot (the §3 property).
  explicit Session(Env env);

  /// Routes every slot's share/election checks through the Env's shared
  /// BatchVerifier (see RunOptions::defer_verify). On by default; slot
  /// decisions and word counts are bit-identical either way.
  void set_defer_verify(bool on) { defer_verify_ = on; }

  /// Runs `inputs.size()` BA-WHP instances *concurrently* in a single
  /// simulation: every process participates in all slots at once;
  /// inputs[slot][process] is its proposal for that slot. Committee seeds
  /// derive from the slot tag, so each slot gets fresh committees from
  /// the same keys.
  SessionReport run_concurrent_slots(
      const std::vector<std::vector<ba::Value>>& inputs, std::uint64_t seed,
      std::size_t silent_faults = 0, std::uint64_t max_rounds = 32);

  const Env& env() const { return env_; }

 private:
  Env env_;
  bool defer_verify_ = true;
};

}  // namespace coincidence::core
