#include "core/env.h"

#include "crypto/ddh_vrf.h"
#include "crypto/fast_vrf.h"

namespace coincidence::core {

namespace {
Env build(committee::Params params, std::size_t n, std::uint64_t seed) {
  Env env;
  env.params = params;
  env.registry = crypto::KeyRegistry::create_for(n, seed);
  env.vrf = std::make_shared<crypto::FastVrf>(env.registry);
  env.sampler = std::make_shared<committee::CachingSampler>(
      env.vrf, env.registry, env.params.sample_prob());
  env.signer = std::make_shared<crypto::Signer>(env.registry);
  env.batcher = std::make_shared<coin::BatchVerifier>(
      coin::BatchVerifier::Config{env.vrf, env.sampler, env.signer});
  return env;
}
}  // namespace

Env Env::make(std::size_t n, double epsilon, double d, std::uint64_t seed,
              bool strict) {
  return build(committee::Params::derive(n, epsilon, d, strict), n, seed);
}

Env Env::make_auto(std::size_t n, std::uint64_t seed) {
  return build(committee::Params::derive_auto(n), n, seed);
}

Env Env::make_relaxed(std::size_t n, std::uint64_t seed) {
  return build(committee::Params::derive(n, 0.25, 0.02, /*strict=*/false), n,
               seed);
}

Env Env::make_relaxed_ddh(std::size_t n, std::uint64_t seed,
                          std::size_t group_bits) {
  Env env;
  env.params = committee::Params::derive(n, 0.25, 0.02, /*strict=*/false);
  auto vrf = std::make_shared<crypto::DdhVrf>(
      crypto::PrimeGroup::generate(group_bits, seed));
  // Ties the batch-verification DRBG combiner to the session seed, so
  // replays of a run fold proofs under identical scalars.
  vrf->set_batch_seed(seed);
  auto registry = std::make_shared<crypto::KeyRegistry>();
  Rng rng(seed ^ 0xdd11dd11dd11dd11ULL);
  for (std::size_t i = 0; i < n; ++i) {
    crypto::VrfKeyPair kp = vrf->keygen(rng);
    registry->register_keypair(static_cast<crypto::ProcessId>(i),
                               std::move(kp.sk), std::move(kp.pk));
  }
  env.registry = std::move(registry);
  env.vrf = std::move(vrf);
  env.sampler = std::make_shared<committee::CachingSampler>(
      env.vrf, env.registry, env.params.sample_prob());
  env.signer = std::make_shared<crypto::Signer>(env.registry);
  env.batcher = std::make_shared<coin::BatchVerifier>(
      coin::BatchVerifier::Config{env.vrf, env.sampler, env.signer});
  return env;
}

}  // namespace coincidence::core
