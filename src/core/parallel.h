// Parallel experiment driver: a small thread pool plus order-preserving
// fan-out helpers for the repo's embarrassingly parallel workloads —
// chaos sweeps, coin success-rate estimates, word-scaling curves.
//
// Each run_agreement() call builds its own Env/Simulation and draws all
// randomness from its seeded RunOptions, so independent runs share no
// mutable state. The helpers here exploit that: work items execute on
// whatever thread grabs them, but results are stored by input index, so
// the output vector is bit-identical to a serial loop over the same
// options regardless of thread count or scheduling.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "core/runner.h"

namespace coincidence::core {

/// Hardware concurrency, clamped to at least 1 (the standard allows 0).
std::size_t default_thread_count();

/// Fixed-size pool of worker threads with a shared atomic work queue.
/// The calling thread participates in every job, so a pool constructed
/// with `threads == 1` runs everything inline on the caller — handy for
/// A/B-ing parallel against serial execution in tests.
class ThreadPool {
 public:
  /// `threads` is the TOTAL worker count including the calling thread;
  /// 0 means default_thread_count().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total workers, including the calling thread.
  std::size_t size() const { return workers_.size() + 1; }

  /// Runs body(i) once for every i in [0, count), distributing indices
  /// over the pool via an atomic counter, and blocks until all complete.
  /// If any invocations throw, the exception of the LOWEST failing index
  /// is rethrown (a deterministic choice independent of scheduling).
  void for_each_index(std::size_t count,
                      const std::function<void(std::size_t)>& body);

 private:
  void worker_loop();
  void work(const std::function<void(std::size_t)>& body, std::size_t count);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* body_ = nullptr;
  std::size_t count_ = 0;
  std::atomic<std::size_t> next_{0};
  std::size_t active_ = 0;       // workers still inside the current job
  std::uint64_t generation_ = 0; // bumped per job so workers wake exactly once
  bool stop_ = false;

  std::mutex err_mu_;
  std::exception_ptr err_;
  std::size_t err_index_ = 0;
};

/// Maps fn over [0, count) on the pool, returning results in input order.
/// R must be default-constructible (slot storage before fn(i) fills it).
template <typename Fn>
auto parallel_map(ThreadPool& pool, std::size_t count, Fn&& fn)
    -> std::vector<decltype(fn(std::size_t{}))> {
  std::vector<decltype(fn(std::size_t{}))> out(count);
  pool.for_each_index(count, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

/// Runs every RunOptions to completion on the pool. reports[i] is the
/// report for options[i], byte-identical to calling run_agreement(
/// options[i]) serially in a loop — merge order is the input order, not
/// completion order.
std::vector<RunReport> run_agreements_parallel(
    ThreadPool& pool, const std::vector<RunOptions>& options);

}  // namespace coincidence::core
