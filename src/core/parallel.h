// Parallel experiment driver: order-preserving fan-out of run_agreement
// calls for the repo's embarrassingly parallel workloads — chaos sweeps,
// coin success-rate estimates, word-scaling curves.
//
// The pool itself lives in common/parallel.h (so lower layers like the
// coin batch verifier can use it too); this header re-exports the names
// under core:: for existing callers and adds the runner-level helper.
//
// Each run_agreement() call builds its own Env/Simulation and draws all
// randomness from its seeded RunOptions, so independent runs share no
// mutable state. Work items execute on whatever thread grabs them, but
// results are stored by input index, so the output vector is
// bit-identical to a serial loop over the same options regardless of
// thread count or scheduling.
#pragma once

#include "common/parallel.h"
#include "core/runner.h"

namespace coincidence::core {

using coincidence::default_thread_count;
using coincidence::parallel_map;
using coincidence::ThreadPool;

/// Runs every RunOptions to completion on the pool. reports[i] is the
/// report for options[i], byte-identical to calling run_agreement(
/// options[i]) serially in a loop — merge order is the input order, not
/// completion order.
std::vector<RunReport> run_agreements_parallel(
    ThreadPool& pool, const std::vector<RunOptions>& options);

}  // namespace coincidence::core
