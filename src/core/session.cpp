#include "core/session.h"

#include "ba/ba_whp.h"
#include "ba/instance_mux.h"
#include "ba/mv_ba.h"
#include "common/errors.h"
#include "sim/observer.h"
#include "sim/simulation.h"

namespace coincidence::core {

namespace {

/// Attributes correct-sender words to the slot named by the first tag
/// segment — the per-slot cost split SessionReport exposes.
class SlotWordObserver final : public sim::Observer {
 public:
  explicit SlotWordObserver(std::size_t slots) : words_(slots, 0) {}

  void on_send(const sim::Message& msg, bool sender_correct) override {
    if (!sender_correct) return;
    // Tags look like "slot<k>/..."; parse k off the resolved string.
    const std::string& tag = msg.tag.str();
    constexpr std::size_t kPrefixLen = 4;  // "slot"
    if (tag.size() <= kPrefixLen || tag.compare(0, kPrefixLen, "slot") != 0)
      return;
    std::size_t k = 0;
    std::size_t i = kPrefixLen;
    bool any = false;
    while (i < tag.size() && tag[i] >= '0' && tag[i] <= '9') {
      k = k * 10 + static_cast<std::size_t>(tag[i] - '0');
      ++i;
      any = true;
    }
    if (any && k < words_.size()) words_[k] += msg.words;
  }

  std::uint64_t words_of(std::size_t slot) const { return words_.at(slot); }

 private:
  std::vector<std::uint64_t> words_;
};

}  // namespace

Session::Session(Env env) : env_(std::move(env)) {}

SessionReport Session::run_concurrent_slots(
    const std::vector<std::vector<ba::Value>>& inputs, std::uint64_t seed,
    std::size_t silent_faults, std::uint64_t max_rounds) {
  const std::size_t slots = inputs.size();
  const std::size_t n = env_.n();
  COIN_REQUIRE(slots > 0, "Session: need at least one slot");
  for (const auto& slot_inputs : inputs)
    COIN_REQUIRE(slot_inputs.size() == n, "Session: inputs size != n");
  COIN_REQUIRE(silent_faults <= std::max<std::size_t>(env_.f(), 0),
               "Session: faults exceed f");

  sim::SimConfig cfg;
  cfg.n = n;
  cfg.f = silent_faults;
  cfg.seed = seed;
  cfg.shards = options_.shards;
  cfg.threads = options_.threads;
  sim::Simulation sim(cfg);
  auto slot_words = std::make_shared<SlotWordObserver>(slots);
  sim.add_observer(slot_words);

  for (sim::ProcessId i = 0; i < n; ++i) {
    auto mux = std::make_unique<ba::InstanceMux>();
    for (std::size_t slot = 0; slot < slots; ++slot) {
      ba::BaWhp::Config bcfg;
      bcfg.tag = "slot" + std::to_string(slot);
      bcfg.params = env_.params;
      bcfg.vrf = env_.vrf;
      bcfg.registry = env_.registry;
      bcfg.sampler = env_.sampler;
      bcfg.signer = env_.signer;
      if (defer_verify_) bcfg.batcher = env_.batcher;
      bcfg.max_rounds = max_rounds;
      bcfg.skip_timeout = options_.skip_timeout;
      bcfg.skip_max_attempts = options_.skip_max_attempts;
      mux->add_instance("slot" + std::to_string(slot),
                        std::make_unique<ba::BaWhp>(bcfg, inputs[slot][i]));
    }
    sim.add_process(std::move(mux));
  }
  sim::ProcessId next = static_cast<sim::ProcessId>(n);
  for (std::size_t i = 0; i < silent_faults; ++i)
    sim.corrupt(--next, sim::FaultPlan::silent());

  sim.start();
  sim.run_until([&] {
    for (sim::ProcessId i = 0; i < n; ++i) {
      if (sim.is_corrupted(i)) continue;
      if (!dynamic_cast<ba::InstanceMux&>(sim.process(i)).all_decided())
        return false;
    }
    return true;
  });

  SessionReport report;
  report.slots.resize(slots);
  for (std::size_t slot = 0; slot < slots; ++slot) {
    SlotReport& sr = report.slots[slot];
    sr.all_correct_decided = true;
    for (sim::ProcessId i = 0; i < n; ++i) {
      if (sim.is_corrupted(i)) continue;
      auto& mux = dynamic_cast<ba::InstanceMux&>(sim.process(i));
      auto& ba = mux.instance("slot" + std::to_string(slot));
      if (const auto* whp = dynamic_cast<const ba::BaWhp*>(&ba)) {
        sr.max_round_reached =
            std::max(sr.max_round_reached, whp->current_round());
        sr.rounds_skipped += whp->rounds_skipped();
        sr.cert_decisions += whp->decided_by_certificate() ? 1 : 0;
      }
      if (!ba.decided()) {
        sr.all_correct_decided = false;
        continue;
      }
      if (!sr.decision) sr.decision = ba.decision();
      if (*sr.decision != ba.decision()) sr.agreement = false;
      sr.max_decided_round = std::max(sr.max_decided_round, ba.decided_round());
    }
    if (!sr.all_correct_decided) sr.decision.reset();
    sr.correct_words = slot_words->words_of(slot);
  }
  report.correct_words = sim.metrics().correct_words();
  report.messages = sim.metrics().messages_sent();
  for (sim::ProcessId i = 0; i < n; ++i)
    report.duration = std::max(report.duration, sim.depth_of(i));
  return report;
}

SessionReport Session::run_concurrent_mv_slots(
    const std::vector<std::vector<Bytes>>& proposals, std::uint64_t seed,
    std::size_t silent_faults, std::uint64_t max_rounds) {
  const std::size_t slots = proposals.size();
  const std::size_t n = env_.n();
  COIN_REQUIRE(slots > 0, "Session: need at least one slot");
  for (const auto& slot_proposals : proposals)
    COIN_REQUIRE(slot_proposals.size() == n, "Session: proposals size != n");
  COIN_REQUIRE(silent_faults <= std::max<std::size_t>(env_.f(), 0),
               "Session: faults exceed f");

  sim::SimConfig cfg;
  cfg.n = n;
  cfg.f = silent_faults;
  cfg.seed = seed;
  cfg.shards = options_.shards;
  cfg.threads = options_.threads;
  sim::Simulation sim(cfg);
  auto slot_words = std::make_shared<SlotWordObserver>(slots);
  sim.add_observer(slot_words);

  for (sim::ProcessId i = 0; i < n; ++i) {
    auto mux = std::make_unique<ba::InstanceMux>();
    for (std::size_t slot = 0; slot < slots; ++slot) {
      ba::MultiValuedBa::Config mcfg;
      mcfg.tag = "slot" + std::to_string(slot);
      mcfg.params = env_.params;
      mcfg.vrf = env_.vrf;
      mcfg.registry = env_.registry;
      mcfg.sampler = env_.sampler;
      mcfg.signer = env_.signer;
      if (defer_verify_) mcfg.batcher = env_.batcher;
      mcfg.max_rounds = max_rounds;
      mcfg.skip_timeout = options_.skip_timeout;
      mcfg.skip_max_attempts = options_.skip_max_attempts;
      mcfg.rbc = options_.rbc;
      mux->add_instance("slot" + std::to_string(slot),
                        std::make_unique<ba::MultiValuedBa>(
                            std::move(mcfg), proposals[slot][i]));
    }
    sim.add_process(std::move(mux));
  }
  sim::ProcessId next = static_cast<sim::ProcessId>(n);
  for (std::size_t i = 0; i < silent_faults; ++i)
    sim.corrupt(--next, sim::FaultPlan::silent());

  sim.start();
  sim.run_until([&] {
    for (sim::ProcessId i = 0; i < n; ++i) {
      if (sim.is_corrupted(i)) continue;
      if (!dynamic_cast<ba::InstanceMux&>(sim.process(i)).all_decided())
        return false;
    }
    return true;
  });

  SessionReport report;
  report.slots.resize(slots);
  for (std::size_t slot = 0; slot < slots; ++slot) {
    SlotReport& sr = report.slots[slot];
    sr.all_correct_decided = true;
    const Bytes* first_value = nullptr;
    for (sim::ProcessId i = 0; i < n; ++i) {
      if (sim.is_corrupted(i)) continue;
      auto& mux = dynamic_cast<ba::InstanceMux&>(sim.process(i));
      auto& ba = mux.instance("slot" + std::to_string(slot));
      const auto* mv = dynamic_cast<const ba::MultiValuedBa*>(&ba);
      if (mv) {
        sr.max_round_reached =
            std::max(sr.max_round_reached, mv->max_inner_round());
        sr.rounds_skipped += mv->rounds_skipped();
      }
      if (!ba.decided()) {
        sr.all_correct_decided = false;
        continue;
      }
      if (!sr.decision) sr.decision = ba.decision();
      if (*sr.decision != ba.decision()) sr.agreement = false;
      if (mv) {
        // Multivalued agreement is about payloads, not just indices.
        if (!first_value)
          first_value = &mv->decided_value();
        else if (*first_value != mv->decided_value())
          sr.agreement = false;
      }
      sr.max_decided_round = std::max(sr.max_decided_round, ba.decided_round());
    }
    if (!sr.all_correct_decided) sr.decision.reset();
    sr.correct_words = slot_words->words_of(slot);
  }
  report.correct_words = sim.metrics().correct_words();
  report.messages = sim.metrics().messages_sent();
  for (sim::ProcessId i = 0; i < n; ++i)
    report.duration = std::max(report.duration, sim.depth_of(i));
  return report;
}

}  // namespace coincidence::core
