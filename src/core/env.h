// The cluster environment: everything §2 assumes exists before the
// protocol starts — the PKI (key registry), the VRF, the committee
// sampler and the signature scheme — bundled behind one factory so
// applications can go from (n, ε, d, seed) to a runnable cluster in one
// call.
#pragma once

#include <cstdint>
#include <memory>

#include "coin/verify_queue.h"
#include "committee/params.h"
#include "committee/sampler.h"
#include "crypto/key_registry.h"
#include "crypto/signer.h"
#include "crypto/vrf.h"

namespace coincidence::core {

struct Env {
  committee::Params params;
  std::shared_ptr<crypto::KeyRegistry> registry;
  std::shared_ptr<crypto::Vrf> vrf;
  std::shared_ptr<committee::Sampler> sampler;
  std::shared_ptr<crypto::Signer> signer;
  /// Shared batch-verification service (coin/verify_queue.h): memoized,
  /// folded VRF + election checks for every process of a run. Like the
  /// sampler's cache it assumes single-threaded use — share it within
  /// one Simulation, never across concurrently-running ones (each
  /// run_agreement builds its own Env, so parallel drivers are safe).
  std::shared_ptr<coin::BatchVerifier> batcher;

  std::size_t n() const { return params.n; }
  std::size_t f() const { return params.f; }

  /// Builds an environment with explicit parameters. strict=true enforces
  /// the paper's ε/d windows (§2, §5.1); strict=false waives the
  /// lower-bound constants for small-n exploration (DESIGN.md §6).
  /// The FastVrf backend is used — see DESIGN.md's substitution table.
  static Env make(std::size_t n, double epsilon, double d,
                  std::uint64_t seed, bool strict = true);

  /// Strict parameters at the window midpoints; throws ConfigError when n
  /// is below committee::min_feasible_n().
  static Env make_auto(std::size_t n, std::uint64_t seed);

  /// The relaxed small-n configuration used across tests and benches
  /// (ε = 0.25, d = 0.02, strict = false).
  static Env make_relaxed(std::size_t n, std::uint64_t seed);

  /// Same wiring but with the *real* DDH-VRF over a `bits`-bit safe-prime
  /// group (fresh keypairs per process, registered in the PKI). Orders of
  /// magnitude slower than FastVrf (see bench/micro_crypto); meant for
  /// small-n end-to-end checks that the two backends are interchangeable.
  static Env make_relaxed_ddh(std::size_t n, std::uint64_t seed,
                              std::size_t group_bits = 96);
};

}  // namespace coincidence::core
