#include "core/coin_runner.h"

#include "coin/dealer_coin.h"
#include "coin/shared_coin.h"
#include "coin/whp_coin.h"
#include "common/errors.h"
#include "sim/simulation.h"

namespace coincidence::core {

const char* coin_name(CoinKind k) {
  switch (k) {
    case CoinKind::kShared: return "shared-coin";
    case CoinKind::kWhp: return "whp-coin";
    case CoinKind::kDealer: return "dealer-coin";
  }
  return "unknown";
}

CoinReport run_coin_trial(const CoinOptions& options) {
  Env env = Env::make(options.n, options.epsilon, options.d,
                      options.seed ^ 0xc2b2ae3d27d4eb4fULL,
                      options.strict_params);
  const std::size_t f = env.params.f;
  const std::size_t bias_budget = std::min(options.bias_budget, f);
  COIN_REQUIRE(options.silent + bias_budget <= std::max<std::size_t>(f, 1),
               "run_coin_trial: fault mix exceeds f");

  std::shared_ptr<coin::DealerCoinSetup> dealer_setup;
  if (options.kind == CoinKind::kDealer) {
    dealer_setup = std::make_shared<coin::DealerCoinSetup>(
        options.n, std::max<std::size_t>(f, 1), options.round + 1,
        options.seed + 3);
  }

  auto make_coin = [&](sim::ProcessId) -> std::unique_ptr<coin::CoinProtocol> {
    switch (options.kind) {
      case CoinKind::kShared: {
        coin::SharedCoin::Config cfg;
        cfg.tag = "coin";
        cfg.round = options.round;
        cfg.n = options.n;
        cfg.f = f;
        cfg.vrf = env.vrf;
        cfg.registry = env.registry;
        return std::make_unique<coin::SharedCoin>(cfg);
      }
      case CoinKind::kWhp: {
        coin::WhpCoin::Config cfg;
        cfg.tag = "coin";
        cfg.round = options.round;
        cfg.params = env.params;
        cfg.vrf = env.vrf;
        cfg.registry = env.registry;
        // Sharded handlers run concurrently: the shared sampler's cache
        // would race, so every process gets a private one (same vrf and
        // registry — verdicts, and thus words/outputs, are identical).
        cfg.sampler = options.shards == 0
                          ? env.sampler
                          : std::make_shared<committee::CachingSampler>(
                                env.vrf, env.registry,
                                env.params.sample_prob());
        return std::make_unique<coin::WhpCoin>(cfg);
      }
      case CoinKind::kDealer: {
        coin::DealerCoin::Config cfg;
        cfg.tag = "coin";
        cfg.round = options.round;
        cfg.setup = dealer_setup;
        return std::make_unique<coin::DealerCoin>(cfg);
      }
    }
    throw PreconditionError("run_coin_trial: unknown coin kind");
  };

  sim::SimConfig scfg;
  scfg.n = options.n;
  scfg.f = options.silent + bias_budget;
  scfg.seed = options.seed;
  scfg.fairness_bound = options.fairness_bound;
  scfg.allow_content_visibility = options.content_aware_bias;
  COIN_REQUIRE(options.shards == 0 ||
                   (options.delay_senders == 0 && !options.content_aware_bias),
               "run_coin_trial: scheduling adversaries need the legacy loop");
  scfg.shards = options.shards;
  scfg.threads = options.threads;
  if (options.shards > 0) scfg.expected_in_flight = options.n * 16;
  sim::Simulation sim(scfg);
  for (sim::ProcessId i = 0; i < options.n; ++i)
    sim.add_process(std::make_unique<coin::CoinHost>(make_coin(i)));
  if (options.content_aware_bias) {
    sim.set_adversary(std::make_unique<sim::CoinBiasAdversary>(
        "first", options.bias_toward));
  } else if (options.delay_senders > 0) {
    std::vector<sim::ProcessId> victims;
    for (std::size_t i = 0; i < options.delay_senders && i < options.n; ++i)
      victims.push_back(static_cast<sim::ProcessId>(i));
    sim.set_adversary(
        std::make_unique<sim::DelaySendersAdversary>(std::move(victims)));
  }
  sim::ProcessId next = static_cast<sim::ProcessId>(options.n);
  for (std::size_t i = 0; i < options.silent; ++i)
    sim.corrupt(--next, sim::FaultPlan::silent());

  sim.start();
  sim.run();

  CoinReport report;
  report.outputs.resize(options.n);
  report.all_returned = true;
  std::optional<int> bit;
  bool agreed = true;
  for (sim::ProcessId i = 0; i < options.n; ++i) {
    const auto& coin = dynamic_cast<coin::CoinHost&>(sim.process(i)).coin();
    if (coin.done()) report.outputs[i] = coin.output();
    if (sim.is_corrupted(i)) continue;
    if (!report.outputs[i]) {
      report.all_returned = false;
      agreed = false;
      continue;
    }
    if (!bit) bit = report.outputs[i];
    if (*bit != *report.outputs[i]) agreed = false;
  }
  if (agreed && bit) report.agreed_bit = bit;
  report.correct_words = sim.metrics().correct_words();
  for (sim::ProcessId i = 0; i < options.n; ++i)
    report.duration = std::max(report.duration, sim.depth_of(i));
  return report;
}

}  // namespace coincidence::core
