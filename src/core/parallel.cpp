#include "core/parallel.h"

namespace coincidence::core {

std::vector<RunReport> run_agreements_parallel(
    ThreadPool& pool, const std::vector<RunOptions>& options) {
  return parallel_map(pool, options.size(),
                      [&](std::size_t i) { return run_agreement(options[i]); });
}

}  // namespace coincidence::core
