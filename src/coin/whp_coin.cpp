#include "coin/whp_coin.h"

#include <algorithm>

#include "common/errors.h"
#include "common/ser.h"

namespace coincidence::coin {

namespace {
// Value (1) + originator VRF proof (1) + sender election proof (1).
constexpr std::size_t kWhpCoinMessageWords = 3;
}  // namespace

// Payload: the coin value + its originator's VRF proof, plus the
// *sender's* committee-election proof. Value blob first (see
// sim/adversary.cpp ablation note). Fields are views: decode borrows
// straight from the message buffer and the caller verifies/folds before
// the message goes away — nothing is copied.
struct WhpCoin::Wire {
  BytesView value;
  crypto::ProcessId origin = 0;
  BytesView origin_proof;
  BytesView election_proof;

  Bytes encode() const {
    Writer w;
    w.blob(value).u32(origin).blob(origin_proof).blob(election_proof);
    return w.take();
  }

  static bool decode(BytesView payload, Wire& out) {
    try {
      Reader r(payload);
      out.value = r.blob_view();
      out.origin = r.u32();
      out.origin_proof = r.blob_view();
      out.election_proof = r.blob_view();
      r.done();
      return true;
    } catch (const CodecError&) {
      return false;
    }
  }
};

WhpCoin::WhpCoin(Config cfg, DoneFn on_done)
    : cfg_(std::move(cfg)),
      on_done_(std::move(on_done)),
      tag_first_(cfg_.tag + "/first"),
      tag_second_(cfg_.tag + "/second"),
      first_seed_(cfg_.tag + "/first"),
      second_seed_(cfg_.tag + "/second"),
      first_seen_(cfg_.params.n, false),
      second_seen_(cfg_.params.n, false) {
  COIN_REQUIRE(cfg_.vrf && cfg_.registry && cfg_.sampler,
               "WhpCoin: missing crypto environment");
  COIN_REQUIRE(cfg_.params.n > 0 && cfg_.params.W > 0,
               "WhpCoin: bad parameters");
  Writer w;
  w.str("whp-coin").u64(cfg_.round);
  vrf_input_ = w.take();
}

WhpCoin::~WhpCoin() {
  if (cfg_.batcher && queue_.pending() > 0)
    cfg_.batcher->note_discarded(queue_.pending());
}

void WhpCoin::fold_min(BytesView value, crypto::ProcessId origin,
                       BytesView origin_proof) {
  const bool less = std::lexicographical_compare(
      value.begin(), value.end(), min_value_.begin(), min_value_.end());
  const bool equal = value.size() == min_value_.size() &&
                     std::equal(value.begin(), value.end(),
                                min_value_.begin());
  if (min_value_.empty() || less || (equal && origin < min_origin_)) {
    min_value_.assign(value.begin(), value.end());
    min_origin_ = origin;
    min_origin_proof_.assign(origin_proof.begin(), origin_proof.end());
  }
}

bool WhpCoin::mark_seen(std::vector<bool>& seen, crypto::ProcessId from) {
  // Equivalent of set::insert().second; senders outside [0, n) (possible
  // only in harnesses that size params.n below the simulation) grow the
  // bitmap rather than being dropped, matching the old std::set.
  if (from >= seen.size()) seen.resize(from + 1, false);
  if (seen[from]) return false;
  seen[from] = true;
  return true;
}

void WhpCoin::start(sim::Context& ctx) {
  auto first = cfg_.sampler->sample(ctx.self(), first_seed_);
  auto second = cfg_.sampler->sample(ctx.self(), second_seed_);
  in_first_ = first.sampled;
  in_second_ = second.sampled;
  first_election_proof_ = std::move(first.proof);
  second_election_proof_ = std::move(second.proof);

  if (in_first_) {
    crypto::VrfOutput out =
        cfg_.vrf->eval(cfg_.registry->sk_of(ctx.self()), vrf_input_);
    // A first-committee member seeds its own v_i (line 3).
    fold_min(out.value, ctx.self(), out.proof);
    Wire wire{out.value, ctx.self(), out.proof, first_election_proof_};
    ctx.broadcast(tag_first_, wire.encode(), kWhpCoinMessageWords);
  }
}

void WhpCoin::apply_share(sim::Context& ctx, bool is_first,
                          crypto::ProcessId sender, BytesView value,
                          crypto::ProcessId origin, BytesView origin_proof) {
  if (is_first ? (!in_second_ || done_) : done_) return;  // state no-op
  if (is_first) {
    if (!mark_seen(first_seen_, sender)) return;
    ++first_count_;
    fold_min(value, origin, origin_proof);
    if (!sent_second_ && first_count_ == cfg_.params.W) {
      sent_second_ = true;
      for (crypto::ProcessId p = 0; p < first_seen_.size(); ++p)
        if (first_seen_[p]) first_snapshot_.insert(first_snapshot_.end(), p);
      Wire relay{min_value_, min_origin_, min_origin_proof_,
                 second_election_proof_};
      ctx.broadcast(tag_second_, relay.encode(), kWhpCoinMessageWords);
    }
    return;
  }

  // <second>: every process participates in the final wait (lines 13–17).
  if (!mark_seen(second_seen_, sender)) return;
  ++second_count_;
  fold_min(value, origin, origin_proof);
  if (second_count_ == cfg_.params.W) {
    done_ = true;
    output_ = min_value_.back() & 1;
    ctx.note_decide(cfg_.tag, output_, cfg_.round);
    if (on_done_) on_done_(output_);
  }
}

bool WhpCoin::should_flush() const {
  // Candidate threshold (see verify_queue.h): if the pending shares
  // could carry a phase across W, flush now so the threshold action
  // fires in this delivery frame, like inline verification.
  if (!sent_second_ && in_second_ &&
      first_count_ + queue_.pending_first() >= cfg_.params.W)
    return true;
  if (!done_ && second_count_ + queue_.pending_second() >= cfg_.params.W)
    return true;
  return queue_.pending() >= cfg_.batcher->watermark();
}

void WhpCoin::flush_queue(sim::Context& ctx) {
  std::vector<PendingVerifyQueue::Share> shares = queue_.take();
  cfg_.batcher->note_flushed(shares.size());

  // The sender must prove membership in the phase's committee…
  std::vector<committee::Sampler::ValCheck> checks;
  checks.reserve(shares.size());
  for (const PendingVerifyQueue::Share& s : shares)
    checks.push_back(committee::Sampler::ValCheck{
        s.is_first ? &first_seed_ : &second_seed_, s.sender,
        s.election_proof});
  std::vector<char> election_ok;
  cfg_.batcher->verify_elections(checks, election_ok);

  // …and the carried value must be the originator's honest VRF output.
  // Shares that already failed the election check stay out of the VRF
  // batch, matching the inline short-circuit.
  std::vector<crypto::VrfBatchEntry> entries;
  std::vector<std::size_t> entry_of;
  entries.reserve(shares.size());
  entry_of.reserve(shares.size());
  for (std::size_t i = 0; i < shares.size(); ++i) {
    if (!election_ok[i]) continue;
    const PendingVerifyQueue::Share& s = shares[i];
    entries.push_back(crypto::VrfBatchEntry{cfg_.registry->pk_of(s.origin),
                                            vrf_input_, s.value,
                                            s.origin_proof});
    entry_of.push_back(i);
  }
  std::vector<char> vrf_ok;
  BatchVerifier::FlushStats stats =
      cfg_.batcher->verify_shares(entries, vrf_ok);

  std::vector<char> accept(shares.size(), 0);
  for (std::size_t j = 0; j < entries.size(); ++j)
    accept[entry_of[j]] = vrf_ok[j];
  std::size_t rejects = 0;
  for (char a : accept)
    if (!a) ++rejects;
  ctx.note_verify_batch(shares.size(), rejects, stats.memo_hits);

  for (std::size_t i = 0; i < shares.size(); ++i) {
    if (!accept[i]) continue;
    const PendingVerifyQueue::Share& s = shares[i];
    apply_share(ctx, s.is_first, s.sender, s.value, s.origin, s.origin_proof);
  }
}

bool WhpCoin::handle(sim::Context& ctx, const sim::Message& msg) {
  const bool is_first = msg.tag == tag_first_;
  const bool is_second = msg.tag == tag_second_;
  if (!is_first && !is_second) return false;

  // Fast discard: nothing below mutates state once the coin is done, and
  // firsts only matter to second-committee consumers (line 7). Returning
  // before the decode and the two verifications is observably identical
  // — every later path for these cases returns true with no state change
  // — and spares most processes the per-message hash work.
  if (is_first ? (!in_second_ || done_) : done_) return true;

  Wire wire;
  if (!Wire::decode(msg.payload, wire)) return true;
  if (wire.origin >= cfg_.params.n) return true;
  if (is_first && wire.origin != msg.from) return true;

  if (cfg_.batcher) {
    // Deferred path. Senders already counted for the phase drop here
    // (inline: verify then fail mark_seen, no state change); senders with
    // only PENDING shares must still enqueue — their queued share might
    // fail verification where this one passes.
    const std::vector<bool>& seen = is_first ? first_seen_ : second_seen_;
    if (msg.from < seen.size() && seen[msg.from]) return true;
    PendingVerifyQueue::Share share;
    share.buf = msg.payload;  // refcount bump keeps the views alive
    share.sender = msg.from;
    share.origin = wire.origin;
    share.is_first = is_first;
    share.value = wire.value;
    share.origin_proof = wire.origin_proof;
    share.election_proof = wire.election_proof;
    queue_.enqueue(std::move(share));
    cfg_.batcher->note_enqueued();
    if (should_flush()) flush_queue(ctx);
    return true;
  }

  // The sender must prove membership in the phase's committee…
  const std::string& seed = is_first ? first_seed_ : second_seed_;
  if (!cfg_.sampler->committee_val(seed, msg.from, wire.election_proof))
    return true;
  // …and the carried value must be the originator's honest VRF output.
  if (!cfg_.vrf->verify(cfg_.registry->pk_of(wire.origin), vrf_input_,
                        wire.value, wire.origin_proof))
    return true;

  apply_share(ctx, is_first, msg.from, wire.value, wire.origin,
              wire.origin_proof);
  return true;
}

int WhpCoin::output() const {
  COIN_REQUIRE(done_, "WhpCoin: output read before completion");
  return output_;
}

}  // namespace coincidence::coin
