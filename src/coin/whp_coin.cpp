#include "coin/whp_coin.h"

#include "common/errors.h"
#include "common/ser.h"

namespace coincidence::coin {

namespace {
// Value (1) + originator VRF proof (1) + sender election proof (1).
constexpr std::size_t kWhpCoinMessageWords = 3;
}  // namespace

// Payload: the coin value + its originator's VRF proof, plus the
// *sender's* committee-election proof. Value blob first (see
// sim/adversary.cpp ablation note).
struct WhpCoin::Wire {
  Bytes value;
  crypto::ProcessId origin = 0;
  Bytes origin_proof;
  Bytes election_proof;

  Bytes encode() const {
    Writer w;
    w.blob(value).u32(origin).blob(origin_proof).blob(election_proof);
    return w.take();
  }

  static bool decode(BytesView payload, Wire& out) {
    try {
      Reader r(payload);
      out.value = r.blob();
      out.origin = r.u32();
      out.origin_proof = r.blob();
      out.election_proof = r.blob();
      r.done();
      return true;
    } catch (const CodecError&) {
      return false;
    }
  }
};

WhpCoin::WhpCoin(Config cfg, DoneFn on_done)
    : cfg_(std::move(cfg)), on_done_(std::move(on_done)) {
  COIN_REQUIRE(cfg_.vrf && cfg_.registry && cfg_.sampler,
               "WhpCoin: missing crypto environment");
  COIN_REQUIRE(cfg_.params.n > 0 && cfg_.params.W > 0,
               "WhpCoin: bad parameters");
}

Bytes WhpCoin::vrf_input() const {
  Writer w;
  w.str("whp-coin").u64(cfg_.round);
  return w.take();
}

void WhpCoin::fold_min(const Bytes& value, crypto::ProcessId origin,
                       const Bytes& origin_proof) {
  if (min_value_.empty() || value < min_value_ ||
      (value == min_value_ && origin < min_origin_)) {
    min_value_ = value;
    min_origin_ = origin;
    min_origin_proof_ = origin_proof;
  }
}

void WhpCoin::start(sim::Context& ctx) {
  auto first = cfg_.sampler->sample(ctx.self(), first_seed());
  auto second = cfg_.sampler->sample(ctx.self(), second_seed());
  in_first_ = first.sampled;
  in_second_ = second.sampled;
  first_election_proof_ = std::move(first.proof);
  second_election_proof_ = std::move(second.proof);

  if (in_first_) {
    crypto::VrfOutput out =
        cfg_.vrf->eval(cfg_.registry->sk_of(ctx.self()), vrf_input());
    // A first-committee member seeds its own v_i (line 3).
    fold_min(out.value, ctx.self(), out.proof);
    Wire wire{out.value, ctx.self(), out.proof, first_election_proof_};
    ctx.broadcast(cfg_.tag + "/first", wire.encode(), kWhpCoinMessageWords);
  }
}

bool WhpCoin::handle(sim::Context& ctx, const sim::Message& msg) {
  bool is_first = msg.tag == cfg_.tag + "/first";
  bool is_second = msg.tag == cfg_.tag + "/second";
  if (!is_first && !is_second) return false;

  Wire wire;
  if (!Wire::decode(msg.payload, wire)) return true;
  if (wire.origin >= cfg_.params.n) return true;
  if (is_first && wire.origin != msg.from) return true;

  // The sender must prove membership in the phase's committee…
  const std::string& seed = is_first ? first_seed() : second_seed();
  if (!cfg_.sampler->committee_val(seed, msg.from, wire.election_proof))
    return true;
  // …and the carried value must be the originator's honest VRF output.
  crypto::VrfOutput out{wire.value, wire.origin_proof};
  if (!cfg_.vrf->verify(cfg_.registry->pk_of(wire.origin), vrf_input(), out))
    return true;

  if (is_first) {
    // Only second-committee members consume firsts (line 7).
    if (!in_second_ || done_) return true;
    if (!first_set_.insert(msg.from).second) return true;
    fold_min(wire.value, wire.origin, wire.origin_proof);
    if (!sent_second_ && first_set_.size() == cfg_.params.W) {
      sent_second_ = true;
      first_snapshot_ = first_set_;
      Wire relay{min_value_, min_origin_, min_origin_proof_,
                 second_election_proof_};
      ctx.broadcast(cfg_.tag + "/second", relay.encode(),
                    kWhpCoinMessageWords);
    }
    return true;
  }

  // <second>: every process participates in the final wait (lines 13–17).
  if (done_ || !second_set_.insert(msg.from).second) return true;
  fold_min(wire.value, wire.origin, wire.origin_proof);
  if (second_set_.size() == cfg_.params.W) {
    done_ = true;
    output_ = min_value_.back() & 1;
    if (on_done_) on_done_(output_);
  }
  return true;
}

int WhpCoin::output() const {
  COIN_REQUIRE(done_, "WhpCoin: output read before completion");
  return output_;
}

}  // namespace coincidence::coin
