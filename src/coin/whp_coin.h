// Algorithm 2: the committee-sampled WHP coin.
//
// Two committees are sampled locally via the VRF (seeds "<tag>/first",
// "<tag>/second"): only first-committee members contribute VRF values,
// only second-committee members relay minima, but messages go to all n
// processes (membership is unpredictable, so there is nobody smaller to
// address). Thresholds move from n−f to W = ⌈(2/3+3d)λ⌉, justified by the
// Chernoff properties S1–S6.
//
// Success rate >= (18d² + 27d − 1)/(3(5+6d)(1−d)(1+9d)) whp (Theorem 5.4).
// Word complexity O(nλ) = O(n log n) in expectation.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "coin/coin_protocol.h"
#include "coin/verify_queue.h"
#include "committee/params.h"
#include "committee/sampler.h"
#include "crypto/key_registry.h"
#include "crypto/vrf.h"

namespace coincidence::coin {

class WhpCoin final : public CoinProtocol {
 public:
  struct Config {
    std::string tag;      // instance routing prefix (also the committee seed)
    std::uint64_t round;  // the argument r of whp_coin(r)
    committee::Params params;
    std::shared_ptr<const crypto::Vrf> vrf;
    std::shared_ptr<const crypto::KeyRegistry> registry;
    std::shared_ptr<const committee::Sampler> sampler;
    /// When set, election + share proofs are queued and batch-verified
    /// on the thresholds described in verify_queue.h instead of inline
    /// per message; sends/decides/outputs are bit-identical either way.
    std::shared_ptr<BatchVerifier> batcher;
  };

  using DoneFn = std::function<void(int)>;

  WhpCoin(Config cfg, DoneFn on_done = {});
  /// A retiring coin settles its verification ledger: whatever is still
  /// queued unverified is reported to the batcher as discarded, keeping
  /// enqueued == flushed + discarded across round ends and crashes.
  ~WhpCoin() override;

  void start(sim::Context& ctx) override;
  bool handle(sim::Context& ctx, const sim::Message& msg) override;
  bool done() const override { return done_; }
  int output() const override;

  /// Whitebox accessors for tests.
  bool in_first_committee() const { return in_first_; }
  bool in_second_committee() const { return in_second_; }
  const Bytes& current_min_value() const { return min_value_; }
  crypto::ProcessId current_min_origin() const { return min_origin_; }
  /// Origins of firsts received when the <second> went out (Lemma B.1's
  /// table row); empty unless this process is a second-committee member
  /// that reached W firsts.
  const std::set<crypto::ProcessId>& phase1_snapshot() const {
    return first_snapshot_;
  }

 private:
  struct Wire;

  void fold_min(BytesView value, crypto::ProcessId origin,
                BytesView origin_proof);
  bool mark_seen(std::vector<bool>& seen, crypto::ProcessId from);
  /// Applies one share whose election AND value proofs verified — the
  /// state transition shared by the inline and deferred paths.
  void apply_share(sim::Context& ctx, bool is_first,
                   crypto::ProcessId sender, BytesView value,
                   crypto::ProcessId origin, BytesView origin_proof);
  /// Batch-verifies and applies every queued share, in arrival order.
  void flush_queue(sim::Context& ctx);
  bool should_flush() const;

  Config cfg_;
  DoneFn on_done_;

  // Precomputed at construction so handle() matches tags by integer id
  // and verifies against cached seed/input bytes — zero allocations per
  // delivered message.
  sim::Tag tag_first_;
  sim::Tag tag_second_;
  std::string first_seed_;
  std::string second_seed_;
  Bytes vrf_input_;

  bool in_first_ = false;
  bool in_second_ = false;
  Bytes first_election_proof_;
  Bytes second_election_proof_;

  Bytes min_value_;  // empty encodes the paper's v_i = ∞
  crypto::ProcessId min_origin_ = 0;
  Bytes min_origin_proof_;
  // Per-sender dedup bitmaps + counts (replacing std::set: no node
  // allocation per accepted message).
  std::vector<bool> first_seen_;
  std::vector<bool> second_seen_;
  std::size_t first_count_ = 0;
  std::size_t second_count_ = 0;
  std::set<crypto::ProcessId> first_snapshot_;  // first set at second-send
  bool sent_second_ = false;
  bool done_ = false;
  int output_ = 0;

  PendingVerifyQueue queue_;  // unused (always empty) without a batcher
};

}  // namespace coincidence::coin
