// Algorithm 1: the full-participation asynchronous shared coin.
//
//   v_i <- VRF_i(r); send <first, v_i> to all
//   on n−f valid firsts: send <second, min seen> to all
//   on n−f valid seconds: return LSB(min seen)
//
// Every value travels with the *originator's* VRF proof, so Byzantine
// processes can neither choose their coin contribution nor relay a
// fabricated minimum — exactly the paper's "the VRF proof would easily
// expose it and its message would be ignored".
//
// Success rate >= (18ε² + 24ε − 1) / (6(1+6ε))  (Theorem 4.13).
// Word complexity O(n²): 2n broadcasts of constant-word messages.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <string>

#include "coin/coin_protocol.h"
#include "coin/verify_queue.h"
#include "crypto/key_registry.h"
#include "crypto/vrf.h"

namespace coincidence::coin {

class SharedCoin final : public CoinProtocol {
 public:
  struct Config {
    std::string tag;        // instance routing prefix, e.g. "coin/7"
    std::uint64_t round;    // the argument r of shared_coin(r)
    std::size_t n = 0;
    std::size_t f = 0;
    std::shared_ptr<const crypto::Vrf> vrf;
    std::shared_ptr<const crypto::KeyRegistry> registry;
    /// When set, share proofs are queued and batch-verified on the
    /// thresholds described in verify_queue.h instead of inline per
    /// message; sends/decides/outputs are bit-identical either way.
    std::shared_ptr<BatchVerifier> batcher;
  };

  /// `on_done` fires exactly once, with the coin output bit.
  using DoneFn = std::function<void(int)>;

  SharedCoin(Config cfg, DoneFn on_done = {});
  /// A retiring coin settles its verification ledger: whatever is still
  /// queued unverified is reported to the batcher as discarded, keeping
  /// enqueued == flushed + discarded across round ends and crashes.
  ~SharedCoin() override;

  void start(sim::Context& ctx) override;
  bool handle(sim::Context& ctx, const sim::Message& msg) override;
  bool done() const override { return done_; }
  int output() const override;

  /// Exposed for whitebox tests: the minimum (value, origin) held so far.
  const Bytes& current_min_value() const { return min_value_; }

  /// The set of origins whose first-phase values this process had
  /// received when it sent its <second> message — the row of the table T
  /// in Lemma 4.2's proof. Empty until the second is sent.
  const std::set<crypto::ProcessId>& phase1_snapshot() const {
    return first_snapshot_;
  }

 private:
  struct Wire;  // payload codec

  /// Updates the running minimum with a validated (value, origin) pair.
  void fold_min(BytesView value, crypto::ProcessId origin,
                BytesView origin_proof);
  /// Applies one VERIFIED share — the state transition both the inline
  /// and the deferred path share.
  void apply_share(sim::Context& ctx, bool is_first,
                   crypto::ProcessId sender, BytesView value,
                   crypto::ProcessId origin, BytesView origin_proof);
  /// Batch-verifies and applies every queued share, in arrival order.
  void flush_queue(sim::Context& ctx);
  /// True if a flush trigger (candidate threshold / watermark) is met.
  bool should_flush() const;

  Config cfg_;
  DoneFn on_done_;

  // Precomputed at construction: handle() matches tags by integer id and
  // evaluates against the cached input — no allocation per message.
  sim::Tag tag_first_;
  sim::Tag tag_second_;
  Bytes vrf_input_;

  Bytes min_value_;            // current minimum VRF value (empty = none)
  crypto::ProcessId min_origin_ = 0;
  Bytes min_origin_proof_;     // the originator's VRF proof for min_value_
  std::set<crypto::ProcessId> first_set_;
  std::set<crypto::ProcessId> first_snapshot_;  // first_set_ at second-send
  std::set<crypto::ProcessId> second_set_;
  bool sent_second_ = false;
  bool done_ = false;
  int output_ = 0;

  PendingVerifyQueue queue_;  // unused (always empty) without a batcher
};

}  // namespace coincidence::coin
