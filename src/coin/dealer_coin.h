// Rabin-style dealer coin (baseline, cf. Table 1 row "Rabin [33]").
//
// Rabin's shared coin assumes a trusted dealer who pre-deals Shamir
// shares of a sequence of random bits; in round r every process reveals
// its share and reconstructs the bit from f+1 of them. We reproduce that
// trust model: DealerCoinSetup is the dealer (runs before the protocol,
// like the paper's PKI setup), shares are authenticated with the dealer's
// key so Byzantine processes cannot poison reconstruction — the classic
// "check pieces" device in Rabin's construction.
//
// Success rate 1 (it is a perfect coin); word complexity O(n²) per flip;
// requires the stronger trusted-dealer setup our protocol avoids.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "coin/coin_protocol.h"
#include "crypto/key_registry.h"
#include "crypto/shamir.h"
#include "crypto/signer.h"

namespace coincidence::coin {

/// The trusted dealer: pre-deals authenticated Shamir shares of random
/// bits for rounds [0, max_rounds).
class DealerCoinSetup {
 public:
  DealerCoinSetup(std::size_t n, std::size_t f, std::size_t max_rounds,
                  std::uint64_t seed);

  std::size_t n() const { return n_; }
  std::size_t f() const { return f_; }
  std::size_t max_rounds() const { return rounds_.size(); }

  struct DealtShare {
    crypto::Share share;
    Bytes mac;  // dealer authentication tag over (round, x, y)
  };

  /// The share dealt to process `i` for round `r`.
  DealtShare share_for(std::uint64_t round, crypto::ProcessId i) const;

  /// Verifies a revealed share against the dealer's authentication tag.
  bool verify_share(std::uint64_t round, const crypto::Share& share,
                    BytesView mac) const;

  /// Ground truth for tests: the bit the dealer committed for round r.
  int bit_of(std::uint64_t round) const;

 private:
  Bytes mac_for(std::uint64_t round, const crypto::Share& share) const;

  std::size_t n_;
  std::size_t f_;
  Bytes dealer_key_;
  std::vector<std::uint64_t> round_secrets_;
  std::vector<std::vector<crypto::Share>> rounds_;  // [round][process]
};

class DealerCoin final : public CoinProtocol {
 public:
  struct Config {
    std::string tag;
    std::uint64_t round = 0;
    std::shared_ptr<const DealerCoinSetup> setup;
  };

  using DoneFn = std::function<void(int)>;

  DealerCoin(Config cfg, DoneFn on_done = {});

  void start(sim::Context& ctx) override;
  bool handle(sim::Context& ctx, const sim::Message& msg) override;
  bool done() const override { return done_; }
  int output() const override;

 private:
  Config cfg_;
  DoneFn on_done_;
  sim::Tag tag_share_;  // interned once; handle() compares ids
  std::map<crypto::ProcessId, crypto::Share> shares_;
  bool done_ = false;
  int output_ = 0;
};

}  // namespace coincidence::coin
