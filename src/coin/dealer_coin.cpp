#include "coin/dealer_coin.h"

#include "common/errors.h"
#include "common/ser.h"
#include "crypto/hmac.h"

namespace coincidence::coin {

namespace {
constexpr std::size_t kShareMessageWords = 2;  // share value + dealer tag
}  // namespace

DealerCoinSetup::DealerCoinSetup(std::size_t n, std::size_t f,
                                 std::size_t max_rounds, std::uint64_t seed)
    : n_(n), f_(f) {
  COIN_REQUIRE(n > f, "DealerCoinSetup: need n > f");
  Rng rng(seed);
  dealer_key_ = rng.next_bytes(32);
  round_secrets_.reserve(max_rounds);
  rounds_.reserve(max_rounds);
  for (std::size_t r = 0; r < max_rounds; ++r) {
    // The dealt secret is a full field element whose LSB is the coin bit
    // (sharing just {0,1} would leak the bit to any single share holder
    // in a trivial scheme; a random element keeps shares uninformative).
    std::uint64_t secret = rng.next_below(crypto::Field61::kP);
    round_secrets_.push_back(secret);
    rounds_.push_back(crypto::shamir_share(secret, n, f, rng));
  }
}

Bytes DealerCoinSetup::mac_for(std::uint64_t round,
                               const crypto::Share& share) const {
  Writer w;
  w.u64(round).u64(share.x).u64(share.y);
  return crypto::hmac_sha256_bytes(dealer_key_, w.bytes());
}

DealerCoinSetup::DealtShare DealerCoinSetup::share_for(
    std::uint64_t round, crypto::ProcessId i) const {
  COIN_REQUIRE(round < rounds_.size(), "DealerCoinSetup: round not dealt");
  COIN_REQUIRE(i < n_, "DealerCoinSetup: bad process id");
  const crypto::Share& s = rounds_[round][i];
  return {s, mac_for(round, s)};
}

bool DealerCoinSetup::verify_share(std::uint64_t round,
                                   const crypto::Share& share,
                                   BytesView mac) const {
  if (round >= rounds_.size()) return false;
  return ct_equal(mac_for(round, share), mac);
}

int DealerCoinSetup::bit_of(std::uint64_t round) const {
  COIN_REQUIRE(round < round_secrets_.size(),
               "DealerCoinSetup: round not dealt");
  return static_cast<int>(round_secrets_[round] & 1);
}

DealerCoin::DealerCoin(Config cfg, DoneFn on_done)
    : cfg_(std::move(cfg)),
      on_done_(std::move(on_done)),
      tag_share_(cfg_.tag + "/share") {
  COIN_REQUIRE(cfg_.setup != nullptr, "DealerCoin: missing setup");
  COIN_REQUIRE(cfg_.round < cfg_.setup->max_rounds(),
               "DealerCoin: round beyond dealt supply");
}

void DealerCoin::start(sim::Context& ctx) {
  auto dealt = cfg_.setup->share_for(cfg_.round, ctx.self());
  Writer w;
  w.u64(dealt.share.x).u64(dealt.share.y).blob(dealt.mac);
  ctx.broadcast(tag_share_, w.take(), kShareMessageWords);
}

bool DealerCoin::handle(sim::Context& ctx, const sim::Message& msg) {
  if (msg.tag != tag_share_) return false;
  if (done_) return true;

  crypto::Share share;
  BytesView mac;
  try {
    Reader r(msg.payload);
    share.x = r.u64();
    share.y = r.u64();
    mac = r.blob_view();
    r.done();
  } catch (const CodecError&) {
    return true;
  }
  // The dealer authenticated (round, x, y); a Byzantine process can only
  // replay its own legitimate share or be ignored.
  if (share.x != static_cast<std::uint64_t>(msg.from) + 1) return true;
  if (!cfg_.setup->verify_share(cfg_.round, share, mac)) return true;
  shares_.emplace(msg.from, share);

  if (shares_.size() == cfg_.setup->f() + 1) {
    std::vector<crypto::Share> reveal;
    reveal.reserve(shares_.size());
    for (const auto& [id, s] : shares_) reveal.push_back(s);
    done_ = true;
    output_ = static_cast<int>(crypto::shamir_reconstruct(reveal) & 1);
    ctx.note_decide(cfg_.tag, output_, cfg_.round);
    if (on_done_) on_done_(output_);
  }
  return true;
}

int DealerCoin::output() const {
  COIN_REQUIRE(done_, "DealerCoin: output read before completion");
  return output_;
}

}  // namespace coincidence::coin
