// Common component interface for all coin implementations.
//
// A coin is a sub-protocol that lives inside a host Process: the host
// forwards matching messages to handle() and reads the binary output once
// done() holds. The BA protocol (Algorithm 4) owns one coin instance per
// round; standalone tests and benches wrap one instance in a CoinHost.
#pragma once

#include <functional>
#include <memory>

#include "sim/process.h"

namespace coincidence::coin {

class CoinProtocol {
 public:
  virtual ~CoinProtocol() = default;

  /// Begins the instance (sends the first-phase messages, if any).
  virtual void start(sim::Context& ctx) = 0;

  /// Offers a delivered message; returns true iff it belonged to this
  /// instance (matched the tag prefix) and was consumed.
  virtual bool handle(sim::Context& ctx, const sim::Message& msg) = 0;

  /// True once this process has returned from the coin.
  virtual bool done() const = 0;

  /// The coin value in {0, 1}; requires done().
  virtual int output() const = 0;
};

/// Decorator that fires a callback exactly once when the wrapped coin
/// completes — lets hosts attach completion logic to factory-built coins
/// whose constructors already fixed their own callbacks.
class CallbackCoin final : public CoinProtocol {
 public:
  using DoneFn = std::function<void(int)>;

  CallbackCoin(std::unique_ptr<CoinProtocol> inner, DoneFn on_done)
      : inner_(std::move(inner)), on_done_(std::move(on_done)) {}

  void start(sim::Context& ctx) override {
    inner_->start(ctx);
    maybe_fire();
  }
  bool handle(sim::Context& ctx, const sim::Message& msg) override {
    bool consumed = inner_->handle(ctx, msg);
    maybe_fire();
    return consumed;
  }
  bool done() const override { return inner_->done(); }
  int output() const override { return inner_->output(); }

 private:
  void maybe_fire() {
    if (!fired_ && inner_->done()) {
      fired_ = true;
      if (on_done_) on_done_(inner_->output());
    }
  }

  std::unique_ptr<CoinProtocol> inner_;
  DoneFn on_done_;
  bool fired_ = false;
};

/// A Process hosting exactly one coin instance — the standalone harness
/// used by coin tests and benches.
class CoinHost final : public sim::Process {
 public:
  explicit CoinHost(std::unique_ptr<CoinProtocol> coin)
      : coin_(std::move(coin)) {}

  void on_start(sim::Context& ctx) override { coin_->start(ctx); }
  void on_message(sim::Context& ctx, const sim::Message& msg) override {
    coin_->handle(ctx, msg);
  }

  const CoinProtocol& coin() const { return *coin_; }

 private:
  std::unique_ptr<CoinProtocol> coin_;
};

}  // namespace coincidence::coin
