// Deferred coin-share verification (the batch-verification plane).
//
// With inline verification every delivered share pays a full VRF proof
// check on arrival — the dominant CPU cost of a run under the DDH
// backend. Instead, coins push arriving shares into a per-instance
// PendingVerifyQueue and flush it through a shared BatchVerifier when
//   (a) the *candidate* count (verified + pending) reaches the phase
//       threshold — so threshold actions still fire in the same delivery
//       frame an inline verifier would have fired them in,
//   (b) the pending count hits the batch-size watermark, or
//   (c) the round ends (a retired coin simply drops its queue: its
//       output was already delivered).
// A flush folds all pending proofs into one DdhVrf::batch_verify random
// linear combination (near-k-fold amortization), consults the
// verified-share memo so duplicate/replayed tuples never re-verify, and
// can fan chunks out over a ThreadPool — chunk boundaries depend only on
// the batch size, so verdicts are bit-identical at any thread count.
//
// Applying flushed shares in arrival order with the same guards the
// inline path uses makes the deferred path's state evolution — sends,
// decides, outputs — bit-identical to inline verification; only the new
// Metrics verify counters can tell the two apart.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/parallel.h"
#include "common/shared_bytes.h"
#include "committee/sampler.h"
#include "crypto/sig_memo.h"
#include "crypto/signer.h"
#include "crypto/verify_memo.h"
#include "crypto/vrf.h"

namespace coincidence::coin {

/// Shared, per-Env verification service: memoized + batched VRF share
/// checks and batched committee-election checks. One instance is shared
/// by every process of a run (the simulator delivers one message at a
/// time, so unsynchronized shared state is safe — same contract as
/// CachingSampler), which lets the memo dedup identical tuples across
/// receivers: a share broadcast to n processes verifies once, not n
/// times.
class BatchVerifier {
 public:
  struct Config {
    std::shared_ptr<const crypto::Vrf> vrf;  // required
    /// Needed only by callers that defer election checks (whp coin).
    std::shared_ptr<const committee::Sampler> sampler;
    /// Needed only by callers that defer HMAC signature checks (the
    /// approver's ok-proof sweep).
    std::shared_ptr<const crypto::Signer> signer;
    /// Pending shares that force a queue flush.
    std::size_t watermark = 16;
    /// Entries per batch_verify call when splitting across the pool.
    std::size_t chunk = 16;
    /// Optional worker pool for flushes; null = serial (identical
    /// verdicts either way). The pool must not be shared with a caller
    /// already inside a for_each_index job (jobs are non-reentrant).
    ThreadPool* pool = nullptr;
  };

  struct FlushStats {
    std::size_t rejects = 0;    // entries that failed verification
    std::size_t memo_hits = 0;  // entries answered from the memo
  };

  explicit BatchVerifier(Config cfg);

  /// Verifies every entry (memo first, then one batched verification of
  /// the misses, chunked over the pool when configured). out[i] is the
  /// verdict for entries[i], exactly what Vrf::verify would return.
  FlushStats verify_shares(std::span<const crypto::VrfBatchEntry> entries,
                           std::vector<char>& out);

  /// Batched committee_val (see Sampler::committee_val_batch). Requires
  /// a sampler in the config.
  void verify_elections(std::span<const committee::Sampler::ValCheck> checks,
                        std::vector<char>& out);

  /// Verifies every signature entry: memo first, then ONE
  /// Signer::batch_verify over the distinct misses (identical triples
  /// within the flush verify once and fan the verdict out), memo filled
  /// in entry order. out[i] is exactly what Signer::verify would return
  /// for entries[i]. Requires a signer in the config.
  FlushStats verify_signatures(std::span<const crypto::SigBatchEntry> entries,
                               std::vector<char>& out);

  /// One memoized signature check — the echo fast path: a broadcast
  /// ⟨echo,v⟩ reaches n receivers who all share this verifier, so the
  /// same (signer, message, sig) triple verifies once run-wide. Verdict
  /// identical to Signer::verify. `memo_hit` (optional) reports whether
  /// the memo answered.
  bool check_signature(const crypto::SigBatchEntry& entry,
                       bool* memo_hit = nullptr);

  std::size_t watermark() const { return cfg_.watermark; }
  const crypto::VerifyMemo& memo() const { return memo_; }
  const crypto::SigMemo& sig_memo() const { return sig_memo_; }

  /// Cumulative counters across all flushes (all processes of the run).
  std::uint64_t batches() const { return batches_; }
  std::uint64_t shares() const { return shares_; }
  std::uint64_t rejects() const { return rejects_; }

  /// Signature-path counters (verify_signatures + check_signature).
  std::uint64_t sig_batches() const { return sig_batches_; }
  std::uint64_t sig_checks() const { return sig_checks_; }
  std::uint64_t sig_rejects() const { return sig_rejects_; }

  /// Queue-lifecycle ledger, maintained by the coins that defer into this
  /// verifier: every share enqueued into a PendingVerifyQueue is either
  /// flushed through verify_shares or discarded unverified when its coin
  /// retires (round end, crash, or teardown). The conservation law
  ///   enqueued() == flushed() + discarded()
  /// must hold once every queue is drained or dropped — crash-recovery
  /// must not lose or double-count a share (satellite check in
  /// tests/coin/test_verify_recovery.cpp).
  void note_enqueued() { ++enqueued_; }
  void note_flushed(std::uint64_t k) { flushed_ += k; }
  void note_discarded(std::uint64_t k) { discarded_ += k; }
  std::uint64_t enqueued() const { return enqueued_; }
  std::uint64_t flushed() const { return flushed_; }
  std::uint64_t discarded() const { return discarded_; }

 private:
  Config cfg_;
  crypto::VerifyMemo memo_;
  crypto::SigMemo sig_memo_;
  std::uint64_t batches_ = 0;
  std::uint64_t shares_ = 0;
  std::uint64_t rejects_ = 0;
  std::uint64_t sig_batches_ = 0;
  std::uint64_t sig_checks_ = 0;
  std::uint64_t sig_rejects_ = 0;
  std::uint64_t enqueued_ = 0;
  std::uint64_t flushed_ = 0;
  std::uint64_t discarded_ = 0;
};

/// Arrival-ordered buffer of not-yet-verified coin shares. The payload
/// buffer is retained by refcount (SharedBytes), so the views stay valid
/// after the delivery frame returns — nothing is copied.
class PendingVerifyQueue {
 public:
  struct Share {
    SharedBytes buf;  // keeps the views below alive
    crypto::ProcessId sender = 0;
    crypto::ProcessId origin = 0;
    bool is_first = false;
    BytesView value;
    BytesView origin_proof;
    BytesView election_proof;  // empty for SharedCoin shares
  };

  void enqueue(Share s) {
    (s.is_first ? pending_first_ : pending_second_) += 1;
    shares_.push_back(std::move(s));
  }

  bool empty() const { return shares_.empty(); }
  std::size_t pending() const { return shares_.size(); }
  std::size_t pending_first() const { return pending_first_; }
  std::size_t pending_second() const { return pending_second_; }

  /// Drains the queue, returning the shares in arrival order.
  std::vector<Share> take() {
    pending_first_ = pending_second_ = 0;
    return std::move(shares_);
  }

 private:
  std::vector<Share> shares_;
  std::size_t pending_first_ = 0;
  std::size_t pending_second_ = 0;
};

}  // namespace coincidence::coin
