#include "coin/verify_queue.h"

#include <algorithm>

#include "common/errors.h"

namespace coincidence::coin {

BatchVerifier::BatchVerifier(Config cfg) : cfg_(std::move(cfg)) {
  COIN_REQUIRE(cfg_.vrf != nullptr, "BatchVerifier: vrf is required");
  COIN_REQUIRE(cfg_.watermark > 0 && cfg_.chunk > 0,
               "BatchVerifier: watermark and chunk must be positive");
}

BatchVerifier::FlushStats BatchVerifier::verify_shares(
    std::span<const crypto::VrfBatchEntry> entries, std::vector<char>& out) {
  out.assign(entries.size(), 0);
  FlushStats stats;
  if (entries.empty()) return stats;
  ++batches_;
  shares_ += entries.size();

  // Memo pass (serial): duplicate and replayed tuples — common under
  // lossy links, and guaranteed across the n receivers of one broadcast
  // — resolve without touching the crypto.
  std::vector<std::size_t> miss_of;
  miss_of.reserve(entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (std::optional<bool> hit = memo_.lookup(entries[i])) {
      out[i] = *hit ? 1 : 0;
      ++stats.memo_hits;
    } else {
      miss_of.push_back(i);
    }
  }

  if (!miss_of.empty()) {
    std::vector<crypto::VrfBatchEntry> misses;
    misses.reserve(miss_of.size());
    for (std::size_t i : miss_of) misses.push_back(entries[i]);

    // Fixed-size chunks: boundaries depend only on the miss count, so
    // each chunk's batch (and its DRBG combiner scalars, which are
    // content-addressed per chunk) is identical whether the chunks run
    // serially or on the pool.
    const std::size_t chunks = (misses.size() + cfg_.chunk - 1) / cfg_.chunk;
    std::vector<char> verdicts(misses.size(), 0);
    auto run_chunk = [&](std::size_t c) {
      const std::size_t lo = c * cfg_.chunk;
      const std::size_t hi = std::min(lo + cfg_.chunk, misses.size());
      std::vector<char> chunk_out;
      cfg_.vrf->batch_verify(
          std::span<const crypto::VrfBatchEntry>(misses.data() + lo, hi - lo),
          chunk_out);
      std::copy(chunk_out.begin(), chunk_out.end(), verdicts.begin() + lo);
    };
    if (cfg_.pool != nullptr && chunks > 1) {
      cfg_.pool->for_each_index(chunks, run_chunk);
    } else {
      for (std::size_t c = 0; c < chunks; ++c) run_chunk(c);
    }

    // Fill memo + results serially, in order.
    for (std::size_t j = 0; j < misses.size(); ++j) {
      out[miss_of[j]] = verdicts[j];
      memo_.store(misses[j], verdicts[j] != 0);
    }
  }

  for (char v : out)
    if (!v) ++stats.rejects;
  rejects_ += stats.rejects;
  return stats;
}

void BatchVerifier::verify_elections(
    std::span<const committee::Sampler::ValCheck> checks,
    std::vector<char>& out) {
  COIN_REQUIRE(cfg_.sampler != nullptr,
               "BatchVerifier: election checks need a sampler");
  cfg_.sampler->committee_val_batch(checks, out);
}

}  // namespace coincidence::coin
