#include "coin/verify_queue.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>

#include "common/errors.h"

namespace coincidence::coin {

BatchVerifier::BatchVerifier(Config cfg) : cfg_(std::move(cfg)) {
  COIN_REQUIRE(cfg_.vrf != nullptr, "BatchVerifier: vrf is required");
  COIN_REQUIRE(cfg_.watermark > 0 && cfg_.chunk > 0,
               "BatchVerifier: watermark and chunk must be positive");
}

BatchVerifier::FlushStats BatchVerifier::verify_shares(
    std::span<const crypto::VrfBatchEntry> entries, std::vector<char>& out) {
  out.assign(entries.size(), 0);
  FlushStats stats;
  if (entries.empty()) return stats;
  ++batches_;
  shares_ += entries.size();

  // Memo pass (serial): duplicate and replayed tuples — common under
  // lossy links, and guaranteed across the n receivers of one broadcast
  // — resolve without touching the crypto.
  std::vector<std::size_t> miss_of;
  miss_of.reserve(entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (std::optional<bool> hit = memo_.lookup(entries[i])) {
      out[i] = *hit ? 1 : 0;
      ++stats.memo_hits;
    } else {
      miss_of.push_back(i);
    }
  }

  if (!miss_of.empty()) {
    std::vector<crypto::VrfBatchEntry> misses;
    misses.reserve(miss_of.size());
    for (std::size_t i : miss_of) misses.push_back(entries[i]);

    // Fixed-size chunks: boundaries depend only on the miss count, so
    // each chunk's batch (and its DRBG combiner scalars, which are
    // content-addressed per chunk) is identical whether the chunks run
    // serially or on the pool.
    const std::size_t chunks = (misses.size() + cfg_.chunk - 1) / cfg_.chunk;
    std::vector<char> verdicts(misses.size(), 0);
    auto run_chunk = [&](std::size_t c) {
      const std::size_t lo = c * cfg_.chunk;
      const std::size_t hi = std::min(lo + cfg_.chunk, misses.size());
      std::vector<char> chunk_out;
      cfg_.vrf->batch_verify(
          std::span<const crypto::VrfBatchEntry>(misses.data() + lo, hi - lo),
          chunk_out);
      std::copy(chunk_out.begin(), chunk_out.end(), verdicts.begin() + lo);
    };
    if (cfg_.pool != nullptr && chunks > 1) {
      cfg_.pool->for_each_index(chunks, run_chunk);
    } else {
      for (std::size_t c = 0; c < chunks; ++c) run_chunk(c);
    }

    // Fill memo + results serially, in order.
    for (std::size_t j = 0; j < misses.size(); ++j) {
      out[miss_of[j]] = verdicts[j];
      memo_.store(misses[j], verdicts[j] != 0);
    }
  }

  for (char v : out)
    if (!v) ++stats.rejects;
  rejects_ += stats.rejects;
  return stats;
}

void BatchVerifier::verify_elections(
    std::span<const committee::Sampler::ValCheck> checks,
    std::vector<char>& out) {
  COIN_REQUIRE(cfg_.sampler != nullptr,
               "BatchVerifier: election checks need a sampler");
  cfg_.sampler->committee_val_batch(checks, out);
}

namespace {

bool same_entry(const crypto::SigBatchEntry& a,
                const crypto::SigBatchEntry& b) {
  return a.signer == b.signer && a.message.size() == b.message.size() &&
         a.sig.size() == b.sig.size() &&
         std::memcmp(a.message.data(), b.message.data(),
                     a.message.size()) == 0 &&
         std::memcmp(a.sig.data(), b.sig.data(), a.sig.size()) == 0;
}

}  // namespace

BatchVerifier::FlushStats BatchVerifier::verify_signatures(
    std::span<const crypto::SigBatchEntry> entries, std::vector<char>& out) {
  COIN_REQUIRE(cfg_.signer != nullptr,
               "BatchVerifier: signature checks need a signer");
  out.assign(entries.size(), 0);
  FlushStats stats;
  if (entries.empty()) return stats;
  ++sig_batches_;
  sig_checks_ += entries.size();

  // Memo pass (cross-flush dedup), then an intra-flush dedup of the
  // misses: the W echo-proof entries repeat verbatim across every ok
  // message of one flush, and memo lookups all precede stores, so
  // without this collapse each repeat would reach the HMAC.
  std::vector<std::size_t> miss_of;          // entry index of each miss
  std::vector<std::size_t> unique_of_miss;   // miss -> unique index
  std::vector<crypto::SigBatchEntry> unique;
  std::unordered_multimap<std::uint64_t, std::size_t> unique_by_fp;
  miss_of.reserve(entries.size());
  unique_of_miss.reserve(entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (std::optional<bool> hit = sig_memo_.lookup(entries[i])) {
      out[i] = *hit ? 1 : 0;
      ++stats.memo_hits;
      continue;
    }
    const std::uint64_t fp = crypto::SigMemo::fingerprint(entries[i]);
    std::size_t u = unique.size();
    auto [lo, hi] = unique_by_fp.equal_range(fp);
    for (auto it = lo; it != hi; ++it)
      if (same_entry(unique[it->second], entries[i])) {
        u = it->second;
        break;
      }
    if (u == unique.size()) {
      unique.push_back(entries[i]);
      unique_by_fp.emplace(fp, u);
    }
    miss_of.push_back(i);
    unique_of_miss.push_back(u);
  }

  if (!unique.empty()) {
    std::vector<char> verdicts;
    cfg_.signer->batch_verify(unique, verdicts);
    for (std::size_t j = 0; j < miss_of.size(); ++j)
      out[miss_of[j]] = verdicts[unique_of_miss[j]];
    for (std::size_t u = 0; u < unique.size(); ++u)
      sig_memo_.store(unique[u], verdicts[u] != 0);
  }

  for (char v : out)
    if (!v) ++stats.rejects;
  sig_rejects_ += stats.rejects;
  return stats;
}

bool BatchVerifier::check_signature(const crypto::SigBatchEntry& entry,
                                    bool* memo_hit) {
  COIN_REQUIRE(cfg_.signer != nullptr,
               "BatchVerifier: signature checks need a signer");
  ++sig_checks_;
  if (std::optional<bool> hit = sig_memo_.lookup(entry)) {
    if (memo_hit) *memo_hit = true;
    if (!*hit) ++sig_rejects_;
    return *hit;
  }
  if (memo_hit) *memo_hit = false;
  const bool ok = cfg_.signer->verify(entry.signer, entry.message, entry.sig);
  sig_memo_.store(entry, ok);
  if (!ok) ++sig_rejects_;
  return ok;
}

}  // namespace coincidence::coin
