#include "coin/shared_coin.h"

#include "common/errors.h"
#include "common/ser.h"

namespace coincidence::coin {

namespace {
// Message word accounting (§2): a VRF output is a value (1 word) plus a
// proof (1 word); the message type tag is a constant number of bits.
constexpr std::size_t kCoinMessageWords = 2;
}  // namespace

// Payload layout shared by <first> and <second> messages. The value blob
// comes first (the ablation adversary in sim/adversary.cpp relies on
// being able to read it in illegal content-aware mode).
struct SharedCoin::Wire {
  Bytes value;
  crypto::ProcessId origin = 0;
  Bytes origin_proof;

  Bytes encode() const {
    Writer w;
    w.blob(value).u32(origin).blob(origin_proof);
    return w.take();
  }

  static bool decode(BytesView payload, Wire& out) {
    try {
      Reader r(payload);
      out.value = r.blob();
      out.origin = r.u32();
      out.origin_proof = r.blob();
      r.done();
      return true;
    } catch (const CodecError&) {
      return false;
    }
  }
};

SharedCoin::SharedCoin(Config cfg, DoneFn on_done)
    : cfg_(std::move(cfg)), on_done_(std::move(on_done)) {
  COIN_REQUIRE(cfg_.n > 0, "SharedCoin: n must be positive");
  COIN_REQUIRE(cfg_.n > 2 * cfg_.f, "SharedCoin: need n - f > f");
  COIN_REQUIRE(cfg_.vrf != nullptr && cfg_.registry != nullptr,
               "SharedCoin: missing crypto environment");
}

Bytes SharedCoin::vrf_input() const {
  Writer w;
  w.str("shared-coin").u64(cfg_.round);
  return w.take();
}

void SharedCoin::fold_min(const Bytes& value, crypto::ProcessId origin,
                          const Bytes& origin_proof) {
  // Lexicographic comparison of the fixed-width big-endian values is the
  // numeric order; origin id breaks the (cryptographically negligible) tie.
  if (min_value_.empty() || value < min_value_ ||
      (value == min_value_ && origin < min_origin_)) {
    min_value_ = value;
    min_origin_ = origin;
    min_origin_proof_ = origin_proof;
  }
}

void SharedCoin::start(sim::Context& ctx) {
  crypto::VrfOutput out =
      cfg_.vrf->eval(cfg_.registry->sk_of(ctx.self()), vrf_input());
  Wire wire{out.value, ctx.self(), out.proof};
  ctx.broadcast(cfg_.tag + "/first", wire.encode(), kCoinMessageWords);
}

bool SharedCoin::handle(sim::Context& ctx, const sim::Message& msg) {
  bool is_first = msg.tag == cfg_.tag + "/first";
  bool is_second = msg.tag == cfg_.tag + "/second";
  if (!is_first && !is_second) return false;

  Wire wire;
  if (!Wire::decode(msg.payload, wire)) return true;  // malformed: ignore
  if (is_first && wire.origin != msg.from) return true;  // firsts are own values
  if (wire.origin >= cfg_.n) return true;
  crypto::VrfOutput out{wire.value, wire.origin_proof};
  if (!cfg_.vrf->verify(cfg_.registry->pk_of(wire.origin), vrf_input(), out))
    return true;  // forged value/proof: ignore (paper: "would expose it")

  if (is_first) {
    if (done_ || !first_set_.insert(msg.from).second) return true;
    // Late firsts (after <second> went out) still fold into v_i, exactly
    // as in the pseudo-code: only the *send* is once-only.
    fold_min(wire.value, wire.origin, wire.origin_proof);
    if (!sent_second_ && first_set_.size() == cfg_.n - cfg_.f) {
      sent_second_ = true;
      first_snapshot_ = first_set_;
      Wire relay{min_value_, min_origin_, min_origin_proof_};
      ctx.broadcast(cfg_.tag + "/second", relay.encode(), kCoinMessageWords);
    }
    return true;
  }

  // <second>
  if (done_ || !second_set_.insert(msg.from).second) return true;
  fold_min(wire.value, wire.origin, wire.origin_proof);
  if (second_set_.size() == cfg_.n - cfg_.f) {
    done_ = true;
    output_ = min_value_.back() & 1;
    if (on_done_) on_done_(output_);
  }
  return true;
}

int SharedCoin::output() const {
  COIN_REQUIRE(done_, "SharedCoin: output read before completion");
  return output_;
}

}  // namespace coincidence::coin
