#include "coin/shared_coin.h"

#include <algorithm>

#include "common/errors.h"
#include "common/ser.h"

namespace coincidence::coin {

namespace {
// Message word accounting (§2): a VRF output is a value (1 word) plus a
// proof (1 word); the message type tag is a constant number of bits.
constexpr std::size_t kCoinMessageWords = 2;
}  // namespace

// Payload layout shared by <first> and <second> messages. The value blob
// comes first (the ablation adversary in sim/adversary.cpp relies on
// being able to read it in illegal content-aware mode).
struct SharedCoin::Wire {
  BytesView value;
  crypto::ProcessId origin = 0;
  BytesView origin_proof;

  Bytes encode() const {
    Writer w;
    w.blob(value).u32(origin).blob(origin_proof);
    return w.take();
  }

  // Fields view into `payload`; callers verify and fold before the
  // message buffer goes away.
  static bool decode(BytesView payload, Wire& out) {
    try {
      Reader r(payload);
      out.value = r.blob_view();
      out.origin = r.u32();
      out.origin_proof = r.blob_view();
      r.done();
      return true;
    } catch (const CodecError&) {
      return false;
    }
  }
};

SharedCoin::SharedCoin(Config cfg, DoneFn on_done)
    : cfg_(std::move(cfg)),
      on_done_(std::move(on_done)),
      tag_first_(cfg_.tag + "/first"),
      tag_second_(cfg_.tag + "/second") {
  COIN_REQUIRE(cfg_.n > 0, "SharedCoin: n must be positive");
  COIN_REQUIRE(cfg_.n > 2 * cfg_.f, "SharedCoin: need n - f > f");
  COIN_REQUIRE(cfg_.vrf != nullptr && cfg_.registry != nullptr,
               "SharedCoin: missing crypto environment");
  Writer w;
  w.str("shared-coin").u64(cfg_.round);
  vrf_input_ = w.take();
}

SharedCoin::~SharedCoin() {
  if (cfg_.batcher && queue_.pending() > 0)
    cfg_.batcher->note_discarded(queue_.pending());
}

void SharedCoin::fold_min(BytesView value, crypto::ProcessId origin,
                          BytesView origin_proof) {
  // Lexicographic comparison of the fixed-width big-endian values is the
  // numeric order; origin id breaks the (cryptographically negligible) tie.
  const bool less = std::lexicographical_compare(
      value.begin(), value.end(), min_value_.begin(), min_value_.end());
  const bool equal = value.size() == min_value_.size() &&
                     std::equal(value.begin(), value.end(),
                                min_value_.begin());
  if (min_value_.empty() || less || (equal && origin < min_origin_)) {
    min_value_.assign(value.begin(), value.end());
    min_origin_ = origin;
    min_origin_proof_.assign(origin_proof.begin(), origin_proof.end());
  }
}

void SharedCoin::start(sim::Context& ctx) {
  crypto::VrfOutput out =
      cfg_.vrf->eval(cfg_.registry->sk_of(ctx.self()), vrf_input_);
  Wire wire{out.value, ctx.self(), out.proof};
  ctx.broadcast(tag_first_, wire.encode(), kCoinMessageWords);
}

void SharedCoin::apply_share(sim::Context& ctx, bool is_first,
                             crypto::ProcessId sender, BytesView value,
                             crypto::ProcessId origin,
                             BytesView origin_proof) {
  if (done_) return;  // post-decide shares are state no-ops
  if (is_first) {
    if (!first_set_.insert(sender).second) return;
    // Late firsts (after <second> went out) still fold into v_i, exactly
    // as in the pseudo-code: only the *send* is once-only.
    fold_min(value, origin, origin_proof);
    if (!sent_second_ && first_set_.size() == cfg_.n - cfg_.f) {
      sent_second_ = true;
      first_snapshot_ = first_set_;
      Wire relay{min_value_, min_origin_, min_origin_proof_};
      ctx.broadcast(tag_second_, relay.encode(), kCoinMessageWords);
    }
    return;
  }

  // <second>
  if (!second_set_.insert(sender).second) return;
  fold_min(value, origin, origin_proof);
  if (second_set_.size() == cfg_.n - cfg_.f) {
    done_ = true;
    output_ = min_value_.back() & 1;
    ctx.note_decide(cfg_.tag, output_, cfg_.round);
    if (on_done_) on_done_(output_);
  }
}

bool SharedCoin::should_flush() const {
  // Candidate threshold: counting every pending (not-yet-verified) share
  // as a potential success, could the phase cross its threshold? If so
  // flush NOW — when the pending shares do verify, the threshold action
  // fires in this very delivery frame, exactly where the inline verifier
  // would have fired it.
  if (!sent_second_ &&
      first_set_.size() + queue_.pending_first() >= cfg_.n - cfg_.f)
    return true;
  if (!done_ && second_set_.size() + queue_.pending_second() >= cfg_.n - cfg_.f)
    return true;
  return queue_.pending() >= cfg_.batcher->watermark();
}

void SharedCoin::flush_queue(sim::Context& ctx) {
  std::vector<PendingVerifyQueue::Share> shares = queue_.take();
  cfg_.batcher->note_flushed(shares.size());
  std::vector<crypto::VrfBatchEntry> entries;
  entries.reserve(shares.size());
  for (const PendingVerifyQueue::Share& s : shares)
    entries.push_back(crypto::VrfBatchEntry{cfg_.registry->pk_of(s.origin),
                                            vrf_input_, s.value,
                                            s.origin_proof});
  std::vector<char> verdicts;
  BatchVerifier::FlushStats stats =
      cfg_.batcher->verify_shares(entries, verdicts);
  ctx.note_verify_batch(shares.size(), stats.rejects, stats.memo_hits);
  // Arrival order + the done_/dedup guards in apply_share reproduce the
  // inline state evolution exactly; rejected shares are simply skipped
  // (inline: "forged value/proof: ignore").
  for (std::size_t i = 0; i < shares.size(); ++i) {
    if (!verdicts[i]) continue;
    const PendingVerifyQueue::Share& s = shares[i];
    apply_share(ctx, s.is_first, s.sender, s.value, s.origin, s.origin_proof);
  }
}

bool SharedCoin::handle(sim::Context& ctx, const sim::Message& msg) {
  const bool is_first = msg.tag == tag_first_;
  const bool is_second = msg.tag == tag_second_;
  if (!is_first && !is_second) return false;

  // Once done, every path below returns true without touching state —
  // skip the decode and VRF verification outright.
  if (done_) return true;

  Wire wire;
  if (!Wire::decode(msg.payload, wire)) return true;  // malformed: ignore
  if (is_first && wire.origin != msg.from) return true;  // firsts are own values
  if (wire.origin >= cfg_.n) return true;

  if (cfg_.batcher) {
    // Deferred path. A sender already counted for this phase can be
    // dropped unqueued — inline would verify then hit the dedup set, with
    // no state change. (A sender with only a PENDING share must still
    // enqueue: its queued share might fail verification, and inline
    // would have accepted this one.)
    if (is_first ? first_set_.count(msg.from) != 0
                 : second_set_.count(msg.from) != 0)
      return true;
    PendingVerifyQueue::Share share;
    share.buf = msg.payload;  // refcount bump keeps the views alive
    share.sender = msg.from;
    share.origin = wire.origin;
    share.is_first = is_first;
    share.value = wire.value;
    share.origin_proof = wire.origin_proof;
    queue_.enqueue(std::move(share));
    cfg_.batcher->note_enqueued();
    if (should_flush()) flush_queue(ctx);
    return true;
  }

  if (!cfg_.vrf->verify(cfg_.registry->pk_of(wire.origin), vrf_input_,
                        wire.value, wire.origin_proof))
    return true;  // forged value/proof: ignore (paper: "would expose it")
  apply_share(ctx, is_first, msg.from, wire.value, wire.origin,
              wire.origin_proof);
  return true;
}

int SharedCoin::output() const {
  COIN_REQUIRE(done_, "SharedCoin: output read before completion");
  return output_;
}

}  // namespace coincidence::coin
