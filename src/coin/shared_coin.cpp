#include "coin/shared_coin.h"

#include <algorithm>

#include "common/errors.h"
#include "common/ser.h"

namespace coincidence::coin {

namespace {
// Message word accounting (§2): a VRF output is a value (1 word) plus a
// proof (1 word); the message type tag is a constant number of bits.
constexpr std::size_t kCoinMessageWords = 2;
}  // namespace

// Payload layout shared by <first> and <second> messages. The value blob
// comes first (the ablation adversary in sim/adversary.cpp relies on
// being able to read it in illegal content-aware mode).
struct SharedCoin::Wire {
  BytesView value;
  crypto::ProcessId origin = 0;
  BytesView origin_proof;

  Bytes encode() const {
    Writer w;
    w.blob(value).u32(origin).blob(origin_proof);
    return w.take();
  }

  // Fields view into `payload`; callers verify and fold before the
  // message buffer goes away.
  static bool decode(BytesView payload, Wire& out) {
    try {
      Reader r(payload);
      out.value = r.blob_view();
      out.origin = r.u32();
      out.origin_proof = r.blob_view();
      r.done();
      return true;
    } catch (const CodecError&) {
      return false;
    }
  }
};

SharedCoin::SharedCoin(Config cfg, DoneFn on_done)
    : cfg_(std::move(cfg)),
      on_done_(std::move(on_done)),
      tag_first_(cfg_.tag + "/first"),
      tag_second_(cfg_.tag + "/second") {
  COIN_REQUIRE(cfg_.n > 0, "SharedCoin: n must be positive");
  COIN_REQUIRE(cfg_.n > 2 * cfg_.f, "SharedCoin: need n - f > f");
  COIN_REQUIRE(cfg_.vrf != nullptr && cfg_.registry != nullptr,
               "SharedCoin: missing crypto environment");
  Writer w;
  w.str("shared-coin").u64(cfg_.round);
  vrf_input_ = w.take();
}

void SharedCoin::fold_min(BytesView value, crypto::ProcessId origin,
                          BytesView origin_proof) {
  // Lexicographic comparison of the fixed-width big-endian values is the
  // numeric order; origin id breaks the (cryptographically negligible) tie.
  const bool less = std::lexicographical_compare(
      value.begin(), value.end(), min_value_.begin(), min_value_.end());
  const bool equal = value.size() == min_value_.size() &&
                     std::equal(value.begin(), value.end(),
                                min_value_.begin());
  if (min_value_.empty() || less || (equal && origin < min_origin_)) {
    min_value_.assign(value.begin(), value.end());
    min_origin_ = origin;
    min_origin_proof_.assign(origin_proof.begin(), origin_proof.end());
  }
}

void SharedCoin::start(sim::Context& ctx) {
  crypto::VrfOutput out =
      cfg_.vrf->eval(cfg_.registry->sk_of(ctx.self()), vrf_input_);
  Wire wire{out.value, ctx.self(), out.proof};
  ctx.broadcast(tag_first_, wire.encode(), kCoinMessageWords);
}

bool SharedCoin::handle(sim::Context& ctx, const sim::Message& msg) {
  const bool is_first = msg.tag == tag_first_;
  const bool is_second = msg.tag == tag_second_;
  if (!is_first && !is_second) return false;

  // Once done, every path below returns true without touching state —
  // skip the decode and VRF verification outright.
  if (done_) return true;

  Wire wire;
  if (!Wire::decode(msg.payload, wire)) return true;  // malformed: ignore
  if (is_first && wire.origin != msg.from) return true;  // firsts are own values
  if (wire.origin >= cfg_.n) return true;
  if (!cfg_.vrf->verify(cfg_.registry->pk_of(wire.origin), vrf_input_,
                        wire.value, wire.origin_proof))
    return true;  // forged value/proof: ignore (paper: "would expose it")

  if (is_first) {
    if (!first_set_.insert(msg.from).second) return true;
    // Late firsts (after <second> went out) still fold into v_i, exactly
    // as in the pseudo-code: only the *send* is once-only.
    fold_min(wire.value, wire.origin, wire.origin_proof);
    if (!sent_second_ && first_set_.size() == cfg_.n - cfg_.f) {
      sent_second_ = true;
      first_snapshot_ = first_set_;
      Wire relay{min_value_, min_origin_, min_origin_proof_};
      ctx.broadcast(tag_second_, relay.encode(), kCoinMessageWords);
    }
    return true;
  }

  // <second>
  if (!second_set_.insert(msg.from).second) return true;
  fold_min(wire.value, wire.origin, wire.origin_proof);
  if (second_set_.size() == cfg_.n - cfg_.f) {
    done_ = true;
    output_ = min_value_.back() & 1;
    ctx.note_decide(cfg_.tag, output_, cfg_.round);
    if (on_done_) on_done_(output_);
  }
  return true;
}

int SharedCoin::output() const {
  COIN_REQUIRE(done_, "SharedCoin: output read before completion");
  return output_;
}

}  // namespace coincidence::coin
