// Multiplexes several agreement instances inside one Process.
//
// §3 (comparison with Blum et al.): "setup has to occur once and may be
// used for any number of BA instances". InstanceMux is that statement
// made executable: one process participates in many concurrently-running
// BA instances — one per log slot, say — sharing the single PKI/VRF
// setup, with messages routed by instance tag prefix.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "ba/ba_process.h"
#include "sim/flat_map64.h"

namespace coincidence::ba {

class InstanceMux final : public sim::Process {
 public:
  /// Adds an instance reachable under `prefix` (its Config.tag must equal
  /// `prefix`, so its messages all start with "<prefix>/"). Call before
  /// the simulation starts.
  void add_instance(std::string prefix, std::unique_ptr<BaProcess> instance);

  void on_start(sim::Context& ctx) override;
  void on_message(sim::Context& ctx, const sim::Message& msg) override;
  /// Wakeups carry no payload, so every instance is offered the tick;
  /// instances that scheduled nothing treat it as a no-op.
  void on_wakeup(sim::Context& ctx) override;

  std::size_t instance_count() const { return instances_.size(); }
  /// The instance registered under `prefix`; throws if absent.
  BaProcess& instance(const std::string& prefix);
  const BaProcess& instance(const std::string& prefix) const;

  bool all_decided() const;

 private:
  // less<> enables find(string_view): prefix routing never copies.
  std::map<std::string, std::unique_ptr<BaProcess>, std::less<>> instances_;
  // TagId -> instance, learned on first sight of each tag. Every later
  // message with the same tag routes by one hash lookup, no parsing.
  // nullptr entries memoize unknown prefixes (Byzantine-invented tags).
  mutable sim::FlatMap64<BaProcess*> route_cache_;
};

}  // namespace coincidence::ba
