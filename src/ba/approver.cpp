#include "ba/approver.h"

#include <algorithm>

#include "common/errors.h"
#include "common/ser.h"

namespace coincidence::ba {

namespace {
// Word accounting (§6.1): init = value + election proof; echo adds a
// signature. The ok proof carries W (signature + election proof) pairs —
// the O(λ) words that make the approver O(n log² n) overall.
constexpr std::size_t kInitWords = 2;
constexpr std::size_t kEchoWords = 3;
std::size_t ok_words(std::size_t proof_entries) {
  return 2 + 2 * proof_entries;
}

Bytes make_echo_sign_bytes(const std::string& tag, Value v) {
  Writer w;
  w.str(tag).str("echo").u8(v);
  return w.take();
}
}  // namespace

Approver::Approver(Config cfg, Value input, DoneFn on_done)
    : cfg_(std::move(cfg)),
      input_(input),
      on_done_(std::move(on_done)),
      tag_init_(cfg_.tag + "/init"),
      tag_echo_(cfg_.tag + "/echo"),
      tag_ok_(cfg_.tag + "/ok"),
      init_seed_(cfg_.tag + "/init"),
      ok_seed_(cfg_.tag + "/ok"),
      echo_seeds_{cfg_.tag + "/echo/" + value_name(kZero),
                  cfg_.tag + "/echo/" + value_name(kOne),
                  cfg_.tag + "/echo/" + value_name(kBot)},
      echo_sign_bytes_{make_echo_sign_bytes(cfg_.tag, kZero),
                       make_echo_sign_bytes(cfg_.tag, kOne),
                       make_echo_sign_bytes(cfg_.tag, kBot)} {
  COIN_REQUIRE(is_valid_value(input), "Approver: input must be 0, 1 or bot");
  COIN_REQUIRE(cfg_.registry && cfg_.sampler && cfg_.signer,
               "Approver: missing crypto environment");
  COIN_REQUIRE(cfg_.params.W > cfg_.params.B,
               "Approver: W must exceed B (S5/S6 need the gap)");
  // Size every sender bitmap to n and every per-value echo store to W up
  // front — the steady state allocates nothing per message.
  for (Value v : {kZero, kOne, kBot}) {
    init_seen_[v].resize(cfg_.params.n, false);
    echo_seen_[v].resize(cfg_.params.n, false);
    echoes_[v].reserve(cfg_.params.W);
  }
  ok_seen_.resize(cfg_.params.n, false);
  parse_scratch_.reserve(cfg_.params.W);
  distinct_scratch_.reserve(cfg_.params.W);
}

Approver::~Approver() {
  // Round end / teardown: a retired approver drops its pending oks
  // unverified — its host already moved on. The ledger (enqueued ==
  // flushed + discarded) must still balance.
  if (cfg_.batcher && !pending_oks_.empty())
    cfg_.batcher->note_discarded(pending_oks_.size());
}

void Approver::start(sim::Context& ctx) {
  auto init = cfg_.sampler->sample(ctx.self(), init_seed());
  auto ok = cfg_.sampler->sample(ctx.self(), ok_seed());
  in_init_ = init.sampled;
  in_ok_ = ok.sampled;
  init_election_proof_ = std::move(init.proof);
  ok_election_proof_ = std::move(ok.proof);

  if (in_init_) {
    Writer w;
    w.u8(input_).blob(init_election_proof_);
    ctx.broadcast(tag_init_, w.take(), kInitWords);
  }
}

bool Approver::handle(sim::Context& ctx, const sim::Message& msg) {
  if (msg.tag == tag_init_) return handle_init(ctx, msg);
  if (msg.tag == tag_echo_) return handle_echo(ctx, msg);
  if (msg.tag == tag_ok_) return handle_ok(ctx, msg);
  return false;
}

bool Approver::mark_seen(std::vector<bool>& seen, crypto::ProcessId from) {
  // Equivalent of set::insert().second; senders outside [0, n) (possible
  // only in harnesses that size params.n below the simulation) grow the
  // bitmap rather than being dropped, matching the old std::set.
  if (from >= seen.size()) seen.resize(from + 1, false);
  if (seen[from]) return false;
  seen[from] = true;
  return true;
}

bool Approver::handle_init(sim::Context& ctx, const sim::Message& msg) {
  Value v;
  BytesView election;
  try {
    Reader r(msg.payload);
    v = r.u8();
    election = r.blob_view();
    r.done();
  } catch (const CodecError&) {
    return true;
  }
  if (!is_valid_value(v)) return true;
  if (!cfg_.sampler->committee_val(init_seed(), msg.from, election))
    return true;
  if (!mark_seen(init_seen_[v], msg.from)) return true;
  ++init_count_[v];
  if (init_count_[v] >= cfg_.params.B + 1) maybe_echo(ctx, v);
  return true;
}

void Approver::maybe_echo(sim::Context& ctx, Value v) {
  if (echoed_[v]) return;
  echoed_[v] = true;  // caches the negative so we don't re-sample
  auto election = cfg_.sampler->sample(ctx.self(), echo_seed(v));
  if (!election.sampled) return;
  Bytes sig = cfg_.signer->sign(ctx.self(), echo_sign_bytes(v));
  Writer w;
  w.u8(v).blob(election.proof).blob(sig);
  ctx.broadcast(tag_echo_, w.take(), kEchoWords);
}

bool Approver::handle_echo(sim::Context& ctx, const sim::Message& msg) {
  Value v;
  BytesView election, sig;
  try {
    Reader r(msg.payload);
    v = r.u8();
    election = r.blob_view();
    sig = r.blob_view();
    r.done();
  } catch (const CodecError&) {
    return true;
  }
  if (!is_valid_value(v)) return true;
  if (!cfg_.sampler->committee_val(echo_seed(v), msg.from, election))
    return true;
  // The signature check answers from the run-wide SigMemo when a batcher
  // is shared: a broadcast ⟨echo,v⟩ reaches n receivers but its HMAC is
  // recomputed once. Verdicts are identical to Signer::verify.
  const crypto::SigBatchEntry entry{msg.from, BytesView(echo_sign_bytes(v)),
                                    sig};
  const bool sig_ok =
      cfg_.batcher ? cfg_.batcher->check_signature(entry)
                   : cfg_.signer->verify(msg.from, entry.message, sig);
  if (!sig_ok) return true;
  if (!mark_seen(echo_seen_[v], msg.from)) return true;
  // Retain the delivered buffer by refcount; signature and election stay
  // views into it — no deep copy (the old code copied both blobs).
  echoes_[v].push_back({msg.from, msg.payload, sig, election});
  if (echoes_[v].size() >= cfg_.params.W) maybe_ok(ctx, v);
  return true;
}

void Approver::maybe_ok(sim::Context& ctx, Value v) {
  if (sent_ok_ || !in_ok_) return;
  sent_ok_ = true;
  Writer w;
  w.u8(v).blob(ok_election_proof_);
  const auto& proof = echoes_[v];
  w.u32(static_cast<std::uint32_t>(cfg_.params.W));
  for (std::size_t i = 0; i < cfg_.params.W; ++i) {
    w.u32(proof[i].sender).blob(proof[i].signature).blob(
        proof[i].election_proof);
  }
  ctx.broadcast(tag_ok_, w.take(), ok_words(cfg_.params.W));
}

bool Approver::handle_ok(sim::Context& ctx, const sim::Message& msg) {
  if (done_) return true;
  Value v;
  BytesView election;
  // Proof entries borrow from the message buffer; nothing is copied. The
  // scratch is committed to the pending queue only after r.done()
  // succeeds, so a truncated payload leaves no partial state.
  parse_scratch_.clear();
  try {
    Reader r(msg.payload);
    v = r.u8();
    election = r.blob_view();
    std::uint32_t count = r.u32();
    if (count != cfg_.params.W) return true;  // wrong proof arity
    for (std::uint32_t i = 0; i < count; ++i) {
      OkProofEntry e;
      e.sender = r.u32();
      e.signature = r.blob_view();
      e.election_proof = r.blob_view();
      parse_scratch_.push_back(e);
    }
    r.done();
  } catch (const CodecError&) {
    return true;
  }
  if (!is_valid_value(v)) return true;

  // The embedded echoes must come from W *distinct* senders. Sort a
  // scratch of ids and scan for an adjacent duplicate — the only
  // stateless filter cheaper than a verification, so it runs first in
  // both paths (the old code built a std::set here, W nodes per message).
  distinct_scratch_.clear();
  for (const OkProofEntry& e : parse_scratch_)
    distinct_scratch_.push_back(e.sender);
  std::sort(distinct_scratch_.begin(), distinct_scratch_.end());
  if (std::adjacent_find(distinct_scratch_.begin(), distinct_scratch_.end()) !=
      distinct_scratch_.end())
    return true;

  if (cfg_.batcher) {
    // Deferred path. Senders already counted for the phase drop here
    // (inline: verify then fail mark_seen, no state change); senders with
    // only PENDING oks must still enqueue — their queued ok might fail
    // verification where this one passes.
    if (msg.from < ok_seen_.size() && ok_seen_[msg.from]) return true;
    PendingOk ok;
    ok.buf = msg.payload;  // refcount bump keeps every view alive
    ok.sender = msg.from;
    ok.v = v;
    ok.election = election;
    ok.first_entry = pending_entries_.size();
    pending_entries_.insert(pending_entries_.end(), parse_scratch_.begin(),
                            parse_scratch_.end());
    pending_oks_.push_back(std::move(ok));
    cfg_.batcher->note_enqueued();
    if (should_flush()) flush_ok_queue(ctx);
    return true;
  }

  // Inline path: the sender's ok election, the W embedded echo elections,
  // then the W signatures, stopping at the first failure.
  if (!cfg_.sampler->committee_val(ok_seed(), msg.from, election))
    return true;
  for (const OkProofEntry& e : parse_scratch_)
    if (!cfg_.sampler->committee_val(echo_seed(v), e.sender,
                                     e.election_proof))
      return true;
  const Bytes& expected = echo_sign_bytes(v);
  for (const OkProofEntry& e : parse_scratch_)
    if (!cfg_.signer->verify(e.sender, expected, e.signature)) return true;

  apply_ok(ctx, msg.from, v, msg.payload);
  return true;
}

void Approver::apply_ok(sim::Context& ctx, crypto::ProcessId sender, Value v,
                        const SharedBytes& buf) {
  if (done_) return;  // state no-op (deferred flush past the threshold)
  if (!mark_seen(ok_seen_, sender)) return;
  applied_oks_.push_back({sender, v, buf});
  ++ok_count_;
  ok_mask_ |= static_cast<std::uint8_t>(1u << v);
  if (ok_count_ == cfg_.params.W) {
    done_ = true;
    // Output event: the vals set encoded as a bitmask (bit v for value v).
    int mask = 0;
    for (Value val : {kZero, kOne, kBot})
      if (ok_mask_ & (1u << val)) {
        ok_values_.insert(val);
        mask |= 1 << static_cast<int>(val);
      }
    ctx.note_decide(cfg_.tag, mask, 0);
    if (on_done_) on_done_(ok_values_);
  }
}

bool Approver::should_flush() const {
  // Candidate threshold (see verify_queue.h): if the pending oks could
  // carry the count across W, flush now so done fires in this delivery
  // frame, like inline verification.
  if (!done_ && ok_count_ + pending_oks_.size() >= cfg_.params.W) return true;
  return pending_oks_.size() >= cfg_.batcher->watermark();
}

void Approver::flush_ok_queue(sim::Context& ctx) {
  // Swap (not move) so both the pending queue and the flush scratch keep
  // their capacity across flushes.
  flush_oks_.clear();
  flush_entries_.clear();
  std::swap(flush_oks_, pending_oks_);
  std::swap(flush_entries_, pending_entries_);
  const std::vector<PendingOk>& oks = flush_oks_;
  const std::vector<OkProofEntry>& entries = flush_entries_;
  cfg_.batcher->note_flushed(oks.size());

  const std::size_t W = cfg_.params.W;

  // One folded election batch over all (W+1)·k proofs: each ok's sender
  // election plus its W embedded echo elections. Inline would stop at
  // the first failure; verifying the rest anyway changes no verdict
  // (committee_val is pure), only cache population.
  check_scratch_.clear();
  check_scratch_.reserve(oks.size() * (W + 1));
  for (const PendingOk& ok : oks) {
    check_scratch_.push_back(
        committee::Sampler::ValCheck{&ok_seed(), ok.sender, ok.election});
    for (std::size_t j = 0; j < W; ++j) {
      const OkProofEntry& e = entries[ok.first_entry + j];
      check_scratch_.push_back(committee::Sampler::ValCheck{
          &echo_seed(ok.v), e.sender, e.election_proof});
    }
  }
  cfg_.batcher->verify_elections(check_scratch_, election_ok_scratch_);

  // Signatures enter the batch only for oks whose elections all passed,
  // matching the inline short-circuit (elections before signatures).
  accept_scratch_.assign(oks.size(), 0);
  sig_scratch_.clear();
  sig_ok_of_scratch_.clear();  // ok index per W-entry sig group
  for (std::size_t i = 0; i < oks.size(); ++i) {
    bool elected = true;
    for (std::size_t j = 0; j <= W; ++j)
      if (!election_ok_scratch_[i * (W + 1) + j]) {
        elected = false;
        break;
      }
    if (!elected) continue;
    const Bytes& expected = echo_sign_bytes(oks[i].v);
    for (std::size_t j = 0; j < W; ++j) {
      const OkProofEntry& e = entries[oks[i].first_entry + j];
      sig_scratch_.push_back(
          crypto::SigBatchEntry{e.sender, BytesView(expected), e.signature});
    }
    sig_ok_of_scratch_.push_back(i);
  }
  coin::BatchVerifier::FlushStats stats =
      cfg_.batcher->verify_signatures(sig_scratch_, verdict_scratch_);
  for (std::size_t k = 0; k < sig_ok_of_scratch_.size(); ++k) {
    bool all = true;
    for (std::size_t j = 0; j < W; ++j)
      if (!verdict_scratch_[k * W + j]) {
        all = false;
        break;
      }
    accept_scratch_[sig_ok_of_scratch_[k]] = all ? 1 : 0;
  }
  ctx.note_sig_verify_batch(sig_scratch_.size(), stats.rejects,
                            stats.memo_hits);

  // Apply survivors in arrival order with the same guards the inline
  // path uses — bit-identical state evolution.
  for (std::size_t i = 0; i < oks.size(); ++i) {
    if (!accept_scratch_[i]) continue;
    apply_ok(ctx, oks[i].sender, oks[i].v, oks[i].buf);
  }
}

std::optional<Value> Approver::verify_ok_payload(
    const committee::Sampler& sampler, const crypto::Signer& signer,
    const committee::Params& params, const std::string& approver_tag,
    crypto::ProcessId sender, BytesView payload) {
  Value v;
  BytesView election;
  std::vector<OkProofEntry> entries;
  try {
    Reader r(payload);
    v = r.u8();
    election = r.blob_view();
    std::uint32_t count = r.u32();
    if (count != params.W) return std::nullopt;
    entries.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      OkProofEntry e;
      e.sender = r.u32();
      e.signature = r.blob_view();
      e.election_proof = r.blob_view();
      entries.push_back(e);
    }
    r.done();
  } catch (const CodecError&) {
    return std::nullopt;
  }
  if (!is_valid_value(v)) return std::nullopt;

  std::vector<crypto::ProcessId> ids;
  ids.reserve(entries.size());
  for (const OkProofEntry& e : entries) ids.push_back(e.sender);
  std::sort(ids.begin(), ids.end());
  if (std::adjacent_find(ids.begin(), ids.end()) != ids.end())
    return std::nullopt;

  const std::string ok_seed = approver_tag + "/ok";
  const std::string echo_seed = approver_tag + "/echo/" + value_name(v);
  if (!sampler.committee_val(ok_seed, sender, election)) return std::nullopt;
  for (const OkProofEntry& e : entries)
    if (!sampler.committee_val(echo_seed, e.sender, e.election_proof))
      return std::nullopt;
  const Bytes expected = make_echo_sign_bytes(approver_tag, v);
  for (const OkProofEntry& e : entries)
    if (!signer.verify(e.sender, expected, e.signature)) return std::nullopt;
  return v;
}

const std::set<Value>& Approver::output() const {
  COIN_REQUIRE(done_, "Approver: output read before completion");
  return ok_values_;
}

}  // namespace coincidence::ba
