#include "ba/approver.h"

#include "common/errors.h"
#include "common/ser.h"

namespace coincidence::ba {

namespace {
// Word accounting (§6.1): init = value + election proof; echo adds a
// signature. The ok proof carries W (signature + election proof) pairs —
// the O(λ) words that make the approver O(n log² n) overall.
constexpr std::size_t kInitWords = 2;
constexpr std::size_t kEchoWords = 3;
std::size_t ok_words(std::size_t proof_entries) {
  return 2 + 2 * proof_entries;
}
}  // namespace

Approver::Approver(Config cfg, Value input, DoneFn on_done)
    : cfg_(std::move(cfg)),
      input_(input),
      on_done_(std::move(on_done)),
      tag_init_(cfg_.tag + "/init"),
      tag_echo_(cfg_.tag + "/echo"),
      tag_ok_(cfg_.tag + "/ok"),
      init_seed_(cfg_.tag + "/init"),
      ok_seed_(cfg_.tag + "/ok"),
      echo_seeds_{cfg_.tag + "/echo/" + value_name(kZero),
                  cfg_.tag + "/echo/" + value_name(kOne),
                  cfg_.tag + "/echo/" + value_name(kBot)} {
  COIN_REQUIRE(is_valid_value(input), "Approver: input must be 0, 1 or bot");
  COIN_REQUIRE(cfg_.registry && cfg_.sampler && cfg_.signer,
               "Approver: missing crypto environment");
  COIN_REQUIRE(cfg_.params.W > cfg_.params.B,
               "Approver: W must exceed B (S5/S6 need the gap)");
}

Bytes Approver::echo_sign_bytes(Value v) const {
  Writer w;
  w.str(cfg_.tag).str("echo").u8(v);
  return w.take();
}

void Approver::start(sim::Context& ctx) {
  auto init = cfg_.sampler->sample(ctx.self(), init_seed());
  auto ok = cfg_.sampler->sample(ctx.self(), ok_seed());
  in_init_ = init.sampled;
  in_ok_ = ok.sampled;
  init_election_proof_ = std::move(init.proof);
  ok_election_proof_ = std::move(ok.proof);

  if (in_init_) {
    Writer w;
    w.u8(input_).blob(init_election_proof_);
    ctx.broadcast(tag_init_, w.take(), kInitWords);
  }
}

bool Approver::handle(sim::Context& ctx, const sim::Message& msg) {
  if (msg.tag == tag_init_) return handle_init(ctx, msg);
  if (msg.tag == tag_echo_) return handle_echo(ctx, msg);
  if (msg.tag == tag_ok_) return handle_ok(ctx, msg);
  return false;
}

bool Approver::handle_init(sim::Context& ctx, const sim::Message& msg) {
  Value v;
  BytesView election;
  try {
    Reader r(msg.payload);
    v = r.u8();
    election = r.blob_view();
    r.done();
  } catch (const CodecError&) {
    return true;
  }
  if (!is_valid_value(v)) return true;
  if (!cfg_.sampler->committee_val(init_seed(), msg.from, election))
    return true;
  if (!init_senders_[v].insert(msg.from).second) return true;
  if (init_senders_[v].size() >= cfg_.params.B + 1) maybe_echo(ctx, v);
  return true;
}

void Approver::maybe_echo(sim::Context& ctx, Value v) {
  if (echoed_.count(v)) return;
  auto election = cfg_.sampler->sample(ctx.self(), echo_seed(v));
  if (!election.sampled) {
    echoed_.insert(v);  // cache the negative so we don't re-sample
    return;
  }
  echoed_.insert(v);
  Bytes sig = cfg_.signer->sign(ctx.self(), echo_sign_bytes(v));
  Writer w;
  w.u8(v).blob(election.proof).blob(sig);
  ctx.broadcast(tag_echo_, w.take(), kEchoWords);
}

bool Approver::handle_echo(sim::Context& ctx, const sim::Message& msg) {
  Value v;
  Bytes election, sig;
  try {
    Reader r(msg.payload);
    v = r.u8();
    election = r.blob();
    sig = r.blob();
    r.done();
  } catch (const CodecError&) {
    return true;
  }
  if (!is_valid_value(v)) return true;
  if (!cfg_.sampler->committee_val(echo_seed(v), msg.from, election))
    return true;
  if (!cfg_.signer->verify(msg.from, echo_sign_bytes(v), sig)) return true;
  if (!echo_senders_[v].insert(msg.from).second) return true;
  echoes_[v].push_back({msg.from, std::move(sig), std::move(election)});
  if (echoes_[v].size() >= cfg_.params.W) maybe_ok(ctx, v);
  return true;
}

void Approver::maybe_ok(sim::Context& ctx, Value v) {
  if (sent_ok_ || !in_ok_) return;
  sent_ok_ = true;
  Writer w;
  w.u8(v).blob(ok_election_proof_);
  const auto& proof = echoes_[v];
  w.u32(static_cast<std::uint32_t>(cfg_.params.W));
  for (std::size_t i = 0; i < cfg_.params.W; ++i) {
    w.u32(proof[i].sender).blob(proof[i].signature).blob(
        proof[i].election_proof);
  }
  ctx.broadcast(tag_ok_, w.take(), ok_words(cfg_.params.W));
}

bool Approver::handle_ok(sim::Context& ctx, const sim::Message& msg) {
  if (done_) return true;
  Value v;
  BytesView election;
  // Proof entries borrow from the message buffer: the W signatures are
  // verified and discarded, never stored, so no copies are needed.
  struct EchoEntry {
    crypto::ProcessId sender = 0;
    BytesView signature;
    BytesView election_proof;
  };
  std::vector<EchoEntry> proof;
  try {
    Reader r(msg.payload);
    v = r.u8();
    election = r.blob_view();
    std::uint32_t count = r.u32();
    if (count != cfg_.params.W) return true;  // wrong proof arity
    proof.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      EchoEntry e;
      e.sender = r.u32();
      e.signature = r.blob_view();
      e.election_proof = r.blob_view();
      proof.push_back(e);
    }
    r.done();
  } catch (const CodecError&) {
    return true;
  }
  if (!is_valid_value(v)) return true;

  // Validate the sender's ok election plus the embedded W signed echoes:
  // distinct echo(v) committee members, each with a valid signature over
  // <echo, v>. The distinct check runs first in both paths; it is the
  // only stateless filter cheaper than a verification.
  std::set<crypto::ProcessId> distinct;
  for (const auto& e : proof)
    if (!distinct.insert(e.sender).second) return true;

  if (cfg_.batcher) {
    // One folded batch over all W+1 election proofs. Inline would stop
    // at the first failure; verifying the rest anyway changes no
    // verdict (committee_val is pure), only cache population.
    std::vector<committee::Sampler::ValCheck> checks;
    checks.reserve(proof.size() + 1);
    checks.push_back(
        committee::Sampler::ValCheck{&ok_seed(), msg.from, election});
    for (const auto& e : proof)
      checks.push_back(committee::Sampler::ValCheck{&echo_seed(v), e.sender,
                                                    e.election_proof});
    std::vector<char> ok;
    cfg_.batcher->verify_elections(checks, ok);
    for (char c : ok)
      if (!c) return true;
  } else {
    if (!cfg_.sampler->committee_val(ok_seed(), msg.from, election))
      return true;
    for (const auto& e : proof)
      if (!cfg_.sampler->committee_val(echo_seed(v), e.sender,
                                       e.election_proof))
        return true;
  }

  Bytes expected = echo_sign_bytes(v);
  for (const auto& e : proof)
    if (!cfg_.signer->verify(e.sender, expected, e.signature)) return true;

  if (!ok_senders_.insert(msg.from).second) return true;
  ok_values_.insert(v);
  if (ok_senders_.size() == cfg_.params.W) {
    done_ = true;
    // Output event: the vals set encoded as a bitmask (bit v for value v).
    int mask = 0;
    for (Value v : ok_values_) mask |= 1 << static_cast<int>(v);
    ctx.note_decide(cfg_.tag, mask, 0);
    if (on_done_) on_done_(ok_values_);
  }
  return true;
}

const std::set<Value>& Approver::output() const {
  COIN_REQUIRE(done_, "Approver: output read before completion");
  return ok_values_;
}

}  // namespace coincidence::ba
