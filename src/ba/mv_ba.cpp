#include "ba/mv_ba.h"

#include <algorithm>
#include <utility>

#include "common/errors.h"
#include "crypto/sha256.h"

namespace coincidence::ba {

MultiValuedBa::MultiValuedBa(Config cfg, Bytes proposal)
    : cfg_(std::move(cfg)),
      proposal_(std::move(proposal)),
      rbc_(make_broadcast(cfg_.rbc,
                          {cfg_.tag + "/rbc", cfg_.params.n, cfg_.params.f},
                          [this](sim::ProcessId src, const Bytes& payload) {
                            on_rbc_deliver(src, payload);
                          })),
      delivered_(cfg_.params.n) {
  COIN_REQUIRE(cfg_.params.n > 0, "MultiValuedBa: params not initialised");
  const std::size_t n = cfg_.params.n;
  std::vector<std::pair<std::uint64_t, sim::ProcessId>> keyed;
  keyed.reserve(n);
  for (std::size_t p = 0; p < n; ++p) {
    const crypto::Digest d =
        crypto::sha256(bytes_of(cfg_.tag + "/rank/" + std::to_string(p)));
    std::uint64_t key = 0;
    for (std::size_t i = 0; i < 8; ++i) key = (key << 8) | d[i];
    keyed.emplace_back(key, static_cast<sim::ProcessId>(p));
  }
  std::sort(keyed.begin(), keyed.end());
  rank_.reserve(n);
  for (const auto& [key, p] : keyed) rank_.push_back(p);
}

std::size_t MultiValuedBa::effective_max() const {
  const std::size_t n = cfg_.params.n;
  return cfg_.max_candidates == 0 ? n : std::min(cfg_.max_candidates, n);
}

void MultiValuedBa::on_start(sim::Context& ctx) {
  ctx_ = &ctx;
  rbc_->broadcast(ctx, proposal_);
  pump(ctx);
}

void MultiValuedBa::on_message(sim::Context& ctx, const sim::Message& msg) {
  ctx_ = &ctx;
  // RBC and inner BAs keep running after a local decision: stragglers
  // still need our echoes/readies for totality and our grace-round BA
  // traffic (BaWhp halts itself after extra_rounds).
  if (rbc_->handle(ctx, msg)) {
    // A delivery may have opened the activation gate (or completed an
    // awaited adoption — finish() fires from on_rbc_deliver directly).
    pump(ctx);
    return;
  }
  const auto k = candidate_of_tag(msg.tag);
  if (!k) return;  // foreign tag — only Byzantine senders produce these
  if (*k < bas_.size()) {
    bas_[*k]->on_message(ctx, msg);
    pump(ctx);
  } else if (*k < effective_max()) {
    backlog_.push_back(msg);
  }
}

void MultiValuedBa::on_wakeup(sim::Context& ctx) {
  ctx_ = &ctx;
  for (auto& ba : bas_) ba->on_wakeup(ctx);
  pump(ctx);
}

void MultiValuedBa::activate_next(sim::Context& ctx) {
  const std::size_t k = bas_.size();
  BaWhp::Config bcfg;
  bcfg.tag = cand_tag(k);
  bcfg.params = cfg_.params;
  bcfg.vrf = cfg_.vrf;
  bcfg.registry = cfg_.registry;
  bcfg.sampler = cfg_.sampler;
  bcfg.signer = cfg_.signer;
  bcfg.batcher = cfg_.batcher;
  bcfg.max_rounds = cfg_.max_rounds;
  bcfg.extra_rounds = cfg_.extra_rounds;
  bcfg.skip_timeout = cfg_.skip_timeout;
  bcfg.skip_max_attempts = cfg_.skip_max_attempts;
  const Value input = delivered_[rank_[k]].has_value() ? kOne : kZero;
  bas_.push_back(std::make_unique<BaWhp>(std::move(bcfg), input));
  ba_done_.push_back(false);
  bas_.back()->on_start(ctx);
  // Replay traffic that arrived ahead of the activation. The replay can
  // itself grow the backlog (messages for candidate k+1 stay queued), so
  // swap the queue out first.
  std::vector<sim::Message> pending;
  pending.swap(backlog_);
  for (auto& m : pending) {
    const auto c = candidate_of_tag(m.tag);
    if (c && *c == k)
      bas_[k]->on_message(ctx, m);
    else
      backlog_.push_back(std::move(m));
  }
}

void MultiValuedBa::pump(sim::Context& ctx) {
  bool progress = true;
  while (progress && !decided_) {
    progress = false;
    for (std::size_t k = 0; k < bas_.size(); ++k) {
      if (ba_done_[k] || !bas_[k]->decided()) continue;
      ba_done_[k] = true;
      progress = true;
      if (bas_[k]->decision() == 1) {
        // Sequential activation makes this the unique adopted candidate:
        // every earlier instance already latched a 0 decision (decisions
        // are irrevocable), and no later one gets activated.
        if (adopted_ < 0) adopt(ctx, k);
      } else if (adopted_ < 0 && k + 1 == bas_.size()) {
        activation_due_ = true;
      }
    }
    if (decided_ || adopted_ >= 0 || !activation_due_) continue;
    const std::size_t k = bas_.size();
    if (k >= effective_max()) {
      finish(ctx);  // every candidate rejected: no-op decision
    } else if (delivered_[rank_[k]].has_value() ||
               rbc_->delivered_count() + cfg_.params.f >= cfg_.params.n) {
      activation_due_ = false;
      activate_next(ctx);
      progress = true;
    }
  }
}

void MultiValuedBa::adopt(sim::Context& ctx, std::size_t k) {
  adopted_ = static_cast<int>(k);
  const sim::ProcessId proposer = rank_[k];
  if (delivered_[proposer].has_value()) {
    finish(ctx);
  } else {
    // BA validity: some correct process input 1, i.e. had delivered this
    // broadcast — RBC totality then guarantees our delivery is en route.
    awaiting_proposer_ = proposer;
  }
}

void MultiValuedBa::finish(sim::Context& ctx) {
  decided_ = true;
  awaiting_proposer_.reset();
  if (adopted_ >= 0) {
    value_ = *delivered_[rank_[static_cast<std::size_t>(adopted_)]];
    decided_round_ = bas_[static_cast<std::size_t>(adopted_)]->decided_round();
  } else {
    value_.clear();
    decided_round_ = 0;
  }
  ctx.note_decide(sim::Tag(cfg_.tag), adopted_, decided_round_);
}

void MultiValuedBa::on_rbc_deliver(sim::ProcessId source,
                                   const Bytes& payload) {
  if (source < delivered_.size() && !delivered_[source].has_value())
    delivered_[source] = payload;
  if (awaiting_proposer_ && *awaiting_proposer_ == source) finish(*ctx_);
}

std::optional<std::size_t> MultiValuedBa::candidate_of_tag(
    const sim::Tag& tag) {
  if (const std::uint32_t* cached = cand_cache_.find(tag.id()))
    return *cached == 0 ? std::nullopt
                        : std::optional<std::size_t>(*cached - 1);
  const std::string& t = tag.str();
  const std::size_t base = cfg_.tag.size();
  std::optional<std::size_t> result;
  if (t.size() > base + 2 && t.compare(0, base, cfg_.tag) == 0 &&
      t[base] == '/' && t[base + 1] == 'c') {
    std::size_t k = 0;
    std::size_t i = base + 2;
    bool any = false;
    while (i < t.size() && t[i] >= '0' && t[i] <= '9') {
      k = k * 10 + static_cast<std::size_t>(t[i] - '0');
      ++i;
      any = true;
    }
    if (any && (i == t.size() || t[i] == '/')) result = k;
  }
  cand_cache_[tag.id()] =
      result ? static_cast<std::uint32_t>(*result) + 1 : 0;
  return result;
}

int MultiValuedBa::decision() const {
  COIN_REQUIRE(decided_, "MultiValuedBa: not decided");
  return adopted_;
}

std::uint64_t MultiValuedBa::decided_round() const {
  COIN_REQUIRE(decided_, "MultiValuedBa: not decided");
  return decided_round_;
}

const Bytes& MultiValuedBa::decided_value() const {
  COIN_REQUIRE(decided_, "MultiValuedBa: not decided");
  return value_;
}

sim::ProcessId MultiValuedBa::decided_proposer() const {
  COIN_REQUIRE(decided_ && adopted_ >= 0,
               "MultiValuedBa: no adopted proposer");
  return rank_[static_cast<std::size_t>(adopted_)];
}

std::uint64_t MultiValuedBa::rounds_skipped() const {
  std::uint64_t total = 0;
  for (const auto& ba : bas_) total += ba->rounds_skipped();
  return total;
}

std::uint64_t MultiValuedBa::max_inner_round() const {
  std::uint64_t max_round = 0;
  for (const auto& ba : bas_)
    max_round = std::max(max_round, ba->current_round());
  return max_round;
}

}  // namespace coincidence::ba
