// Ben-Or's randomized Byzantine Agreement (PODC 1983) — Table 1 row 1.
//
// The original Protocol B, resilience n > 5f, local coin:
//   step 1: broadcast <R, r, x>; wait for n−f of them.
//   step 2: if more than (n+f)/2 carry the same v, broadcast <P, r, v, D>,
//           else broadcast <P, r, ?>; wait for n−f proposals.
//   step 3: if more than (n+f)/2 proposals carry D(v): decide v.
//           else if at least f+1 carry D(v): x <- v.
//           else x <- local random bit.
//
// Expected exponential rounds in general (O(1) when f = O(sqrt n)):
// the bench suite uses it to regenerate the "local coin is hopeless at
// scale" row of Table 1.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "ba/ba_process.h"
#include "ba/value.h"

namespace coincidence::ba {

class BenOr final : public BaProcess {
 public:
  struct Config {
    std::string tag = "benor";
    std::size_t n = 0;
    std::size_t f = 0;
    std::uint64_t max_rounds = 4096;  // exponential-expected-time guard
    /// Grace rounds after deciding (one suffices deterministically: a
    /// decision quorum forces every correct x to the decided value).
    std::uint64_t extra_rounds = 2;
  };

  BenOr(Config cfg, Value initial);

  void on_start(sim::Context& ctx) override;
  void on_message(sim::Context& ctx, const sim::Message& msg) override;

  bool decided() const override { return decision_.has_value(); }
  int decision() const override;
  std::uint64_t decided_round() const override;
  std::uint64_t current_round() const { return round_; }

 private:
  // Proposal wire values: 0, 1, or "?" (no value crossed the threshold).
  static constexpr Value kQuestion = kBot;

  struct RoundState {
    std::map<Value, std::set<sim::ProcessId>> reports;    // step-1 counters
    std::set<sim::ProcessId> report_senders;
    std::map<Value, std::set<sim::ProcessId>> proposals;  // step-2 counters
    std::set<sim::ProcessId> proposal_senders;
    bool proposal_sent = false;
  };

  void begin_round(sim::Context& ctx);
  void check_progress(sim::Context& ctx);
  RoundState& state(std::uint64_t r) { return rounds_[r]; }
  /// "<tag>/<r>/R" or "<tag>/<r>/P", interned once per round and cached.
  sim::Tag round_tag(std::uint64_t r, char kind);

  Config cfg_;
  Value x_;
  std::optional<int> decision_;
  std::uint64_t decision_round_ = 0;
  std::uint64_t round_ = 0;
  bool halted_ = false;
  std::map<std::uint64_t, RoundState> rounds_;
  // round_tag cache: [r] = {R-tag, P-tag}, grown as rounds begin.
  std::vector<std::array<sim::Tag, 2>> round_tags_;
};

}  // namespace coincidence::ba
