// Uniform harness-facing interface for every Byzantine Agreement
// implementation in this repo (ours + all baselines), so tests, benches
// and examples can drive any of them interchangeably.
#pragma once

#include <cstdint>

#include "sim/process.h"

namespace coincidence::ba {

class BaProcess : public sim::Process {
 public:
  /// True once this process has irrevocably decided.
  virtual bool decided() const = 0;

  /// The decision in {0, 1}; requires decided().
  virtual int decision() const = 0;

  /// Round in which the decision fired (0-based); requires decided().
  virtual std::uint64_t decided_round() const = 0;
};

}  // namespace coincidence::ba
