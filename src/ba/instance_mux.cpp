#include "ba/instance_mux.h"

#include <string_view>

#include "common/errors.h"

namespace coincidence::ba {

void InstanceMux::add_instance(std::string prefix,
                               std::unique_ptr<BaProcess> instance) {
  COIN_REQUIRE(instance != nullptr, "InstanceMux: null instance");
  COIN_REQUIRE(!prefix.empty() && prefix.find('/') == std::string::npos,
               "InstanceMux: prefix must be a single path segment");
  auto [it, inserted] =
      instances_.emplace(std::move(prefix), std::move(instance));
  COIN_REQUIRE(inserted, "InstanceMux: duplicate prefix");
}

void InstanceMux::on_start(sim::Context& ctx) {
  for (auto& [prefix, instance] : instances_) instance->on_start(ctx);
}

void InstanceMux::on_wakeup(sim::Context& ctx) {
  for (auto& [prefix, instance] : instances_) instance->on_wakeup(ctx);
}

void InstanceMux::on_message(sim::Context& ctx, const sim::Message& msg) {
  // Route by the first tag segment; unknown prefixes are dropped (they
  // can only come from Byzantine senders inventing instances). The
  // TagId -> instance result is memoized, so each distinct tag is parsed
  // once and every subsequent message routes allocation-free.
  if (BaProcess** cached = route_cache_.find(msg.tag.id())) {
    if (*cached != nullptr) (*cached)->on_message(ctx, msg);
    return;
  }
  const std::string& t = msg.tag.str();
  auto slash = t.find('/');
  std::string_view prefix =
      slash == std::string::npos ? std::string_view(t)
                                 : std::string_view(t).substr(0, slash);
  auto it = instances_.find(prefix);
  BaProcess* target = it == instances_.end() ? nullptr : it->second.get();
  route_cache_[msg.tag.id()] = target;
  if (target != nullptr) target->on_message(ctx, msg);
}

BaProcess& InstanceMux::instance(const std::string& prefix) {
  auto it = instances_.find(prefix);
  COIN_REQUIRE(it != instances_.end(), "InstanceMux: unknown prefix");
  return *it->second;
}

const BaProcess& InstanceMux::instance(const std::string& prefix) const {
  auto it = instances_.find(prefix);
  COIN_REQUIRE(it != instances_.end(), "InstanceMux: unknown prefix");
  return *it->second;
}

bool InstanceMux::all_decided() const {
  for (const auto& [prefix, instance] : instances_)
    if (!instance->decided()) return false;
  return true;
}

}  // namespace coincidence::ba
