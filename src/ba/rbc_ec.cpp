#include "ba/rbc_ec.h"

#include <algorithm>
#include <utility>

#include "common/errors.h"
#include "common/ser.h"

namespace coincidence::ba {

namespace {

constexpr std::size_t kDigestSize = crypto::kSha256DigestSize;

Bytes concat_branch(const std::vector<crypto::Digest>& branch) {
  Bytes out;
  out.reserve(branch.size() * kDigestSize);
  for (const crypto::Digest& d : branch)
    out.insert(out.end(), d.begin(), d.end());
  return out;
}

std::optional<std::vector<crypto::Digest>> split_branch(BytesView raw) {
  if (raw.size() % kDigestSize != 0) return std::nullopt;
  std::vector<crypto::Digest> branch(raw.size() / kDigestSize);
  for (std::size_t i = 0; i < branch.size(); ++i)
    std::copy_n(raw.begin() + static_cast<std::ptrdiff_t>(i * kDigestSize),
                kDigestSize, branch[i].begin());
  return branch;
}

std::size_t fragment_word_count(std::size_t fragment_bytes) {
  return (fragment_bytes + 7) / 8;
}

}  // namespace

EcBroadcast::EcBroadcast(Config cfg, DeliverFn on_deliver)
    : cfg_(std::move(cfg)),
      on_deliver_(std::move(on_deliver)),
      rs_(cfg_.n, cfg_.f + 1),
      tag_initial_(cfg_.tag + "/initial"),
      tag_echo_(cfg_.tag + "/echo"),
      tag_ready_(cfg_.tag + "/ready"),
      delivered_(cfg_.n, false) {
  COIN_REQUIRE(cfg_.n > 3 * cfg_.f, "EcBroadcast: requires n > 3f");
}

crypto::Digest EcBroadcast::composite_key(const crypto::Digest& root,
                                          std::uint64_t value_size) {
  crypto::Sha256 h;
  h.update(BytesView(root.data(), root.size()));
  const Bytes size_bytes = bytes_of_u64(value_size);
  h.update(size_bytes);
  return h.finish();
}

std::uint64_t EcBroadcast::flow_fold(sim::ProcessId source,
                                     const crypto::Digest& key) {
  std::uint64_t fold = 0;
  for (std::size_t i = 0; i < 8; ++i) fold = (fold << 8) | key[i];
  return fold ^ (static_cast<std::uint64_t>(source) * 0x9e3779b97f4a7c15ull);
}

EcBroadcast::Flow& EcBroadcast::flow_of(sim::ProcessId source,
                                        const crypto::Digest& key) {
  std::vector<Flow>& bucket = flows_[flow_fold(source, key)];
  for (Flow& flow : bucket)
    if (flow.source == source && flow.key == key) return flow;
  Flow& flow = bucket.emplace_back();
  flow.source = source;
  flow.key = key;
  return flow;
}

void EcBroadcast::broadcast(sim::Context& ctx, Bytes payload) {
  const std::uint64_t size = payload.size();
  const std::vector<Bytes> fragments = rs_.encode(payload);
  ctx.note_rbc_encode(fragments.size());
  const crypto::MerkleTree tree(fragments);
  const std::size_t frag_words =
      fragment_word_count(rs_.fragment_size(size));
  for (sim::ProcessId i = 0; i < cfg_.n; ++i) {
    const std::vector<crypto::Digest> branch = tree.branch(i);
    Writer w;
    w.u64(size).blob(fragments[i]).blob(concat_branch(branch));
    ctx.send(i, tag_initial_, w.take(),
             1 + frag_words + branch_words(branch.size()));
  }
}

bool EcBroadcast::handle(sim::Context& ctx, const sim::Message& msg) {
  if (msg.tag == tag_initial_) {
    handle_initial(ctx, msg);
    return true;
  }
  if (msg.tag == tag_echo_) {
    handle_echo(ctx, msg);
    return true;
  }
  if (msg.tag == tag_ready_) {
    handle_ready(ctx, msg);
    return true;
  }
  return false;
}

void EcBroadcast::handle_initial(sim::Context& ctx, const sim::Message& msg) {
  // Echo once per source: the first branch-valid initial wins; an
  // equivocating source splits its echo power across roots and gathers a
  // quorum for at most one.
  if (echoed_sources_.count(msg.from)) return;

  std::uint64_t size = 0;
  Bytes fragment;
  std::vector<crypto::Digest> branch;
  try {
    Reader r(msg.payload);
    size = r.u64();
    fragment = r.blob();
    const auto parsed = split_branch(r.blob_view());
    r.done();
    if (!parsed) return;
    branch = *parsed;
  } catch (const CodecError&) {
    return;
  }
  if (fragment.size() != rs_.fragment_size(size)) return;
  const auto root = crypto::merkle_implied_root(cfg_.n, ctx.self(),
                                                fragment, branch);
  if (!root) return;

  echoed_sources_.insert(msg.from);
  Writer w;
  w.u32(msg.from).u64(size);
  w.blob(BytesView(root->data(), root->size()));
  w.blob(fragment).blob(concat_branch(branch));
  ctx.broadcast(tag_echo_, w.take(),
                1 + kDigestWords + fragment_word_count(fragment.size()) +
                    branch_words(branch.size()));
}

void EcBroadcast::handle_echo(sim::Context& ctx, const sim::Message& msg) {
  sim::ProcessId source = 0;
  std::uint64_t size = 0;
  crypto::Digest claimed_root{};
  Bytes fragment;
  std::vector<crypto::Digest> branch;
  try {
    Reader r(msg.payload);
    source = r.u32();
    size = r.u64();
    const Bytes root_bytes = r.blob();
    if (root_bytes.size() != kDigestSize) return;
    std::copy(root_bytes.begin(), root_bytes.end(), claimed_root.begin());
    fragment = r.blob();
    const auto parsed = split_branch(r.blob_view());
    r.done();
    if (!parsed) return;
    branch = *parsed;
  } catch (const CodecError&) {
    return;
  }
  if (source >= cfg_.n) return;
  if (fragment.size() != rs_.fragment_size(size)) return;
  // The echoer vouches for its *own* leaf: the branch must place the
  // fragment at the sender's index under the claimed root.
  const auto implied =
      crypto::merkle_implied_root(cfg_.n, msg.from, fragment, branch);
  if (!implied || *implied != claimed_root) return;

  Flow& flow = flow_of(source, composite_key(claimed_root, size));
  if (!flow.echoes.insert(msg.from).second) return;
  if (!flow.have_root) {
    flow.have_root = true;
    flow.root = claimed_root;
    flow.value_size = size;
  }
  // Same-index duplicates are byte-identical (same root, same leaf slot,
  // collision-resistant hash), so first-wins is safe.
  flow.fragments.emplace(msg.from, std::move(fragment));
  if (2 * flow.echoes.size() > cfg_.n + cfg_.f) maybe_send_ready(ctx, flow);
  maybe_deliver(ctx, flow);  // a ready quorum may be waiting on fragments
}

void EcBroadcast::handle_ready(sim::Context& ctx, const sim::Message& msg) {
  sim::ProcessId source = 0;
  crypto::Digest key{};
  try {
    Reader r(msg.payload);
    source = r.u32();
    const Bytes key_bytes = r.blob();
    if (key_bytes.size() != kDigestSize) return;
    std::copy(key_bytes.begin(), key_bytes.end(), key.begin());
    r.done();
  } catch (const CodecError&) {
    return;
  }
  if (source >= cfg_.n) return;

  Flow& flow = flow_of(source, key);
  if (!flow.readies.insert(msg.from).second) return;
  if (flow.readies.size() >= cfg_.f + 1) maybe_send_ready(ctx, flow);
  maybe_deliver(ctx, flow);
}

void EcBroadcast::maybe_send_ready(sim::Context& ctx, Flow& flow) {
  if (flow.ready_sent) return;
  flow.ready_sent = true;
  Writer w;
  w.u32(flow.source);
  w.blob(BytesView(flow.key.data(), flow.key.size()));
  ctx.broadcast(tag_ready_, w.take(), 1 + kDigestWords);
}

void EcBroadcast::maybe_deliver(sim::Context& ctx, Flow& flow) {
  if (delivered_[flow.source] || flow.poisoned) return;
  if (flow.readies.size() < 2 * cfg_.f + 1) return;
  const std::size_t k = cfg_.f + 1;
  if (!flow.have_root || flow.fragments.size() < k) return;

  // Decode from the k lowest-indexed fragments. The re-encode check
  // below makes the outcome independent of this choice: if it passes,
  // collision resistance pins every branch-valid fragment to the decoded
  // value's codeword; if it fails, no k-subset can pass (a passing
  // subset would pin *all* fragments — including ours — to its value).
  std::vector<std::pair<std::size_t, Bytes>> subset;
  subset.reserve(k);
  for (const auto& [index, frag] : flow.fragments) {
    subset.emplace_back(index, frag);
    if (subset.size() == k) break;
  }
  Bytes value;
  try {
    value = rs_.decode(subset, flow.value_size);
  } catch (const CodecError&) {
    ctx.note_rbc_decode(false, k);
    flow.poisoned = true;
    return;
  }
  const std::vector<Bytes> reencoded = rs_.encode(value);
  ctx.note_rbc_encode(reencoded.size());
  const crypto::MerkleTree tree(reencoded);
  if (tree.root() != flow.root) {
    // Inconsistently-encoded dispersal: deterministic for every correct
    // process, so nobody ever delivers under this root.
    ctx.note_rbc_decode(false, k);
    flow.poisoned = true;
    return;
  }
  ctx.note_rbc_decode(true, k);

  delivered_[flow.source] = true;
  ++delivered_count_;
  ctx.note_decide(cfg_.tag, static_cast<int>(flow.source), 0);
  if (on_deliver_) on_deliver_(flow.source, value);
}

}  // namespace coincidence::ba
