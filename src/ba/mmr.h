// Mostéfaoui–Moumen–Raynal (JACM 2015): signature-free asynchronous
// binary Byzantine consensus, n > 3f, O(n²) messages, O(1) expected time
// with a shared coin — Table 1 row 6, and §4's observation that plugging
// our Algorithm-1 coin into it yields an O(n²) VRF-based BA (the
// Cachin-style operating point). With the Rabin dealer coin it covers
// Table 1 row 2.
//
// Per round r:
//   BV-broadcast(est):   broadcast <bval, v>; relay after f+1 distinct
//                        copies; v joins bin_values after 2f+1.
//   on bin_values != {}: broadcast <aux, w> for some w in bin_values.
//   wait for n−f <aux> messages whose values all lie in bin_values;
//   vals <- that value set; c <- shared_coin(r).
//   vals == {v}: est <- v; decide v if v == c.
//   vals == {0,1}: est <- c.
//
// The coin is injected via a factory, so the same skeleton runs with
// SharedCoin (Algorithm 1), DealerCoin (Rabin-style), or WhpCoin.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "ba/ba_process.h"
#include "ba/value.h"
#include "coin/coin_protocol.h"

namespace coincidence::ba {

class Mmr final : public BaProcess {
 public:
  /// Builds the round-r coin instance routed under `tag`.
  using CoinFactory = std::function<std::unique_ptr<coin::CoinProtocol>(
      std::uint64_t round, const std::string& tag)>;

  struct Config {
    std::string tag = "mmr";
    std::size_t n = 0;
    std::size_t f = 0;
    std::uint64_t max_rounds = 256;
    /// Rounds to keep participating after deciding. MMR with an imperfect
    /// coin has no bound on how much later stragglers decide (a decider's
    /// singleton does not force est adoption the way Algorithm 4's graded
    /// agreement does), so this is a probabilistic grace window: each
    /// extra round halves the chance a straggler is left stranded.
    std::uint64_t extra_rounds = 8;
    CoinFactory make_coin;
  };

  Mmr(Config cfg, Value initial);

  void on_start(sim::Context& ctx) override;
  void on_message(sim::Context& ctx, const sim::Message& msg) override;

  bool decided() const override { return decision_.has_value(); }
  int decision() const override;
  std::uint64_t decided_round() const override;
  std::uint64_t current_round() const { return round_; }

 private:
  struct RoundState {
    std::map<Value, std::set<sim::ProcessId>> bval_senders;
    std::set<Value> bval_relayed;     // values this process re-broadcast
    std::set<Value> bin_values;
    bool aux_sent = false;
    std::map<sim::ProcessId, Value> aux;  // first aux per sender
  };

  std::string round_tag(std::uint64_t r) const {
    return cfg_.tag + "/" + std::to_string(r);
  }
  /// Interned per-round broadcast tags, built lazily and reused: rounds
  /// broadcast many times but intern each tag exactly once.
  struct RoundTags {
    sim::Tag bval;
    sim::Tag aux;
  };
  const RoundTags& round_tags(std::uint64_t r);
  RoundState& state(std::uint64_t r) { return rounds_[r]; }

  void begin_round(sim::Context& ctx);
  void broadcast_bval(sim::Context& ctx, std::uint64_t r, Value v);
  void check_progress(sim::Context& ctx);
  void on_coin(sim::Context& ctx, int c);
  std::optional<std::uint64_t> parse_round(sim::Tag tag,
                                           std::string_view& rest) const;

  Config cfg_;
  Value est_;
  std::optional<int> decision_;
  std::uint64_t decision_round_ = 0;
  std::uint64_t round_ = 0;
  bool waiting_for_coin_ = false;
  bool halted_ = false;
  std::set<Value> vals_;  // the aux value set fixed before the coin flip

  std::map<std::uint64_t, RoundState> rounds_;
  std::vector<RoundTags> round_tags_;
  std::unique_ptr<coin::CoinProtocol> coin_;
  std::vector<std::unique_ptr<coin::CoinProtocol>> retired_coins_;
  std::vector<sim::Message> coin_backlog_;
};

}  // namespace coincidence::ba
