// Bracha's randomized Byzantine Agreement (1987) — Table 1 row 3.
//
// Resilience n > 3f with a local coin, all steps carried over Bracha
// reliable broadcast (rbc.h):
//
//   step 1: RBC(x); wait n−f deliveries; x <- majority value.
//   step 2: RBC(x); wait n−f; if some v occurs > n/2 times, x <- D(v).
//   step 3: RBC(x); wait n−f; if #D(v) >= 2f+1 decide v;
//           else if #D(v) >= f+1: x <- v; else x <- local random bit.
//
// Faithfulness note: Bracha's full message-validation predicate (each
// step-s message must be justifiable from n−f step-(s−1) messages) is
// replaced by domain validation of the wire values; the RBC layer and the
// threshold logic are implemented exactly. This affects resilience only
// against value-lying Byzantine strategies, not the complexity profile
// this baseline exists to measure (O(n³) messages/round via n RBCs,
// exponential expected rounds with a local coin).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>

#include "ba/ba_process.h"
#include "ba/broadcast.h"
#include "ba/value.h"

namespace coincidence::ba {

class Bracha final : public BaProcess {
 public:
  struct Config {
    std::string tag = "bracha";
    std::size_t n = 0;
    std::size_t f = 0;
    std::uint64_t max_rounds = 4096;
    /// Grace rounds after deciding (see ben_or.h).
    std::uint64_t extra_rounds = 2;
    /// Dissemination backend for every step's broadcast (broadcast.h).
    RbcBackend rbc = RbcBackend::kBracha;
  };

  Bracha(Config cfg, Value initial);

  void on_start(sim::Context& ctx) override;
  void on_message(sim::Context& ctx, const sim::Message& msg) override;

  bool decided() const override { return decision_.has_value(); }
  int decision() const override;
  std::uint64_t decided_round() const override;
  std::uint64_t current_round() const { return round_; }

 private:
  // Wire encoding: 0 / 1 plain, 0x10 | v for the D(v) decision marker.
  static constexpr std::uint8_t kDMark = 0x10;
  static bool is_plain(std::uint8_t w) { return w == 0 || w == 1; }
  static bool is_marked(std::uint8_t w) {
    return w == (kDMark | 0) || w == (kDMark | 1);
  }

  struct StepState {
    std::unique_ptr<Broadcast> rbc;
    std::map<sim::ProcessId, std::uint8_t> delivered;
    bool broadcast_done = false;
  };

  StepState& step_state(sim::Context& ctx, std::uint64_t r, int step);
  void enter_step(sim::Context& ctx);
  void check_progress(sim::Context& ctx);

  Config cfg_;
  std::uint8_t x_;  // current value, possibly D-marked between steps 2-3
  std::optional<int> decision_;
  std::uint64_t decision_round_ = 0;
  std::uint64_t round_ = 0;
  int step_ = 1;
  bool halted_ = false;
  std::map<std::pair<std::uint64_t, int>, StepState> steps_;
};

}  // namespace coincidence::ba
