// Reliable-broadcast abstraction (ISSUE 10 tentpole).
//
// Both dissemination backends — Bracha's echo/ready protocol (rbc.h) and
// the AVID-M-style erasure-coded protocol (rbc_ec.h) — present the same
// surface: one broadcast per source per instance, deliver-once per
// source, agreement (no two correct processes deliver different payloads
// for one source) and totality (one correct delivery drags everyone
// else's). MultiValuedBa, the Bracha BA baseline, the replicated log and
// the run drivers program against this interface and pick the backend
// per run (RbcBackend), so every harness — chaos plane, golden traces,
// shard determinism — exercises both.
//
// Word accounting lives inside the backends: each computes its own exact
// wire words from the payload it actually ships (a value v counts
// 1 + ⌈|v|/8⌉ words, a sha256 digest λ = 4 words), keeping the §2 ledger
// honest without callers guessing foreign-flow sizes.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "common/bytes.h"
#include "sim/process.h"

namespace coincidence::ba {

/// Words charged for a broadcast value: one header word plus the payload
/// in 8-byte words (an empty value is still one word on the wire).
inline std::size_t value_words(std::size_t bytes) {
  return 1 + (bytes + 7) / 8;
}

/// λ: a sha256 digest in 8-byte words.
inline constexpr std::size_t kDigestWords = 4;

class Broadcast {
 public:
  struct Config {
    std::string tag;  // instance namespace; one broadcast per source in it
    std::size_t n = 0;
    std::size_t f = 0;
  };

  /// Fires exactly once per source whose broadcast gets delivered.
  using DeliverFn =
      std::function<void(sim::ProcessId source, const Bytes& payload)>;

  virtual ~Broadcast() = default;

  /// Broadcasts this process's payload for the instance.
  virtual void broadcast(sim::Context& ctx, Bytes payload) = 0;

  /// Consumes the message if it belongs to this instance (matching tag),
  /// even when malformed — Byzantine bytes must not leak to the caller.
  virtual bool handle(sim::Context& ctx, const sim::Message& msg) = 0;

  virtual bool delivered(sim::ProcessId source) const = 0;
  virtual std::size_t delivered_count() const = 0;
};

enum class RbcBackend : std::uint8_t {
  kBracha = 0,  // payload echo/ready (rbc.h)
  kEc = 1,      // erasure-coded dispersal (rbc_ec.h)
};

const char* to_string(RbcBackend backend);

/// Parses "bracha" / "ec" (the benches' --rbc flag vocabulary).
std::optional<RbcBackend> parse_rbc_backend(std::string_view name);

std::unique_ptr<Broadcast> make_broadcast(RbcBackend backend,
                                          Broadcast::Config cfg,
                                          Broadcast::DeliverFn on_deliver);

}  // namespace coincidence::ba
