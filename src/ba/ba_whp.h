// Algorithm 4: asynchronous Byzantine Agreement WHP.
//
// Per round r (all sub-instances tagged "<tag>/<r>/..."):
//   vals  <- approve(est)                      (first approver)
//   propose <- v if vals == {v} else ⊥
//   c     <- whp_coin(r)                       (after proposals are fixed,
//                                               so the adversary cannot
//                                               bias proposals by the flip)
//   props <- approve(propose)                  (second approver)
//   props == {v}, v != ⊥ : est <- v; decide v if undecided
//   props == {⊥}         : est <- c
//   props == {v, ⊥}      : est <- v
//
// Expected O(1) rounds (success rate ρ of the coin per round), expected
// Õ(n) words. Processes keep participating through round decided+1 so
// that stragglers can finish (Lemma 6.16 shows everyone decides at most
// one round later whp), then halt.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "ba/approver.h"
#include "ba/ba_process.h"
#include "ba/value.h"
#include "coin/whp_coin.h"

namespace coincidence::ba {

class BaWhp final : public BaProcess {
 public:
  struct Config {
    std::string tag = "ba";
    committee::Params params;
    std::shared_ptr<const crypto::Vrf> vrf;
    std::shared_ptr<const crypto::KeyRegistry> registry;
    std::shared_ptr<const committee::Sampler> sampler;
    std::shared_ptr<const crypto::Signer> signer;
    /// When set, forwarded to every sub-instance: WhpCoin rounds defer
    /// share verification to batched flushes and Approver <ok> proofs
    /// verify their W+1 elections in one folded call (verify_queue.h).
    /// Protocol-visible behaviour is bit-identical either way.
    std::shared_ptr<coin::BatchVerifier> batcher;
    /// Stop starting new rounds beyond this bound (whp-failure guard; the
    /// expected number of rounds is a small constant).
    std::uint64_t max_rounds = 64;
    /// Rounds to keep participating after deciding. Lemma 6.16 says one
    /// extra round suffices whp; the default adds slack for the rare
    /// whp-failure so stragglers are not stranded by halted deciders.
    std::uint64_t extra_rounds = 4;
  };

  BaWhp(Config cfg, Value initial);

  void on_start(sim::Context& ctx) override;
  void on_message(sim::Context& ctx, const sim::Message& msg) override;
  /// kCrashRecover restart: every live sub-instance (and its deferred
  /// verify queue) is torn down, then (round, est, decision) are rebuilt
  /// from the persisted snapshot — or from the initial value when the
  /// snapshot is missing/corrupt — and the round is restarted. The
  /// snapshot is written at every round boundary, so a recovered process
  /// can never land in a round it had already retired, and a restored
  /// decision can never flip (the no-divergence-across-recovery
  /// invariant).
  void on_recover(sim::Context& ctx, const Bytes& snapshot) override;

  bool decided() const override { return decision_.has_value(); }
  int decision() const override;
  std::uint64_t decided_round() const override;

  std::uint64_t current_round() const { return round_; }
  Value estimate() const { return est_; }

 private:
  enum class Phase { kApproveEst, kCoin, kApprovePropose, kHalted };

  std::string round_tag(std::uint64_t r) const {
    return cfg_.tag + "/" + std::to_string(r);
  }

  void begin_round(sim::Context& ctx);
  void on_vals(sim::Context& ctx, const std::set<Value>& vals);
  void on_coin(sim::Context& ctx, int c);
  void on_props(sim::Context& ctx, const std::set<Value>& props);
  void replay_backlog(sim::Context& ctx);
  bool offer(sim::Context& ctx, const sim::Message& msg);
  std::uint64_t tag_round(sim::Tag tag) const;
  /// Writes the round-boundary snapshot to stable storage.
  void persist_now(sim::Context& ctx);

  Config cfg_;
  Value initial_;  // recovery fallback when no snapshot survives
  Value est_;
  std::optional<int> decision_;
  std::uint64_t decision_round_ = 0;
  std::uint64_t round_ = 0;
  Phase phase_ = Phase::kApproveEst;
  Value propose_ = kBot;
  int coin_value_ = 0;

  std::unique_ptr<Approver> approver_;  // the active approver instance
  std::unique_ptr<coin::WhpCoin> coin_;

  // Completed sub-instances are retired here instead of being destroyed:
  // a phase transition fires from *inside* the old instance's handle()
  // frame, so destroying it there would be use-after-free. Drained at the
  // top of the next on_message, when no sub-instance frame is active.
  std::vector<std::unique_ptr<Approver>> retired_approvers_;
  std::vector<std::unique_ptr<coin::WhpCoin>> retired_coins_;

  // Messages for sub-instances that do not exist yet (future rounds /
  // later phases) — replayed on every phase change. Bounded by the total
  // traffic of max_rounds rounds.
  std::vector<sim::Message> backlog_;
};

}  // namespace coincidence::ba
