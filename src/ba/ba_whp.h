// Algorithm 4: asynchronous Byzantine Agreement WHP.
//
// Per round r (all sub-instances tagged "<tag>/<r>/..."):
//   vals  <- approve(est)                      (first approver)
//   propose <- v if vals == {v} else ⊥
//   c     <- whp_coin(r)                       (after proposals are fixed,
//                                               so the adversary cannot
//                                               bias proposals by the flip)
//   props <- approve(propose)                  (second approver)
//   props == {v}, v != ⊥ : est <- v; decide v if undecided
//   props == {⊥}         : est <- c
//   props == {v, ⊥}      : est <- v
//
// Expected O(1) rounds (success rate ρ of the coin per round), expected
// Õ(n) words. Processes keep participating through round decided+1 so
// that stragglers can finish (Lemma 6.16 shows everyone decides at most
// one round later whp), then halt.
//
// Round-skip liveness fallback (Config::skip_timeout, off by default):
// the paper's per-round sub-protocols terminate only whp — a committee
// drawn with fewer than W live members (a real event at relaxed small-n
// parameters, see DESIGN.md §5h) wedges its round forever, since no ok
// quorum can ever assemble. When the fallback is armed, a process that
// sees no round progress for skip_timeout delivery events broadcasts
// <skip-req, r>; f+1 distinct requests make everyone join (Bracha-style
// amplification) and 2f+1 advance the round with *fresh* committees,
// which succeed whp. Two guards close the decided-vs-skipped races:
//  - lock forwarding: a skip-req carries one verified non-⊥ <ok> of the
//    dying round (if its sender applied any); skippers adopt the locked
//    value as est, so a round in which a decision was brewing re-proposes
//    that value.
//  - decision certificates: a decided process answers skip-reqs with the
//    W verified <ok> payloads that formed props = {v}; any process
//    accepts a valid certificate as an immediate decision (the cert is
//    exactly the props = {v} evidence, so certificate decisions inherit
//    the ok-quorum intersection argument of Lemmas 6.5/6.6).
// The fallback trades nothing deterministic away — agreement was already
// whp (committee quorums) — and restores termination across the
// committee-tail event at O(n²) extra words only on wedged rounds.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "ba/approver.h"
#include "ba/ba_process.h"
#include "ba/value.h"
#include "coin/whp_coin.h"

namespace coincidence::ba {

class BaWhp final : public BaProcess {
 public:
  struct Config {
    std::string tag = "ba";
    committee::Params params;
    std::shared_ptr<const crypto::Vrf> vrf;
    std::shared_ptr<const crypto::KeyRegistry> registry;
    std::shared_ptr<const committee::Sampler> sampler;
    std::shared_ptr<const crypto::Signer> signer;
    /// When set, forwarded to every sub-instance: WhpCoin rounds defer
    /// share verification to batched flushes and Approver <ok> proofs
    /// verify their W+1 elections in one folded call (verify_queue.h).
    /// Protocol-visible behaviour is bit-identical either way.
    std::shared_ptr<coin::BatchVerifier> batcher;
    /// Stop starting new rounds beyond this bound (whp-failure guard; the
    /// expected number of rounds is a small constant).
    std::uint64_t max_rounds = 64;
    /// Rounds to keep participating after deciding. Lemma 6.16 says one
    /// extra round suffices whp; the default adds slack for the rare
    /// whp-failure so stragglers are not stranded by halted deciders.
    std::uint64_t extra_rounds = 4;
    /// Round-skip liveness fallback (header comment above): broadcast a
    /// <skip-req> after this many delivery events without round progress.
    /// 0 (the default) disables the fallback entirely — no wakeups, no
    /// extra messages, byte-identical to prior releases. Drivers should
    /// size it well above one healthy round's delivery count (the
    /// session layer scales it by n and concurrent slots).
    std::uint64_t skip_timeout = 0;
    /// Re-broadcast the skip-req at most this many times per round, then
    /// wait passively (bounds wakeup traffic of a lone straggler that can
    /// never assemble a skip quorum).
    std::uint32_t skip_max_attempts = 8;
  };

  BaWhp(Config cfg, Value initial);

  void on_start(sim::Context& ctx) override;
  void on_message(sim::Context& ctx, const sim::Message& msg) override;
  /// Skip-fallback timer (armed only when Config::skip_timeout > 0).
  void on_wakeup(sim::Context& ctx) override;
  /// kCrashRecover restart: every live sub-instance (and its deferred
  /// verify queue) is torn down, then (round, est, decision) are rebuilt
  /// from the persisted snapshot — or from the initial value when the
  /// snapshot is missing/corrupt — and the round is restarted. The
  /// snapshot is written at every round boundary, so a recovered process
  /// can never land in a round it had already retired, and a restored
  /// decision can never flip (the no-divergence-across-recovery
  /// invariant).
  void on_recover(sim::Context& ctx, const Bytes& snapshot) override;

  bool decided() const override { return decision_.has_value(); }
  int decision() const override;
  std::uint64_t decided_round() const override;

  std::uint64_t current_round() const { return round_; }
  Value estimate() const { return est_; }

  /// Whitebox introspection for tests and the session stall diagnostics:
  /// which sub-protocol of the current round this process is waiting in.
  const char* phase_name() const {
    switch (phase_) {
      case Phase::kApproveEst: return "a1";
      case Phase::kCoin: return "coin";
      case Phase::kApprovePropose: return "a2";
      case Phase::kHalted: return "halted";
    }
    return "?";
  }
  const Approver* active_approver() const { return approver_.get(); }
  std::size_t backlog_size() const { return backlog_.size(); }
  std::uint64_t rounds_skipped() const { return rounds_skipped_; }
  bool decided_by_certificate() const { return decided_by_cert_; }

 private:
  enum class Phase { kApproveEst, kCoin, kApprovePropose, kHalted };

  std::string round_tag(std::uint64_t r) const {
    return cfg_.tag + "/" + std::to_string(r);
  }

  void begin_round(sim::Context& ctx);
  void on_vals(sim::Context& ctx, const std::set<Value>& vals);
  void on_coin(sim::Context& ctx, int c);
  void on_props(sim::Context& ctx, const std::set<Value>& props);
  void advance_round(sim::Context& ctx);
  void replay_backlog(sim::Context& ctx);
  bool offer(sim::Context& ctx, const sim::Message& msg);
  std::uint64_t tag_round(sim::Tag tag) const;
  /// Writes the round-boundary snapshot to stable storage.
  void persist_now(sim::Context& ctx);

  // Round-skip fallback (no-ops unless cfg_.skip_timeout > 0).
  bool skip_enabled() const { return cfg_.skip_timeout > 0; }
  bool is_skip_tag(sim::Tag tag) const;
  void arm_skip_timer(sim::Context& ctx);
  /// A current-round sub-instance consumed a message: the round is
  /// alive, so slide the skip deadline and forgive past attempts. Makes
  /// the timeout a *silence* detector rather than a latency bound —
  /// robust to pipelined sessions stretching healthy rounds.
  void note_progress(sim::Context& ctx);
  void send_skip_req(sim::Context& ctx);
  bool handle_skip_req(sim::Context& ctx, const sim::Message& msg);
  void execute_skip(sim::Context& ctx);
  void maybe_send_cert(sim::Context& ctx, sim::ProcessId to);
  bool handle_decided_cert(sim::Context& ctx, const sim::Message& msg);
  /// The a2 tag of round r — the committee-seed root certificate and
  /// lock oks verify against.
  std::string a2_tag(std::uint64_t r) const { return round_tag(r) + "/a2"; }
  /// A verified non-⊥ ok of the current round's a2 to forward as a lock:
  /// this process's own applied oks first, else a retained forwarded one.
  std::optional<Approver::AppliedOk> current_lock() const;
  /// insert().second over a growable sender bitmap (see Approver's).
  static bool mark_seen(std::vector<bool>& seen, crypto::ProcessId from);

  Config cfg_;
  Value initial_;  // recovery fallback when no snapshot survives
  Value est_;
  std::optional<int> decision_;
  std::uint64_t decision_round_ = 0;
  std::uint64_t round_ = 0;
  Phase phase_ = Phase::kApproveEst;
  Value propose_ = kBot;
  int coin_value_ = 0;

  std::unique_ptr<Approver> approver_;  // the active approver instance
  std::unique_ptr<coin::WhpCoin> coin_;

  // Completed sub-instances are retired here instead of being destroyed:
  // a phase transition fires from *inside* the old instance's handle()
  // frame, so destroying it there would be use-after-free. Drained at the
  // top of the next on_message, when no sub-instance frame is active.
  std::vector<std::unique_ptr<Approver>> retired_approvers_;
  std::vector<std::unique_ptr<coin::WhpCoin>> retired_coins_;

  // Messages for sub-instances that do not exist yet (future rounds /
  // later phases) — replayed on every phase change. Bounded by the total
  // traffic of max_rounds rounds.
  std::vector<sim::Message> backlog_;

  // --- Round-skip fallback state (all dormant when skip_timeout == 0).
  sim::Tag tag_decided_;              // "<tag>/decided", round-independent
  sim::Tag tag_skip_;                 // "<tag>/<round_>/skip", per round
  std::vector<bool> skip_seen_;       // distinct skip-req senders, this round
  std::uint32_t skip_count_ = 0;
  bool sent_skip_ = false;
  std::uint32_t skip_attempts_ = 0;
  std::uint64_t armed_round_ = 0;     // round the pending wakeup watches
  std::uint64_t skip_deadline_ = 0;   // now() at which the timer is due:
                                      // hosts (InstanceMux) fan wakeups to
                                      // every instance, so each filters
                                      // ticks meant for a sibling
  std::uint64_t next_wakeup_at_ = 0;  // tick of this instance's own live
                                      // wakeup chain (one per instance)
  std::uint32_t lock_checks_ = 0;     // forwarded-lock verifications, per round
  std::optional<Approver::AppliedOk> fwd_lock_;  // verified forwarded lock
  std::uint64_t rounds_skipped_ = 0;
  bool decided_by_cert_ = false;
  // Decision certificate: the W applied oks that formed props = {v}, or
  // the entries of an accepted forwarded certificate. Retained payloads.
  std::vector<Approver::AppliedOk> cert_oks_;
  std::uint64_t cert_round_ = 0;      // a2 round the certificate verifies in
  std::vector<bool> certed_;          // requesters already answered
  std::vector<bool> cert_rejected_;   // senders of invalid certificates
};

}  // namespace coincidence::ba
