// Binary agreement values. The approver additionally transports ⊥
// (Algorithm 4 proposes ⊥ when its first approver returns a non-
// singleton), so the wire value domain is {0, 1, ⊥}.
#pragma once

#include <cstdint>
#include <string>

namespace coincidence::ba {

using Value = std::uint8_t;
inline constexpr Value kZero = 0;
inline constexpr Value kOne = 1;
inline constexpr Value kBot = 2;  // the paper's ⊥

inline bool is_binary(Value v) { return v == kZero || v == kOne; }
inline bool is_valid_value(Value v) { return v <= kBot; }

inline std::string value_name(Value v) {
  switch (v) {
    case kZero: return "0";
    case kOne: return "1";
    case kBot: return "bot";
    default: return "invalid";
  }
}

}  // namespace coincidence::ba
