#include "ba/ba_whp.h"

#include <algorithm>

#include "common/errors.h"
#include "common/ser.h"
#include "sim/snapshot.h"

namespace coincidence::ba {

namespace {
constexpr std::string_view kSnapshotKind = "ba-whp";
constexpr std::uint32_t kSnapshotVersion = 1;
// Bound on verifications of forwarded skip-req locks per round: a lock
// costs a full ok-proof sweep, so Byzantine-crafted junk locks must not
// turn every skip-req into W signature checks.
constexpr std::uint32_t kMaxLockChecks = 4;
// Word accounting for the fallback plane. A bare skip-req is one word; a
// lock or certificate entry repeats one <ok> (2 + 2W words, §6.1) plus
// its claimed sender.
std::size_t ok_entry_words(std::size_t W) { return 1 + 2 + 2 * W; }
}  // namespace

BaWhp::BaWhp(Config cfg, Value initial)
    : cfg_(std::move(cfg)), initial_(initial), est_(initial) {
  COIN_REQUIRE(is_binary(initial), "BaWhp: initial value must be 0 or 1");
  COIN_REQUIRE(cfg_.vrf && cfg_.registry && cfg_.sampler && cfg_.signer,
               "BaWhp: missing crypto environment");
  if (skip_enabled()) {
    tag_decided_ = sim::Tag(cfg_.tag + "/decided");
    skip_seen_.resize(cfg_.params.n, false);
    certed_.resize(cfg_.params.n, false);
    cert_rejected_.resize(cfg_.params.n, false);
  }
}

int BaWhp::decision() const {
  COIN_REQUIRE(decision_.has_value(), "BaWhp: not decided yet");
  return *decision_;
}

std::uint64_t BaWhp::decided_round() const {
  COIN_REQUIRE(decision_.has_value(), "BaWhp: not decided yet");
  return decision_round_;
}

void BaWhp::on_start(sim::Context& ctx) {
  persist_now(ctx);
  begin_round(ctx);
}

void BaWhp::persist_now(sim::Context& ctx) {
  // Round-boundary snapshot: everything a restart needs to resume
  // safely. Mid-round progress (approver sets, coin queues) is
  // deliberately NOT persisted — losing it re-runs the round, which the
  // protocol tolerates; persisting it would have to capture sub-instance
  // crypto state too.
  Writer w;
  w.u64(round_);
  w.u8(static_cast<std::uint8_t>(est_));
  w.u8(decision_ ? 1 : 0);
  w.u8(decision_ ? static_cast<std::uint8_t>(*decision_) : 0);
  w.u64(decision_round_);
  ctx.persist(
      sim::StateSnapshot::pack(kSnapshotKind, kSnapshotVersion, w.take()));
}

void BaWhp::on_recover(sim::Context& ctx, const Bytes& snapshot) {
  // RAM is gone: drop every sub-instance and buffer. Destroying a coin
  // mid-round settles its deferred verify queue as discarded-unverified
  // (see WhpCoin::~WhpCoin), so the BatchVerifier ledger stays exact.
  est_ = initial_;
  decision_.reset();
  decision_round_ = 0;
  round_ = 0;
  phase_ = Phase::kApproveEst;
  propose_ = kBot;
  coin_value_ = 0;
  approver_.reset();
  coin_.reset();
  retired_approvers_.clear();
  retired_coins_.clear();
  backlog_.clear();
  if (skip_enabled()) {
    skip_seen_.assign(skip_seen_.size(), false);
    skip_count_ = 0;
    sent_skip_ = false;
    skip_attempts_ = 0;
    next_wakeup_at_ = 0;  // wakeups died with the crash (epoch bump)
    lock_checks_ = 0;
    fwd_lock_.reset();
    decided_by_cert_ = false;
    cert_oks_.clear();
    cert_round_ = 0;
    certed_.assign(certed_.size(), false);
    cert_rejected_.assign(cert_rejected_.size(), false);
  }

  Bytes state;
  if (sim::StateSnapshot::unpack(snapshot, kSnapshotKind, kSnapshotVersion,
                                 state)) {
    try {
      Reader r(state);
      const std::uint64_t round = r.u64();
      const auto est = static_cast<Value>(r.u8());
      const bool has_decision = r.u8() != 0;
      const auto decision = static_cast<int>(r.u8());
      const std::uint64_t decision_round = r.u64();
      r.done();
      if (is_binary(est)) {
        round_ = round;
        est_ = est;
        if (has_decision) {
          decision_ = decision;
          decision_round_ = decision_round;
        }
      }
    } catch (const CodecError&) {
      // Corrupt snapshot: stable storage is untrusted input; restart
      // from the initial value instead of misparsing.
    }
  }
  begin_round(ctx);
}

void BaWhp::begin_round(sim::Context& ctx) {
  // Halting rule: participate through round decided+extra_rounds, then
  // stop — one extra round is what Lemma 6.16 needs whp; the rest is
  // slack for the whp-failure tail.
  if ((decision_ && round_ > decision_round_ + cfg_.extra_rounds) ||
      round_ >= cfg_.max_rounds) {
    phase_ = Phase::kHalted;
    if (approver_) retired_approvers_.push_back(std::move(approver_));
    if (coin_) retired_coins_.push_back(std::move(coin_));
    return;
  }

  phase_ = Phase::kApproveEst;
  if (approver_) retired_approvers_.push_back(std::move(approver_));
  if (coin_) retired_coins_.push_back(std::move(coin_));
  if (skip_enabled()) {
    tag_skip_ = sim::Tag(round_tag(round_) + "/skip");
    skip_seen_.assign(skip_seen_.size(), false);
    skip_count_ = 0;
    sent_skip_ = false;
    skip_attempts_ = 0;
    lock_checks_ = 0;
    fwd_lock_.reset();
    if (!decision_) arm_skip_timer(ctx);
  }
  Approver::Config acfg;
  acfg.tag = round_tag(round_) + "/a1";
  acfg.params = cfg_.params;
  acfg.registry = cfg_.registry;
  acfg.sampler = cfg_.sampler;
  acfg.signer = cfg_.signer;
  acfg.batcher = cfg_.batcher;
  approver_ = std::make_unique<Approver>(
      acfg, est_,
      [this, &ctx](const std::set<Value>& vals) { on_vals(ctx, vals); });
  approver_->start(ctx);
  replay_backlog(ctx);
}

void BaWhp::on_vals(sim::Context& ctx, const std::set<Value>& vals) {
  // Line 6–8: propose the singleton value or ⊥.
  propose_ = vals.size() == 1 ? *vals.begin() : kBot;

  phase_ = Phase::kCoin;
  coin::WhpCoin::Config ccfg;
  ccfg.tag = round_tag(round_) + "/coin";
  ccfg.round = round_;
  ccfg.params = cfg_.params;
  ccfg.vrf = cfg_.vrf;
  ccfg.registry = cfg_.registry;
  ccfg.sampler = cfg_.sampler;
  ccfg.batcher = cfg_.batcher;
  coin_ = std::make_unique<coin::WhpCoin>(
      ccfg, [this, &ctx](int c) { on_coin(ctx, c); });
  coin_->start(ctx);
  replay_backlog(ctx);
}

void BaWhp::on_coin(sim::Context& ctx, int c) {
  coin_value_ = c;

  phase_ = Phase::kApprovePropose;
  if (approver_) retired_approvers_.push_back(std::move(approver_));
  Approver::Config acfg;
  acfg.tag = round_tag(round_) + "/a2";
  acfg.params = cfg_.params;
  acfg.registry = cfg_.registry;
  acfg.sampler = cfg_.sampler;
  acfg.signer = cfg_.signer;
  acfg.batcher = cfg_.batcher;
  approver_ = std::make_unique<Approver>(
      acfg, propose_,
      [this, &ctx](const std::set<Value>& props) { on_props(ctx, props); });
  approver_->start(ctx);
  replay_backlog(ctx);
}

void BaWhp::on_props(sim::Context& ctx, const std::set<Value>& props) {
  if (props.size() == 1 && *props.begin() != kBot) {
    Value v = *props.begin();
    est_ = v;
    if (!decision_) {
      decision_ = static_cast<int>(v);
      decision_round_ = round_;
      ctx.note_decide(cfg_.tag, *decision_, round_);
      if (skip_enabled() && approver_) {
        // Retain the W applied oks (props = {v} means all of them carry
        // v) as the decision certificate handed to skip-req senders.
        cert_round_ = round_;
        cert_oks_.clear();
        for (const Approver::AppliedOk& ok : approver_->applied_oks())
          if (ok.v == v) cert_oks_.push_back(ok);
        if (cert_oks_.size() < cfg_.params.W) cert_oks_.clear();
      }
    }
  } else if (props.size() == 1 && *props.begin() == kBot) {
    est_ = static_cast<Value>(coin_value_);
  } else {
    // props = {v, ⊥}: adopt the non-⊥ value.
    for (Value v : props)
      if (v != kBot) est_ = v;
  }

  advance_round(ctx);
}

void BaWhp::advance_round(sim::Context& ctx) {
  ++round_;
  ctx.note_round(round_);
  persist_now(ctx);
  begin_round(ctx);
}

void BaWhp::replay_backlog(sim::Context& ctx) {
  // Re-offer buffered messages to the (new) active sub-instance. A single
  // pass suffices per phase change: offer() re-buffers what still doesn't
  // match, and completion callbacks re-enter via begin_round/on_* which
  // call replay_backlog again. Messages of rounds already passed can
  // never match again and are dropped.
  std::vector<sim::Message> pending;
  pending.swap(backlog_);
  for (auto& msg : pending) {
    if (phase_ == Phase::kHalted) break;
    if (tag_round(msg.tag) < round_) continue;  // stale round
    offer(ctx, msg);
  }
}

std::uint64_t BaWhp::tag_round(sim::Tag t) const {
  // Tags look like "<cfg_.tag>/<round>/..."; unparseable tags map to the
  // current round so they are never pruned prematurely. str() is a
  // reference into the interner — no allocation on the message path.
  const std::string& tag = t.str();
  std::size_t base = cfg_.tag.size();
  if (tag.size() <= base + 1 || tag.compare(0, base, cfg_.tag) != 0 ||
      tag[base] != '/')
    return round_;
  std::uint64_t r = 0;
  std::size_t i = base + 1;
  bool any = false;
  while (i < tag.size() && tag[i] >= '0' && tag[i] <= '9') {
    r = r * 10 + static_cast<std::uint64_t>(tag[i] - '0');
    ++i;
    any = true;
  }
  return any ? r : round_;
}

bool BaWhp::offer(sim::Context& ctx, const sim::Message& msg) {
  // Fallback-plane tags route outside the round sub-instances: a
  // certificate is round-independent, a skip-req is counted (or
  // backlogged / answered with a certificate) by round.
  if (skip_enabled()) {
    if (msg.tag == tag_decided_) return handle_decided_cert(ctx, msg);
    if (is_skip_tag(msg.tag)) return handle_skip_req(ctx, msg);
  }
  // Byzantine senders must not grow the backlog without bound: tags
  // naming rounds beyond the protocol horizon are dropped outright.
  if (tag_round(msg.tag) >= cfg_.max_rounds) return false;
  // Retired rounds are gone for good — their sub-instances (and deferred
  // verify queues) were destroyed, and a share re-delivered after a
  // crash-recovery must not re-enter a fresh PendingVerifyQueue for a
  // round this process already finished.
  if (tag_round(msg.tag) < round_) return false;
  // Try the live sub-instances for the *current* phase; stash otherwise.
  // Every consumed message is progress: the round is demonstrably alive,
  // so the skip deadline slides instead of firing mid-round under load
  // (concurrent slots stretch a healthy round's wall-clock far beyond
  // any fixed budget). A wedged round goes instance-silent — no ok can
  // ever arrive — and only then does the timer run out.
  if (phase_ == Phase::kApproveEst || phase_ == Phase::kApprovePropose) {
    if (approver_ && approver_->handle(ctx, msg)) {
      note_progress(ctx);
      return true;
    }
  } else if (phase_ == Phase::kCoin) {
    if (coin_ && coin_->handle(ctx, msg)) {
      note_progress(ctx);
      return true;
    }
  }
  if (phase_ != Phase::kHalted) {
    backlog_.push_back(msg);
    // Backlogged traffic is progress too: a current-round message we are
    // not ready for (a1 echoes while we wait in the coin, say) or a
    // faster peer's next-round traffic both prove the instance is being
    // fed. A genuinely wedged round drains to *silence* — no sub-round
    // message of any phase can arrive once the in-flight pool empties —
    // and only that silence lets the skip deadline run out.
    note_progress(ctx);
  }
  return false;
}

void BaWhp::on_message(sim::Context& ctx, const sim::Message& msg) {
  // Safe point: no sub-instance handle() frame is active here.
  retired_approvers_.clear();
  retired_coins_.clear();
  if (phase_ == Phase::kHalted) {
    // A halted decider still answers skip-reqs with its decision
    // certificate — without this, a straggler wedged in an old round
    // could be stranded forever by deciders that moved on and halted.
    if (skip_enabled() && decision_ && is_skip_tag(msg.tag))
      maybe_send_cert(ctx, msg.from);
    return;
  }
  offer(ctx, msg);
}

// ----------------------------------------------- round-skip fallback --

bool BaWhp::is_skip_tag(sim::Tag tag) const {
  if (tag == tag_skip_) return true;  // current round, one id compare
  constexpr std::string_view kSuffix = "/skip";
  const std::string& t = tag.str();
  if (t.size() <= cfg_.tag.size() + kSuffix.size()) return false;
  if (t.compare(0, cfg_.tag.size(), cfg_.tag) != 0 ||
      t[cfg_.tag.size()] != '/')
    return false;
  return t.compare(t.size() - kSuffix.size(), kSuffix.size(), kSuffix) == 0;
}

void BaWhp::arm_skip_timer(sim::Context& ctx) {
  armed_round_ = round_;
  skip_deadline_ = ctx.now() + cfg_.skip_timeout;
  next_wakeup_at_ = skip_deadline_;
  ctx.schedule_wakeup(cfg_.skip_timeout);
}

void BaWhp::note_progress(sim::Context& ctx) {
  if (!skip_enabled() || decision_ || phase_ == Phase::kHalted) return;
  // The deadline slides; the pending wakeup is NOT rescheduled here (that
  // would enqueue one timer per message). When the stale wakeup fires
  // early it renews itself for the remainder — see on_wakeup.
  skip_deadline_ = ctx.now() + cfg_.skip_timeout;
  skip_attempts_ = 0;  // a live round owes nothing to the attempt cap
}

void BaWhp::on_wakeup(sim::Context& ctx) {
  // Serial callback — a safe point exactly like on_message.
  retired_approvers_.clear();
  retired_coins_.clear();
  if (!skip_enabled() || phase_ == Phase::kHalted || decision_) return;
  if (round_ != armed_round_) return;  // round moved on; its timer is live
  if (skip_attempts_ >= cfg_.skip_max_attempts) return;
  const std::uint64_t now = ctx.now();
  if (now < skip_deadline_) {
    // Either a sibling instance's tick (our own chain is still pending:
    // next_wakeup_at_ > now — nothing to do) or our chain fired under a
    // deadline that progress pushed out — renew it for the remainder,
    // keeping exactly one live chain per instance.
    if (next_wakeup_at_ <= now) {
      next_wakeup_at_ = skip_deadline_;
      ctx.schedule_wakeup(skip_deadline_ - now);
    }
    return;
  }
  ++skip_attempts_;
  send_skip_req(ctx);
  arm_skip_timer(ctx);
}

std::optional<Approver::AppliedOk> BaWhp::current_lock() const {
  // Only a2 oks are meaningful locks: they are what a round-r decision
  // would have been built from. a1 oks verify against different seeds.
  if (phase_ == Phase::kApprovePropose && approver_) {
    for (const Approver::AppliedOk& ok : approver_->applied_oks())
      if (ok.v != kBot) return ok;
  }
  return fwd_lock_;
}

void BaWhp::send_skip_req(sim::Context& ctx) {
  sent_skip_ = true;
  Writer w;
  std::optional<Approver::AppliedOk> lock = current_lock();
  if (lock) {
    w.u8(1).u8(lock->v).u32(lock->sender).blob(lock->buf);
  } else {
    w.u8(0);
  }
  ctx.broadcast(tag_skip_, w.take(),
                lock ? ok_entry_words(cfg_.params.W) : 1);
}

bool BaWhp::handle_skip_req(sim::Context& ctx, const sim::Message& msg) {
  const std::uint64_t r = tag_round(msg.tag);
  if (r >= cfg_.max_rounds) return true;  // horizon guard, as in offer()
  // A decided process answers every skip-req — whatever its round — with
  // its certificate: the requester is stuck and the certificate ends its
  // instance outright.
  if (decision_) maybe_send_cert(ctx, msg.from);
  if (r > round_) {  // future round: count it when we get there
    backlog_.push_back(msg);
    return false;
  }
  if (r < round_) return true;  // stale; this round was already left
  if (!mark_seen(skip_seen_, msg.from)) return true;
  ++skip_count_;

  // Lock forwarding: adopt (after full verification) one non-⊥ ok of the
  // dying round as the est to re-propose. Bounded per round so junk
  // locks cannot buy CPU.
  if (!decision_ && !fwd_lock_ && lock_checks_ < kMaxLockChecks) {
    try {
      Reader rd(msg.payload);
      if (rd.u8() == 1) {
        const Value v = rd.u8();
        const crypto::ProcessId ok_sender = rd.u32();
        BytesView ok_payload = rd.blob_view();
        rd.done();
        if (is_binary(v)) {
          ++lock_checks_;
          std::optional<Value> verified = Approver::verify_ok_payload(
              *cfg_.sampler, *cfg_.signer, cfg_.params, a2_tag(round_),
              ok_sender, ok_payload);
          if (verified && *verified == v)
            fwd_lock_ = Approver::AppliedOk{
                ok_sender, v, SharedBytes::copy_of(ok_payload)};
        }
      }
    } catch (const CodecError&) {
      return true;  // malformed skip-req: ignore entirely
    }
  }

  const std::uint64_t f = cfg_.params.f;
  if (!sent_skip_ && skip_count_ >= f + 1) send_skip_req(ctx);
  if (skip_count_ >= 2 * f + 1) execute_skip(ctx);
  return true;
}

void BaWhp::execute_skip(sim::Context& ctx) {
  // 2f+1 distinct processes vouch that round round_ is not progressing:
  // abandon it and retry with the fresh committees of the next round.
  // est adopts a verified non-⊥ ok of the dying round when one is known
  // (own applied oks first, else the forwarded lock) so a decision that
  // was brewing gets re-proposed.
  if (!decision_) {
    if (std::optional<Approver::AppliedOk> lock = current_lock())
      est_ = lock->v;
  }
  ++rounds_skipped_;
  propose_ = kBot;
  advance_round(ctx);
}

void BaWhp::maybe_send_cert(sim::Context& ctx, sim::ProcessId to) {
  const std::size_t W = cfg_.params.W;
  if (!decision_ || cert_oks_.size() < W) return;
  if (to >= certed_.size()) certed_.resize(to + 1, false);
  if (certed_[to]) return;  // once per requester: spam cannot amplify
  certed_[to] = true;
  Writer w;
  w.u64(cert_round_);
  w.u8(static_cast<std::uint8_t>(*decision_));
  w.u32(static_cast<std::uint32_t>(W));
  for (std::size_t i = 0; i < W; ++i) {
    w.u32(cert_oks_[i].sender);
    w.blob(cert_oks_[i].buf);
  }
  ctx.send(to, tag_decided_, w.take(), 2 + W * ok_entry_words(W));
}

bool BaWhp::handle_decided_cert(sim::Context& ctx, const sim::Message& msg) {
  if (decision_) return true;
  if (msg.from < cert_rejected_.size() && cert_rejected_[msg.from])
    return true;

  const std::size_t W = cfg_.params.W;
  std::uint64_t r = 0;
  Value v = kBot;
  std::vector<std::pair<crypto::ProcessId, BytesView>> entries;
  try {
    Reader rd(msg.payload);
    r = rd.u64();
    v = rd.u8();
    const std::uint32_t count = rd.u32();
    if (count != W) throw CodecError("cert arity");
    entries.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      const crypto::ProcessId sender = rd.u32();
      entries.emplace_back(sender, rd.blob_view());
    }
    rd.done();
  } catch (const CodecError&) {
    mark_seen(cert_rejected_, msg.from);
    return true;
  }

  // W *distinct* verified oks, all carrying v, from round r's second
  // approver — exactly the props = {v} evidence a direct decision needs.
  bool valid = is_binary(v) && r < cfg_.max_rounds;
  if (valid) {
    std::vector<crypto::ProcessId> ids;
    ids.reserve(entries.size());
    for (const auto& [sender, payload] : entries) ids.push_back(sender);
    std::sort(ids.begin(), ids.end());
    valid = std::adjacent_find(ids.begin(), ids.end()) == ids.end();
  }
  const std::string tag = a2_tag(r);
  for (std::size_t i = 0; valid && i < entries.size(); ++i) {
    std::optional<Value> verified = Approver::verify_ok_payload(
        *cfg_.sampler, *cfg_.signer, cfg_.params, tag, entries[i].first,
        entries[i].second);
    valid = verified.has_value() && *verified == v;
  }
  if (!valid) {
    mark_seen(cert_rejected_, msg.from);
    return true;
  }

  est_ = v;
  decision_ = static_cast<int>(v);
  decision_round_ = r;
  decided_by_cert_ = true;
  cert_round_ = r;
  cert_oks_.clear();
  for (const auto& [sender, payload] : entries)
    cert_oks_.push_back(
        Approver::AppliedOk{sender, v, SharedBytes::copy_of(payload)});
  ctx.note_decide(cfg_.tag, *decision_, r);
  persist_now(ctx);
  return true;
}

bool BaWhp::mark_seen(std::vector<bool>& seen, crypto::ProcessId from) {
  if (from >= seen.size()) seen.resize(from + 1, false);
  if (seen[from]) return false;
  seen[from] = true;
  return true;
}

}  // namespace coincidence::ba
