#include "ba/ba_whp.h"

#include "common/errors.h"
#include "common/ser.h"
#include "sim/snapshot.h"

namespace coincidence::ba {

namespace {
constexpr std::string_view kSnapshotKind = "ba-whp";
constexpr std::uint32_t kSnapshotVersion = 1;
}  // namespace

BaWhp::BaWhp(Config cfg, Value initial)
    : cfg_(std::move(cfg)), initial_(initial), est_(initial) {
  COIN_REQUIRE(is_binary(initial), "BaWhp: initial value must be 0 or 1");
  COIN_REQUIRE(cfg_.vrf && cfg_.registry && cfg_.sampler && cfg_.signer,
               "BaWhp: missing crypto environment");
}

int BaWhp::decision() const {
  COIN_REQUIRE(decision_.has_value(), "BaWhp: not decided yet");
  return *decision_;
}

std::uint64_t BaWhp::decided_round() const {
  COIN_REQUIRE(decision_.has_value(), "BaWhp: not decided yet");
  return decision_round_;
}

void BaWhp::on_start(sim::Context& ctx) {
  persist_now(ctx);
  begin_round(ctx);
}

void BaWhp::persist_now(sim::Context& ctx) {
  // Round-boundary snapshot: everything a restart needs to resume
  // safely. Mid-round progress (approver sets, coin queues) is
  // deliberately NOT persisted — losing it re-runs the round, which the
  // protocol tolerates; persisting it would have to capture sub-instance
  // crypto state too.
  Writer w;
  w.u64(round_);
  w.u8(static_cast<std::uint8_t>(est_));
  w.u8(decision_ ? 1 : 0);
  w.u8(decision_ ? static_cast<std::uint8_t>(*decision_) : 0);
  w.u64(decision_round_);
  ctx.persist(
      sim::StateSnapshot::pack(kSnapshotKind, kSnapshotVersion, w.take()));
}

void BaWhp::on_recover(sim::Context& ctx, const Bytes& snapshot) {
  // RAM is gone: drop every sub-instance and buffer. Destroying a coin
  // mid-round settles its deferred verify queue as discarded-unverified
  // (see WhpCoin::~WhpCoin), so the BatchVerifier ledger stays exact.
  est_ = initial_;
  decision_.reset();
  decision_round_ = 0;
  round_ = 0;
  phase_ = Phase::kApproveEst;
  propose_ = kBot;
  coin_value_ = 0;
  approver_.reset();
  coin_.reset();
  retired_approvers_.clear();
  retired_coins_.clear();
  backlog_.clear();

  Bytes state;
  if (sim::StateSnapshot::unpack(snapshot, kSnapshotKind, kSnapshotVersion,
                                 state)) {
    try {
      Reader r(state);
      const std::uint64_t round = r.u64();
      const auto est = static_cast<Value>(r.u8());
      const bool has_decision = r.u8() != 0;
      const auto decision = static_cast<int>(r.u8());
      const std::uint64_t decision_round = r.u64();
      r.done();
      if (is_binary(est)) {
        round_ = round;
        est_ = est;
        if (has_decision) {
          decision_ = decision;
          decision_round_ = decision_round;
        }
      }
    } catch (const CodecError&) {
      // Corrupt snapshot: stable storage is untrusted input; restart
      // from the initial value instead of misparsing.
    }
  }
  begin_round(ctx);
}

void BaWhp::begin_round(sim::Context& ctx) {
  // Halting rule: participate through round decided+extra_rounds, then
  // stop — one extra round is what Lemma 6.16 needs whp; the rest is
  // slack for the whp-failure tail.
  if ((decision_ && round_ > decision_round_ + cfg_.extra_rounds) ||
      round_ >= cfg_.max_rounds) {
    phase_ = Phase::kHalted;
    if (approver_) retired_approvers_.push_back(std::move(approver_));
    if (coin_) retired_coins_.push_back(std::move(coin_));
    return;
  }

  phase_ = Phase::kApproveEst;
  if (approver_) retired_approvers_.push_back(std::move(approver_));
  if (coin_) retired_coins_.push_back(std::move(coin_));
  Approver::Config acfg;
  acfg.tag = round_tag(round_) + "/a1";
  acfg.params = cfg_.params;
  acfg.registry = cfg_.registry;
  acfg.sampler = cfg_.sampler;
  acfg.signer = cfg_.signer;
  acfg.batcher = cfg_.batcher;
  approver_ = std::make_unique<Approver>(
      acfg, est_,
      [this, &ctx](const std::set<Value>& vals) { on_vals(ctx, vals); });
  approver_->start(ctx);
  replay_backlog(ctx);
}

void BaWhp::on_vals(sim::Context& ctx, const std::set<Value>& vals) {
  // Line 6–8: propose the singleton value or ⊥.
  propose_ = vals.size() == 1 ? *vals.begin() : kBot;

  phase_ = Phase::kCoin;
  coin::WhpCoin::Config ccfg;
  ccfg.tag = round_tag(round_) + "/coin";
  ccfg.round = round_;
  ccfg.params = cfg_.params;
  ccfg.vrf = cfg_.vrf;
  ccfg.registry = cfg_.registry;
  ccfg.sampler = cfg_.sampler;
  ccfg.batcher = cfg_.batcher;
  coin_ = std::make_unique<coin::WhpCoin>(
      ccfg, [this, &ctx](int c) { on_coin(ctx, c); });
  coin_->start(ctx);
  replay_backlog(ctx);
}

void BaWhp::on_coin(sim::Context& ctx, int c) {
  coin_value_ = c;

  phase_ = Phase::kApprovePropose;
  if (approver_) retired_approvers_.push_back(std::move(approver_));
  Approver::Config acfg;
  acfg.tag = round_tag(round_) + "/a2";
  acfg.params = cfg_.params;
  acfg.registry = cfg_.registry;
  acfg.sampler = cfg_.sampler;
  acfg.signer = cfg_.signer;
  acfg.batcher = cfg_.batcher;
  approver_ = std::make_unique<Approver>(
      acfg, propose_,
      [this, &ctx](const std::set<Value>& props) { on_props(ctx, props); });
  approver_->start(ctx);
  replay_backlog(ctx);
}

void BaWhp::on_props(sim::Context& ctx, const std::set<Value>& props) {
  if (props.size() == 1 && *props.begin() != kBot) {
    Value v = *props.begin();
    est_ = v;
    if (!decision_) {
      decision_ = static_cast<int>(v);
      decision_round_ = round_;
      ctx.note_decide(cfg_.tag, *decision_, round_);
    }
  } else if (props.size() == 1 && *props.begin() == kBot) {
    est_ = static_cast<Value>(coin_value_);
  } else {
    // props = {v, ⊥}: adopt the non-⊥ value.
    for (Value v : props)
      if (v != kBot) est_ = v;
  }

  ++round_;
  ctx.note_round(round_);
  persist_now(ctx);
  begin_round(ctx);
}

void BaWhp::replay_backlog(sim::Context& ctx) {
  // Re-offer buffered messages to the (new) active sub-instance. A single
  // pass suffices per phase change: offer() re-buffers what still doesn't
  // match, and completion callbacks re-enter via begin_round/on_* which
  // call replay_backlog again. Messages of rounds already passed can
  // never match again and are dropped.
  std::vector<sim::Message> pending;
  pending.swap(backlog_);
  for (auto& msg : pending) {
    if (phase_ == Phase::kHalted) break;
    if (tag_round(msg.tag) < round_) continue;  // stale round
    offer(ctx, msg);
  }
}

std::uint64_t BaWhp::tag_round(sim::Tag t) const {
  // Tags look like "<cfg_.tag>/<round>/..."; unparseable tags map to the
  // current round so they are never pruned prematurely. str() is a
  // reference into the interner — no allocation on the message path.
  const std::string& tag = t.str();
  std::size_t base = cfg_.tag.size();
  if (tag.size() <= base + 1 || tag.compare(0, base, cfg_.tag) != 0 ||
      tag[base] != '/')
    return round_;
  std::uint64_t r = 0;
  std::size_t i = base + 1;
  bool any = false;
  while (i < tag.size() && tag[i] >= '0' && tag[i] <= '9') {
    r = r * 10 + static_cast<std::uint64_t>(tag[i] - '0');
    ++i;
    any = true;
  }
  return any ? r : round_;
}

bool BaWhp::offer(sim::Context& ctx, const sim::Message& msg) {
  // Byzantine senders must not grow the backlog without bound: tags
  // naming rounds beyond the protocol horizon are dropped outright.
  if (tag_round(msg.tag) >= cfg_.max_rounds) return false;
  // Retired rounds are gone for good — their sub-instances (and deferred
  // verify queues) were destroyed, and a share re-delivered after a
  // crash-recovery must not re-enter a fresh PendingVerifyQueue for a
  // round this process already finished.
  if (tag_round(msg.tag) < round_) return false;
  // Try the live sub-instances for the *current* phase; stash otherwise.
  if (phase_ == Phase::kApproveEst || phase_ == Phase::kApprovePropose) {
    if (approver_ && approver_->handle(ctx, msg)) return true;
  } else if (phase_ == Phase::kCoin) {
    if (coin_ && coin_->handle(ctx, msg)) return true;
  }
  if (phase_ != Phase::kHalted) backlog_.push_back(msg);
  return false;
}

void BaWhp::on_message(sim::Context& ctx, const sim::Message& msg) {
  // Safe point: no sub-instance handle() frame is active here.
  retired_approvers_.clear();
  retired_coins_.clear();
  if (phase_ == Phase::kHalted) return;
  offer(ctx, msg);
}

}  // namespace coincidence::ba
