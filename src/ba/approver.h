// Algorithm 3: the committee-based approver (an adaptation of MMR's
// SBV-broadcast to committees).
//
// Three phases, four committees (Fig. 1): init, echo(0)/echo(1) — one
// echo committee *per value* so a correct member broadcasts at most once
// per role (process replaceability) — and ok.
//
//   init  member:  broadcast <init, v_input>
//   echo(v) member: on <init, v> from B+1 distinct senders,
//                   broadcast a *signed* <echo, v>
//   ok    member:  on <echo, v> from W distinct echo(v) members, if no
//                   <ok, *> sent yet, broadcast <ok, v> carrying the W
//                   signed echoes as a validity proof
//   everyone:      on <ok, *> from W distinct valid senders, return the
//                   set of values carried
//
// Under Assumption 1 (correct processes invoke with <= 2 distinct values)
// this satisfies validity, graded agreement and termination whp
// (Lemmas 6.2–6.4). Word complexity O(nλ²) — the λ² comes from the W
// signatures inside each ok message.
//
// Hot-path notes (the ba_whp throughput tentpole): echo payload fields
// are retained as SharedBytes aliases of the delivered buffer (never deep
// copied), the <echo,v> signing strings are hoisted into members, all
// per-value/per-sender tracking uses flat arrays and bitmaps, and — when
// a coin::BatchVerifier is configured — the W-signature sweep of each
// <ok> is deferred into a pending queue flushed at threshold/watermark,
// where the run-wide SigMemo collapses the n·W redundant HMAC checks to
// ~W (every ok embeds the SAME signed echoes). Accept/reject sets and
// all protocol state evolution are bit-identical to inline verification.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "ba/value.h"
#include "coin/verify_queue.h"
#include "committee/params.h"
#include "committee/sampler.h"
#include "crypto/key_registry.h"
#include "crypto/signer.h"
#include "sim/process.h"

namespace coincidence::ba {

class Approver {
 public:
  struct Config {
    std::string tag;  // instance routing prefix (and committee seed root)
    committee::Params params;
    std::shared_ptr<const crypto::KeyRegistry> registry;
    std::shared_ptr<const committee::Sampler> sampler;
    std::shared_ptr<const crypto::Signer> signer;
    /// When set, the W+1 election proofs inside each <ok> message are
    /// checked in one committee_val_batch call (folded multi-exp + memo),
    /// the W HMAC echo signatures are deferred into a pending-ok queue
    /// flushed through BatchVerifier::verify_signatures (SigMemo-dedup'd
    /// across ok messages and receivers), and echo signatures answer from
    /// the same memo. Accept/reject verdicts are identical either way —
    /// committee_val and HMAC verification are pure.
    std::shared_ptr<coin::BatchVerifier> batcher;
  };

  using DoneFn = std::function<void(const std::set<Value>&)>;

  /// A verified <ok> this approver counted toward its W threshold. The
  /// buffer is the raw ok payload (refcount-retained), so it can be
  /// re-verified by third parties: ba_whp forwards applied oks as
  /// round-skip locks and decision certificates.
  struct AppliedOk {
    crypto::ProcessId sender = 0;
    Value v = kZero;
    SharedBytes buf;
  };

  /// `input` is this process's approve() argument (0, 1 or ⊥).
  Approver(Config cfg, Value input, DoneFn on_done = {});
  ~Approver();

  void start(sim::Context& ctx);
  bool handle(sim::Context& ctx, const sim::Message& msg);
  bool done() const { return done_; }
  /// The non-empty returned set; requires done().
  const std::set<Value>& output() const;

  /// The verified oks applied so far, in application order (at most W).
  const std::vector<AppliedOk>& applied_oks() const { return applied_oks_; }

  /// Stateless re-verification of a forwarded <ok> payload, exactly the
  /// inline path of handle_ok: parse, W distinct embedded senders, the
  /// sender's ok election, the W echo elections, the W echo signatures.
  /// `approver_tag` names the instance the ok claims to come from (its
  /// committee-seed root, e.g. "slot7/0/a2"); `sender` is the claimed ok
  /// broadcaster, bound by its election proof. Returns the carried value
  /// on full success.
  static std::optional<Value> verify_ok_payload(
      const committee::Sampler& sampler, const crypto::Signer& signer,
      const committee::Params& params, const std::string& approver_tag,
      crypto::ProcessId sender, BytesView payload);

  /// Whitebox accessors for tests.
  bool in_init_committee() const { return in_init_; }
  bool in_ok_committee() const { return in_ok_; }
  bool sent_ok() const { return sent_ok_; }
  std::size_t pending_oks() const { return pending_oks_.size(); }

 private:
  /// A collected signed echo. `buf` aliases the delivered message buffer
  /// (refcount bump), keeping the two views alive without a deep copy.
  struct SignedEcho {
    crypto::ProcessId sender = 0;
    SharedBytes buf;
    BytesView signature;
    BytesView election_proof;
  };

  /// One ok-proof entry, borrowed from a retained message buffer.
  struct OkProofEntry {
    crypto::ProcessId sender = 0;
    BytesView signature;
    BytesView election_proof;
  };

  /// A decoded <ok> awaiting its deferred verification sweep. Its W
  /// proof entries live in pending_entries_[first_entry, first_entry+W).
  struct PendingOk {
    SharedBytes buf;  // keeps every view alive
    crypto::ProcessId sender = 0;
    Value v = kZero;
    BytesView election;
    std::size_t first_entry = 0;
  };

  const std::string& init_seed() const { return init_seed_; }
  const std::string& echo_seed(Value v) const { return echo_seeds_[v]; }
  const std::string& ok_seed() const { return ok_seed_; }

  /// The byte string an echo(v) member signs (hoisted member).
  const Bytes& echo_sign_bytes(Value v) const { return echo_sign_bytes_[v]; }

  /// insert().second over a growable bitmap (same contract as the old
  /// std::set: out-of-range senders grow the map, never dropped).
  static bool mark_seen(std::vector<bool>& seen, crypto::ProcessId from);

  void maybe_echo(sim::Context& ctx, Value v);
  void maybe_ok(sim::Context& ctx, Value v);
  bool handle_init(sim::Context& ctx, const sim::Message& msg);
  bool handle_echo(sim::Context& ctx, const sim::Message& msg);
  bool handle_ok(sim::Context& ctx, const sim::Message& msg);

  /// The state transition of one verified <ok,v> from `sender` — shared
  /// verbatim by the inline and deferred paths (arrival order + the same
  /// guards = bit-identical evolution). `buf` is the raw ok payload,
  /// retained in applied_oks_ for lock/certificate forwarding.
  void apply_ok(sim::Context& ctx, crypto::ProcessId sender, Value v,
                const SharedBytes& buf);

  /// Deferred path: flush every pending ok through one election batch +
  /// one memoized signature batch, then apply survivors in arrival order.
  void flush_ok_queue(sim::Context& ctx);
  bool should_flush() const;

  Config cfg_;
  Value input_;
  DoneFn on_done_;

  // Interned tags, committee seeds and signing strings, built once at
  // construction: handle() dispatches by integer id and the verifiers
  // re-use the strings without per-message allocation.
  sim::Tag tag_init_;
  sim::Tag tag_echo_;
  sim::Tag tag_ok_;
  std::string init_seed_;
  std::string ok_seed_;
  std::array<std::string, 3> echo_seeds_;      // indexed by Value {0, 1, ⊥}
  std::array<Bytes, 3> echo_sign_bytes_;       // <tag|"echo"|v> preimages

  bool in_init_ = false;
  bool in_ok_ = false;
  Bytes init_election_proof_;
  Bytes ok_election_proof_;

  // init phase: distinct init-committee senders per value (bitmap+count).
  std::array<std::vector<bool>, 3> init_seen_;
  std::array<std::uint32_t, 3> init_count_{};
  std::array<bool, 3> echoed_{};  // values this process already echoed

  // echo phase: collected signed echoes per value.
  std::array<std::vector<SignedEcho>, 3> echoes_;
  std::array<std::vector<bool>, 3> echo_seen_;
  bool sent_ok_ = false;

  // ok phase.
  std::vector<bool> ok_seen_;
  std::vector<AppliedOk> applied_oks_;  // counted oks, application order
  std::uint32_t ok_count_ = 0;
  std::uint8_t ok_mask_ = 0;       // bit v set ⟺ v carried by a valid ok
  std::set<Value> ok_values_;      // materialized from ok_mask_ at done

  // Deferred-verification queue (batcher only). pending_entries_ is the
  // flat arena of proof entries, W per pending ok.
  std::vector<PendingOk> pending_oks_;
  std::vector<OkProofEntry> pending_entries_;

  // Reused scratch (capacity persists across messages and flushes — the
  // last avoidable allocations on the ok path). flush_oks_/flush_entries_
  // swap with the pending queue so both sides keep their capacity.
  std::vector<OkProofEntry> parse_scratch_;
  std::vector<crypto::ProcessId> distinct_scratch_;
  std::vector<PendingOk> flush_oks_;
  std::vector<OkProofEntry> flush_entries_;
  std::vector<committee::Sampler::ValCheck> check_scratch_;
  std::vector<crypto::SigBatchEntry> sig_scratch_;
  std::vector<char> election_ok_scratch_;
  std::vector<char> verdict_scratch_;
  std::vector<char> accept_scratch_;
  std::vector<std::size_t> sig_ok_of_scratch_;

  bool done_ = false;
};

/// A Process hosting exactly one approver instance — the standalone
/// harness used by approver tests and the Fig. 1 bench.
class ApproverHost final : public sim::Process {
 public:
  ApproverHost(Approver::Config cfg, Value input)
      : approver_(std::move(cfg), input) {}

  void on_start(sim::Context& ctx) override { approver_.start(ctx); }
  void on_message(sim::Context& ctx, const sim::Message& msg) override {
    approver_.handle(ctx, msg);
  }

  Approver& approver() { return approver_; }
  const Approver& approver() const { return approver_; }

 private:
  Approver approver_;
};

}  // namespace coincidence::ba
