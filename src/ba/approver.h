// Algorithm 3: the committee-based approver (an adaptation of MMR's
// SBV-broadcast to committees).
//
// Three phases, four committees (Fig. 1): init, echo(0)/echo(1) — one
// echo committee *per value* so a correct member broadcasts at most once
// per role (process replaceability) — and ok.
//
//   init  member:  broadcast <init, v_input>
//   echo(v) member: on <init, v> from B+1 distinct senders,
//                   broadcast a *signed* <echo, v>
//   ok    member:  on <echo, v> from W distinct echo(v) members, if no
//                   <ok, *> sent yet, broadcast <ok, v> carrying the W
//                   signed echoes as a validity proof
//   everyone:      on <ok, *> from W distinct valid senders, return the
//                   set of values carried
//
// Under Assumption 1 (correct processes invoke with <= 2 distinct values)
// this satisfies validity, graded agreement and termination whp
// (Lemmas 6.2–6.4). Word complexity O(nλ²) — the λ² comes from the W
// signatures inside each ok message.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "ba/value.h"
#include "coin/verify_queue.h"
#include "committee/params.h"
#include "committee/sampler.h"
#include "crypto/key_registry.h"
#include "crypto/signer.h"
#include "sim/process.h"

namespace coincidence::ba {

class Approver {
 public:
  struct Config {
    std::string tag;  // instance routing prefix (and committee seed root)
    committee::Params params;
    std::shared_ptr<const crypto::KeyRegistry> registry;
    std::shared_ptr<const committee::Sampler> sampler;
    std::shared_ptr<const crypto::Signer> signer;
    /// When set, the W+1 election proofs inside each <ok> message are
    /// checked in one committee_val_batch call (folded multi-exp + memo)
    /// instead of W+1 inline committee_val calls. Accept/reject verdicts
    /// are identical either way — committee_val is pure.
    std::shared_ptr<coin::BatchVerifier> batcher;
  };

  using DoneFn = std::function<void(const std::set<Value>&)>;

  /// `input` is this process's approve() argument (0, 1 or ⊥).
  Approver(Config cfg, Value input, DoneFn on_done = {});

  void start(sim::Context& ctx);
  bool handle(sim::Context& ctx, const sim::Message& msg);
  bool done() const { return done_; }
  /// The non-empty returned set; requires done().
  const std::set<Value>& output() const;

  /// Whitebox accessors for tests.
  bool in_init_committee() const { return in_init_; }
  bool in_ok_committee() const { return in_ok_; }
  bool sent_ok() const { return sent_ok_; }

 private:
  struct SignedEcho {
    crypto::ProcessId sender = 0;
    Bytes signature;
    Bytes election_proof;
  };

  const std::string& init_seed() const { return init_seed_; }
  const std::string& echo_seed(Value v) const { return echo_seeds_[v]; }
  const std::string& ok_seed() const { return ok_seed_; }

  /// The byte string an echo(v) member signs.
  Bytes echo_sign_bytes(Value v) const;

  void maybe_echo(sim::Context& ctx, Value v);
  void maybe_ok(sim::Context& ctx, Value v);
  bool handle_init(sim::Context& ctx, const sim::Message& msg);
  bool handle_echo(sim::Context& ctx, const sim::Message& msg);
  bool handle_ok(sim::Context& ctx, const sim::Message& msg);

  Config cfg_;
  Value input_;
  DoneFn on_done_;

  // Interned tags and committee seeds, built once at construction:
  // handle() dispatches by integer id and the verifiers re-use the seed
  // strings without per-message allocation.
  sim::Tag tag_init_;
  sim::Tag tag_echo_;
  sim::Tag tag_ok_;
  std::string init_seed_;
  std::string ok_seed_;
  std::array<std::string, 3> echo_seeds_;  // indexed by Value {0, 1, ⊥}

  bool in_init_ = false;
  bool in_ok_ = false;
  Bytes init_election_proof_;
  Bytes ok_election_proof_;

  // init phase: distinct init-committee senders per value.
  std::map<Value, std::set<crypto::ProcessId>> init_senders_;
  std::set<Value> echoed_;  // values this process already echoed

  // echo phase: collected signed echoes per value.
  std::map<Value, std::vector<SignedEcho>> echoes_;
  std::map<Value, std::set<crypto::ProcessId>> echo_senders_;
  bool sent_ok_ = false;

  // ok phase.
  std::set<crypto::ProcessId> ok_senders_;
  std::set<Value> ok_values_;

  bool done_ = false;
};

/// A Process hosting exactly one approver instance — the standalone
/// harness used by approver tests and the Fig. 1 bench.
class ApproverHost final : public sim::Process {
 public:
  ApproverHost(Approver::Config cfg, Value input)
      : approver_(std::move(cfg), input) {}

  void on_start(sim::Context& ctx) override { approver_.start(ctx); }
  void on_message(sim::Context& ctx, const sim::Message& msg) override {
    approver_.handle(ctx, msg);
  }

  Approver& approver() { return approver_; }
  const Approver& approver() const { return approver_; }

 private:
  Approver approver_;
};

}  // namespace coincidence::ba
