// Erasure-coded reliable broadcast, AVID-M style (ISSUE 10 tentpole).
//
// Bracha's protocol re-ships the full value in every echo: O(n²·|v|)
// words per broadcast. Following AVID (Cachin–Tessaro 2005) and its
// hash-based AVID-M refinement, the source instead Reed–Solomon-encodes
// the value into n fragments (k = f+1 data + n−k parity, crypto/
// reed_solomon.h), commits them to a Merkle root (crypto/merkle.h), and
// sends process i only fragment i plus its branch:
//
//   source:   send <initial, |v|, frag_i, branch_i> to each i
//   on initial (branch valid at own index):
//             broadcast <echo, src, |v|, root, frag_self, branch_self>
//                                                       (once per source)
//   on echo   (branch valid at sender's index) from > (n+f)/2 distinct:
//             broadcast <ready, src, H(root ‖ |v|)>
//   on ready  from f+1 distinct:  broadcast <ready, src, H(root ‖ |v|)>
//   on ready  from 2f+1 distinct AND ≥ k branch-valid fragments:
//             decode; re-encode; recompute root; deliver iff it matches
//
// The re-encode check makes deliver/no-deliver a deterministic function
// of the root: if any k root-consistent fragments decode to a value
// whose re-encoding reproduces the root, collision resistance forces
// *every* root-consistent fragment onto that codeword, so every k-subset
// decodes identically — correct processes can never split on the value.
// A root whose check fails is poisoned forever (an inconsistently-
// encoded Byzantine dispersal; nobody delivers it). Binding |v| into the
// ready digest blocks size equivocation: one root with two claimed
// sizes forms two independent flows, and fragment lengths are validated
// against ⌈|v|/k⌉ before counting.
//
// Quorum math (n > 3f): an echo quorum > (n+f)/2 contains > (n−f)/2 ≥
// f+1 = k correct processes, each broadcasting its branch-valid fragment
// to everyone — so whenever any correct process delivers, every correct
// process eventually holds ≥ k fragments and the 2f+1 readies totality
// needs. Word ledger, exact: with L = ⌈⌈|v|/k⌉/8⌉ fragment words and
// B = λ·(branch digests), initial = 1+L+B per process, echo = 1+λ+L+B,
// ready = 1+λ. The n² term carries hashes only — O(n·|v| + n²·λ·log n)
// total, the sub-quadratic dissemination bill the paper's multivalued
// extension assumes.
//
// GF(2^8) caps n at 255; larger cohorts must use the Bracha backend.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "ba/broadcast.h"
#include "common/bytes.h"
#include "crypto/merkle.h"
#include "crypto/reed_solomon.h"
#include "crypto/sha256.h"
#include "sim/flat_map64.h"
#include "sim/process.h"

namespace coincidence::ba {

class EcBroadcast final : public Broadcast {
 public:
  using Config = Broadcast::Config;

  EcBroadcast(Config cfg, DeliverFn on_deliver);

  void broadcast(sim::Context& ctx, Bytes payload) override;
  bool handle(sim::Context& ctx, const sim::Message& msg) override;

  bool delivered(sim::ProcessId source) const override {
    return source < delivered_.size() && delivered_[source];
  }
  std::size_t delivered_count() const override { return delivered_count_; }

 private:
  // One flow per (source, H(root ‖ |v|)): fragment store + echo/ready
  // tallies. Buckets under a 64-bit key fold; the full composite digest
  // disambiguates fold collisions.
  struct Flow {
    sim::ProcessId source = 0;
    crypto::Digest key{};   // H(root ‖ |v|): the ready-quorum identity
    crypto::Digest root{};  // learned with the first valid echo
    std::uint64_t value_size = 0;
    bool have_root = false;
    std::map<std::size_t, Bytes> fragments;  // branch-valid, by index
    std::set<sim::ProcessId> echoes;
    std::set<sim::ProcessId> readies;
    bool ready_sent = false;
    bool poisoned = false;  // failed the re-encode consistency check
  };

  static crypto::Digest composite_key(const crypto::Digest& root,
                                      std::uint64_t value_size);
  static std::uint64_t flow_fold(sim::ProcessId source,
                                 const crypto::Digest& key);
  Flow& flow_of(sim::ProcessId source, const crypto::Digest& key);

  void handle_initial(sim::Context& ctx, const sim::Message& msg);
  void handle_echo(sim::Context& ctx, const sim::Message& msg);
  void handle_ready(sim::Context& ctx, const sim::Message& msg);
  void maybe_send_ready(sim::Context& ctx, Flow& flow);
  void maybe_deliver(sim::Context& ctx, Flow& flow);

  /// Branch words: λ per digest on the sibling path of an n-leaf tree.
  std::size_t branch_words(std::size_t branch_len) const {
    return kDigestWords * branch_len;
  }

  Config cfg_;
  DeliverFn on_deliver_;
  crypto::ReedSolomon rs_;  // k = f+1
  sim::Tag tag_initial_;
  sim::Tag tag_echo_;
  sim::Tag tag_ready_;

  sim::FlatMap64<std::vector<Flow>> flows_;
  std::set<sim::ProcessId> echoed_sources_;  // echo once per source
  std::vector<bool> delivered_;
  std::size_t delivered_count_ = 0;
};

}  // namespace coincidence::ba
