#include "ba/ben_or.h"

#include "common/errors.h"
#include "common/ser.h"

namespace coincidence::ba {

namespace {
constexpr std::size_t kWordsPerMessage = 1;  // one finite-domain value
}  // namespace

BenOr::BenOr(Config cfg, Value initial) : cfg_(std::move(cfg)), x_(initial) {
  COIN_REQUIRE(is_binary(initial), "BenOr: initial value must be 0 or 1");
  COIN_REQUIRE(cfg_.n > 5 * cfg_.f, "BenOr: requires n > 5f");
}

int BenOr::decision() const {
  COIN_REQUIRE(decision_.has_value(), "BenOr: not decided yet");
  return *decision_;
}

std::uint64_t BenOr::decided_round() const {
  COIN_REQUIRE(decision_.has_value(), "BenOr: not decided yet");
  return decision_round_;
}

void BenOr::on_start(sim::Context& ctx) { begin_round(ctx); }

void BenOr::begin_round(sim::Context& ctx) {
  if ((decision_ && round_ > decision_round_ + cfg_.extra_rounds) ||
      round_ >= cfg_.max_rounds) {
    halted_ = true;
    return;
  }
  Writer w;
  w.u8(x_);
  ctx.broadcast(round_tag(round_, 'R'), w.take(), kWordsPerMessage);
  check_progress(ctx);  // counters for this round may already be full
}

sim::Tag BenOr::round_tag(std::uint64_t r, char kind) {
  while (round_tags_.size() <= r) {
    const std::string base =
        cfg_.tag + "/" + std::to_string(round_tags_.size()) + "/";
    round_tags_.push_back({sim::Tag(base + "R"), sim::Tag(base + "P")});
  }
  return round_tags_[r][kind == 'R' ? 0 : 1];
}

void BenOr::on_message(sim::Context& ctx, const sim::Message& msg) {
  if (halted_) return;
  // Tags: "<tag>/<r>/R" or "<tag>/<r>/P". Parsed off the interner's
  // resolved string — no allocation on the message path.
  const std::string& t = msg.tag.str();
  if (t.size() < cfg_.tag.size() + 4 ||
      t.compare(0, cfg_.tag.size(), cfg_.tag) != 0)
    return;
  std::size_t round_begin = cfg_.tag.size() + 1;
  std::size_t slash = t.find('/', round_begin);
  if (slash == std::string::npos || slash + 2 != t.size()) return;
  std::uint64_t r = 0;
  for (std::size_t i = round_begin; i < slash; ++i) {
    if (t[i] < '0' || t[i] > '9') return;
    r = r * 10 + static_cast<std::uint64_t>(t[i] - '0');
  }
  const char kind = t[slash + 1];
  if (r >= cfg_.max_rounds) return;  // Byzantine round-flood guard

  Value v;
  try {
    Reader reader(msg.payload);
    v = reader.u8();
    reader.done();
  } catch (const CodecError&) {
    return;
  }

  RoundState& rs = state(r);
  if (kind == 'R') {
    if (!is_binary(v)) return;  // reports carry 0/1 only
    if (!rs.report_senders.insert(msg.from).second) return;
    rs.reports[v].insert(msg.from);
  } else if (kind == 'P') {
    if (!is_binary(v) && v != kQuestion) return;
    if (!rs.proposal_senders.insert(msg.from).second) return;
    rs.proposals[v].insert(msg.from);
  } else {
    return;
  }
  check_progress(ctx);
}

void BenOr::check_progress(sim::Context& ctx) {
  // Progress is re-evaluated after every counter update; a single message
  // can unlock several steps (counters fill ahead of the local round).
  for (;;) {
    if (halted_) return;
    RoundState& rs = state(round_);
    const std::size_t quorum = cfg_.n - cfg_.f;
    const double majority = (static_cast<double>(cfg_.n) + cfg_.f) / 2.0;

    if (!rs.proposal_sent) {
      if (rs.report_senders.size() < quorum) return;
      rs.proposal_sent = true;
      Value proposal = kQuestion;
      for (Value v : {kZero, kOne})
        if (static_cast<double>(rs.reports[v].size()) > majority)
          proposal = v;
      Writer w;
      w.u8(proposal);
      ctx.broadcast(round_tag(round_, 'P'), w.take(), kWordsPerMessage);
    }

    if (rs.proposal_senders.size() < quorum) return;

    // Step 3.
    bool moved = false;
    for (Value v : {kZero, kOne}) {
      std::size_t d = rs.proposals[v].size();
      if (static_cast<double>(d) > majority) {
        if (!decision_) {
          decision_ = static_cast<int>(v);
          decision_round_ = round_;
          ctx.note_decide(cfg_.tag, *decision_, round_);
        }
        x_ = v;
        moved = true;
        break;
      }
      if (d >= cfg_.f + 1) {
        x_ = v;
        moved = true;
        break;
      }
    }
    if (!moved) x_ = static_cast<Value>(ctx.rng().next_below(2));

    ++round_;
    ctx.note_round(round_);
    if ((decision_ && round_ > decision_round_ + cfg_.extra_rounds) ||
        round_ >= cfg_.max_rounds) {
      halted_ = true;
      return;
    }
    Writer w;
    w.u8(x_);
    ctx.broadcast(round_tag(round_, 'R'), w.take(), kWordsPerMessage);
    // Loop: the new round's counters may already be over threshold.
  }
}

}  // namespace coincidence::ba
