#include "ba/rbc.h"

#include <utility>

#include "common/errors.h"
#include "common/ser.h"

namespace coincidence::ba {

ReliableBroadcast::ReliableBroadcast(Config cfg, DeliverFn on_deliver)
    : cfg_(std::move(cfg)),
      on_deliver_(std::move(on_deliver)),
      tag_initial_(cfg_.tag + "/initial"),
      tag_echo_(cfg_.tag + "/echo"),
      tag_ready_(cfg_.tag + "/ready"),
      delivered_(cfg_.n, false) {
  COIN_REQUIRE(cfg_.n > 3 * cfg_.f, "ReliableBroadcast: requires n > 3f");
}

std::uint64_t ReliableBroadcast::flow_key(sim::ProcessId source,
                                          const crypto::Digest& digest) {
  std::uint64_t fold = 0;
  for (std::size_t i = 0; i < 8; ++i)
    fold = (fold << 8) | digest[i];
  // FlatMap64 avalanches the key itself; mixing the source in with a
  // multiply keeps (source, digest) pairs distinct under the fold.
  return fold ^ (static_cast<std::uint64_t>(source) * 0x9e3779b97f4a7c15ull);
}

ReliableBroadcast::Flow& ReliableBroadcast::flow_of(
    sim::ProcessId source, const crypto::Digest& digest) {
  std::vector<Flow>& bucket = flows_[flow_key(source, digest)];
  for (Flow& flow : bucket)
    if (flow.source == source && flow.digest == digest) return flow;
  Flow& flow = bucket.emplace_back();
  flow.source = source;
  flow.digest = digest;
  return flow;
}

void ReliableBroadcast::broadcast(sim::Context& ctx, Bytes payload) {
  const std::size_t words = value_words(payload.size());
  ctx.broadcast(tag_initial_, std::move(payload), words);
}

void ReliableBroadcast::maybe_send_ready(sim::Context& ctx, Flow& flow) {
  if (flow.ready_sent) return;
  flow.ready_sent = true;
  Writer w;
  w.u32(flow.source);
  w.blob(BytesView(flow.digest.data(), flow.digest.size()));
  ctx.broadcast(tag_ready_, w.take(), 1 + kDigestWords);
}

void ReliableBroadcast::maybe_deliver(sim::Context& ctx, Flow& flow) {
  if (delivered_[flow.source]) return;  // one delivery per source
  if (flow.readies.size() < 2 * cfg_.f + 1) return;
  // Readies identify the value only by digest; the payload itself rides
  // in the echoes, and >(n−f)/2 ≥ f+1 correct processes echoed it to
  // everyone before any correct ready fired — it is en route.
  if (!flow.payload.has_value()) return;
  delivered_[flow.source] = true;
  ++delivered_count_;
  // RBC's output event: the delivered flow's source stands in for the
  // (binary) decision value of the BA protocols.
  ctx.note_decide(cfg_.tag, static_cast<int>(flow.source), 0);
  if (on_deliver_) on_deliver_(flow.source, *flow.payload);
}

bool ReliableBroadcast::handle(sim::Context& ctx, const sim::Message& msg) {
  if (msg.tag == tag_initial_) {
    // Echo once per source: the first initial wins; an equivocating
    // source simply fails to gather a quorum for either payload.
    if (echoed_sources_.insert(msg.from).second) {
      Writer w;
      w.u32(msg.from).blob(msg.payload);
      ctx.broadcast(tag_echo_, w.take(),
                    value_words(msg.payload.size()) + 1);
    }
    return true;
  }

  bool is_echo = msg.tag == tag_echo_;
  bool is_ready = msg.tag == tag_ready_;
  if (!is_echo && !is_ready) return false;

  sim::ProcessId source = 0;
  Bytes payload;
  crypto::Digest digest{};
  try {
    Reader r(msg.payload);
    source = r.u32();
    if (is_echo) {
      payload = r.blob();
      digest = crypto::sha256(payload);
    } else {
      const Bytes d = r.blob();
      if (d.size() != digest.size()) return true;
      std::copy(d.begin(), d.end(), digest.begin());
    }
    r.done();
  } catch (const CodecError&) {
    return true;
  }
  if (source >= cfg_.n) return true;

  Flow& flow = flow_of(source, digest);
  if (is_echo) {
    if (!flow.echoes.insert(msg.from).second) return true;
    if (!flow.payload.has_value()) flow.payload = std::move(payload);
    if (2 * flow.echoes.size() > cfg_.n + cfg_.f)
      maybe_send_ready(ctx, flow);
    maybe_deliver(ctx, flow);  // a ready quorum may already be waiting
  } else {
    if (!flow.readies.insert(msg.from).second) return true;
    if (flow.readies.size() >= cfg_.f + 1) maybe_send_ready(ctx, flow);
    maybe_deliver(ctx, flow);
  }
  return true;
}

}  // namespace coincidence::ba
