#include "ba/rbc.h"

#include "common/errors.h"
#include "common/ser.h"

namespace coincidence::ba {

ReliableBroadcast::ReliableBroadcast(Config cfg, DeliverFn on_deliver)
    : cfg_(std::move(cfg)),
      on_deliver_(std::move(on_deliver)),
      tag_initial_(cfg_.tag + "/initial"),
      tag_echo_(cfg_.tag + "/echo"),
      tag_ready_(cfg_.tag + "/ready") {
  COIN_REQUIRE(cfg_.n > 3 * cfg_.f, "ReliableBroadcast: requires n > 3f");
}

void ReliableBroadcast::broadcast(sim::Context& ctx, Bytes payload,
                                  std::size_t words) {
  payload_words_ = words;
  ctx.broadcast(tag_initial_, std::move(payload), words);
}

void ReliableBroadcast::maybe_send_ready(sim::Context& ctx,
                                         const FlowKey& key) {
  if (ready_sent_.count(key)) return;
  ready_sent_.insert(key);
  Writer w;
  w.u32(key.source).blob(key.payload);
  ctx.broadcast(tag_ready_, w.take(), payload_words_ + 1);
}

void ReliableBroadcast::maybe_deliver(sim::Context& ctx, const FlowKey& key) {
  if (delivered_.count(key.source)) return;  // one delivery per source
  delivered_.insert(key.source);
  // RBC's output event: the delivered flow's source stands in for the
  // (binary) decision value of the BA protocols.
  ctx.note_decide(cfg_.tag, static_cast<int>(key.source), 0);
  if (on_deliver_) on_deliver_(key.source, key.payload);
}

bool ReliableBroadcast::handle(sim::Context& ctx, const sim::Message& msg) {
  if (msg.tag == tag_initial_) {
    // Echo once per source: the first initial wins; an equivocating
    // source simply fails to gather a quorum for either payload.
    if (echoed_sources_.insert(msg.from).second) {
      Writer w;
      w.u32(msg.from).blob(msg.payload);
      ctx.broadcast(tag_echo_, w.take(), payload_words_ + 1);
    }
    return true;
  }

  bool is_echo = msg.tag == tag_echo_;
  bool is_ready = msg.tag == tag_ready_;
  if (!is_echo && !is_ready) return false;

  FlowKey key;
  try {
    Reader r(msg.payload);
    key.source = r.u32();
    key.payload = r.blob();
    r.done();
  } catch (const CodecError&) {
    return true;
  }
  if (key.source >= cfg_.n) return true;

  Flow& flow = flows_[key];
  if (is_echo) {
    if (!flow.echoes.insert(msg.from).second) return true;
    if (2 * flow.echoes.size() > cfg_.n + cfg_.f)
      maybe_send_ready(ctx, key);
  } else {
    if (!flow.readies.insert(msg.from).second) return true;
    if (flow.readies.size() >= cfg_.f + 1) maybe_send_ready(ctx, key);
    if (flow.readies.size() >= 2 * cfg_.f + 1) maybe_deliver(ctx, key);
  }
  return true;
}

}  // namespace coincidence::ba
