#include "ba/bracha.h"

#include "common/errors.h"
#include "common/ser.h"

namespace coincidence::ba {

Bracha::Bracha(Config cfg, Value initial) : cfg_(std::move(cfg)), x_(initial) {
  COIN_REQUIRE(is_binary(initial), "Bracha: initial value must be 0 or 1");
  COIN_REQUIRE(cfg_.n > 3 * cfg_.f, "Bracha: requires n > 3f");
}

int Bracha::decision() const {
  COIN_REQUIRE(decision_.has_value(), "Bracha: not decided yet");
  return *decision_;
}

std::uint64_t Bracha::decided_round() const {
  COIN_REQUIRE(decision_.has_value(), "Bracha: not decided yet");
  return decision_round_;
}

Bracha::StepState& Bracha::step_state(sim::Context& /*ctx*/, std::uint64_t r,
                                      int step) {
  auto key = std::make_pair(r, step);
  auto it = steps_.find(key);
  if (it != steps_.end()) return it->second;

  StepState& st = steps_[key];
  Broadcast::Config rcfg;
  rcfg.tag = cfg_.tag + "/" + std::to_string(r) + "/" + std::to_string(step);
  rcfg.n = cfg_.n;
  rcfg.f = cfg_.f;
  st.rbc = make_broadcast(
      cfg_.rbc, std::move(rcfg),
      [this, r, step](sim::ProcessId source, const Bytes& payload) {
        std::uint8_t w;
        try {
          Reader reader(payload);
          w = reader.u8();
          reader.done();
        } catch (const CodecError&) {
          return;
        }
        // Domain validation per step: steps 1-2 carry plain bits, step 3
        // may carry a D-marked value.
        if (step < 3 ? !is_plain(w) : !(is_plain(w) || is_marked(w))) return;
        steps_[{r, step}].delivered.emplace(source, w);
      });
  return st;
}

void Bracha::on_start(sim::Context& ctx) { enter_step(ctx); }

void Bracha::enter_step(sim::Context& ctx) {
  if ((decision_ && round_ > decision_round_ + cfg_.extra_rounds) ||
      round_ >= cfg_.max_rounds) {
    halted_ = true;
    return;
  }
  StepState& st = step_state(ctx, round_, step_);
  if (!st.broadcast_done) {
    st.broadcast_done = true;
    Writer w;
    w.u8(x_);
    st.rbc->broadcast(ctx, w.take());
  }
  check_progress(ctx);
}

void Bracha::on_message(sim::Context& ctx, const sim::Message& msg) {
  if (halted_) return;
  // Route to the RBC instance named in the tag: "<tag>/<r>/<step>/...".
  // Parsed off the interner's resolved string — no allocation here.
  const std::string& t = msg.tag.str();
  if (t.compare(0, cfg_.tag.size(), cfg_.tag) != 0) return;
  std::size_t p = cfg_.tag.size() + 1;
  if (p >= t.size()) return;
  std::uint64_t r = 0;
  bool any = false;
  while (p < t.size() && t[p] >= '0' && t[p] <= '9') {
    r = r * 10 + static_cast<std::uint64_t>(t[p] - '0');
    ++p;
    any = true;
  }
  if (!any || p >= t.size() || t[p] != '/') return;
  ++p;
  if (p >= t.size() || t[p] < '1' || t[p] > '3') return;
  int step = t[p] - '0';
  if (r >= cfg_.max_rounds) return;  // don't let Byzantine tags OOM us

  step_state(ctx, r, step).rbc->handle(ctx, msg);
  check_progress(ctx);
}

void Bracha::check_progress(sim::Context& ctx) {
  for (;;) {
    if (halted_) return;
    StepState& st = step_state(ctx, round_, step_);
    if (st.delivered.size() < cfg_.n - cfg_.f) return;

    std::size_t count[2] = {0, 0};
    std::size_t marked[2] = {0, 0};
    for (const auto& [src, w] : st.delivered) {
      if (is_plain(w)) ++count[w];
      if (is_marked(w)) ++marked[w & 1];
    }

    if (step_ == 1) {
      // x <- majority of the plain values (keep x on a tie).
      if (count[0] > count[1]) x_ = 0;
      else if (count[1] > count[0]) x_ = 1;
      step_ = 2;
    } else if (step_ == 2) {
      for (std::uint8_t v : {0, 1})
        if (2 * count[v] > cfg_.n) x_ = kDMark | v;
      step_ = 3;
    } else {
      bool resolved = false;
      for (std::uint8_t v : {0, 1}) {
        if (marked[v] >= 2 * cfg_.f + 1) {
          if (!decision_) {
            decision_ = v;
            decision_round_ = round_;
            ctx.note_decide(cfg_.tag, *decision_, round_);
          }
          x_ = v;
          resolved = true;
          break;
        }
        if (marked[v] >= cfg_.f + 1) {
          x_ = v;
          resolved = true;
          break;
        }
      }
      if (!resolved) x_ = static_cast<std::uint8_t>(ctx.rng().next_below(2));
      step_ = 1;
      ++round_;
      ctx.note_round(round_);
    }

    if ((decision_ && round_ > decision_round_ + cfg_.extra_rounds) ||
        round_ >= cfg_.max_rounds) {
      halted_ = true;
      return;
    }
    StepState& next = step_state(ctx, round_, step_);
    if (!next.broadcast_done) {
      next.broadcast_done = true;
      Writer w;
      w.u8(x_);
      next.rbc->broadcast(ctx, w.take());
    }
  }
}

}  // namespace coincidence::ba
