// Multivalued Byzantine Agreement via leaderless reduction to binary BA.
//
// §3 of the paper positions BA WHP as a drop-in binary core; the classic
// way to lift a binary protocol to arbitrary values without a leader
// (and hence without a leader bottleneck or view-change machinery) is
// the Cachin–Kursawe–Petzold–Shoup / Ben-Or–El-Yaniv style reduction:
//
//   1. every process reliably broadcasts its proposal (Bracha RBC, so
//      all correct processes converge on the same per-source payloads);
//   2. candidates are examined in a deterministic pseudo-random order
//      (rank by sha256(tag, pid) — no process can place itself first
//      for a given instance tag without breaking the hash);
//   3. for candidate k the processes run binary BA WHP on the predicate
//      "I have delivered candidate k's broadcast", input 1 iff the RBC
//      delivery already fired locally at activation time;
//   4. the first candidate whose BA decides 1 is adopted: its delivered
//      payload (identical everywhere, by RBC agreement) is the decision.
//      BA validity guarantees some correct process had delivered it, and
//      RBC totality then guarantees every correct process eventually
//      does — adopters who are still waiting decide upon delivery.
//   5. if every examined candidate's BA decides 0 (possible only when
//      the adversary wins every race; expected candidates examined is
//      O(1) since > half the ranks are correct), the instance closes
//      with a no-op decision (decision() == -1, empty value).
//
// Agreement is inherited from binary BA agreement (all correct processes
// see the same per-candidate bits, in the same order) plus RBC agreement
// (the adopted index maps to one payload). Candidate BAs are activated
// strictly sequentially — BA k+1 exists only after BA k decided 0 — so
// at most one candidate is ever adopted.
//
// The skip_timeout liveness fallback of BaWhp (see ba_whp.h) forwards
// into every inner instance; sessions that pipeline many MvBa slots
// arm it so a committee-tail wedge in any inner round cannot stall the
// log. Crash-recovery persistence is NOT implemented here (inner BAs
// persist their own snapshots, but the reduction state — delivered
// payloads, candidate cursor — is in-memory only); use under silent /
// omission fault plans.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ba/ba_process.h"
#include "ba/ba_whp.h"
#include "ba/broadcast.h"
#include "common/bytes.h"
#include "sim/flat_map64.h"

namespace coincidence::ba {

class MultiValuedBa final : public BaProcess {
 public:
  struct Config {
    std::string tag = "mvba";
    committee::Params params;
    std::shared_ptr<const crypto::Vrf> vrf;
    std::shared_ptr<const crypto::KeyRegistry> registry;
    std::shared_ptr<const committee::Sampler> sampler;
    std::shared_ptr<const crypto::Signer> signer;
    /// Forwarded to every inner BaWhp (deferred verification plane).
    std::shared_ptr<coin::BatchVerifier> batcher;
    /// Per inner binary instance (see BaWhp::Config).
    std::uint64_t max_rounds = 64;
    std::uint64_t extra_rounds = 4;
    /// Round-skip liveness fallback, forwarded to inner instances.
    std::uint64_t skip_timeout = 0;
    std::uint32_t skip_max_attempts = 8;
    /// Stop examining candidates after this many rejections and close
    /// with the no-op decision. 0 means all n proposers are eligible.
    std::size_t max_candidates = 0;
    /// Dissemination backend for the proposal broadcasts (broadcast.h):
    /// Bracha echoes the full value n² times, the erasure-coded backend
    /// ships fragments + hashes. Identical delivery semantics.
    RbcBackend rbc = RbcBackend::kBracha;
  };

  /// `proposal` is this process's value for the instance; it may be
  /// empty (an empty proposal is still a valid candidate payload).
  MultiValuedBa(Config cfg, Bytes proposal);

  void on_start(sim::Context& ctx) override;
  void on_message(sim::Context& ctx, const sim::Message& msg) override;
  void on_wakeup(sim::Context& ctx) override;

  bool decided() const override { return decided_; }
  /// Adopted candidate's rank index, or -1 for the no-op decision.
  /// (BaProcess narrows this to {0,1} for binary protocols; multivalued
  /// harnesses read decided_value()/decided_proposer() instead.)
  int decision() const override;
  /// Round (of the adopted candidate's inner BA) in which it decided 1;
  /// 0 for the no-op decision.
  std::uint64_t decided_round() const override;

  /// The agreed payload; requires decided(). Empty for the no-op
  /// decision — disambiguate via decided_noop() if empty payloads are
  /// legal proposals in your application.
  const Bytes& decided_value() const;
  bool decided_noop() const { return decided_ && adopted_ < 0; }
  /// The proposer whose broadcast was adopted; requires a non-noop
  /// decision.
  sim::ProcessId decided_proposer() const;

  /// Whitebox introspection for tests and session diagnostics.
  const std::vector<sim::ProcessId>& rank_order() const { return rank_; }
  std::size_t candidates_activated() const { return bas_.size(); }
  std::size_t rbc_delivered_count() const { return rbc_->delivered_count(); }
  std::uint64_t rounds_skipped() const;
  std::uint64_t max_inner_round() const;
  const BaWhp* inner(std::size_t k) const {
    return k < bas_.size() ? bas_[k].get() : nullptr;
  }

 private:
  std::string cand_tag(std::size_t k) const {
    return cfg_.tag + "/c" + std::to_string(k);
  }
  std::size_t effective_max() const;
  void activate_next(sim::Context& ctx);
  /// The single state-machine driver: latches fresh inner decisions
  /// (adopt on 1, queue the next candidate on 0), activates the queued
  /// candidate once its gate opens, closes no-op when candidates run
  /// out. Looped to a fixed point — a replayed backlog can decide a
  /// freshly activated instance on the spot.
  void pump(sim::Context& ctx);
  void adopt(sim::Context& ctx, std::size_t k);
  void finish(sim::Context& ctx);
  void on_rbc_deliver(sim::ProcessId source, const Bytes& payload);
  /// Candidate index encoded in a "<tag>/c<k>/..." tag, or nullopt for
  /// foreign / malformed tags. Memoized per TagId.
  std::optional<std::size_t> candidate_of_tag(const sim::Tag& tag);

  Config cfg_;
  Bytes proposal_;
  std::unique_ptr<Broadcast> rbc_;
  // Deterministic candidate examination order: pids sorted by
  // sha256(tag || "/rank/" || pid), ties by pid.
  std::vector<sim::ProcessId> rank_;
  // Delivered RBC payloads, indexed by *proposer id* (not rank).
  std::vector<std::optional<Bytes>> delivered_;

  // Inner binary instances, indexed by rank; strictly append-only and
  // activated sequentially. Done flags latch the decided() transition
  // so each inner decision is acted on exactly once.
  std::vector<std::unique_ptr<BaWhp>> bas_;
  std::vector<bool> ba_done_;
  // Messages for candidates not yet activated, replayed on activation.
  std::vector<sim::Message> backlog_;
  // TagId -> candidate index + 1 (0 = not an inner-BA tag). Mirrors
  // InstanceMux's memoized routing.
  sim::FlatMap64<std::uint32_t> cand_cache_;

  // Candidate bas_.size() is due for activation (start, or the previous
  // candidate decided 0) but waits for its gate: the candidate's own RBC
  // delivery, or n-f total deliveries (so a crashed proposer cannot
  // stall the examination — with n-f delivered, input 0 is honest).
  // Without the gate every process would input 0 to candidate 0, whose
  // BA starts before any delivery can fire, wasting a full instance.
  bool activation_due_ = true;
  bool decided_ = false;
  int adopted_ = -1;
  std::uint64_t decided_round_ = 0;
  // Set when the adopted candidate's RBC delivery has not fired locally
  // yet; the pending on_rbc_deliver completes the decision.
  std::optional<sim::ProcessId> awaiting_proposer_;
  Bytes value_;
  // Deliveries fire from inside rbc_.handle / rbc_.broadcast frames; the
  // callback needs the Context active in the enclosing dispatch.
  sim::Context* ctx_ = nullptr;
};

}  // namespace coincidence::ba
