#include "ba/broadcast.h"

#include "ba/rbc.h"
#include "ba/rbc_ec.h"
#include "common/errors.h"

namespace coincidence::ba {

const char* to_string(RbcBackend backend) {
  switch (backend) {
    case RbcBackend::kBracha: return "bracha";
    case RbcBackend::kEc: return "ec";
  }
  return "?";
}

std::optional<RbcBackend> parse_rbc_backend(std::string_view name) {
  if (name == "bracha") return RbcBackend::kBracha;
  if (name == "ec") return RbcBackend::kEc;
  return std::nullopt;
}

std::unique_ptr<Broadcast> make_broadcast(RbcBackend backend,
                                          Broadcast::Config cfg,
                                          Broadcast::DeliverFn on_deliver) {
  switch (backend) {
    case RbcBackend::kBracha:
      return std::make_unique<ReliableBroadcast>(std::move(cfg),
                                                 std::move(on_deliver));
    case RbcBackend::kEc:
      return std::make_unique<EcBroadcast>(std::move(cfg),
                                           std::move(on_deliver));
  }
  COIN_REQUIRE(false, "make_broadcast: unknown backend");
  return nullptr;
}

}  // namespace coincidence::ba
