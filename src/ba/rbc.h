// Bracha's reliable broadcast (Information & Computation 1987) — the
// classic echo/ready primitive, n > 3f:
//
//   source:            broadcast <initial, m>
//   on <initial, m>:   broadcast <echo, src, m>          (once per source)
//   on <echo, src, m>  from > (n+f)/2 distinct: broadcast <ready, src, H(m)>
//   on <ready, src, h> from f+1 distinct:       broadcast <ready, src, h>
//   on <ready, src, h> from 2f+1 distinct:      deliver (src, m)
//
// Guarantees: if the source is correct everyone delivers its m; if any
// correct process delivers (src, m), every correct process delivers
// (src, m) and nobody delivers (src, m') with m' != m. Used as the
// broadcast layer of the Bracha BA baseline and independently tested.
//
// ISSUE 10 satellite: READY carries the λ-word sha256 digest of the
// payload instead of re-shipping it (the payload still travels in every
// ECHO, which is what makes this backend O(n²·|v|) — rbc_ec.h is the
// coded alternative), and flows are tallied in a FlatMap64 keyed by a
// 64-bit fold of (source, digest) instead of a std::map that copied the
// whole payload into its keys. Delivery waits for both the 2f+1 ready
// quorum and a payload-bearing echo: readies alone no longer identify
// the value. Word ledger, exact: initial = 1+⌈|m|/8⌉, echo = initial+1
// (source word), ready = 1+λ.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <vector>

#include "ba/broadcast.h"
#include "common/bytes.h"
#include "crypto/sha256.h"
#include "sim/flat_map64.h"
#include "sim/process.h"

namespace coincidence::ba {

class ReliableBroadcast final : public Broadcast {
 public:
  using Config = Broadcast::Config;

  ReliableBroadcast(Config cfg, DeliverFn on_deliver);

  void broadcast(sim::Context& ctx, Bytes payload) override;
  bool handle(sim::Context& ctx, const sim::Message& msg) override;

  bool delivered(sim::ProcessId source) const override {
    return source < delivered_.size() && delivered_[source];
  }
  std::size_t delivered_count() const override { return delivered_count_; }

 private:
  // Per (source, payload-digest) echo/ready tallies. Byzantine sources
  // may equivocate, producing several live flows for one source; the
  // delivery guard ensures at most one wins. Flows bucket under a 64-bit
  // key fold; the full digest disambiguates fold collisions.
  struct Flow {
    sim::ProcessId source = 0;
    crypto::Digest digest{};
    // Learned from the first payload-bearing echo (readies only carry
    // the digest). Delivery waits for it.
    std::optional<Bytes> payload;
    std::set<sim::ProcessId> echoes;
    std::set<sim::ProcessId> readies;
    bool ready_sent = false;
  };

  static std::uint64_t flow_key(sim::ProcessId source,
                                const crypto::Digest& digest);
  Flow& flow_of(sim::ProcessId source, const crypto::Digest& digest);

  void maybe_send_ready(sim::Context& ctx, Flow& flow);
  void maybe_deliver(sim::Context& ctx, Flow& flow);

  Config cfg_;
  DeliverFn on_deliver_;
  // Interned once at construction; handle() matches by integer id.
  sim::Tag tag_initial_;
  sim::Tag tag_echo_;
  sim::Tag tag_ready_;

  sim::FlatMap64<std::vector<Flow>> flows_;
  std::set<sim::ProcessId> echoed_sources_;  // echo once per source
  std::vector<bool> delivered_;
  std::size_t delivered_count_ = 0;
};

}  // namespace coincidence::ba
