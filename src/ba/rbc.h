// Bracha's reliable broadcast (Information & Computation 1987) — the
// classic echo/ready primitive, n > 3f:
//
//   source:            broadcast <initial, m>
//   on <initial, m>:   broadcast <echo, src, m>          (once per source)
//   on <echo, src, m>  from > (n+f)/2 distinct: broadcast <ready, src, m>
//   on <ready, src, m> from f+1 distinct:       broadcast <ready, src, m>
//   on <ready, src, m> from 2f+1 distinct:      deliver (src, m)
//
// Guarantees: if the source is correct everyone delivers its m; if any
// correct process delivers (src, m), every correct process delivers
// (src, m) and nobody delivers (src, m') with m' != m. Used as the
// broadcast layer of the Bracha BA baseline and independently tested.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>

#include "common/bytes.h"
#include "sim/process.h"

namespace coincidence::ba {

class ReliableBroadcast {
 public:
  struct Config {
    std::string tag;  // instance namespace; one broadcast per source in it
    std::size_t n = 0;
    std::size_t f = 0;
  };

  /// Fires exactly once per source whose broadcast gets delivered.
  using DeliverFn =
      std::function<void(sim::ProcessId source, const Bytes& payload)>;

  ReliableBroadcast(Config cfg, DeliverFn on_deliver);

  /// Broadcasts this process's message for the instance. `words` is the
  /// paper word count of the payload.
  void broadcast(sim::Context& ctx, Bytes payload, std::size_t words);

  bool handle(sim::Context& ctx, const sim::Message& msg);

  bool delivered(sim::ProcessId source) const {
    return delivered_.count(source) > 0;
  }
  std::size_t delivered_count() const { return delivered_.size(); }

 private:
  // Per (source, payload) echo/ready tallies. Byzantine sources may
  // equivocate, producing several live keys for one source; the delivery
  // guard ensures at most one wins.
  struct FlowKey {
    sim::ProcessId source;
    Bytes payload;
    bool operator<(const FlowKey& o) const {
      return source != o.source ? source < o.source : payload < o.payload;
    }
  };
  struct Flow {
    std::set<sim::ProcessId> echoes;
    std::set<sim::ProcessId> readies;
  };

  void maybe_send_ready(sim::Context& ctx, const FlowKey& key);
  void maybe_deliver(sim::Context& ctx, const FlowKey& key);

  Config cfg_;
  DeliverFn on_deliver_;
  // Interned once at construction; handle() matches by integer id.
  sim::Tag tag_initial_;
  sim::Tag tag_echo_;
  sim::Tag tag_ready_;
  std::size_t payload_words_ = 1;

  std::map<FlowKey, Flow> flows_;
  std::set<sim::ProcessId> echoed_sources_;  // echo once per source
  std::set<FlowKey> ready_sent_;
  std::set<sim::ProcessId> delivered_;
};

}  // namespace coincidence::ba
