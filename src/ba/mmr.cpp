#include "ba/mmr.h"

#include "common/errors.h"
#include "common/ser.h"

namespace coincidence::ba {

namespace {
constexpr std::size_t kWordsPerMessage = 1;  // one finite-domain value
}  // namespace

Mmr::Mmr(Config cfg, Value initial) : cfg_(std::move(cfg)), est_(initial) {
  COIN_REQUIRE(is_binary(initial), "Mmr: initial value must be 0 or 1");
  COIN_REQUIRE(cfg_.n > 3 * cfg_.f, "Mmr: requires n > 3f");
  COIN_REQUIRE(cfg_.make_coin != nullptr, "Mmr: missing coin factory");
}

int Mmr::decision() const {
  COIN_REQUIRE(decision_.has_value(), "Mmr: not decided yet");
  return *decision_;
}

std::uint64_t Mmr::decided_round() const {
  COIN_REQUIRE(decision_.has_value(), "Mmr: not decided yet");
  return decision_round_;
}

void Mmr::on_start(sim::Context& ctx) { begin_round(ctx); }

void Mmr::begin_round(sim::Context& ctx) {
  if ((decision_ && round_ > decision_round_ + cfg_.extra_rounds) ||
      round_ >= cfg_.max_rounds) {
    halted_ = true;
    if (coin_) retired_coins_.push_back(std::move(coin_));
    return;
  }
  waiting_for_coin_ = false;
  if (coin_) retired_coins_.push_back(std::move(coin_));
  broadcast_bval(ctx, round_, est_);
  check_progress(ctx);
}

const Mmr::RoundTags& Mmr::round_tags(std::uint64_t r) {
  while (round_tags_.size() <= r) {
    const std::string base = round_tag(round_tags_.size());
    round_tags_.push_back({sim::Tag(base + "/bval"), sim::Tag(base + "/aux")});
  }
  return round_tags_[r];
}

void Mmr::broadcast_bval(sim::Context& ctx, std::uint64_t r, Value v) {
  RoundState& rs = state(r);
  if (!rs.bval_relayed.insert(v).second) return;
  Writer w;
  w.u8(v);
  ctx.broadcast(round_tags(r).bval, w.take(), kWordsPerMessage);
}

std::optional<std::uint64_t> Mmr::parse_round(sim::Tag t,
                                              std::string_view& rest) const {
  // Parsed off the interner's resolved string; `rest` views into it, so
  // the message path allocates nothing.
  const std::string& tag = t.str();
  if (tag.compare(0, cfg_.tag.size(), cfg_.tag) != 0) return std::nullopt;
  std::size_t p = cfg_.tag.size();
  if (p >= tag.size() || tag[p] != '/') return std::nullopt;
  ++p;
  std::uint64_t r = 0;
  bool any = false;
  while (p < tag.size() && tag[p] >= '0' && tag[p] <= '9') {
    r = r * 10 + static_cast<std::uint64_t>(tag[p] - '0');
    ++p;
    any = true;
  }
  if (!any || p >= tag.size() || tag[p] != '/') return std::nullopt;
  rest = std::string_view(tag).substr(p + 1);
  return r;
}

void Mmr::on_message(sim::Context& ctx, const sim::Message& msg) {
  retired_coins_.clear();  // safe point, no coin handle() frame active
  if (halted_) return;

  std::string_view rest;
  auto r = parse_round(msg.tag, rest);
  if (!r || *r >= cfg_.max_rounds) return;

  if (rest == "bval" || rest == "aux") {
    Value v;
    try {
      Reader reader(msg.payload);
      v = reader.u8();
      reader.done();
    } catch (const CodecError&) {
      return;
    }
    if (!is_binary(v)) return;
    RoundState& rs = state(*r);
    if (rest == "bval") {
      if (!rs.bval_senders[v].insert(msg.from).second) return;
      // BV-broadcast: relay after f+1, accept into bin_values after 2f+1.
      if (rs.bval_senders[v].size() >= cfg_.f + 1)
        broadcast_bval(ctx, *r, v);
      if (rs.bval_senders[v].size() >= 2 * cfg_.f + 1)
        rs.bin_values.insert(v);
    } else {
      rs.aux.emplace(msg.from, v);  // first aux per sender
    }
    check_progress(ctx);
    return;
  }

  // Coin traffic: route to the live instance or stash for the round we
  // have not reached yet.
  if (waiting_for_coin_ && coin_ && *r == round_ &&
      coin_->handle(ctx, msg)) {
    return;
  }
  if (*r >= round_) coin_backlog_.push_back(msg);
}

void Mmr::check_progress(sim::Context& ctx) {
  if (halted_ || waiting_for_coin_) return;
  RoundState& rs = state(round_);

  if (!rs.aux_sent && !rs.bin_values.empty()) {
    rs.aux_sent = true;
    Writer w;
    w.u8(*rs.bin_values.begin());
    ctx.broadcast(round_tags(round_).aux, w.take(), kWordsPerMessage);
  }
  if (!rs.aux_sent) return;

  // Wait for n−f aux messages whose values all lie in bin_values.
  std::set<Value> vals;
  std::size_t supporting = 0;
  for (const auto& [sender, v] : rs.aux) {
    if (rs.bin_values.count(v)) {
      ++supporting;
      vals.insert(v);
    }
  }
  if (supporting < cfg_.n - cfg_.f) return;

  // Proposal set fixed — only now flip the coin (the ordering the paper
  // stresses for Algorithm 4 holds here too).
  vals_ = vals;
  waiting_for_coin_ = true;
  std::string ctag = round_tag(round_) + "/coin";
  coin_ = cfg_.make_coin(round_, ctag);
  COIN_REQUIRE(coin_ != nullptr, "Mmr: coin factory returned null");
  coin_ = std::make_unique<coin::CallbackCoin>(std::move(coin_), [this, &ctx](int c) {
    on_coin(ctx, c);
  });
  coin_->start(ctx);

  // Replay coin messages that arrived early for this round.
  std::vector<sim::Message> backlog;
  backlog.swap(coin_backlog_);
  for (auto& m : backlog) {
    std::string_view rest;
    auto r = parse_round(m.tag, rest);
    if (!r || *r < round_) continue;  // stale
    if (waiting_for_coin_ && coin_ && *r == round_ && coin_->handle(ctx, m))
      continue;
    coin_backlog_.push_back(m);
  }
}

void Mmr::on_coin(sim::Context& ctx, int c) {
  if (vals_.size() == 1) {
    Value v = *vals_.begin();
    est_ = v;
    if (static_cast<int>(v) == c && !decision_) {
      decision_ = c;
      decision_round_ = round_;
      ctx.note_decide(cfg_.tag, *decision_, round_);
    }
  } else {
    est_ = static_cast<Value>(c);
  }
  ++round_;
  ctx.note_round(round_);
  begin_round(ctx);
}

}  // namespace coincidence::ba
