#include "committee/sampler.h"

#include "common/errors.h"
#include "common/ser.h"

namespace coincidence::committee {

Sampler::Sampler(std::shared_ptr<const crypto::Vrf> vrf,
                 std::shared_ptr<const crypto::KeyRegistry> registry,
                 double lambda_over_n)
    : vrf_(std::move(vrf)),
      registry_(std::move(registry)),
      lambda_over_n_(lambda_over_n) {
  COIN_REQUIRE(vrf_ != nullptr && registry_ != nullptr,
               "Sampler needs vrf and registry");
  COIN_REQUIRE(lambda_over_n_ > 0.0 && lambda_over_n_ <= 1.0,
               "Sampler: lambda/n must be in (0, 1]");
}

Bytes Sampler::vrf_input(const std::string& seed) const {
  Writer w;
  w.str("cmte").str(seed);
  return w.take();
}

Sampler::Election Sampler::sample(ProcessId i, const std::string& seed) const {
  crypto::VrfOutput out = vrf_->eval(registry_->sk_of(i), vrf_input(seed));
  bool sampled = crypto::vrf_value_as_unit_double(out.value) < lambda_over_n_;
  Writer w;
  w.blob(out.value).blob(out.proof);
  return {sampled, w.take()};
}

bool Sampler::committee_val(const std::string& seed, ProcessId i,
                            BytesView proof) const {
  if (!registry_->has(i)) return false;
  BytesView value, vrf_proof;
  try {
    Reader r(proof);
    value = r.blob_view();
    vrf_proof = r.blob_view();
    r.done();
  } catch (const CodecError&) {
    return false;
  }
  if (value.size() < 8) return false;
  if (!vrf_->verify(registry_->pk_of(i), vrf_input(seed), value, vrf_proof))
    return false;
  return crypto::vrf_value_as_unit_double(value) < lambda_over_n_;
}

void Sampler::committee_val_batch(std::span<const ValCheck> checks,
                                  std::vector<char>& out) const {
  out.assign(checks.size(), 0);
  // Structural pass, mirroring committee_val: checks that fail registry
  // lookup / decoding are rejected without entering the VRF batch.
  std::vector<Bytes> inputs(checks.size());  // owns the VRF input bytes
  std::vector<crypto::VrfBatchEntry> entries;
  std::vector<std::size_t> entry_of;  // entries[j] came from checks[entry_of[j]]
  entries.reserve(checks.size());
  entry_of.reserve(checks.size());
  std::vector<BytesView> values(checks.size());
  for (std::size_t i = 0; i < checks.size(); ++i) {
    const ValCheck& c = checks[i];
    if (!registry_->has(c.id)) continue;
    BytesView value, vrf_proof;
    try {
      Reader r(c.proof);
      value = r.blob_view();
      vrf_proof = r.blob_view();
      r.done();
    } catch (const CodecError&) {
      continue;
    }
    if (value.size() < 8) continue;
    inputs[i] = vrf_input(*c.seed);
    values[i] = value;
    entries.push_back(crypto::VrfBatchEntry{registry_->pk_of(c.id), inputs[i],
                                            value, vrf_proof});
    entry_of.push_back(i);
  }
  std::vector<char> verdicts;
  vrf_->batch_verify(entries, verdicts);
  for (std::size_t j = 0; j < entries.size(); ++j) {
    std::size_t i = entry_of[j];
    out[i] = (verdicts[j] &&
              crypto::vrf_value_as_unit_double(values[i]) < lambda_over_n_)
                 ? 1
                 : 0;
  }
}

CachingSampler::CachingSampler(
    std::shared_ptr<const crypto::Vrf> vrf,
    std::shared_ptr<const crypto::KeyRegistry> registry, double lambda_over_n)
    : Sampler(std::move(vrf), std::move(registry), lambda_over_n) {}

CachingSampler::CacheKey CachingSampler::make_key(ProcessId i,
                                                  const std::string& seed,
                                                  BytesView proof) {
  // FNV-1a over (id, seed, proof) — precomputed once so the table probe
  // costs one integer compare before the final equality check.
  std::uint64_t h = 14695981039346656037ull;
  auto mix = [&h](const unsigned char* data, std::size_t len) {
    for (std::size_t b = 0; b < len; ++b) {
      h ^= data[b];
      h *= 1099511628211ull;
    }
  };
  std::uint64_t id64 = static_cast<std::uint64_t>(i);
  mix(reinterpret_cast<const unsigned char*>(&id64), sizeof(id64));
  mix(reinterpret_cast<const unsigned char*>(seed.data()), seed.size());
  mix(reinterpret_cast<const unsigned char*>(proof.data()), proof.size());
  CacheKey key;
  key.hash = h;
  key.id = i;
  key.seed = seed;
  key.proof.assign(proof.begin(), proof.end());
  return key;
}

Sampler::Election CachingSampler::sample(ProcessId i,
                                         const std::string& seed) const {
  CacheKey key = make_key(i, seed, {});
  auto it = sample_cache_.find(key);
  if (it != sample_cache_.end()) return it->second;
  Election e = Sampler::sample(i, seed);
  sample_cache_.emplace(std::move(key), e);
  return e;
}

bool CachingSampler::committee_val(const std::string& seed, ProcessId i,
                                   BytesView proof) const {
  CacheKey key = make_key(i, seed, proof);
  auto it = val_cache_.find(key);
  if (it != val_cache_.end()) return it->second;
  bool ok = Sampler::committee_val(seed, i, proof);
  val_cache_.emplace(std::move(key), ok);
  return ok;
}

void CachingSampler::committee_val_batch(std::span<const ValCheck> checks,
                                         std::vector<char>& out) const {
  out.assign(checks.size(), 0);
  std::vector<CacheKey> keys(checks.size());
  std::vector<ValCheck> misses;
  std::vector<std::size_t> miss_of;  // misses[j] is checks[miss_of[j]]
  for (std::size_t i = 0; i < checks.size(); ++i) {
    keys[i] = make_key(checks[i].id, *checks[i].seed, checks[i].proof);
    auto it = val_cache_.find(keys[i]);
    if (it != val_cache_.end()) {
      out[i] = it->second ? 1 : 0;
    } else {
      misses.push_back(checks[i]);
      miss_of.push_back(i);
    }
  }
  if (misses.empty()) return;
  std::vector<char> verdicts;
  Sampler::committee_val_batch(misses, verdicts);
  for (std::size_t j = 0; j < misses.size(); ++j) {
    std::size_t i = miss_of[j];
    out[i] = verdicts[j];
    // A batch may carry the same tuple twice; emplace keeps the first.
    val_cache_.emplace(std::move(keys[i]), verdicts[j] != 0);
  }
}

}  // namespace coincidence::committee
