// Validated committee sampling (§5.1).
//
// sample_i(s, λ) is a *local* computation: process i evaluates its VRF on
// the committee seed and is elected iff the output, mapped to [0,1), is
// below λ/n. The returned proof is the VRF output+proof; committee-val
// verifies it against i's public key and recomputes the threshold test —
// so (a) election needs no communication, (b) nobody can predict another
// process's membership (VRF pseudorandomness), and (c) membership claims
// are unforgeable (VRF uniqueness).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <utility>

#include "common/bytes.h"
#include "crypto/key_registry.h"
#include "crypto/vrf.h"

namespace coincidence::committee {

using crypto::ProcessId;

class Sampler {
 public:
  /// `lambda_over_n` is the per-process election probability λ/n.
  Sampler(std::shared_ptr<const crypto::Vrf> vrf,
          std::shared_ptr<const crypto::KeyRegistry> registry,
          double lambda_over_n);
  virtual ~Sampler() = default;

  struct Election {
    bool sampled = false;
    Bytes proof;  // serialized VRF output; 1 word on the wire
  };

  /// sample_i(s, λ): process i's private election for committee seed `s`.
  virtual Election sample(ProcessId i, const std::string& seed) const;

  /// committee-val(s, λ, i, σ): public verification. True iff `proof` is
  /// i's valid election proof for `seed` AND it proves membership.
  virtual bool committee_val(const std::string& seed, ProcessId i,
                             BytesView proof) const;

  double threshold() const { return lambda_over_n_; }

 private:
  Bytes vrf_input(const std::string& seed) const;

  std::shared_ptr<const crypto::Vrf> vrf_;
  std::shared_ptr<const crypto::KeyRegistry> registry_;
  double lambda_over_n_;
};

/// Memoizing decorator. VRF evaluation and proof verification are pure
/// functions, so both directions cache perfectly; the approver's ok-proof
/// validation (§6.1) re-verifies the same W elections for every one of
/// the ~λ ok messages a process receives, which this collapses to one
/// verification each — the standard verify-once optimization a real node
/// would ship. Single-threaded by design, like the simulator.
class CachingSampler final : public Sampler {
 public:
  CachingSampler(std::shared_ptr<const crypto::Vrf> vrf,
                 std::shared_ptr<const crypto::KeyRegistry> registry,
                 double lambda_over_n);

  Election sample(ProcessId i, const std::string& seed) const override;
  bool committee_val(const std::string& seed, ProcessId i,
                     BytesView proof) const override;

  std::size_t sample_cache_size() const { return sample_cache_.size(); }
  std::size_t val_cache_size() const { return val_cache_.size(); }

 private:
  mutable std::map<std::pair<ProcessId, std::string>, Election> sample_cache_;
  // key: (seed, id, proof bytes) -> verdict.
  mutable std::map<std::tuple<std::string, ProcessId, Bytes>, bool> val_cache_;
};

}  // namespace coincidence::committee
