// Validated committee sampling (§5.1).
//
// sample_i(s, λ) is a *local* computation: process i evaluates its VRF on
// the committee seed and is elected iff the output, mapped to [0,1), is
// below λ/n. The returned proof is the VRF output+proof; committee-val
// verifies it against i's public key and recomputes the threshold test —
// so (a) election needs no communication, (b) nobody can predict another
// process's membership (VRF pseudorandomness), and (c) membership claims
// are unforgeable (VRF uniqueness).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "crypto/key_registry.h"
#include "crypto/vrf.h"

namespace coincidence::committee {

using crypto::ProcessId;

class Sampler {
 public:
  /// `lambda_over_n` is the per-process election probability λ/n.
  Sampler(std::shared_ptr<const crypto::Vrf> vrf,
          std::shared_ptr<const crypto::KeyRegistry> registry,
          double lambda_over_n);
  virtual ~Sampler() = default;

  struct Election {
    bool sampled = false;
    Bytes proof;  // serialized VRF output; 1 word on the wire
  };

  /// sample_i(s, λ): process i's private election for committee seed `s`.
  virtual Election sample(ProcessId i, const std::string& seed) const;

  /// committee-val(s, λ, i, σ): public verification. True iff `proof` is
  /// i's valid election proof for `seed` AND it proves membership.
  virtual bool committee_val(const std::string& seed, ProcessId i,
                             BytesView proof) const;

  /// One committee-val check of a batch. `seed` is non-owning and must
  /// outlive the committee_val_batch call.
  struct ValCheck {
    const std::string* seed = nullptr;
    ProcessId id = 0;
    BytesView proof;
  };

  /// Batched committee-val: on return out[i] == committee_val(
  /// *checks[i].seed, checks[i].id, checks[i].proof), out sized to match.
  /// All underlying VRF verifications fold into ONE Vrf::batch_verify
  /// call — a near-k-fold multi-exp amortization on the DDH backend.
  virtual void committee_val_batch(std::span<const ValCheck> checks,
                                   std::vector<char>& out) const;

  double threshold() const { return lambda_over_n_; }

 private:
  Bytes vrf_input(const std::string& seed) const;

  std::shared_ptr<const crypto::Vrf> vrf_;
  std::shared_ptr<const crypto::KeyRegistry> registry_;
  double lambda_over_n_;
};

/// Memoizing decorator. VRF evaluation and proof verification are pure
/// functions, so both directions cache perfectly; the approver's ok-proof
/// validation (§6.1) re-verifies the same W elections for every one of
/// the ~λ ok messages a process receives, which this collapses to one
/// verification each — the standard verify-once optimization a real node
/// would ship. Single-threaded by design, like the simulator.
class CachingSampler final : public Sampler {
 public:
  CachingSampler(std::shared_ptr<const crypto::Vrf> vrf,
                 std::shared_ptr<const crypto::KeyRegistry> registry,
                 double lambda_over_n);

  Election sample(ProcessId i, const std::string& seed) const override;
  bool committee_val(const std::string& seed, ProcessId i,
                     BytesView proof) const override;
  /// Probes the verdict cache per check and batches only the misses
  /// (then caches their verdicts), so the approver's repeated ok-proof
  /// validations still collapse to one verification each.
  void committee_val_batch(std::span<const ValCheck> checks,
                           std::vector<char>& out) const override;

  std::size_t sample_cache_size() const { return sample_cache_.size(); }
  std::size_t val_cache_size() const { return val_cache_.size(); }

 private:
  // Cache keys carry their FNV-1a hash, computed once at lookup: the
  // unordered_map never re-walks the seed/proof bytes the way the old
  // std::map did on every tree-node comparison (O(log n) string
  // compares per hit → one hash + one final equality check).
  struct CacheKey {
    std::uint64_t hash = 0;
    ProcessId id = 0;
    std::string seed;
    Bytes proof;  // empty for sample-cache keys

    bool operator==(const CacheKey& o) const {
      return hash == o.hash && id == o.id && seed == o.seed &&
             proof == o.proof;
    }
  };
  struct CacheKeyHash {
    std::size_t operator()(const CacheKey& k) const {
      return static_cast<std::size_t>(k.hash);
    }
  };
  static CacheKey make_key(ProcessId i, const std::string& seed,
                           BytesView proof);

  mutable std::unordered_map<CacheKey, Election, CacheKeyHash> sample_cache_;
  // key: (seed, id, proof bytes) -> verdict.
  mutable std::unordered_map<CacheKey, bool, CacheKeyHash> val_cache_;
};

}  // namespace coincidence::committee
