// Protocol parameters, exactly as constrained by the paper.
//
// §2:   f = (1/3 − ε)n with max{3/(8 ln n), 0.109} + 1/(8 ln n) < ε < 1/3.
// §5.1: λ = 8 ln n;  max{1/λ, 0.0362} < d < ε/3 − 1/(3λ);
//       W = ⌈(2/3 + 3d)λ⌉  (wait threshold),
//       B = ⌊(1/3 − d)λ⌋  (max Byzantine per committee, whp).
//
// Also provides the paper's analytic bounds as plain functions so the
// benches can print "paper bound vs measured" side by side:
//   Lemma 4.8    shared-coin success rate  (18ε² + 24ε − 1) / (6(1+6ε))
//   Lemma B.7    WHP-coin success rate     (18d² + 27d − 1) / (3(5+6d)(1−d)(1+9d))
//   Claim 1      Chernoff failure bounds for S1–S4.
#pragma once

#include <cstddef>
#include <string>

namespace coincidence::committee {

/// An open interval (lo, hi); empty/infeasible when lo >= hi.
struct Window {
  double lo = 0.0;
  double hi = 0.0;
  bool feasible() const { return lo < hi; }
  double midpoint() const { return (lo + hi) / 2.0; }
  bool contains(double x) const { return lo < x && x < hi; }
};

/// The admissible ε interval for a given n (§2).
Window epsilon_window(std::size_t n);

/// The admissible d interval for a given n and ε (§5.1).
Window d_window(std::size_t n, double epsilon);

/// Smallest n for which both windows are non-empty when ε and d are taken
/// at their window midpoints.
std::size_t min_feasible_n();

struct Params {
  std::size_t n = 0;
  std::size_t f = 0;  // ⌊(1/3 − ε)n⌋
  double epsilon = 0.0;
  double lambda = 0.0;  // 8 ln n
  double d = 0.0;
  std::size_t W = 0;  // committee wait threshold
  std::size_t B = 0;  // committee Byzantine bound

  /// Per-process committee election probability λ/n.
  double sample_prob() const;

  /// Builds parameters, validating the paper's windows. With
  /// strict=false the lower-bound constants (0.109 / 0.0362) are waived —
  /// used only by clearly-labelled small-n exploration benches; W/B are
  /// still computed from the same formulas.
  static Params derive(std::size_t n, double epsilon, double d,
                       bool strict = true);

  /// Chooses ε and d at their window midpoints (strict mode only; throws
  /// ConfigError when n is below min_feasible_n()).
  static Params derive_auto(std::size_t n);

  std::string describe() const;
};

/// Lemma 4.8: lower bound on the full-participation coin's success rate.
double coin_success_lower_bound(double epsilon);

/// Lemma B.7: lower bound on the committee coin's success rate (whp).
double whp_coin_success_lower_bound(double d);

/// Claim 1 Chernoff failure-probability upper bounds (per committee).
double s1_failure_bound(double lambda, double d);
double s2_failure_bound(double lambda, double d);
double s3_failure_bound(double lambda, double d, double epsilon);
double s4_failure_bound(double lambda, double d, double epsilon);

}  // namespace coincidence::committee
