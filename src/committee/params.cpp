#include "committee/params.h"

#include <cmath>
#include <sstream>

#include "common/errors.h"

namespace coincidence::committee {

namespace {
double lambda_of(std::size_t n) { return 8.0 * std::log(static_cast<double>(n)); }
}  // namespace

Window epsilon_window(std::size_t n) {
  if (n < 2) return {0.0, 0.0};
  double ln_n = std::log(static_cast<double>(n));
  double lo = std::max(3.0 / (8.0 * ln_n), 0.109) + 1.0 / (8.0 * ln_n);
  return {lo, 1.0 / 3.0};
}

Window d_window(std::size_t n, double epsilon) {
  if (n < 2) return {0.0, 0.0};
  double lambda = lambda_of(n);
  double lo = std::max(1.0 / lambda, 0.0362);
  double hi = epsilon / 3.0 - 1.0 / (3.0 * lambda);
  return {lo, hi};
}

std::size_t min_feasible_n() {
  static const std::size_t cached = [] {
    for (std::size_t n = 2; n < 1000000; ++n) {
      Window ew = epsilon_window(n);
      if (!ew.feasible()) continue;
      Window dw = d_window(n, ew.midpoint());
      if (dw.feasible()) return n;
    }
    return std::size_t{0};
  }();
  return cached;
}

double Params::sample_prob() const {
  return std::min(1.0, lambda / static_cast<double>(n));
}

Params Params::derive(std::size_t n, double epsilon, double d, bool strict) {
  if (n < 2) throw ConfigError("Params: n must be at least 2");
  if (!(epsilon > 0.0 && epsilon < 1.0 / 3.0))
    throw ConfigError("Params: epsilon must lie in (0, 1/3)");

  Params p;
  p.n = n;
  p.epsilon = epsilon;
  p.lambda = lambda_of(n);
  p.d = d;
  p.f = static_cast<std::size_t>(
      std::floor((1.0 / 3.0 - epsilon) * static_cast<double>(n)));
  p.W = static_cast<std::size_t>(std::ceil((2.0 / 3.0 + 3.0 * d) * p.lambda));
  p.B = static_cast<std::size_t>(std::floor((1.0 / 3.0 - d) * p.lambda));

  if (strict) {
    Window ew = epsilon_window(n);
    if (!ew.contains(epsilon)) {
      std::ostringstream os;
      os << "Params: epsilon=" << epsilon << " outside the paper window ("
         << ew.lo << ", " << ew.hi << ") for n=" << n;
      throw ConfigError(os.str());
    }
    Window dw = d_window(n, epsilon);
    if (!dw.contains(d)) {
      std::ostringstream os;
      os << "Params: d=" << d << " outside the paper window (" << dw.lo
         << ", " << dw.hi << ") for n=" << n << ", epsilon=" << epsilon;
      throw ConfigError(os.str());
    }
  } else {
    // Relaxed mode still requires basic sanity: thresholds must be
    // satisfiable and d positive.
    if (!(d > 0.0 && d < 1.0 / 3.0))
      throw ConfigError("Params: d must lie in (0, 1/3)");
  }
  return p;
}

Params Params::derive_auto(std::size_t n) {
  Window ew = epsilon_window(n);
  if (!ew.feasible())
    throw ConfigError("Params: epsilon window empty for n=" +
                      std::to_string(n));
  double eps = ew.midpoint();
  Window dw = d_window(n, eps);
  if (!dw.feasible())
    throw ConfigError("Params: d window empty for n=" + std::to_string(n));
  return derive(n, eps, dw.midpoint(), /*strict=*/true);
}

std::string Params::describe() const {
  std::ostringstream os;
  os << "n=" << n << " f=" << f << " eps=" << epsilon << " lambda=" << lambda
     << " d=" << d << " W=" << W << " B=" << B;
  return os.str();
}

double coin_success_lower_bound(double epsilon) {
  return (18.0 * epsilon * epsilon + 24.0 * epsilon - 1.0) /
         (6.0 * (1.0 + 6.0 * epsilon));
}

double whp_coin_success_lower_bound(double d) {
  return (18.0 * d * d + 27.0 * d - 1.0) /
         (3.0 * (5.0 + 6.0 * d) * (1.0 - d) * (1.0 + 9.0 * d));
}

double s1_failure_bound(double lambda, double d) {
  return std::exp(-d * d * lambda / (2.0 + d));
}

double s2_failure_bound(double lambda, double d) {
  return std::exp(-d * d * lambda / 2.0);
}

double s3_failure_bound(double lambda, double d, double epsilon) {
  // Appendix A, Lemma S3: X ~ Bin((2/3+ε)n, λ/n); δ = 1 − (2/3+d')/(2/3+ε)
  // with d' = 3d + 1/λ; bound exp(−δ² E[X] / 2).
  double dp = 3.0 * d + 1.0 / lambda;
  double delta = 1.0 - (2.0 / 3.0 + dp) / (2.0 / 3.0 + epsilon);
  if (delta < 0.0) return 1.0;  // outside the lemma's hypothesis
  double mean = (2.0 / 3.0 + epsilon) * lambda;
  return std::exp(-delta * delta * mean / 2.0);
}

double s4_failure_bound(double lambda, double d, double epsilon) {
  // Appendix A, Lemma S4: X ~ Bin((1/3−ε)n, λ/n); δ = (ε−d)/(1/3−ε);
  // bound exp(−δ² E[X] / (2+δ)).
  if (epsilon <= d) return 1.0;
  double delta = (epsilon - d) / (1.0 / 3.0 - epsilon);
  double mean = (1.0 / 3.0 - epsilon) * lambda;
  return std::exp(-delta * delta * mean / (2.0 + delta));
}

}  // namespace coincidence::committee
