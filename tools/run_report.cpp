// run_report: replay any (config, seed) and explain where the run's
// words and time went.
//
//   ./run_report --protocol ba-whp --n 64 --seed 7
//                [--ones k] [--crash c --silent s --junk j
//                 --crash-recover r --recover-after 5000]
//                [--adversary random|fifo|delay-senders|split|heavy-tail]
//                [--rbc bracha|ec]
//                [--drop p --dup p --replay p] [--reliable-channel]
//                [--epsilon 0.25 --d 0.02] [--max-rounds 64]
//                [--top 10] [--samples 1] [--threads 0]
//                [--shards 0 --sim-threads 0]
//                [--trace PATH] [--json PATH] [--prom PATH]   ("-" = stdout)
//
// Every run is a pure function of (config, seed), so this tool replays
// the exact run an experiment saw, with telemetry attached:
//   * per-phase word breakdown — partitions the paper's word-complexity
//     measure exactly (the totals line cross-checks the sum);
//   * top-k hot tags by correct-sender words;
//   * the critical path reconstructed from the structured trace's
//     vector clocks — the longest causal message chain, i.e. the
//     paper's duration metric made concrete;
//   * rounds-to-decide, against the paper's per-round success-rate
//     lower bound when the protocol has one (Lemma 4.8 / B.7);
//   * optional exports: structured JSONL trace, metrics JSON,
//     Prometheus text.
//
// With --samples S > 1, seeds seed..seed+S-1 run on a thread pool
// (order-preserving, bit-identical to serial — --threads changes
// nothing but wall-clock) and the round distribution is estimated
// across samples.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <map>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "committee/params.h"
#include "common/args.h"
#include "core/parallel.h"
#include "core/runner.h"
#include "sim/trace.h"

using namespace coincidence;

namespace {

int fail(const std::string& message) {
  std::cerr << "run_report: " << message << '\n';
  return 2;
}

/// Writes `body(os)` to `path`; "-" selects stdout.
template <typename Body>
bool write_out(const std::string& path, Body&& body) {
  if (path == "-") {
    body(std::cout);
    return true;
  }
  std::ofstream out(path);
  if (!out) return false;
  body(out);
  return true;
}

/// One hop of the reconstructed critical path.
struct Hop {
  sim::ProcessId from = 0;
  sim::ProcessId to = 0;
  std::string tag;
  std::uint64_t depth = 0;
};

/// Reconstructs the longest causal message chain from the structured
/// trace: start at the deepest deliver event, then repeatedly step to
/// the delivery that set the sender's causal depth just before it sent.
/// Vector clocks guard the chain: a predecessor must be causally
/// contained in the hop's send snapshot. Self-deliveries are internal
/// (no deliver event), so the chain may stop early at a process whose
/// depth came from its own queue.
std::vector<Hop> critical_path(const std::vector<sim::TraceRecorder::Rec>& recs) {
  using Rec = sim::TraceRecorder::Rec;
  std::map<std::uint64_t, std::size_t> send_at;  // send_seq -> record idx
  // Chronological deliver-record indices per process.
  std::map<sim::ProcessId, std::vector<std::size_t>> delivers_at;
  std::size_t deepest = recs.size();
  std::uint64_t max_depth = 0;
  for (std::size_t i = 0; i < recs.size(); ++i) {
    const Rec& r = recs[i];
    if (r.kind == Rec::Kind::kSend) {
      send_at.emplace(r.send_seq, i);
    } else if (r.kind == Rec::Kind::kDeliver) {
      delivers_at[r.to].push_back(i);
      if (r.depth >= max_depth) {
        max_depth = r.depth;
        deepest = i;
      }
    }
  }

  std::vector<Hop> chain;
  if (deepest == recs.size()) return chain;

  std::size_t cur = deepest;
  while (true) {
    const Rec& d = recs[cur];
    chain.push_back({d.from, d.to, d.tag, d.depth});
    auto sent = send_at.find(d.send_seq);
    if (sent == send_at.end()) break;
    const Rec& s = recs[sent->second];
    if (s.depth <= 1) break;  // the sender started this chain
    // The delivery that raised the sender to depth s.depth - 1, latest
    // before the send, causally contained in the send's clock.
    const auto& cands = delivers_at[s.from];
    std::size_t prev = recs.size();
    for (std::size_t idx : cands) {
      if (idx >= sent->second) break;
      const Rec& c = recs[idx];
      if (c.depth != s.depth - 1) continue;
      bool contained = c.vc.size() <= s.vc.size();
      for (std::size_t i = 0; contained && i < c.vc.size(); ++i)
        contained = c.vc[i] <= s.vc[i];
      if (contained) prev = idx;
    }
    if (prev == recs.size()) break;
    cur = prev;
  }
  std::reverse(chain.begin(), chain.end());
  return chain;
}

void print_critical_path(std::ostream& os, const std::vector<Hop>& chain) {
  os << "critical path (" << chain.size() << " hops";
  if (!chain.empty() && chain.front().depth > 1)
    os << ", suffix — earlier hops ran through self-queues";
  os << "):\n";
  const std::size_t kHead = 8, kTail = 8;
  for (std::size_t i = 0; i < chain.size(); ++i) {
    if (chain.size() > kHead + kTail && i == kHead) {
      os << "  ... " << (chain.size() - kHead - kTail) << " hops ...\n";
      i = chain.size() - kTail;
    }
    const Hop& h = chain[i];
    os << "  depth " << h.depth << ": " << h.from << " -> " << h.to << "  "
       << h.tag << '\n';
  }
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);

  core::RunOptions o;
  const std::string proto_name = args.get("protocol", "ba-whp");
  auto proto = core::protocol_from_name(proto_name);
  if (!proto) return fail("unknown --protocol " + proto_name);
  o.protocol = *proto;
  o.n = static_cast<std::size_t>(args.get_int("n", 64));
  o.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  o.epsilon = args.get_double("epsilon", 0.25);
  o.d = args.get_double("d", 0.02);
  o.max_rounds = static_cast<std::uint64_t>(args.get_int("max-rounds", 64));
  o.crash = static_cast<std::size_t>(args.get_int("crash", 0));
  o.silent = static_cast<std::size_t>(args.get_int("silent", 0));
  o.junk = static_cast<std::size_t>(args.get_int("junk", 0));
  o.crash_recover =
      static_cast<std::size_t>(args.get_int("crash-recover", 0));
  o.recover_after =
      static_cast<std::uint64_t>(args.get_int("recover-after", 5000));
  o.reliable_channel = args.get_bool("reliable-channel", false);
  o.network.default_link.drop_p = args.get_double("drop", 0.0);
  o.network.default_link.dup_p = args.get_double("dup", 0.0);
  o.network.default_link.replay_p = args.get_double("replay", 0.0);

  const auto ones = static_cast<std::size_t>(
      args.get_int("ones", static_cast<std::int64_t>(o.n / 2)));
  o.inputs.assign(o.n, ba::kZero);
  for (std::size_t i = 0; i < ones && i < o.n; ++i) o.inputs[i] = ba::kOne;

  // Reliable-broadcast backend for the RBC-based protocols (kBracha):
  // Bracha full-value echoes or erasure-coded AVID-M fragments.
  const std::string rbc_name = args.get("rbc", "bracha");
  const auto rbc = ba::parse_rbc_backend(rbc_name);
  if (!rbc) return fail("unknown --rbc " + rbc_name);
  o.rbc = *rbc;

  const std::string adv = args.get("adversary", "random");
  if (adv == "fifo") o.adversary = core::AdversaryKind::kFifo;
  else if (adv == "delay-senders")
    o.adversary = core::AdversaryKind::kDelaySenders;
  else if (adv == "split") o.adversary = core::AdversaryKind::kSplit;
  else if (adv == "heavy-tail")
    o.adversary = core::AdversaryKind::kHeavyTail;
  else if (adv != "random") return fail("unknown --adversary " + adv);

  // Sharded superstep engine (ISSUE 8). The hash-addressed schedule
  // replaces per-delivery adversary choices, so scheduling adversaries
  // are refused rather than silently ignored.
  o.shards = static_cast<std::size_t>(args.get_int("shards", 0));
  o.threads = static_cast<std::size_t>(args.get_int("sim-threads", 0));
  if (o.shards > 0 && adv != "random")
    return fail("--shards needs --adversary random (the superstep "
                "schedule replaces per-delivery adversary choices)");

  const auto top_k = static_cast<std::size_t>(args.get_int("top", 10));
  const auto samples = static_cast<std::size_t>(args.get_int("samples", 1));
  const auto threads = static_cast<std::size_t>(args.get_int("threads", 0));

  // --- The instrumented replay of (config, seed). ---------------------
  sim::TraceOptions topts;
  topts.structured = true;
  topts.tag_filter = args.get("tag-filter", "");
  auto trace = std::make_shared<sim::TraceRecorder>(topts);

  std::map<std::string, sim::Metrics::PhaseDetail> phases;
  std::map<std::string, sim::Metrics::TagDetail> tags;
  std::map<std::string, std::uint64_t> phase_words;
  std::string metrics_json;
  std::string metrics_prom;
  std::string decide_rounds_brief;

  core::RunInstruments instruments;
  instruments.observers.push_back(trace);
  instruments.detailed_metrics = true;
  instruments.metrics_out = [&](const sim::Metrics& m) {
    phases = m.by_phase();
    tags = m.by_tag();
    phase_words = m.words_by_phase();
    decide_rounds_brief = m.decide_rounds().summary();
    std::ostringstream js, pm;
    m.to_json(js);
    m.to_prometheus(pm);
    metrics_json = js.str();
    metrics_prom = pm.str();
  };

  const core::RunReport r = core::run_agreement(o, instruments);

  std::cout << "run_report — " << core::protocol_name(o.protocol)
            << "  n=" << o.n << "  seed=" << o.seed << "  adversary=" << adv
            << "  rbc=" << ba::to_string(o.rbc)
            << "\n  faults: crash=" << o.crash << " silent=" << o.silent
            << " junk=" << o.junk << " crash-recover=" << o.crash_recover
            << "  (f=" << r.protocol_f << ")\n\n";

  std::cout << "decided           : "
            << (r.all_correct_decided ? "all correct" : "NOT ALL") << '\n';
  if (r.decision)
    std::cout << "decision          : " << *r.decision << " (agreement "
              << (r.agreement ? "holds" : "VIOLATED") << ")\n";
  std::cout << "last decided round: " << r.max_decided_round << '\n'
            << "words (correct)   : " << r.correct_words << '\n'
            << "messages          : " << r.messages << '\n'
            << "causal duration   : " << r.duration << '\n';
  if (r.link_drops + r.link_duplicates + r.link_replays + r.retransmits +
          r.dead_letters >
      0)
    std::cout << "link faults       : drops=" << r.link_drops
              << " dups=" << r.link_duplicates
              << " replays=" << r.link_replays
              << " retransmits=" << r.retransmits
              << " dead-letters=" << r.dead_letters << " ("
              << r.dead_letter_words << " words)\n";
  // Engine telemetry lives in the human report ONLY: the --json export
  // is the cross-shard byte-compare surface (CI diffs it across --shards
  // 1/2/4/8), so per-shard counters must never leak into Metrics.
  if (r.shards > 0) {
    std::cout << "sharded engine    : shards=" << r.shards << "  supersteps="
              << r.supersteps << "  merge stalls=" << r.merge_stalls << '\n';
    std::cout << "  deliveries/shard:";
    for (std::size_t s = 0; s < r.shard_deliveries.size(); ++s)
      std::cout << (s == 0 ? " " : " | ") << s << ':'
                << r.shard_deliveries[s];
    std::cout << '\n';
  }
  std::cout << '\n';

  // --- Per-phase word breakdown (partitions correct_words exactly). ---
  std::uint64_t phase_total = 0;
  std::size_t widest = 6;  // at least "verify"
  for (const auto& [phase, words] : phase_words) {
    phase_total += words;
    widest = std::max(widest, phase.size());
  }
  std::cout << "words by phase:\n";
  for (const auto& [phase, words] : phase_words) {
    std::cout << "  " << phase << std::string(widest - phase.size() + 2, ' ')
              << words;
    auto detail = phases.find(phase);
    if (detail != phases.end() && detail->second.messages > 0)
      std::cout << "   (" << detail->second.messages << " msgs, depth "
                << detail->second.depth.brief() << ", latency "
                << detail->second.latency.brief() << ")";
    std::cout << '\n';
  }
  // Deferred coin-share verification is compute, not communication: the
  // row carries zero words, so the partition of correct_words above
  // stays exact while the verification pipeline is still accounted.
  std::cout << "  verify" << std::string(widest - 6 + 2, ' ') << 0 << "   ("
            << r.verify_flushes << " flushes, " << r.verify_shares
            << " shares, " << r.verify_rejects << " rejects, "
            << r.verify_memo_hits << " memo hits)\n";
  // Same deal for the approver's deferred W-signature sweeps: zero words
  // (the ok messages were already charged), pure verification compute.
  // memo hit-rate is the run-wide dedup factor — every ok embeds the
  // SAME W signed echoes, so hits/checks ≈ 1 - 1/n in a clean run.
  if (r.sig_verify_flushes + r.sig_checks > 0) {
    std::cout << "  sig-verify" << std::string(widest > 10 ? widest - 10 + 2 : 2, ' ')
              << 0 << "   (" << r.sig_verify_flushes << " batches, "
              << r.sig_verify_sigs << " sigs, " << r.sig_verify_rejects
              << " rejects";
    if (r.sig_checks > 0)
      std::cout << ", memo hit-rate "
                << (100.0 * static_cast<double>(r.sig_memo_hits) /
                    static_cast<double>(r.sig_checks))
                << "%";
    std::cout << ")\n";
  }
  // Erasure-coding work is compute too: fragments already paid their
  // wire words in the initial/echo rows, so the dissemination row stays
  // at zero words and only surfaces the codec pipeline.
  if (r.rbc_encodes + r.rbc_decodes > 0) {
    std::cout << "  rbc-code" << std::string(widest > 8 ? widest - 8 + 2 : 2, ' ')
              << 0 << "   (" << r.rbc_encodes << " encodes / "
              << r.rbc_fragments_encoded << " fragments, " << r.rbc_decodes
              << " decodes / " << r.rbc_fragments_decoded << " fragments, "
              << r.rbc_decode_failures << " poisoned)\n";
  }
  std::cout << "  total " << phase_total
            << (phase_total == r.correct_words
                    ? " == correct words (exact)"
                    : " != correct words — ACCOUNTING BUG")
            << "\n\n";

  // --- Top-k hot tags by correct-sender words. ------------------------
  std::vector<std::pair<std::string, std::uint64_t>> hot;
  for (const auto& [tag, row] : tags)
    if (row.correct_words > 0) hot.emplace_back(tag, row.correct_words);
  std::sort(hot.begin(), hot.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  if (hot.size() > top_k) hot.resize(top_k);
  std::cout << "top " << hot.size() << " tags by correct words:\n";
  for (const auto& [tag, words] : hot)
    std::cout << "  " << words << "\t" << tag << '\n';
  std::cout << '\n';

  // --- Critical path from the structured trace. -----------------------
  print_critical_path(std::cout, critical_path(trace->records()));
  std::cout << '\n';

  // --- Rounds to decide vs the paper's success-rate bound. ------------
  double rho = 0.0;
  const char* bound_name = nullptr;
  if (o.protocol == core::Protocol::kBaWhp ||
      o.protocol == core::Protocol::kMmrWhpCoin) {
    rho = committee::whp_coin_success_lower_bound(o.d);
    bound_name = "Lemma B.7 (committee coin)";
  } else if (o.protocol == core::Protocol::kMmrSharedCoin) {
    rho = committee::coin_success_lower_bound(o.epsilon);
    bound_name = "Lemma 4.8 (full coin)";
  }
  if (bound_name != nullptr && rho <= 0.0) {
    std::cout << bound_name << ": rho=" << rho
              << " — vacuous at these parameters (relaxed epsilon/d); "
                 "observed distribution only\n";
    bound_name = nullptr;
  }
  std::cout << "decide rounds (this run, all decision events): "
            << decide_rounds_brief << '\n';

  if (samples > 1) {
    std::vector<core::RunOptions> fan(samples, o);
    for (std::size_t i = 0; i < samples; ++i) fan[i].seed = o.seed + i;
    core::ThreadPool pool(threads);
    const auto reports = core::run_agreements_parallel(pool, fan);
    std::map<std::uint64_t, std::size_t> by_round;
    std::size_t undecided = 0;
    for (const auto& rep : reports) {
      if (rep.all_correct_decided) ++by_round[rep.max_decided_round];
      else ++undecided;
    }
    std::cout << "round distribution over " << samples << " seeds ["
              << o.seed << ", " << o.seed + samples - 1 << "]";
    if (bound_name != nullptr)
      std::cout << " vs " << bound_name << " rho=" << rho;
    std::cout << ":\n";
    std::size_t cumulative = 0;
    for (const auto& [round, count] : by_round) {
      cumulative += count;
      std::cout << "  decided by round " << round << ": " << cumulative
                << '/' << samples;
      if (bound_name != nullptr) {
        double bound = 1.0;
        for (std::uint64_t i = 0; i <= round; ++i) bound *= 1.0 - rho;
        std::cout << "   (P[undecided] <= " << bound << ")";
      }
      std::cout << '\n';
    }
    if (undecided > 0)
      std::cout << "  whp-failure tail: " << undecided << '/' << samples
                << " did not fully decide\n";
  } else if (bound_name != nullptr) {
    double bound = 1.0;
    for (std::uint64_t i = 0; i <= r.max_decided_round; ++i)
      bound *= 1.0 - rho;
    std::cout << bound_name << ": rho=" << rho
              << ", P[undecided after round " << r.max_decided_round
              << "] <= " << bound << '\n';
  }

  // --- Exports. -------------------------------------------------------
  if (args.has("trace")) {
    const std::string path = args.get("trace", "-");
    if (!write_out(path, [&](std::ostream& os) { trace->dump_jsonl(os); }))
      return fail("cannot write --trace " + path);
    if (path != "-")
      std::cout << "\ntrace  -> " << path << "  (" << trace->records().size()
                << " records)\n";
  }
  if (args.has("json")) {
    const std::string path = args.get("json", "-");
    if (!write_out(path, [&](std::ostream& os) { os << metrics_json << '\n'; }))
      return fail("cannot write --json " + path);
    if (path != "-") std::cout << "json   -> " << path << '\n';
  }
  if (args.has("prom")) {
    const std::string path = args.get("prom", "-");
    if (!write_out(path, [&](std::ostream& os) { os << metrics_prom; }))
      return fail("cannot write --prom " + path);
    if (path != "-") std::cout << "prom   -> " << path << '\n';
  }

  return phase_total == r.correct_words ? 0 : 1;
}
