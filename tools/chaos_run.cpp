// chaos_run: drive a chaos-orchestrated agreement run (or a sweep of
// them) with online invariant checking, and print per-phase telemetry.
//
// Single run (replays exactly what a CHAOS-VIOLATION repro line names):
//   ./chaos_run --protocol ba-whp --n 32 --seed 7
//               [--schedule "partition@256+768:boundary=16,mode=hold"]
//               [--preset partition-hold|partition-drop|churn|storm|
//                         adaptive|combined]
//               [--adversary random|...|adaptive-corruption]
//               [--ones k] [--crash c --silent s --junk j
//                --crash-recover r --recover-after 5000]
//               [--reliable] [--no-defer-verify] [--expected 0|1]
//               [--quiet]
//   exit 0: run completed with zero invariant violations
//   exit 1: at least one violation (repro line printed on stderr)
//
// Sweep (the CI gate; every cell checks the full invariant catalog):
//   ./chaos_run --sweep 500 [--threads 0] [--seed 1] [--fail-out PATH]
//   Cells cycle deterministically through presets × protocols (weighted
//   toward the cheap n=4 shared-coin protocol) with distinct seeds. The
//   summary digest is an FNV-1a hash over every report's headline fields
//   — identical across --threads values by run_agreements_parallel's
//   order-preserving contract. Failing cells print repro lines (runner)
//   and are appended to --fail-out for CI artifact upload. exit 1 on any
//   violation or undecided cell.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/args.h"
#include "common/errors.h"
#include "core/parallel.h"
#include "core/runner.h"
#include "sim/chaos.h"
#include "sim/observer.h"

using namespace coincidence;

namespace {

int fail(const std::string& message) {
  std::cerr << "chaos_run: " << message << '\n';
  return 2;
}

/// Prints the chaos event stream as it happens: phase begin/end with the
/// delivery tick, corruption and recovery events, partition blocks —
/// the human-readable counterpart of the repro triple.
class PhaseTelemetry final : public sim::Observer {
 public:
  void on_chaos_phase(std::size_t index, const char* kind, bool begin,
                      std::uint64_t at) override {
    if (begin) {
      phase_start_ = deliveries_in_phase_;
      std::cout << "[chaos] phase " << index << " (" << kind << ") begin @ "
                << at << '\n';
    } else {
      std::cout << "[chaos] phase " << index << " (" << kind << ") end @ "
                << at << "  (deliveries in phase: "
                << deliveries_in_phase_ - phase_start_
                << ", held: " << held_ << ", dropped: " << dropped_ << ")\n";
      held_ = dropped_ = 0;
    }
  }
  void on_partition_block(const sim::Message& /*msg*/, bool held) override {
    ++(held ? held_ : dropped_);
  }
  void on_deliver(const sim::Message& /*msg*/) override {
    ++deliveries_in_phase_;
  }
  void on_corrupt(sim::ProcessId target,
                  const sim::FaultPlan& plan) override {
    std::cout << "[chaos] corrupt p" << target << " (mode "
              << static_cast<int>(plan.mode) << ")\n";
  }
  void on_recover(sim::ProcessId target) override {
    std::cout << "[chaos] recover p" << target << '\n';
  }

 private:
  std::uint64_t deliveries_in_phase_ = 0;
  std::uint64_t phase_start_ = 0;
  std::uint64_t held_ = 0;
  std::uint64_t dropped_ = 0;
};

std::optional<core::AdversaryKind> adversary_from_name(
    const std::string& name) {
  if (name == "random") return core::AdversaryKind::kRandom;
  if (name == "fifo") return core::AdversaryKind::kFifo;
  if (name == "delay-senders") return core::AdversaryKind::kDelaySenders;
  if (name == "split") return core::AdversaryKind::kSplit;
  if (name == "heavy-tail") return core::AdversaryKind::kHeavyTail;
  if (name == "adaptive-corruption")
    return core::AdversaryKind::kAdaptiveCorruption;
  return std::nullopt;
}

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 1099511628211ULL;
  }
  return h;
}

/// Order-independent-of-thread-count digest of a sweep: folds the fields
/// that must be bit-identical between serial and parallel execution.
std::uint64_t digest_reports(const std::vector<core::RunReport>& reports) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const auto& r : reports) {
    h = fnv1a(h, r.all_correct_decided ? 1 : 0);
    h = fnv1a(h, r.decision ? static_cast<std::uint64_t>(*r.decision + 1)
                            : 0);
    h = fnv1a(h, r.max_decided_round);
    h = fnv1a(h, r.correct_words);
    h = fnv1a(h, r.messages);
    h = fnv1a(h, r.corrupted);
    h = fnv1a(h, r.partition_held);
    h = fnv1a(h, r.partition_dropped);
    h = fnv1a(h, r.partition_released);
    h = fnv1a(h, r.storm_copies);
    h = fnv1a(h, r.churn_crashes);
    h = fnv1a(h, r.invariant_violations.size());
  }
  return h;
}

/// One sweep cell: the deterministic (protocol, n, preset, adversary)
/// grid the CI gate cycles through, weighted so the expensive n=32
/// committee protocols appear but don't dominate wall-clock.
struct SweepCell {
  core::Protocol protocol;
  std::size_t n;
  std::string preset;
  core::AdversaryKind adversary;
};

std::vector<SweepCell> sweep_grid() {
  const std::vector<std::string>& presets =
      sim::ChaosSchedule::preset_names();
  std::vector<SweepCell> grid;
  // The n=4 shared-coin protocol is cheap: it carries the bulk of the
  // sweep (13 copies of each preset); the committee protocols get one
  // cell per preset each. 13*6 + 6 + 6 = 90 cells per full cycle.
  for (int copy = 0; copy < 13; ++copy)
    for (const std::string& p : presets)
      grid.push_back({core::Protocol::kMmrSharedCoin, 4, p,
                      p == "adaptive" || p == "combined"
                          ? core::AdversaryKind::kAdaptiveCorruption
                          : core::AdversaryKind::kRandom});
  for (const std::string& p : presets)
    grid.push_back({core::Protocol::kMmrWhpCoin, 32, p,
                    p == "adaptive" || p == "combined"
                        ? core::AdversaryKind::kAdaptiveCorruption
                        : core::AdversaryKind::kRandom});
  for (const std::string& p : presets)
    grid.push_back({core::Protocol::kBaWhp, 32, p,
                    p == "adaptive" || p == "combined"
                        ? core::AdversaryKind::kAdaptiveCorruption
                        : core::AdversaryKind::kRandom});
  return grid;
}

core::RunOptions cell_options(const SweepCell& cell, std::uint64_t seed) {
  core::RunOptions o;
  o.protocol = cell.protocol;
  o.n = cell.n;
  o.seed = seed;
  o.adversary = cell.adversary;
  o.chaos = sim::ChaosSchedule::preset(cell.preset, cell.n);
  o.check_invariants = true;
  // Drop-mode partitions lose packets for good: only a retransmitting
  // transport can promise liveness across them (satellite test in
  // tests/chaos covers the same combination whitebox).
  if (cell.preset == "partition-drop" || cell.preset == "combined") {
    o.reliable_channel = true;
    // A drop partition lasts up to 2 units (32n deliveries): give every
    // frame enough retries that exhausting the budget inside the window
    // is impossible — a dead-lettered protocol message stalls liveness.
    o.transport_retransmits = 64;
  }
  // Committee protocols at n=32: hunting the full f=(n-1)/3 can starve a
  // W-threshold quorum outright (asymptotic Chernoff margins don't hold
  // at toy n) — cap the hunter instead of reporting false liveness.
  if (cell.protocol == core::Protocol::kMmrWhpCoin) o.adaptive_victims = 2;
  // Unanimous-input cells double as validity oracles.
  if (seed % 2 == 0) {
    o.inputs.assign(o.n, ba::kOne);
    o.expected_decision = 1;
  } else {
    o.inputs.assign(o.n, ba::kZero);
    o.expected_decision = 0;
  }
  // Churn-heavy presets exercise crash-recovery of the static mix too.
  if (cell.preset == "churn" || cell.preset == "combined") {
    o.crash_recover = 1;
    o.recover_after = 64 * cell.n;
  }
  return o;
}

int run_sweep(const Args& args) {
  const auto total = static_cast<std::size_t>(args.get_int("sweep", 500));
  const auto threads = static_cast<std::size_t>(args.get_int("threads", 0));
  const auto base_seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const std::string fail_out = args.get("fail-out", "");

  const std::vector<SweepCell> grid = sweep_grid();
  std::vector<core::RunOptions> options;
  std::vector<const SweepCell*> cells;
  options.reserve(total);
  for (std::size_t i = 0; i < total; ++i) {
    const SweepCell& cell = grid[i % grid.size()];
    options.push_back(cell_options(cell, base_seed + i));
    cells.push_back(&cell);
  }

  core::ThreadPool pool(threads);
  const std::vector<core::RunReport> reports =
      core::run_agreements_parallel(pool, options);

  std::size_t violated = 0, undecided = 0;
  std::uint64_t held = 0, dropped = 0, released = 0, storm = 0, churn = 0;
  std::ostringstream failures;
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const core::RunReport& r = reports[i];
    held += r.partition_held;
    dropped += r.partition_dropped;
    released += r.partition_released;
    storm += r.storm_copies;
    churn += r.churn_crashes;
    const bool bad = !r.invariant_violations.empty() ||
                     !r.all_correct_decided || !r.agreement;
    if (!r.all_correct_decided) ++undecided;
    if (!r.invariant_violations.empty()) ++violated;
    if (bad) {
      failures << "seed=" << options[i].seed << " protocol="
               << core::protocol_name(options[i].protocol)
               << " n=" << options[i].n << " preset=" << cells[i]->preset
               << " decided=" << (r.all_correct_decided ? 1 : 0)
               << " violations=" << r.invariant_violations.size() << '\n';
      for (const std::string& v : r.invariant_violations)
        failures << "  " << v << '\n';
    }
    // The queue ledger must balance in every cell.
    if (r.verify_enqueued != r.verify_batch_flushed + r.verify_discarded) {
      ++violated;
      failures << "seed=" << options[i].seed
               << " verify ledger imbalance: enqueued=" << r.verify_enqueued
               << " flushed=" << r.verify_batch_flushed
               << " discarded=" << r.verify_discarded << '\n';
    }
  }

  std::cout << "chaos sweep: " << reports.size() << " configs ("
            << grid.size() << "-cell grid, seeds [" << base_seed << ", "
            << base_seed + total - 1 << "])\n"
            << "  partition held/dropped/released: " << held << '/' << dropped
            << '/' << released << "\n  storm copies: " << storm
            << "\n  churn crashes: " << churn << "\n  undecided: "
            << undecided << "\n  invariant violations: " << violated
            << "\n  digest: " << std::hex << digest_reports(reports)
            << std::dec << '\n';

  const std::string fail_text = failures.str();
  if (!fail_text.empty()) {
    std::cerr << fail_text;
    if (!fail_out.empty()) {
      std::ofstream out(fail_out);
      out << fail_text;
      std::cout << "failing seeds -> " << fail_out << '\n';
    }
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);

  if (args.get_bool("list-presets", false)) {
    for (const std::string& p : sim::ChaosSchedule::preset_names())
      std::cout << p << ": "
                << sim::ChaosSchedule::preset(p, 32).spec() << '\n';
    return 0;
  }
  if (args.has("sweep")) return run_sweep(args);

  core::RunOptions o;
  const std::string proto_name = args.get("protocol", "ba-whp");
  auto proto = core::protocol_from_name(proto_name);
  if (!proto) return fail("unknown --protocol " + proto_name);
  o.protocol = *proto;
  o.n = static_cast<std::size_t>(args.get_int("n", 32));
  o.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  o.max_rounds = static_cast<std::uint64_t>(args.get_int("max-rounds", 64));
  o.crash = static_cast<std::size_t>(args.get_int("crash", 0));
  o.silent = static_cast<std::size_t>(args.get_int("silent", 0));
  o.junk = static_cast<std::size_t>(args.get_int("junk", 0));
  o.crash_recover =
      static_cast<std::size_t>(args.get_int("crash-recover", 0));
  o.recover_after =
      static_cast<std::uint64_t>(args.get_int("recover-after", 5000));
  o.reliable_channel = args.get_bool("reliable", false);
  o.transport_retransmits =
      static_cast<std::uint32_t>(args.get_int("retransmits", 24));
  o.defer_verify = !args.get_bool("no-defer-verify", false);
  o.check_invariants = true;
  if (args.has("adaptive-victims"))
    o.adaptive_victims =
        static_cast<std::size_t>(args.get_int("adaptive-victims", 0));

  const std::string adv = args.get("adversary", "random");
  auto kind = adversary_from_name(adv);
  if (!kind) return fail("unknown --adversary " + adv);
  o.adversary = *kind;

  const auto ones = static_cast<std::size_t>(args.get_int("ones", 0));
  o.inputs.assign(o.n, ba::kZero);
  for (std::size_t i = 0; i < ones && i < o.n; ++i) o.inputs[i] = ba::kOne;
  if (ones == 0) o.expected_decision = 0;
  else if (ones >= o.n) o.expected_decision = 1;
  if (args.has("expected"))
    o.expected_decision = static_cast<int>(args.get_int("expected", 0));

  try {
    if (args.has("preset"))
      o.chaos = sim::ChaosSchedule::preset(args.get("preset", ""), o.n);
    else if (args.has("schedule"))
      o.chaos = sim::ChaosSchedule::parse(args.get("schedule", ""));
  } catch (const ConfigError& e) {
    return fail(e.what());
  }

  core::RunInstruments instruments;
  const bool quiet = args.get_bool("quiet", false);
  if (!quiet) instruments.observers.push_back(
      std::make_shared<PhaseTelemetry>());

  const core::RunReport r = core::run_agreement(o, instruments);

  std::cout << "chaos_run — " << core::protocol_name(o.protocol)
            << "  n=" << o.n << "  seed=" << o.seed << "  adversary=" << adv
            << "\n  schedule: "
            << (o.chaos.empty() ? std::string("(none)") : o.chaos.spec())
            << "\n  decided: "
            << (r.all_correct_decided ? "all correct" : "NOT ALL");
  if (r.decision) std::cout << "  decision=" << *r.decision;
  std::cout << "  rounds<=" << r.max_decided_round
            << "\n  corrupted: " << r.corrupted << " (of f=" << r.protocol_f
            << ")  churn crashes: " << r.churn_crashes
            << "\n  partition held/dropped/released: " << r.partition_held
            << '/' << r.partition_dropped << '/' << r.partition_released
            << "  storm copies: " << r.storm_copies
            << "\n  transport: retransmits=" << r.retransmits
            << " dead letters=" << r.dead_letters
            << " (words=" << r.dead_letter_words << ")"
            << "\n  verify ledger: enqueued=" << r.verify_enqueued
            << " flushed=" << r.verify_batch_flushed
            << " discarded=" << r.verify_discarded
            << (r.verify_enqueued ==
                        r.verify_batch_flushed + r.verify_discarded
                    ? " (balanced)"
                    : " IMBALANCED")
            << "\n  invariants: "
            << (r.invariant_violations.empty() ? "all hold"
                                               : "VIOLATED")
            << '\n';
  for (const std::string& v : r.invariant_violations)
    std::cout << "  " << v << '\n';

  const bool ledger_ok =
      r.verify_enqueued == r.verify_batch_flushed + r.verify_discarded;
  return r.invariant_violations.empty() && ledger_ok ? 0 : 1;
}
