// End-to-end interchangeability check: the protocols run unchanged over
// the *real* DDH-VRF backend (Chaum–Pedersen DLEQ over a safe-prime
// group), not just the simulation-grade FastVrf. Small n and a small
// group keep it test-sized; the crypto path is identical to a
// production-parameter deployment.
#include <gtest/gtest.h>

#include "coin/whp_coin.h"
#include "core/env.h"
#include "sim/simulation.h"

namespace coincidence::core {
namespace {

TEST(DdhIntegration, WhpCoinRunsOverRealVrf) {
  const std::size_t n = 24;
  Env env = Env::make_relaxed_ddh(n, 7);
  EXPECT_STREQ(env.vrf->name(), "ddh-vrf");

  sim::SimConfig cfg;
  cfg.n = n;
  cfg.seed = 5;
  sim::Simulation sim(cfg);
  for (crypto::ProcessId i = 0; i < n; ++i) {
    coin::WhpCoin::Config ccfg;
    ccfg.tag = "coin";
    ccfg.round = 0;
    ccfg.params = env.params;
    ccfg.vrf = env.vrf;
    ccfg.registry = env.registry;
    ccfg.sampler = env.sampler;
    sim.add_process(
        std::make_unique<coin::CoinHost>(std::make_unique<coin::WhpCoin>(ccfg)));
  }
  sim.start();
  sim.run();

  std::optional<int> bit;
  std::size_t returned = 0;
  for (crypto::ProcessId i = 0; i < n; ++i) {
    const auto& coin = dynamic_cast<coin::CoinHost&>(sim.process(i)).coin();
    if (!coin.done()) continue;
    ++returned;
    if (!bit) bit = coin.output();
    EXPECT_EQ(*bit, coin.output()) << i;
  }
  EXPECT_EQ(returned, n);
}

TEST(DdhIntegration, SamplerProofsVerifyAcrossBackend) {
  Env env = Env::make_relaxed_ddh(12, 9);
  for (crypto::ProcessId i = 0; i < 12; ++i) {
    auto e = env.sampler->sample(i, "seed");
    EXPECT_EQ(env.sampler->committee_val("seed", i, e.proof), e.sampled) << i;
    // Cross-identity replay must fail exactly as with FastVrf.
    if (e.sampled)
      EXPECT_FALSE(
          env.sampler->committee_val("seed", (i + 1) % 12, e.proof));
  }
}

}  // namespace
}  // namespace coincidence::core
