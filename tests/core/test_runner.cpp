#include "core/runner.h"

#include <gtest/gtest.h>

#include "common/errors.h"
#include "core/coin_runner.h"

namespace coincidence::core {
namespace {

TEST(Env, MakeRelaxedWiresEverything) {
  Env env = Env::make_relaxed(40, 9);
  EXPECT_EQ(env.n(), 40u);
  EXPECT_TRUE(env.registry && env.vrf && env.sampler && env.signer);
  EXPECT_GT(env.params.W, env.params.B);
}

TEST(Env, MakeAutoEnforcesWindows) {
  // Below the feasibility threshold the windows are empty.
  EXPECT_THROW(Env::make_auto(3, 1), ConfigError);
  Env env = Env::make_auto(committee::min_feasible_n(), 1);
  // At the midpoint epsilon, f = (1/3 - eps) n may round to zero for tiny
  // n; the point is that construction succeeds with valid thresholds.
  EXPECT_GT(env.params.W, env.params.B);
}

TEST(Env, DeterministicKeys) {
  Env a = Env::make_relaxed(16, 5);
  Env b = Env::make_relaxed(16, 5);
  EXPECT_EQ(a.registry->pk_of(3), b.registry->pk_of(3));
}

TEST(ProtocolRegistry, NamesRoundTrip) {
  for (Protocol p : all_protocols()) {
    auto back = protocol_from_name(protocol_name(p));
    ASSERT_TRUE(back.has_value()) << protocol_name(p);
    EXPECT_EQ(*back, p);
  }
  EXPECT_FALSE(protocol_from_name("nonsense").has_value());
}

TEST(Runner, EveryProtocolDecidesUnanimousInput) {
  for (Protocol p : all_protocols()) {
    RunOptions o;
    o.protocol = p;
    o.n = std::max<std::size_t>(min_n_for(p), p == Protocol::kBaWhp ? 48 : 10);
    o.seed = 77;
    o.inputs.assign(o.n, ba::kOne);
    RunReport r = run_agreement(o);
    EXPECT_TRUE(r.all_correct_decided) << protocol_name(p);
    ASSERT_TRUE(r.decision.has_value()) << protocol_name(p);
    EXPECT_EQ(*r.decision, 1) << protocol_name(p);
    EXPECT_TRUE(r.agreement) << protocol_name(p);
    EXPECT_GT(r.correct_words, 0u) << protocol_name(p);
  }
}

TEST(Runner, FaultMixAppliedToHighIds) {
  RunOptions o;
  o.protocol = Protocol::kMmrSharedCoin;
  o.n = 10;
  o.crash = 1;
  o.silent = 1;
  o.junk = 1;
  o.seed = 5;
  o.inputs.assign(10, ba::kZero);
  RunReport r = run_agreement(o);
  EXPECT_EQ(r.faulty, 3u);
  EXPECT_TRUE(r.all_correct_decided);
  EXPECT_EQ(*r.decision, 0);
}

TEST(Runner, RejectsOverBudgetFaults) {
  RunOptions o;
  o.protocol = Protocol::kBenOr;  // f = (n-1)/5 = 1 at n = 10
  o.n = 10;
  o.crash = 2;
  EXPECT_THROW(run_agreement(o), PreconditionError);
}

TEST(Runner, RejectsTooSmallN) {
  RunOptions o;
  o.protocol = Protocol::kBaWhp;
  o.n = 8;
  EXPECT_THROW(run_agreement(o), PreconditionError);
}

TEST(Runner, AdversaryKindsAllComplete) {
  for (AdversaryKind a :
       {AdversaryKind::kRandom, AdversaryKind::kFifo,
        AdversaryKind::kDelaySenders, AdversaryKind::kSplit,
        AdversaryKind::kHeavyTail}) {
    RunOptions o;
    o.protocol = Protocol::kMmrSharedCoin;
    o.n = 10;
    o.seed = 31;
    o.adversary = a;
    o.inputs.assign(10, ba::kOne);
    RunReport r = run_agreement(o);
    EXPECT_TRUE(r.all_correct_decided) << adversary_name(a);
    EXPECT_EQ(*r.decision, 1) << adversary_name(a);
  }
}

TEST(Runner, WordsByTagBucketsPopulated) {
  RunOptions o;
  o.protocol = Protocol::kBaWhp;
  o.n = 48;
  o.inputs.assign(48, ba::kZero);
  // Retry across seeds: individual small-n runs may hit the whp-failure
  // tail; we only need one decided run to audit the metric buckets.
  RunReport r;
  for (std::uint64_t seed = 1; seed <= 5 && !r.all_correct_decided; ++seed) {
    o.seed = seed;
    r = run_agreement(o);
  }
  ASSERT_TRUE(r.all_correct_decided);
  EXPECT_FALSE(r.words_by_tag.empty());
  std::uint64_t sum = 0;
  for (const auto& [tag, words] : r.words_by_tag) sum += words;
  EXPECT_EQ(sum, r.correct_words);
}

// ISSUE 4 tentpole: telemetry attaches through RunInstruments without
// changing the run, and the per-phase word view partitions the paper's
// word-complexity measure exactly — this is the identity tools/run_report
// asserts on every invocation.
TEST(Runner, DeferredVerificationIsBitIdenticalToInline) {
  // The tentpole equivalence: routing share/election proofs through the
  // deferred batch-verification queues must not change ANY protocol-
  // visible outcome — decision, rounds, words, messages, duration — for
  // any VRF-backed protocol, fault mix or adversary. Only the verify_*
  // telemetry counters may (and for deferred runs, must) differ.
  for (Protocol p : {Protocol::kBaWhp, Protocol::kMmrWhpCoin,
                     Protocol::kMmrSharedCoin}) {
    for (std::uint64_t seed : {1ULL, 42ULL}) {
      RunOptions o;
      o.protocol = p;
      o.n = std::max<std::size_t>(min_n_for(p), 40);
      o.seed = seed;
      o.inputs.assign(o.n, seed % 2 ? ba::kOne : ba::kZero);
      o.inputs[1] = ba::kOne;
      o.junk = 1;
      o.silent = 1;

      o.defer_verify = false;
      RunReport inline_r = run_agreement(o);
      o.defer_verify = true;
      RunReport deferred_r = run_agreement(o);

      SCOPED_TRACE(std::string(protocol_name(p)) + " seed " +
                   std::to_string(seed));
      EXPECT_EQ(inline_r.all_correct_decided, deferred_r.all_correct_decided);
      EXPECT_EQ(inline_r.decision, deferred_r.decision);
      EXPECT_EQ(inline_r.max_decided_round, deferred_r.max_decided_round);
      EXPECT_EQ(inline_r.correct_words, deferred_r.correct_words);
      EXPECT_EQ(inline_r.messages, deferred_r.messages);
      EXPECT_EQ(inline_r.duration, deferred_r.duration);
      EXPECT_EQ(inline_r.words_by_tag, deferred_r.words_by_tag);
      // The deferred run actually went through the batch plane...
      EXPECT_GT(deferred_r.verify_flushes, 0u);
      EXPECT_GT(deferred_r.verify_shares, 0u);
      // ...and the inline run never did.
      EXPECT_EQ(inline_r.verify_flushes, 0u);
      EXPECT_EQ(inline_r.verify_shares, 0u);
    }
  }
}

TEST(Runner, DeferredVerificationCountsJunkRejects) {
  // Junk-fault processes broadcast garbage into coin tags; the deferred
  // path must discard exactly those shares and count them.
  RunOptions o;
  o.protocol = Protocol::kMmrSharedCoin;
  o.n = 12;
  o.seed = 23;
  o.inputs.assign(o.n, ba::kZero);
  o.inputs[0] = ba::kOne;
  o.junk = 2;
  RunReport r = run_agreement(o);
  EXPECT_TRUE(r.all_correct_decided);
  EXPECT_GT(r.verify_shares, 0u);
}

TEST(Runner, InstrumentedRunMatchesBareRun) {
  RunOptions options;
  options.protocol = Protocol::kBaWhp;
  options.n = 32;
  options.seed = 6;
  options.inputs.assign(32, ba::kOne);

  RunReport bare = run_agreement(options);

  RunInstruments instruments;
  instruments.detailed_metrics = true;
  bool metrics_seen = false;
  std::uint64_t phase_sum = 0, metrics_correct_words = 0;
  std::size_t phase_rows = 0;
  instruments.metrics_out = [&](const sim::Metrics& m) {
    metrics_seen = true;
    metrics_correct_words = m.correct_words();
    for (const auto& [phase, words] : m.words_by_phase()) {
      (void)phase;
      phase_sum += words;
      ++phase_rows;
    }
    EXPECT_FALSE(m.by_phase().empty());  // detail mode was on
  };
  RunReport instrumented = run_agreement(options, instruments);

  ASSERT_TRUE(metrics_seen);
  EXPECT_EQ(bare.all_correct_decided, instrumented.all_correct_decided);
  EXPECT_EQ(bare.decision, instrumented.decision);
  EXPECT_EQ(bare.correct_words, instrumented.correct_words);
  EXPECT_EQ(bare.messages, instrumented.messages);
  EXPECT_EQ(bare.duration, instrumented.duration);
  EXPECT_EQ(bare.max_decided_round, instrumented.max_decided_round);
  EXPECT_EQ(bare.words_by_tag, instrumented.words_by_tag);

  // The acceptance identity: phase buckets partition correct_words.
  EXPECT_GT(phase_rows, 1u);
  EXPECT_EQ(phase_sum, metrics_correct_words);
  EXPECT_EQ(phase_sum, instrumented.correct_words);
}

TEST(Runner, MetricsOutFiresWithoutDetailMode) {
  RunOptions options;
  options.protocol = Protocol::kBenOr;
  options.n = 7;
  options.seed = 2;
  options.inputs.assign(7, ba::kZero);
  RunInstruments instruments;
  std::uint64_t seen_words = 0;
  bool detail = true;
  instruments.metrics_out = [&](const sim::Metrics& m) {
    seen_words = m.correct_words();
    detail = m.detail_enabled();
  };
  RunReport report = run_agreement(options, instruments);
  EXPECT_EQ(seen_words, report.correct_words);
  EXPECT_FALSE(detail);  // only switched on when asked
}

TEST(CoinRunner, AllKindsReturnAndMostlyAgree) {
  for (CoinKind k : {CoinKind::kShared, CoinKind::kWhp, CoinKind::kDealer}) {
    int agreed = 0, returned = 0;
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
      CoinOptions o;
      o.kind = k;
      o.n = 48;
      o.seed = 40 + seed;
      o.round = seed;
      CoinReport r = run_coin_trial(o);
      returned += r.all_returned;
      agreed += r.agreed_bit.has_value();
    }
    EXPECT_GE(returned, 9) << coin_name(k);
    EXPECT_GE(agreed, 7) << coin_name(k);
  }
}

TEST(CoinRunner, DealerCoinIsPerfect) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    CoinOptions o;
    o.kind = CoinKind::kDealer;
    o.n = 16;
    o.seed = seed;
    CoinReport r = run_coin_trial(o);
    EXPECT_TRUE(r.agreed_bit.has_value()) << seed;
  }
}

TEST(CoinRunner, IllegalBiasAdversarySkewsTheCoin) {
  // E6 in miniature: the content-aware adversary forces its bit far more
  // often than a fair coin would land on it.
  int biased_hits = 0, legal_hits = 0, biased_done = 0, legal_done = 0;
  const int kRuns = 40;
  for (std::uint64_t seed = 0; seed < kRuns; ++seed) {
    CoinOptions o;
    o.kind = CoinKind::kShared;
    o.n = 24;
    o.seed = 900 + seed;
    o.round = seed;
    CoinReport legal = run_coin_trial(o);
    if (legal.agreed_bit) {
      ++legal_done;
      legal_hits += (*legal.agreed_bit == 0);
    }
    o.content_aware_bias = true;
    o.bias_toward = 0;
    o.bias_budget = 2;  // = f at (n=24, eps=0.25)
    o.fairness_bound = 4000;  // wide-but-finite delays (still async-legal)
    CoinReport biased = run_coin_trial(o);
    if (biased.agreed_bit) {
      ++biased_done;
      biased_hits += (*biased.agreed_bit == 0);
    }
  }
  ASSERT_GT(legal_done, kRuns / 2);
  ASSERT_GT(biased_done, kRuns / 2);
  double legal_rate = static_cast<double>(legal_hits) / legal_done;
  double biased_rate = static_cast<double>(biased_hits) / biased_done;
  EXPECT_GT(biased_rate, legal_rate + 0.1);
  EXPECT_GT(biased_rate, 0.65);
}

TEST(CoinRunner, NamesAreStable) {
  EXPECT_STREQ(coin_name(CoinKind::kShared), "shared-coin");
  EXPECT_STREQ(coin_name(CoinKind::kWhp), "whp-coin");
  EXPECT_STREQ(coin_name(CoinKind::kDealer), "dealer-coin");
}

}  // namespace
}  // namespace coincidence::core
