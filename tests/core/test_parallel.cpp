// The parallel experiment driver's contract: fanning seeded runs over a
// thread pool produces results BYTE-IDENTICAL to a serial loop over the
// same options — every report field, including the words_by_tag
// breakdown — because each run is self-contained and results merge in
// input order, not completion order.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "core/parallel.h"

namespace coincidence::core {
namespace {

void expect_reports_equal(const RunReport& a, const RunReport& b) {
  EXPECT_EQ(a.all_correct_decided, b.all_correct_decided);
  EXPECT_EQ(a.agreement, b.agreement);
  EXPECT_EQ(a.decision, b.decision);
  EXPECT_EQ(a.max_decided_round, b.max_decided_round);
  EXPECT_EQ(a.correct_words, b.correct_words);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.duration, b.duration);
  EXPECT_EQ(a.words_by_tag, b.words_by_tag);
  EXPECT_EQ(a.faulty, b.faulty);
  EXPECT_EQ(a.protocol_f, b.protocol_f);
  EXPECT_EQ(a.link_drops, b.link_drops);
  EXPECT_EQ(a.link_duplicates, b.link_duplicates);
  EXPECT_EQ(a.link_replays, b.link_replays);
  EXPECT_EQ(a.retransmits, b.retransmits);
  EXPECT_EQ(a.retransmit_words, b.retransmit_words);
}

std::vector<RunOptions> mixed_workload() {
  std::vector<RunOptions> opts;
  for (std::uint64_t seed = 100; seed < 112; ++seed) {
    RunOptions o;
    o.protocol = seed % 2 ? Protocol::kBracha : Protocol::kBenOr;
    o.n = o.protocol == Protocol::kBenOr ? 6 : 4;
    o.seed = seed;
    o.adversary =
        seed % 3 ? AdversaryKind::kRandom : AdversaryKind::kHeavyTail;
    if (seed % 4 == 0) o.silent = 1;
    o.max_rounds = 30;
    o.inputs.assign(o.n, seed % 2 ? ba::kOne : ba::kZero);
    opts.push_back(o);
  }
  return opts;
}

TEST(ParallelDriver, MatchesSerialExecutionExactly) {
  std::vector<RunOptions> opts = mixed_workload();

  std::vector<RunReport> serial;
  serial.reserve(opts.size());
  for (const RunOptions& o : opts) serial.push_back(run_agreement(o));

  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    ThreadPool pool(threads);
    std::vector<RunReport> par = run_agreements_parallel(pool, opts);
    ASSERT_EQ(par.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " run=" + std::to_string(i));
      expect_reports_equal(par[i], serial[i]);
    }
  }
}

TEST(ParallelDriver, PoolIsReusableAcrossJobs) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
  for (int round = 0; round < 3; ++round) {
    std::vector<int> out =
        parallel_map(pool, 100, [&](std::size_t i) {
          return static_cast<int>(i) * (round + 1);
        });
    ASSERT_EQ(out.size(), 100u);
    for (std::size_t i = 0; i < out.size(); ++i)
      EXPECT_EQ(out[i], static_cast<int>(i) * (round + 1));
  }
}

TEST(ParallelDriver, EveryIndexRunsExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.for_each_index(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelDriver, RethrowsLowestFailingIndex) {
  ThreadPool pool(4);
  for (int round = 0; round < 2; ++round) {
    try {
      pool.for_each_index(64, [&](std::size_t i) {
        if (i % 7 == 3) throw std::runtime_error(std::to_string(i));
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      // Lowest failing index (3) wins deterministically, regardless of
      // which worker hit its exception first.
      EXPECT_STREQ(e.what(), "3");
    }
    // The pool must remain usable after a failed job.
    std::vector<int> ok = parallel_map(
        pool, 8, [](std::size_t i) { return static_cast<int>(i); });
    EXPECT_EQ(ok.back(), 7);
  }
}

TEST(ParallelDriver, ZeroAndSingleItemJobs) {
  ThreadPool pool(2);
  pool.for_each_index(0, [](std::size_t) { FAIL() << "must not run"; });
  std::vector<int> one = parallel_map(pool, 1, [](std::size_t) { return 42; });
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 42);
}

TEST(ParallelDriver, DefaultThreadCountIsPositive) {
  EXPECT_GE(default_thread_count(), 1u);
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

}  // namespace
}  // namespace coincidence::core
