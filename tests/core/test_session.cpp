// Multi-instance sessions: many concurrent BA slots over ONE trusted
// setup (§3's "setup occurs once" property), interleaved on one network.
#include <gtest/gtest.h>

#include <optional>

#include "ba/instance_mux.h"
#include "common/errors.h"
#include "core/session.h"
#include "session/log_driver.h"

namespace coincidence::core {
namespace {

TEST(Session, ConcurrentSlotsAllDecideCorrectly) {
  Session session(Env::make_relaxed(48, 11));
  // Slot 0: unanimous 1; slot 1: unanimous 0; slot 2: split.
  std::vector<std::vector<ba::Value>> inputs(3,
                                             std::vector<ba::Value>(48, 0));
  inputs[0].assign(48, ba::kOne);
  for (std::size_t i = 0; i < 24; ++i) inputs[2][i] = ba::kOne;

  SessionReport r = session.run_concurrent_slots(inputs, /*seed=*/5);
  ASSERT_EQ(r.slots.size(), 3u);
  ASSERT_TRUE(r.all_slots_decided());
  EXPECT_EQ(*r.slots[0].decision, 1);  // validity
  EXPECT_EQ(*r.slots[1].decision, 0);  // validity
  EXPECT_TRUE(r.slots[2].decision.has_value());  // agreement on either
  for (const auto& s : r.slots) EXPECT_TRUE(s.agreement);
}

TEST(Session, SlotsAreIndependentDespiteSharedSetup) {
  // Same keys, different slot tags => different committees per slot, and
  // the decisions of unanimous slots never leak across.
  Session session(Env::make_relaxed(48, 12));
  const auto& sampler = *session.env().sampler;
  std::vector<crypto::ProcessId> c0, c1;
  for (crypto::ProcessId i = 0; i < 48; ++i) {
    if (sampler.sample(i, "slot0/0/a1/init").sampled) c0.push_back(i);
    if (sampler.sample(i, "slot1/0/a1/init").sampled) c1.push_back(i);
  }
  EXPECT_NE(c0, c1);  // fresh committees from one PKI

  std::vector<std::vector<ba::Value>> inputs;
  inputs.push_back(std::vector<ba::Value>(48, ba::kOne));
  inputs.push_back(std::vector<ba::Value>(48, ba::kZero));
  SessionReport r = session.run_concurrent_slots(inputs, 6);
  ASSERT_TRUE(r.all_slots_decided());
  EXPECT_EQ(*r.slots[0].decision, 1);
  EXPECT_EQ(*r.slots[1].decision, 0);
}

TEST(Session, ToleratesSilentFaultsAcrossAllSlots) {
  Session session(Env::make_relaxed(60, 13));
  std::vector<std::vector<ba::Value>> inputs(2,
                                             std::vector<ba::Value>(60, 1));
  SessionReport r =
      session.run_concurrent_slots(inputs, 7, /*silent_faults=*/3);
  ASSERT_TRUE(r.all_slots_decided());
  EXPECT_EQ(*r.slots[0].decision, 1);
  EXPECT_EQ(*r.slots[1].decision, 1);
}

// The BENCH_session.json stall: with the seed-15 setup two silent
// processes push one slot's round-0 a2 committee below W live members
// (see BaWhpSkip.* in tests/ba), so 7/8 and 14/16 slots decided and the
// wedged rest sat in round 0 forever. These inputs reproduce the bench
// rows bit-for-bit.
std::vector<std::vector<ba::Value>> bench_inputs(std::size_t slots,
                                                 std::size_t n) {
  std::vector<std::vector<ba::Value>> inputs(slots,
                                             std::vector<ba::Value>(n, 0));
  for (std::size_t s = 0; s < slots; ++s)
    for (std::size_t i = 0; i < n; ++i)
      inputs[s][i] = static_cast<ba::Value>((s % 2) ? (i % 2) : (s % 3 == 0));
  return inputs;
}

TEST(SessionSkip, WedgedSlotStallsWithoutFallback) {
  Session session(Env::make_relaxed(48, 15));
  SessionReport r = session.run_concurrent_slots(bench_inputs(8, 48),
                                                 /*seed=*/23, /*silent=*/2);
  EXPECT_FALSE(r.all_slots_decided());  // the pinned liveness bug
  std::size_t decided = 0;
  for (const auto& s : r.slots) decided += s.all_correct_decided;
  EXPECT_EQ(decided, 7u);
  for (const auto& s : r.slots) {
    if (s.all_correct_decided) continue;
    // The honest telemetry: a wedged slot reports the round it sat in
    // (0), and reports it via max_round_reached — decided-round-only
    // telemetry showed 0.0 for every row and hid the stall.
    EXPECT_EQ(s.max_round_reached, 0u);
    EXPECT_EQ(s.rounds_skipped, 0u);
  }
}

TEST(SessionSkip, SixteenSlotsAllDecideWithFallback) {
  Session session(Env::make_relaxed(48, 15));
  SessionOptions opts;
  opts.skip_timeout = session::auto_skip_timeout(48, 16);
  session.set_options(opts);
  SessionReport r = session.run_concurrent_slots(bench_inputs(16, 48),
                                                 /*seed=*/31, /*silent=*/2);
  ASSERT_TRUE(r.all_slots_decided());  // 16/16 — the regression gate
  std::uint64_t rounds_max = 0, skipped = 0;
  for (const auto& s : r.slots) {
    EXPECT_TRUE(s.agreement);
    rounds_max = std::max(rounds_max, s.max_round_reached);
    skipped += s.rounds_skipped;
  }
  // Rescued slots decide in round >= 1, so the rounds telemetry can no
  // longer read 0.0 across the board.
  EXPECT_GE(rounds_max, 1u);
  EXPECT_GE(skipped, 1u);
}

TEST(SessionSkip, ShardCountCannotLeakIntoSessionResults) {
  // Concurrent slots + armed skip wakeups on the sharded superstep
  // engine: every shard count must produce the same run.
  std::optional<SessionReport> base;
  for (std::size_t shards : {1, 2, 4, 8}) {
    Session session(Env::make_relaxed(48, 15));
    SessionOptions opts;
    opts.skip_timeout = session::auto_skip_timeout(48, 3);
    opts.shards = shards;
    session.set_options(opts);
    SessionReport r = session.run_concurrent_slots(bench_inputs(3, 48),
                                                   /*seed=*/9, /*silent=*/2);
    ASSERT_TRUE(r.all_slots_decided()) << "shards=" << shards;
    if (!base) {
      base = std::move(r);
      continue;
    }
    EXPECT_EQ(r.correct_words, base->correct_words) << "shards=" << shards;
    EXPECT_EQ(r.messages, base->messages) << "shards=" << shards;
    EXPECT_EQ(r.duration, base->duration) << "shards=" << shards;
    for (std::size_t s = 0; s < r.slots.size(); ++s) {
      EXPECT_EQ(*r.slots[s].decision, *base->slots[s].decision);
      EXPECT_EQ(r.slots[s].max_decided_round, base->slots[s].max_decided_round);
      EXPECT_EQ(r.slots[s].max_round_reached, base->slots[s].max_round_reached);
      EXPECT_EQ(r.slots[s].rounds_skipped, base->slots[s].rounds_skipped);
      EXPECT_EQ(r.slots[s].correct_words, base->slots[s].correct_words);
    }
  }
}

TEST(Session, RejectsBadShapes) {
  Session session(Env::make_relaxed(48, 14));
  EXPECT_THROW(session.run_concurrent_slots({}, 1), PreconditionError);
  std::vector<std::vector<ba::Value>> wrong_n(1,
                                              std::vector<ba::Value>(10, 0));
  EXPECT_THROW(session.run_concurrent_slots(wrong_n, 1), PreconditionError);
  EXPECT_THROW(session.run_concurrent_mv_slots({}, 1), PreconditionError);
  std::vector<std::vector<Bytes>> wrong_mv(1, std::vector<Bytes>(10));
  EXPECT_THROW(session.run_concurrent_mv_slots(wrong_mv, 1),
               PreconditionError);
}

TEST(Session, MultivaluedSlotsAdoptOneProposalPerBackend) {
  // The multivalued session path under both dissemination backends
  // (SessionOptions::rbc): every slot adopts exactly one proposer's
  // payload with payload-level agreement, and the coded backend spends
  // fewer words on the same workload.
  const std::size_t n = 48;
  std::uint64_t words_by_backend[2] = {0, 0};
  for (ba::RbcBackend backend :
       {ba::RbcBackend::kBracha, ba::RbcBackend::kEc}) {
    Session session(Env::make_relaxed(n, 11));
    SessionOptions opts;
    opts.skip_timeout = session::auto_skip_timeout(n, 2);
    opts.rbc = backend;
    session.set_options(opts);
    // ~2KB proposals: large enough that fragment shipping beats full-
    // value echoing despite the per-echo Merkle branch overhead.
    std::vector<std::vector<Bytes>> proposals(2, std::vector<Bytes>(n));
    for (std::size_t s = 0; s < proposals.size(); ++s)
      for (std::size_t i = 0; i < n; ++i)
        proposals[s][i] = bytes_of("slot" + std::to_string(s) + "-payload-" +
                                   std::string(2048, 'a' + (i % 26)));
    SessionReport r =
        session.run_concurrent_mv_slots(proposals, /*seed=*/9, /*silent=*/2);
    ASSERT_TRUE(r.all_slots_decided()) << ba::to_string(backend);
    for (const auto& s : r.slots) {
      EXPECT_TRUE(s.agreement) << ba::to_string(backend);
      ASSERT_TRUE(s.decision.has_value());
      EXPECT_GE(*s.decision, 0) << ba::to_string(backend);  // non-noop
    }
    words_by_backend[backend == ba::RbcBackend::kEc] = r.correct_words;
  }
  EXPECT_LT(words_by_backend[1], words_by_backend[0]);
}

TEST(InstanceMux, RoutesByPrefixAndRejectsDuplicates) {
  ba::InstanceMux mux;
  EXPECT_THROW(mux.add_instance("", nullptr), PreconditionError);
  EXPECT_THROW(mux.instance("nope"), PreconditionError);
  EXPECT_THROW(mux.add_instance("a/b", nullptr), PreconditionError);
  EXPECT_EQ(mux.instance_count(), 0u);
}

}  // namespace
}  // namespace coincidence::core
