// Multi-instance sessions: many concurrent BA slots over ONE trusted
// setup (§3's "setup occurs once" property), interleaved on one network.
#include <gtest/gtest.h>

#include "ba/instance_mux.h"
#include "common/errors.h"
#include "core/session.h"

namespace coincidence::core {
namespace {

TEST(Session, ConcurrentSlotsAllDecideCorrectly) {
  Session session(Env::make_relaxed(48, 11));
  // Slot 0: unanimous 1; slot 1: unanimous 0; slot 2: split.
  std::vector<std::vector<ba::Value>> inputs(3,
                                             std::vector<ba::Value>(48, 0));
  inputs[0].assign(48, ba::kOne);
  for (std::size_t i = 0; i < 24; ++i) inputs[2][i] = ba::kOne;

  SessionReport r = session.run_concurrent_slots(inputs, /*seed=*/5);
  ASSERT_EQ(r.slots.size(), 3u);
  ASSERT_TRUE(r.all_slots_decided());
  EXPECT_EQ(*r.slots[0].decision, 1);  // validity
  EXPECT_EQ(*r.slots[1].decision, 0);  // validity
  EXPECT_TRUE(r.slots[2].decision.has_value());  // agreement on either
  for (const auto& s : r.slots) EXPECT_TRUE(s.agreement);
}

TEST(Session, SlotsAreIndependentDespiteSharedSetup) {
  // Same keys, different slot tags => different committees per slot, and
  // the decisions of unanimous slots never leak across.
  Session session(Env::make_relaxed(48, 12));
  const auto& sampler = *session.env().sampler;
  std::vector<crypto::ProcessId> c0, c1;
  for (crypto::ProcessId i = 0; i < 48; ++i) {
    if (sampler.sample(i, "slot0/0/a1/init").sampled) c0.push_back(i);
    if (sampler.sample(i, "slot1/0/a1/init").sampled) c1.push_back(i);
  }
  EXPECT_NE(c0, c1);  // fresh committees from one PKI

  std::vector<std::vector<ba::Value>> inputs;
  inputs.push_back(std::vector<ba::Value>(48, ba::kOne));
  inputs.push_back(std::vector<ba::Value>(48, ba::kZero));
  SessionReport r = session.run_concurrent_slots(inputs, 6);
  ASSERT_TRUE(r.all_slots_decided());
  EXPECT_EQ(*r.slots[0].decision, 1);
  EXPECT_EQ(*r.slots[1].decision, 0);
}

TEST(Session, ToleratesSilentFaultsAcrossAllSlots) {
  Session session(Env::make_relaxed(60, 13));
  std::vector<std::vector<ba::Value>> inputs(2,
                                             std::vector<ba::Value>(60, 1));
  SessionReport r =
      session.run_concurrent_slots(inputs, 7, /*silent_faults=*/3);
  ASSERT_TRUE(r.all_slots_decided());
  EXPECT_EQ(*r.slots[0].decision, 1);
  EXPECT_EQ(*r.slots[1].decision, 1);
}

TEST(Session, RejectsBadShapes) {
  Session session(Env::make_relaxed(48, 14));
  EXPECT_THROW(session.run_concurrent_slots({}, 1), PreconditionError);
  std::vector<std::vector<ba::Value>> wrong_n(1,
                                              std::vector<ba::Value>(10, 0));
  EXPECT_THROW(session.run_concurrent_slots(wrong_n, 1), PreconditionError);
}

TEST(InstanceMux, RoutesByPrefixAndRejectsDuplicates) {
  ba::InstanceMux mux;
  EXPECT_THROW(mux.add_instance("", nullptr), PreconditionError);
  EXPECT_THROW(mux.instance("nope"), PreconditionError);
  EXPECT_THROW(mux.add_instance("a/b", nullptr), PreconditionError);
  EXPECT_EQ(mux.instance_count(), 0u);
}

}  // namespace
}  // namespace coincidence::core
