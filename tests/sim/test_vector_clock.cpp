#include "sim/vector_clock.h"

#include <gtest/gtest.h>

#include "common/errors.h"

namespace coincidence::sim {
namespace {

TEST(VectorClock, FreshClocksEqual) {
  VectorClock a(3), b(3);
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(VectorClock::happens_before(a, b));
  EXPECT_FALSE(VectorClock::concurrent(a, b));
}

TEST(VectorClock, TickCreatesHappensBefore) {
  VectorClock a(3);
  VectorClock b = a;
  b.tick(0);
  EXPECT_TRUE(VectorClock::happens_before(a, b));
  EXPECT_FALSE(VectorClock::happens_before(b, a));
}

TEST(VectorClock, IndependentTicksAreConcurrent) {
  VectorClock a(3), b(3);
  a.tick(0);
  b.tick(1);
  EXPECT_TRUE(VectorClock::concurrent(a, b));
}

TEST(VectorClock, MergeOrdersAfterBoth) {
  VectorClock a(3), b(3);
  a.tick(0);
  b.tick(1);
  VectorClock c = a;
  c.merge(b);
  c.tick(2);
  EXPECT_TRUE(VectorClock::happens_before(a, c));
  EXPECT_TRUE(VectorClock::happens_before(b, c));
}

TEST(VectorClock, TransitivityOfHappensBefore) {
  VectorClock a(2);
  a.tick(0);
  VectorClock b = a;
  b.merge(a);
  b.tick(1);
  VectorClock c = b;
  c.tick(0);
  EXPECT_TRUE(VectorClock::happens_before(a, b));
  EXPECT_TRUE(VectorClock::happens_before(b, c));
  EXPECT_TRUE(VectorClock::happens_before(a, c));
}

TEST(VectorClock, SizeMismatchThrows) {
  VectorClock a(2), b(3);
  EXPECT_THROW(a.merge(b), PreconditionError);
  EXPECT_THROW(VectorClock::happens_before(a, b), PreconditionError);
}

TEST(VectorClock, TickOutOfRangeThrows) {
  VectorClock a(2);
  EXPECT_THROW(a.tick(2), PreconditionError);
}

TEST(VectorClock, MessageExchangeScenario) {
  // p0 sends m1 to p1; p1 then sends m2 to p2. m1 -> m2 per Lamport.
  VectorClock p0(3), p1(3), p2(3);
  p0.tick(0);             // send event m1
  VectorClock m1 = p0;
  p1.merge(m1);
  p1.tick(1);             // receive m1 + send event m2
  VectorClock m2 = p1;
  p2.merge(m2);
  p2.tick(2);
  EXPECT_TRUE(VectorClock::happens_before(m1, m2));
  // A message from p2 sent before receiving anything is concurrent w/ m1.
  VectorClock early(3);
  early.tick(2);
  EXPECT_TRUE(VectorClock::concurrent(early, m1));
}

}  // namespace
}  // namespace coincidence::sim
